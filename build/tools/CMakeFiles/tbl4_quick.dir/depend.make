# Empty dependencies file for tbl4_quick.
# This may be replaced when dependencies are built.
