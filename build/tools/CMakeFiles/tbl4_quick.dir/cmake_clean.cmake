file(REMOVE_RECURSE
  "CMakeFiles/tbl4_quick.dir/tbl4_quick.cc.o"
  "CMakeFiles/tbl4_quick.dir/tbl4_quick.cc.o.d"
  "tbl4_quick"
  "tbl4_quick.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbl4_quick.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
