file(REMOVE_RECURSE
  "CMakeFiles/debug_acm.dir/debug_acm.cc.o"
  "CMakeFiles/debug_acm.dir/debug_acm.cc.o.d"
  "debug_acm"
  "debug_acm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debug_acm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
