# Empty compiler generated dependencies file for debug_acm.
# This may be replaced when dependencies are built.
