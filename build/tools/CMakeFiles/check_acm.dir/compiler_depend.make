# Empty compiler generated dependencies file for check_acm.
# This may be replaced when dependencies are built.
