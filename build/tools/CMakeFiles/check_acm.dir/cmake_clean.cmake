file(REMOVE_RECURSE
  "CMakeFiles/check_acm.dir/check_acm.cc.o"
  "CMakeFiles/check_acm.dir/check_acm.cc.o.d"
  "check_acm"
  "check_acm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/check_acm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
