# Empty dependencies file for knowledge_graph_triage.
# This may be replaced when dependencies are built.
