file(REMOVE_RECURSE
  "CMakeFiles/knowledge_graph_triage.dir/knowledge_graph_triage.cpp.o"
  "CMakeFiles/knowledge_graph_triage.dir/knowledge_graph_triage.cpp.o.d"
  "knowledge_graph_triage"
  "knowledge_graph_triage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/knowledge_graph_triage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
