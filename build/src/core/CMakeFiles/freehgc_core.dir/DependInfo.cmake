
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/freehgc.cc" "src/core/CMakeFiles/freehgc_core.dir/freehgc.cc.o" "gcc" "src/core/CMakeFiles/freehgc_core.dir/freehgc.cc.o.d"
  "/root/repo/src/core/other_types.cc" "src/core/CMakeFiles/freehgc_core.dir/other_types.cc.o" "gcc" "src/core/CMakeFiles/freehgc_core.dir/other_types.cc.o.d"
  "/root/repo/src/core/selection_util.cc" "src/core/CMakeFiles/freehgc_core.dir/selection_util.cc.o" "gcc" "src/core/CMakeFiles/freehgc_core.dir/selection_util.cc.o.d"
  "/root/repo/src/core/target_selection.cc" "src/core/CMakeFiles/freehgc_core.dir/target_selection.cc.o" "gcc" "src/core/CMakeFiles/freehgc_core.dir/target_selection.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/freehgc_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/metapath/CMakeFiles/freehgc_metapath.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/freehgc_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/dense/CMakeFiles/freehgc_dense.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/freehgc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
