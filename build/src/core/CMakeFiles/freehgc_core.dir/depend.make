# Empty dependencies file for freehgc_core.
# This may be replaced when dependencies are built.
