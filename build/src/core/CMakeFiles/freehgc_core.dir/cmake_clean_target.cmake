file(REMOVE_RECURSE
  "libfreehgc_core.a"
)
