file(REMOVE_RECURSE
  "CMakeFiles/freehgc_core.dir/freehgc.cc.o"
  "CMakeFiles/freehgc_core.dir/freehgc.cc.o.d"
  "CMakeFiles/freehgc_core.dir/other_types.cc.o"
  "CMakeFiles/freehgc_core.dir/other_types.cc.o.d"
  "CMakeFiles/freehgc_core.dir/selection_util.cc.o"
  "CMakeFiles/freehgc_core.dir/selection_util.cc.o.d"
  "CMakeFiles/freehgc_core.dir/target_selection.cc.o"
  "CMakeFiles/freehgc_core.dir/target_selection.cc.o.d"
  "libfreehgc_core.a"
  "libfreehgc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/freehgc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
