# Empty dependencies file for freehgc_eval.
# This may be replaced when dependencies are built.
