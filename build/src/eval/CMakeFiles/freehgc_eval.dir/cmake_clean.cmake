file(REMOVE_RECURSE
  "CMakeFiles/freehgc_eval.dir/experiment.cc.o"
  "CMakeFiles/freehgc_eval.dir/experiment.cc.o.d"
  "libfreehgc_eval.a"
  "libfreehgc_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/freehgc_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
