file(REMOVE_RECURSE
  "libfreehgc_eval.a"
)
