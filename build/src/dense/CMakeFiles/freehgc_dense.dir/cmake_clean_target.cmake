file(REMOVE_RECURSE
  "libfreehgc_dense.a"
)
