file(REMOVE_RECURSE
  "CMakeFiles/freehgc_dense.dir/matrix.cc.o"
  "CMakeFiles/freehgc_dense.dir/matrix.cc.o.d"
  "libfreehgc_dense.a"
  "libfreehgc_dense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/freehgc_dense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
