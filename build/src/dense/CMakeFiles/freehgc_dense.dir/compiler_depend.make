# Empty compiler generated dependencies file for freehgc_dense.
# This may be replaced when dependencies are built.
