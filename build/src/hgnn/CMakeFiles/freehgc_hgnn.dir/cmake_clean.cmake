file(REMOVE_RECURSE
  "CMakeFiles/freehgc_hgnn.dir/models.cc.o"
  "CMakeFiles/freehgc_hgnn.dir/models.cc.o.d"
  "CMakeFiles/freehgc_hgnn.dir/propagate.cc.o"
  "CMakeFiles/freehgc_hgnn.dir/propagate.cc.o.d"
  "CMakeFiles/freehgc_hgnn.dir/trainer.cc.o"
  "CMakeFiles/freehgc_hgnn.dir/trainer.cc.o.d"
  "libfreehgc_hgnn.a"
  "libfreehgc_hgnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/freehgc_hgnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
