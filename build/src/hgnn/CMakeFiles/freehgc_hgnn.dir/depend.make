# Empty dependencies file for freehgc_hgnn.
# This may be replaced when dependencies are built.
