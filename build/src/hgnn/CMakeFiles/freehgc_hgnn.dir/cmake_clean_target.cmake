file(REMOVE_RECURSE
  "libfreehgc_hgnn.a"
)
