file(REMOVE_RECURSE
  "libfreehgc_baselines.a"
)
