file(REMOVE_RECURSE
  "CMakeFiles/freehgc_baselines.dir/coarsening.cc.o"
  "CMakeFiles/freehgc_baselines.dir/coarsening.cc.o.d"
  "CMakeFiles/freehgc_baselines.dir/coreset.cc.o"
  "CMakeFiles/freehgc_baselines.dir/coreset.cc.o.d"
  "CMakeFiles/freehgc_baselines.dir/gradient_matching.cc.o"
  "CMakeFiles/freehgc_baselines.dir/gradient_matching.cc.o.d"
  "libfreehgc_baselines.a"
  "libfreehgc_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/freehgc_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
