# Empty dependencies file for freehgc_baselines.
# This may be replaced when dependencies are built.
