file(REMOVE_RECURSE
  "libfreehgc_metapath.a"
)
