# Empty compiler generated dependencies file for freehgc_metapath.
# This may be replaced when dependencies are built.
