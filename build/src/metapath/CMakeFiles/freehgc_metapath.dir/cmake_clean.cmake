file(REMOVE_RECURSE
  "CMakeFiles/freehgc_metapath.dir/metapath.cc.o"
  "CMakeFiles/freehgc_metapath.dir/metapath.cc.o.d"
  "libfreehgc_metapath.a"
  "libfreehgc_metapath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/freehgc_metapath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
