file(REMOVE_RECURSE
  "CMakeFiles/freehgc_sparse.dir/centrality.cc.o"
  "CMakeFiles/freehgc_sparse.dir/centrality.cc.o.d"
  "CMakeFiles/freehgc_sparse.dir/csr.cc.o"
  "CMakeFiles/freehgc_sparse.dir/csr.cc.o.d"
  "CMakeFiles/freehgc_sparse.dir/ops.cc.o"
  "CMakeFiles/freehgc_sparse.dir/ops.cc.o.d"
  "libfreehgc_sparse.a"
  "libfreehgc_sparse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/freehgc_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
