file(REMOVE_RECURSE
  "libfreehgc_sparse.a"
)
