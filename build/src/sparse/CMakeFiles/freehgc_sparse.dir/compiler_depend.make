# Empty compiler generated dependencies file for freehgc_sparse.
# This may be replaced when dependencies are built.
