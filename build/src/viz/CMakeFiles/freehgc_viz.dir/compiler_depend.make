# Empty compiler generated dependencies file for freehgc_viz.
# This may be replaced when dependencies are built.
