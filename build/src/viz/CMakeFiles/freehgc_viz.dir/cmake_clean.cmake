file(REMOVE_RECURSE
  "CMakeFiles/freehgc_viz.dir/tsne.cc.o"
  "CMakeFiles/freehgc_viz.dir/tsne.cc.o.d"
  "libfreehgc_viz.a"
  "libfreehgc_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/freehgc_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
