file(REMOVE_RECURSE
  "libfreehgc_viz.a"
)
