file(REMOVE_RECURSE
  "libfreehgc_datasets.a"
)
