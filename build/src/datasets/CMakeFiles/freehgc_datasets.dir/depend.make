# Empty dependencies file for freehgc_datasets.
# This may be replaced when dependencies are built.
