file(REMOVE_RECURSE
  "CMakeFiles/freehgc_datasets.dir/generator.cc.o"
  "CMakeFiles/freehgc_datasets.dir/generator.cc.o.d"
  "libfreehgc_datasets.a"
  "libfreehgc_datasets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/freehgc_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
