# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("dense")
subdirs("sparse")
subdirs("graph")
subdirs("metapath")
subdirs("datasets")
subdirs("nn")
subdirs("hgnn")
subdirs("core")
subdirs("baselines")
subdirs("eval")
subdirs("viz")
