# Empty dependencies file for freehgc_nn.
# This may be replaced when dependencies are built.
