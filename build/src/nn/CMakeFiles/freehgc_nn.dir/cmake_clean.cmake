file(REMOVE_RECURSE
  "CMakeFiles/freehgc_nn.dir/nn.cc.o"
  "CMakeFiles/freehgc_nn.dir/nn.cc.o.d"
  "libfreehgc_nn.a"
  "libfreehgc_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/freehgc_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
