file(REMOVE_RECURSE
  "libfreehgc_nn.a"
)
