file(REMOVE_RECURSE
  "libfreehgc_common.a"
)
