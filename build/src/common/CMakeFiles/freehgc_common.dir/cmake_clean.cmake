file(REMOVE_RECURSE
  "CMakeFiles/freehgc_common.dir/logging.cc.o"
  "CMakeFiles/freehgc_common.dir/logging.cc.o.d"
  "CMakeFiles/freehgc_common.dir/rng.cc.o"
  "CMakeFiles/freehgc_common.dir/rng.cc.o.d"
  "CMakeFiles/freehgc_common.dir/status.cc.o"
  "CMakeFiles/freehgc_common.dir/status.cc.o.d"
  "CMakeFiles/freehgc_common.dir/string_util.cc.o"
  "CMakeFiles/freehgc_common.dir/string_util.cc.o.d"
  "libfreehgc_common.a"
  "libfreehgc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/freehgc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
