# Empty dependencies file for freehgc_common.
# This may be replaced when dependencies are built.
