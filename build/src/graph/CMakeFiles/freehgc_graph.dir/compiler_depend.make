# Empty compiler generated dependencies file for freehgc_graph.
# This may be replaced when dependencies are built.
