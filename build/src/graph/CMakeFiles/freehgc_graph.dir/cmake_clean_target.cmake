file(REMOVE_RECURSE
  "libfreehgc_graph.a"
)
