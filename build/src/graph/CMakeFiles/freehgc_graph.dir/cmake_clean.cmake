file(REMOVE_RECURSE
  "CMakeFiles/freehgc_graph.dir/hetero_graph.cc.o"
  "CMakeFiles/freehgc_graph.dir/hetero_graph.cc.o.d"
  "CMakeFiles/freehgc_graph.dir/serialize.cc.o"
  "CMakeFiles/freehgc_graph.dir/serialize.cc.o.d"
  "libfreehgc_graph.a"
  "libfreehgc_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/freehgc_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
