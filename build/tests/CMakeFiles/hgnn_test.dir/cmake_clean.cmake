file(REMOVE_RECURSE
  "CMakeFiles/hgnn_test.dir/hgnn_test.cc.o"
  "CMakeFiles/hgnn_test.dir/hgnn_test.cc.o.d"
  "hgnn_test"
  "hgnn_test.pdb"
  "hgnn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hgnn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
