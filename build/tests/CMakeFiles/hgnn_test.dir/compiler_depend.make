# Empty compiler generated dependencies file for hgnn_test.
# This may be replaced when dependencies are built.
