# Empty compiler generated dependencies file for bench_nim_scorers.
# This may be replaced when dependencies are built.
