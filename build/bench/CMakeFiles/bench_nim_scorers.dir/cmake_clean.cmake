file(REMOVE_RECURSE
  "CMakeFiles/bench_nim_scorers.dir/bench_nim_scorers.cc.o"
  "CMakeFiles/bench_nim_scorers.dir/bench_nim_scorers.cc.o.d"
  "bench_nim_scorers"
  "bench_nim_scorers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_nim_scorers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
