# Empty dependencies file for bench_table1_hgcond_generalization.
# This may be replaced when dependencies are built.
