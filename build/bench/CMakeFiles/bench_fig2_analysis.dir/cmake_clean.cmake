file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_analysis.dir/bench_fig2_analysis.cc.o"
  "CMakeFiles/bench_fig2_analysis.dir/bench_fig2_analysis.cc.o.d"
  "bench_fig2_analysis"
  "bench_fig2_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
