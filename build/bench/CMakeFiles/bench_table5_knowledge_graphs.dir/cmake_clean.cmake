file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_knowledge_graphs.dir/bench_table5_knowledge_graphs.cc.o"
  "CMakeFiles/bench_table5_knowledge_graphs.dir/bench_table5_knowledge_graphs.cc.o.d"
  "bench_table5_knowledge_graphs"
  "bench_table5_knowledge_graphs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_knowledge_graphs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
