# Empty compiler generated dependencies file for bench_table5_knowledge_graphs.
# This may be replaced when dependencies are built.
