# Empty dependencies file for bench_fig9_interpretability.
# This may be replaced when dependencies are built.
