file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_interpretability.dir/bench_fig9_interpretability.cc.o"
  "CMakeFiles/bench_fig9_interpretability.dir/bench_fig9_interpretability.cc.o.d"
  "bench_fig9_interpretability"
  "bench_fig9_interpretability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_interpretability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
