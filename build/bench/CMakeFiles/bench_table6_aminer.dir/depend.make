# Empty dependencies file for bench_table6_aminer.
# This may be replaced when dependencies are built.
