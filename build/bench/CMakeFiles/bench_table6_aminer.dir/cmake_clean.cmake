file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_aminer.dir/bench_table6_aminer.cc.o"
  "CMakeFiles/bench_table6_aminer.dir/bench_table6_aminer.cc.o.d"
  "bench_table6_aminer"
  "bench_table6_aminer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_aminer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
