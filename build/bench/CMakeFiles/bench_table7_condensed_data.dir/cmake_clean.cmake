file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_condensed_data.dir/bench_table7_condensed_data.cc.o"
  "CMakeFiles/bench_table7_condensed_data.dir/bench_table7_condensed_data.cc.o.d"
  "bench_table7_condensed_data"
  "bench_table7_condensed_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_condensed_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
