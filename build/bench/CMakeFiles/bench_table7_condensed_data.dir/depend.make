# Empty dependencies file for bench_table7_condensed_data.
# This may be replaced when dependencies are built.
