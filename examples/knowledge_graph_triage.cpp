// Scenario: an RDF knowledge graph (MUTAG-style, 46 edge types) must be
// shipped to an edge device for entity classification, where only a tiny
// fraction of the graph fits. The example compares condensation methods
// head-to-head at r = 1% — the Table V setting — and inspects what each
// condensed graph looks like.
//
//   ./build/examples/knowledge_graph_triage

#include <cstdio>

#include "baselines/coreset.h"
#include "baselines/gradient_matching.h"
#include "core/freehgc.h"
#include "datasets/generator.h"
#include "hgnn/trainer.h"

int main() {
  using namespace freehgc;

  const HeteroGraph graph = datasets::MakeMutag(/*seed=*/3);
  std::printf(
      "MUTAG-style knowledge graph: %lld nodes, %lld edges, %d node types, "
      "%d relations\n",
      static_cast<long long>(graph.TotalNodes()),
      static_cast<long long>(graph.TotalEdges()), graph.NumNodeTypes(),
      graph.NumRelations());

  hgnn::PropagateOptions popts;
  popts.max_hops = datasets::RecommendedHops("mutag");
  popts.max_paths = 12;
  const hgnn::EvalContext ctx = hgnn::BuildEvalContext(graph, popts);
  hgnn::HgnnConfig cfg;
  cfg.hidden = 32;
  cfg.epochs = 60;
  cfg.patience = 0;
  const auto whole = hgnn::WholeGraphBaseline(ctx, cfg);
  std::printf("whole-graph accuracy: %.2f%%\n\n",
              100.0f * whole.test_accuracy);

  const double ratio = 0.01;

  // Herding coreset.
  {
    auto res = baselines::CoresetCondense(
        ctx, baselines::CoresetKind::kHerding, ratio, /*seed=*/1);
    if (res.ok()) {
      const auto m = hgnn::TrainAndEvaluate(ctx, res->graph, cfg);
      std::printf("Herding-HG : %.2f%%  (condense %.2fs, %zu bytes)\n",
                  100.0f * m.test_accuracy, res->seconds,
                  res->graph.MemoryBytes());
    }
  }
  // HGCond gradient matching.
  {
    baselines::GradientMatchingOptions gm;
    gm.ratio = ratio;
    gm.hetero = true;
    auto res = baselines::GradientMatchingCondense(ctx, gm);
    if (res.ok()) {
      const auto m = hgnn::TrainOnBlocks(ctx, res->blocks, res->labels, cfg);
      std::printf("HGCond     : %.2f%%  (condense %.2fs, %zu bytes)\n",
                  100.0f * m.test_accuracy, res->seconds,
                  res->MemoryBytes());
    }
  }
  // FreeHGC.
  {
    core::FreeHgcOptions opts;
    opts.ratio = ratio;
    opts.max_hops = popts.max_hops;
    opts.max_paths = popts.max_paths;
    auto res = core::Condense(graph, opts);
    if (res.ok()) {
      const auto m = hgnn::TrainAndEvaluate(ctx, res->graph, cfg);
      std::printf("FreeHGC    : %.2f%%  (condense %.2fs, %zu bytes)\n",
                  100.0f * m.test_accuracy, res->seconds,
                  res->graph.MemoryBytes());
      std::printf("\nFreeHGC condensed graph per-type counts:\n");
      for (TypeId t = 0; t < res->graph.NumNodeTypes(); ++t) {
        std::printf("  %-10s %6d -> %4d\n", graph.TypeName(t).c_str(),
                    graph.NodeCount(t), res->graph.NodeCount(t));
      }
    }
  }
  return 0;
}
