// Quickstart: condense a synthetic ACM-style heterogeneous graph with
// FreeHGC and check that an HGNN trained on the condensed graph holds up
// against whole-graph training.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/freehgc.h"
#include "datasets/generator.h"
#include "eval/experiment.h"
#include "hgnn/trainer.h"

int main() {
  using namespace freehgc;

  // 1. Load (here: generate) a heterogeneous graph. ACM: papers cite
  //    papers and connect to authors, subjects and terms; papers carry
  //    3-class labels.
  const HeteroGraph graph = datasets::MakeAcm(/*seed=*/42);
  std::printf("ACM-style graph: %lld nodes, %lld edges, %d node types, "
              "%d relations\n",
              static_cast<long long>(graph.TotalNodes()),
              static_cast<long long>(graph.TotalEdges()),
              graph.NumNodeTypes(), graph.NumRelations());

  // 2. Build the evaluation context: meta-paths + pre-propagated features
  //    of the full graph (reused by training and testing).
  hgnn::PropagateOptions popts;
  popts.max_hops = datasets::RecommendedHops("acm");
  const hgnn::EvalContext ctx = hgnn::BuildEvalContext(graph, popts);
  std::printf("meta-path feature blocks: %zu\n", ctx.full_features.blocks.size());

  // 3. Condense to 2.4%% with FreeHGC — training-free, so this is fast.
  core::FreeHgcOptions opts;
  opts.ratio = 0.024;
  opts.max_hops = popts.max_hops;
  auto condensed = core::Condense(graph, opts);
  if (!condensed.ok()) {
    std::printf("condensation failed: %s\n",
                condensed.status().ToString().c_str());
    return 1;
  }
  std::printf("condensed: %lld nodes (%.2f%%), %lld edges, in %.2fs\n",
              static_cast<long long>(condensed->graph.TotalNodes()),
              100.0 * condensed->graph.TotalNodes() / graph.TotalNodes(),
              static_cast<long long>(condensed->graph.TotalEdges()),
              condensed->seconds);

  // 4. Train an HGNN (SeHGNN-style fusion) on the condensed graph and
  //    evaluate on the full graph's test split.
  hgnn::HgnnConfig cfg;
  cfg.kind = hgnn::HgnnKind::kSeHGNN;
  const hgnn::EvalMetrics small = hgnn::TrainAndEvaluate(ctx, condensed->graph, cfg);
  const hgnn::EvalMetrics whole = hgnn::WholeGraphBaseline(ctx, cfg);
  std::printf("condensed-graph accuracy: %.2f%%  (train %.2fs)\n",
              100.0f * small.test_accuracy, small.train_seconds);
  std::printf("whole-graph accuracy:     %.2f%%  (train %.2fs)\n",
              100.0f * whole.test_accuracy, whole.train_seconds);
  std::printf("retention: %.1f%% of whole-graph accuracy with %.1f%% of "
              "the data\n",
              100.0f * small.test_accuracy / whole.test_accuracy,
              100.0 * condensed->graph.TotalNodes() / graph.TotalNodes());
  return 0;
}
