// Scenario: a streaming service classifies movies into genres on an
// IMDB-style movie/director/actor/keyword graph, under a storage budget.
// Because FreeHGC is training-free, sweeping the condensation ratio is
// cheap: the example finds the smallest condensed graph that retains a
// target fraction of whole-graph accuracy (the flexible-ratio property of
// the paper's Fig. 7).
//
//   ./build/examples/movie_recommendation

#include <cstdio>
#include <string>

#include "core/freehgc.h"
#include "datasets/generator.h"
#include "hgnn/trainer.h"

int main() {
  using namespace freehgc;

  const HeteroGraph graph = datasets::MakeImdb(/*seed=*/11);
  std::printf("IMDB-style graph: %lld nodes, %lld edges, %d genres\n",
              static_cast<long long>(graph.TotalNodes()),
              static_cast<long long>(graph.TotalEdges()),
              graph.num_classes());

  hgnn::PropagateOptions popts;
  popts.max_hops = datasets::RecommendedHops("imdb");
  popts.max_paths = 12;
  const hgnn::EvalContext ctx = hgnn::BuildEvalContext(graph, popts);

  hgnn::HgnnConfig cfg;
  cfg.hidden = 32;
  cfg.epochs = 60;
  cfg.patience = 0;
  const auto whole = hgnn::WholeGraphBaseline(ctx, cfg);
  std::printf("whole-graph accuracy: %.2f%% (training took %.2fs)\n\n",
              100.0f * whole.test_accuracy, whole.train_seconds);

  constexpr float kRetentionTarget = 0.95f;  // keep 95% of whole accuracy
  std::printf("%-8s %10s %10s %10s %12s\n", "ratio", "nodes", "accuracy",
              "retention", "condense(s)");
  for (double ratio : {0.012, 0.024, 0.048, 0.096, 0.12}) {
    core::FreeHgcOptions opts;
    opts.ratio = ratio;
    opts.max_hops = popts.max_hops;
    opts.max_paths = popts.max_paths;
    auto condensed = core::Condense(graph, opts);
    if (!condensed.ok()) continue;
    const auto metrics = hgnn::TrainAndEvaluate(ctx, condensed->graph, cfg);
    const float retention = metrics.test_accuracy / whole.test_accuracy;
    std::printf("%-8s %10lld %9.2f%% %9.1f%% %12.2f%s\n",
                (std::to_string(100 * ratio).substr(0, 4) + "%").c_str(),
                static_cast<long long>(condensed->graph.TotalNodes()),
                100.0f * metrics.test_accuracy, 100.0f * retention,
                condensed->seconds,
                retention >= kRetentionTarget ? "  <- meets target" : "");
    if (retention >= kRetentionTarget) {
      std::printf(
          "\nsmallest graph meeting the %.0f%% retention target: %.1f%% of "
          "the data (%zu bytes instead of %zu)\n",
          100.0f * kRetentionTarget, 100 * ratio,
          condensed->graph.MemoryBytes(), graph.MemoryBytes());
      break;
    }
  }
  return 0;
}
