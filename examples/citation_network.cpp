// Scenario: an academic platform must retrain its author-field classifier
// (DBLP-style author/paper/term/venue graph) many times — hyper-parameter
// sweeps, architecture search, periodic refreshes. Instead of training on
// the full graph every time, it condenses once with FreeHGC and reuses the
// small graph, checking that the condensed model generalizes across HGNN
// architectures (the paper's Table IV property).
//
//   ./build/examples/citation_network

#include <cstdio>

#include "core/freehgc.h"
#include "datasets/generator.h"
#include "hgnn/trainer.h"

int main() {
  using namespace freehgc;

  const HeteroGraph graph = datasets::MakeDblp(/*seed=*/7);
  std::printf(
      "DBLP-style citation network: %lld nodes / %lld edges; target type "
      "'%s' with %d classes\n",
      static_cast<long long>(graph.TotalNodes()),
      static_cast<long long>(graph.TotalEdges()),
      graph.TypeName(graph.target_type()).c_str(), graph.num_classes());

  // The schema hierarchy drives Algorithm 2: papers bridge authors to
  // terms/venues.
  const auto roles = graph.ClassifySchema();
  for (TypeId t = 0; t < graph.NumNodeTypes(); ++t) {
    const char* role = roles[static_cast<size_t>(t)] == TypeRole::kRoot
                           ? "root"
                           : roles[static_cast<size_t>(t)] ==
                                     TypeRole::kFather
                                 ? "father"
                                 : "leaf";
    std::printf("  type %-7s -> %s\n", graph.TypeName(t).c_str(), role);
  }

  hgnn::PropagateOptions popts;
  popts.max_hops = datasets::RecommendedHops("dblp");
  popts.max_paths = 12;
  const hgnn::EvalContext ctx = hgnn::BuildEvalContext(graph, popts);

  // Condense once.
  core::FreeHgcOptions opts;
  opts.ratio = 0.024;
  opts.max_hops = popts.max_hops;
  opts.max_paths = popts.max_paths;
  auto condensed = core::Condense(graph, opts);
  if (!condensed.ok()) {
    std::printf("condense failed: %s\n",
                condensed.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "\ncondensed to %lld nodes (%.1f%%) in %.2fs; storage %zu -> %zu "
      "bytes\n",
      static_cast<long long>(condensed->graph.TotalNodes()),
      100.0 * condensed->graph.TotalNodes() / graph.TotalNodes(),
      condensed->seconds, graph.MemoryBytes(),
      condensed->graph.MemoryBytes());

  // Reuse the one condensed graph across four HGNN architectures — the
  // "train many models cheaply" workflow that motivates condensation.
  std::printf("\n%-10s %12s %12s\n", "model", "condensed", "whole-graph");
  for (auto kind : {hgnn::HgnnKind::kHGB, hgnn::HgnnKind::kHGT,
                    hgnn::HgnnKind::kHAN, hgnn::HgnnKind::kSeHGNN}) {
    hgnn::HgnnConfig cfg;
    cfg.kind = kind;
    cfg.hidden = 32;
    cfg.epochs = 60;
    cfg.patience = 0;
    const auto small = hgnn::TrainAndEvaluate(ctx, condensed->graph, cfg);
    const auto whole = hgnn::WholeGraphBaseline(ctx, cfg);
    std::printf("%-10s %11.2f%% %11.2f%%  (train %.2fs vs %.2fs)\n",
                hgnn::HgnnKindName(kind), 100.0f * small.test_accuracy,
                100.0f * whole.test_accuracy, small.train_seconds,
                whole.train_seconds);
  }
  return 0;
}
