// Figure 7: FreeHGC accuracy as the condensation ratio grows from 1.2% to
// 12% on ACM and IMDB. The flexible-ratio property: accuracy increases
// monotonically with r and approaches the whole-dataset accuracy (the
// paper reports 99.9% / 99.5% of the whole-graph accuracy at r = 12%).
#include "bench/bench_common.h"
#include "pipeline/sweep.h"

using namespace freehgc;
using namespace freehgc::bench;

int main() {
  PrintHeader("Fig. 7: FreeHGC accuracy vs condensation ratio");
  const std::vector<double> ratios = {0.012, 0.024, 0.048,
                                      0.072, 0.096, 0.12};
  pipeline::SweepSpec spec;
  spec.datasets = {{.name = "acm", .ratios = ratios},
                   {.name = "imdb", .ratios = ratios}};
  spec.methods = {"freehgc"};
  spec.seeds = Seeds();
  spec.whole_graph_baseline = true;

  pipeline::SweepRunner runner(std::move(spec));
  auto result = runner.Run();
  FREEHGC_CHECK(result.ok());

  const std::string model = hgnn::HgnnKindName(hgnn::HgnnKind::kSeHGNN);
  for (const auto& ds : runner.spec().datasets) {
    const auto* whole = result->FindWhole(ds.name, model);
    FREEHGC_CHECK(whole != nullptr);
    const double whole_acc = 100.0f * whole->metrics.test_accuracy;
    std::printf("%s whole-dataset accuracy: %.2f\n", ds.name.c_str(),
                whole_acc);
    TablePrinter table({"Ratio", "FreeHGC", "% of whole"});
    for (double r : ds.ratios) {
      const auto* cell = result->Find(ds.name, r, "freehgc", model);
      FREEHGC_CHECK(cell != nullptr);
      table.AddRow({StrFormat("%.1f%%", 100 * r),
                    pipeline::Cell(cell->agg.accuracy),
                    StrFormat("%.1f%%",
                              cell->agg.accuracy.mean / whole_acc * 100.0)});
    }
    table.Print();
  }
  WriteTextFile("BENCH_fig7.json", result->ToJson());
  return 0;
}
