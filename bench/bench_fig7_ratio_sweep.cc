// Figure 7: FreeHGC accuracy as the condensation ratio grows from 1.2% to
// 12% on ACM and IMDB. The flexible-ratio property: accuracy increases
// monotonically with r and approaches the whole-dataset accuracy (the
// paper reports 99.9% / 99.5% of the whole-graph accuracy at r = 12%).
#include "bench/bench_common.h"
#include "common/string_util.h"

using namespace freehgc;
using namespace freehgc::bench;

int main() {
  PrintHeader("Fig. 7: FreeHGC accuracy vs condensation ratio");
  for (const std::string name : {"acm", "imdb"}) {
    auto env = MakeEnv(name);
    const auto whole = hgnn::WholeGraphBaseline(env->ctx, env->eval_cfg);
    std::printf("%s whole-dataset accuracy: %.2f\n", name.c_str(),
                100.0f * whole.test_accuracy);
    eval::TablePrinter table({"Ratio", "FreeHGC", "% of whole"});
    for (double r : {0.012, 0.024, 0.048, 0.072, 0.096, 0.12}) {
      eval::RunOptions run;
      run.ratio = r;
      const auto agg = eval::RunMethodSeeds(
          env->ctx, eval::MethodKind::kFreeHGC, run, env->eval_cfg, Seeds());
      table.AddRow({StrFormat("%.1f%%", 100 * r),
                    eval::Cell(agg.accuracy),
                    StrFormat("%.1f%%", agg.accuracy.mean /
                                            (100.0 * whole.test_accuracy) *
                                            100.0)});
    }
    table.Print();
  }
  return 0;
}
