// Table VIII: ablation study of FreeHGC's two components on ACM, DBLP and
// AMiner.
//   Condense target-type:  Variant#1 = no receptive-field maximization,
//                          Variant#2 = no meta-path similarity
//                          minimization, Variant#3 = Herding for targets.
//   Condense other-types:  Variant#4 = NIM only (Herding for leaves),
//                          Variant#5 = ILM only (Herding for fathers),
//                          Variant#6 = Herding for both.
// Delta columns report the drop relative to the full FreeHGC baseline.
#include "bench/bench_common.h"
#include "common/string_util.h"
#include "core/freehgc.h"

using namespace freehgc;
using namespace freehgc::bench;

namespace {

double RunVariant(const Env& env, double ratio,
                  const core::FreeHgcOptions& base) {
  std::vector<double> accs;
  for (uint64_t seed : Seeds()) {
    eval::RunOptions run;
    run.ratio = ratio;
    run.seed = seed;
    run.freehgc = base;
    auto res = eval::RunMethod(env.ctx, eval::MethodKind::kFreeHGC, run,
                               env.eval_cfg);
    if (res.ok()) accs.push_back(res->accuracy);
  }
  return eval::Aggregate(accs).mean;
}

}  // namespace

int main() {
  PrintHeader("Table VIII: ablation study (accuracy %, Delta vs FreeHGC)");
  const std::vector<std::pair<std::string, std::vector<double>>> configs = {
      {"acm", {0.012, 0.024, 0.048}},
      {"dblp", {0.012, 0.024, 0.048}},
      {"aminer", {0.0005, 0.002, 0.008}},
  };

  struct Variant {
    std::string name;
    core::FreeHgcOptions opts;
  };
  std::vector<Variant> variants(7);
  variants[0].name = "FreeHGC";
  variants[1].name = "Variant#1 (no RF max)";
  variants[1].opts.target.use_receptive_field = false;
  variants[2].name = "Variant#2 (no J min)";
  variants[2].opts.target.use_jaccard = false;
  variants[3].name = "Variant#3 (Herding tgt)";
  variants[3].opts.target_strategy = core::TargetStrategy::kHerding;
  variants[4].name = "Variant#4 (NIM only)";
  variants[4].opts.leaf_strategy = core::LeafStrategy::kHerding;
  variants[5].name = "Variant#5 (ILM only)";
  variants[5].opts.father_strategy = core::FatherStrategy::kHerding;
  variants[6].name = "Variant#6 (Herding oth)";
  variants[6].opts.father_strategy = core::FatherStrategy::kHerding;
  variants[6].opts.leaf_strategy = core::LeafStrategy::kHerding;

  for (const auto& [name, ratios] : configs) {
    auto env = MakeEnv(name);
    std::vector<std::string> headers = {name};
    for (double r : ratios) {
      headers.push_back(StrFormat("r=%.2f%%", 100 * r));
      headers.push_back("Delta");
    }
    eval::TablePrinter table(std::move(headers));

    std::vector<double> baseline;
    for (double r : ratios) {
      baseline.push_back(RunVariant(*env, r, variants[0].opts));
    }
    std::vector<std::string> base_row = {"FreeHGC (baseline)"};
    for (double acc : baseline) {
      base_row.push_back(StrFormat("%.1f", acc));
      base_row.push_back("");
    }
    table.AddRow(std::move(base_row));

    for (size_t v = 1; v < variants.size(); ++v) {
      std::vector<std::string> row = {variants[v].name};
      for (size_t i = 0; i < ratios.size(); ++i) {
        const double acc = RunVariant(*env, ratios[i], variants[v].opts);
        row.push_back(StrFormat("%.1f", acc));
        row.push_back(StrFormat("%+.1f", acc - baseline[i]));
      }
      table.AddRow(std::move(row));
    }
    table.Print();
  }
  return 0;
}
