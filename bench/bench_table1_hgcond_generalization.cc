// Table I (Section III empirical analysis): HGCond's poor generalization
// across HGNN models at r = 2.4%. The HSGC-relay condensed data is
// evaluated with HeteroSGC, HGT, HGB and SeHGNN and compared against each
// model's whole-graph accuracy ("WA"); the gap grows when the relay and
// the evaluation model differ — the motivation for a model-agnostic
// condenser.
#include "bench/bench_common.h"
#include "common/string_util.h"

using namespace freehgc;
using namespace freehgc::bench;

int main() {
  PrintHeader("Table I: HGCond generalization gap (accuracy % | WA)");
  const std::vector<std::string> datasets = {"acm", "dblp", "imdb",
                                             "freebase"};
  const std::vector<hgnn::HgnnKind> models = {
      hgnn::HgnnKind::kHeteroSGC, hgnn::HgnnKind::kHGT,
      hgnn::HgnnKind::kHGB, hgnn::HgnnKind::kSeHGNN};

  eval::TablePrinter table({"Dataset", "HSGC", "WA", "HGT", "WA", "HGB",
                            "WA", "SeH", "WA"});
  for (const auto& name : datasets) {
    auto env = MakeEnv(name);
    std::vector<std::string> row = {name};
    for (auto kind : models) {
      hgnn::HgnnConfig cfg = env->eval_cfg;
      cfg.kind = kind;
      std::vector<double> accs;
      for (uint64_t seed : Seeds()) {
        eval::RunOptions run;
        run.ratio = 0.024;
        run.seed = seed;
        auto res =
            eval::RunMethod(env->ctx, eval::MethodKind::kHGCond, run, cfg);
        if (res.ok() && !res->oom) accs.push_back(res->accuracy);
      }
      const auto whole = hgnn::WholeGraphBaseline(env->ctx, cfg);
      row.push_back(StrFormat("%.1f", eval::Aggregate(accs).mean));
      row.push_back(StrFormat("%.1f", 100.0f * whole.test_accuracy));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  return 0;
}
