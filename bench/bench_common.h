#ifndef FREEHGC_BENCH_BENCH_COMMON_H_
#define FREEHGC_BENCH_BENCH_COMMON_H_

// Shared setup for the per-table/figure benchmark harnesses. Every bench
// generates its synthetic datasets, runs the methods, and prints rows in
// the same structure as the corresponding table or figure of the paper
// (see DESIGN.md for the experiment index and EXPERIMENTS.md for the
// paper-vs-measured record).

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/string_util.h"
#include "datasets/generator.h"
#include "eval/experiment.h"
#include "exec/exec_context.h"
#include "hgnn/trainer.h"
#include "obs/metrics.h"

namespace freehgc::bench {

/// Worker count every bench harness runs with: the FREEHGC_THREADS
/// environment override when set, hardware concurrency otherwise (the
/// same resolution ExecContext applies). Results are bit-identical for
/// any value; only wall-clock changes.
inline int BenchThreads() { return exec::DefaultExec().num_threads(); }

/// A dataset plus its prebuilt evaluation context (meta-paths + full-graph
/// propagated features) and the shared evaluator configuration.
struct Env {
  HeteroGraph graph;
  hgnn::EvalContext ctx;
  hgnn::HgnnConfig eval_cfg;
};

/// Repo-default dataset scales: mid-scale datasets run at full preset
/// size; AMiner is halved (still ~55k nodes) to keep the large-scale
/// benches within a 1-core budget.
inline double DefaultScale(const std::string& name) {
  return name == "aminer" ? 0.5 : 1.0;
}

/// Builds a dataset + evaluation context. `max_paths` caps meta-path
/// enumeration (12 by default; many-relation schemas truncate).
inline std::unique_ptr<Env> MakeEnv(const std::string& name,
                                    uint64_t seed = 1, int max_paths = 12,
                                    double scale = -1.0) {
  auto env = std::make_unique<Env>();
  auto g = datasets::MakeByName(name, seed,
                                scale > 0 ? scale : DefaultScale(name),
                                &exec::DefaultExec());
  FREEHGC_CHECK(g.ok());
  env->graph = std::move(g).value();
  hgnn::PropagateOptions popts;
  popts.max_hops = std::min(3, datasets::RecommendedHops(name));
  popts.max_paths = max_paths;
  env->ctx = hgnn::BuildEvalContext(env->graph, popts);
  env->eval_cfg.kind = hgnn::HgnnKind::kSeHGNN;  // test model of the paper
  env->eval_cfg.hidden = 32;
  env->eval_cfg.epochs = 60;
  env->eval_cfg.patience = 0;
  return env;
}

/// Default seed set for mean ± std aggregation (the paper uses 5 seeds; 3
/// keeps the full suite within the 1-core budget).
inline std::vector<uint64_t> Seeds() { return {1, 2, 3}; }

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::fflush(stdout);
}

/// JSON object for a Condense stage breakdown, keyed like the paper's
/// pipeline stages. Benches embed this next to the opaque `seconds` so
/// BENCH_*.json attributes condensation time instead of just totaling it.
inline std::string StageSecondsJson(const core::StageSeconds& s) {
  return StrFormat(
      "{\"metapath\": %.6f, \"target\": %.6f, \"father\": %.6f, "
      "\"leaf\": %.6f, \"assemble\": %.6f, \"total\": %.6f}",
      s.metapath, s.target, s.father, s.leaf, s.assemble, s.Total());
}

/// Snapshot of every registered counter/gauge/histogram, as a JSON
/// object (see obs::MetricsRegistry::DumpJson for the schema).
inline std::string MetricsSnapshotJson() {
  return obs::MetricsRegistry::Global().DumpJson();
}

/// Writes `content` to `path`, logging on failure. Bench harnesses use
/// this for their machine-readable BENCH_*.json companions.
inline bool WriteTextFile(const std::string& path,
                          const std::string& content) {
  std::ofstream out(path);
  if (!out) {
    FREEHGC_LOG(Warning) << "cannot write " << path;
    return false;
  }
  out << content;
  return true;
}

}  // namespace freehgc::bench

#endif  // FREEHGC_BENCH_BENCH_COMMON_H_
