// Table V: node classification on the knowledge graphs MUTAG
// (r = {0.5, 1.0, 2.0}%) and AM (r = {0.2, 0.4, 0.8}%), comparing
// Herding-HG, GCond, HGCond and FreeHGC against the whole-graph accuracy.
#include "bench/bench_common.h"
#include "common/string_util.h"

using namespace freehgc;
using namespace freehgc::bench;

int main() {
  PrintHeader("Table V: knowledge graphs MUTAG & AM (accuracy %)");
  const std::vector<std::pair<std::string, std::vector<double>>> configs = {
      {"mutag", {0.005, 0.010, 0.020}},
      {"am", {0.002, 0.004, 0.008}},
  };
  const std::vector<eval::MethodKind> methods = {
      eval::MethodKind::kHerding, eval::MethodKind::kGCond,
      eval::MethodKind::kHGCond, eval::MethodKind::kFreeHGC};

  for (const auto& [name, ratios] : configs) {
    auto env = MakeEnv(name);
    const auto whole = hgnn::WholeGraphBaseline(env->ctx, env->eval_cfg);
    std::printf("%s (Whole ACC: %.2f)\n", name.c_str(),
                100.0f * whole.test_accuracy);

    std::vector<std::string> headers = {"Method"};
    for (double r : ratios) headers.push_back(StrFormat("r=%.1f%%", 100 * r));
    eval::TablePrinter table(std::move(headers));
    for (auto m : methods) {
      std::vector<std::string> row = {eval::MethodName(m)};
      for (double r : ratios) {
        eval::RunOptions run;
        run.ratio = r;
        const auto agg =
            eval::RunMethodSeeds(env->ctx, m, run, env->eval_cfg, Seeds());
        row.push_back(agg.oom ? "OOM" : eval::Cell(agg.accuracy));
      }
      table.AddRow(std::move(row));
    }
    table.Print();
  }
  return 0;
}
