// Multi-process cluster benchmark (ISSUE 9 acceptance): forks the real
// freehgc_meta + freehgc_server binaries, uploads a graph through the
// cluster::Router, and measures
//
//   (a) scale-out — warm condensation throughput over 1/2/4 shards with
//       the graph replicated everywhere. Gate: 4-shard throughput >=
//       2.5x the 1-shard run, enforced when the machine has >= 4 cores
//       (the shards are separate processes; on fewer cores they time-
//       slice one another and the measurement is recorded, not gated —
//       the reason lands in BENCH_cluster.json).
//   (b) failover — 2 shards holding 2 replicas, one SIGKILLed mid-run:
//       every subsequent request must still succeed through the router,
//       and the meta service must report the dead shard. Always gated.
//
// Writes BENCH_cluster.json. Binaries are found next to this one
// (build/bench -> build/tools); override with --bin-dir=PATH.

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "cluster/router.h"
#include "graph/serialize.h"
#include "obs/trace.h"

namespace freehgc::bench {
namespace {

std::string g_bin_dir;
std::string g_tmp_dir;

// ---------------------------------------------------------------------------
// Child-process plumbing.

pid_t Spawn(const std::vector<std::string>& args,
            const std::string& log_path) {
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (const std::string& a : args) {
    argv.push_back(const_cast<char*>(a.c_str()));
  }
  argv.push_back(nullptr);
  const pid_t pid = ::fork();
  FREEHGC_CHECK(pid >= 0) << "fork failed";
  if (pid == 0) {
    const int fd =
        ::open(log_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
      ::dup2(fd, 1);
      ::dup2(fd, 2);
      ::close(fd);
    }
    ::execv(argv[0], argv.data());
    _exit(127);
  }
  return pid;
}

int WaitForPortFile(const std::string& path) {
  for (int i = 0; i < 400; ++i) {
    if (FILE* f = std::fopen(path.c_str(), "r")) {
      int port = 0;
      const bool ok = std::fscanf(f, "%d", &port) == 1 && port > 0;
      std::fclose(f);
      if (ok) return port;
    }
    ::usleep(25 * 1000);
  }
  FREEHGC_CHECK(false) << "port file " << path << " never appeared";
  return 0;
}

void StopProcess(pid_t pid, int sig) {
  if (pid <= 0) return;
  ::kill(pid, sig);
  int status = 0;
  ::waitpid(pid, &status, 0);
}

/// One meta service + N shard processes, found via port files in the
/// bench's temp directory.
struct Cluster {
  pid_t meta_pid = -1;
  int meta_port = 0;
  std::vector<pid_t> shard_pids;
  std::vector<int> shard_ports;

  void Start(int shards, int ttl_ms) {
    const std::string meta_pf = g_tmp_dir + "/meta.port";
    ::unlink(meta_pf.c_str());
    meta_pid = Spawn({g_bin_dir + "/freehgc_meta", "--port=0",
                      "--port-file=" + meta_pf,
                      StrFormat("--heartbeat-ttl-ms=%d", ttl_ms)},
                     g_tmp_dir + "/meta.log");
    meta_port = WaitForPortFile(meta_pf);
    for (int i = 0; i < shards; ++i) {
      const std::string pf = StrFormat("%s/s%d.port", g_tmp_dir.c_str(), i);
      ::unlink(pf.c_str());
      shard_pids.push_back(Spawn(
          {g_bin_dir + "/freehgc_server", "--port=0", "--port-file=" + pf,
           "--slots=1", "--queue-capacity=64",
           StrFormat("--meta=%d", meta_port),
           StrFormat("--shard-id=%d", i + 1), "--heartbeat-ms=100"},
          StrFormat("%s/s%d.log", g_tmp_dir.c_str(), i)));
      shard_ports.push_back(WaitForPortFile(pf));
    }
  }

  void Stop() {
    for (pid_t pid : shard_pids) StopProcess(pid, SIGTERM);
    shard_pids.clear();
    StopProcess(meta_pid, SIGTERM);
    meta_pid = -1;
  }
};

// ---------------------------------------------------------------------------
// Workload.

std::vector<serve::CondenseRequest> MakeWorkload(int total) {
  std::vector<serve::CondenseRequest> reqs;
  reqs.reserve(static_cast<size_t>(total));
  for (int i = 0; i < total; ++i) {
    serve::CondenseRequest req;
    req.graph = "acm";
    req.method = "freehgc";
    req.ratio = 0.05;
    req.seed = static_cast<uint64_t>(1 + i % 5);
    req.max_paths = 6;
    reqs.push_back(req);
  }
  return reqs;
}

/// Closed-loop run of the workload through the router with `clients`
/// submitter threads; returns wall seconds (aborts on any failure).
double RunWorkload(cluster::Router& router,
                   const std::vector<serve::CondenseRequest>& workload,
                   int clients) {
  const int64_t t0 = obs::NowNs();
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      for (size_t i = static_cast<size_t>(c); i < workload.size();
           i += static_cast<size_t>(clients)) {
        auto reply = router.Condense(workload[i]);
        FREEHGC_CHECK(reply.ok()) << reply.status().ToString();
      }
    });
  }
  for (auto& t : threads) t.join();
  return static_cast<double>(obs::NowNs() - t0) * 1e-9;
}

struct ScalePoint {
  int shards = 0;
  int requests = 0;
  double wall_seconds = 0.0;
  double throughput_rps = 0.0;
  int64_t resolves = 0;
  int64_t cache_hits = 0;
};

ScalePoint RunScalePoint(int shards, const std::string& container) {
  Cluster cluster;
  cluster.Start(shards, /*ttl_ms=*/2000);

  cluster::RouterOptions options;
  options.meta_port = cluster.meta_port;
  cluster::Router router(options);
  FREEHGC_CHECK(router.Connect().ok());
  auto info = router.Upload("acm", container, /*replicas=*/shards);
  FREEHGC_CHECK(info.ok()) << info.status().ToString();
  auto placement = router.Resolve("acm");
  FREEHGC_CHECK(placement.ok() &&
                placement->shards.size() == static_cast<size_t>(shards))
      << "graph not placed on all " << shards << " shard(s)";

  const int requests = 12 * shards;
  const auto workload = MakeWorkload(requests);
  const int clients = 2 * shards;
  // Warm-up: every shard pays its EvalContext builds + SpGEMM once; the
  // measured pass is the steady state a serving cluster runs in.
  RunWorkload(router, workload, clients);
  const double wall = RunWorkload(router, workload, clients);

  ScalePoint point;
  point.shards = shards;
  point.requests = requests;
  point.wall_seconds = wall;
  point.throughput_rps = static_cast<double>(requests) / wall;
  const cluster::RouterStats stats = router.stats();
  point.resolves = stats.resolves;
  point.cache_hits = stats.cache_hits;
  FREEHGC_CHECK(stats.failovers == 0 && stats.shards_marked_dead == 0)
      << "healthy-cluster run saw failovers";
  router.Close();
  cluster.Stop();
  return point;
}

struct FailoverResult {
  int requests_after_kill = 0;
  int succeeded = 0;
  int64_t failovers = 0;
  int64_t shards_marked_dead = 0;
  bool dead_shard_reported = false;
  double seconds_until_dead_reported = 0.0;
};

FailoverResult RunFailover(const std::string& container) {
  Cluster cluster;
  cluster.Start(/*shards=*/2, /*ttl_ms=*/500);

  cluster::RouterOptions options;
  options.meta_port = cluster.meta_port;
  options.backoff_ms = 20;
  cluster::Router router(options);
  FREEHGC_CHECK(router.Connect().ok());
  FREEHGC_CHECK(router.Upload("acm", container, /*replicas=*/2).ok());

  const auto workload = MakeWorkload(8);
  // Warm both shards, then kill one the hard way.
  RunWorkload(router, workload, /*clients=*/2);
  const pid_t victim = cluster.shard_pids[1];
  ::kill(victim, SIGKILL);
  int status = 0;
  ::waitpid(victim, &status, 0);
  cluster.shard_pids[1] = -1;

  FailoverResult result;
  result.requests_after_kill = static_cast<int>(workload.size());
  for (const serve::CondenseRequest& req : workload) {
    auto reply = router.Condense(req);
    FREEHGC_CHECK(reply.ok())
        << "request failed after shard kill: " << reply.status().ToString();
    ++result.succeeded;
  }

  // The meta service must declare the killed shard dead on its own
  // (heartbeat TTL), independent of the router's local suspicion.
  const int64_t t0 = obs::NowNs();
  for (int i = 0; i < 200 && !result.dead_shard_reported; ++i) {
    auto shards = router.Shards();
    FREEHGC_CHECK(shards.ok());
    for (const cluster::ShardStatus& s : *shards) {
      if (s.shard_id == 2 && !s.alive) result.dead_shard_reported = true;
    }
    if (!result.dead_shard_reported) ::usleep(50 * 1000);
  }
  result.seconds_until_dead_reported =
      static_cast<double>(obs::NowNs() - t0) * 1e-9;
  const cluster::RouterStats stats = router.stats();
  result.failovers = stats.failovers;
  result.shards_marked_dead = stats.shards_marked_dead;
  router.Close();
  cluster.Stop();
  return result;
}

int Run(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--bin-dir=", 0) == 0) {
      g_bin_dir = arg.substr(std::string("--bin-dir=").size());
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }
  if (g_bin_dir.empty()) {
    char exe[4096] = {0};
    const ssize_t n = ::readlink("/proc/self/exe", exe, sizeof(exe) - 1);
    FREEHGC_CHECK(n > 0) << "cannot resolve /proc/self/exe; pass --bin-dir";
    std::string dir(exe, static_cast<size_t>(n));
    dir = dir.substr(0, dir.rfind('/'));         // .../build/bench
    g_bin_dir = dir.substr(0, dir.rfind('/')) + "/tools";
  }
  char tmpl[] = "/tmp/freehgc_bench_cluster_XXXXXX";
  FREEHGC_CHECK(::mkdtemp(tmpl) != nullptr);
  g_tmp_dir = tmpl;

  PrintHeader("Sharded serving scale-out + failover (BENCH_cluster.json)");
  std::printf("binaries: %s, scratch: %s\n", g_bin_dir.c_str(),
              g_tmp_dir.c_str());

  auto container = SerializeHeteroGraph(
      *datasets::MakeByName("acm", 1, 0.3, &exec::DefaultExec()));
  FREEHGC_CHECK(container.ok());

  std::vector<ScalePoint> points;
  for (int shards : {1, 2, 4}) {
    const ScalePoint p = RunScalePoint(shards, *container);
    std::printf(
        "%d shard(s): %6.2f req/s  (%d requests, %.2fs wall, "
        "%lld resolves, %lld cache hits)\n",
        p.shards, p.throughput_rps, p.requests, p.wall_seconds,
        static_cast<long long>(p.resolves),
        static_cast<long long>(p.cache_hits));
    std::fflush(stdout);
    points.push_back(p);
  }
  const double speedup =
      points.back().throughput_rps / points.front().throughput_rps;

  const unsigned cores = std::thread::hardware_concurrency();
  const bool scale_gate_enforced = cores >= 4;
  const char* scale_reason =
      scale_gate_enforced
          ? "machine has >= 4 cores; shard processes run in parallel"
          : "machine has < 4 cores; shard processes time-slice each "
            "other, so scale-out cannot manifest";
  std::printf("scale-out 4v1: %.2fx (%u cores; gate %s)\n", speedup, cores,
              scale_gate_enforced ? "ENFORCED" : "recorded only");

  const FailoverResult failover = RunFailover(*container);
  std::printf(
      "failover: %d/%d requests succeeded after SIGKILL "
      "(%lld failovers, dead shard reported in %.2fs)\n",
      failover.succeeded, failover.requests_after_kill,
      static_cast<long long>(failover.failovers),
      failover.seconds_until_dead_reported);

  std::string json = "{\n  \"bench\": \"cluster\",\n";
  json += StrFormat(
      "  \"workload\": {\"graph\": \"acm\", \"scale\": 0.3, \"method\": "
      "\"freehgc\", \"ratio\": 0.05, \"max_paths\": 6},\n");
  json += StrFormat("  \"cores\": %u,\n", cores);
  json += "  \"scaleout\": [\n";
  for (size_t i = 0; i < points.size(); ++i) {
    const ScalePoint& p = points[i];
    json += StrFormat(
        "    {\"shards\": %d, \"requests\": %d, \"wall_seconds\": %.4f, "
        "\"throughput_rps\": %.3f, \"speedup_vs_1\": %.3f}%s\n",
        p.shards, p.requests, p.wall_seconds, p.throughput_rps,
        p.throughput_rps / points.front().throughput_rps,
        i + 1 < points.size() ? "," : "");
  }
  json += "  ],\n";
  json += StrFormat(
      "  \"failover\": {\"requests_after_kill\": %d, \"succeeded\": %d, "
      "\"router_failovers\": %lld, \"router_shards_marked_dead\": %lld, "
      "\"dead_shard_reported\": %s, "
      "\"seconds_until_dead_reported\": %.3f},\n",
      failover.requests_after_kill, failover.succeeded,
      static_cast<long long>(failover.failovers),
      static_cast<long long>(failover.shards_marked_dead),
      failover.dead_shard_reported ? "true" : "false",
      failover.seconds_until_dead_reported);
  json += "  \"gates\": {\n";
  json += StrFormat(
      "    \"scaleout_4v1\": {\"required\": 2.5, \"measured\": %.3f, "
      "\"enforced\": %s, \"pass\": %s, \"reason\": \"%s\"},\n",
      speedup, scale_gate_enforced ? "true" : "false",
      speedup >= 2.5 ? "true" : "false", scale_reason);
  const bool failover_pass =
      failover.succeeded == failover.requests_after_kill &&
      failover.dead_shard_reported;
  json += StrFormat(
      "    \"failover\": {\"enforced\": true, \"pass\": %s}\n",
      failover_pass ? "true" : "false");
  json += "  }\n}\n";
  WriteTextFile("BENCH_cluster.json", json);
  std::printf("wrote BENCH_cluster.json\n");

  // Gates. Failover is unconditional; scale-out only where the hardware
  // can express it.
  FREEHGC_CHECK(failover_pass)
      << failover.succeeded << "/" << failover.requests_after_kill
      << " requests succeeded, dead_shard_reported="
      << failover.dead_shard_reported;
  if (scale_gate_enforced) {
    FREEHGC_CHECK(speedup >= 2.5)
        << "4-shard throughput is only " << speedup
        << "x the 1-shard run (gate: 2.5x)";
  }
  return 0;
}

}  // namespace
}  // namespace freehgc::bench

int main(int argc, char** argv) {
  return freehgc::bench::Run(argc, argv);
}
