// Figure 9: interpretability of the data selection criterion. From a
// random sample of 80 ACM target nodes, 10 are selected with FreeHGC's
// criterion F(S) and 10 with Herding; every sample node captured within 3
// hops of a selected node is marked. The bench prints |R(S)| (captured
// count) and the spatial dispersion of the captured set in a t-SNE
// embedding — FreeHGC activates more nodes and spreads them over more of
// the dataset (the paper's two visual observations) — and writes
// fig9_freehgc.csv / fig9_herding.csv scatter data for plotting.
#include <algorithm>
#include <unordered_set>

#include "bench/bench_common.h"
#include "common/string_util.h"
#include "core/selection_util.h"
#include "core/target_selection.h"
#include "viz/tsne.h"

using namespace freehgc;
using namespace freehgc::bench;

namespace {

/// Target-type nodes reachable from `selected` within `hops` hops over the
/// typed adjacency (BFS across all relations).
std::unordered_set<int64_t> CapturedNodes(
    const HeteroGraph& g, const std::vector<int32_t>& selected, int hops) {
  // Frontier entries are (type, id) encoded as type * 2^32 + id.
  auto encode = [](TypeId t, int32_t v) {
    return (static_cast<int64_t>(t) << 32) | static_cast<uint32_t>(v);
  };
  std::unordered_set<int64_t> visited;
  std::vector<std::pair<TypeId, int32_t>> frontier;
  for (int32_t v : selected) {
    visited.insert(encode(g.target_type(), v));
    frontier.push_back({g.target_type(), v});
  }
  for (int h = 0; h < hops; ++h) {
    std::vector<std::pair<TypeId, int32_t>> next;
    for (const auto& [t, v] : frontier) {
      for (RelationId r = 0; r < g.NumRelations(); ++r) {
        if (g.relation(r).src_type != t) continue;
        for (int32_t u : g.relation(r).adj.RowIndices(v)) {
          const int64_t key = encode(g.relation(r).dst_type, u);
          if (visited.insert(key).second) {
            next.push_back({g.relation(r).dst_type, u});
          }
        }
      }
    }
    frontier = std::move(next);
  }
  return visited;
}

}  // namespace

int main() {
  PrintHeader("Fig. 9: selection interpretability (FreeHGC vs Herding)");
  auto env = MakeEnv("acm");
  const HeteroGraph& g = env->graph;
  const TypeId target = g.target_type();

  // 80-node sample of target nodes (from the training pool so both
  // selectors may pick any of them).
  Rng rng(7);
  std::vector<int32_t> sample = g.train_index();
  rng.Shuffle(sample);
  sample.resize(std::min<size_t>(sample.size(), 80));
  std::sort(sample.begin(), sample.end());

  // FreeHGC: rank the sample by the aggregated criterion score.
  std::vector<double> scores;
  core::CondenseTargetNodes(g, env->ctx.paths,
                            static_cast<int32_t>(g.train_index().size()) / 2,
                            {}, &scores);
  std::vector<int32_t> by_score = sample;
  std::stable_sort(by_score.begin(), by_score.end(),
                   [&](int32_t a, int32_t b) {
                     return scores[static_cast<size_t>(a)] >
                            scores[static_cast<size_t>(b)];
                   });
  std::vector<int32_t> free_sel(by_score.begin(), by_score.begin() + 10);

  // Herding on raw features over the same sample.
  std::vector<int32_t> herd_sel =
      core::HerdingSelect(g.Features(target), sample, 10);

  for (const auto& [label, sel] :
       std::vector<std::pair<std::string, std::vector<int32_t>>>{
           {"FreeHGC", free_sel}, {"Herding", herd_sel}}) {
    const auto captured = CapturedNodes(g, sel, /*hops=*/2);
    // Which sample nodes are captured?
    std::vector<int32_t> captured_sample;
    for (int32_t v : sample) {
      if (captured.count((static_cast<int64_t>(target) << 32) |
                         static_cast<uint32_t>(v)) > 0) {
        captured_sample.push_back(v);
      }
    }
    // Embed the sample, compute dispersion of the captured subset.
    Matrix feats = g.Features(target).GatherRows(sample);
    viz::TsneOptions topts;
    topts.iterations = 250;
    Matrix emb = viz::Tsne(feats, topts);
    std::vector<int32_t> captured_rows;
    std::vector<std::string> labels(sample.size(), "uncaptured");
    for (size_t i = 0; i < sample.size(); ++i) {
      const bool is_sel =
          std::count(sel.begin(), sel.end(), sample[i]) > 0;
      const bool is_cap = std::count(captured_sample.begin(),
                                     captured_sample.end(), sample[i]) > 0;
      if (is_sel) labels[i] = "selected";
      else if (is_cap) labels[i] = "captured";
      if (is_cap || is_sel) captured_rows.push_back(static_cast<int32_t>(i));
    }
    const Matrix captured_emb = emb.GatherRows(captured_rows);
    const viz::DispersionStats stats = viz::ComputeDispersion(captured_emb);
    std::printf(
        "%-8s |R(S)| total captured nodes = %5zu, captured in sample = "
        "%2zu/80, mean pairwise dist = %.2f, grid coverage = %.0f%%\n",
        label.c_str(), captured.size(), captured_sample.size(),
        stats.mean_pairwise_distance, 100.0 * stats.grid_coverage);
    const std::string path = "fig9_" + label + ".csv";
    viz::WriteScatterCsv(emb, labels, path);
    std::printf("         scatter written to %s\n", path.c_str());
  }
  return 0;
}
