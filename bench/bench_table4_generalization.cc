// Table IV: generalization of condensed data across HGNN architectures.
// For each dataset (r = 2.4%), Herding-HG / HGCond / FreeHGC condensed
// data is evaluated with HGB, HGT, HAN and SeHGNN; the "Condensed Avg."
// and per-architecture whole-graph average are reported as in the paper.
#include "baselines/coreset.h"
#include "baselines/gradient_matching.h"
#include "bench/bench_common.h"
#include "common/string_util.h"
#include "core/freehgc.h"

using namespace freehgc;
using namespace freehgc::bench;

int main() {
  PrintHeader("Table IV: generalization across HGNN models (accuracy %)");
  const std::vector<std::string> datasets = {"acm", "dblp", "imdb",
                                             "freebase"};
  const std::vector<hgnn::HgnnKind> models = {
      hgnn::HgnnKind::kHGB, hgnn::HgnnKind::kHGT, hgnn::HgnnKind::kHAN,
      hgnn::HgnnKind::kSeHGNN};
  const double ratio = 0.024;

  for (const auto& name : datasets) {
    auto env = MakeEnv(name);

    // Whole-graph average across the four evaluators.
    double whole_sum = 0.0;
    for (auto kind : models) {
      hgnn::HgnnConfig cfg = env->eval_cfg;
      cfg.kind = kind;
      whole_sum += 100.0 * hgnn::WholeGraphBaseline(env->ctx, cfg)
                              .test_accuracy;
    }

    eval::TablePrinter table({name + " r=2.4%", "HGB", "HGT", "HAN",
                              "SeHGNN", "Condensed Avg.", "Whole Avg."});
    for (auto method :
         {eval::MethodKind::kHerding, eval::MethodKind::kHGCond,
          eval::MethodKind::kFreeHGC}) {
      std::vector<std::string> row = {eval::MethodName(method)};
      double sum = 0.0;
      for (auto kind : models) {
        std::vector<double> accs;
        for (uint64_t seed : Seeds()) {
          eval::RunOptions run;
          run.ratio = ratio;
          run.seed = seed;
          hgnn::HgnnConfig cfg = env->eval_cfg;
          cfg.kind = kind;
          auto res = eval::RunMethod(env->ctx, method, run, cfg);
          if (res.ok() && !res->oom) accs.push_back(res->accuracy);
        }
        const auto agg = eval::Aggregate(accs);
        sum += agg.mean;
        row.push_back(eval::Cell(agg));
      }
      row.push_back(StrFormat("%.2f", sum / models.size()));
      row.push_back(StrFormat("%.2f", whole_sum / models.size()));
      table.AddRow(std::move(row));
    }
    table.Print();
  }
  return 0;
}
