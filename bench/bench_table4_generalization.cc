// Table IV: generalization of condensed data across HGNN architectures.
// For each dataset (r = 2.4%), Herding-HG / HGCond / FreeHGC condensed
// data is evaluated with HGB, HGT, HAN and SeHGNN; the "Condensed Avg."
// and per-architecture whole-graph average are reported as in the paper.
#include "bench/bench_common.h"
#include "pipeline/sweep.h"

using namespace freehgc;
using namespace freehgc::bench;

int main() {
  PrintHeader("Table IV: generalization across HGNN models (accuracy %)");
  const double ratio = 0.024;
  pipeline::SweepSpec spec;
  for (const char* name : {"acm", "dblp", "imdb", "freebase"}) {
    spec.datasets.push_back({.name = name, .ratios = {ratio}});
  }
  spec.methods = {"herding", "hgcond", "freehgc"};
  spec.models = {hgnn::HgnnKind::kHGB, hgnn::HgnnKind::kHGT,
                 hgnn::HgnnKind::kHAN, hgnn::HgnnKind::kSeHGNN};
  spec.seeds = Seeds();
  spec.whole_graph_baseline = true;

  pipeline::SweepRunner runner(std::move(spec));
  auto result = runner.Run();
  FREEHGC_CHECK(result.ok());
  pipeline::PrintModelTables(*result, runner.spec(), ratio);
  WriteTextFile("BENCH_table4.json", result->ToJson());
  return 0;
}
