// Sparse-kernel microbenchmark (two-pass SpGEMM overhaul acceptance):
// times every hot kernel in sparse/ops.h against its single-threaded
// reference (sparse/reference.h) and, for SpGEMM, the cold path (fresh
// symbolic pass per product) against the warm path (symbolic plan served
// from a pipeline::ArtifactCache) on the meta-path composition workload.
// Writes BENCH_kernels.json.
//
// Warm-plan SpGEMM must beat cold-plan SpGEMM strictly (FREEHGC_CHECK):
// the warm path pays only operand fingerprinting plus the numeric fill,
// the cold path additionally pays the merge + per-row sort of the
// symbolic pass. `--smoke` runs a scaled-down workload with the same
// assertion (CI gate); both modes exit non-zero on violation.
//
// All timed paths are bit-identical to their references (enforced by
// tests/sparse_reference_test.cc; spot-checked here via CsrMatrix
// equality on the composition results), so the comparison is pure speed.

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "metapath/metapath.h"
#include "obs/trace.h"
#include "pipeline/artifact_cache.h"
#include "sparse/ops.h"
#include "sparse/reference.h"

namespace freehgc::bench {
namespace {

template <typename Fn>
int64_t BestOfNs(int reps, Fn&& fn) {
  int64_t best = INT64_MAX;
  for (int i = 0; i < reps; ++i) {
    const int64_t t0 = obs::NowNs();
    fn();
    const int64_t dt = obs::NowNs() - t0;
    if (dt < best) best = dt;
  }
  return best;
}

struct KernelRow {
  std::string name;
  int64_t reference_ns = 0;
  int64_t optimized_ns = 0;
};

double Speedup(int64_t reference_ns, int64_t optimized_ns) {
  return optimized_ns > 0 ? static_cast<double>(reference_ns) /
                                static_cast<double>(optimized_ns)
                          : 0.0;
}

/// Keeps results observable so the timed calls cannot be elided.
int64_t g_sink = 0;
void Consume(const CsrMatrix& m) { g_sink += m.nnz(); }
void Consume(const Matrix& m) {
  g_sink += static_cast<int64_t>(m.size() > 0 ? m.data()[0] : 0);
}
void Consume(const std::vector<float>& v) {
  g_sink += static_cast<int64_t>(v.size());
}

int Run(bool smoke) {
  const int reps = smoke ? 2 : 5;
  const double scale = smoke ? 0.25 : 1.0;
  const int threads = BenchThreads();
  exec::ExecContext& ex = exec::DefaultExec();
  PrintHeader(smoke ? "Sparse kernels (smoke)" : "Sparse kernels");
  std::printf("threads=%d scale=%.2f reps(best-of)=%d\n", threads, scale,
              reps);

  auto graph_res = datasets::MakeByName("acm", 1, scale, &ex);
  FREEHGC_CHECK(graph_res.ok());
  const HeteroGraph g = std::move(graph_res).value();

  // --- Meta-path composition workload: cold vs warm symbolic plans ------
  // Every SpGEMM operand pair of the >=2-hop paths, exactly as
  // ComposeAdjacency chains them (row-normalized relation adjacencies).
  MetaPathOptions mp;
  mp.max_hops = smoke ? 2 : 3;
  const auto all_paths = EnumerateMetaPaths(g, g.target_type(), mp);
  std::vector<MetaPath> paths;
  for (const auto& p : all_paths) {
    if (p.hops() >= 2) paths.push_back(p);
  }
  FREEHGC_CHECK(!paths.empty()) << "workload needs multi-hop paths";
  const int64_t budget = 512;  // pipeline-default row budget

  const int64_t cold_ns = BestOfNs(reps, [&] {
    for (const auto& p : paths) {
      Consume(ComposeAdjacency(g, p, budget, &ex));
    }
  });

  pipeline::ArtifactCache plans;
  // Populate the plan memo once (the artifact memo is not involved:
  // ComposeAdjacency is called directly, so only Plan() lookups occur).
  for (const auto& p : paths) {
    Consume(ComposeAdjacency(g, p, budget, &ex, &plans));
  }
  const auto populated = plans.stats();
  const int64_t warm_ns = BestOfNs(reps, [&] {
    for (const auto& p : paths) {
      Consume(ComposeAdjacency(g, p, budget, &ex, &plans));
    }
  });
  // Same bits either way (the differential suite proves this per kernel;
  // this is the workload-level spot check).
  FREEHGC_CHECK(ComposeAdjacency(g, paths[0], budget, &ex) ==
                ComposeAdjacency(g, paths[0], budget, &ex, &plans));

  std::printf("compose %zu paths: cold %.3f ms, warm-plan %.3f ms "
              "(%.2fx, %" PRId64 " plans reused)\n",
              paths.size(), static_cast<double>(cold_ns) * 1e-6,
              static_cast<double>(warm_ns) * 1e-6,
              Speedup(cold_ns, warm_ns),
              plans.stats().plan_hits);

  // --- Per-kernel reference vs optimized --------------------------------
  // Operands: the largest relation adjacency (rectangular) and one
  // composed square adjacency (power-law-ish after composition).
  const CsrMatrix* rect = &g.relation(0).adj;
  for (RelationId r = 1; r < g.NumRelations(); ++r) {
    if (g.relation(r).adj.nnz() > rect->nnz()) rect = &g.relation(r).adj;
  }
  const MetaPath* round_trip = nullptr;
  for (const auto& p : paths) {
    if (p.start_type() == p.end_type()) {
      round_trip = &p;
      break;
    }
  }
  FREEHGC_CHECK(round_trip != nullptr) << "no round-trip meta-path";
  const CsrMatrix square =
      ComposeAdjacency(g, *round_trip, /*max_row_nnz=*/0, &ex);
  FREEHGC_CHECK(square.rows() == square.cols());
  const CsrMatrix square_t = sparse::Transpose(square, &ex);
  const CsrMatrix sym = sparse::SymNormalize(
      sparse::reference::SpGemmRef(square, square_t, budget), &ex);

  Rng rng(7);
  Matrix feats(rect->cols(), 64);
  for (int64_t i = 0; i < feats.size(); ++i) {
    feats.data()[i] = rng.NextUniform(-1.0f, 1.0f);
  }
  Matrix feats_rows(rect->rows(), 64);
  for (int64_t i = 0; i < feats_rows.size(); ++i) {
    feats_rows.data()[i] = rng.NextUniform(-1.0f, 1.0f);
  }
  std::vector<float> vec(static_cast<size_t>(rect->cols()));
  for (auto& v : vec) v = rng.NextUniform(-1.0f, 1.0f);
  std::vector<float> vec_rows(static_cast<size_t>(rect->rows()));
  for (auto& v : vec_rows) v = rng.NextUniform(-1.0f, 1.0f);
  std::vector<float> teleport(static_cast<size_t>(sym.rows()),
                              1.0f / static_cast<float>(sym.rows()));
  const int ppr_iters = smoke ? 5 : 15;

  std::vector<KernelRow> rows;
  auto add = [&](const std::string& name, int64_t ref_ns, int64_t opt_ns) {
    rows.push_back({name, ref_ns, opt_ns});
    std::printf("%-14s reference %10.3f ms  optimized %10.3f ms  %6.2fx\n",
                name.c_str(), static_cast<double>(ref_ns) * 1e-6,
                static_cast<double>(opt_ns) * 1e-6,
                Speedup(ref_ns, opt_ns));
  };

  add("transpose",
      BestOfNs(reps, [&] { Consume(sparse::reference::TransposeRef(*rect)); }),
      BestOfNs(reps, [&] { Consume(sparse::Transpose(*rect, &ex)); }));
  add("row_normalize",
      BestOfNs(reps,
               [&] { Consume(sparse::reference::RowNormalizeRef(*rect)); }),
      BestOfNs(reps, [&] { Consume(sparse::RowNormalize(*rect, &ex)); }));
  add("sym_normalize",
      BestOfNs(reps,
               [&] { Consume(sparse::reference::SymNormalizeRef(sym)); }),
      BestOfNs(reps, [&] { Consume(sparse::SymNormalize(sym, &ex)); }));
  add("spgemm",
      BestOfNs(reps, [&] {
        Consume(sparse::reference::SpGemmRef(square, square_t, budget));
      }),
      BestOfNs(reps, [&] {
        Consume(sparse::SpGemm(square, square_t, budget, &ex));
      }));
  add("spmm_dense",
      BestOfNs(reps,
               [&] { Consume(sparse::reference::SpMmDenseRef(*rect, feats)); }),
      BestOfNs(reps, [&] { Consume(sparse::SpMmDense(*rect, feats, &ex)); }));
  add("spmm_dense_t",
      BestOfNs(reps, [&] {
        Consume(sparse::reference::SpMmDenseTRef(*rect, feats_rows));
      }),
      BestOfNs(reps,
               [&] { Consume(sparse::SpMmDenseT(*rect, feats_rows, &ex)); }));
  add("spmv",
      BestOfNs(reps, [&] { Consume(sparse::reference::SpMvRef(*rect, vec)); }),
      BestOfNs(reps, [&] { Consume(sparse::SpMv(*rect, vec, &ex)); }));
  add("spmv_t",
      BestOfNs(reps,
               [&] { Consume(sparse::reference::SpMvTRef(*rect, vec_rows)); }),
      BestOfNs(reps, [&] { Consume(sparse::SpMvT(*rect, vec_rows, &ex)); }));
  add("ppr",
      BestOfNs(reps, [&] {
        Consume(sparse::reference::PprScoresRef(sym, teleport, 0.15f,
                                                ppr_iters, 0.0f));
      }),
      BestOfNs(reps, [&] {
        Consume(
            sparse::PprScores(sym, teleport, 0.15f, ppr_iters, 0.0f, &ex));
      }));

  // --- JSON -------------------------------------------------------------
  std::string json = "{\n";
  json += StrFormat("  \"smoke\": %s,\n", smoke ? "true" : "false");
  json += StrFormat("  \"dataset\": \"acm\",\n  \"scale\": %.2f,\n", scale);
  json += StrFormat("  \"threads\": %d,\n  \"reps\": %d,\n", threads, reps);
  json += StrFormat(
      "  \"spgemm_plan\": {\"paths\": %zu, \"row_budget\": %lld, "
      "\"cold_ns\": %lld, \"warm_ns\": %lld, \"speedup\": %.4f, "
      "\"plans_cached\": %lld, \"plan_bytes\": %zu},\n",
      paths.size(), static_cast<long long>(budget),
      static_cast<long long>(cold_ns), static_cast<long long>(warm_ns),
      Speedup(cold_ns, warm_ns),
      static_cast<long long>(populated.plan_misses), populated.bytes);
  json += "  \"kernels\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    json += StrFormat(
        "    {\"name\": \"%s\", \"reference_ns\": %lld, "
        "\"optimized_ns\": %lld, \"speedup\": %.4f}%s\n",
        rows[i].name.c_str(), static_cast<long long>(rows[i].reference_ns),
        static_cast<long long>(rows[i].optimized_ns),
        Speedup(rows[i].reference_ns, rows[i].optimized_ns),
        i + 1 < rows.size() ? "," : "");
  }
  json += "  ],\n";
  json += StrFormat("  \"sink\": %lld,\n", static_cast<long long>(g_sink));
  json += "  \"metrics\": " + MetricsSnapshotJson() + "\n";
  json += "}\n";
  WriteTextFile("BENCH_kernels.json", json);
  std::printf("wrote BENCH_kernels.json\n");

  // The acceptance gate, after the JSON is on disk so a failure still
  // leaves the numbers available for inspection.
  FREEHGC_CHECK(warm_ns < cold_ns)
      << "warm-plan SpGEMM (" << warm_ns
      << " ns) must strictly beat cold-plan (" << cold_ns << " ns)";
  return 0;
}

}  // namespace
}  // namespace freehgc::bench

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  return freehgc::bench::Run(smoke);
}
