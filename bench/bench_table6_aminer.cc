// Table VI: scalability on the large-scale AMiner dataset at
// r = {0.05, 0.2, 0.8}%. GCond hits the (simulated) accelerator memory
// gate for r > 0.05% because its dense synthetic adjacency grows
// quadratically — the OOM entries of the paper's table. The memory scale
// maps our reduced AMiner back to the paper's 4.89M-node original.
#include "bench/bench_common.h"
#include "common/string_util.h"

using namespace freehgc;
using namespace freehgc::bench;

int main() {
  PrintHeader("Table VI: large-scale AMiner (accuracy %)");
  auto env = MakeEnv("aminer");
  const auto whole = hgnn::WholeGraphBaseline(env->ctx, env->eval_cfg);

  // Paper AMiner has 4.89M nodes; this env's graph is scaled down, so the
  // projected-footprint gate multiplies node counts back up.
  const double memory_scale =
      4891819.0 / static_cast<double>(env->graph.TotalNodes());

  const std::vector<double> ratios = {0.0005, 0.002, 0.008};
  std::vector<std::string> headers = {"Methods"};
  for (double r : ratios) headers.push_back(StrFormat("r=%.2f%%", 100 * r));
  headers.push_back("Whole acc");
  eval::TablePrinter table(std::move(headers));

  for (auto m : {eval::MethodKind::kHerding, eval::MethodKind::kGCond,
                 eval::MethodKind::kHGCond, eval::MethodKind::kFreeHGC}) {
    std::vector<std::string> row = {eval::MethodName(m)};
    for (double r : ratios) {
      eval::RunOptions run;
      run.ratio = r;
      if (m == eval::MethodKind::kGCond) {
        run.gm.memory_budget_bytes = 24ULL << 30;  // 24GB TITAN RTX
        run.gm.memory_scale = memory_scale;
      }
      const auto agg =
          eval::RunMethodSeeds(env->ctx, m, run, env->eval_cfg, Seeds());
      row.push_back(agg.oom ? "OOM" : eval::Cell(agg.accuracy));
    }
    row.push_back(StrFormat("%.2f", 100.0f * whole.test_accuracy));
    table.AddRow(std::move(row));
  }
  table.Print();
  return 0;
}
