// Container load-path benchmark (v3 tentpole acceptance): heap
// deserialize (v2 container -> owned arrays -> full-graph fingerprint,
// what GraphStore::RegisterSerialized pays per upload) vs zero-copy map
// (v3 container -> CRC verify -> FromView spans, fingerprint read from
// the header). Mapped registration must be at least 10x faster — the
// FREEHGC_CHECK below is the acceptance gate. Writes BENCH_container.json.
//
// Both paths run against a page-cache-warm file (each container is
// written immediately before timing), so the gap measured is the work
// the load path itself does — allocate + copy + FNV for heap, PCLMUL CRC
// + section-table parse for mapped — not disk speed.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/timer.h"
#include "graph/serialize.h"
#include "serve/graph_store.h"

namespace freehgc::bench {
namespace {

constexpr int kReps = 5;

double MinSeconds(const std::vector<double>& xs) {
  double best = xs.empty() ? 0.0 : xs[0];
  for (double x : xs) best = x < best ? x : best;
  return best;
}

int Run() {
  PrintHeader("container: heap deserialize vs zero-copy map");
  const double scale = 2.0;
  const HeteroGraph g = datasets::MakeAminer(1, scale, &exec::DefaultExec());
  const uint64_t want_fp = g.ContentFingerprint();
  const std::string v2_path = "/tmp/freehgc_bench_container_v2.bin";
  const std::string v3_path = "/tmp/freehgc_bench_container_v3.fhgc";
  FREEHGC_CHECK(SaveHeteroGraph(g, v2_path).ok());
  auto v3 = SaveHeteroGraphV3(g, v3_path);
  FREEHGC_CHECK(v3.ok());
  std::printf("graph: aminer scale %.1f, %lld nodes, %lld edges, "
              "%zu logical bytes (v3 file %llu bytes)\n",
              scale, static_cast<long long>(g.TotalNodes()),
              static_cast<long long>(g.TotalEdges()), g.MemoryBytes(),
              static_cast<unsigned long long>(v3->file_bytes));

  // Heap path: what an upload-style registration costs — read + parse
  // into owned vectors, then the full-graph FNV pass for the identity
  // the scheduler and ArtifactCache key on.
  std::vector<double> heap_s;
  size_t heap_resident = 0;
  for (int r = 0; r < kReps; ++r) {
    Timer t;
    auto loaded = LoadHeteroGraph(v2_path);
    FREEHGC_CHECK(loaded.ok());
    const uint64_t fp = loaded->ContentFingerprint();
    heap_s.push_back(t.ElapsedSeconds());
    FREEHGC_CHECK(fp == want_fp);
    heap_resident = loaded->ResidentHeapBytes();
  }

  // Mapped path: verify every section CRC, build FromView spans over the
  // mapping, trust the header fingerprint.
  std::vector<double> mapped_s;
  size_t mapped_resident = 0;
  for (int r = 0; r < kReps; ++r) {
    Timer t;
    auto mg = MapHeteroGraphDetailed(v3_path);
    FREEHGC_CHECK(mg.ok());
    mapped_s.push_back(t.ElapsedSeconds());
    FREEHGC_CHECK(mg->fingerprint == want_fp);
    mapped_resident = mg->graph.ResidentHeapBytes();
  }

  // End-to-end store registration, mapped flavor (adds Validate + the
  // catalog insert) — the latency a --map flag or spooled upload pays.
  serve::GraphStore store;
  Timer reg_timer;
  auto reg = store.RegisterMappedFile("aminer", v3_path);
  const double register_s = reg_timer.ElapsedSeconds();
  FREEHGC_CHECK(reg.ok());
  FREEHGC_CHECK(reg->mapped);

  const double heap_best = MinSeconds(heap_s);
  const double mapped_best = MinSeconds(mapped_s);
  const double ratio = mapped_best > 0 ? heap_best / mapped_best : 0.0;
  std::printf("heap deserialize + fingerprint: %8.3f ms  (resident %zu)\n",
              heap_best * 1e3, heap_resident);
  std::printf("zero-copy map + CRC verify:     %8.3f ms  (resident %zu)\n",
              mapped_best * 1e3, mapped_resident);
  std::printf("store RegisterMappedFile:       %8.3f ms\n", register_s * 1e3);
  std::printf("speedup: %.1fx (gate: >= 10x)\n", ratio);

  // The tentpole acceptance property.
  FREEHGC_CHECK(ratio >= 10.0)
      << "mapped registration only " << ratio
      << "x faster than heap deserialize (gate: 10x)";
  FREEHGC_CHECK(mapped_resident * 10 < heap_resident)
      << "mapped graph owns " << mapped_resident
      << " heap bytes vs heap load's " << heap_resident;

  std::string json = "{\n  \"bench\": \"container\",\n";
  json += StrFormat(
      "  \"graph\": {\"preset\": \"aminer\", \"scale\": %.1f, "
      "\"nodes\": %lld, \"edges\": %lld, \"logical_bytes\": %zu, "
      "\"v3_file_bytes\": %llu},\n",
      scale, static_cast<long long>(g.TotalNodes()),
      static_cast<long long>(g.TotalEdges()), g.MemoryBytes(),
      static_cast<unsigned long long>(v3->file_bytes));
  json += StrFormat("  \"reps\": %d,\n", kReps);
  json += StrFormat(
      "  \"heap\": {\"best_seconds\": %.6f, \"resident_bytes\": %zu},\n",
      heap_best, heap_resident);
  json += StrFormat(
      "  \"mapped\": {\"best_seconds\": %.6f, \"resident_bytes\": %zu, "
      "\"register_seconds\": %.6f},\n",
      mapped_best, mapped_resident, register_s);
  json += StrFormat("  \"speedup\": %.2f,\n", ratio);
  json += "  \"gate\": {\"min_speedup\": 10.0, \"passed\": true}\n}\n";
  WriteTextFile("BENCH_container.json", json);
  std::printf("wrote BENCH_container.json\n");

  std::remove(v2_path.c_str());
  std::remove(v3_path.c_str());
  return 0;
}

}  // namespace
}  // namespace freehgc::bench

int main() { return freehgc::bench::Run(); }
