// Serving-layer load bench (BENCH_serve.json): closed-loop phases measure
// service capacity at 1/2/4 worker slots (cold cache vs a duration-based
// warm sustain), then an open-loop ramp/sustain/overload section drives a
// 2-slot service at fixed arrival rates through bench/loadgen with a
// Pareto 80/20 class mix — the part a closed-loop driver cannot measure
// (tail latency and shedding under an offered load the server does not
// control).
//
// Workload: one resident mid-scale ACM graph, three meta-path
// configurations x five seeds (15 distinct request classes). The cold
// phase pays every EvalContext build and SpGEMM; warm phases replay the
// mix against the populated ArtifactCache + coalesced contexts.
//
// Gates (FREEHGC_CHECK):
//   - warm throughput strictly exceeds cold at every slot count, with
//     zero warm EvalContext builds;
//   - 4-slot cold p50 and throughput are no worse than 2-slot (the PR-4
//     era regression: slots time-slicing the cores made 4 slots ~2x
//     *slower* cold; the scheduler's concurrent-dispatch cap kills it);
//   - the open-loop section completes with zero protocol errors and the
//     overload phase actually sheds.

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/loadgen/loadgen.h"
#include "bench_common.h"
#include "obs/exposition.h"
#include "obs/trace.h"
#include "serve/service.h"

namespace freehgc::bench {
namespace {

struct PhaseResult {
  int64_t issued = 0;  // requests actually sent this phase
  double wall_seconds = 0.0;
  double throughput_rps = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  /// Per-phase mean queue wait and execution time, recovered from the
  /// METRICS snapshot delta (freehgc_serve_latency_{queue,exec}_ns) —
  /// the split that shows whether added latency is contention (queue
  /// grows) or slower kernels (exec grows).
  double queue_mean_ms = 0.0;
  double exec_mean_ms = 0.0;
  int64_t eval_context_builds = 0;
  int64_t coalesced = 0;
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
};

/// Sample value from a scraped METRICS snapshot (0 when absent).
double Prom(const std::vector<obs::PromSample>& samples,
            const std::string& name) {
  double v = 0.0;
  obs::FindPromValue(samples, name, &v);
  return v;
}

/// The request mix: 3 meta-path configurations x `seeds_per_path` seeds
/// (distinct coalesce keys; 3 distinct EvalContexts regardless of seeds).
std::vector<serve::CondenseRequest> MakeWorkload(int seeds_per_path = 5) {
  const int path_caps[3] = {4, 6, 8};
  std::vector<serve::CondenseRequest> reqs;
  for (int p = 0; p < 3; ++p) {
    for (int s = 0; s < seeds_per_path; ++s) {
      serve::CondenseRequest req;
      req.graph = "acm";
      req.method = "freehgc";
      req.ratio = 0.05;
      req.seed = static_cast<uint64_t>(1 + s);
      req.max_paths = path_caps[p];
      reqs.push_back(req);
    }
  }
  return reqs;
}

/// Runs the workload closed-loop on `clients` submitter threads, each
/// cycling through its stripe of the request mix. duration_seconds > 0
/// keeps issuing until the deadline (the sustain shape — enough samples
/// for a stable p99); <= 0 makes exactly `passes` passes over the mix.
PhaseResult RunPhase(serve::ServeService& service,
                     const std::vector<serve::CondenseRequest>& workload,
                     int clients, double duration_seconds, int passes = 1) {
  const int64_t builds_before = service.eval_context_builds();
  const auto cache_before = service.cache().stats();
  // Scrape the metrics registry exactly the way a remote poller would —
  // the phase breakdown below must be recoverable from METRICS alone.
  const auto prom_before = obs::ParsePrometheusText(obs::PrometheusText());

  std::vector<std::vector<int64_t>> samples(static_cast<size_t>(clients));
  const int64_t t0 = obs::NowNs();
  const int64_t deadline_ns =
      duration_seconds > 0
          ? t0 + static_cast<int64_t>(duration_seconds * 1e9)
          : 0;
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      const size_t n = workload.size();
      const size_t end = deadline_ns > 0
                             ? 0  // unused; deadline governs
                             : n * static_cast<size_t>(passes);
      for (size_t i = static_cast<size_t>(c);; i += static_cast<size_t>(clients)) {
        if (deadline_ns > 0) {
          if (obs::NowNs() >= deadline_ns) break;
        } else if (i >= end) {
          break;
        }
        const int64_t s0 = obs::NowNs();
        auto reply = service.Condense(workload[i % n]);
        FREEHGC_CHECK(reply.ok()) << reply.status().ToString();
        samples[static_cast<size_t>(c)].push_back(obs::NowNs() - s0);
      }
    });
  }
  for (auto& t : threads) t.join();
  const double wall = static_cast<double>(obs::NowNs() - t0) * 1e-9;

  std::vector<int64_t> all;
  for (auto& s : samples) all.insert(all.end(), s.begin(), s.end());
  const auto cache_after = service.cache().stats();
  const auto prom_after = obs::ParsePrometheusText(obs::PrometheusText());

  // Snapshot counters must agree with the bench's own accounting: every
  // request this phase issued completed (coalesced followers included),
  // each completion landed one queue-latency observation, and the
  // exec-latency histogram counts real executions only.
  const double completed_delta =
      Prom(prom_after, "freehgc_serve_requests_completed_total") -
      Prom(prom_before, "freehgc_serve_requests_completed_total");
  const double coalesced_delta =
      Prom(prom_after, "freehgc_serve_coalesced_total") -
      Prom(prom_before, "freehgc_serve_coalesced_total");
  FREEHGC_CHECK(completed_delta == static_cast<double>(all.size()))
      << "METRICS completed delta " << completed_delta << " != "
      << all.size() << " requests issued";
  const double queue_count =
      Prom(prom_after, "freehgc_serve_latency_queue_ns_count") -
      Prom(prom_before, "freehgc_serve_latency_queue_ns_count");
  const double exec_count =
      Prom(prom_after, "freehgc_serve_latency_exec_ns_count") -
      Prom(prom_before, "freehgc_serve_latency_exec_ns_count");
  FREEHGC_CHECK(queue_count == completed_delta &&
                exec_count == completed_delta - coalesced_delta)
      << "latency histogram counts (queue " << queue_count << ", exec "
      << exec_count << ") inconsistent with completed " << completed_delta
      << " / coalesced " << coalesced_delta;

  PhaseResult out;
  out.issued = static_cast<int64_t>(all.size());
  out.wall_seconds = wall;
  out.throughput_rps = static_cast<double>(all.size()) / wall;
  out.p50_ms = loadgen::QuantileMs(all, 0.50);
  out.p95_ms = loadgen::QuantileMs(all, 0.95);
  out.p99_ms = loadgen::QuantileMs(all, 0.99);
  out.queue_mean_ms =
      (Prom(prom_after, "freehgc_serve_latency_queue_ns_sum") -
       Prom(prom_before, "freehgc_serve_latency_queue_ns_sum")) /
      queue_count * 1e-6;
  if (exec_count > 0) {
    out.exec_mean_ms =
        (Prom(prom_after, "freehgc_serve_latency_exec_ns_sum") -
         Prom(prom_before, "freehgc_serve_latency_exec_ns_sum")) /
        exec_count * 1e-6;
  }
  out.eval_context_builds = service.eval_context_builds() - builds_before;
  out.coalesced = static_cast<int64_t>(coalesced_delta);
  out.cache_hits = cache_after.hits - cache_before.hits;
  out.cache_misses = cache_after.misses - cache_before.misses;
  return out;
}

std::string PhaseJson(int slots, const char* phase, const PhaseResult& r) {
  return StrFormat(
      "    {\"slots\": %d, \"phase\": \"%s\", \"requests\": %lld, "
      "\"wall_seconds\": %.4f, \"throughput_rps\": %.3f, "
      "\"latency_ms\": {\"p50\": %.3f, \"p95\": %.3f, \"p99\": %.3f}, "
      "\"breakdown_ms\": {\"queue_mean\": %.3f, \"exec_mean\": %.3f}, "
      "\"eval_context_builds\": %lld, \"coalesced\": %lld, "
      "\"cache\": {\"hits\": %lld, \"misses\": %lld}}",
      slots, phase, static_cast<long long>(r.issued), r.wall_seconds,
      r.throughput_rps, r.p50_ms, r.p95_ms, r.p99_ms, r.queue_mean_ms,
      r.exec_mean_ms, static_cast<long long>(r.eval_context_builds),
      static_cast<long long>(r.coalesced),
      static_cast<long long>(r.cache_hits),
      static_cast<long long>(r.cache_misses));
}

void Print(int slots, const char* phase, const PhaseResult& r) {
  std::printf(
      "%d slot(s) %-4s : %5lld req  %6.2f req/s  p50 %7.2f ms  "
      "p95 %7.2f ms  p99 %7.2f ms  queue %7.2f ms  exec %7.2f ms  "
      "(%lld ctx builds, %lld coalesced)\n",
      slots, phase, static_cast<long long>(r.issued), r.throughput_rps,
      r.p50_ms, r.p95_ms, r.p99_ms, r.queue_mean_ms, r.exec_mean_ms,
      static_cast<long long>(r.eval_context_builds),
      static_cast<long long>(r.coalesced));
  std::fflush(stdout);
}

void PrintOpenLoop(const loadgen::PhaseReport& r) {
  std::printf(
      "open-loop %-8s: offered %7.1f rps  achieved %7.1f rps  "
      "p50 %7.2f ms  p99 %7.2f ms  ok %lld  shed %lld  err %lld\n",
      r.name.c_str(), r.offered_rps, r.achieved_rps, r.p50_ms, r.p99_ms,
      static_cast<long long>(r.ok), static_cast<long long>(r.shed),
      static_cast<long long>(r.errors));
  std::fflush(stdout);
}

constexpr double kScale = 0.3;
constexpr int kClients = 8;           // fixed across slot counts
constexpr double kWarmSeconds = 1.2;  // duration-based warm sustain
constexpr int kColdTrials = 3;        // median-of-3 cold gate (noise)

/// Element-wise median of the cold trials (p50/throughput gates must not
/// ride one noisy trial on a time-shared CI core).
PhaseResult MedianCold(std::vector<PhaseResult> trials) {
  auto mid = [&](auto field) {
    std::vector<double> v;
    for (const auto& t : trials) v.push_back(field(t));
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
  };
  PhaseResult out = trials.front();
  out.throughput_rps = mid([](const PhaseResult& t) { return t.throughput_rps; });
  out.p50_ms = mid([](const PhaseResult& t) { return t.p50_ms; });
  out.p95_ms = mid([](const PhaseResult& t) { return t.p95_ms; });
  out.p99_ms = mid([](const PhaseResult& t) { return t.p99_ms; });
  out.queue_mean_ms = mid([](const PhaseResult& t) { return t.queue_mean_ms; });
  out.exec_mean_ms = mid([](const PhaseResult& t) { return t.exec_mean_ms; });
  return out;
}

/// Open-loop section: ramp/sustain/overload against a fresh 2-slot
/// service, rates derived from the measured 2-slot warm capacity so the
/// overload phase genuinely overloads on any machine.
std::string RunOpenLoopSection(double warm_capacity_rps,
                               loadgen::RunReport* out_report) {
  serve::ServeOptions opts;
  opts.slots = 2;
  opts.queue_capacity = 8;  // small on purpose: overload must shed
  // This section measures *admission control* (queue-full and SLO sheds,
  // tail latency at fixed offered rates), so coalescing is off: with it
  // on, every duplicate of an in-flight class rides its leader without a
  // queue slot, and a finite class universe can absorb any offered rate
  // without ever filling the queue — the closed-loop phases above and
  // the scheduler tests are where coalescing earns its keep.
  opts.coalesce_requests = false;
  opts.slo_ms = 100;
  serve::ServeService service(opts);
  auto info = service.store().RegisterGenerator("acm", "acm", 1, kScale);
  FREEHGC_CHECK(info.ok()) << info.status().ToString();

  // A wider class universe than the closed-loop phases: coalescing caps
  // the queue's distinct-key population at the class count, so with only
  // 15 classes a 16-deep queue can never fill no matter the offered rate.
  // 60 classes is the interesting regime — the Pareto head coalesces,
  // the cold tail has to queue, and overload genuinely sheds.
  const auto workload = MakeWorkload(/*seeds_per_path=*/20);

  // Warm the caches so the open-loop phases measure steady state, not
  // first-touch EvalContext builds.
  RunPhase(service, workload, /*clients=*/4, /*duration_seconds=*/0);

  loadgen::LoadSpec spec;
  spec.seed = 42;
  for (const auto& req : workload) {
    loadgen::RequestClass cls;
    cls.name = StrFormat("p%ds%llu", req.max_paths,
                         static_cast<unsigned long long>(req.seed));
    cls.request = req;
    spec.classes.push_back(cls);
  }
  // The closed-loop warm number underestimates paced capacity (its 8
  // spinning clients contend for the same cores as the workers), and
  // coalescing multiplies the ok-throughput well past the execution
  // drain rate, so the overload multiple is deliberately aggressive: the
  // overload phase must push enough *distinct cold-tail* keys per drain
  // interval to pin the admission queue full, not merely exceed a
  // nominal rps figure. The gate only needs "past saturation", not a
  // precise multiple. Client threads must exceed the admission queue
  // depth or the generator itself caps the outstanding requests below
  // queue capacity and shedding can never trigger.
  const double cap = warm_capacity_rps;
  const double overload = std::max(20.0 * cap, 3000.0);
  spec.phases.push_back({"ramp", 1.0, 0.25 * cap, 1.0 * cap});
  spec.phases.push_back({"sustain", 2.0, 0.6 * cap, 0.6 * cap});
  spec.phases.push_back({"overload", 1.0, overload, overload});
  const auto schedule = loadgen::BuildSchedule(spec);

  const auto report = loadgen::RunOpenLoop(
      spec, schedule, /*client_threads=*/2 * opts.queue_capacity,
      [&](const serve::CondenseRequest& req, uint32_t) -> Status {
        return service.Condense(req).status();
      });
  service.Shutdown();

  std::string json;
  for (size_t i = 0; i < report.phases.size(); ++i) {
    PrintOpenLoop(report.phases[i]);
    json += "    " + loadgen::PhaseReportJson(report.phases[i]);
    json += i + 1 < report.phases.size() ? ",\n" : "\n";
  }
  *out_report = report;
  return json;
}

int Run() {
  PrintHeader("Serving-layer load (BENCH_serve.json)");
  const auto workload = MakeWorkload();

  std::vector<std::string> rows;
  PhaseResult cold_by_slots[5];
  double warm2_rps = 0.0;
  for (int slots : {1, 2, 4}) {
    serve::ServeOptions opts;
    opts.slots = slots;
    opts.queue_capacity = 64;  // closed-loop: measure service, not sheds

    // kColdTrials fresh services, each paying its EvalContext builds
    // from scratch; the gates compare element-wise medians. The last
    // service stays up for the warm phase.
    std::vector<PhaseResult> cold_trials;
    PhaseResult warm;
    for (int trial = 0; trial < kColdTrials; ++trial) {
      serve::ServeService service(opts);
      auto info = service.store().RegisterGenerator("acm", "acm", 1, kScale);
      FREEHGC_CHECK(info.ok()) << info.status().ToString();
      cold_trials.push_back(RunPhase(service, workload, kClients,
                                     /*duration_seconds=*/0, /*passes=*/3));
      FREEHGC_CHECK(cold_trials.back().eval_context_builds == 3);
      if (trial + 1 == kColdTrials) {
        warm = RunPhase(service, workload, kClients, kWarmSeconds);
      }
      service.Shutdown();
    }
    const PhaseResult cold = MedianCold(std::move(cold_trials));
    Print(slots, "cold", cold);
    Print(slots, "warm", warm);

    // Acceptance: with the caches hot, the same mix runs strictly faster
    // (no EvalContext builds, SpGEMM memoized).
    FREEHGC_CHECK(warm.throughput_rps > cold.throughput_rps)
        << "warm throughput " << warm.throughput_rps
        << " req/s did not exceed cold " << cold.throughput_rps
        << " req/s at " << slots << " slot(s)";
    FREEHGC_CHECK(warm.eval_context_builds == 0);

    if (slots <= 4) cold_by_slots[slots] = cold;
    if (slots == 2) warm2_rps = warm.throughput_rps;
    rows.push_back(PhaseJson(slots, "cold", cold));
    rows.push_back(PhaseJson(slots, "warm", warm));
  }

  // The headline gate: 4 slots must be no worse than 2 cold. Before the
  // scheduler capped concurrent dispatch at the core budget, 4 slots
  // time-sliced the cores (p50 ~2.2x worse, throughput lower); with the
  // cap they are equivalent modulo noise on core-starved machines and
  // genuinely faster on big ones. The margins (15% + 2 ms, 15%) absorb
  // single-core CI jitter while still failing on any real regression.
  const PhaseResult& c2 = cold_by_slots[2];
  const PhaseResult& c4 = cold_by_slots[4];
  FREEHGC_CHECK(c4.p50_ms <= c2.p50_ms * 1.15 + 2.0)
      << "4-slot cold p50 " << c4.p50_ms
      << " ms regressed past 2-slot cold p50 " << c2.p50_ms << " ms";
  FREEHGC_CHECK(c4.throughput_rps >= c2.throughput_rps * 0.85)
      << "4-slot cold throughput " << c4.throughput_rps
      << " req/s regressed past 2-slot " << c2.throughput_rps << " req/s";

  loadgen::RunReport open_report;
  const std::string open_rows = RunOpenLoopSection(warm2_rps, &open_report);
  FREEHGC_CHECK(open_report.errors == 0)
      << open_report.errors << " protocol/internal errors in the open-loop "
      << "section";
  FREEHGC_CHECK(open_report.phases.back().shed > 0)
      << "overload phase at 3x capacity shed nothing — open loop is not "
      << "actually overloading";

  std::string json = "{\n  \"bench\": \"serve_load\",\n";
  json += StrFormat(
      "  \"workload\": {\"graph\": \"acm\", \"scale\": %.2f, "
      "\"classes\": %d, \"method\": \"freehgc\", \"ratio\": 0.05, "
      "\"path_configs\": 3, \"clients\": %d, \"warm_seconds\": %.1f, "
      "\"cold_trials\": %d},\n",
      kScale, static_cast<int>(workload.size()), kClients, kWarmSeconds,
      kColdTrials);
  json += StrFormat("  \"threads\": %d,\n", BenchThreads());
  json += "  \"runs\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    json += rows[i];
    json += i + 1 < rows.size() ? ",\n" : "\n";
  }
  json += "  ],\n";
  json += StrFormat(
      "  \"gates\": {\"cold_p50_ms\": {\"slots2\": %.3f, \"slots4\": %.3f}, "
      "\"cold_throughput_rps\": {\"slots2\": %.3f, \"slots4\": %.3f}},\n",
      c2.p50_ms, c4.p50_ms, c2.throughput_rps, c4.throughput_rps);
  json += "  \"open_loop\": [\n";
  json += open_rows;
  json += "  ]\n}\n";
  WriteTextFile("BENCH_serve.json", json);
  std::printf("wrote BENCH_serve.json\n");
  return 0;
}

}  // namespace
}  // namespace freehgc::bench

int main() { return freehgc::bench::Run(); }
