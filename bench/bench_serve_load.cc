// Closed-loop load generator for the serving layer (ISSUE 4 acceptance):
// drives a ServeService in-process at 1/2/4 worker slots, cold cache vs
// warm cache, and reports throughput plus exact p50/p95/p99 latency from
// the raw samples. Writes BENCH_serve.json.
//
// Workload: one resident mid-scale ACM graph, three distinct meta-path
// configurations. The cold phase pays every EvalContext build and SpGEMM;
// the warm phase replays the same request mix against the populated
// ArtifactCache + coalesced contexts — warm throughput must strictly
// exceed cold on this same-graph workload (FREEHGC_CHECK below).

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "obs/exposition.h"
#include "obs/trace.h"
#include "serve/service.h"

namespace freehgc::bench {
namespace {

struct PhaseResult {
  double wall_seconds = 0.0;
  double throughput_rps = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  /// Per-phase mean queue wait and execution time, recovered from the
  /// METRICS snapshot delta (freehgc_serve_latency_{queue,exec}_ns) —
  /// the split that shows whether added latency is contention (queue
  /// grows) or slower kernels (exec grows).
  double queue_mean_ms = 0.0;
  double exec_mean_ms = 0.0;
  int64_t eval_context_builds = 0;
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
};

/// Sample value from a scraped METRICS snapshot (0 when absent).
double Prom(const std::vector<obs::PromSample>& samples,
            const std::string& name) {
  double v = 0.0;
  obs::FindPromValue(samples, name, &v);
  return v;
}

/// Exact quantile from raw samples (nearest-rank), unlike the bucketed
/// Histogram::ApproxQuantile the server's own summaries use.
double ExactQuantileMs(std::vector<int64_t> samples_ns, double q) {
  if (samples_ns.empty()) return 0.0;
  std::sort(samples_ns.begin(), samples_ns.end());
  const size_t n = samples_ns.size();
  size_t rank = static_cast<size_t>(q * static_cast<double>(n));
  if (rank >= n) rank = n - 1;
  return static_cast<double>(samples_ns[rank]) * 1e-6;
}

/// The request mix: `total` requests round-robined over three meta-path
/// configurations (distinct EvalContexts, so a cold run pays three
/// builds) with varying seeds.
std::vector<serve::CondenseRequest> MakeWorkload(int total) {
  const int path_caps[3] = {4, 6, 8};
  std::vector<serve::CondenseRequest> reqs;
  reqs.reserve(static_cast<size_t>(total));
  for (int i = 0; i < total; ++i) {
    serve::CondenseRequest req;
    req.graph = "acm";
    req.method = "freehgc";
    req.ratio = 0.05;
    req.seed = static_cast<uint64_t>(1 + i % 5);
    req.max_paths = path_caps[i % 3];
    reqs.push_back(req);
  }
  return reqs;
}

/// Runs the workload closed-loop: `clients` submitter threads, each
/// issuing its share of the requests back to back.
PhaseResult RunPhase(serve::ServeService& service,
                     const std::vector<serve::CondenseRequest>& workload,
                     int clients) {
  const int64_t builds_before = service.eval_context_builds();
  const auto cache_before = service.cache().stats();
  // Scrape the metrics registry exactly the way a remote poller would —
  // the phase breakdown below must be recoverable from METRICS alone.
  const auto prom_before =
      obs::ParsePrometheusText(obs::PrometheusText());

  std::vector<std::vector<int64_t>> samples(
      static_cast<size_t>(clients));
  const int64_t t0 = obs::NowNs();
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      for (size_t i = static_cast<size_t>(c); i < workload.size();
           i += static_cast<size_t>(clients)) {
        const int64_t s0 = obs::NowNs();
        auto reply = service.Condense(workload[i]);
        FREEHGC_CHECK(reply.ok()) << reply.status().ToString();
        samples[static_cast<size_t>(c)].push_back(obs::NowNs() - s0);
      }
    });
  }
  for (auto& t : threads) t.join();
  const double wall = static_cast<double>(obs::NowNs() - t0) * 1e-9;

  std::vector<int64_t> all;
  for (auto& s : samples) all.insert(all.end(), s.begin(), s.end());
  const auto cache_after = service.cache().stats();
  const auto prom_after = obs::ParsePrometheusText(obs::PrometheusText());

  // Snapshot counters must agree with the bench's own accounting: every
  // request this phase issued completed, and each one landed exactly one
  // observation in both latency histograms.
  const double completed_delta =
      Prom(prom_after, "freehgc_serve_requests_completed_total") -
      Prom(prom_before, "freehgc_serve_requests_completed_total");
  FREEHGC_CHECK(completed_delta == static_cast<double>(workload.size()))
      << "METRICS completed delta " << completed_delta << " != "
      << workload.size() << " requests issued";
  const double queue_count =
      Prom(prom_after, "freehgc_serve_latency_queue_ns_count") -
      Prom(prom_before, "freehgc_serve_latency_queue_ns_count");
  const double exec_count =
      Prom(prom_after, "freehgc_serve_latency_exec_ns_count") -
      Prom(prom_before, "freehgc_serve_latency_exec_ns_count");
  FREEHGC_CHECK(queue_count == completed_delta &&
                exec_count == completed_delta)
      << "latency histogram counts (queue " << queue_count << ", exec "
      << exec_count << ") != completed " << completed_delta;

  PhaseResult out;
  out.wall_seconds = wall;
  out.throughput_rps = static_cast<double>(workload.size()) / wall;
  out.p50_ms = ExactQuantileMs(all, 0.50);
  out.p95_ms = ExactQuantileMs(all, 0.95);
  out.p99_ms = ExactQuantileMs(all, 0.99);
  out.queue_mean_ms =
      (Prom(prom_after, "freehgc_serve_latency_queue_ns_sum") -
       Prom(prom_before, "freehgc_serve_latency_queue_ns_sum")) /
      queue_count * 1e-6;
  out.exec_mean_ms =
      (Prom(prom_after, "freehgc_serve_latency_exec_ns_sum") -
       Prom(prom_before, "freehgc_serve_latency_exec_ns_sum")) /
      exec_count * 1e-6;
  out.eval_context_builds = service.eval_context_builds() - builds_before;
  out.cache_hits = cache_after.hits - cache_before.hits;
  out.cache_misses = cache_after.misses - cache_before.misses;
  return out;
}

std::string PhaseJson(int slots, const char* phase, int requests,
                      const PhaseResult& r) {
  return StrFormat(
      "    {\"slots\": %d, \"phase\": \"%s\", \"requests\": %d, "
      "\"wall_seconds\": %.4f, \"throughput_rps\": %.3f, "
      "\"latency_ms\": {\"p50\": %.3f, \"p95\": %.3f, \"p99\": %.3f}, "
      "\"breakdown_ms\": {\"queue_mean\": %.3f, \"exec_mean\": %.3f}, "
      "\"eval_context_builds\": %lld, "
      "\"cache\": {\"hits\": %lld, \"misses\": %lld}}",
      slots, phase, requests, r.wall_seconds, r.throughput_rps, r.p50_ms,
      r.p95_ms, r.p99_ms, r.queue_mean_ms, r.exec_mean_ms,
      static_cast<long long>(r.eval_context_builds),
      static_cast<long long>(r.cache_hits),
      static_cast<long long>(r.cache_misses));
}

void Print(int slots, const char* phase, const PhaseResult& r) {
  std::printf(
      "%d slot(s) %-4s : %6.2f req/s  p50 %7.2f ms  p95 %7.2f ms  "
      "p99 %7.2f ms  queue %7.2f ms  exec %7.2f ms  "
      "(%lld ctx builds, %lld cache hits)\n",
      slots, phase, r.throughput_rps, r.p50_ms, r.p95_ms, r.p99_ms,
      r.queue_mean_ms, r.exec_mean_ms,
      static_cast<long long>(r.eval_context_builds),
      static_cast<long long>(r.cache_hits));
  std::fflush(stdout);
}

int Run() {
  PrintHeader("Serving-layer closed-loop load (BENCH_serve.json)");
  constexpr int kRequests = 24;
  constexpr double kScale = 0.3;
  const auto workload = MakeWorkload(kRequests);

  std::vector<std::string> rows;
  for (int slots : {1, 2, 4}) {
    serve::ServeOptions opts;
    opts.slots = slots;
    opts.queue_capacity = 2 * kRequests;  // the bench measures service
                                          // time, not shedding
    serve::ServeService service(opts);
    auto info = service.store().RegisterGenerator("acm", "acm", 1, kScale);
    FREEHGC_CHECK(info.ok()) << info.status().ToString();

    const int clients = 2 * slots;
    const PhaseResult cold = RunPhase(service, workload, clients);
    Print(slots, "cold", cold);
    const PhaseResult warm = RunPhase(service, workload, clients);
    Print(slots, "warm", warm);
    service.Shutdown();

    // The acceptance property: with the caches hot, the same workload
    // must run strictly faster (no EvalContext builds, SpGEMM memoized).
    FREEHGC_CHECK(warm.throughput_rps > cold.throughput_rps)
        << "warm throughput " << warm.throughput_rps
        << " req/s did not exceed cold " << cold.throughput_rps
        << " req/s at " << slots << " slot(s)";
    FREEHGC_CHECK(warm.eval_context_builds == 0);

    rows.push_back(PhaseJson(slots, "cold", kRequests, cold));
    rows.push_back(PhaseJson(slots, "warm", kRequests, warm));
  }

  std::string json = "{\n  \"bench\": \"serve_load\",\n";
  json += StrFormat(
      "  \"workload\": {\"graph\": \"acm\", \"scale\": %.2f, "
      "\"requests\": %d, \"method\": \"freehgc\", \"ratio\": 0.05, "
      "\"path_configs\": 3},\n",
      kScale, kRequests);
  json += StrFormat("  \"threads\": %d,\n", BenchThreads());
  json += "  \"runs\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    json += rows[i];
    json += i + 1 < rows.size() ? ",\n" : "\n";
  }
  json += "  ]\n}\n";
  WriteTextFile("BENCH_serve.json", json);
  std::printf("wrote BENCH_serve.json\n");
  return 0;
}

}  // namespace
}  // namespace freehgc::bench

int main() { return freehgc::bench::Run(); }
