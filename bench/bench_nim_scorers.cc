// Extension bench (paper Section IV-C remark): neighbor influence
// maximization with alternative node-importance functions. The paper uses
// Personalized PageRank and notes degree/betweenness/closeness centrality
// and hubs-and-authorities as drop-in replacements; this bench compares
// them (accuracy and NIM scoring time) on DBLP and AMiner at r = 2.4%.
#include "bench/bench_common.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "core/freehgc.h"

using namespace freehgc;
using namespace freehgc::bench;

int main() {
  PrintHeader("Extension: NIM with alternative importance functions");
  for (const std::string name : {"dblp", "aminer"}) {
    auto env = MakeEnv(name);
    std::printf("%s (r = 2.4%%):\n", name.c_str());
    eval::TablePrinter table({"Scorer", "Accuracy", "Condense time"});
    for (auto scorer :
         {core::NimScorer::kPprPowerIteration, core::NimScorer::kPprPush,
          core::NimScorer::kDegree, core::NimScorer::kCloseness,
          core::NimScorer::kBetweenness, core::NimScorer::kHubs,
          core::NimScorer::kAuthorities}) {
      std::vector<double> accs;
      double seconds = 0.0;
      for (uint64_t seed : Seeds()) {
        eval::RunOptions run;
        run.ratio = 0.024;
        run.seed = seed;
        run.freehgc.nim.scorer = scorer;
        auto res = eval::RunMethod(env->ctx, eval::MethodKind::kFreeHGC,
                                   run, env->eval_cfg);
        if (res.ok()) {
          accs.push_back(res->accuracy);
          seconds += res->condense_seconds;
        }
      }
      table.AddRow({core::NimScorerName(scorer),
                    eval::Cell(eval::Aggregate(accs)),
                    StrFormat("%.2fs", seconds / Seeds().size())});
    }
    table.Print();
  }
  return 0;
}
