// Micro-benchmarks of the substrate operations (google-benchmark): sparse
// composition (SpGEMM), personalized PageRank, lazy-greedy coverage
// selection, pre-propagation, and one HGNN training epoch. These are the
// kernels whose costs Figs. 2(b) and 8 aggregate.
//
// Parallel kernels additionally sweep the worker count (the trailing
// /N in the benchmark name); every result is bit-identical across the
// sweep, only wall-clock moves. Besides the console table the harness
// writes BENCH_substrate.json: one {op, size, threads, ns_per_op} record
// per benchmark run.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/target_selection.h"
#include "datasets/generator.h"
#include "exec/exec_context.h"
#include "hgnn/models.h"
#include "hgnn/propagate.h"
#include "metapath/metapath.h"
#include "nn/nn.h"
#include "sparse/ops.h"

namespace freehgc {
namespace {

const HeteroGraph& ToyGraph() {
  static const HeteroGraph* g =
      new HeteroGraph(datasets::MakeAcm(1, /*scale=*/0.3));
  return *g;
}

void BM_SpGemmComposition(benchmark::State& state) {
  const HeteroGraph& g = ToyGraph();
  MetaPathOptions opts;
  opts.max_hops = static_cast<int>(state.range(0));
  opts.max_paths = 4;
  const auto paths = EnumerateMetaPaths(g, g.target_type(), opts);
  const int threads = static_cast<int>(state.range(1));
  exec::ExecContext ex(threads);
  for (auto _ : state) {
    for (const auto& p : paths) {
      benchmark::DoNotOptimize(ComposeAdjacency(g, p, 512, &ex));
    }
  }
  state.counters["threads"] = threads;
  state.SetLabel(std::to_string(paths.size()) + " paths");
}
BENCHMARK(BM_SpGemmComposition)
    ->ArgsProduct({{1, 2, 3}, {1, 2, 4}});

// Satellite datapoint for the SpGemm scratch fix: the kernel used to
// allocate its accumulator + touched list per call; both now live in the
// per-worker Workspace. Reuse (one long-lived context) vs Cold (a fresh
// context, hence fresh arenas, every iteration) isolates exactly the
// alloc churn the workspace removes.
void BM_SpGemmWorkspaceReuse(benchmark::State& state) {
  const HeteroGraph& g = ToyGraph();
  const CsrMatrix a = sparse::RowNormalize(g.relation(0).adj);
  const CsrMatrix b = sparse::Transpose(a);
  exec::ExecContext ex(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sparse::SpGemm(a, b, 512, &ex));
  }
  state.counters["threads"] = 1;
}
BENCHMARK(BM_SpGemmWorkspaceReuse);

void BM_SpGemmColdWorkspace(benchmark::State& state) {
  const HeteroGraph& g = ToyGraph();
  const CsrMatrix a = sparse::RowNormalize(g.relation(0).adj);
  const CsrMatrix b = sparse::Transpose(a);
  for (auto _ : state) {
    exec::ExecContext ex(1);
    benchmark::DoNotOptimize(sparse::SpGemm(a, b, 512, &ex));
  }
  state.counters["threads"] = 1;
}
BENCHMARK(BM_SpGemmColdWorkspace);

void BM_PersonalizedPageRank(benchmark::State& state) {
  const HeteroGraph& g = ToyGraph();
  const CsrMatrix sym = sparse::SymNormalize(
      sparse::Symmetrize(g.relation(0).adj));
  std::vector<float> teleport(static_cast<size_t>(sym.rows()), 0.0f);
  for (int i = 0; i < 10; ++i) teleport[static_cast<size_t>(i)] = 0.1f;
  const int threads = static_cast<int>(state.range(1));
  exec::ExecContext ex(threads);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sparse::PprScores(sym, teleport, 0.15f,
                          static_cast<int>(state.range(0)), 1e-6f, &ex));
  }
  state.counters["threads"] = threads;
}
BENCHMARK(BM_PersonalizedPageRank)
    ->ArgsProduct({{10, 30, 50}, {1, 2, 4}});

void BM_GreedyCoverage(benchmark::State& state) {
  const HeteroGraph& g = ToyGraph();
  MetaPathOptions opts;
  opts.max_hops = 2;
  opts.max_paths = 1;
  const auto paths = EnumerateMetaPaths(g, g.target_type(), opts);
  const CsrMatrix adj = ComposeAdjacency(g, paths[0], 512);
  std::vector<int32_t> pool;
  for (int32_t v = 0; v < adj.rows(); ++v) pool.push_back(v);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::GreedyCoverageSelect(
        adj, pool, static_cast<int32_t>(state.range(0)), nullptr, true));
  }
  state.counters["threads"] = 1;
}
BENCHMARK(BM_GreedyCoverage)->Arg(16)->Arg(64)->Arg(256);

void BM_Propagate(benchmark::State& state) {
  const HeteroGraph& g = ToyGraph();
  hgnn::PropagateOptions opts;
  opts.max_hops = 2;
  opts.max_paths = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  exec::ExecContext ex(threads);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hgnn::PropagateFeatures(g, opts, &ex));
  }
  state.counters["threads"] = threads;
}
BENCHMARK(BM_Propagate)->ArgsProduct({{4, 8, 12}, {1, 2, 4}});

void BM_TrainEpoch(benchmark::State& state) {
  const HeteroGraph& g = ToyGraph();
  hgnn::PropagateOptions opts;
  opts.max_hops = 2;
  opts.max_paths = 8;
  const hgnn::PropagatedFeatures feats = hgnn::PropagateFeatures(g, opts);
  std::vector<int64_t> dims;
  for (const auto& b : feats.blocks) dims.push_back(b.cols());
  hgnn::HgnnConfig cfg;
  cfg.kind = static_cast<hgnn::HgnnKind>(state.range(0));
  cfg.hidden = 32;
  hgnn::HgnnModel model(cfg, dims, feats.end_types, g.num_classes());
  nn::Adam opt(1e-3f);
  auto params = model.Params();
  for (auto _ : state) {
    model.ZeroGrad();
    Matrix logits = model.Forward(feats.blocks, true);
    Matrix dlogits;
    nn::SoftmaxCrossEntropy(logits, g.labels(), g.train_index(), &dlogits);
    model.Backward(dlogits);
    opt.Step(params);
  }
  state.counters["threads"] = 1;
  state.SetLabel(hgnn::HgnnKindName(cfg.kind));
}
BENCHMARK(BM_TrainEpoch)
    ->Arg(static_cast<int>(hgnn::HgnnKind::kHeteroSGC))
    ->Arg(static_cast<int>(hgnn::HgnnKind::kSeHGNN))
    ->Arg(static_cast<int>(hgnn::HgnnKind::kHAN));

}  // namespace

/// Console output plus a flat JSON record per run, written to
/// BENCH_substrate.json when the harness exits.
class SubstrateReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    ConsoleReporter::ReportRuns(runs);
    for (const Run& r : runs) {
      if (r.error_occurred) continue;
      Entry e;
      const std::string name = r.benchmark_name();
      const size_t slash = name.find('/');
      e.op = name.substr(0, slash);
      // First arg = problem size (hops / iters / budget); absent for
      // benches with no args.
      e.size = 0;
      if (slash != std::string::npos) {
        e.size = std::atoll(name.c_str() + slash + 1);
      }
      auto it = r.counters.find("threads");
      e.threads = it != r.counters.end()
                      ? static_cast<int>(it->second.value)
                      : 1;
      const double iters =
          static_cast<double>(std::max<int64_t>(1, r.iterations));
      e.ns_per_op = r.real_accumulated_time / iters * 1e9;
      entries_.push_back(e);
    }
  }

  void WriteJson(const std::string& path) const {
    std::ofstream out(path);
    out << "[\n";
    for (size_t i = 0; i < entries_.size(); ++i) {
      const Entry& e = entries_[i];
      char buf[256];
      std::snprintf(buf, sizeof(buf),
                    "  {\"op\": \"%s\", \"size\": %lld, \"threads\": %d, "
                    "\"ns_per_op\": %.1f}%s\n",
                    e.op.c_str(), static_cast<long long>(e.size), e.threads,
                    e.ns_per_op, i + 1 < entries_.size() ? "," : "");
      out << buf;
    }
    out << "]\n";
  }

 private:
  struct Entry {
    std::string op;
    long long size;
    int threads;
    double ns_per_op;
  };
  std::vector<Entry> entries_;
};

}  // namespace freehgc

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  freehgc::SubstrateReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  reporter.WriteJson("BENCH_substrate.json");
  benchmark::Shutdown();
  return 0;
}
