// Micro-benchmarks of the substrate operations (google-benchmark): sparse
// composition (SpGEMM), personalized PageRank, lazy-greedy coverage
// selection, pre-propagation, and one HGNN training epoch. These are the
// kernels whose costs Figs. 2(b) and 8 aggregate.
#include <benchmark/benchmark.h>

#include "core/target_selection.h"
#include "datasets/generator.h"
#include "hgnn/models.h"
#include "hgnn/propagate.h"
#include "metapath/metapath.h"
#include "nn/nn.h"
#include "sparse/ops.h"

namespace freehgc {
namespace {

const HeteroGraph& ToyGraph() {
  static const HeteroGraph* g =
      new HeteroGraph(datasets::MakeAcm(1, /*scale=*/0.3));
  return *g;
}

void BM_SpGemmComposition(benchmark::State& state) {
  const HeteroGraph& g = ToyGraph();
  MetaPathOptions opts;
  opts.max_hops = static_cast<int>(state.range(0));
  opts.max_paths = 4;
  const auto paths = EnumerateMetaPaths(g, g.target_type(), opts);
  for (auto _ : state) {
    for (const auto& p : paths) {
      benchmark::DoNotOptimize(ComposeAdjacency(g, p, 512));
    }
  }
  state.SetLabel(std::to_string(paths.size()) + " paths");
}
BENCHMARK(BM_SpGemmComposition)->Arg(1)->Arg(2)->Arg(3);

void BM_PersonalizedPageRank(benchmark::State& state) {
  const HeteroGraph& g = ToyGraph();
  const CsrMatrix sym = sparse::SymNormalize(
      sparse::Symmetrize(g.relation(0).adj));
  std::vector<float> teleport(static_cast<size_t>(sym.rows()), 0.0f);
  for (int i = 0; i < 10; ++i) teleport[static_cast<size_t>(i)] = 0.1f;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sparse::PprScores(sym, teleport, 0.15f,
                          static_cast<int>(state.range(0))));
  }
}
BENCHMARK(BM_PersonalizedPageRank)->Arg(10)->Arg(30)->Arg(50);

void BM_GreedyCoverage(benchmark::State& state) {
  const HeteroGraph& g = ToyGraph();
  MetaPathOptions opts;
  opts.max_hops = 2;
  opts.max_paths = 1;
  const auto paths = EnumerateMetaPaths(g, g.target_type(), opts);
  const CsrMatrix adj = ComposeAdjacency(g, paths[0], 512);
  std::vector<int32_t> pool;
  for (int32_t v = 0; v < adj.rows(); ++v) pool.push_back(v);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::GreedyCoverageSelect(
        adj, pool, static_cast<int32_t>(state.range(0)), nullptr, true));
  }
}
BENCHMARK(BM_GreedyCoverage)->Arg(16)->Arg(64)->Arg(256);

void BM_Propagate(benchmark::State& state) {
  const HeteroGraph& g = ToyGraph();
  hgnn::PropagateOptions opts;
  opts.max_hops = 2;
  opts.max_paths = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(hgnn::PropagateFeatures(g, opts));
  }
}
BENCHMARK(BM_Propagate)->Arg(4)->Arg(8)->Arg(12);

void BM_TrainEpoch(benchmark::State& state) {
  const HeteroGraph& g = ToyGraph();
  hgnn::PropagateOptions opts;
  opts.max_hops = 2;
  opts.max_paths = 8;
  const hgnn::PropagatedFeatures feats = hgnn::PropagateFeatures(g, opts);
  std::vector<int64_t> dims;
  for (const auto& b : feats.blocks) dims.push_back(b.cols());
  hgnn::HgnnConfig cfg;
  cfg.kind = static_cast<hgnn::HgnnKind>(state.range(0));
  cfg.hidden = 32;
  hgnn::HgnnModel model(cfg, dims, feats.end_types, g.num_classes());
  nn::Adam opt(1e-3f);
  auto params = model.Params();
  for (auto _ : state) {
    model.ZeroGrad();
    Matrix logits = model.Forward(feats.blocks, true);
    Matrix dlogits;
    nn::SoftmaxCrossEntropy(logits, g.labels(), g.train_index(), &dlogits);
    model.Backward(dlogits);
    opt.Step(params);
  }
  state.SetLabel(hgnn::HgnnKindName(cfg.kind));
}
BENCHMARK(BM_TrainEpoch)
    ->Arg(static_cast<int>(hgnn::HgnnKind::kHeteroSGC))
    ->Arg(static_cast<int>(hgnn::HgnnKind::kSeHGNN))
    ->Arg(static_cast<int>(hgnn::HgnnKind::kHAN));

}  // namespace
}  // namespace freehgc

BENCHMARK_MAIN();
