// Tiered-storage residency benchmark (spill tentpole acceptance): a full
// serve-path CondenseRequest against an AMiner-scale mapped graph, run
// three ways in separate processes:
//
//   baseline      no RLIMIT_DATA cap, no artifact budget — records the
//                 condensed-graph fingerprint and the unbudgeted
//                 ArtifactCache resident peak.
//   capped        RLIMIT_DATA cap, still unbudgeted — must be REFUSED
//                 (the allocator fails before the request completes).
//   budgeted      the same cap, plus --spill-dir and an artifact budget
//                 of 50% of the baseline cache peak — must complete and
//                 produce a bit-identical condensed fingerprint.
//
// Each scenario re-execs this binary (fork alone would orphan the
// parent's worker threads), so the cap applies to a whole fresh process
// the way an operator's ulimit would. The cap is sized between the
// measured budgeted peak (~96 MB at aminer scale 4) and the unbudgeted
// peak (~188 MB): 128 MB.
//
// Appends a "spill" object to BENCH_container.json when bench_container
// has already written it (run bench_container first), otherwise writes a
// fresh file holding just the spill section.

#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "graph/serialize.h"
#include "serve/service.h"

namespace freehgc::bench {
namespace {

constexpr double kScale = 4.0;
constexpr uint64_t kSeed = 1;
constexpr size_t kCapBytes = 128ull << 20;
const char* kGraphPath = "/tmp/freehgc_bench_spill.fhgc";
const char* kSpillDir = "/tmp/freehgc_bench_spill_work";

int64_t ProcStatusBytes(const char* key) {
  std::ifstream in("/proc/self/status");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind(key, 0) != 0) continue;
    long long kb = 0;
    if (std::sscanf(line.c_str() + std::strlen(key) + 1, "%lld", &kb) == 1) {
      return kb * 1024;
    }
  }
  return -1;
}

/// One serve-path run inside a (possibly rlimit-capped) child process.
/// Results go to `result_path` as key=value lines; the parent decides
/// pass/fail from the exit status plus those values.
int RunScenario(size_t cap_bytes, size_t budget_bytes,
                const std::string& result_path) {
  if (cap_bytes != 0) {
    struct rlimit rl;
    FREEHGC_CHECK(::getrlimit(RLIMIT_DATA, &rl) == 0);
    rl.rlim_cur = cap_bytes;
    FREEHGC_CHECK(::setrlimit(RLIMIT_DATA, &rl) == 0);
  }
  serve::ServeOptions options;
  options.slots = 1;
  if (budget_bytes != 0) {
    options.spill_dir = kSpillDir;
    options.artifact_budget_bytes = budget_bytes;
  }
  serve::ServeService service(options);
  auto info = service.store().RegisterMappedFile("g", kGraphPath);
  FREEHGC_CHECK(info.ok()) << info.status().ToString();
  FREEHGC_CHECK(info->mapped);

  serve::CondenseRequest request;
  request.graph = "g";
  request.method = "herding";
  request.ratio = 0.01;
  request.max_hops = 1;
  request.max_paths = 2;
  request.evaluate = false;
  request.return_graph = true;
  auto reply = service.Condense(request);
  FREEHGC_CHECK(reply.ok()) << reply.status().ToString();
  auto condensed = DeserializeHeteroGraph(reply->graph_bytes);
  FREEHGC_CHECK(condensed.ok());

  const auto cache = service.cache().stats();
  std::ofstream out(result_path);
  out << StrFormat("fingerprint=%016llx\n",
                   static_cast<unsigned long long>(
                       condensed->ContentFingerprint()));
  out << StrFormat("cache_peak_resident=%zu\n", cache.peak_resident_bytes);
  out << StrFormat("cache_resident_end=%zu\n", cache.resident_bytes);
  out << StrFormat("spills=%lld\n", static_cast<long long>(cache.spills));
  out << StrFormat("restores=%lld\n", static_cast<long long>(cache.restores));
  out << StrFormat("spill_bytes=%zu\n", cache.spill_bytes);
  out << StrFormat("data_bytes=%lld\n",
                   static_cast<long long>(ProcStatusBytes("VmData")));
  return out ? 0 : 1;
}

struct ChildResult {
  int exit_code = -1;       // -1 when killed by a signal
  bool completed = false;   // exited normally with status 0
  std::map<std::string, std::string> values;
};

ChildResult Spawn(const char* self, size_t cap_bytes, size_t budget_bytes,
                  const std::string& result_path) {
  std::remove(result_path.c_str());
  const std::string cap_arg = StrFormat("--cap-bytes=%zu", cap_bytes);
  const std::string budget_arg = StrFormat("--budget-bytes=%zu", budget_bytes);
  const std::string result_arg = "--result=" + result_path;
  const pid_t pid = ::fork();
  FREEHGC_CHECK(pid >= 0);
  if (pid == 0) {
    ::execl(self, self, "--scenario", cap_arg.c_str(), budget_arg.c_str(),
            result_arg.c_str(), static_cast<char*>(nullptr));
    std::_Exit(127);  // execl only returns on failure
  }
  int status = 0;
  FREEHGC_CHECK(::waitpid(pid, &status, 0) == pid);
  ChildResult r;
  if (WIFEXITED(status)) r.exit_code = WEXITSTATUS(status);
  r.completed = WIFEXITED(status) && WEXITSTATUS(status) == 0;
  std::ifstream in(result_path);
  std::string line;
  while (std::getline(in, line)) {
    const size_t eq = line.find('=');
    if (eq == std::string::npos) continue;
    r.values[line.substr(0, eq)] = line.substr(eq + 1);
  }
  // A capped child that died mid-request may have no result file; that
  // is the expected "refused" shape, not an error.
  return r;
}

std::string Value(const ChildResult& r, const std::string& key) {
  auto it = r.values.find(key);
  return it == r.values.end() ? std::string() : it->second;
}

/// Splices `section` (a complete `"spill": {...}` member) into an
/// existing BENCH_container.json, or writes a fresh file around it.
void RecordJson(const std::string& section) {
  const char* path = "BENCH_container.json";
  std::string existing;
  {
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    existing = ss.str();
  }
  const size_t close = existing.rfind('}');
  std::string json;
  if (close != std::string::npos && existing.find("\"spill\"") ==
                                        std::string::npos) {
    json = existing.substr(0, close) + ",\n  " + section + "\n}\n";
  } else {
    json = "{\n  \"bench\": \"container\",\n  " + section + "\n}\n";
  }
  WriteTextFile(path, json);
  std::printf("recorded spill section in %s\n", path);
}

int RunParent(const char* self) {
  PrintHeader("spill: budgeted serve residency under RLIMIT_DATA");
  const HeteroGraph g =
      datasets::MakeAminer(kSeed, kScale, &exec::DefaultExec());
  auto saved = SaveHeteroGraphV3(g, kGraphPath);
  FREEHGC_CHECK(saved.ok());
  std::printf("graph: aminer scale %.1f, %lld nodes, %lld edges, "
              "%zu logical bytes (v3 file %llu bytes)\n",
              kScale, static_cast<long long>(g.TotalNodes()),
              static_cast<long long>(g.TotalEdges()), g.MemoryBytes(),
              static_cast<unsigned long long>(saved->file_bytes));
  std::system(("rm -rf " + std::string(kSpillDir) + " && mkdir -p " +
               std::string(kSpillDir)).c_str());

  const ChildResult baseline =
      Spawn(self, 0, 0, "/tmp/freehgc_bench_spill.baseline.txt");
  FREEHGC_CHECK(baseline.completed) << "uncapped baseline run failed";
  const std::string want_fp = Value(baseline, "fingerprint");
  const size_t peak =
      std::strtoull(Value(baseline, "cache_peak_resident").c_str(),
                    nullptr, 10);
  FREEHGC_CHECK(!want_fp.empty() && peak > 0);
  std::printf("baseline: fingerprint=%s cache_peak_resident=%zu "
              "data_bytes=%s\n",
              want_fp.c_str(), peak, Value(baseline, "data_bytes").c_str());

  const ChildResult capped =
      Spawn(self, kCapBytes, 0, "/tmp/freehgc_bench_spill.capped.txt");
  std::printf("capped unbudgeted (%zu MB): %s (exit=%d)\n", kCapBytes >> 20,
              capped.completed ? "COMPLETED" : "refused", capped.exit_code);

  const size_t budget = peak / 2;  // the <=50% acceptance bound
  const ChildResult budgeted =
      Spawn(self, kCapBytes, budget, "/tmp/freehgc_bench_spill.budgeted.txt");
  std::printf("capped budgeted (budget=%zu): %s fingerprint=%s spills=%s "
              "spill_bytes=%s resident_end=%s data_bytes=%s\n",
              budget, budgeted.completed ? "completed" : "FAILED",
              Value(budgeted, "fingerprint").c_str(),
              Value(budgeted, "spills").c_str(),
              Value(budgeted, "spill_bytes").c_str(),
              Value(budgeted, "cache_resident_end").c_str(),
              Value(budgeted, "data_bytes").c_str());

  // The tentpole acceptance properties.
  FREEHGC_CHECK(!capped.completed)
      << "unbudgeted run fit under the " << kCapBytes
      << "-byte cap; the cap no longer demonstrates anything";
  FREEHGC_CHECK(budgeted.completed)
      << "budgeted run failed under the same cap";
  FREEHGC_CHECK(Value(budgeted, "fingerprint") == want_fp)
      << "budgeted fingerprint " << Value(budgeted, "fingerprint")
      << " != baseline " << want_fp;
  FREEHGC_CHECK(std::atoll(Value(budgeted, "spills").c_str()) > 0)
      << "budgeted run never spilled; budget was not exercised";
  FREEHGC_CHECK(std::strtoull(Value(budgeted, "cache_resident_end").c_str(),
                              nullptr, 10) <= budget)
      << "cache resident bytes above budget after the request drained";
  std::printf("gate: refused unbudgeted + bit-identical budgeted "
              "fingerprint — passed\n");

  RecordJson(StrFormat(
      "\"spill\": {\"graph\": {\"preset\": \"aminer\", \"scale\": %.1f, "
      "\"nodes\": %lld, \"logical_bytes\": %zu}, "
      "\"cap_bytes\": %zu, \"budget_bytes\": %zu, "
      "\"baseline\": {\"fingerprint\": \"%s\", "
      "\"cache_peak_resident_bytes\": %zu, \"data_bytes\": %s}, "
      "\"capped_unbudgeted\": {\"refused\": %s}, "
      "\"budgeted\": {\"fingerprint\": \"%s\", \"spills\": %s, "
      "\"spill_bytes\": %s, \"cache_resident_end_bytes\": %s, "
      "\"data_bytes\": %s}, "
      "\"gate\": {\"max_budget_fraction\": 0.5, \"passed\": true}}",
      kScale, static_cast<long long>(g.TotalNodes()), g.MemoryBytes(),
      kCapBytes, budget, want_fp.c_str(), peak,
      Value(baseline, "data_bytes").c_str(),
      capped.completed ? "false" : "true",
      Value(budgeted, "fingerprint").c_str(),
      Value(budgeted, "spills").c_str(),
      Value(budgeted, "spill_bytes").c_str(),
      Value(budgeted, "cache_resident_end").c_str(),
      Value(budgeted, "data_bytes").c_str()));

  std::system(("rm -rf " + std::string(kSpillDir)).c_str());
  std::remove(kGraphPath);
  return 0;
}

}  // namespace
}  // namespace freehgc::bench

int main(int argc, char** argv) {
  bool scenario = false;
  size_t cap_bytes = 0;
  size_t budget_bytes = 0;
  std::string result_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--scenario") {
      scenario = true;
    } else if (arg.rfind("--cap-bytes=", 0) == 0) {
      cap_bytes = std::strtoull(arg.c_str() + 12, nullptr, 10);
    } else if (arg.rfind("--budget-bytes=", 0) == 0) {
      budget_bytes = std::strtoull(arg.c_str() + 15, nullptr, 10);
    } else if (arg.rfind("--result=", 0) == 0) {
      result_path = arg.substr(9);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }
  if (scenario) {
    return freehgc::bench::RunScenario(cap_bytes, budget_bytes, result_path);
  }
  (void)argv;
  // /proc/self/exe, not argv[0]: the re-exec must work however the
  // parent was invoked (relative path, via PATH, ...).
  return freehgc::bench::RunParent("/proc/self/exe");
}
