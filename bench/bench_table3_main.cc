// Table III: node classification on ACM, DBLP, IMDB, Freebase at
// r = {1.2, 2.4, 4.8, 9.6}% for Random-HG, Herding-HG, K-Center-HG,
// Coarsening-HG, HGCond, FreeHGC, plus the whole-dataset accuracy.
// Also writes BENCH_sweep.json: the sweep's cell values, per-cell
// wall-clock and the artifact-cache hit/miss/bytes record.
#include "bench/bench_common.h"
#include "pipeline/sweep.h"

using namespace freehgc;
using namespace freehgc::bench;

int main() {
  PrintHeader("Table III: main node-classification results (accuracy %)");
  pipeline::SweepSpec spec;
  const std::vector<double> ratios = {0.012, 0.024, 0.048, 0.096};
  for (const char* name : {"acm", "dblp", "imdb", "freebase"}) {
    spec.datasets.push_back({.name = name, .ratios = ratios});
  }
  spec.methods = {"random", "herding", "kcenter",
                  "coarsening", "hgcond", "freehgc"};
  spec.seeds = Seeds();
  spec.whole_graph_baseline = true;

  pipeline::SweepRunner runner(std::move(spec));
  auto result = runner.Run();
  FREEHGC_CHECK(result.ok());
  pipeline::PrintRatioTables(*result, runner.spec());
  WriteTextFile("BENCH_sweep.json", result->ToJson());
  return 0;
}
