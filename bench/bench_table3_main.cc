// Table III: node classification on ACM, DBLP, IMDB, Freebase at
// r = {1.2, 2.4, 4.8, 9.6}% for Random-HG, Herding-HG, K-Center-HG,
// Coarsening-HG, HGCond, FreeHGC, plus the whole-dataset accuracy.
#include "bench/bench_common.h"
#include "common/string_util.h"

using namespace freehgc;
using namespace freehgc::bench;

int main() {
  PrintHeader("Table III: main node-classification results (accuracy %)");
  const std::vector<std::string> datasets = {"acm", "dblp", "imdb",
                                             "freebase"};
  const std::vector<double> ratios = {0.012, 0.024, 0.048, 0.096};
  const std::vector<eval::MethodKind> methods = {
      eval::MethodKind::kRandom,     eval::MethodKind::kHerding,
      eval::MethodKind::kKCenter,    eval::MethodKind::kCoarsening,
      eval::MethodKind::kHGCond,     eval::MethodKind::kFreeHGC};

  for (const auto& name : datasets) {
    auto env = MakeEnv(name);
    const auto whole = hgnn::WholeGraphBaseline(env->ctx, env->eval_cfg);

    eval::TablePrinter table({"Dataset", "Ratio (r)", "Random-HG",
                              "Herding-HG", "K-Center-HG", "Coarsening-HG",
                              "HGCond", "FreeHGC", "Whole Dataset"});
    for (double r : ratios) {
      std::vector<std::string> row = {name,
                                      StrFormat("%.1f%%", 100.0 * r)};
      for (auto m : methods) {
        eval::RunOptions run;
        run.ratio = r;
        const auto agg =
            eval::RunMethodSeeds(env->ctx, m, run, env->eval_cfg, Seeds());
        row.push_back(agg.oom ? "OOM" : eval::Cell(agg.accuracy));
      }
      row.push_back(StrFormat("%.2f", 100.0f * whole.test_accuracy));
      table.AddRow(std::move(row));
    }
    table.Print();
  }
  return 0;
}
