#include "bench/loadgen/loadgen.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "common/logging.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "obs/metrics.h"

namespace freehgc::loadgen {

namespace {

/// Binomial(6, 0.8) masses: kPareto[g] = C(6,g) 0.8^(6-g) 0.2^g — the
/// "80/20 rule applied six times" table used by allocator workload
/// generators (SNIPPETS.md §1).
constexpr double kPareto[7] = {0.262144, 0.393216, 0.245760, 0.081920,
                               0.015360, 0.001536, 0.000064};

}  // namespace

ParetoPicker::ParetoPicker(uint32_t item_count)
    : item_count_(item_count > 0 ? item_count : 1) {
  ranges_[0] = static_cast<uint32_t>(UINT32_MAX * kPareto[0]);
  for (size_t g = 1; g < 5; ++g) {
    ranges_[g] =
        ranges_[g - 1] + static_cast<uint32_t>(UINT32_MAX * kPareto[g]);
  }
  ranges_[5] = static_cast<uint32_t>(UINT32_MAX * (1.0 - kPareto[6]));
  offsets_[0] = 0;
  // Group g covers an item fraction of kPareto[6 - g]: heavy-mass groups
  // get the narrow item ranges. The last boundary absorbs rounding so
  // every item is reachable.
  for (size_t g = 0; g < 6; ++g) {
    offsets_[g + 1] = offsets_[g] + static_cast<uint32_t>(
                                        item_count_ * kPareto[6 - g]);
  }
  offsets_[7] = item_count_;
}

uint32_t ParetoPicker::Pick(uint32_t r1, uint32_t r2) const {
  size_t group = 6;
  for (size_t g = 0; g < 6; ++g) {
    if (r1 < ranges_[g]) {
      group = g;
      break;
    }
  }
  uint32_t lo = offsets_[group];
  uint32_t hi = offsets_[group + 1];
  // Small item counts round narrow ranges down to empty; spill the pick
  // into the next non-empty group rather than skewing toward item 0.
  while (lo >= hi && group < 6) {
    ++group;
    lo = offsets_[group];
    hi = offsets_[group + 1];
  }
  if (lo >= hi) return r2 % item_count_;
  return lo + r2 % (hi - lo);
}

std::vector<Arrival> BuildSchedule(const LoadSpec& spec) {
  std::vector<Arrival> out;
  if (spec.classes.empty() || spec.phases.empty()) return out;
  Rng rng(spec.seed);
  const ParetoPicker picker(static_cast<uint32_t>(spec.classes.size()));
  int64_t phase_start_ns = 0;
  for (size_t pi = 0; pi < spec.phases.size(); ++pi) {
    const Phase& phase = spec.phases[pi];
    if (phase.seconds <= 0.0) continue;
    double t = 0.0;  // seconds into the phase
    for (;;) {
      // Exponential gap at the instantaneous (linearly ramped) rate.
      const double frac = t / phase.seconds;
      double rate = phase.start_rps + frac * (phase.end_rps - phase.start_rps);
      if (rate < 0.1) rate = 0.1;
      t += -std::log(1.0 - rng.NextDouble()) / rate;
      if (t >= phase.seconds) break;
      Arrival a;
      a.offset_ns = phase_start_ns + static_cast<int64_t>(t * 1e9);
      a.class_index =
          picker.Pick(static_cast<uint32_t>(rng.NextU64()),
                      static_cast<uint32_t>(rng.NextU64()));
      a.phase_index = static_cast<uint32_t>(pi);
      out.push_back(a);
    }
    phase_start_ns += static_cast<int64_t>(phase.seconds * 1e9);
  }
  return out;
}

double QuantileMs(std::vector<int64_t> samples_ns, double q) {
  if (samples_ns.empty()) return 0.0;
  std::sort(samples_ns.begin(), samples_ns.end());
  const size_t n = samples_ns.size();
  size_t rank = static_cast<size_t>(q * static_cast<double>(n));
  if (rank >= n) rank = n - 1;
  return static_cast<double>(samples_ns[rank]) * 1e-6;
}

namespace {

enum class Outcome : uint8_t { kOk, kShed, kExpired, kError };

struct Sample {
  uint32_t phase_index = 0;
  uint32_t class_index = 0;
  Outcome outcome = Outcome::kOk;
  int64_t latency_ns = 0;  // from the *scheduled* arrival time
  int64_t lag_ns = 0;      // send time behind schedule (0 when on time)
};

Outcome Classify(const Status& status) {
  if (status.ok()) return Outcome::kOk;
  switch (status.code()) {
    case StatusCode::kResourceExhausted:
      return Outcome::kShed;
    case StatusCode::kDeadlineExceeded:
      return Outcome::kExpired;
    default:
      return Outcome::kError;
  }
}

}  // namespace

RunReport RunOpenLoop(const LoadSpec& spec,
                      const std::vector<Arrival>& schedule,
                      int client_threads, const SubmitFn& submit) {
  if (client_threads < 1) client_threads = 1;
  std::vector<std::vector<Sample>> per_worker(
      static_cast<size_t>(client_threads));
  const int64_t t0 = obs::NowNs();
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(client_threads));
  for (int w = 0; w < client_threads; ++w) {
    workers.emplace_back([&, w] {
      auto& samples = per_worker[static_cast<size_t>(w)];
      for (size_t i = static_cast<size_t>(w); i < schedule.size();
           i += static_cast<size_t>(client_threads)) {
        const Arrival& a = schedule[i];
        const int64_t target_ns = t0 + a.offset_ns;
        int64_t now = obs::NowNs();
        if (now < target_ns) {
          std::this_thread::sleep_for(
              std::chrono::nanoseconds(target_ns - now));
          now = obs::NowNs();
        }
        const Status status =
            submit(spec.classes[a.class_index].request, a.class_index);
        const int64_t done_ns = obs::NowNs();
        Sample s;
        s.phase_index = a.phase_index;
        s.class_index = a.class_index;
        s.outcome = Classify(status);
        s.latency_ns = done_ns - target_ns;
        s.lag_ns = now > target_ns ? now - target_ns : 0;
        samples.push_back(s);
      }
    });
  }
  for (auto& t : workers) t.join();

  RunReport report;
  report.phases.resize(spec.phases.size());
  std::vector<std::vector<int64_t>> ok_latency(spec.phases.size());
  for (size_t pi = 0; pi < spec.phases.size(); ++pi) {
    PhaseReport& pr = report.phases[pi];
    pr.name = spec.phases[pi].name;
    pr.seconds = spec.phases[pi].seconds;
    pr.per_class_issued.assign(spec.classes.size(), 0);
  }
  for (const auto& samples : per_worker) {
    for (const Sample& s : samples) {
      PhaseReport& pr = report.phases[s.phase_index];
      ++pr.issued;
      ++pr.per_class_issued[s.class_index];
      switch (s.outcome) {
        case Outcome::kOk:
          ++pr.ok;
          ok_latency[s.phase_index].push_back(s.latency_ns);
          break;
        case Outcome::kShed:
          ++pr.shed;
          break;
        case Outcome::kExpired:
          ++pr.expired;
          break;
        case Outcome::kError:
          ++pr.errors;
          break;
      }
      const double lag_ms = static_cast<double>(s.lag_ns) * 1e-6;
      if (lag_ms > pr.max_lag_ms) pr.max_lag_ms = lag_ms;
    }
  }
  for (size_t pi = 0; pi < report.phases.size(); ++pi) {
    PhaseReport& pr = report.phases[pi];
    if (pr.seconds > 0.0) {
      pr.offered_rps = static_cast<double>(pr.issued) / pr.seconds;
      pr.achieved_rps = static_cast<double>(pr.ok) / pr.seconds;
    }
    pr.p50_ms = QuantileMs(ok_latency[pi], 0.50);
    pr.p95_ms = QuantileMs(ok_latency[pi], 0.95);
    pr.p99_ms = QuantileMs(ok_latency[pi], 0.99);
    report.issued += pr.issued;
    report.ok += pr.ok;
    report.shed += pr.shed;
    report.expired += pr.expired;
    report.errors += pr.errors;
  }
  return report;
}

std::string PhaseReportJson(const PhaseReport& r) {
  return StrFormat(
      "{\"phase\": \"%s\", \"seconds\": %.3f, \"offered_rps\": %.3f, "
      "\"achieved_rps\": %.3f, \"issued\": %lld, \"ok\": %lld, "
      "\"shed\": %lld, \"expired\": %lld, \"errors\": %lld, "
      "\"latency_ms\": {\"p50\": %.3f, \"p95\": %.3f, \"p99\": %.3f}, "
      "\"max_lag_ms\": %.3f}",
      r.name.c_str(), r.seconds, r.offered_rps, r.achieved_rps,
      static_cast<long long>(r.issued), static_cast<long long>(r.ok),
      static_cast<long long>(r.shed), static_cast<long long>(r.expired),
      static_cast<long long>(r.errors), r.p50_ms, r.p95_ms, r.p99_ms,
      r.max_lag_ms);
}

}  // namespace freehgc::loadgen
