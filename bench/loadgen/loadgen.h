#ifndef FREEHGC_BENCH_LOADGEN_LOADGEN_H_
#define FREEHGC_BENCH_LOADGEN_LOADGEN_H_

// Open-loop load generator for the serving layer.
//
// A closed-loop driver (N clients, each issuing the next request when the
// previous reply lands) measures *service* time but cannot overload the
// server: when the server slows down, the offered rate drops with it, and
// tail latency under pressure is exactly what it hides (coordinated
// omission). This generator is open-loop: arrivals follow a fixed,
// precomputed schedule; a request whose send is delayed because the
// client thread was still blocked on an earlier reply is charged its full
// lateness, because latency is measured from the *scheduled* arrival
// time, not the actual send.
//
// The schedule is a pure function of LoadSpec (seed, classes, phases):
// seeded exponential inter-arrivals at a linearly interpolated per-phase
// rate, with the request class drawn from a Pareto 80/20 popularity
// distribution (the classic allocator-workload tables: 80/20 applied six
// times, so ~26% of requests hit ~0.006% of classes). Same seed, same
// spec -> byte-identical schedule and identical per-class counts, no
// matter how many client threads replay it (tests/loadgen_test.cc).

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "serve/scheduler.h"

namespace freehgc::loadgen {

/// One popularity-weighted request class: a name for reports and the
/// request template every arrival of this class issues.
struct RequestClass {
  std::string name;
  serve::CondenseRequest request;
};

/// One traffic phase: `seconds` of arrivals at a rate ramping linearly
/// from start_rps to end_rps (equal values = constant rate).
struct Phase {
  std::string name;
  double seconds = 1.0;
  double start_rps = 1.0;
  double end_rps = 1.0;
};

struct LoadSpec {
  uint64_t seed = 1;
  std::vector<RequestClass> classes;
  std::vector<Phase> phases;
};

/// One scheduled arrival, relative to the start of the run.
struct Arrival {
  int64_t offset_ns = 0;
  uint32_t class_index = 0;
  uint32_t phase_index = 0;

  bool operator==(const Arrival&) const = default;
};

/// Pareto 80/20 popularity over `item_count` items, via the cumulative
/// Binomial(6, 0.8) group-mass table: group g receives C(6,g) 0.8^(6-g)
/// 0.2^g of the probability and covers a C(6,g) 0.8^g 0.2^(6-g) fraction
/// of the items, so the heaviest group funnels 0.8^6 ~ 26% of picks into
/// 0.2^6 ~ 0.006% of items. Item ranges that round to empty at small
/// item counts fall through to the next non-empty group.
class ParetoPicker {
 public:
  explicit ParetoPicker(uint32_t item_count);

  /// Item index in [0, item_count) from two independent uniform u32
  /// draws: r1 picks the popularity group, r2 the item within it.
  uint32_t Pick(uint32_t r1, uint32_t r2) const;

 private:
  uint32_t item_count_;
  uint32_t ranges_[6];   // cumulative group masses, scaled to u32
  uint32_t offsets_[8];  // item-range boundaries per group
};

/// The deterministic schedule for `spec`: arrivals sorted by offset_ns,
/// classes Pareto-distributed, inter-arrival gaps exponential at the
/// phase's interpolated rate. Pure function of `spec`.
std::vector<Arrival> BuildSchedule(const LoadSpec& spec);

/// Per-phase outcome report. Latency quantiles are exact (nearest-rank
/// over the raw samples) and cover *ok* replies only — shed and expired
/// requests return fast by design and would flatter the tail; they are
/// counted, not timed.
struct PhaseReport {
  std::string name;
  double seconds = 0.0;
  double offered_rps = 0.0;   // scheduled arrivals / phase duration
  double achieved_rps = 0.0;  // ok replies / phase duration
  int64_t issued = 0;
  int64_t ok = 0;
  int64_t shed = 0;     // kResourceExhausted (queue full, budget, SLO)
  int64_t expired = 0;  // kDeadlineExceeded
  int64_t errors = 0;   // anything else non-OK: protocol/internal errors
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  /// Worst send lateness behind the schedule — how far the generator
  /// itself fell behind (large values mean the client threads, not the
  /// server, were the bottleneck).
  double max_lag_ms = 0.0;
  /// Arrivals issued per class (indexed like LoadSpec::classes).
  std::vector<int64_t> per_class_issued;
};

struct RunReport {
  std::vector<PhaseReport> phases;
  int64_t issued = 0;
  int64_t ok = 0;
  int64_t shed = 0;
  int64_t expired = 0;
  int64_t errors = 0;
};

/// Blocking execution of one request. The returned status classifies the
/// outcome: OK, kResourceExhausted -> shed, kDeadlineExceeded -> expired,
/// anything else -> error. Called concurrently from the client threads.
using SubmitFn =
    std::function<Status(const serve::CondenseRequest&, uint32_t class_index)>;

/// Replays `schedule` open-loop on `client_threads` threads (arrival i is
/// pinned to thread i % client_threads, so the issue counts are
/// schedule-determined, never timing-determined) and aggregates per-phase
/// reports. Latency is measured from each arrival's scheduled time.
RunReport RunOpenLoop(const LoadSpec& spec,
                      const std::vector<Arrival>& schedule,
                      int client_threads, const SubmitFn& submit);

/// Exact nearest-rank quantile in milliseconds over raw ns samples.
double QuantileMs(std::vector<int64_t> samples_ns, double q);

/// One JSON object for a phase row (BENCH_serve.json "open_loop" rows and
/// the freehgc_client loadgen report share this schema).
std::string PhaseReportJson(const PhaseReport& r);

}  // namespace freehgc::loadgen

#endif  // FREEHGC_BENCH_LOADGEN_LOADGEN_H_
