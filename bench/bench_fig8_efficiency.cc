// Figure 8: condensation time of GCond, HGCond and FreeHGC on Freebase,
// MUTAG and AMiner (each method at its best-performing configuration).
// The paper reports FreeHGC up to 4.16x/4.67x (Freebase), 5.73x/6.27x
// (MUTAG) and 3.12x/11.19x (AMiner) faster than GCond/HGCond; the bench
// prints the measured factors.
//
// Besides the console table the harness writes BENCH_fig8_efficiency.json
// with the formatted table (TablePrinter::ToJson), the raw seconds,
// FreeHGC's per-stage breakdown (metapath / target / father / leaf /
// assemble), and a snapshot of the kernel metrics registry — the
// machine-readable record behind the efficiency claim. Run with
// FREEHGC_TRACE=trace.json to additionally get a Chrome trace of every
// span (see DESIGN.md, "Observability").
#include "baselines/gradient_matching.h"
#include "bench/bench_common.h"
#include "common/string_util.h"
#include "core/freehgc.h"

using namespace freehgc;
using namespace freehgc::bench;

int main() {
  // Arm the exec.* per-invoke counters so the metrics snapshot in the
  // JSON companion is complete (kernel value counters are always on).
  obs::SetDetailedMetricsEnabled(true);
  PrintHeader("Fig. 8: condensation time comparison");
  TablePrinter table({"Dataset", "GCond", "HGCond", "FreeHGC",
                      "speedup vs GCond", "speedup vs HGCond"});
  const std::vector<std::pair<std::string, double>> configs = {
      {"freebase", 0.024}, {"mutag", 0.020}, {"aminer", 0.002}};
  std::string runs_json;
  for (const auto& [name, ratio] : configs) {
    auto env = MakeEnv(name);

    double gcond_s = 0.0, hgcond_s = 0.0;
    for (bool hetero : {false, true}) {
      baselines::GradientMatchingOptions gm;
      gm.ratio = ratio;
      gm.hetero = hetero;
      if (hetero) {
        gm.relay_inits += 2;
        gm.inner_iters += 2;
      }
      auto res = baselines::GradientMatchingCondense(env->ctx, gm);
      (hetero ? hgcond_s : gcond_s) = res.ok() ? res->seconds : -1.0;
    }

    core::FreeHgcOptions fopts;
    fopts.ratio = ratio;
    fopts.max_hops = env->ctx.options.max_hops;
    fopts.max_paths = env->ctx.options.max_paths;
    auto cond = core::Condense(env->graph, fopts);
    const double free_s = cond.ok() ? cond->seconds : -1.0;
    const core::StageSeconds stages =
        cond.ok() ? cond->stage_seconds : core::StageSeconds{};

    table.AddRow({name, StrFormat("%.2fs", gcond_s),
                  StrFormat("%.2fs", hgcond_s), StrFormat("%.2fs", free_s),
                  StrFormat("%.2fx", gcond_s / free_s),
                  StrFormat("%.2fx", hgcond_s / free_s)});
    if (!runs_json.empty()) runs_json += ",\n";
    runs_json += StrFormat(
        "    {\"dataset\": \"%s\", \"ratio\": %.4f, "
        "\"gcond_seconds\": %.6f, \"hgcond_seconds\": %.6f, "
        "\"freehgc_seconds\": %.6f, \"freehgc_stage_seconds\": %s}",
        name.c_str(), ratio, gcond_s, hgcond_s, free_s,
        StageSecondsJson(stages).c_str());
  }
  table.Print();
  WriteTextFile("BENCH_fig8_efficiency.json",
                StrFormat("{\n  \"threads\": %d,\n  \"table\": %s,\n"
                          "  \"runs\": [\n%s\n  ],\n"
                          "  \"metrics\": %s\n}\n",
                          BenchThreads(), table.ToJson().c_str(),
                          runs_json.c_str(), MetricsSnapshotJson().c_str()));
  return 0;
}
