// Figure 2 (Section III empirical analysis).
//   (a) Low effectiveness: HGCond accuracy on ACM and IMDB stays flat or
//       degrades as r grows from 1.2% to 7.2% and never reaches the ideal
//       (whole-graph SeHGNN) accuracy, across four evaluator HGNNs.
//   (b) Low efficiency: condensation time of GCond vs HGCond grows with
//       the condensed-graph size, with HGCond consistently slower
//       (clustering init + OPS parameter exploration), on Freebase and
//       AMiner.
#include "baselines/gradient_matching.h"
#include "bench/bench_common.h"
#include "common/string_util.h"

using namespace freehgc;
using namespace freehgc::bench;

int main() {
  PrintHeader("Fig. 2(a): HGCond accuracy vs ratio (flat/degrading)");
  for (const std::string name : {"acm", "imdb"}) {
    auto env = MakeEnv(name);
    const auto ideal = hgnn::WholeGraphBaseline(env->ctx, env->eval_cfg);
    std::printf("%s ideal (whole-graph SeHGNN): %.2f\n", name.c_str(),
                100.0f * ideal.test_accuracy);
    eval::TablePrinter table(
        {"Evaluator", "r=1.2%", "r=2.4%", "r=4.8%", "r=7.2%"});
    for (auto kind : {hgnn::HgnnKind::kHeteroSGC, hgnn::HgnnKind::kHGT,
                      hgnn::HgnnKind::kHGB, hgnn::HgnnKind::kSeHGNN}) {
      hgnn::HgnnConfig cfg = env->eval_cfg;
      cfg.kind = kind;
      std::vector<std::string> row = {
          std::string("HGC-") + hgnn::HgnnKindName(kind)};
      for (double r : {0.012, 0.024, 0.048, 0.072}) {
        eval::RunOptions run;
        run.ratio = r;
        const auto agg = eval::RunMethodSeeds(
            env->ctx, eval::MethodKind::kHGCond, run, cfg, {1, 2});
        row.push_back(StrFormat("%.1f", agg.accuracy.mean));
      }
      table.AddRow(std::move(row));
    }
    table.Print();
  }

  PrintHeader("Fig. 2(b): GCond vs HGCond condensation time vs size");
  for (const std::string name : {"freebase", "aminer"}) {
    auto env = MakeEnv(name, /*seed=*/1, /*max_paths=*/12,
                       name == "aminer" ? 0.3 : 1.0);
    eval::TablePrinter table({"Method", "r=1.2%", "r=2.4%", "r=4.8%",
                              "r=9.6%"});
    for (bool hetero : {false, true}) {
      std::vector<std::string> row = {hetero ? "HGCond" : "GCond"};
      for (double r : {0.012, 0.024, 0.048, 0.096}) {
        baselines::GradientMatchingOptions gm;
        gm.ratio = r;
        gm.hetero = hetero;
        if (hetero) {
          gm.relay_inits += 2;
          gm.inner_iters += 2;
        }
        auto res = baselines::GradientMatchingCondense(env->ctx, gm);
        row.push_back(res.ok() ? StrFormat("%.2fs", res->seconds) : "err");
      }
      table.AddRow(std::move(row));
    }
    std::printf("%s:\n", name.c_str());
    table.Print();
  }
  return 0;
}
