// Table VII: condensed graphs vs original graphs — test accuracy, storage
// footprint, and HGNN training time (TH = training the HGB-style model,
// TS = training the SeHGNN-style model) for Whole / HGCond / FreeHGC.
#include "baselines/gradient_matching.h"
#include "bench/bench_common.h"
#include "common/string_util.h"
#include "core/freehgc.h"

using namespace freehgc;
using namespace freehgc::bench;

namespace {

struct Cells {
  std::string acc, storage, th, ts;
};

Cells Measure(const Env& env, const std::vector<Matrix>* blocks,
              const std::vector<int32_t>* labels,
              const HeteroGraph* subgraph, size_t storage_bytes) {
  Cells out;
  out.storage = HumanBytes(storage_bytes);
  for (auto kind : {hgnn::HgnnKind::kHGB, hgnn::HgnnKind::kSeHGNN}) {
    hgnn::HgnnConfig cfg = env.eval_cfg;
    cfg.kind = kind;
    hgnn::EvalMetrics m;
    if (subgraph != nullptr) {
      m = hgnn::TrainAndEvaluate(env.ctx, *subgraph, cfg);
    } else {
      m = hgnn::TrainOnBlocks(env.ctx, *blocks, *labels, cfg);
    }
    if (kind == hgnn::HgnnKind::kHGB) {
      out.th = StrFormat("%.2fs", m.train_seconds);
    } else {
      out.ts = StrFormat("%.2fs", m.train_seconds);
      out.acc = StrFormat("%.2f", m.test_accuracy * 100.0f);
    }
  }
  return out;
}

}  // namespace

int main() {
  PrintHeader(
      "Table VII: condensed vs original graphs (accuracy / storage / "
      "train time)");
  const std::vector<std::pair<std::string, double>> configs = {
      {"acm", 0.024},  {"dblp", 0.024},   {"imdb", 0.024},
      {"freebase", 0.024}, {"aminer", 0.002},
  };
  eval::TablePrinter table({"Dataset", "Variant", "Accuracy", "Storage",
                            "TH", "TS"});
  for (const auto& [name, ratio] : configs) {
    auto env = MakeEnv(name);

    // Whole graph.
    const Cells whole = Measure(*env, nullptr, nullptr, &env->graph,
                                env->graph.MemoryBytes());
    table.AddRow({name + StrFormat(" r=%.1f%%", 100 * ratio), "Whole",
                  whole.acc, whole.storage, whole.th, whole.ts});

    // HGCond synthetic data.
    baselines::GradientMatchingOptions gm;
    gm.ratio = ratio;
    gm.hetero = true;
    gm.relay_inits = 5;
    gm.inner_iters = 6;
    gm.seed = 1;
    auto syn = baselines::GradientMatchingCondense(env->ctx, gm);
    if (syn.ok()) {
      const Cells hg = Measure(*env, &syn->blocks, &syn->labels, nullptr,
                               syn->MemoryBytes());
      table.AddRow({"", "HGCond", hg.acc, hg.storage, hg.th, hg.ts});
    }

    // FreeHGC condensed graph.
    core::FreeHgcOptions fopts;
    fopts.ratio = ratio;
    fopts.max_hops = env->ctx.options.max_hops;
    fopts.max_paths = env->ctx.options.max_paths;
    auto cond = core::Condense(env->graph, fopts);
    if (cond.ok()) {
      const Cells fr = Measure(*env, nullptr, nullptr, &cond->graph,
                               cond->graph.MemoryBytes());
      table.AddRow({"", "FreeHGC", fr.acc, fr.storage, fr.th, fr.ts});
    }
  }
  table.Print();
  std::printf(
      "Note: HGCond stores dense synthetic feature blocks; FreeHGC stores "
      "a sparse subgraph, hence the smaller footprint (paper Section "
      "V-H).\n");
  return 0;
}
