// freehgc_meta: the cluster metadata/coordination service.
//
//   freehgc_meta [--port=0] [--port-file=PATH] [--heartbeat-ttl-ms=2000]
//                [--max-events=1024]
//
// Owns the graph-fingerprint → shard placement map for a single-machine
// multi-process freehgc cluster (vineyard's etcd-meta pattern,
// in-process): shards started with `freehgc_server --meta=127.0.0.1:PORT
// --shard-id=N` register here and heartbeat their catalogs and load;
// routers (freehgc_client --meta-port, cluster::Router) resolve graph
// names to shard placements and long-poll Watch for invalidations. A
// shard silent for --heartbeat-ttl-ms is marked dead (routers fail over
// to replicas); a revived shard rejoins on its next heartbeat.
//
// Speaks the same length-prefixed wire protocol as freehgc_server; the
// bound port is printed and optionally written to --port-file. Stops on
// SIGINT/SIGTERM or a client shutdown message.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "cluster/meta_server.h"

namespace {

freehgc::cluster::MetaServer* g_server = nullptr;

// Async-signal-safe: RequestStop is one atomic store + one pipe write
// (Close on the meta service only flips a flag under a mutex the signal
// path never holds — it runs on the main thread, not here).
void HandleSignal(int /*sig*/) {
  if (g_server != nullptr) g_server->RequestStop();
}

bool ParseIntFlag(const std::string& arg, const char* prefix, int* out) {
  if (arg.rfind(prefix, 0) != 0) return false;
  *out = std::atoi(arg.c_str() + std::string(prefix).size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  freehgc::cluster::MetaServerOptions options;
  std::string port_file;
  int ttl_ms = 0;
  int max_events = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (ParseIntFlag(arg, "--port=", &options.port) ||
        ParseIntFlag(arg, "--heartbeat-ttl-ms=", &ttl_ms) ||
        ParseIntFlag(arg, "--max-events=", &max_events)) {
      continue;
    }
    if (arg.rfind("--port-file=", 0) == 0) {
      port_file = arg.substr(std::string("--port-file=").size());
      continue;
    }
    std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
    return 2;
  }
  if (ttl_ms > 0) options.meta.heartbeat_ttl_ms = ttl_ms;
  if (max_events > 0) options.meta.max_events = static_cast<size_t>(max_events);

  freehgc::cluster::MetaServer server(options);
  const freehgc::Status st = server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "freehgc_meta: %s\n", st.ToString().c_str());
    return 1;
  }
  g_server = &server;
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  std::printf("freehgc_meta listening on 127.0.0.1:%d (ttl %lld ms)\n",
              server.port(),
              static_cast<long long>(options.meta.heartbeat_ttl_ms));
  std::fflush(stdout);
  if (!port_file.empty()) {
    if (FILE* f = std::fopen(port_file.c_str(), "w")) {
      std::fprintf(f, "%d\n", server.port());
      std::fclose(f);
    } else {
      std::fprintf(stderr, "cannot write port file %s\n", port_file.c_str());
    }
  }

  server.Wait();
  g_server = nullptr;
  std::printf("freehgc_meta stopped; final state: %s\n",
              server.service().StatsJson().c_str());
  return 0;
}
