// Ad-hoc sweep CLI over the pipeline layer: pick datasets, ratios,
// methods and seeds; every cell of the grid runs through one shared
// execution context and artifact cache.
//
//   run_sweep --datasets=toy --ratios=0.1 --methods=freehgc,herding \
//             --seeds=1,2 --repeat=2 --json-prefix=/tmp/sweep
//
// --repeat=N runs the identical grid N times in-process against the same
// cache, writing <prefix>_runN.json per run. Cell values are bit-identical
// across runs (the cache's determinism invariant); only timing and the
// cache hit counts differ — which is exactly what the CI cold/warm step
// asserts.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "pipeline/sweep.h"

using namespace freehgc;

namespace {

std::vector<std::string> SplitList(const std::string& csv) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : csv) {
    if (c == ',') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

[[noreturn]] void Usage() {
  std::fprintf(
      stderr,
      "usage: run_sweep [--datasets=a,b] [--ratios=0.012,0.024]\n"
      "                 [--methods=key,key] [--seeds=1,2,3] [--threads=N]\n"
      "                 [--no-cache] [--whole-baseline] [--repeat=N]\n"
      "                 [--json-prefix=PATH] [--quiet]\n"
      "registered methods:");
  for (const auto& key : pipeline::MethodRegistry::Global().Keys()) {
    std::fprintf(stderr, " %s", key.c_str());
  }
  std::fprintf(stderr, "\n");
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> datasets = {"toy"};
  std::vector<double> ratios = {0.1};
  pipeline::SweepSpec spec;
  spec.methods = {"freehgc"};
  spec.seeds = {1, 2};
  int threads = 0;
  int repeat = 1;
  std::string json_prefix;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> std::string {
      return arg.substr(std::string(flag).size());
    };
    if (arg.rfind("--datasets=", 0) == 0) {
      datasets = SplitList(value("--datasets="));
    } else if (arg.rfind("--ratios=", 0) == 0) {
      ratios.clear();
      for (const auto& r : SplitList(value("--ratios="))) {
        ratios.push_back(std::atof(r.c_str()));
      }
    } else if (arg.rfind("--methods=", 0) == 0) {
      spec.methods = SplitList(value("--methods="));
    } else if (arg.rfind("--seeds=", 0) == 0) {
      spec.seeds.clear();
      for (const auto& s : SplitList(value("--seeds="))) {
        spec.seeds.push_back(
            static_cast<uint64_t>(std::atoll(s.c_str())));
      }
    } else if (arg.rfind("--threads=", 0) == 0) {
      threads = std::atoi(value("--threads=").c_str());
    } else if (arg.rfind("--repeat=", 0) == 0) {
      repeat = std::atoi(value("--repeat=").c_str());
    } else if (arg.rfind("--json-prefix=", 0) == 0) {
      json_prefix = value("--json-prefix=");
    } else if (arg == "--no-cache") {
      spec.use_cache = false;
    } else if (arg == "--whole-baseline") {
      spec.whole_graph_baseline = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      Usage();
    }
  }
  if (datasets.empty() || ratios.empty() || spec.methods.empty() ||
      spec.seeds.empty() || repeat < 1) {
    Usage();
  }
  for (const auto& name : datasets) {
    spec.datasets.push_back({.name = name, .ratios = ratios});
  }
  for (const auto& key : spec.methods) {
    if (pipeline::MethodRegistry::Global().Find(key) == nullptr) {
      std::fprintf(stderr, "unknown method '%s'\n", key.c_str());
      Usage();
    }
  }

  exec::ExecContext ex(threads);
  pipeline::PipelineEnv env;
  env.exec = &ex;
  pipeline::SweepRunner runner(std::move(spec), env);

  for (int run = 1; run <= repeat; ++run) {
    auto result = runner.Run();
    if (!result.ok()) {
      std::fprintf(stderr, "sweep failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    if (!quiet) {
      std::printf("--- run %d/%d (%.2fs, cache: %lld hits / %lld misses, "
                  "%zu bytes) ---\n",
                  run, repeat, result->total_seconds,
                  static_cast<long long>(result->cache_stats.hits),
                  static_cast<long long>(result->cache_stats.misses),
                  result->cache_stats.bytes);
      pipeline::PrintRatioTables(*result, runner.spec());
    }
    if (!json_prefix.empty()) {
      const std::string path =
          json_prefix + StrFormat("_run%d.json", run);
      std::ofstream out(path);
      if (!out) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return 1;
      }
      out << result->ToJson();
      std::printf("wrote %s\n", path.c_str());
    }
  }
  return 0;
}
