// freehgc_inspect: dump the structure of a serialized graph container
// without loading it.
//
//   freehgc_inspect PATH...
//
// Prints the container version, file size, content fingerprint, node
// types, relations, and (v3) the page-aligned section table with
// per-section CRC status. ArtifactCache spill files (*.spill) are
// recognized too and print their section table under a "spill" tag (the
// fingerprint shown is the cache entry-key hash, not a graph identity).
// v3 files are mapped, never slurped to heap; v1/v2 files are streamed
// with a bounded buffer — inspecting a multi-gigabyte container needs
// only a few megabytes of memory either way. Exits non-zero if any file
// fails to parse or any checksum is bad.

#include <cstdio>
#include <string>

#include "graph/serialize.h"

namespace {

void PrintSummary(const std::string& path,
                  const freehgc::ContainerSummary& s) {
  std::printf("%s%s\n", path.c_str(), s.spill ? "  (spill file)" : "");
  std::printf("  %s=%u bytes=%llu fingerprint=%016llx crc=%s\n",
              s.spill ? "spill_version" : "version", s.version,
              static_cast<unsigned long long>(s.file_bytes),
              static_cast<unsigned long long>(s.fingerprint),
              s.version == 1 ? "n/a" : (s.crc_ok ? "ok" : "BAD"));
  std::printf("  types (%zu):\n", s.types.size());
  for (const auto& [name, count] : s.types) {
    std::printf("    %-16s %lld nodes\n", name.c_str(),
                static_cast<long long>(count));
  }
  std::printf("  relations (%zu):\n", s.relations.size());
  for (const auto& r : s.relations) {
    std::printf("    %-16s %d -> %d  %d x %d  nnz=%lld\n", r.name.c_str(),
                r.src_type, r.dst_type, r.rows, r.cols,
                static_cast<long long>(r.nnz));
  }
  if (!s.sections.empty()) {
    std::printf("  sections (%zu):\n", s.sections.size());
    for (const auto& sec : s.sections) {
      std::printf("    %-10s[%u]  offset=%-12llu size=%-12llu count=%-10llu "
                  "crc=%08x %s\n",
                  sec.kind.c_str(), sec.index,
                  static_cast<unsigned long long>(sec.offset),
                  static_cast<unsigned long long>(sec.size),
                  static_cast<unsigned long long>(sec.logical_count),
                  sec.stored_crc, sec.crc_ok ? "ok" : "BAD");
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: freehgc_inspect PATH...\n");
    return 2;
  }
  int rc = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string path = argv[i];
    auto summary = freehgc::InspectContainer(path);
    if (!summary.ok()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(),
                   summary.status().ToString().c_str());
      rc = 1;
      continue;
    }
    PrintSummary(path, *summary);
    if (summary->version > 1 && !summary->crc_ok) rc = 1;
  }
  return rc;
}
