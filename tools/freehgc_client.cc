// freehgc_client: command-line front-end for a running freehgc_server.
//
//   freehgc_client --port=P ping
//   freehgc_client --port=P register NAME PRESET [--seed=1] [--scale=1.0]
//   freehgc_client --port=P upload NAME FILE
//   freehgc_client --port=P list
//   freehgc_client --port=P condense GRAPH [--method=freehgc] [--ratio=0.1]
//                  [--seed=1] [--max-hops=2] [--max-paths=12]
//                  [--evaluate] [--output=FILE] [--deadline-ms=0]
//                  [--priority=0]
//   freehgc_client --port=P loadgen GRAPH [--method=freehgc] [--ratio=0.1]
//                  [--classes=24] [--rate=50] [--ramp-s=1] [--sustain-s=2]
//                  [--overload-s=0] [--overload-x=6] [--threads=8]
//                  [--seed=1] [--report=FILE] [--check]
//   freehgc_client --port=P stats
//   freehgc_client --port=P metrics     # Prometheus text exposition
//   freehgc_client --port=P health      # liveness JSON
//   freehgc_client --port=P flight      # flight-recorder dump (JSON)
//   freehgc_client --port=P shutdown
//
// --port-file=PATH reads the port a server wrote with its own
// --port-file flag.
//
// Cluster mode: pass --meta-port=P (or --meta-port-file=PATH) instead of
// --port to route through a freehgc_meta service. Then:
//
//   upload NAME FILE [--replicas=2]   places on the least-loaded shards
//   condense GRAPH [flags]            routes to a live replica (failover)
//   resolve NAME                      prints the shard placement
//   shards                            one row per shard (liveness + load)
//   stats                             meta-service state JSON
//   shutdown                          stops the meta service

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/loadgen/loadgen.h"
#include "cluster/router.h"
#include "common/string_util.h"
#include "serve/client.h"

namespace {

using freehgc::Status;
using freehgc::serve::CondenseRequest;
using freehgc::serve::GraphInfo;
using freehgc::serve::ServeClient;

int Fail(const Status& st) {
  std::fprintf(stderr, "freehgc_client: %s\n", st.ToString().c_str());
  return 1;
}

bool FlagValue(const std::string& arg, const char* prefix,
               std::string* out) {
  const std::string p = prefix;
  if (arg.rfind(p, 0) != 0) return false;
  *out = arg.substr(p.size());
  return true;
}

void PrintInfo(const GraphInfo& info) {
  std::printf("%-16s fp=%016llx nodes=%lld edges=%lld bytes=%zu %s%s\n",
              info.name.c_str(),
              static_cast<unsigned long long>(info.fingerprint),
              static_cast<long long>(info.nodes),
              static_cast<long long>(info.edges), info.memory_bytes,
              info.mapped ? "mapped " : "heap",
              info.mapped ? info.source_path.c_str() : "");
}

bool ReadFile(const std::string& path, std::string* out) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  out->resize(size > 0 ? static_cast<size_t>(size) : 0);
  const bool ok =
      out->empty() || std::fread(out->data(), 1, out->size(), f) ==
                          out->size();
  std::fclose(f);
  return ok;
}

// Open-loop load settings for the `loadgen` command.
struct LoadgenFlags {
  int classes = 24;       // seeds 1..classes, max_paths cycling {4, 6, 8}
  double rate = 50.0;     // sustain arrival rate (requests/second)
  double ramp_s = 1.0;    // ramp 0.25*rate -> rate over this many seconds
  double sustain_s = 2.0;
  double overload_s = 0.0;   // 0 = no overload phase
  double overload_x = 6.0;   // overload rate = overload_x * rate
  int threads = 8;
  uint64_t seed = 1;         // schedule seed (deterministic arrivals)
  std::string report;        // write the phase reports as JSON here
  bool check = false;        // exit nonzero on errors or off-phase sheds
};

/// Replays a deterministic open-loop schedule against a live server. One
/// ServeClient per worker thread (the wire protocol is one request per
/// connection at a time), connected lazily on the thread's first arrival.
int RunLoadgen(int port, const std::string& graph, CondenseRequest base,
               const LoadgenFlags& flags) {
  namespace lg = freehgc::loadgen;
  lg::LoadSpec spec;
  spec.seed = flags.seed;
  const int path_caps[3] = {4, 6, 8};
  for (int c = 0; c < (flags.classes > 0 ? flags.classes : 1); ++c) {
    lg::RequestClass cls;
    CondenseRequest req = base;
    req.graph = graph;
    req.seed = static_cast<uint64_t>(1 + c);
    req.max_paths = path_caps[c % 3];
    cls.name = freehgc::StrFormat("c%d", c);
    cls.request = req;
    spec.classes.push_back(cls);
  }
  if (flags.ramp_s > 0) {
    spec.phases.push_back({"ramp", flags.ramp_s, 0.25 * flags.rate,
                           flags.rate});
  }
  if (flags.sustain_s > 0) {
    spec.phases.push_back({"sustain", flags.sustain_s, flags.rate,
                           flags.rate});
  }
  if (flags.overload_s > 0) {
    const double rate = flags.overload_x * flags.rate;
    spec.phases.push_back({"overload", flags.overload_s, rate, rate});
  }
  if (spec.phases.empty()) {
    std::fprintf(stderr, "loadgen: no phases (all durations are 0)\n");
    return 2;
  }
  const auto schedule = lg::BuildSchedule(spec);
  std::printf("loadgen: %zu arrivals, %zu classes, %zu phase(s), seed %llu, "
              "%d client thread(s)\n",
              schedule.size(), spec.classes.size(), spec.phases.size(),
              static_cast<unsigned long long>(spec.seed), flags.threads);
  std::fflush(stdout);

  const auto report = lg::RunOpenLoop(
      spec, schedule, flags.threads,
      [port](const CondenseRequest& req, uint32_t) -> Status {
        thread_local ServeClient client;
        thread_local bool connected = false;
        if (!connected) {
          if (Status st = client.Connect(port); !st.ok()) return st;
          connected = true;
        }
        return client.Condense(req).status();
      });

  std::string json;
  for (size_t i = 0; i < report.phases.size(); ++i) {
    const lg::PhaseReport& pr = report.phases[i];
    std::printf("%-8s: offered %8.1f rps  achieved %8.1f rps  "
                "p50 %8.2f ms  p95 %8.2f ms  p99 %8.2f ms  ok %lld  "
                "shed %lld  expired %lld  errors %lld  lag %.1f ms\n",
                pr.name.c_str(), pr.offered_rps, pr.achieved_rps, pr.p50_ms,
                pr.p95_ms, pr.p99_ms, static_cast<long long>(pr.ok),
                static_cast<long long>(pr.shed),
                static_cast<long long>(pr.expired),
                static_cast<long long>(pr.errors), pr.max_lag_ms);
    json += "    " + lg::PhaseReportJson(pr);
    json += i + 1 < report.phases.size() ? ",\n" : "\n";
  }
  if (!flags.report.empty()) {
    FILE* f = std::fopen(flags.report.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", flags.report.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n  \"loadgen\": {\"graph\": \"%s\", \"classes\": %zu, "
                 "\"seed\": %llu, \"threads\": %d},\n  \"phases\": [\n%s  ]\n}\n",
                 graph.c_str(), spec.classes.size(),
                 static_cast<unsigned long long>(spec.seed), flags.threads,
                 json.c_str());
    std::fclose(f);
    std::printf("wrote %s\n", flags.report.c_str());
  }

  if (flags.check) {
    if (report.errors > 0) {
      std::fprintf(stderr, "loadgen: %lld protocol error(s)\n",
                   static_cast<long long>(report.errors));
      return 1;
    }
    for (const lg::PhaseReport& pr : report.phases) {
      if (pr.name != "overload" && (pr.shed > 0 || pr.expired > 0)) {
        std::fprintf(stderr,
                     "loadgen: %lld shed / %lld expired outside the "
                     "overload phase (%s)\n",
                     static_cast<long long>(pr.shed),
                     static_cast<long long>(pr.expired), pr.name.c_str());
        return 1;
      }
    }
  }
  return 0;
}

// Commands available when routing through the meta service.
int RunClusterCommand(int meta_port, const std::string& command,
                      const std::vector<std::string>& positional,
                      CondenseRequest req, const std::string& output,
                      int replicas) {
  freehgc::cluster::RouterOptions options;
  options.meta_port = meta_port;
  freehgc::cluster::Router router(options);
  if (Status st = router.Connect(); !st.ok()) return Fail(st);

  if (command == "upload") {
    if (positional.size() != 2) {
      std::fprintf(stderr, "usage: upload NAME FILE [--replicas=N]\n");
      return 2;
    }
    std::string container;
    if (!ReadFile(positional[1], &container)) {
      std::fprintf(stderr, "cannot read %s\n", positional[1].c_str());
      return 1;
    }
    auto info = router.Upload(positional[0], container, replicas);
    if (!info.ok()) return Fail(info.status());
    PrintInfo(*info);
    auto placement = router.Resolve(positional[0]);
    if (placement.ok()) {
      std::printf("placed on %zu shard(s):", placement->shards.size());
      for (const auto& ep : placement->shards) {
        std::printf(" %u(:%d)", ep.shard_id, ep.port);
      }
      std::printf(" [v%llu]\n",
                  static_cast<unsigned long long>(placement->version));
    }
    return 0;
  }
  if (command == "condense") {
    if (positional.size() != 1) {
      std::fprintf(stderr, "usage: condense GRAPH [flags]\n");
      return 2;
    }
    req.graph = positional[0];
    req.return_graph = !output.empty();
    auto reply = router.Condense(req);
    if (!reply.ok()) return Fail(reply.status());
    const freehgc::cluster::RouterStats stats = router.stats();
    std::printf(
        "condensed %s with %s: %lld nodes, %lld edges "
        "(total %.3fs) [resolves %lld, failovers %lld]\n",
        req.graph.c_str(), req.method.c_str(),
        static_cast<long long>(reply->nodes),
        static_cast<long long>(reply->edges), reply->total_seconds,
        static_cast<long long>(stats.resolves),
        static_cast<long long>(stats.failovers));
    if (!output.empty()) {
      FILE* f = std::fopen(output.c_str(), "wb");
      if (f == nullptr ||
          std::fwrite(reply->graph_bytes.data(), 1, reply->graph_bytes.size(),
                      f) != reply->graph_bytes.size()) {
        if (f != nullptr) std::fclose(f);
        std::fprintf(stderr, "cannot write %s\n", output.c_str());
        return 1;
      }
      std::fclose(f);
      std::printf("wrote condensed graph to %s (%zu bytes)\n", output.c_str(),
                  reply->graph_bytes.size());
    }
    return 0;
  }
  if (command == "resolve") {
    if (positional.size() != 1) {
      std::fprintf(stderr, "usage: resolve NAME\n");
      return 2;
    }
    auto placement = router.Resolve(positional[0]);
    if (!placement.ok()) return Fail(placement.status());
    std::printf("%s fp=%016llx v%llu\n", placement->name.c_str(),
                static_cast<unsigned long long>(placement->fingerprint),
                static_cast<unsigned long long>(placement->version));
    for (const auto& ep : placement->shards) {
      std::printf("  shard %u port %d %s\n", ep.shard_id, ep.port,
                  ep.alive ? "alive" : "dead");
    }
    return 0;
  }
  if (command == "shards") {
    auto shards = router.Shards();
    if (!shards.ok()) return Fail(shards.status());
    std::printf("%6s %6s %6s %8s %10s %6s %8s %9s %7s\n", "shard", "port",
                "state", "hb-age", "resident", "queue", "inflight",
                "completed", "graphs");
    for (const auto& s : *shards) {
      std::printf("%6u %6d %6s %6lldms %9.1fM %6lld %8lld %9lld %7lld\n",
                  s.shard_id, s.port, s.alive ? "alive" : "dead",
                  static_cast<long long>(s.heartbeat_age_ms),
                  static_cast<double>(s.load.resident_bytes) / 1e6,
                  static_cast<long long>(s.load.queue_depth),
                  static_cast<long long>(s.load.inflight),
                  static_cast<long long>(s.load.completed),
                  static_cast<long long>(s.graphs));
    }
    return 0;
  }
  // The remaining meta-side commands talk to the service directly.
  freehgc::cluster::MetaClient meta;
  if (Status st = meta.Connect(meta_port); !st.ok()) return Fail(st);
  if (command == "ping") {
    std::printf("ok\n");
    return 0;
  }
  if (command == "stats") {
    auto stats = meta.Stats();
    if (!stats.ok()) return Fail(stats.status());
    std::printf("%s\n", stats->c_str());
    return 0;
  }
  if (command == "shutdown") {
    if (Status st = meta.Shutdown(); !st.ok()) return Fail(st);
    std::printf("shutdown requested\n");
    return 0;
  }
  std::fprintf(stderr, "unknown cluster command: %s\n", command.c_str());
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  int port = 0;
  int meta_port = 0;
  int replicas = 1;
  std::string command;
  std::vector<std::string> positional;
  CondenseRequest req;
  std::string output;
  uint64_t seed = 1;
  double scale = 0.0;
  LoadgenFlags lg;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string v;
    if (FlagValue(arg, "--port=", &v)) {
      port = std::atoi(v.c_str());
    } else if (FlagValue(arg, "--port-file=", &v)) {
      std::string contents;
      if (!ReadFile(v, &contents)) {
        std::fprintf(stderr, "cannot read port file %s\n", v.c_str());
        return 2;
      }
      port = std::atoi(contents.c_str());
    } else if (FlagValue(arg, "--meta-port=", &v)) {
      meta_port = std::atoi(v.c_str());
    } else if (FlagValue(arg, "--meta-port-file=", &v)) {
      std::string contents;
      if (!ReadFile(v, &contents)) {
        std::fprintf(stderr, "cannot read port file %s\n", v.c_str());
        return 2;
      }
      meta_port = std::atoi(contents.c_str());
    } else if (FlagValue(arg, "--replicas=", &v)) {
      replicas = std::atoi(v.c_str());
    } else if (FlagValue(arg, "--method=", &v)) {
      req.method = v;
    } else if (FlagValue(arg, "--ratio=", &v)) {
      req.ratio = std::atof(v.c_str());
    } else if (FlagValue(arg, "--seed=", &v)) {
      seed = static_cast<uint64_t>(std::atoll(v.c_str()));
    } else if (FlagValue(arg, "--scale=", &v)) {
      scale = std::atof(v.c_str());
    } else if (FlagValue(arg, "--max-hops=", &v)) {
      req.max_hops = std::atoi(v.c_str());
    } else if (FlagValue(arg, "--max-paths=", &v)) {
      req.max_paths = std::atoi(v.c_str());
    } else if (FlagValue(arg, "--deadline-ms=", &v)) {
      req.deadline_ms = std::atoll(v.c_str());
    } else if (FlagValue(arg, "--priority=", &v)) {
      req.priority = std::atoi(v.c_str());
    } else if (FlagValue(arg, "--output=", &v)) {
      output = v;
    } else if (FlagValue(arg, "--classes=", &v)) {
      lg.classes = std::atoi(v.c_str());
    } else if (FlagValue(arg, "--rate=", &v)) {
      lg.rate = std::atof(v.c_str());
    } else if (FlagValue(arg, "--ramp-s=", &v)) {
      lg.ramp_s = std::atof(v.c_str());
    } else if (FlagValue(arg, "--sustain-s=", &v)) {
      lg.sustain_s = std::atof(v.c_str());
    } else if (FlagValue(arg, "--overload-s=", &v)) {
      lg.overload_s = std::atof(v.c_str());
    } else if (FlagValue(arg, "--overload-x=", &v)) {
      lg.overload_x = std::atof(v.c_str());
    } else if (FlagValue(arg, "--threads=", &v)) {
      lg.threads = std::atoi(v.c_str());
    } else if (FlagValue(arg, "--report=", &v)) {
      lg.report = v;
    } else if (arg == "--check") {
      lg.check = true;
    } else if (arg == "--evaluate") {
      req.evaluate = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    } else if (command.empty()) {
      command = arg;
    } else {
      positional.push_back(arg);
    }
  }
  if ((port <= 0 && meta_port <= 0) || command.empty()) {
    std::fprintf(stderr,
                 "usage: freehgc_client --port=P (or --port-file=PATH) "
                 "ping|register|upload|list|condense|loadgen|stats|metrics|"
                 "health|flight|shutdown ...\n"
                 "       freehgc_client --meta-port=P (or "
                 "--meta-port-file=PATH) "
                 "ping|upload|condense|resolve|shards|stats|shutdown ...\n");
    return 2;
  }
  if (meta_port > 0) {
    req.seed = seed;
    return RunClusterCommand(meta_port, command, positional, req, output,
                             replicas);
  }

  ServeClient client;
  if (Status st = client.Connect(port); !st.ok()) return Fail(st);

  if (command == "ping") {
    if (Status st = client.Ping(); !st.ok()) return Fail(st);
    std::printf("ok\n");
    return 0;
  }
  if (command == "register") {
    if (positional.size() != 2) {
      std::fprintf(stderr, "usage: register NAME PRESET\n");
      return 2;
    }
    auto info =
        client.RegisterGenerator(positional[0], positional[1], seed, scale);
    if (!info.ok()) return Fail(info.status());
    PrintInfo(*info);
    return 0;
  }
  if (command == "upload") {
    if (positional.size() != 2) {
      std::fprintf(stderr, "usage: upload NAME FILE\n");
      return 2;
    }
    std::string container;
    if (!ReadFile(positional[1], &container)) {
      std::fprintf(stderr, "cannot read %s\n", positional[1].c_str());
      return 1;
    }
    auto info = client.UploadGraph(positional[0], container);
    if (!info.ok()) return Fail(info.status());
    PrintInfo(*info);
    return 0;
  }
  if (command == "list") {
    auto infos = client.ListGraphs();
    if (!infos.ok()) return Fail(infos.status());
    for (const GraphInfo& info : *infos) PrintInfo(info);
    return 0;
  }
  if (command == "condense") {
    if (positional.size() != 1) {
      std::fprintf(stderr, "usage: condense GRAPH [flags]\n");
      return 2;
    }
    req.graph = positional[0];
    req.seed = seed;
    req.return_graph = !output.empty();
    auto reply = client.Condense(req);
    if (!reply.ok()) return Fail(reply.status());
    std::printf(
        "condensed %s with %s: %lld nodes, %lld edges, %zu bytes "
        "(condense %.3fs, queue %.3fs, total %.3fs) "
        "[req %llu, evalctx %s]\n",
        req.graph.c_str(), req.method.c_str(),
        static_cast<long long>(reply->nodes),
        static_cast<long long>(reply->edges), reply->storage_bytes,
        reply->condense_seconds, reply->queue_seconds, reply->total_seconds,
        static_cast<unsigned long long>(reply->request_id),
        reply->evalctx_hit ? "hit" : "built");
    if (reply->evaluated) {
      std::printf("accuracy %.2f%%, macro-F1 %.2f%%\n",
                  static_cast<double>(reply->accuracy),
                  static_cast<double>(reply->macro_f1));
    }
    if (!output.empty()) {
      FILE* f = std::fopen(output.c_str(), "wb");
      if (f == nullptr ||
          std::fwrite(reply->graph_bytes.data(), 1,
                      reply->graph_bytes.size(),
                      f) != reply->graph_bytes.size()) {
        if (f != nullptr) std::fclose(f);
        std::fprintf(stderr, "cannot write %s\n", output.c_str());
        return 1;
      }
      std::fclose(f);
      std::printf("wrote condensed graph to %s (%zu bytes)\n",
                  output.c_str(), reply->graph_bytes.size());
    }
    return 0;
  }
  if (command == "loadgen") {
    if (positional.size() != 1) {
      std::fprintf(stderr, "usage: loadgen GRAPH [flags]\n");
      return 2;
    }
    lg.seed = seed;
    return RunLoadgen(port, positional[0], req, lg);
  }
  if (command == "stats") {
    auto stats = client.Stats();
    if (!stats.ok()) return Fail(stats.status());
    std::printf("%s", stats->c_str());
    return 0;
  }
  if (command == "metrics") {
    auto metrics = client.Metrics();
    if (!metrics.ok()) return Fail(metrics.status());
    std::printf("%s", metrics->c_str());
    return 0;
  }
  if (command == "health") {
    auto health = client.Health();
    if (!health.ok()) return Fail(health.status());
    std::printf("%s\n", health->c_str());
    return 0;
  }
  if (command == "flight") {
    auto dump = client.FlightRecorderDump();
    if (!dump.ok()) return Fail(dump.status());
    std::printf("%s\n", dump->c_str());
    return 0;
  }
  if (command == "shutdown") {
    if (Status st = client.Shutdown(); !st.ok()) return Fail(st);
    std::printf("shutdown requested\n");
    return 0;
  }
  std::fprintf(stderr, "unknown command: %s\n", command.c_str());
  return 2;
}
