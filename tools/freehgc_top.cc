// freehgc_top: live terminal dashboard for a running freehgc_server.
//
//   freehgc_top --port=P (or --port-file=PATH)
//               [--interval-ms=1000] [--iterations=0] [--once]
//
// Polls the METRICS wire op each interval and renders one line per poll:
// request throughput (qps over a 10 s sliding window), total-latency
// p50/p95/p99 reconstructed from the scraped histogram buckets, queue
// depth, inflight count, artifact-cache hit rate, the share of cache
// hits served from the resident tier (vs restored from spill files),
// resident graph/cache bytes, cumulative spilled bytes, and graph-store
// evictions. --iterations=N exits after N polls (0 = until interrupted);
// --once is --iterations=1 (handy in scripts and CI).
//
// Everything shown is derived from the same Prometheus text any scraper
// sees — this tool is a reference consumer of the exposition format, not
// a privileged one.
//
// Cluster mode: --meta-port=P (instead of --port) asks the freehgc_meta
// service for the shard table each interval and scrapes METRICS from
// every live shard, printing one row per shard (qps, queue, inflight,
// resident bytes, completed) plus an aggregate TOTAL row. Dead shards
// show as a "dead" row so an operator sees holes in the cluster at a
// glance.

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "cluster/meta_client.h"
#include "obs/exposition.h"
#include "obs/rate_window.h"
#include "obs/trace.h"
#include "serve/client.h"

namespace {

using freehgc::Status;
using freehgc::obs::PromSample;
using freehgc::serve::ServeClient;

bool FlagValue(const std::string& arg, const char* prefix, std::string* out) {
  const std::string p = prefix;
  if (arg.rfind(p, 0) != 0) return false;
  *out = arg.substr(p.size());
  return true;
}

bool ReadPortFile(const std::string& path, int* port) {
  FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return false;
  int value = 0;
  const bool ok = std::fscanf(f, "%d", &value) == 1;
  std::fclose(f);
  if (ok) *port = value;
  return ok;
}

double ValueOr(const std::vector<PromSample>& samples,
               const std::string& name, double fallback) {
  double v = fallback;
  freehgc::obs::FindPromValue(samples, name, &v);
  return v;
}

// Cluster dashboard: one row per shard, scraped through the meta
// service's shard table, plus an aggregate TOTAL row per poll.
int RunMetaMode(int meta_port, int interval_ms, long iterations) {
  freehgc::cluster::MetaClient meta;
  if (Status st = meta.Connect(meta_port); !st.ok()) {
    std::fprintf(stderr, "freehgc_top: %s\n", st.ToString().c_str());
    return 1;
  }
  std::map<uint32_t, freehgc::obs::RateWindow> qps;  // per shard
  for (long iter = 0; iterations == 0 || iter < iterations; ++iter) {
    if (iter != 0) ::usleep(static_cast<useconds_t>(interval_ms) * 1000);
    auto shards = meta.ListShards();
    if (!shards.ok()) {
      std::fprintf(stderr, "freehgc_top: %s\n",
                   shards.status().ToString().c_str());
      return 1;
    }
    std::printf("%6s %6s %6s %10s %6s %9s %10s %9s %7s\n", "shard", "port",
                "state", "qps", "queue", "inflight", "resident", "completed",
                "graphs");
    double total_qps = 0, total_queue = 0, total_inflight = 0;
    double total_resident = 0, total_completed = 0, total_graphs = 0;
    const int64_t now_ns = freehgc::obs::NowNs();
    for (const auto& s : *shards) {
      if (!s.alive) {
        std::printf("%6u %6d %6s %10s %6s %9s %10s %9s %7s\n", s.shard_id,
                    s.port, "dead", "-", "-", "-", "-", "-", "-");
        continue;
      }
      // Scrape the shard's own METRICS: the heartbeat load is a coarse
      // snapshot, the exposition is authoritative.
      double terminal = static_cast<double>(s.load.completed);
      double queue = static_cast<double>(s.load.queue_depth);
      double inflight = static_cast<double>(s.load.inflight);
      double resident = static_cast<double>(s.load.resident_bytes);
      ServeClient shard;
      if (shard.Connect(s.port).ok()) {
        if (auto text = shard.Metrics(); text.ok()) {
          const std::vector<PromSample> samples =
              freehgc::obs::ParsePrometheusText(*text);
          terminal =
              ValueOr(samples, "freehgc_serve_requests_completed_total", 0) +
              ValueOr(samples, "freehgc_serve_requests_failed_total", 0);
          queue = ValueOr(samples, "freehgc_serve_queue_depth", queue);
          inflight = ValueOr(samples, "freehgc_serve_inflight", inflight);
          resident =
              ValueOr(samples, "freehgc_store_resident_bytes", resident);
        }
      }
      freehgc::obs::RateWindow& window = qps[s.shard_id];
      window.Add(now_ns, terminal);
      const double rate = window.RatePerSec();
      std::printf("%6u %6d %6s %10.1f %6.0f %9.0f %9.1fM %9.0f %7lld\n",
                  s.shard_id, s.port, "alive", rate, queue, inflight,
                  resident / 1e6, terminal,
                  static_cast<long long>(s.graphs));
      total_qps += rate;
      total_queue += queue;
      total_inflight += inflight;
      total_resident += resident;
      total_completed += terminal;
      total_graphs += static_cast<double>(s.graphs);
    }
    std::printf("%6s %6s %6s %10.1f %6.0f %9.0f %9.1fM %9.0f %7.0f\n\n",
                "TOTAL", "-", "-", total_qps, total_queue, total_inflight,
                total_resident / 1e6, total_completed, total_graphs);
    std::fflush(stdout);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  int port = 0;
  int meta_port = 0;
  int interval_ms = 1000;
  long iterations = 0;  // 0 = forever
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string v;
    if (FlagValue(arg, "--port=", &v)) {
      port = std::atoi(v.c_str());
    } else if (FlagValue(arg, "--port-file=", &v)) {
      if (!ReadPortFile(v, &port)) {
        std::fprintf(stderr, "cannot read port file %s\n", v.c_str());
        return 2;
      }
    } else if (FlagValue(arg, "--meta-port=", &v)) {
      meta_port = std::atoi(v.c_str());
    } else if (FlagValue(arg, "--meta-port-file=", &v)) {
      if (!ReadPortFile(v, &meta_port)) {
        std::fprintf(stderr, "cannot read port file %s\n", v.c_str());
        return 2;
      }
    } else if (FlagValue(arg, "--interval-ms=", &v)) {
      interval_ms = std::atoi(v.c_str());
    } else if (FlagValue(arg, "--iterations=", &v)) {
      iterations = std::atol(v.c_str());
    } else if (arg == "--once") {
      iterations = 1;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }
  if (port <= 0 && meta_port <= 0) {
    std::fprintf(stderr,
                 "usage: freehgc_top --port=P (or --port-file=PATH) "
                 "[--interval-ms=1000] [--iterations=0] [--once]\n"
                 "       freehgc_top --meta-port=P (or --meta-port-file="
                 "PATH) ...  # per-shard cluster dashboard\n");
    return 2;
  }
  if (interval_ms < 1) interval_ms = 1;
  if (meta_port > 0) return RunMetaMode(meta_port, interval_ms, iterations);

  ServeClient client;
  if (Status st = client.Connect(port); !st.ok()) {
    std::fprintf(stderr, "freehgc_top: %s\n", st.ToString().c_str());
    return 1;
  }

  std::printf("%10s %9s %9s %9s %6s %9s %7s %6s %10s %8s %8s %6s\n", "qps",
              "p50ms", "p95ms", "p99ms", "queue", "inflight", "cache%",
              "tier%", "resident", "cacheMB", "spillMB", "evict");
  freehgc::obs::RateWindow qps;
  for (long iter = 0; iterations == 0 || iter < iterations; ++iter) {
    if (iter != 0) ::usleep(static_cast<useconds_t>(interval_ms) * 1000);
    auto text = client.Metrics();
    if (!text.ok()) {
      std::fprintf(stderr, "freehgc_top: %s\n",
                   text.status().ToString().c_str());
      return 1;
    }
    const std::vector<PromSample> samples =
        freehgc::obs::ParsePrometheusText(*text);

    const double terminal =
        ValueOr(samples, "freehgc_serve_requests_completed_total", 0) +
        ValueOr(samples, "freehgc_serve_requests_failed_total", 0);
    qps.Add(freehgc::obs::NowNs(), terminal);

    const auto buckets = freehgc::obs::PromBuckets(
        samples, "freehgc_serve_latency_total_ns");
    const double p50 =
        freehgc::obs::QuantileFromCumulativeBuckets(buckets, 0.50) * 1e-6;
    const double p95 =
        freehgc::obs::QuantileFromCumulativeBuckets(buckets, 0.95) * 1e-6;
    const double p99 =
        freehgc::obs::QuantileFromCumulativeBuckets(buckets, 0.99) * 1e-6;

    const double hits =
        ValueOr(samples, "freehgc_pipeline_cache_hits_total", 0);
    const double misses =
        ValueOr(samples, "freehgc_pipeline_cache_misses_total", 0);
    const double hit_rate =
        hits + misses > 0 ? 100.0 * hits / (hits + misses) : 0.0;
    // Share of hits served straight from the resident tier (the rest
    // were restored from spill files first).
    const double restores =
        ValueOr(samples, "freehgc_pipeline_cache_restores_total", 0);
    const double tier_rate = hits > 0 ? 100.0 * (hits - restores) / hits : 0.0;

    std::printf(
        "%10.1f %9.2f %9.2f %9.2f %6.0f %9.0f %7.1f %6.1f %9.1fM %8.1f "
        "%8.1f %6.0f\n",
        qps.RatePerSec(), p50, p95, p99,
        ValueOr(samples, "freehgc_serve_queue_depth", 0),
        ValueOr(samples, "freehgc_serve_inflight", 0), hit_rate, tier_rate,
        ValueOr(samples, "freehgc_store_resident_bytes", 0) / 1e6,
        ValueOr(samples, "freehgc_pipeline_cache_resident_bytes", 0) / 1e6,
        ValueOr(samples, "freehgc_pipeline_cache_spill_bytes_total", 0) / 1e6,
        ValueOr(samples, "freehgc_store_evictions_total", 0));
    std::fflush(stdout);
  }
  return 0;
}
