// freehgc_server: long-lived condensation service on 127.0.0.1.
//
//   freehgc_server [--port=0] [--port-file=PATH] [--slots=2]
//                  [--queue-capacity=32] [--threads-per-slot=0]
//                  [--max-concurrent=0] [--aging-quantum-ms=250]
//                  [--slo-ms=0] [--no-coalesce]
//                  [--spool-dir=PATH] [--map=NAME=PATH]...
//                  [--access-log=PATH] [--spill-dir=PATH]
//                  [--artifact-budget=BYTES] [--resident-budget=BYTES]
//                  [--meta=HOST:PORT --shard-id=N [--heartbeat-ms=500]]
//
// QoS knobs (see serve::ServeOptions): --max-concurrent caps how many
// slots execute at once (0 = the core budget — surplus slots park
// instead of time-slicing); --aging-quantum-ms bumps a queued request's
// effective priority per quantum waited (0 disables aging);
// --slo-ms sheds a submission at admission when its predicted latency
// exceeds the SLO (0 disables); --no-coalesce turns off duplicate
// in-flight request coalescing.
//
// Binds the requested port (0 = ephemeral; the bound port is printed and
// optionally written to --port-file so scripts can find it), serves the
// wire.h protocol until SIGINT/SIGTERM or a client shutdown message, then
// drains every admitted request and dumps a final stats summary.
//
// --access-log appends one JSON line per terminal request (see
// obs::AccessLog). SIGQUIT stops the server like SIGTERM but additionally
// dumps the flight recorder (last-N requests + retained outliers) to
// stdout after the drain — the post-mortem path when the server is
// misbehaving.
//
// --spool-dir persists uploads as v3 containers and keeps them resident
// as zero-copy mappings (page-cache-backed, not heap). --map pre-registers
// an existing v3 container the same way — together they let a restarted
// server rehydrate its catalog without re-uploading, and let graphs far
// larger than RAM be served out-of-core.
//
// --spill-dir enables the tiered ArtifactCache: composed adjacencies and
// propagated feature blocks spill to section spool files there when the
// resident tier exceeds --artifact-budget (bytes; accepts K/M/G
// suffixes), and restore as zero-copy mapped views. --resident-budget
// caps the bytes of mapped graphs the GraphStore keeps resident (LRU
// eviction + transparent re-map). At startup, the spool and spill
// directories are swept for orphans: spill/tmp files from dead processes
// and containers whose fingerprint does not match their name.
//
// --meta + --shard-id run the server as one shard of a cluster: it
// registers with the freehgc_meta service at HOST:PORT (loopback only;
// a bare port also works), advertises its GraphStore catalog, and
// heartbeats load so routers can place and fail over requests. The
// shard keeps serving direct connections too.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cluster/shard_agent.h"
#include "obs/flight_recorder.h"
#include "serve/server.h"

namespace {

freehgc::serve::Server* g_server = nullptr;
volatile std::sig_atomic_t g_dump_flight_recorder = 0;

// Async-signal-safe: RequestStop is one atomic store + one pipe write.
void HandleSignal(int /*sig*/) {
  if (g_server != nullptr) g_server->RequestStop();
}

// SIGQUIT = stop + flight-recorder post-mortem. Only a flag is set here;
// the dump itself runs on the main thread after Wait() returns.
void HandleQuit(int /*sig*/) {
  g_dump_flight_recorder = 1;
  if (g_server != nullptr) g_server->RequestStop();
}

bool ParseIntFlag(const std::string& arg, const char* prefix, int* out) {
  if (arg.rfind(prefix, 0) != 0) return false;
  *out = std::atoi(arg.c_str() + std::string(prefix).size());
  return true;
}

bool ParseInt64Flag(const std::string& arg, const char* prefix,
                    int64_t* out) {
  if (arg.rfind(prefix, 0) != 0) return false;
  *out = std::atoll(arg.c_str() + std::string(prefix).size());
  return true;
}

// Byte count with an optional K/M/G suffix (binary multiples).
bool ParseBytesFlag(const std::string& arg, const char* prefix,
                    size_t* out) {
  if (arg.rfind(prefix, 0) != 0) return false;
  const char* value = arg.c_str() + std::string(prefix).size();
  char* end = nullptr;
  unsigned long long n = std::strtoull(value, &end, 10);
  if (end == value) return false;
  switch (*end) {
    case 'k': case 'K': n <<= 10; ++end; break;
    case 'm': case 'M': n <<= 20; ++end; break;
    case 'g': case 'G': n <<= 30; ++end; break;
    default: break;
  }
  if (*end != '\0') return false;
  *out = static_cast<size_t>(n);
  return true;
}

// Meta endpoint: "PORT" or "HOST:PORT" where HOST must be loopback (the
// cluster is single-machine multi-process).
bool ParseMetaFlag(const std::string& arg, int* port) {
  if (arg.rfind("--meta=", 0) != 0) return false;
  std::string value = arg.substr(std::string("--meta=").size());
  const size_t colon = value.rfind(':');
  if (colon != std::string::npos) {
    const std::string host = value.substr(0, colon);
    if (host != "127.0.0.1" && host != "localhost") {
      std::fprintf(stderr,
                   "--meta only supports loopback hosts, got: %s\n",
                   host.c_str());
      std::exit(2);
    }
    value = value.substr(colon + 1);
  }
  *port = std::atoi(value.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  freehgc::serve::ServerOptions options;
  std::string port_file;
  std::string spool_dir;
  std::vector<std::pair<std::string, std::string>> maps;
  int meta_port = 0;
  int shard_id = -1;
  int heartbeat_ms = 500;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (ParseIntFlag(arg, "--port=", &options.port) ||
        ParseIntFlag(arg, "--slots=", &options.serve.slots) ||
        ParseIntFlag(arg, "--queue-capacity=",
                     &options.serve.queue_capacity) ||
        ParseIntFlag(arg, "--threads-per-slot=",
                     &options.serve.threads_per_slot) ||
        ParseIntFlag(arg, "--max-concurrent=",
                     &options.serve.max_concurrent) ||
        ParseInt64Flag(arg, "--aging-quantum-ms=",
                       &options.serve.aging_quantum_ms) ||
        ParseInt64Flag(arg, "--slo-ms=", &options.serve.slo_ms)) {
      continue;
    }
    if (arg == "--no-coalesce") {
      options.serve.coalesce_requests = false;
      continue;
    }
    if (ParseMetaFlag(arg, &meta_port) ||
        ParseIntFlag(arg, "--shard-id=", &shard_id) ||
        ParseIntFlag(arg, "--heartbeat-ms=", &heartbeat_ms)) {
      continue;
    }
    if (arg.rfind("--port-file=", 0) == 0) {
      port_file = arg.substr(std::string("--port-file=").size());
      continue;
    }
    if (arg.rfind("--spool-dir=", 0) == 0) {
      spool_dir = arg.substr(std::string("--spool-dir=").size());
      continue;
    }
    if (ParseBytesFlag(arg, "--artifact-budget=",
                       &options.serve.artifact_budget_bytes) ||
        ParseBytesFlag(arg, "--resident-budget=",
                       &options.serve.store_resident_budget_bytes)) {
      continue;
    }
    if (arg.rfind("--spill-dir=", 0) == 0) {
      options.serve.spill_dir = arg.substr(std::string("--spill-dir=").size());
      continue;
    }
    if (arg.rfind("--access-log=", 0) == 0) {
      options.serve.access_log_path =
          arg.substr(std::string("--access-log=").size());
      continue;
    }
    if (arg.rfind("--map=", 0) == 0) {
      const std::string spec = arg.substr(std::string("--map=").size());
      const size_t eq = spec.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 == spec.size()) {
        std::fprintf(stderr, "--map expects NAME=PATH, got: %s\n",
                     spec.c_str());
        return 2;
      }
      maps.emplace_back(spec.substr(0, eq), spec.substr(eq + 1));
      continue;
    }
    std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
    return 2;
  }

  // Orphan-spool GC: dead processes leave spill/tmp files behind, and a
  // crashed upload can leave a half-named container. Sweep before any
  // registration so stale files never shadow live ones.
  std::vector<std::string> sweep_dirs;
  if (!spool_dir.empty()) sweep_dirs.push_back(spool_dir);
  if (!options.serve.spill_dir.empty() &&
      options.serve.spill_dir != spool_dir) {
    sweep_dirs.push_back(options.serve.spill_dir);
  }
  for (const std::string& dir : sweep_dirs) {
    const freehgc::Result<int> swept = freehgc::serve::SweepSpoolDir(dir);
    if (swept.ok() && *swept > 0) {
      std::printf("swept %d orphan spool file(s) from %s\n", *swept,
                  dir.c_str());
    }
  }

  freehgc::serve::Server server(options);
  if (!spool_dir.empty()) {
    const freehgc::Status st = server.service().store().SetSpoolDir(spool_dir);
    if (!st.ok()) {
      std::fprintf(stderr, "freehgc_server: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  for (const auto& [name, path] : maps) {
    const auto info = server.service().store().RegisterMappedFile(name, path);
    if (!info.ok()) {
      std::fprintf(stderr, "freehgc_server: cannot map %s: %s\n", name.c_str(),
                   info.status().ToString().c_str());
      return 1;
    }
    std::printf("mapped %s from %s (%lld nodes, %lld edges)\n", name.c_str(),
                path.c_str(), static_cast<long long>(info->nodes),
                static_cast<long long>(info->edges));
  }
  const freehgc::Status st = server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "freehgc_server: %s\n", st.ToString().c_str());
    return 1;
  }
  g_server = &server;
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGQUIT, HandleQuit);

  if ((meta_port > 0) != (shard_id >= 0)) {
    std::fprintf(stderr,
                 "--meta and --shard-id must be given together\n");
    return 2;
  }
  std::unique_ptr<freehgc::cluster::ShardAgent> agent;
  if (meta_port > 0) {
    freehgc::cluster::ShardAgentOptions agent_options;
    agent_options.shard_id = static_cast<uint32_t>(shard_id);
    agent_options.meta_port = meta_port;
    agent_options.serve_port = server.port();
    agent_options.heartbeat_ms = heartbeat_ms;
    agent = std::make_unique<freehgc::cluster::ShardAgent>(agent_options,
                                                           &server.service());
    const freehgc::Status ast = agent->Start();
    if (!ast.ok()) {
      std::fprintf(stderr, "freehgc_server: cannot join cluster: %s\n",
                   ast.ToString().c_str());
      return 1;
    }
    std::printf("shard %d registered with meta service on 127.0.0.1:%d\n",
                shard_id, meta_port);
  }

  std::printf("freehgc_server listening on 127.0.0.1:%d (%d slots, queue %d)\n",
              server.port(), server.service().options().slots,
              server.service().options().queue_capacity);
  std::fflush(stdout);
  if (!port_file.empty()) {
    if (FILE* f = std::fopen(port_file.c_str(), "w")) {
      std::fprintf(f, "%d\n", server.port());
      std::fclose(f);
    } else {
      std::fprintf(stderr, "cannot write port file %s\n", port_file.c_str());
    }
  }

  server.Wait();
  g_server = nullptr;
  if (agent) agent->Stop();
  if (g_dump_flight_recorder != 0) {
    std::printf("flight recorder dump:\n%s\n",
                freehgc::obs::FlightRecorder::Global().DumpJson().c_str());
  }
  std::printf("freehgc_server drained; final stats:\n%s",
              server.service().StatsJson().c_str());
  return 0;
}
