// freehgc_ooc_demo: out-of-core generate -> condense -> serve driver.
//
//   freehgc_ooc_demo --phase=generate --preset=aminer --scale=44 \
//                    --seed=1 --path=/tmp/aminer.fhgc
//   freehgc_ooc_demo --phase=condense --path=/tmp/aminer.fhgc \
//                    [--out=/tmp/aminer_small.fhgc] [--ratio=0.01] \
//                    [--max-hops=1] [--max-paths=2] [--try-heap]
//   freehgc_ooc_demo --phase=serve --path=/tmp/aminer.fhgc \
//                    [--method=herding] [--ratio=0.01] [--max-hops=1] \
//                    [--max-paths=2] [--evaluate] [--try-heap] \
//                    [--spill-dir=DIR] [--artifact-budget=BYTES] \
//                    [--resident-budget=BYTES] [--fingerprint]
//
// The generate phase streams a preset schema straight into a v3
// container (datasets::GenerateToV3) without ever materializing the heap
// graph, then maps the result to report its logical in-heap footprint.
// The condense phase maps the container and runs the paper's
// training-free selection (core::Condense) directly against the mapped
// arrays; its heap working set is the composed meta-path adjacencies and
// score vectors, a fraction of the graph itself, so it fits under a cap
// the full graph does not. The serve phase registers the container as a
// zero-copy mapped graph in a ServeService and runs one condense request
// against it (this path pre-propagates dense feature blocks, so its
// working set is larger — run it uncapped or at a smaller scale).
//
// The point of the split: run the condense/serve phases under a heap cap
// smaller than the graph's in-heap size (`ulimit -d`, which limits
// brk/anonymous mappings but not file-backed ones) to prove the graph is
// read from the page cache, not the heap. --try-heap additionally
// attempts the old-style load (slurp the whole file into memory) and
// reports that it is refused under the cap. Machine-readable
// `OOC key=value` lines feed the CI assertions.
//
// With --spill-dir (plus --artifact-budget), the serve phase runs the
// full request path — EvalContext build included — against the tiered
// ArtifactCache: propagated feature blocks stream through spool files
// instead of materializing on the heap, so the request now fits under a
// cap that refuses the unbudgeted run. --fingerprint fetches the
// condensed graph back and prints its content fingerprint, the value the
// spill bench compares across budgeted and unbudgeted runs.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>

#include "core/freehgc.h"
#include "datasets/generator.h"
#include "graph/serialize.h"
#include "serve/service.h"

namespace {

bool FlagValue(const std::string& arg, const char* prefix, std::string* out) {
  const std::string p(prefix);
  if (arg.rfind(p, 0) != 0) return false;
  *out = arg.substr(p.size());
  return true;
}

/// VmHWM / VmData / ... from /proc/self/status, in bytes (-1 if absent).
long long ProcStatusBytes(const char* key) {
  FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return -1;
  char line[256];
  long long out = -1;
  const size_t key_len = std::strlen(key);
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, key, key_len) == 0 && line[key_len] == ':') {
      out = std::atoll(line + key_len + 1) * 1024;  // reported in kB
      break;
    }
  }
  std::fclose(f);
  return out;
}

int Fail(const freehgc::Status& st) {
  std::fprintf(stderr, "freehgc_ooc_demo: %s\n", st.ToString().c_str());
  return 1;
}

int RunGenerate(const std::string& preset, double scale, uint64_t seed,
                const std::string& path) {
  auto config = freehgc::datasets::PresetConfig(preset, scale);
  if (!config.ok()) return Fail(config.status());
  auto summary = freehgc::datasets::GenerateToV3(*config, seed, path);
  if (!summary.ok()) return Fail(summary.status());

  // Map the result (zero-copy, no heap growth) to report the footprint a
  // heap deserialize would pay — the number the serve-phase cap must
  // undercut.
  auto mapped = freehgc::MapHeteroGraphDetailed(path);
  if (!mapped.ok()) return Fail(mapped.status());
  std::printf("OOC phase=generate preset=%s scale=%g seed=%llu\n",
              preset.c_str(), scale, static_cast<unsigned long long>(seed));
  std::printf("OOC nodes=%lld edges=%lld\n",
              static_cast<long long>(summary->nodes),
              static_cast<long long>(summary->edges));
  std::printf("OOC file_bytes=%llu heap_bytes=%zu fingerprint=%016llx\n",
              static_cast<unsigned long long>(summary->file_bytes),
              mapped->graph.MemoryBytes(),
              static_cast<unsigned long long>(summary->fingerprint));
  std::printf("OOC generate_data_bytes=%lld peak_rss_bytes=%lld\n",
              ProcStatusBytes("VmData"), ProcStatusBytes("VmHWM"));
  return 0;
}

/// The pre-mmap load path: slurp the whole container into memory before
/// parsing. Under the demo's heap cap this allocation must fail — which
/// is exactly why the mapped path exists. Prints an `OOC heap_slurp=`
/// line; returns false only when the file cannot be opened at all.
bool TryHeapSlurp(const std::string& path) {
  bool heap_ok = true;
  size_t slurped = 0;
  try {
    FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) return false;
    std::fseek(f, 0, SEEK_END);
    const long n = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    std::string buf(static_cast<size_t>(n > 0 ? n : 0), '\0');
    slurped = std::fread(buf.data(), 1, buf.size(), f);
    std::fclose(f);
  } catch (const std::bad_alloc&) {
    heap_ok = false;
  }
  std::printf("OOC heap_slurp=%s bytes=%zu\n",
              heap_ok ? "ok" : "refused", slurped);
  return true;
}

int RunCondense(const std::string& path, const std::string& out, double ratio,
                int max_hops, int max_paths, int64_t max_row_nnz,
                uint64_t seed, bool try_heap) {
  if (try_heap && !TryHeapSlurp(path)) {
    return Fail(freehgc::Status::NotFound("cannot open " + path));
  }
  auto mapped = freehgc::MapHeteroGraph(path);
  if (!mapped.ok()) return Fail(mapped.status());
  std::printf("OOC phase=condense mapped=%d nodes=%lld edges=%lld\n",
              mapped->IsMapped() ? 1 : 0,
              static_cast<long long>(mapped->TotalNodes()),
              static_cast<long long>(mapped->TotalEdges()));
  std::printf("OOC logical_bytes=%zu resident_bytes=%zu\n",
              mapped->MemoryBytes(), mapped->ResidentHeapBytes());

  freehgc::core::FreeHgcOptions opts;
  opts.ratio = ratio;
  opts.max_hops = max_hops;
  opts.max_paths = max_paths;
  if (max_row_nnz > 0) opts.max_row_nnz = max_row_nnz;
  opts.seed = seed;
  auto res = freehgc::core::Condense(*mapped, opts);
  if (!res.ok()) return Fail(res.status());
  std::printf("OOC condensed_nodes=%lld condensed_edges=%lld "
              "condensed_bytes=%zu condense_seconds=%.3f\n",
              static_cast<long long>(res->graph.TotalNodes()),
              static_cast<long long>(res->graph.TotalEdges()),
              res->graph.MemoryBytes(), res->seconds);
  if (!out.empty()) {
    auto saved = freehgc::SaveHeteroGraphV3(res->graph, out);
    if (!saved.ok()) return Fail(saved.status());
    std::printf("OOC out=%s out_bytes=%llu\n", out.c_str(),
                static_cast<unsigned long long>(saved->file_bytes));
  }
  std::printf("OOC condense_data_bytes=%lld peak_rss_bytes=%lld\n",
              ProcStatusBytes("VmData"), ProcStatusBytes("VmHWM"));
  return 0;
}

struct ServeBudget {
  std::string spill_dir;
  size_t artifact_budget = SIZE_MAX;
  size_t resident_budget = SIZE_MAX;
  bool fingerprint = false;
};

int RunServe(const std::string& path, const std::string& method, double ratio,
             int max_hops, int max_paths, bool evaluate, bool try_heap,
             const ServeBudget& budget) {
  if (try_heap && !TryHeapSlurp(path)) {
    return Fail(freehgc::Status::NotFound("cannot open " + path));
  }

  freehgc::serve::ServeOptions options;
  options.slots = 1;
  options.spill_dir = budget.spill_dir;
  options.artifact_budget_bytes = budget.artifact_budget;
  options.store_resident_budget_bytes = budget.resident_budget;
  freehgc::serve::ServeService service(options);
  std::printf("OOC spill_enabled=%d artifact_budget_bytes=%lld\n",
              service.cache().spill_enabled() ? 1 : 0,
              budget.artifact_budget == SIZE_MAX
                  ? -1LL
                  : static_cast<long long>(budget.artifact_budget));
  auto info = service.store().RegisterMappedFile("g", path);
  if (!info.ok()) return Fail(info.status());
  std::printf("OOC phase=serve mapped=%d nodes=%lld edges=%lld\n",
              info->mapped ? 1 : 0, static_cast<long long>(info->nodes),
              static_cast<long long>(info->edges));
  std::printf("OOC logical_bytes=%zu resident_bytes=%zu\n",
              info->memory_bytes, service.store().ResidentBytes());

  // --ratio=0 skips the condense request: the phase then measures pure
  // serving residency (registration + catalog). With --ratio>0 the full
  // request path runs, EvalContext build included; unbudgeted, its
  // pre-propagated feature blocks rival the graph itself, but with
  // --spill-dir + --artifact-budget the blocks stream through spool
  // files and the request fits under a cap the unbudgeted run does not.
  if (ratio > 0) {
    freehgc::serve::CondenseRequest request;
    request.graph = "g";
    request.method = method;
    request.ratio = ratio;
    request.max_hops = max_hops;
    request.max_paths = max_paths;
    request.evaluate = evaluate;
    request.return_graph = budget.fingerprint;
    auto reply = service.Condense(request);
    if (!reply.ok()) return Fail(reply.status());
    std::printf("OOC condensed_nodes=%lld condensed_edges=%lld "
                "condense_seconds=%.3f\n",
                static_cast<long long>(reply->nodes),
                static_cast<long long>(reply->edges),
                reply->condense_seconds);
    if (reply->evaluated) {
      std::printf("OOC accuracy=%.2f macro_f1=%.2f\n",
                  static_cast<double>(reply->accuracy),
                  static_cast<double>(reply->macro_f1));
    }
    if (budget.fingerprint) {
      auto condensed = freehgc::DeserializeHeteroGraph(reply->graph_bytes);
      if (!condensed.ok()) return Fail(condensed.status());
      std::printf("OOC condensed_fingerprint=%016llx\n",
                  static_cast<unsigned long long>(
                      condensed->ContentFingerprint()));
    }
  }
  const auto cache = service.cache().stats();
  std::printf("OOC cache_spills=%lld cache_restores=%lld "
              "cache_spill_bytes=%zu\n",
              static_cast<long long>(cache.spills),
              static_cast<long long>(cache.restores), cache.spill_bytes);
  std::printf("OOC cache_resident_bytes=%zu cache_peak_resident_bytes=%zu\n",
              cache.resident_bytes, cache.peak_resident_bytes);
  std::printf("OOC store_evictions=%lld store_mapped_resident_bytes=%zu\n",
              static_cast<long long>(service.store().Evictions()),
              service.store().MappedResidentBytes());
  std::printf("OOC serve_data_bytes=%lld peak_rss_bytes=%lld\n",
              ProcStatusBytes("VmData"), ProcStatusBytes("VmHWM"));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string phase = "generate";
  std::string preset = "aminer";
  std::string path = "/tmp/freehgc_ooc.fhgc";
  std::string out;
  std::string method = "herding";
  double scale = 1.0;
  double ratio = 0.01;
  uint64_t seed = 1;
  int max_hops = 1;
  int max_paths = 2;
  int64_t max_row_nnz = 0;  // 0 = keep the FreeHgcOptions default
  bool evaluate = false;
  bool try_heap = false;
  ServeBudget budget;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string v;
    if (FlagValue(arg, "--phase=", &v)) {
      phase = v;
    } else if (FlagValue(arg, "--preset=", &v)) {
      preset = v;
    } else if (FlagValue(arg, "--path=", &v)) {
      path = v;
    } else if (FlagValue(arg, "--out=", &v)) {
      out = v;
    } else if (FlagValue(arg, "--method=", &v)) {
      method = v;
    } else if (FlagValue(arg, "--scale=", &v)) {
      scale = std::atof(v.c_str());
    } else if (FlagValue(arg, "--ratio=", &v)) {
      ratio = std::atof(v.c_str());
    } else if (FlagValue(arg, "--seed=", &v)) {
      seed = static_cast<uint64_t>(std::atoll(v.c_str()));
    } else if (FlagValue(arg, "--max-hops=", &v)) {
      max_hops = std::atoi(v.c_str());
    } else if (FlagValue(arg, "--max-paths=", &v)) {
      max_paths = std::atoi(v.c_str());
    } else if (FlagValue(arg, "--max-row-nnz=", &v)) {
      max_row_nnz = std::atoll(v.c_str());
    } else if (FlagValue(arg, "--spill-dir=", &v)) {
      budget.spill_dir = v;
    } else if (FlagValue(arg, "--artifact-budget=", &v)) {
      budget.artifact_budget = static_cast<size_t>(std::atoll(v.c_str()));
    } else if (FlagValue(arg, "--resident-budget=", &v)) {
      budget.resident_budget = static_cast<size_t>(std::atoll(v.c_str()));
    } else if (arg == "--fingerprint") {
      budget.fingerprint = true;
    } else if (arg == "--evaluate") {
      evaluate = true;
    } else if (arg == "--try-heap") {
      try_heap = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }

  if (phase == "generate") {
    return RunGenerate(preset, scale, seed, path);
  }
  if (phase == "condense") {
    return RunCondense(path, out, ratio, max_hops, max_paths, max_row_nnz,
                       seed, try_heap);
  }
  if (phase == "serve") {
    return RunServe(path, method, ratio, max_hops, max_paths, evaluate,
                    try_heap, budget);
  }
  std::fprintf(stderr, "unknown --phase=%s (generate|condense|serve)\n",
               phase.c_str());
  return 2;
}
