#include <cmath>
#include <cstdio>
#include "core/freehgc.h"
#include "core/target_selection.h"
#include "core/other_types.h"
#include "core/selection_util.h"
#include "datasets/generator.h"
#include "eval/experiment.h"
#include "metapath/metapath.h"
using namespace freehgc;
using namespace freehgc::core;

int main() {
  auto g = datasets::MakeAcm(1, 0.5);
  hgnn::PropagateOptions popts; popts.max_hops = 3; popts.max_paths = 12;
  const auto ctx = hgnn::BuildEvalContext(g, popts);
  hgnn::HgnnConfig cfg; cfg.hidden = 32; cfg.epochs = 60; cfg.patience = 0;

  MetaPathOptions mp; mp.max_hops = 3; mp.max_paths = 12; mp.max_row_nnz = 512;
  auto paths = EnumerateMetaPaths(g, g.target_type(), mp);
  const double ratio = 0.024;
  int32_t tb = (int32_t)(ratio * g.NodeCount(g.target_type()));
  auto targets = CondenseTargetNodes(g, paths, tb, {});
  std::printf("targets=%zu\n", targets.size());

  auto all_nodes = [&](TypeId t){ std::vector<int32_t> v; for (int32_t i=0;i<g.NodeCount(t);++i) v.push_back(i); return v; };
  auto budget = [&](TypeId t){ return std::max<int32_t>(1,(int32_t)std::lround(ratio*g.NodeCount(t))); };

  // per-type: 0=nim-select, 1=ilm-synth
  auto run_combo = [&](const char* name, int author_mode, int subject_mode, int term_mode) {
    std::vector<TypeMapping> maps(4);
    maps[0].keep = targets;
    NimOptions nopts;
    int modes[4] = {-1, author_mode, subject_mode, term_mode};
    for (TypeId t = 1; t < 4; ++t) {
      if (modes[t] == 0) {
        maps[t].keep = CondenseFatherType(g, t, FilterByEndType(paths, t), targets, budget(t), nopts);
      } else {
        std::vector<std::pair<TypeId, const std::vector<int32_t>*>> par = {{g.target_type(), &targets}};
        auto syn = SynthesizeLeafType(g, t, par, budget(t));
        maps[t].synthesized = true;
        maps[t].members = std::move(syn.members);
        maps[t].synthetic_features = std::move(syn.features);
      }
    }
    auto cg = AssembleCondensedGraph(g, maps);
    if (!cg.ok()) { std::printf("%s FAILED %s\n", name, cg.status().ToString().c_str()); return; }
    auto m = hgnn::TrainAndEvaluate(ctx, *cg, cfg);
    std::printf("%-30s acc=%5.1f edges=%lld\n", name, 100.0f*m.test_accuracy, (long long)cg->TotalEdges());
    std::fflush(stdout);
  };
  run_combo("all NIM", 0,0,0);
  run_combo("all ILM", 1,1,1);
  run_combo("ILM author only", 1,0,0);
  run_combo("ILM subject only", 0,1,0);
  run_combo("ILM term only", 0,0,1);
  run_combo("ILM author+term", 1,0,1);
  return 0;
}
