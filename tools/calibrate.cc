// Calibration helper (not part of the bench suite): prints whole-graph and
// Random-HG accuracies per dataset so the synthetic generators can be tuned
// toward the paper's difficulty levels.
#include <cstdio>

#include "common/timer.h"
#include "datasets/generator.h"
#include "eval/experiment.h"

using namespace freehgc;

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.5;
  for (const char* name :
       {"acm", "dblp", "imdb", "freebase", "mutag", "am", "aminer"}) {
    const double ds_scale = std::string(name) == "aminer" ? scale * 0.5 : scale;
    auto g = datasets::MakeByName(name, 1, ds_scale);
    if (!g.ok()) continue;
    hgnn::PropagateOptions popts;
    popts.max_hops = std::min(3, datasets::RecommendedHops(name));
    popts.max_paths = 12;
    Timer t;
    const hgnn::EvalContext ctx = hgnn::BuildEvalContext(*g, popts);
    const double ctx_s = t.ElapsedSeconds();
    hgnn::HgnnConfig cfg;
    cfg.hidden = 32;
    cfg.epochs = 60;
    cfg.patience = 0;
    t.Reset();
    const auto whole = hgnn::WholeGraphBaseline(ctx, cfg);
    const double whole_s = t.ElapsedSeconds();
    eval::RunOptions run;
    run.ratio = 0.024;
    t.Reset();
    const auto rnd = eval::RunMethod(ctx, eval::MethodKind::kRandom, run, cfg);
    const auto herd =
        eval::RunMethod(ctx, eval::MethodKind::kHerding, run, cfg);
    const auto free_res =
        eval::RunMethod(ctx, eval::MethodKind::kFreeHGC, run, cfg);
    const double m_s = t.ElapsedSeconds();
    std::printf(
        "%-9s nodes=%7lld blocks=%2zu | whole=%5.1f rand=%5.1f herd=%5.1f "
        "free=%5.1f | ctx=%.1fs whole=%.1fs methods=%.1fs\n",
        name, static_cast<long long>(g->TotalNodes()),
        ctx.full_features.blocks.size(), 100.0f * whole.test_accuracy,
        rnd.ok() ? rnd->accuracy : -1.0f, herd.ok() ? herd->accuracy : -1.0f,
        free_res.ok() ? free_res->accuracy : -1.0f, ctx_s, whole_s, m_s);
    std::fflush(stdout);
  }
  return 0;
}
