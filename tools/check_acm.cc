#include <cstdio>
#include <cstdlib>
#include "datasets/generator.h"
#include "eval/experiment.h"
using namespace freehgc;
int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 1.0;
  const char* name = argc > 2 ? argv[2] : "acm";
  auto gr = datasets::MakeByName(name, 1, scale);
  auto& g = *gr;
  hgnn::PropagateOptions popts;
  popts.max_hops = std::min(3, datasets::RecommendedHops(name));
  popts.max_paths = argc > 3 ? std::atoi(argv[3]) : 12;
  const auto ctx = hgnn::BuildEvalContext(g, popts);
  hgnn::HgnnConfig cfg; cfg.hidden = 32; cfg.epochs = 60; cfg.patience = 0;
  auto whole = hgnn::WholeGraphBaseline(ctx, cfg);
  std::printf("%s whole=%.1f\n", name, 100.0f*whole.test_accuracy);
  for (auto k : {eval::MethodKind::kRandom, eval::MethodKind::kHerding, eval::MethodKind::kCoarsening, eval::MethodKind::kHGCond, eval::MethodKind::kFreeHGC}) {
    eval::RunOptions run; run.ratio = 0.024;
    auto agg = eval::RunMethodSeeds(ctx, k, run, cfg, {1,2,3});
    std::printf("%-14s %5.1f ± %4.1f\n", eval::MethodName(k), agg.accuracy.mean, agg.accuracy.std);
    std::fflush(stdout);
  }
}
