#include <cstdio>
#include "bench/bench_common.h"
using namespace freehgc; using namespace freehgc::bench;
int main() {
  auto env = MakeEnv("dblp");
  for (auto method : {eval::MethodKind::kHGCond, eval::MethodKind::kFreeHGC}) {
    double sum = 0;
    for (auto kind : {hgnn::HgnnKind::kHGB, hgnn::HgnnKind::kHGT, hgnn::HgnnKind::kHAN, hgnn::HgnnKind::kSeHGNN}) {
      std::vector<double> accs;
      for (uint64_t seed : {1ull,2ull}) {
        eval::RunOptions run; run.ratio = 0.024; run.seed = seed;
        hgnn::HgnnConfig cfg = env->eval_cfg; cfg.kind = kind;
        auto r = eval::RunMethod(env->ctx, method, run, cfg);
        if (r.ok()) accs.push_back(r->accuracy);
      }
      auto m = eval::Aggregate(accs); sum += m.mean;
      std::printf("%-8s %-10s %5.1f\n", eval::MethodName(method), hgnn::HgnnKindName(kind), m.mean);
      std::fflush(stdout);
    }
    std::printf("%-8s avg %5.1f\n", eval::MethodName(method), sum/4);
  }
}
