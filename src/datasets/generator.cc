#include "datasets/generator.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <unordered_map>

#include "common/fnv.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "sparse/ops.h"

namespace freehgc::datasets {

namespace {

/// Draws a Pareto-distributed degree with the given mean and shape.
int32_t ParetoDegree(Rng& rng, double mean, double alpha, int32_t cap) {
  // Pareto with shape alpha has mean xm * alpha / (alpha - 1); choose xm so
  // that the distribution mean matches `mean`.
  const double xm = mean * (alpha - 1.0) / alpha;
  double u = rng.NextDouble();
  while (u <= 1e-12) u = rng.NextDouble();
  const double x = xm / std::pow(u, 1.0 / alpha);
  int32_t deg = static_cast<int32_t>(std::lround(x));
  if (deg < 1) deg = 1;
  if (deg > cap) deg = cap;
  return deg;
}

/// Where generated pieces go. GenerateCore drives one random draw
/// sequence and hands every finished artifact to a sink: the heap sink
/// assembles a HeteroGraph (the historical Generate), the v3 sink streams
/// sections straight to disk. The reverse-relation logic lives in the
/// core, so both outputs get identical relation order by construction.
class GenSink {
 public:
  virtual ~GenSink() = default;
  virtual Status AddNodeType(const std::string& name, int32_t count) = 0;
  /// Relations arrive in final order: all forwards, then reverses.
  virtual Status AddRelation(const std::string& name, TypeId src, TypeId dst,
                             CsrMatrix adj) = 0;
  /// Read-back of relation `i`'s adjacency for transposing. Valid until
  /// EndRelations.
  virtual const CsrMatrix& RelationAdj(size_t i) const = 0;
  /// No more relations; the sink may free any CSR staging.
  virtual Status EndRelations() = 0;
  virtual Status BeginFeatures(TypeId type, int64_t rows, int64_t cols) = 0;
  virtual Status AppendFeatureRows(const float* data, int64_t num_rows) = 0;
  virtual Status EndFeatures() = 0;
  virtual Status SetTarget(TypeId type, const std::vector<int32_t>& labels,
                           int32_t num_classes) = 0;
  virtual Status SetSplit(const std::vector<int32_t>& train,
                          const std::vector<int32_t>& val,
                          const std::vector<int32_t>& test) = 0;
};

/// Assembles a heap HeteroGraph; byte-identical to the pre-sink
/// generator output.
class HeapSink : public GenSink {
 public:
  Status AddNodeType(const std::string& name, int32_t count) override {
    return g.AddNodeType(name, count).status();
  }
  Status AddRelation(const std::string& name, TypeId src, TypeId dst,
                     CsrMatrix adj) override {
    return g.AddRelation(name, src, dst, std::move(adj)).status();
  }
  const CsrMatrix& RelationAdj(size_t i) const override {
    return g.relation(static_cast<RelationId>(i)).adj;
  }
  Status EndRelations() override { return Status::OK(); }
  Status BeginFeatures(TypeId type, int64_t rows, int64_t cols) override {
    feat_type_ = type;
    feat_ = Matrix(rows, cols);
    feat_row_ = 0;
    return Status::OK();
  }
  Status AppendFeatureRows(const float* data, int64_t num_rows) override {
    std::memcpy(feat_.Row(feat_row_), data,
                static_cast<size_t>(num_rows) *
                    static_cast<size_t>(feat_.cols()) * sizeof(float));
    feat_row_ += num_rows;
    return Status::OK();
  }
  Status EndFeatures() override {
    return g.SetFeatures(feat_type_, std::move(feat_));
  }
  Status SetTarget(TypeId type, const std::vector<int32_t>& labels,
                   int32_t num_classes) override {
    return g.SetTarget(type, labels, num_classes);
  }
  Status SetSplit(const std::vector<int32_t>& train,
                  const std::vector<int32_t>& val,
                  const std::vector<int32_t>& test) override {
    return g.SetSplit(train, val, test);
  }

  HeteroGraph g;

 private:
  TypeId feat_type_ = -1;
  Matrix feat_;
  int64_t feat_row_ = 0;
};

/// Streams into a HeteroGraphV3Writer while folding every artifact into
/// an FNV hash with HeteroGraph::ContentFingerprint's exact canonical
/// byte sequence — generation order matches fingerprint order, which is
/// what makes the incremental hash possible.
class V3Sink : public GenSink {
 public:
  explicit V3Sink(HeteroGraphV3Writer writer) : w_(std::move(writer)) {
    fnv_.Tag(0x01);
  }
  Status AddNodeType(const std::string& name, int32_t count) override {
    fnv_.Str(name);
    fnv_.Pod(count);
    return w_.AddNodeType(name, count);
  }
  Status AddRelation(const std::string& name, TypeId src, TypeId dst,
                     CsrMatrix adj) override {
    if (staged_.empty()) fnv_.Tag(0x02);
    fnv_.Str(name);
    fnv_.Pod(src);
    fnv_.Pod(dst);
    fnv_.Span(adj.indptr());
    fnv_.Span(adj.indices());
    fnv_.Span(adj.values());
    FREEHGC_RETURN_IF_ERROR(w_.AddRelation(name, src, dst, adj));
    staged_.push_back(std::move(adj));
    return Status::OK();
  }
  const CsrMatrix& RelationAdj(size_t i) const override {
    return staged_[i];
  }
  Status EndRelations() override {
    if (staged_.empty()) fnv_.Tag(0x02);  // zero-relation schema
    staged_.clear();
    staged_.shrink_to_fit();
    fnv_.Tag(0x03);
    return Status::OK();
  }
  Status BeginFeatures(TypeId type, int64_t rows, int64_t cols) override {
    fnv_.Pod(rows);
    fnv_.Pod(cols);
    row_bytes_ = static_cast<size_t>(cols) * sizeof(float);
    return w_.BeginFeatures(type, rows, cols);
  }
  Status AppendFeatureRows(const float* data, int64_t num_rows) override {
    FREEHGC_RETURN_IF_ERROR(w_.AppendFeatureRows(data, num_rows));
    fnv_.Bytes(data, static_cast<size_t>(num_rows) * row_bytes_);
    return Status::OK();
  }
  Status EndFeatures() override { return w_.EndFeatures(); }
  Status SetTarget(TypeId type, const std::vector<int32_t>& labels,
                   int32_t num_classes) override {
    fnv_.Tag(0x04);
    fnv_.Pod(type);
    fnv_.Pod(num_classes);
    fnv_.Vec(labels);
    return w_.SetTarget(type, labels, num_classes);
  }
  Status SetSplit(const std::vector<int32_t>& train,
                  const std::vector<int32_t>& val,
                  const std::vector<int32_t>& test) override {
    fnv_.Tag(0x05);
    fnv_.Vec(train);
    fnv_.Vec(val);
    fnv_.Vec(test);
    FREEHGC_RETURN_IF_ERROR(w_.SetSplit(train, val, test));
    return Status::OK();
  }
  Result<V3WriteSummary> Finish() {
    FREEHGC_RETURN_IF_ERROR(w_.SetContentFingerprint(fnv_.h));
    return w_.Finish();
  }

 private:
  HeteroGraphV3Writer w_;
  Fnv fnv_;
  std::vector<CsrMatrix> staged_;
  size_t row_bytes_ = 0;
};

Status GenerateCore(const SchemaConfig& config, uint64_t seed,
                    exec::ExecContext* ctx, GenSink& sink) {
  if (config.types.empty()) {
    return Status::InvalidArgument("schema has no node types");
  }
  if (config.num_classes < 2) {
    return Status::InvalidArgument("need at least two classes");
  }
  Rng rng(seed);
  std::unordered_map<std::string, TypeId> type_ids;
  std::vector<int32_t> counts;
  for (const auto& t : config.types) {
    if (t.count < 0) {
      return Status::InvalidArgument("negative node count: " + t.name);
    }
    if (!type_ids.emplace(t.name, static_cast<TypeId>(counts.size()))
             .second) {
      return Status::InvalidArgument("duplicate node type: " + t.name);
    }
    counts.push_back(t.count);
    FREEHGC_RETURN_IF_ERROR(
        sink.AddNodeType(t.name, t.count));
  }
  auto target_it = type_ids.find(config.target);
  if (target_it == type_ids.end()) {
    return Status::InvalidArgument("target type not in schema: " +
                                   config.target);
  }
  const TypeId target = target_it->second;
  const auto node_count = [&](TypeId t) {
    return counts[static_cast<size_t>(t)];
  };

  // Latent community per node of every type; target communities double as
  // labels. Community sizes are mildly skewed (like real class
  // distributions).
  std::vector<double> class_weights(static_cast<size_t>(config.num_classes));
  for (int32_t c = 0; c < config.num_classes; ++c) {
    class_weights[static_cast<size_t>(c)] = 1.0 + 0.5 * (c % 3);
  }
  std::vector<std::vector<int32_t>> community(config.types.size());
  for (size_t ti = 0; ti < config.types.size(); ++ti) {
    community[ti].resize(static_cast<size_t>(config.types[ti].count));
    for (auto& c : community[ti]) {
      c = static_cast<int32_t>(rng.NextWeighted(class_weights));
    }
  }

  // Class-level confusion (see SchemaConfig::class_confusion): sister
  // class of c is c^1 within pairs (0,1), (2,3), ...; an odd trailing
  // class stays pure.
  auto sister = [&](int32_t c) -> int32_t {
    const int32_t s = c ^ 1;
    return s < config.num_classes ? s : c;
  };

  // Mixed-membership target nodes: a secondary community blended into
  // edges and features (see SchemaConfig::ambiguous_fraction).
  std::vector<int32_t> second_com(
      static_cast<size_t>(node_count(target)), -1);
  std::vector<float> blend(static_cast<size_t>(node_count(target)), 0.0f);
  if (config.ambiguous_fraction > 0.0 && config.num_classes > 1) {
    for (int32_t v = 0; v < node_count(target); ++v) {
      if (rng.NextDouble() < config.ambiguous_fraction) {
        const int32_t c1 =
            community[static_cast<size_t>(target)][static_cast<size_t>(v)];
        const int32_t offset = 1 + static_cast<int32_t>(rng.NextBounded(
                                       static_cast<uint64_t>(
                                           config.num_classes - 1)));
        second_com[static_cast<size_t>(v)] =
            (c1 + offset) % config.num_classes;
        blend[static_cast<size_t>(v)] = rng.NextUniform(0.2f, 0.4f);
      }
    }
  }

  // Per-community member lists per type (for affinity-based endpoint
  // sampling).
  std::vector<std::vector<std::vector<int32_t>>> members(config.types.size());
  for (size_t ti = 0; ti < config.types.size(); ++ti) {
    members[ti].resize(static_cast<size_t>(config.num_classes));
    for (int32_t v = 0; v < config.types[ti].count; ++v) {
      members[ti][static_cast<size_t>(community[ti][static_cast<size_t>(v)])]
          .push_back(v);
    }
  }

  // Edges. Forward relations stream to the sink as they finish; the
  // reverse transposes follow once all forwards exist (mirroring
  // HeteroGraph::EnsureReverseRelations exactly, so both sinks see the
  // same relation order a heap graph would have).
  struct RelMeta {
    std::string name;
    TypeId src;
    TypeId dst;
  };
  std::vector<RelMeta> rels;
  for (const auto& r : config.relations) {
    auto src_it = type_ids.find(r.src);
    auto dst_it = type_ids.find(r.dst);
    if (src_it == type_ids.end() || dst_it == type_ids.end()) {
      return Status::InvalidArgument("relation endpoint type missing: " +
                                     r.name);
    }
    const TypeId src = src_it->second;
    const TypeId dst = dst_it->second;
    const int32_t ns = node_count(src);
    const int32_t nd = node_count(dst);
    if (ns == 0 || nd == 0) {
      return Status::InvalidArgument("relation over empty type: " + r.name);
    }
    std::vector<CooEntry> entries;
    entries.reserve(static_cast<size_t>(ns * r.avg_degree * 1.2));
    // Preferential attachment on the destination side: endpoints are
    // re-drawn from past picks with probability kPreferential, producing
    // the heavy-tailed *in*-degrees (hub authors, hub venues) real
    // heterogeneous graphs have. Hubs are what make small condensed
    // graphs viable: a few kept hubs cover most kept targets.
    constexpr double kPreferential = 0.8;
    std::vector<std::vector<int32_t>> past_same(
        static_cast<size_t>(config.num_classes));
    std::vector<int32_t> past_any;
    for (int32_t v = 0; v < ns; ++v) {
      const int32_t deg =
          ParetoDegree(rng, r.avg_degree, config.powerlaw_alpha,
                       std::max<int32_t>(1, nd / 2));
      const int32_t primary = community[static_cast<size_t>(src)]
                                       [static_cast<size_t>(v)];
      for (int32_t k = 0; k < deg; ++k) {
        // Ambiguous target nodes route part of their edges through their
        // secondary community.
        int32_t com = primary;
        if (src == target && second_com[static_cast<size_t>(v)] >= 0 &&
            rng.NextDouble() < blend[static_cast<size_t>(v)]) {
          com = second_com[static_cast<size_t>(v)];
        }
        if (config.class_confusion > 0.0 &&
            rng.NextDouble() < config.class_confusion) {
          com = sister(com);
        }
        const auto& same = members[static_cast<size_t>(dst)]
                                  [static_cast<size_t>(com)];
        auto& past_com = past_same[static_cast<size_t>(com)];
        int32_t u;
        if (!same.empty() && rng.NextDouble() < r.affinity) {
          if (!past_com.empty() && rng.NextDouble() < kPreferential) {
            u = past_com[static_cast<size_t>(
                rng.NextBounded(past_com.size()))];
          } else {
            u = same[static_cast<size_t>(rng.NextBounded(same.size()))];
          }
          past_com.push_back(u);
        } else {
          if (!past_any.empty() && rng.NextDouble() < kPreferential) {
            u = past_any[static_cast<size_t>(
                rng.NextBounded(past_any.size()))];
          } else {
            u = static_cast<int32_t>(
                rng.NextBounded(static_cast<uint64_t>(nd)));
          }
          past_any.push_back(u);
        }
        if (src == dst && u == v) continue;  // no self loops
        entries.push_back({v, u, 1.0f});
      }
    }
    FREEHGC_ASSIGN_OR_RETURN(CsrMatrix adj,
                             CsrMatrix::FromCoo(ns, nd, std::move(entries)));
    // Duplicate endpoint picks collapse to a single weighted entry; reset
    // weights to 1 (unweighted graphs, as in the paper's datasets).
    for (auto& v : adj.mutable_values()) v = 1.0f;
    FREEHGC_RETURN_IF_ERROR(
        sink.AddRelation(r.name, src, dst, std::move(adj)));
    rels.push_back({r.name, src, dst});
  }
  // Reverse relations, with EnsureReverseRelations' candidate logic:
  // relations lacking a schema-level reverse get "rev_<name>"; symmetric
  // self-relations are their own reverse and are skipped.
  {
    const size_t original = rels.size();
    std::vector<size_t> candidates;
    for (size_t i = 0; i < original; ++i) {
      bool has_reverse = false;
      if (rels[i].src != rels[i].dst) {
        for (size_t j = 0; j < original; ++j) {
          if (j != i && rels[j].src == rels[i].dst &&
              rels[j].dst == rels[i].src) {
            has_reverse = true;
            break;
          }
        }
      }
      if (!has_reverse) candidates.push_back(i);
    }
    std::vector<CsrMatrix> transposed(candidates.size());
    exec::Resolve(ctx).ParallelFor(
        static_cast<int64_t>(candidates.size()), 1,
        [&](int64_t begin, int64_t end, exec::Workspace&) {
          for (int64_t k = begin; k < end; ++k) {
            transposed[static_cast<size_t>(k)] = sparse::Transpose(
                sink.RelationAdj(candidates[static_cast<size_t>(k)]));
          }
        });
    for (size_t k = 0; k < candidates.size(); ++k) {
      const size_t i = candidates[k];
      if (rels[i].src == rels[i].dst &&
          transposed[k] == sink.RelationAdj(i)) {
        continue;
      }
      FREEHGC_RETURN_IF_ERROR(sink.AddRelation(
          "rev_" + rels[i].name, rels[i].dst, rels[i].src,
          std::move(transposed[k])));
    }
  }
  FREEHGC_RETURN_IF_ERROR(sink.EndRelations());

  // Features: community centroid + Gaussian noise (target type gets
  // `feature_noise`, other types `feature_noise_other`). Rows leave in
  // fixed-size chunks so the streaming sink never holds a full matrix;
  // the draw sequence is row-major either way.
  constexpr int32_t kFeatureChunkRows = 65536;
  for (size_t ti = 0; ti < config.types.size(); ++ti) {
    const auto& t = config.types[ti];
    const double other = config.feature_noise_other >= 0.0
                             ? config.feature_noise_other
                             : config.feature_noise;
    const float noise = static_cast<float>(
        static_cast<TypeId>(ti) == target ? config.feature_noise : other);
    Matrix centroids(config.num_classes, t.feat_dim);
    centroids.FillGaussian(rng, 1.0f);
    if (config.class_confusion > 0.0) {
      // Pull sister-class centroids toward each other by the confusion
      // weight so features blur the same boundary the structure does.
      const float w = static_cast<float>(config.class_confusion);
      Matrix mixed = centroids;
      for (int32_t c = 0; c < config.num_classes; ++c) {
        const int32_t sc = sister(c);
        if (sc == c) continue;
        for (int32_t d = 0; d < t.feat_dim; ++d) {
          mixed.At(c, d) =
              (1.0f - w) * centroids.At(c, d) + w * centroids.At(sc, d);
        }
      }
      centroids = std::move(mixed);
    }
    FREEHGC_RETURN_IF_ERROR(
        sink.BeginFeatures(static_cast<TypeId>(ti), t.count, t.feat_dim));
    std::vector<float> chunk(
        static_cast<size_t>(std::min(t.count, kFeatureChunkRows)) *
        static_cast<size_t>(t.feat_dim));
    int32_t chunk_rows = 0;
    for (int32_t v = 0; v < t.count; ++v) {
      const int32_t c = community[ti][static_cast<size_t>(v)];
      const float* mu = centroids.Row(c);
      // Ambiguous target nodes: centroid blend of the two communities.
      const bool ambiguous = static_cast<TypeId>(ti) == target &&
                             second_com[static_cast<size_t>(v)] >= 0;
      const float* mu2 =
          ambiguous ? centroids.Row(second_com[static_cast<size_t>(v)])
                    : nullptr;
      const float a = ambiguous ? blend[static_cast<size_t>(v)] : 0.0f;
      float* row = chunk.data() + static_cast<size_t>(chunk_rows) *
                                      static_cast<size_t>(t.feat_dim);
      for (int32_t d = 0; d < t.feat_dim; ++d) {
        const float base = ambiguous ? (1.0f - a) * mu[d] + a * mu2[d]
                                     : mu[d];
        row[d] = base + rng.NextGaussian(0.0f, noise);
      }
      if (++chunk_rows == kFeatureChunkRows) {
        FREEHGC_RETURN_IF_ERROR(
            sink.AppendFeatureRows(chunk.data(), chunk_rows));
        chunk_rows = 0;
      }
    }
    if (chunk_rows > 0) {
      FREEHGC_RETURN_IF_ERROR(
          sink.AppendFeatureRows(chunk.data(), chunk_rows));
    }
    FREEHGC_RETURN_IF_ERROR(sink.EndFeatures());
  }

  // Labels and split. A fraction of labels is flipped to plant an
  // irreducible error ceiling (see SchemaConfig::label_flip_fraction).
  std::vector<int32_t> labels = community[static_cast<size_t>(target)];
  if (config.label_flip_fraction > 0.0 && config.num_classes > 1) {
    for (auto& y : labels) {
      if (rng.NextDouble() < config.label_flip_fraction) {
        const int32_t offset = 1 + static_cast<int32_t>(rng.NextBounded(
                                       static_cast<uint64_t>(
                                           config.num_classes - 1)));
        y = (y + offset) % config.num_classes;
      }
    }
  }
  FREEHGC_RETURN_IF_ERROR(
      sink.SetTarget(target, labels, config.num_classes));
  const int32_t n = node_count(target);
  std::vector<int32_t> perm(static_cast<size_t>(n));
  for (int32_t i = 0; i < n; ++i) perm[static_cast<size_t>(i)] = i;
  rng.Shuffle(perm);
  const int32_t n_train =
      static_cast<int32_t>(std::lround(config.train_fraction * n));
  const int32_t n_val =
      static_cast<int32_t>(std::lround(config.val_fraction * n));
  std::vector<int32_t> train(perm.begin(), perm.begin() + n_train);
  std::vector<int32_t> val(perm.begin() + n_train,
                           perm.begin() + n_train + n_val);
  std::vector<int32_t> test(perm.begin() + n_train + n_val, perm.end());
  return sink.SetSplit(train, val, test);
}

}  // namespace

Result<HeteroGraph> Generate(const SchemaConfig& config, uint64_t seed,
                             exec::ExecContext* ctx) {
  HeapSink sink;
  FREEHGC_RETURN_IF_ERROR(GenerateCore(config, seed, ctx, sink));
  FREEHGC_RETURN_IF_ERROR(sink.g.Validate());
  return std::move(sink.g);
}

Result<V3WriteSummary> GenerateToV3(const SchemaConfig& config,
                                    uint64_t seed, const std::string& path,
                                    exec::ExecContext* ctx) {
  FREEHGC_ASSIGN_OR_RETURN(HeteroGraphV3Writer writer,
                           HeteroGraphV3Writer::Create(path));
  V3Sink sink(std::move(writer));
  FREEHGC_RETURN_IF_ERROR(GenerateCore(config, seed, ctx, sink));
  return sink.Finish();
}

namespace {

int32_t Scaled(int32_t base, double scale) {
  return std::max<int32_t>(4, static_cast<int32_t>(std::lround(base * scale)));
}

SchemaConfig AcmConfig(double scale) {
  SchemaConfig c;
  c.name = "acm";
  c.types = {{"paper", Scaled(3000, scale), 64},
             {"author", Scaled(6000, scale), 64},
             {"subject", Scaled(60, scale), 32},
             {"term", Scaled(1800, scale), 32}};
  c.relations = {{"pp_cite", "paper", "paper", 4.0, 0.75},
                 {"pa", "paper", "author", 3.0, 0.85},
                 {"ps", "paper", "subject", 1.0, 0.9},
                 {"pt", "paper", "term", 6.0, 0.7}};
  c.target = "paper";
  c.num_classes = 3;
  c.feature_noise = 2.0;
  c.feature_noise_other = 1.2;
  c.label_flip_fraction = 0.05;
  return c;
}

SchemaConfig DblpConfig(double scale) {
  SchemaConfig c;
  c.name = "dblp";
  c.types = {{"author", Scaled(2000, scale), 64},
             {"paper", Scaled(7000, scale), 64},
             {"term", Scaled(4000, scale), 32},
             {"venue", Scaled(20, scale), 16}};
  c.relations = {{"ap", "author", "paper", 4.0, 0.9},
                 {"pt", "paper", "term", 5.0, 0.7},
                 {"pv", "paper", "venue", 1.0, 0.9}};
  c.target = "author";
  c.num_classes = 4;
  c.feature_noise = 1.5;
  c.feature_noise_other = 1.2;
  c.label_flip_fraction = 0.04;
  return c;
}

SchemaConfig ImdbConfig(double scale) {
  SchemaConfig c;
  c.name = "imdb";
  c.types = {{"movie", Scaled(2500, scale), 64},
             {"director", Scaled(1200, scale), 32},
             {"actor", Scaled(3000, scale), 32},
             {"keyword", Scaled(4000, scale), 32}};
  c.relations = {{"md", "movie", "director", 1.0, 0.8},
                 {"ma", "movie", "actor", 3.0, 0.7},
                 {"mk", "movie", "keyword", 5.0, 0.6}};
  c.target = "movie";
  c.num_classes = 5;
  // IMDB is the hardest HGB dataset (whole-graph accuracy ~68%); use
  // heavier feature noise and weaker affinity to mirror that.
  c.feature_noise = 2.5;
  c.feature_noise_other = 2.0;
  c.class_confusion = 0.42;
  return c;
}

SchemaConfig FreebaseConfig(double scale) {
  SchemaConfig c;
  c.name = "freebase";
  c.types = {{"book", Scaled(4000, scale), 48},
             {"film", Scaled(3000, scale), 48},
             {"music", Scaled(2500, scale), 48},
             {"sports", Scaled(1500, scale), 48},
             {"people", Scaled(3500, scale), 48},
             {"location", Scaled(1500, scale), 48},
             {"organization", Scaled(1200, scale), 48},
             {"business", Scaled(1300, scale), 48}};
  // A web of relations (reverses are added automatically, giving the
  // 30+ edge types of the real Freebase subset).
  c.relations = {{"bb", "book", "book", 2.5, 0.8},
                 {"bf", "book", "film", 1.5, 0.75},
                 {"bp", "book", "people", 2.0, 0.8},
                 {"bo", "book", "organization", 1.0, 0.7},
                 {"bl", "book", "location", 1.0, 0.6},
                 {"bm", "book", "music", 1.2, 0.7},
                 {"fp", "film", "people", 3.0, 0.7},
                 {"fm", "film", "music", 1.5, 0.6},
                 {"fl", "film", "location", 1.0, 0.6},
                 {"mp", "music", "people", 2.0, 0.7},
                 {"sp", "sports", "people", 2.5, 0.7},
                 {"sl", "sports", "location", 1.0, 0.6},
                 {"pl", "people", "location", 1.5, 0.6},
                 {"po", "people", "organization", 1.5, 0.6},
                 {"ob", "organization", "business", 1.5, 0.7},
                 {"lb", "location", "business", 1.0, 0.6},
                 {"pb", "people", "business", 1.0, 0.6},
                 {"ss", "sports", "sports", 1.5, 0.8}};
  c.target = "book";
  c.num_classes = 7;
  c.feature_noise = 2.5;
  c.feature_noise_other = 1.8;
  c.class_confusion = 0.45;
  return c;
}

SchemaConfig AminerConfig(double scale) {
  SchemaConfig c;
  c.name = "aminer";
  // Paper: 4.89M nodes (author/paper/venue), 2 edge types. Scaled to ~111k
  // nodes so the full pipeline runs on one core; the author:paper:venue
  // ratio and the 2-relation schema are preserved.
  c.types = {{"author", Scaled(60000, scale), 32},
             {"paper", Scaled(50000, scale), 32},
             {"venue", Scaled(1000, scale), 16}};
  c.relations = {{"ap", "author", "paper", 3.0, 0.85},
                 {"pv", "paper", "venue", 1.0, 0.9}};
  c.target = "author";
  c.num_classes = 8;
  c.feature_noise = 1.5;
  c.feature_noise_other = 1.0;
  c.class_confusion = 0.06;
  return c;
}

SchemaConfig MutagConfig(double scale) {
  SchemaConfig c;
  c.name = "mutag";
  c.types = {{"d", Scaled(3000, scale), 32},
             {"atom", Scaled(5000, scale), 32},
             {"bond", Scaled(6000, scale), 16},
             {"element", Scaled(50, scale), 16},
             {"structure", Scaled(1000, scale), 16},
             {"charge", Scaled(20, scale), 8},
             {"misc", Scaled(2000, scale), 16}};
  // 23 base relations -> 46 edge types with reverses, matching Table II.
  c.relations = {{"da", "d", "atom", 4.0, 0.8},
                 {"db", "d", "bond", 4.0, 0.7},
                 {"ds", "d", "structure", 1.5, 0.8},
                 {"dm", "d", "misc", 1.0, 0.6},
                 {"ab", "atom", "bond", 2.0, 0.7},
                 {"ae", "atom", "element", 1.0, 0.9},
                 {"ac", "atom", "charge", 1.0, 0.8},
                 {"as", "atom", "structure", 1.0, 0.6},
                 {"bs", "bond", "structure", 1.0, 0.6},
                 {"bm", "bond", "misc", 1.0, 0.5},
                 {"se", "structure", "element", 1.0, 0.6},
                 {"sm", "structure", "misc", 1.0, 0.5},
                 {"em", "element", "misc", 1.0, 0.5},
                 {"dd", "d", "d", 1.5, 0.8},
                 {"aa", "atom", "atom", 1.5, 0.7},
                 {"d_e", "d", "element", 1.0, 0.7},
                 {"d_c", "d", "charge", 1.0, 0.7},
                 {"a_m", "atom", "misc", 1.0, 0.5},
                 {"b_e", "bond", "element", 1.0, 0.6},
                 {"b_c", "bond", "charge", 1.0, 0.6},
                 {"s_c", "structure", "charge", 1.0, 0.5},
                 {"m_m", "misc", "misc", 1.0, 0.5},
                 {"e_c", "element", "charge", 1.0, 0.5}};
  c.target = "d";
  c.num_classes = 2;
  c.feature_noise = 2.0;
  c.feature_noise_other = 2.0;
  c.class_confusion = 0.38;
  return c;
}

SchemaConfig AmConfig(double scale) {
  SchemaConfig c;
  c.name = "am";
  c.types = {{"proxy", Scaled(5000, scale), 32},
             {"artifact", Scaled(12000, scale), 32},
             {"material", Scaled(300, scale), 16},
             {"technique", Scaled(200, scale), 16},
             {"agent", Scaled(3000, scale), 16},
             {"place", Scaled(500, scale), 16},
             {"period", Scaled(100, scale), 8}};
  c.relations = {{"px_af", "proxy", "artifact", 2.0, 0.8},
                 {"px_ag", "proxy", "agent", 1.0, 0.7},
                 {"px_pl", "proxy", "place", 1.0, 0.6},
                 {"px_pd", "proxy", "period", 1.0, 0.7},
                 {"px_ma", "proxy", "material", 1.0, 0.8},
                 {"px_te", "proxy", "technique", 1.0, 0.8},
                 {"af_ma", "artifact", "material", 1.5, 0.8},
                 {"af_te", "artifact", "technique", 1.0, 0.7},
                 {"af_ag", "artifact", "agent", 1.5, 0.7},
                 {"af_pl", "artifact", "place", 1.0, 0.6},
                 {"af_pd", "artifact", "period", 1.0, 0.6},
                 {"ag_pl", "agent", "place", 1.0, 0.6},
                 {"ag_pd", "agent", "period", 1.0, 0.6},
                 {"ma_te", "material", "technique", 1.0, 0.5},
                 {"pl_pd", "place", "period", 1.0, 0.5},
                 {"af_af", "artifact", "artifact", 1.5, 0.7},
                 {"px_px", "proxy", "proxy", 1.0, 0.8},
                 {"ag_ag", "agent", "agent", 1.0, 0.6}};
  c.target = "proxy";
  c.num_classes = 11;
  c.feature_noise = 2.0;
  c.feature_noise_other = 1.2;
  c.class_confusion = 0.12;
  return c;
}

SchemaConfig ToyConfig() {
  SchemaConfig c;
  c.name = "toy";
  c.types = {{"t", 60, 8}, {"f", 40, 8}, {"l", 50, 8}};
  c.relations = {{"tf", "t", "f", 2.0, 0.8}, {"fl", "f", "l", 2.0, 0.8}};
  c.target = "t";
  c.num_classes = 3;
  c.train_fraction = 0.4;
  c.val_fraction = 0.1;
  return c;
}

HeteroGraph MustGenerate(const SchemaConfig& c, uint64_t seed,
                         exec::ExecContext* ctx) {
  auto g = Generate(c, seed, ctx);
  FREEHGC_CHECK(g.ok());
  return std::move(g).value();
}

}  // namespace

Result<SchemaConfig> PresetConfig(const std::string& name, double scale) {
  if (name == "acm") return AcmConfig(scale);
  if (name == "dblp") return DblpConfig(scale);
  if (name == "imdb") return ImdbConfig(scale);
  if (name == "freebase") return FreebaseConfig(scale);
  if (name == "aminer") return AminerConfig(scale);
  if (name == "mutag") return MutagConfig(scale);
  if (name == "am") return AmConfig(scale);
  if (name == "toy") return ToyConfig();
  return Status::NotFound("unknown dataset: " + name);
}

HeteroGraph MakeAcm(uint64_t seed, double scale, exec::ExecContext* ctx) {
  return MustGenerate(AcmConfig(scale), seed, ctx);
}

HeteroGraph MakeDblp(uint64_t seed, double scale, exec::ExecContext* ctx) {
  return MustGenerate(DblpConfig(scale), seed, ctx);
}

HeteroGraph MakeImdb(uint64_t seed, double scale, exec::ExecContext* ctx) {
  return MustGenerate(ImdbConfig(scale), seed, ctx);
}

HeteroGraph MakeFreebase(uint64_t seed, double scale,
                         exec::ExecContext* ctx) {
  return MustGenerate(FreebaseConfig(scale), seed, ctx);
}

HeteroGraph MakeAminer(uint64_t seed, double scale, exec::ExecContext* ctx) {
  return MustGenerate(AminerConfig(scale), seed, ctx);
}

HeteroGraph MakeMutag(uint64_t seed, double scale, exec::ExecContext* ctx) {
  return MustGenerate(MutagConfig(scale), seed, ctx);
}

HeteroGraph MakeAm(uint64_t seed, double scale, exec::ExecContext* ctx) {
  return MustGenerate(AmConfig(scale), seed, ctx);
}

HeteroGraph MakeToy(uint64_t seed) {
  return MustGenerate(ToyConfig(), seed, nullptr);
}

Result<HeteroGraph> MakeByName(const std::string& name, uint64_t seed,
                               double scale, exec::ExecContext* ctx) {
  FREEHGC_ASSIGN_OR_RETURN(SchemaConfig c, PresetConfig(name, scale));
  return Generate(c, seed, ctx);
}

int RecommendedHops(const std::string& name) {
  if (name == "acm") return 3;
  if (name == "dblp") return 4;
  if (name == "imdb") return 3;  // paper uses 5; capped for 1-core runs
  if (name == "freebase") return 2;
  if (name == "mutag") return 1;
  if (name == "am") return 1;
  if (name == "aminer") return 2;
  return 2;
}

}  // namespace freehgc::datasets
