#ifndef FREEHGC_DATASETS_GENERATOR_H_
#define FREEHGC_DATASETS_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "exec/exec_context.h"
#include "graph/hetero_graph.h"
#include "graph/serialize.h"

namespace freehgc::datasets {

/// Specification of one node type in a synthetic schema.
struct TypeSpec {
  std::string name;
  int32_t count = 0;
  /// Feature dimensionality for this type.
  int32_t feat_dim = 32;
};

/// Specification of one directed edge type.
struct RelationSpec {
  std::string name;
  std::string src;
  std::string dst;
  /// Mean out-degree of src nodes; realized degrees follow a Pareto
  /// (power-law) distribution as in real heterogeneous graphs.
  double avg_degree = 3.0;
  /// Probability that an edge endpoint is drawn from the same latent
  /// community as the source node (vs. uniformly at random). Higher values
  /// plant stronger class signal along meta-paths through this relation.
  double affinity = 0.8;
};

/// Full synthetic-dataset schema. The generator plants three signals that
/// the paper's methods (and baselines) rely on: power-law degree
/// distributions (receptive-field maximization), class-aligned community
/// structure across all node types (meta-path class signal), and
/// class-correlated Gaussian features (coreset geometry / HGNN accuracy).
struct SchemaConfig {
  std::string name;
  std::vector<TypeSpec> types;
  std::vector<RelationSpec> relations;
  std::string target;
  int32_t num_classes = 2;
  /// Train/val fractions of target nodes (test gets the rest). The HGB
  /// benchmark split used by the paper is 24%/6%/70%.
  double train_fraction = 0.24;
  double val_fraction = 0.06;
  /// Feature noise standard deviation (relative to unit community-centroid
  /// separation) for the target type. Larger = harder classification task:
  /// with noisy target features the class signal must be recovered through
  /// meta-path structure, exactly the regime the paper's methods differ in.
  double feature_noise = 1.0;
  /// Feature noise for non-target types. Real heterogeneous datasets have
  /// highly informative auxiliary entities (venues, subjects, keywords);
  /// keeping this lower than `feature_noise` makes neighborhood
  /// preservation (what condensation methods compete on) the decisive
  /// factor. Negative = use `feature_noise`.
  double feature_noise_other = -1.0;
  /// Pareto shape for degrees (smaller = heavier tail). Typical 2.1.
  double powerlaw_alpha = 2.1;
  /// Fraction of target nodes whose label is flipped to a random other
  /// class while structure and features keep following the original
  /// community. Plants label noise; prefer `ambiguous_fraction` for the
  /// Bayes-ceiling effect (flips asymmetrically penalize selection-based
  /// condensers, whose training labels inherit the noise).
  double label_flip_fraction = 0.0;
  /// Fraction of target nodes with *mixed community membership*: such a
  /// node draws a second community and blends it into both its edges and
  /// its features; the label stays the primary community. Use sparingly —
  /// bridge nodes have unusually diverse neighborhoods, which interacts
  /// with neighborhood-based selection.
  double ambiguous_fraction = 0.0;
  /// Class-level confusion: classes are paired (0-1, 2-3, ...) and every
  /// endpoint draw targeting community c is rerouted to its sister class
  /// with this probability, while sister centroids are pulled toward each
  /// other by the same weight. This plants the irreducible error ceiling
  /// real datasets have (IMDB tops out near 68%) *symmetrically across
  /// nodes*: no individual node is an outlier, the class boundary itself
  /// is blurred.
  double class_confusion = 0.0;
};

/// Generates a heterogeneous graph from a schema, deterministically under
/// `seed`. Reverse relations are added automatically so every relation is
/// traversable in both directions. All random sampling is sequential (the
/// output is byte-identical for every thread count); `ctx` only
/// accelerates the value-preserving reverse-relation transposes.
Result<HeteroGraph> Generate(const SchemaConfig& config, uint64_t seed,
                             exec::ExecContext* ctx = nullptr);

/// Streams the same graph Generate(config, seed) would produce directly
/// into a v3 container at `path`, without ever materializing the whole
/// graph in memory: relation CSRs are written (and freed) as they are
/// produced and feature matrices leave in fixed-size row chunks. The
/// random draw sequence is shared with Generate, and the container's
/// content fingerprint — computed incrementally while writing — equals
/// HeteroGraph::ContentFingerprint() of the heap-generated graph, so
/// MapHeteroGraph(path) yields a bit-identical graph. Peak memory is
/// bounded by the forward CSRs plus one transpose (~25-30% of the heap
/// graph for feature-heavy schemas), which is what makes paper-true
/// AMiner scale (~4.9M nodes) generable on this box.
Result<V3WriteSummary> GenerateToV3(const SchemaConfig& config,
                                    uint64_t seed, const std::string& path,
                                    exec::ExecContext* ctx = nullptr);

/// The schema behind each Make* preset ("acm", "dblp", "imdb",
/// "freebase", "aminer", "mutag", "am", "toy"), scaled by `scale` —
/// shared by the heap presets and the streaming GenerateToV3 path.
Result<SchemaConfig> PresetConfig(const std::string& name,
                                  double scale = 1.0);

/// Preset generators matching the schemas of the paper's datasets
/// (Table II and Fig. 5), scaled by `scale` (1.0 = repo default sizes,
/// already reduced from the paper's node counts to fit a 1-core box;
/// relative structure is preserved).
HeteroGraph MakeAcm(uint64_t seed, double scale = 1.0,
                    exec::ExecContext* ctx = nullptr);
HeteroGraph MakeDblp(uint64_t seed, double scale = 1.0,
                     exec::ExecContext* ctx = nullptr);
HeteroGraph MakeImdb(uint64_t seed, double scale = 1.0,
                     exec::ExecContext* ctx = nullptr);
HeteroGraph MakeFreebase(uint64_t seed, double scale = 1.0,
                         exec::ExecContext* ctx = nullptr);
HeteroGraph MakeAminer(uint64_t seed, double scale = 1.0,
                       exec::ExecContext* ctx = nullptr);
HeteroGraph MakeMutag(uint64_t seed, double scale = 1.0,
                      exec::ExecContext* ctx = nullptr);
HeteroGraph MakeAm(uint64_t seed, double scale = 1.0,
                   exec::ExecContext* ctx = nullptr);

/// Tiny 3-type graph for unit tests (target "t" with fathers "f" and
/// leaves "l", a few dozen nodes).
HeteroGraph MakeToy(uint64_t seed);

/// Looks up a preset by lowercase name ("acm", "dblp", ...).
Result<HeteroGraph> MakeByName(const std::string& name, uint64_t seed,
                               double scale = 1.0,
                               exec::ExecContext* ctx = nullptr);

/// Recommended meta-path hop count per dataset (paper Section V-B:
/// K = {3,4,5,2,1,1,2} for ACM, DBLP, IMDB, Freebase, MUTAG, AM, AMiner);
/// IMDB is capped at 3 here to bound path enumeration on one core.
int RecommendedHops(const std::string& name);

}  // namespace freehgc::datasets

#endif  // FREEHGC_DATASETS_GENERATOR_H_
