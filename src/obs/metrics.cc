#include "obs/metrics.h"

#include <cinttypes>
#include <cstdio>

namespace freehgc::obs {

namespace internal {
std::atomic<bool> g_detailed_metrics{false};
}  // namespace internal

void SetDetailedMetricsEnabled(bool enabled) {
  internal::g_detailed_metrics.store(enabled, std::memory_order_relaxed);
}

namespace {

void AppendKey(std::string& out, const std::string& name, bool& first) {
  if (!first) out += ", ";
  first = false;
  out += '"';
  out += name;  // metric names are identifier-like; no escaping needed
  out += "\": ";
}

std::string I64(int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  return buf;
}

}  // namespace

int64_t Histogram::ApproxQuantile(double q) const {
  const int64_t total = Count();
  if (total <= 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the q-th sample (1-based, ceiling), then walk the buckets.
  int64_t rank = static_cast<int64_t>(q * static_cast<double>(total));
  if (rank < 1) rank = 1;
  if (rank > total) rank = total;
  int64_t cum = 0;
  for (int b = 0; b < kBuckets; ++b) {
    const int64_t n = BucketCount(b);
    if (n == 0) continue;
    if (cum + n >= rank) {
      // Bucket b holds values in (lower, upper]; interpolate by the
      // sample's position inside the bucket.
      const int64_t upper = b == 0 ? 1 : (int64_t{1} << b);
      const int64_t lower = b <= 1 ? (b == 0 ? 0 : 1) : (int64_t{1} << (b - 1));
      const double frac =
          static_cast<double>(rank - cum) / static_cast<double>(n);
      return lower +
             static_cast<int64_t>(frac * static_cast<double>(upper - lower));
    }
    cum += n;
  }
  return Sum() / total;  // counts raced with buckets; fall back to mean
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* r = new MetricsRegistry();
  return *r;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

std::string MetricsRegistry::DumpJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    AppendKey(out, name, first);
    out += I64(c->Value());
  }
  out += "}, \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    AppendKey(out, name, first);
    out += I64(g->Value());
  }
  out += "}, \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    AppendKey(out, name, first);
    out += "{\"count\": " + I64(h->Count()) + ", \"sum\": " + I64(h->Sum()) +
           ", \"buckets\": [";
    bool first_bucket = true;
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      const int64_t n = h->BucketCount(b);
      if (n == 0) continue;
      if (!first_bucket) out += ", ";
      first_bucket = false;
      // Upper bound of bucket b (inclusive): 2^(b-1) ... see BucketIndex.
      const int64_t upper = b == 0 ? 1 : (int64_t{1} << b);
      out += "[" + I64(upper) + ", " + I64(n) + "]";
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

void MetricsRegistry::Visit(
    const std::function<void(const std::string&, const Counter&)>& counter,
    const std::function<void(const std::string&, const Gauge&)>& gauge,
    const std::function<void(const std::string&, const Histogram&)>& histogram)
    const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) counter(name, *c);
  for (const auto& [name, g] : gauges_) gauge(name, *g);
  for (const auto& [name, h] : histograms_) histogram(name, *h);
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

}  // namespace freehgc::obs
