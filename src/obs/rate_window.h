#ifndef FREEHGC_OBS_RATE_WINDOW_H_
#define FREEHGC_OBS_RATE_WINDOW_H_

#include <cstdint>
#include <deque>
#include <utility>

namespace freehgc::obs {

/// Sliding-window rate estimator over samples of a cumulative counter:
/// feed it (timestamp, cumulative value) pairs as you poll — e.g. the
/// serve.requests.completed counter scraped from METRICS — and
/// RatePerSec() is the average rate across the retained window. Samples
/// older than `window_ns` are evicted (always keeping at least two so a
/// slow poller still gets its last interval). freehgc_top's qps column
/// is this over a 10 s window. Not thread-safe; one poller owns it.
class RateWindow {
 public:
  explicit RateWindow(int64_t window_ns = 10'000'000'000)
      : window_ns_(window_ns) {}

  void Add(int64_t t_ns, double cumulative) {
    samples_.emplace_back(t_ns, cumulative);
    while (samples_.size() > 2 &&
           t_ns - samples_.front().first > window_ns_) {
      samples_.pop_front();
    }
  }

  /// 0 until two samples exist or while time stands still. A counter
  /// reset mid-window (server restart) reports 0 rather than a negative
  /// rate.
  double RatePerSec() const {
    if (samples_.size() < 2) return 0.0;
    const auto& [t0, v0] = samples_.front();
    const auto& [t1, v1] = samples_.back();
    if (t1 <= t0 || v1 < v0) return 0.0;
    return (v1 - v0) / (static_cast<double>(t1 - t0) * 1e-9);
  }

  size_t samples() const { return samples_.size(); }

 private:
  int64_t window_ns_;
  std::deque<std::pair<int64_t, double>> samples_;
};

}  // namespace freehgc::obs

#endif  // FREEHGC_OBS_RATE_WINDOW_H_
