#include "obs/flight_recorder.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>

namespace freehgc::obs {

namespace {

void CopyTruncated(char* dst, size_t cap, std::string_view s) {
  const size_t n = std::min(s.size(), cap - 1);
  std::memcpy(dst, s.data(), n);
  dst[n] = '\0';
}

void AppendRecordJson(std::string& out, const FlightRecord& r) {
  char buf[384];
  std::snprintf(
      buf, sizeof(buf),
      "{\"id\": %" PRIu64 ", \"graph\": \"%s\", \"method\": \"%s\", "
      "\"fingerprint\": \"%016" PRIx64 "\", \"slot\": %d, "
      "\"priority\": %d, \"outcome\": \"%s\", \"evalctx_hit\": %s, "
      "\"submit_ns\": %" PRId64 ", \"queue_ns\": %" PRId64 ", "
      "\"exec_ns\": %" PRId64 ", \"total_ms\": %.3f}",
      r.id, r.graph, r.method, r.fingerprint, r.slot, r.priority,
      OutcomeName(r.outcome), r.evalctx_hit ? "true" : "false", r.submit_ns,
      r.queue_ns, r.exec_ns, static_cast<double>(r.total_ns()) * 1e-6);
  out += buf;
}

void AppendRecordArray(std::string& out, const char* key,
                       const std::vector<FlightRecord>& records) {
  out += "\"";
  out += key;
  out += "\": [";
  for (size_t i = 0; i < records.size(); ++i) {
    if (i != 0) out += ", ";
    AppendRecordJson(out, records[i]);
  }
  out += "]";
}

}  // namespace

const char* OutcomeName(RequestOutcome outcome) {
  switch (outcome) {
    case RequestOutcome::kOk:
      return "ok";
    case RequestOutcome::kError:
      return "error";
    case RequestOutcome::kShed:
      return "shed";
    case RequestOutcome::kCancelled:
      return "cancelled";
    case RequestOutcome::kExpired:
      return "expired";
  }
  return "unknown";
}

void FlightRecord::set_graph(std::string_view s) {
  CopyTruncated(graph, sizeof(graph), s);
}

void FlightRecord::set_method(std::string_view s) {
  CopyTruncated(method, sizeof(method), s);
}

FlightRecorder::FlightRecorder(size_t capacity, size_t outlier_capacity)
    : capacity_(capacity > 0 ? capacity : 1),
      outlier_capacity_(outlier_capacity > 0 ? outlier_capacity : 1),
      ring_(new Slot[capacity_]) {}

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* r = new FlightRecorder();
  return *r;
}

void FlightRecorder::Record(const FlightRecord& rec) {
  // Ring path: claim a unique ticket, mark the slot dirty (odd), copy,
  // mark clean. Two writers land on the same physical slot only when
  // they are exactly `capacity_` admissions apart mid-write — the reader
  // protocol treats such a slot as unstable and skips it.
  const uint64_t ticket = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = ring_[ticket % capacity_];
  slot.seq.fetch_add(1, std::memory_order_acquire);
  slot.rec = rec;
  slot.seq.fetch_add(1, std::memory_order_release);

  // Outlier paths. Errors always retain; the slowest set is gated by an
  // unsynchronized threshold so the common fast request never locks.
  const bool is_error = rec.outcome != RequestOutcome::kOk;
  const bool maybe_slow =
      rec.total_ns() >= slow_threshold_ns_.load(std::memory_order_relaxed);
  if (!is_error && !maybe_slow) return;
  std::lock_guard<std::mutex> lock(outlier_mu_);
  if (is_error) {
    errors_.push_back(rec);
    if (errors_.size() > outlier_capacity_) errors_.pop_front();
  }
  if (slowest_.size() < outlier_capacity_ ||
      rec.total_ns() > slowest_.back().total_ns()) {
    auto pos = std::upper_bound(
        slowest_.begin(), slowest_.end(), rec,
        [](const FlightRecord& a, const FlightRecord& b) {
          return a.total_ns() > b.total_ns();
        });
    slowest_.insert(pos, rec);
    if (slowest_.size() > outlier_capacity_) slowest_.pop_back();
    if (slowest_.size() == outlier_capacity_) {
      slow_threshold_ns_.store(slowest_.back().total_ns(),
                               std::memory_order_relaxed);
    }
  }
}

std::vector<FlightRecord> FlightRecorder::Recent() const {
  const uint64_t end = next_.load(std::memory_order_acquire);
  const uint64_t kept = std::min<uint64_t>(end, capacity_);
  const uint64_t start = end - kept;
  std::vector<FlightRecord> out;
  out.reserve(kept);
  for (uint64_t t = start; t < end; ++t) {
    const Slot& slot = ring_[t % capacity_];
    const uint64_t s1 = slot.seq.load(std::memory_order_acquire);
    if (s1 & 1) continue;  // mid-write
    FlightRecord copy = slot.rec;
    const uint64_t s2 = slot.seq.load(std::memory_order_acquire);
    if (s1 != s2) continue;  // overwritten while copying
    out.push_back(copy);
  }
  return out;
}

std::vector<FlightRecord> FlightRecorder::Slowest() const {
  std::lock_guard<std::mutex> lock(outlier_mu_);
  return slowest_;
}

std::vector<FlightRecord> FlightRecorder::Errors() const {
  std::lock_guard<std::mutex> lock(outlier_mu_);
  return {errors_.begin(), errors_.end()};
}

std::string FlightRecorder::DumpJson() const {
  std::string out = "{";
  char head[96];
  std::snprintf(head, sizeof(head),
                "\"capacity\": %zu, \"recorded\": %" PRId64 ", ", capacity_,
                TotalRecorded());
  out += head;
  AppendRecordArray(out, "recent", Recent());
  out += ", ";
  AppendRecordArray(out, "slowest", Slowest());
  out += ", ";
  AppendRecordArray(out, "errors", Errors());
  out += "}";
  return out;
}

void FlightRecorder::Reset() {
  std::lock_guard<std::mutex> lock(outlier_mu_);
  for (size_t i = 0; i < capacity_; ++i) {
    ring_[i].seq.store(0, std::memory_order_relaxed);
    ring_[i].rec = FlightRecord{};
  }
  next_.store(0, std::memory_order_relaxed);
  slow_threshold_ns_.store(0, std::memory_order_relaxed);
  slowest_.clear();
  errors_.clear();
}

}  // namespace freehgc::obs
