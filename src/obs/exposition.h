#ifndef FREEHGC_OBS_EXPOSITION_H_
#define FREEHGC_OBS_EXPOSITION_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace freehgc::obs {

/// Prometheus text exposition for the metrics registry, plus the minimal
/// parser the polling tools (freehgc_top, bench_serve_load) use to read a
/// snapshot back. The wire op `METRICS` (serve/wire.h) returns exactly
/// PrometheusText(), so any Prometheus-compatible scraper can poll a live
/// freehgc_server without restarting it.
///
/// Mapping from registry names to exposition names:
///   - dots become underscores and everything is prefixed "freehgc_"
///     ("serve.latency.exec_ns" -> "freehgc_serve_latency_exec_ns");
///   - counters get the conventional "_total" suffix;
///   - histograms expand to cumulative "_bucket{le=...}" lines (only
///     non-empty power-of-two bounds are listed, plus le="+Inf"), "_sum"
///     and "_count".
///
/// Snapshot consistency: a snapshot taken while other threads Observe()
/// is always *parseable and monotone* — cumulative bucket counts never
/// decrease within one snapshot, and the "+Inf" bucket equals "_count" —
/// because the count is derived from the same per-bucket loads the
/// bucket lines use (tests/telemetry_test.cc hammers this).

/// "serve.latency.exec_ns" -> "freehgc_serve_latency_exec_ns".
std::string PrometheusName(const std::string& name);

/// Point-in-time snapshot of `reg` in Prometheus text format.
std::string PrometheusText(const MetricsRegistry& reg);

/// Snapshot of the process-global registry.
std::string PrometheusText();

/// One parsed sample line: `name{labels} value`.
struct PromSample {
  std::string name;
  std::map<std::string, std::string> labels;
  double value = 0.0;
};

/// Parses exposition text (comment/HELP/TYPE lines are skipped;
/// malformed lines are dropped rather than erroring — the parser is a
/// monitoring convenience, not a validator).
std::vector<PromSample> ParsePrometheusText(const std::string& text);

/// First sample named `name` (exposition name, labels ignored). Returns
/// false when absent.
bool FindPromValue(const std::vector<PromSample>& samples,
                   const std::string& name, double* out);

/// Cumulative (upper_bound, cumulative_count) buckets of histogram
/// `base_name` (exposition name without the "_bucket" suffix), sorted by
/// bound with the "+Inf" bound last.
std::vector<std::pair<double, double>> PromBuckets(
    const std::vector<PromSample>& samples, const std::string& base_name);

/// q-quantile (q in [0, 1]) from cumulative histogram buckets, with
/// linear interpolation inside the winning bucket — the same estimate
/// Histogram::ApproxQuantile computes server-side, reconstructed from a
/// scraped snapshot. Returns 0 for an empty histogram.
double QuantileFromCumulativeBuckets(
    const std::vector<std::pair<double, double>>& buckets, double q);

}  // namespace freehgc::obs

#endif  // FREEHGC_OBS_EXPOSITION_H_
