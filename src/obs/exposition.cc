#include "obs/exposition.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace freehgc::obs {

namespace {

std::string I64(int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  return buf;
}

/// Upper bound (inclusive) of power-of-two bucket b; see
/// Histogram::BucketIndex.
int64_t BucketUpper(int b) { return b == 0 ? 1 : (int64_t{1} << b); }

}  // namespace

std::string PrometheusName(const std::string& name) {
  std::string out = "freehgc_";
  out.reserve(out.size() + name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

std::string PrometheusText(const MetricsRegistry& reg) {
  std::string out;
  reg.Visit(
      [&out](const std::string& name, const Counter& c) {
        const std::string p = PrometheusName(name) + "_total";
        out += "# TYPE " + p + " counter\n";
        out += p + " " + I64(c.Value()) + "\n";
      },
      [&out](const std::string& name, const Gauge& g) {
        const std::string p = PrometheusName(name);
        out += "# TYPE " + p + " gauge\n";
        out += p + " " + I64(g.Value()) + "\n";
      },
      [&out](const std::string& name, const Histogram& h) {
        const std::string p = PrometheusName(name);
        out += "# TYPE " + p + " histogram\n";
        // One pass of relaxed per-bucket loads; the cumulative counts and
        // the _count line are all derived from these same loads, so the
        // snapshot is internally consistent even while writers race.
        int64_t cum = 0;
        const int64_t sum = h.Sum();
        for (int b = 0; b < Histogram::kBuckets; ++b) {
          const int64_t n = h.BucketCount(b);
          if (n == 0) continue;
          cum += n;
          out += p + "_bucket{le=\"" + I64(BucketUpper(b)) + "\"} " +
                 I64(cum) + "\n";
        }
        out += p + "_bucket{le=\"+Inf\"} " + I64(cum) + "\n";
        out += p + "_sum " + I64(sum) + "\n";
        out += p + "_count " + I64(cum) + "\n";
      });
  return out;
}

std::string PrometheusText() { return PrometheusText(MetricsRegistry::Global()); }

std::vector<PromSample> ParsePrometheusText(const std::string& text) {
  std::vector<PromSample> out;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty() || line[0] == '#') continue;

    PromSample s;
    size_t i = 0;
    while (i < line.size() && line[i] != '{' && line[i] != ' ') ++i;
    if (i == 0 || i == line.size()) continue;
    s.name = line.substr(0, i);
    if (line[i] == '{') {
      const size_t close = line.find('}', i);
      if (close == std::string::npos) continue;
      // label pairs: key="value"[,key="value"...]
      size_t p = i + 1;
      while (p < close) {
        const size_t eq = line.find('=', p);
        if (eq == std::string::npos || eq >= close) break;
        const std::string key = line.substr(p, eq - p);
        size_t vbegin = eq + 1;
        if (vbegin < close && line[vbegin] == '"') ++vbegin;
        size_t vend = line.find('"', vbegin);
        if (vend == std::string::npos || vend > close) vend = close;
        s.labels[key] = line.substr(vbegin, vend - vbegin);
        p = vend + 1;
        if (p < close && line[p] == ',') ++p;
      }
      i = close + 1;
    }
    while (i < line.size() && line[i] == ' ') ++i;
    if (i >= line.size()) continue;
    s.value = std::strtod(line.c_str() + i, nullptr);
    out.push_back(std::move(s));
  }
  return out;
}

bool FindPromValue(const std::vector<PromSample>& samples,
                   const std::string& name, double* out) {
  for (const PromSample& s : samples) {
    if (s.name == name) {
      *out = s.value;
      return true;
    }
  }
  return false;
}

std::vector<std::pair<double, double>> PromBuckets(
    const std::vector<PromSample>& samples, const std::string& base_name) {
  const std::string bucket_name = base_name + "_bucket";
  std::vector<std::pair<double, double>> out;
  for (const PromSample& s : samples) {
    if (s.name != bucket_name) continue;
    const auto le = s.labels.find("le");
    if (le == s.labels.end()) continue;
    const double bound = le->second == "+Inf"
                             ? std::numeric_limits<double>::infinity()
                             : std::strtod(le->second.c_str(), nullptr);
    out.emplace_back(bound, s.value);
  }
  std::sort(out.begin(), out.end());
  return out;
}

double QuantileFromCumulativeBuckets(
    const std::vector<std::pair<double, double>>& buckets, double q) {
  if (buckets.empty()) return 0.0;
  const double total = buckets.back().second;
  if (total <= 0.0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  double rank = q * total;
  if (rank < 1.0) rank = 1.0;
  double prev_bound = 0.0;
  double prev_cum = 0.0;
  for (const auto& [bound, cum] : buckets) {
    if (cum >= rank) {
      const double in_bucket = cum - prev_cum;
      if (in_bucket <= 0.0) return bound;
      if (std::isinf(bound)) return prev_bound;  // overflow bucket
      // The exposition omits empty buckets, so the previous *emitted*
      // bound can sit well below this bucket's true lower edge — e.g. an
      // overload tail whose observations all land in one high bucket.
      // Bounds are powers of two: the edge is bound/2 (0 for the first
      // bucket), exactly the lower Histogram::ApproxQuantile interpolates
      // from server-side.
      const double lower =
          std::max(prev_bound, bound > 1.0 ? bound / 2.0 : 0.0);
      const double frac = (rank - prev_cum) / in_bucket;
      return lower + frac * (bound - lower);
    }
    prev_bound = bound;
    prev_cum = cum;
  }
  return prev_bound;
}

}  // namespace freehgc::obs
