#ifndef FREEHGC_OBS_FLIGHT_RECORDER_H_
#define FREEHGC_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace freehgc::obs {

/// Terminal outcome of one served request. Shared by the flight recorder
/// and the access log so the two artifacts agree on vocabulary.
enum class RequestOutcome : uint8_t {
  kOk = 0,
  kError = 1,
  kShed = 2,
  kCancelled = 3,
  kExpired = 4,
};

const char* OutcomeName(RequestOutcome outcome);

/// One completed-request record. POD with fixed-size strings so the ring
/// can copy it without touching the allocator (graph/method names longer
/// than the fields are truncated — they are labels, not identities; the
/// fingerprint carries the identity).
struct FlightRecord {
  uint64_t id = 0;
  uint64_t fingerprint = 0;
  int64_t submit_ns = 0;  // obs::NowNs clock at admission
  int64_t queue_ns = 0;
  int64_t exec_ns = 0;
  int32_t slot = -1;  // worker slot that ran it; -1 = never ran
  int32_t priority = 0;
  RequestOutcome outcome = RequestOutcome::kOk;
  bool evalctx_hit = false;
  char graph[24] = {};
  char method[16] = {};

  int64_t total_ns() const { return queue_ns + exec_ns; }
  void set_graph(std::string_view s);
  void set_method(std::string_view s);
};

/// In-memory black box for the serving layer: a fixed-size lock-free
/// ring holding the last `capacity` terminal-request records, plus two
/// always-retained outlier sets — the `outlier_capacity` slowest
/// requests ever seen (by queue+exec time) and the last
/// `outlier_capacity` non-OK requests. The ring answers "what was the
/// server doing just now", the outliers answer "what were the worst
/// requests since start" even after the ring has wrapped past them.
///
/// Recording is wait-free on the ring path: one fetch_add to claim a
/// slot and a per-slot seqlock (odd while writing) so a concurrent dump
/// skips records mid-write instead of tearing them. Outlier updates
/// take a mutex, but only after an O(1) unsynchronized threshold check,
/// so steady-state cost per request is the ring write. Dumps
/// (DumpJson — the FLIGHT admin op and the SIGQUIT path) are
/// best-effort snapshots: records being overwritten during the dump are
/// dropped, never invented.
class FlightRecorder {
 public:
  explicit FlightRecorder(size_t capacity = 256, size_t outlier_capacity = 8);

  /// Process-wide recorder (leaked singleton, safe at exit).
  static FlightRecorder& Global();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  void Record(const FlightRecord& rec);

  /// Stable records currently in the ring, oldest first.
  std::vector<FlightRecord> Recent() const;

  /// Slowest-ever records, slowest first.
  std::vector<FlightRecord> Slowest() const;

  /// Most recent non-OK records, oldest first.
  std::vector<FlightRecord> Errors() const;

  /// {"capacity":…, "recorded":…, "recent":[…], "slowest":[…],
  ///  "errors":[…]} — one JSON object per record with per-stage timings.
  std::string DumpJson() const;

  /// Drops everything (tests only).
  void Reset();

  size_t capacity() const { return capacity_; }
  int64_t TotalRecorded() const {
    return static_cast<int64_t>(next_.load(std::memory_order_relaxed));
  }

 private:
  struct Slot {
    std::atomic<uint64_t> seq{0};  // odd while a writer owns the slot
    FlightRecord rec;
  };

  const size_t capacity_;
  const size_t outlier_capacity_;
  std::unique_ptr<Slot[]> ring_;
  std::atomic<uint64_t> next_{0};

  /// Unsynchronized fast-path gate for the slowest set: a record below
  /// this total never takes the mutex. Monotone under the lock.
  std::atomic<int64_t> slow_threshold_ns_{0};

  mutable std::mutex outlier_mu_;
  std::vector<FlightRecord> slowest_;  // sorted, slowest first
  std::deque<FlightRecord> errors_;    // oldest first
};

}  // namespace freehgc::obs

#endif  // FREEHGC_OBS_FLIGHT_RECORDER_H_
