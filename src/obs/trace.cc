#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>

#include "common/logging.h"
#include "obs/metrics.h"

namespace freehgc::obs {

namespace internal {
std::atomic<bool> g_tracing_enabled{false};
thread_local uint64_t g_current_request_id = 0;
}  // namespace internal

namespace {

/// Ring capacity per thread. A span record is 32 bytes, so each active
/// thread holds at most 2 MiB of trace data; older spans are overwritten
/// (and counted as dropped) once a thread wraps.
constexpr size_t kRingCapacity = 1 << 16;

struct ThreadBuffer {
  explicit ThreadBuffer(uint32_t id) : tid(id) {}

  uint32_t tid;
  std::string name;
  // Allocated on first record, so threads that only register a name
  // (pool workers with tracing off) cost a few bytes, not 2 MiB.
  std::vector<SpanRecord> ring;
  size_t next = 0;        // next write slot
  uint64_t recorded = 0;  // total spans ever recorded by this thread
};

struct Registry {
  std::mutex mu;
  // Owned here and never freed: threads keep raw pointers, and the
  // at-exit trace writer reads the buffers after thread_local teardown.
  std::vector<ThreadBuffer*> buffers;
};

Registry& GlobalRegistry() {
  static Registry* r = new Registry();
  return *r;
}

ThreadBuffer& LocalBuffer() {
  thread_local ThreadBuffer* buf = [] {
    Registry& reg = GlobalRegistry();
    std::lock_guard<std::mutex> lock(reg.mu);
    auto* b = new ThreadBuffer(static_cast<uint32_t>(reg.buffers.size()));
    reg.buffers.push_back(b);
    return b;
  }();
  return *buf;
}

std::string g_trace_path;    // set once by InitObservabilityFromEnv
std::string g_metrics_path;  // ditto

void WriteTraceAtExit() {
  if (!g_trace_path.empty()) WriteChromeTrace(g_trace_path);
}

void WriteMetricsAtExit() {
  if (g_metrics_path.empty()) return;
  std::ofstream out(g_metrics_path);
  if (!out) {
    FREEHGC_LOG(Warning) << "FREEHGC_METRICS: cannot write "
                         << g_metrics_path;
    return;
  }
  out << MetricsRegistry::Global().DumpJson() << "\n";
}

/// Minimal JSON string escaping for names (quotes, backslashes, control
/// characters); span names are identifiers in practice.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

void SetTracingEnabled(bool enabled) {
  internal::g_tracing_enabled.store(enabled, std::memory_order_relaxed);
}

int64_t NowNs() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point origin = Clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              origin)
      .count();
}

void ScopedSpan::Record(const char* name, int64_t begin_ns, int64_t end_ns,
                        int32_t worker) {
  ThreadBuffer& buf = LocalBuffer();
  if (buf.ring.empty()) buf.ring.resize(kRingCapacity);
  SpanRecord& slot = buf.ring[buf.next];
  slot.name = name;
  slot.begin_ns = begin_ns;
  slot.end_ns = end_ns;
  slot.request = internal::g_current_request_id;
  slot.tid = buf.tid;
  slot.worker = worker;
  buf.next = (buf.next + 1) % kRingCapacity;
  ++buf.recorded;
}

std::vector<SpanRecord> SnapshotSpans() {
  Registry& reg = GlobalRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  std::vector<SpanRecord> out;
  for (const ThreadBuffer* buf : reg.buffers) {
    const uint64_t kept = std::min<uint64_t>(buf->recorded, kRingCapacity);
    // Oldest surviving span first: when the ring wrapped, that is the
    // slot `next` points at; otherwise slot 0.
    const size_t start = buf->recorded > kRingCapacity ? buf->next : 0;
    for (uint64_t i = 0; i < kept; ++i) {
      out.push_back(buf->ring[(start + i) % kRingCapacity]);
    }
  }
  return out;
}

int64_t DroppedSpans() {
  Registry& reg = GlobalRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  int64_t dropped = 0;
  for (const ThreadBuffer* buf : reg.buffers) {
    if (buf->recorded > kRingCapacity) {
      dropped += static_cast<int64_t>(buf->recorded - kRingCapacity);
    }
  }
  return dropped;
}

void ClearTrace() {
  Registry& reg = GlobalRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (ThreadBuffer* buf : reg.buffers) {
    buf->next = 0;
    buf->recorded = 0;
  }
}

void SetCurrentThreadName(const std::string& name) {
  ThreadBuffer& buf = LocalBuffer();
  Registry& reg = GlobalRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  buf.name = name;
}

void SetCurrentThreadNameIfUnset(const std::string& name) {
  ThreadBuffer& buf = LocalBuffer();
  Registry& reg = GlobalRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  if (buf.name.empty()) buf.name = name;
}

bool WriteChromeTrace(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    FREEHGC_LOG(Warning) << "trace export: cannot write " << path;
    return false;
  }
  const std::vector<SpanRecord> spans = SnapshotSpans();
  out << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  bool first = true;
  // Thread-name metadata events so viewers label the worker rows.
  {
    Registry& reg = GlobalRegistry();
    std::lock_guard<std::mutex> lock(reg.mu);
    for (const ThreadBuffer* buf : reg.buffers) {
      const std::string name =
          buf->name.empty() ? "thread-" + std::to_string(buf->tid)
                            : buf->name;
      char line[256];
      std::snprintf(line, sizeof(line),
                    "%s  {\"ph\": \"M\", \"pid\": 1, \"tid\": %u, "
                    "\"name\": \"thread_name\", \"args\": {\"name\": "
                    "\"%s\"}}",
                    first ? "" : ",\n", buf->tid,
                    JsonEscape(name).c_str());
      out << line;
      first = false;
    }
  }
  for (const SpanRecord& s : spans) {
    char line[384];
    const double ts_us = static_cast<double>(s.begin_ns) / 1e3;
    const double dur_us = static_cast<double>(s.end_ns - s.begin_ns) / 1e3;
    // Optional args: ParallelFor worker index and serving request id.
    // Filtering on "req" in the viewer isolates one request's span tree.
    char args[96] = "";
    if (s.worker >= 0 && s.request != 0) {
      std::snprintf(args, sizeof(args),
                    ", \"args\": {\"worker\": %d, \"req\": %llu}", s.worker,
                    static_cast<unsigned long long>(s.request));
    } else if (s.worker >= 0) {
      std::snprintf(args, sizeof(args), ", \"args\": {\"worker\": %d}",
                    s.worker);
    } else if (s.request != 0) {
      std::snprintf(args, sizeof(args), ", \"args\": {\"req\": %llu}",
                    static_cast<unsigned long long>(s.request));
    }
    std::snprintf(line, sizeof(line),
                  "%s  {\"ph\": \"X\", \"pid\": 1, \"tid\": %u, "
                  "\"name\": \"%s\", \"ts\": %.3f, \"dur\": %.3f%s}",
                  first ? "" : ",\n", s.tid, JsonEscape(s.name).c_str(),
                  ts_us, dur_us, args);
    out << line;
    first = false;
  }
  out << "\n]}\n";
  if (const int64_t dropped = DroppedSpans()) {
    FREEHGC_LOG(Warning) << "trace export: " << dropped
                         << " spans dropped (ring buffers wrapped)";
  }
  return true;
}

void InitObservabilityFromEnv() {
  static std::once_flag once;
  std::call_once(once, [] {
    if (const char* path = std::getenv("FREEHGC_TRACE")) {
      if (*path != '\0') {
        g_trace_path = path;
        SetTracingEnabled(true);
        SetDetailedMetricsEnabled(true);
        std::atexit(WriteTraceAtExit);
      }
    }
    if (const char* path = std::getenv("FREEHGC_METRICS")) {
      if (*path != '\0') {
        g_metrics_path = path;
        SetDetailedMetricsEnabled(true);
        std::atexit(WriteMetricsAtExit);
      }
    }
  });
}

}  // namespace freehgc::obs
