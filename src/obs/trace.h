#ifndef FREEHGC_OBS_TRACE_H_
#define FREEHGC_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace freehgc::obs {

/// Scoped-span tracer.
///
/// Usage: `FREEHGC_TRACE_SPAN("spgemm");` at the top of a scope records a
/// begin/end timestamp pair attributed to the calling thread. Spans nest
/// naturally (each is an independent [begin, end] interval; viewers stack
/// them by containment). Recording goes into per-thread ring buffers, so
/// hot kernels never contend on a lock; a span costs two steady_clock
/// reads plus one ring-slot write when tracing is on, and a single relaxed
/// atomic load + branch when it is off.
///
/// Export is Chrome trace-event JSON ("X" complete events), loadable in
/// chrome://tracing or https://ui.perfetto.dev. Setting the environment
/// variable FREEHGC_TRACE=<path> (picked up by InitObservabilityFromEnv,
/// which every ExecContext constructor calls) enables tracing for the
/// whole process and writes the trace to <path> at exit.
///
/// Span names must be string literals (or otherwise outlive the process):
/// the ring buffer stores the pointer, not a copy.

namespace internal {
extern std::atomic<bool> g_tracing_enabled;
}  // namespace internal

/// Whether spans are currently being recorded.
inline bool TracingEnabled() {
  return internal::g_tracing_enabled.load(std::memory_order_relaxed);
}

/// Turns span recording on/off (process-global). Usually driven by the
/// FREEHGC_TRACE environment variable rather than called directly.
void SetTracingEnabled(bool enabled);

/// Nanoseconds on the process-global monotonic clock (origin = first
/// call, so values stay small). Also used by the exec layer's busy-time
/// accounting.
int64_t NowNs();

/// One recorded span, as returned by SnapshotSpans.
struct SpanRecord {
  const char* name;
  int64_t begin_ns;
  int64_t end_ns;
  uint64_t request;  // serving-layer request id; 0 = none
  uint32_t tid;      // stable per-thread id (registration order)
  int32_t worker;    // ParallelFor worker index, -1 when not applicable
};

namespace internal {
extern thread_local uint64_t g_current_request_id;
}  // namespace internal

/// The serving-layer request id attached to spans recorded by the
/// calling thread (0 = none). Scheduler slots set it for the duration of
/// a request body via ScopedRequestId; the Chrome-trace export emits it
/// as a "req" arg so a request's full queue-wait/eval/kernel span tree
/// is reconstructible by filtering on one id.
inline uint64_t CurrentRequestId() { return internal::g_current_request_id; }

/// RAII request-id scope (nest-safe: restores the previous id).
class ScopedRequestId {
 public:
  explicit ScopedRequestId(uint64_t id)
      : prev_(internal::g_current_request_id) {
    internal::g_current_request_id = id;
  }
  ~ScopedRequestId() { internal::g_current_request_id = prev_; }

  ScopedRequestId(const ScopedRequestId&) = delete;
  ScopedRequestId& operator=(const ScopedRequestId&) = delete;

 private:
  uint64_t prev_;
};

/// Copies every span recorded so far (all threads, oldest first per
/// thread). Intended for tests; export paths use WriteChromeTrace.
std::vector<SpanRecord> SnapshotSpans();

/// Number of spans dropped because a thread's ring buffer wrapped.
int64_t DroppedSpans();

/// Discards all recorded spans (buffers stay registered). Tests only.
void ClearTrace();

/// Labels the calling thread in the exported trace (e.g. "worker-3").
/// The thread pool calls this for its workers; the ExecContext
/// constructor labels its driving thread "main".
void SetCurrentThreadName(const std::string& name);

/// Like SetCurrentThreadName, but keeps an existing label. Used for
/// default labels ("main") that must not clobber explicit ones.
void SetCurrentThreadNameIfUnset(const std::string& name);

/// Writes the Chrome trace-event JSON file. Returns false (and logs a
/// warning) if the file cannot be written.
bool WriteChromeTrace(const std::string& path);

/// Reads FREEHGC_TRACE / FREEHGC_METRICS / FREEHGC_LOG_LEVEL once per
/// process: enables tracing and registers an at-exit Chrome-trace writer
/// when FREEHGC_TRACE=<path> is set, registers an at-exit metrics
/// DumpJson writer when FREEHGC_METRICS=<path> is set. Idempotent and
/// thread-safe; called from the ExecContext constructor so any pipeline
/// entry point arms it.
void InitObservabilityFromEnv();

/// RAII span. Prefer the FREEHGC_TRACE_SPAN macro.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, int32_t worker = -1) {
    if (TracingEnabled()) {
      name_ = name;
      worker_ = worker;
      begin_ns_ = NowNs();
    }
  }
  ~ScopedSpan() {
    if (name_ != nullptr) Record(name_, begin_ns_, NowNs(), worker_);
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  static void Record(const char* name, int64_t begin_ns, int64_t end_ns,
                     int32_t worker);

  const char* name_ = nullptr;  // nullptr => disabled at construction
  int32_t worker_ = -1;
  int64_t begin_ns_ = 0;
};

#define FREEHGC_OBS_CONCAT_INNER(a, b) a##b
#define FREEHGC_OBS_CONCAT(a, b) FREEHGC_OBS_CONCAT_INNER(a, b)

/// Records a span covering the rest of the current scope.
#define FREEHGC_TRACE_SPAN(name)    \
  ::freehgc::obs::ScopedSpan FREEHGC_OBS_CONCAT(freehgc_span_, \
                                                __LINE__)(name)

/// Same, with an explicit ParallelFor worker index attached.
#define FREEHGC_TRACE_SPAN_WORKER(name, worker) \
  ::freehgc::obs::ScopedSpan FREEHGC_OBS_CONCAT(freehgc_span_, \
                                                __LINE__)(name, worker)

}  // namespace freehgc::obs

#endif  // FREEHGC_OBS_TRACE_H_
