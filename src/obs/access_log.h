#ifndef FREEHGC_OBS_ACCESS_LOG_H_
#define FREEHGC_OBS_ACCESS_LOG_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "obs/flight_recorder.h"

namespace freehgc::obs {

/// One access-log entry: everything known about a request at its
/// terminal transition. String fields are views — the record only lives
/// for the duration of one Append call.
struct AccessRecord {
  uint64_t id = 0;
  int32_t slot = -1;  // worker slot; -1 for shed/cancelled/expired
  std::string_view graph;
  std::string_view method;
  uint64_t fingerprint = 0;
  int32_t priority = 0;
  int64_t queue_ns = 0;
  int64_t exec_ns = 0;
  int64_t total_ns = 0;
  RequestOutcome outcome = RequestOutcome::kOk;
  /// Status message for non-OK outcomes (shed/expired reason, error).
  std::string_view reason;
  bool evalctx_hit = false;
  /// Cumulative artifact/plan-cache counters at completion time
  /// (monotone across the log, so per-request deltas are recoverable by
  /// diffing consecutive entries); -1 = not annotated.
  int64_t cache_hits = -1;
  int64_t cache_misses = -1;
  int64_t plan_hits = -1;
  int64_t plan_misses = -1;
};

/// Structured JSONL access log: exactly one line per terminal request,
/// written at the transition. Lock-free by construction — each slot
/// thread formats its own line into a stack buffer and emits it with a
/// single O_APPEND write(2), which the kernel serializes at the file
/// offset, so concurrent slots never interleave bytes and there is no
/// user-space mutex to contend on (tests/telemetry_test.cc drives four
/// slots concurrently and checks line integrity).
///
/// Disabled (default-constructed / never opened) cost is one branch.
class AccessLog {
 public:
  AccessLog() = default;
  ~AccessLog();

  AccessLog(const AccessLog&) = delete;
  AccessLog& operator=(const AccessLog&) = delete;

  /// Opens (creates or appends to) the log file.
  Status Open(const std::string& path);
  void Close();

  bool enabled() const { return fd_ >= 0; }

  /// Formats and appends one line; no-op when not enabled.
  void Append(const AccessRecord& rec);

  int64_t lines_written() const {
    return lines_.load(std::memory_order_relaxed);
  }

  /// The line format, exposed for golden tests (no trailing newline).
  static std::string FormatLine(const AccessRecord& rec);

 private:
  int fd_ = -1;
  std::atomic<int64_t> lines_{0};
};

}  // namespace freehgc::obs

#endif  // FREEHGC_OBS_ACCESS_LOG_H_
