#include "obs/access_log.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "common/string_util.h"

namespace freehgc::obs {

namespace {

/// JSON string escaping for the free-form fields (graph/method names and
/// status messages can carry quotes or control characters).
void AppendEscaped(std::string& out, std::string_view s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
}

}  // namespace

AccessLog::~AccessLog() { Close(); }

Status AccessLog::Open(const std::string& path) {
  Close();
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::InvalidArgument(StrFormat(
        "cannot open access log %s: %s", path.c_str(), std::strerror(errno)));
  }
  fd_ = fd;
  return Status::OK();
}

void AccessLog::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::string AccessLog::FormatLine(const AccessRecord& rec) {
  std::string out;
  out.reserve(320);
  char buf[192];
  std::snprintf(buf, sizeof(buf), "{\"id\": %" PRIu64 ", \"slot\": %d, ",
                rec.id, rec.slot);
  out += buf;
  out += "\"graph\": \"";
  AppendEscaped(out, rec.graph);
  out += "\", \"method\": \"";
  AppendEscaped(out, rec.method);
  std::snprintf(buf, sizeof(buf),
                "\", \"fingerprint\": \"%016" PRIx64 "\", \"priority\": %d, "
                "\"queue_ns\": %" PRId64 ", \"exec_ns\": %" PRId64 ", "
                "\"total_ns\": %" PRId64 ", ",
                rec.fingerprint, rec.priority, rec.queue_ns, rec.exec_ns,
                rec.total_ns);
  out += buf;
  out += "\"outcome\": \"";
  out += OutcomeName(rec.outcome);
  out += "\", \"reason\": \"";
  AppendEscaped(out, rec.reason);
  std::snprintf(buf, sizeof(buf),
                "\", \"evalctx_hit\": %s, \"cache\": {\"hits\": %" PRId64
                ", \"misses\": %" PRId64 ", \"plan_hits\": %" PRId64
                ", \"plan_misses\": %" PRId64 "}}",
                rec.evalctx_hit ? "true" : "false", rec.cache_hits,
                rec.cache_misses, rec.plan_hits, rec.plan_misses);
  out += buf;
  return out;
}

void AccessLog::Append(const AccessRecord& rec) {
  if (fd_ < 0) return;
  std::string line = FormatLine(rec);
  line += '\n';
  // One write per line: O_APPEND makes the offset update atomic, so
  // concurrent slot threads emit whole lines in some order, never
  // interleaved bytes. Short writes do not happen for regular files of
  // this size; EINTR is retried.
  const char* data = line.data();
  size_t n = line.size();
  while (n > 0) {
    const ssize_t w = ::write(fd_, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return;  // logging must never fail the request path
    }
    data += w;
    n -= static_cast<size_t>(w);
  }
  lines_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace freehgc::obs
