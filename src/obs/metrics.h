#ifndef FREEHGC_OBS_METRICS_H_
#define FREEHGC_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace freehgc::obs {

/// Always-on metrics registry: named counters, gauges and histograms the
/// kernels bump as they run, snapshotted as JSON by the bench harnesses
/// (and by FREEHGC_METRICS=<path> at process exit).
///
/// Determinism note: *value* metrics (flop counts, output nnz, chunks
/// executed, rows truncated, epochs run) are integer sums of per-chunk
/// contributions whose chunk layout is thread-count independent, so they
/// are bit-identical at every worker count — tests/obs_test.cc enforces
/// this. *Timing* metrics (names ending in `_ns`) measure the schedule
/// itself and naturally vary run to run.
///
/// Instrumentation sites should cache the reference once:
///   static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
///       "spgemm.flops");
/// after which each update is a single relaxed atomic add.

namespace internal {
extern std::atomic<bool> g_detailed_metrics;
}  // namespace internal

/// Whether per-invoke execution metrics (the whole exec.* family:
/// parallel-for calls/chunks, worker busy/idle `_ns` counters, workspace
/// high-water-mark) are being collected. Kernel-level value metrics
/// (flops, nnz, epochs, ...) are always on — they amortize over real
/// work — but the exec.* ones cost a clock read and a counter call per
/// ParallelFor invoke, which tight iterative kernels (e.g. PPR's
/// per-iteration SpMV) can feel, so they are armed only when
/// observability is requested: FREEHGC_TRACE / FREEHGC_METRICS in the
/// environment, or an explicit SetDetailedMetricsEnabled(true).
inline bool DetailedMetricsEnabled() {
  return internal::g_detailed_metrics.load(std::memory_order_relaxed);
}

/// Turns detailed (timing) metric collection on/off, process-global.
void SetDetailedMetricsEnabled(bool enabled);

/// Monotonic additive counter.
class Counter {
 public:
  void Add(int64_t delta) { v_.fetch_add(delta, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Last-value / high-water-mark gauge.
class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }

  /// Raises the gauge to `v` if larger (lock-free max).
  void UpdateMax(int64_t v) {
    int64_t cur = v_.load(std::memory_order_relaxed);
    while (v > cur &&
           !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  int64_t Value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Power-of-two-bucketed histogram of non-negative int64 samples: bucket
/// b counts values v with 2^(b-1) <= v < 2^b (bucket 0 counts v <= 0...1
/// boundary, see BucketIndex). Tracks count and sum exactly.
class Histogram {
 public:
  static constexpr int kBuckets = 63;

  void Observe(int64_t v) {
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    buckets_[static_cast<size_t>(BucketIndex(v))].fetch_add(
        1, std::memory_order_relaxed);
  }

  int64_t Count() const { return count_.load(std::memory_order_relaxed); }
  int64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  int64_t BucketCount(int b) const {
    return buckets_[static_cast<size_t>(b)].load(std::memory_order_relaxed);
  }

  void Reset() {
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  }

  /// Approximate q-quantile (q in [0, 1]) from the bucket counts: finds
  /// the bucket holding the q-th sample and interpolates linearly inside
  /// it, so the error is bounded by the bucket width (a factor of two).
  /// Returns 0 for an empty histogram. Serving-layer latency summaries
  /// (p50/p95/p99 at shutdown) are the primary consumer; exact
  /// percentiles, where needed, come from raw samples (bench_serve_load).
  int64_t ApproxQuantile(double q) const;

  /// Bucket for value v: 0 for v <= 1, otherwise floor(log2(v - 1)) + 1,
  /// clamped to the last bucket.
  static int BucketIndex(int64_t v) {
    if (v <= 1) return 0;
    int b = 1;
    uint64_t x = static_cast<uint64_t>(v - 1);
    while (x >>= 1) ++b;
    return b < kBuckets ? b : kBuckets - 1;
  }

  /// Adds a pre-aggregated batch (used by LocalHistogram::FlushTo so hot
  /// loops pay one set of atomic adds per chunk, not per sample).
  void AddBatch(int64_t count, int64_t sum,
                const std::array<int64_t, kBuckets>& buckets) {
    if (count == 0) return;
    count_.fetch_add(count, std::memory_order_relaxed);
    sum_.fetch_add(sum, std::memory_order_relaxed);
    for (int b = 0; b < kBuckets; ++b) {
      if (buckets[static_cast<size_t>(b)] != 0) {
        buckets_[static_cast<size_t>(b)].fetch_add(
            buckets[static_cast<size_t>(b)], std::memory_order_relaxed);
      }
    }
  }

 private:
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
  std::array<std::atomic<int64_t>, kBuckets> buckets_{};
};

/// Chunk-local histogram accumulator: plain integer bumps per sample,
/// one batched atomic flush at chunk end. Per-chunk-then-flush keeps the
/// shared Histogram's totals deterministic (integer sums) and removes
/// per-sample cache-line traffic from hot loops:
///   obs::LocalHistogram local;
///   for (...) local.Observe(v);
///   local.FlushTo(shared_hist);
class LocalHistogram {
 public:
  void Observe(int64_t v) {
    ++count_;
    sum_ += v;
    ++buckets_[static_cast<size_t>(Histogram::BucketIndex(v))];
  }

  void FlushTo(Histogram& h) const { h.AddBatch(count_, sum_, buckets_); }

 private:
  int64_t count_ = 0;
  int64_t sum_ = 0;
  std::array<int64_t, Histogram::kBuckets> buckets_{};
};

/// Name -> metric map. Lookup takes a mutex; the returned references are
/// stable for the registry's lifetime, so call sites cache them in
/// function-local statics. Names are dot-separated (`layer.metric`, e.g.
/// "spgemm.flops", "exec.chunks").
class MetricsRegistry {
 public:
  /// Process-wide registry (leaked singleton; safe in at-exit hooks).
  static MetricsRegistry& Global();

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  /// JSON snapshot:
  ///   {"counters": {...}, "gauges": {...},
  ///    "histograms": {name: {"count": c, "sum": s,
  ///                          "buckets": [[upper_bound, count], ...]}}}
  /// Keys are sorted (std::map), so the output is stable. Histograms list
  /// only non-empty buckets.
  std::string DumpJson() const;

  /// Zeroes every registered metric (registrations persist). Tests and
  /// repeated bench sections use this to scope snapshots.
  void ResetAll();

  /// Visits every registered metric in name order, holding the registry
  /// mutex (callbacks must not call back into the registry). The
  /// Prometheus exposition writer (obs/exposition.h) is the consumer.
  void Visit(
      const std::function<void(const std::string&, const Counter&)>& counter,
      const std::function<void(const std::string&, const Gauge&)>& gauge,
      const std::function<void(const std::string&, const Histogram&)>&
          histogram) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace freehgc::obs

#endif  // FREEHGC_OBS_METRICS_H_
