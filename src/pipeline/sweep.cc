#include "pipeline/sweep.h"

#include <algorithm>
#include <utility>

#include "common/string_util.h"
#include "common/table.h"
#include "common/timer.h"
#include "datasets/generator.h"

namespace freehgc::pipeline {

hgnn::HgnnConfig SweepSpec::DefaultEvalConfig() {
  hgnn::HgnnConfig cfg;
  cfg.kind = hgnn::HgnnKind::kSeHGNN;  // test model of the paper
  cfg.hidden = 32;
  cfg.epochs = 60;
  cfg.patience = 0;
  return cfg;
}

double DefaultDatasetScale(const std::string& name) {
  return name == "aminer" ? 0.5 : 1.0;
}

const SweepCell* SweepResult::Find(const std::string& dataset, double ratio,
                                   const std::string& method,
                                   const std::string& model) const {
  for (const SweepCell& c : cells) {
    if (c.dataset == dataset && c.ratio == ratio && c.method == method &&
        c.model == model) {
      return &c;
    }
  }
  return nullptr;
}

const WholeCell* SweepResult::FindWhole(const std::string& dataset,
                                        const std::string& model) const {
  for (const WholeCell& w : wholes) {
    if (w.dataset == dataset && w.model == model) return &w;
  }
  return nullptr;
}

std::string SweepResult::ToJson() const {
  std::string json = "{\n  \"cells\": [";
  for (size_t i = 0; i < cells.size(); ++i) {
    const SweepCell& c = cells[i];
    json += StrFormat(
        "%s\n    {\"dataset\": \"%s\", \"ratio\": %.6f, \"method\": \"%s\", "
        "\"model\": \"%s\", \"oom\": %s, \"accuracy_mean\": %.6f, "
        "\"accuracy_std\": %.6f, \"storage_bytes\": %zu}",
        i == 0 ? "" : ",", JsonEscape(c.dataset).c_str(), c.ratio,
        JsonEscape(c.method).c_str(), JsonEscape(c.model).c_str(),
        c.agg.oom ? "true" : "false", c.agg.accuracy.mean,
        c.agg.accuracy.std, c.agg.storage_bytes);
  }
  json += "\n  ],\n  \"whole\": [";
  for (size_t i = 0; i < wholes.size(); ++i) {
    const WholeCell& w = wholes[i];
    json += StrFormat(
        "%s\n    {\"dataset\": \"%s\", \"model\": \"%s\", "
        "\"accuracy\": %.6f, \"macro_f1\": %.6f}",
        i == 0 ? "" : ",", JsonEscape(w.dataset).c_str(),
        JsonEscape(w.model).c_str(), 100.0f * w.metrics.test_accuracy,
        100.0f * w.metrics.macro_f1);
  }
  json += "\n  ],\n  \"timing\": {\n    \"total_seconds\": " +
          StrFormat("%.6f", total_seconds) +
          ",\n    \"threads\": " + StrFormat("%d", threads) +
          ",\n    \"cells\": [";
  for (size_t i = 0; i < cells.size(); ++i) {
    const SweepCell& c = cells[i];
    json += StrFormat(
        "%s\n      {\"dataset\": \"%s\", \"ratio\": %.6f, "
        "\"method\": \"%s\", \"model\": \"%s\", \"wall_seconds\": %.6f, "
        "\"mean_condense_seconds\": %.6f, \"mean_train_seconds\": %.6f}",
        i == 0 ? "" : ",", JsonEscape(c.dataset).c_str(), c.ratio,
        JsonEscape(c.method).c_str(), JsonEscape(c.model).c_str(),
        c.wall_seconds, c.agg.mean_condense_seconds,
        c.agg.mean_train_seconds);
  }
  json += StrFormat(
      "\n    ]\n  },\n  \"cache\": {\"hits\": %lld, \"misses\": %lld, "
      "\"bytes\": %zu}\n}\n",
      static_cast<long long>(cache_stats.hits),
      static_cast<long long>(cache_stats.misses), cache_stats.bytes);
  return json;
}

SweepRunner::SweepRunner(SweepSpec spec, PipelineEnv env)
    : spec_(std::move(spec)), env_(env) {}

ArtifactCache* SweepRunner::cache() {
  if (env_.cache != nullptr) return env_.cache;
  if (!spec_.use_cache) return nullptr;
  if (owned_cache_ == nullptr) {
    owned_cache_ = std::make_unique<ArtifactCache>();
  }
  return owned_cache_.get();
}

Result<SweepResult> SweepRunner::Run() {
  exec::ExecContext& ex = exec::Resolve(env_.exec);
  ArtifactCache* cache = this->cache();

  SweepResult out;
  out.threads = ex.num_threads();
  const ArtifactCache::Stats before =
      cache != nullptr ? cache->stats() : ArtifactCache::Stats{};
  Timer total;

  PipelineEnv cell_env;
  cell_env.exec = &ex;
  cell_env.cache = cache;

  for (const DatasetSpec& ds : spec_.datasets) {
    const double scale =
        ds.scale > 0 ? ds.scale : DefaultDatasetScale(ds.name);
    FREEHGC_ASSIGN_OR_RETURN(
        HeteroGraph graph,
        datasets::MakeByName(ds.name, ds.graph_seed, scale, &ex));

    hgnn::PropagateOptions popts;
    popts.max_hops = ds.max_hops > 0
                         ? ds.max_hops
                         : std::min(3, datasets::RecommendedHops(ds.name));
    popts.max_paths = ds.max_paths;

    hgnn::EvalContext ctx;
    if (cache != nullptr) {
      // Same construction as hgnn::BuildEvalContext, but the propagated
      // feature blocks come from (and land in) the sweep's cache, so a
      // repeated sweep skips even the dense propagation.
      ctx.full = &graph;
      ctx.options = popts;
      MetaPathOptions mp_opts;
      mp_opts.max_hops = popts.max_hops;
      mp_opts.max_paths = popts.max_paths;
      mp_opts.max_row_nnz = popts.max_row_nnz;
      ctx.paths = EnumerateMetaPaths(graph, graph.target_type(), mp_opts);
      ctx.full_features =
          *cache->Propagated(graph, ctx.paths, popts.max_row_nnz, &ex);
    } else {
      ctx = hgnn::BuildEvalContext(graph, popts, &ex, nullptr);
    }

    for (hgnn::HgnnKind model : spec_.models) {
      hgnn::HgnnConfig cfg = spec_.eval_cfg;
      cfg.kind = model;

      if (spec_.whole_graph_baseline) {
        WholeCell whole;
        whole.dataset = ds.name;
        whole.model = hgnn::HgnnKindName(model);
        whole.metrics = cache != nullptr
                            ? cache->WholeGraphBaseline(ctx, cfg, &ex)
                            : hgnn::WholeGraphBaseline(ctx, cfg, &ex);
        out.wholes.push_back(std::move(whole));
      }

      for (double ratio : ds.ratios) {
        RunSpec spec = spec_.base;
        spec.ratio = ratio;
        for (const std::string& method : spec_.methods) {
          SweepCell cell;
          cell.dataset = ds.name;
          cell.ratio = ratio;
          cell.method = method;
          cell.model = hgnn::HgnnKindName(model);
          Timer wall;
          cell.agg =
              RunMethodSeeds(ctx, method, spec, cfg, spec_.seeds, cell_env);
          cell.wall_seconds = wall.ElapsedSeconds();
          out.cells.push_back(std::move(cell));
        }
      }
    }
  }

  out.total_seconds = total.ElapsedSeconds();
  if (cache != nullptr) {
    const ArtifactCache::Stats after = cache->stats();
    out.cache_stats.hits = after.hits - before.hits;
    out.cache_stats.misses = after.misses - before.misses;
    out.cache_stats.bytes = after.bytes;
  }
  return out;
}

namespace {

std::string DisplayName(const std::string& key) {
  const CondensationMethod* m = MethodRegistry::Global().Find(key);
  return m != nullptr ? m->display_name() : key;
}

std::string CellText(const SweepCell* cell) {
  if (cell == nullptr) return "-";
  if (cell->agg.oom) return "OOM";
  return Cell(cell->agg.accuracy);
}

}  // namespace

void PrintRatioTables(const SweepResult& result, const SweepSpec& spec) {
  for (const DatasetSpec& ds : spec.datasets) {
    for (hgnn::HgnnKind model : spec.models) {
      const std::string model_name = hgnn::HgnnKindName(model);
      std::vector<std::string> headers = {"Dataset", "Ratio (r)"};
      for (const std::string& method : spec.methods) {
        headers.push_back(DisplayName(method));
      }
      const WholeCell* whole = result.FindWhole(ds.name, model_name);
      if (whole != nullptr) headers.push_back("Whole Dataset");
      TablePrinter table(std::move(headers));
      for (double ratio : ds.ratios) {
        std::vector<std::string> row = {ds.name,
                                        StrFormat("%.1f%%", 100.0 * ratio)};
        for (const std::string& method : spec.methods) {
          row.push_back(
              CellText(result.Find(ds.name, ratio, method, model_name)));
        }
        if (whole != nullptr) {
          row.push_back(
              StrFormat("%.2f", 100.0f * whole->metrics.test_accuracy));
        }
        table.AddRow(std::move(row));
      }
      table.Print();
    }
  }
}

void PrintModelTables(const SweepResult& result, const SweepSpec& spec,
                      double ratio) {
  for (const DatasetSpec& ds : spec.datasets) {
    double whole_sum = 0.0;
    int whole_count = 0;
    for (hgnn::HgnnKind model : spec.models) {
      const WholeCell* whole =
          result.FindWhole(ds.name, hgnn::HgnnKindName(model));
      if (whole != nullptr) {
        whole_sum += 100.0f * whole->metrics.test_accuracy;
        ++whole_count;
      }
    }

    std::vector<std::string> headers = {
        ds.name + StrFormat(" r=%.1f%%", 100.0 * ratio)};
    for (hgnn::HgnnKind model : spec.models) {
      headers.push_back(hgnn::HgnnKindName(model));
    }
    headers.push_back("Condensed Avg.");
    if (whole_count > 0) headers.push_back("Whole Avg.");
    TablePrinter table(std::move(headers));

    for (const std::string& method : spec.methods) {
      std::vector<std::string> row = {DisplayName(method)};
      double sum = 0.0;
      for (hgnn::HgnnKind model : spec.models) {
        const SweepCell* cell =
            result.Find(ds.name, ratio, method, hgnn::HgnnKindName(model));
        row.push_back(CellText(cell));
        if (cell != nullptr && !cell->agg.oom) {
          sum += cell->agg.accuracy.mean;
        }
      }
      row.push_back(StrFormat(
          "%.2f", sum / static_cast<double>(spec.models.size())));
      if (whole_count > 0) {
        row.push_back(
            StrFormat("%.2f", whole_sum / static_cast<double>(whole_count)));
      }
      table.AddRow(std::move(row));
    }
    table.Print();
  }
}

}  // namespace freehgc::pipeline
