#include "pipeline/method.h"

#include <cmath>
#include <map>
#include <mutex>
#include <utility>

#include "baselines/coarsening.h"
#include "baselines/coreset.h"
#include "common/string_util.h"

namespace freehgc::pipeline {

namespace {

/// Random-HG / Herding-HG / K-Center-HG (the coreset family).
class CoresetMethod final : public CondensationMethod {
 public:
  CoresetMethod(baselines::CoresetKind kind, std::string key,
                std::string display)
      : kind_(kind), key_(std::move(key)), display_(std::move(display)) {}

  const std::string& key() const override { return key_; }
  const std::string& display_name() const override { return display_; }

  Result<CondensedData> Condense(const hgnn::EvalContext& ctx,
                                 const RunSpec& spec,
                                 const PipelineEnv& env) const override {
    FREEHGC_ASSIGN_OR_RETURN(
        baselines::BaselineResult res,
        baselines::CoresetCondense(ctx, kind_, spec.ratio, spec.seed,
                                   env.exec));
    CondensedData out;
    out.graph = std::move(res.graph);
    out.seconds = res.seconds;
    out.storage_bytes = out.graph.MemoryBytes();
    return out;
  }

 private:
  baselines::CoresetKind kind_;
  std::string key_;
  std::string display_;
};

/// Coarsening-HG (variation-neighborhoods-style coarsener).
class CoarseningMethod final : public CondensationMethod {
 public:
  const std::string& key() const override {
    static const std::string k = "coarsening";
    return k;
  }
  const std::string& display_name() const override {
    static const std::string n = "Coarsening-HG";
    return n;
  }

  Result<CondensedData> Condense(const hgnn::EvalContext& ctx,
                                 const RunSpec& spec,
                                 const PipelineEnv& env) const override {
    FREEHGC_ASSIGN_OR_RETURN(
        baselines::BaselineResult res,
        baselines::CoarseningCondense(*ctx.full, spec.ratio,
                                      spec.coarsening_rounds, spec.seed,
                                      env.exec));
    CondensedData out;
    out.graph = std::move(res.graph);
    out.seconds = res.seconds;
    out.storage_bytes = out.graph.MemoryBytes();
    return out;
  }
};

/// GCond / HGCond (the gradient-matching family; synthetic output).
class GradientMatchingMethod final : public CondensationMethod {
 public:
  GradientMatchingMethod(bool hetero, std::string key, std::string display)
      : hetero_(hetero), key_(std::move(key)), display_(std::move(display)) {}

  const std::string& key() const override { return key_; }
  const std::string& display_name() const override { return display_; }

  Result<CondensedData> Condense(const hgnn::EvalContext& ctx,
                                 const RunSpec& spec,
                                 const PipelineEnv& env) const override {
    baselines::GradientMatchingOptions gm = spec.gm;
    gm.ratio = spec.ratio;
    gm.seed = spec.seed;
    gm.hetero = hetero_;
    if (hetero_) {
      // HGCond's extra machinery: more relay explorations and inner
      // steps (OPS + clustering are switched on by `hetero`).
      gm.relay_inits = spec.gm.relay_inits + 2;
      gm.inner_iters = spec.gm.inner_iters + 2;
      gm.memory_budget_bytes = 0;  // sparse scheme: no dense-adjacency gate
    }
    FREEHGC_ASSIGN_OR_RETURN(
        baselines::SyntheticData res,
        baselines::GradientMatchingCondense(ctx, gm, env.exec));
    CondensedData out;
    out.synthetic = true;
    out.seconds = res.seconds;
    out.storage_bytes = res.MemoryBytes();
    out.blocks = std::move(res.blocks);
    out.labels = std::move(res.labels);
    return out;
  }

 private:
  bool hetero_;
  std::string key_;
  std::string display_;
};

/// FreeHGC (the paper's training-free condenser).
class FreeHgcMethod final : public CondensationMethod {
 public:
  const std::string& key() const override {
    static const std::string k = "freehgc";
    return k;
  }
  const std::string& display_name() const override {
    static const std::string n = "FreeHGC";
    return n;
  }

  Result<CondensedData> Condense(const hgnn::EvalContext& ctx,
                                 const RunSpec& spec,
                                 const PipelineEnv& env) const override {
    core::FreeHgcOptions fopts = spec.freehgc;
    fopts.ratio = spec.ratio;
    fopts.seed = spec.seed;
    fopts.max_hops = ctx.options.max_hops;
    fopts.max_paths = ctx.options.max_paths;
    fopts.max_row_nnz = ctx.options.max_row_nnz;
    FREEHGC_ASSIGN_OR_RETURN(
        core::CondensedResult res,
        core::Condense(*ctx.full, fopts, env.exec, env.cache));
    CondensedData out;
    out.graph = std::move(res.graph);
    out.seconds = res.seconds;
    out.storage_bytes = out.graph.MemoryBytes();
    return out;
  }
};

}  // namespace

struct MethodRegistry::Impl {
  mutable std::mutex mu;
  std::map<std::string, std::unique_ptr<CondensationMethod>> methods;
};

MethodRegistry::MethodRegistry() : impl_(std::make_unique<Impl>()) {}

MethodRegistry& MethodRegistry::Global() {
  // Leaked singleton (same idiom as MetricsRegistry), pre-populated with
  // the seven paper methods.
  static MethodRegistry* registry = [] {
    auto* r = new MethodRegistry();
    r->Register(std::make_unique<CoresetMethod>(
        baselines::CoresetKind::kRandom, "random", "Random-HG"));
    r->Register(std::make_unique<CoresetMethod>(
        baselines::CoresetKind::kHerding, "herding", "Herding-HG"));
    r->Register(std::make_unique<CoresetMethod>(
        baselines::CoresetKind::kKCenter, "kcenter", "K-Center-HG"));
    r->Register(std::make_unique<CoarseningMethod>());
    r->Register(
        std::make_unique<GradientMatchingMethod>(false, "gcond", "GCond"));
    r->Register(
        std::make_unique<GradientMatchingMethod>(true, "hgcond", "HGCond"));
    r->Register(std::make_unique<FreeHgcMethod>());
    return r;
  }();
  return *registry;
}

void MethodRegistry::Register(std::unique_ptr<CondensationMethod> method) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->methods[method->key()] = std::move(method);
}

const CondensationMethod* MethodRegistry::Find(const std::string& key) const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->methods.find(key);
  return it == impl_->methods.end() ? nullptr : it->second.get();
}

Result<const CondensationMethod*> MethodRegistry::FindOrError(
    const std::string& key) const {
  const CondensationMethod* method = Find(key);
  if (method == nullptr) {
    return Status::NotFound(StrFormat(
        "no condensation method registered as '%s' (registered: %s)",
        key.c_str(), Join(Keys(), ", ").c_str()));
  }
  return method;
}

std::vector<std::string> MethodRegistry::Keys() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  std::vector<std::string> keys;
  keys.reserve(impl_->methods.size());
  for (const auto& [key, method] : impl_->methods) keys.push_back(key);
  return keys;
}

void ApplyEvalMetrics(const hgnn::EvalMetrics& metrics, MethodRun& out) {
  out.accuracy = metrics.test_accuracy * 100.0f;
  out.macro_f1 = metrics.macro_f1 * 100.0f;
  out.train_seconds = metrics.train_seconds;
}

Result<MethodRun> RunMethod(const hgnn::EvalContext& ctx,
                            const std::string& key, const RunSpec& spec,
                            const hgnn::HgnnConfig& eval_cfg,
                            const PipelineEnv& env) {
  FREEHGC_ASSIGN_OR_RETURN(const CondensationMethod* method,
                           MethodRegistry::Global().FindOrError(key));
  MethodRun out;
  auto data = method->Condense(ctx, spec, env);
  if (!data.ok()) {
    if (data.status().code() == StatusCode::kResourceExhausted) {
      out.oom = true;
      return out;
    }
    return data.status();
  }
  out.condense_seconds = data->seconds;
  out.storage_bytes = data->storage_bytes;

  hgnn::HgnnConfig cfg = eval_cfg;
  cfg.seed = spec.seed ^ 0xeea1ULL;
  if (data->synthetic) {
    ApplyEvalMetrics(
        hgnn::TrainOnBlocks(ctx, data->blocks, data->labels, cfg), out);
  } else {
    ApplyEvalMetrics(
        hgnn::TrainAndEvaluate(ctx, data->graph, cfg, env.exec), out);
  }
  return out;
}

MeanStd Aggregate(const std::vector<double>& values) {
  MeanStd out;
  if (values.empty()) return out;
  double sum = 0.0;
  for (double v : values) sum += v;
  out.mean = sum / static_cast<double>(values.size());
  if (values.size() > 1) {
    double sq = 0.0;
    for (double v : values) sq += (v - out.mean) * (v - out.mean);
    out.std = std::sqrt(sq / static_cast<double>(values.size() - 1));
  }
  return out;
}

AggregatedRun RunMethodSeeds(const hgnn::EvalContext& ctx,
                             const std::string& key, RunSpec spec,
                             const hgnn::HgnnConfig& eval_cfg,
                             const std::vector<uint64_t>& seeds,
                             const PipelineEnv& env) {
  AggregatedRun out;
  std::vector<double> accs;
  double condense = 0.0, train = 0.0;
  for (uint64_t seed : seeds) {
    spec.seed = seed;
    auto res = RunMethod(ctx, key, spec, eval_cfg, env);
    if (!res.ok()) continue;
    if (res->oom) {
      out.oom = true;
      continue;
    }
    accs.push_back(res->accuracy);
    condense += res->condense_seconds;
    train += res->train_seconds;
    out.storage_bytes = res->storage_bytes;
  }
  if (accs.empty()) {
    out.oom = true;
    return out;
  }
  out.accuracy = Aggregate(accs);
  out.mean_condense_seconds = condense / static_cast<double>(accs.size());
  out.mean_train_seconds = train / static_cast<double>(accs.size());
  return out;
}

std::string Cell(const MeanStd& m) {
  return StrFormat("%.2f ± %.2f", m.mean, m.std);
}

}  // namespace freehgc::pipeline
