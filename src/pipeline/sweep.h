#ifndef FREEHGC_PIPELINE_SWEEP_H_
#define FREEHGC_PIPELINE_SWEEP_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "hgnn/models.h"
#include "pipeline/artifact_cache.h"
#include "pipeline/method.h"

namespace freehgc::pipeline {

/// One dataset of a sweep grid: a preset name plus the ratios to condense
/// it at and the evaluation-context knobs the benches vary.
struct DatasetSpec {
  std::string name;
  std::vector<double> ratios;
  /// Preset scale; <= 0 = the repo default (AMiner halved, rest 1.0).
  double scale = -1.0;
  /// Cap on enumerated meta-paths.
  int max_paths = 12;
  /// Meta-path hops; <= 0 = min(3, datasets::RecommendedHops(name)).
  int max_hops = -1;
  /// Generator seed (fixed across the grid: the test graph never changes).
  uint64_t graph_seed = 1;
};

/// Declarative sweep grid: dataset × ratio × method × model, each cell
/// aggregated over `seeds`. The benches are thin configurations of this.
struct SweepSpec {
  std::vector<DatasetSpec> datasets;
  /// Registry keys ("random", "herding", ..., "freehgc").
  std::vector<std::string> methods;
  std::vector<uint64_t> seeds = {1, 2, 3};
  /// Evaluator models; the eval config's kind is overridden per model.
  std::vector<hgnn::HgnnKind> models = {hgnn::HgnnKind::kSeHGNN};
  /// Also train-and-test on the whole graph, once per (dataset, model).
  bool whole_graph_baseline = false;
  /// Per-cell knobs; ratio and seed are overwritten by the grid.
  RunSpec base;
  /// Evaluator config shared by every cell (kind overridden per model).
  /// Defaults mirror the bench harnesses: SeHGNN, hidden 32, 60 epochs.
  hgnn::HgnnConfig eval_cfg = DefaultEvalConfig();
  /// When no external cache is supplied via PipelineEnv, whether the
  /// runner creates its own ArtifactCache (false = run fully uncached —
  /// the determinism tests compare this against a cached run).
  bool use_cache = true;

  static hgnn::HgnnConfig DefaultEvalConfig();
};

/// One aggregated grid cell.
struct SweepCell {
  std::string dataset;
  double ratio = 0.0;
  std::string method;  // registry key
  std::string model;   // HgnnKindName
  AggregatedRun agg;
  /// End-to-end wall-clock of the cell (all seeds: condense + train).
  double wall_seconds = 0.0;
};

/// Whole-graph baseline for one (dataset, model).
struct WholeCell {
  std::string dataset;
  std::string model;
  hgnn::EvalMetrics metrics;
};

/// Grid output plus the sweep-wide cache/timing record.
struct SweepResult {
  std::vector<SweepCell> cells;
  std::vector<WholeCell> wholes;
  /// Cache activity during this sweep (delta when an external cache was
  /// passed in; all-zero for uncached runs).
  ArtifactCache::Stats cache_stats;
  double total_seconds = 0.0;
  int threads = 0;

  /// Null when the cell is not in the grid. Matches ratio exactly (cells
  /// carry the spec's ratio values verbatim).
  const SweepCell* Find(const std::string& dataset, double ratio,
                        const std::string& method,
                        const std::string& model) const;
  const WholeCell* FindWhole(const std::string& dataset,
                             const std::string& model) const;

  /// Machine-readable record. The "cells"/"whole" sections contain only
  /// deterministic values (accuracies, storage, oom flags) — cached vs
  /// uncached and cold vs warm runs produce them byte-identically, which
  /// the CI cold/warm step diffs. Wall-clock and cache activity live in
  /// the separate "timing"/"cache" sections.
  std::string ToJson() const;
};

/// Executes a SweepSpec over one shared execution context and artifact
/// cache. Deterministic iteration order: dataset, then model, then ratio,
/// then method, then seeds; every cell value is bit-identical for any
/// thread count and for cached vs uncached execution.
class SweepRunner {
 public:
  /// `env.exec` null = process-default pool; `env.cache` null = the runner
  /// makes its own cache (or none, when !spec.use_cache). The runner keeps
  /// its own cache across Run() calls, so repeated Run()s warm-start.
  explicit SweepRunner(SweepSpec spec, PipelineEnv env = {});

  Result<SweepResult> Run();

  const SweepSpec& spec() const { return spec_; }

  /// The cache Run() uses (owned or external); null when uncached.
  ArtifactCache* cache();

 private:
  SweepSpec spec_;
  PipelineEnv env_;
  std::unique_ptr<ArtifactCache> owned_cache_;
};

/// Repo-default dataset scale (AMiner halved to fit the 1-core budget).
double DefaultDatasetScale(const std::string& name);

/// Prints one paper-style table per (dataset, model): rows are ratios,
/// columns are method display names, plus a Whole Dataset column when the
/// sweep ran baselines (the Table III / Fig. 7 shape).
void PrintRatioTables(const SweepResult& result, const SweepSpec& spec);

/// Prints one table per dataset at `ratio`: rows are methods, columns are
/// models plus Condensed Avg. (and Whole Avg. when baselines ran) — the
/// Table IV generalization shape.
void PrintModelTables(const SweepResult& result, const SweepSpec& spec,
                      double ratio);

}  // namespace freehgc::pipeline

#endif  // FREEHGC_PIPELINE_SWEEP_H_
