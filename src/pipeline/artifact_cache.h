#ifndef FREEHGC_PIPELINE_ARTIFACT_CACHE_H_
#define FREEHGC_PIPELINE_ARTIFACT_CACHE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "exec/exec_context.h"
#include "graph/hetero_graph.h"
#include "hgnn/models.h"
#include "hgnn/propagate.h"
#include "hgnn/trainer.h"
#include "metapath/metapath.h"
#include "sparse/ops.h"

namespace freehgc::pipeline {

/// Tiered cache of the deterministic, seed/ratio-independent artifacts a
/// sweep (or a serving process) recomputes per cell today: composed
/// meta-path adjacencies (the dominant SpGEMM cost of both condensation
/// and evaluation-context building), whole-graph pre-propagated feature
/// blocks, and whole-graph training baselines.
///
/// Keying: every entry is keyed by the graph's 64-bit ContentFingerprint
/// plus the computation's parameters (path signature + max_row_nnz for
/// adjacencies; path-list signature for propagation; HgnnConfig signature
/// for baselines). A changed graph changes its fingerprint, so stale
/// entries are unreachable rather than invalidated. Determinism
/// invariant: every cached value is the exact output of a deterministic
/// computation, so cached and uncached runs are bit-identical
/// (tests/pipeline_test.cc) — and so are spilled-and-restored runs
/// (tests/spill_test.cc).
///
/// Tiers: by default (no ConfigureSpill) the cache is the classic
/// grow-only heap memo — nothing is ever evicted. With ConfigureSpill it
/// becomes two-tier: a *resident* tier of owned entries accounted by
/// their heap bytes, and a *spill* tier of section spool files
/// (graph/section_io.h) under `spill_dir`. When resident bytes exceed
/// `resident_bytes_budget`, cold unpinned entries are written to spool
/// files (LRU first) and their heap storage dropped; a later lookup
/// restores them as zero-copy mapped views — bit-identical, and costing
/// ~0 heap, so restored entries never need evicting again. Under a
/// finite budget, propagated-feature misses are *streamed*: each block
/// is spooled to disk as it is computed, so the whole PropagatedFeatures
/// never materializes on the heap at once.
///
/// Pinning: Composed/Propagated return shared_ptr pins. A pinned entry
/// (use_count > 1) is never spilled; eviction considers it once every
/// outside pin is released. Callers hold the pin across every use of the
/// value and drop it when done (see metapath::AdjacencyCache).
///
/// Thread-safe. Hit/miss/bytes are mirrored into the obs registry as
/// pipeline.cache.{hits,misses,spills,restores,spill_bytes} counters and
/// the pipeline.cache.{bytes,resident_bytes,budget_bytes} gauges.
class ArtifactCache final : public AdjacencyCache,
                            public sparse::SpGemmPlanCache {
 public:
  ArtifactCache() = default;
  ~ArtifactCache() override;
  ArtifactCache(const ArtifactCache&) = delete;
  ArtifactCache& operator=(const ArtifactCache&) = delete;

  /// Tiering configuration. With a finite budget the cache spills; with
  /// the default (SIZE_MAX) it never evicts but may still restore
  /// entries spilled under an earlier, tighter budget.
  struct SpillOptions {
    /// Heap bytes the evictable tiers (adjacencies + propagated
    /// features) may keep resident. SIZE_MAX = unlimited.
    size_t resident_bytes_budget = SIZE_MAX;
    /// Directory for spool files; created if missing. Must be non-empty.
    std::string spill_dir;
  };

  /// Enables the spill tier. Call before concurrent use (configuration
  /// is not synchronized against in-flight lookups).
  Status ConfigureSpill(const SpillOptions& opts);

  /// True once ConfigureSpill succeeded.
  bool spill_enabled() const { return spill_enabled_; }

  // AdjacencyCache:
  std::shared_ptr<const CsrMatrix> Composed(const HeteroGraph& g,
                                            const MetaPath& p,
                                            int64_t max_row_nnz,
                                            exec::ExecContext* ctx) override;

  // sparse::SpGemmPlanCache — symbolic SpGEMM plans keyed by the operand
  // pair's ContentFingerprints. Composed() misses route their SpGEMM
  // chain through this, so two adjacency cells sharing a path prefix (or
  // one path at two max_row_nnz budgets — plans are budget-independent)
  // share symbolic work even though the adjacency entries themselves are
  // distinct. Plans stay resident (they are small and structure-only);
  // plan lookups are tallied separately from artifact lookups
  // (plan_hits/plan_misses): an artifact miss whose plans all hit is
  // still an artifact miss.
  const sparse::SpGemmPlan& Plan(const CsrMatrix& a, const CsrMatrix& b,
                                 exec::ExecContext* ctx) override;

  /// Whole-graph propagated feature blocks for (g, paths, max_row_nnz)
  /// (what hgnn::BuildEvalContext computes). The path compositions inside
  /// a miss also route through this cache. Under a finite budget, a miss
  /// streams blocks through a spool file instead of materializing them.
  std::shared_ptr<const hgnn::PropagatedFeatures> Propagated(
      const HeteroGraph& g, const std::vector<MetaPath>& paths,
      int64_t max_row_nnz, exec::ExecContext* ctx);

  /// Whole-graph train-and-evaluate baseline for (ctx.full, config).
  /// Training is deterministic given config, so the metrics are exact.
  hgnn::EvalMetrics WholeGraphBaseline(const hgnn::EvalContext& ctx,
                                       const hgnn::HgnnConfig& config,
                                       exec::ExecContext* ex);

  /// Memoized ContentFingerprint. The memo is keyed by address and
  /// re-verified against cheap structural stats (node/edge/relation
  /// counts), so a graph object rebuilt at a reused address re-hashes.
  uint64_t FingerprintOf(const HeteroGraph& g);

  /// Spills cold unpinned entries until the resident tier fits the
  /// budget. Runs automatically after inserts/restores; exposed so a
  /// caller can trim after releasing pins (inserts made while their
  /// entries were pinned could not evict them).
  void TrimToBudget();

  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    /// SpGEMM symbolic-plan lookups, counted apart from artifact lookups
    /// (mirrored as pipeline.cache.plan_{hits,misses} counters).
    int64_t plan_hits = 0;
    int64_t plan_misses = 0;
    /// Resident heap bytes of cached artifacts (plans included).
    size_t bytes = 0;
    /// Resident heap bytes of the evictable tiers only (what the budget
    /// constrains; mapped restored views count ~0).
    size_t resident_bytes = 0;
    /// High-water mark of resident_bytes.
    size_t peak_resident_bytes = 0;
    /// Entries written to the spill tier / restored from it.
    int64_t spills = 0;
    int64_t restores = 0;
    /// Cumulative bytes written to spool files.
    size_t spill_bytes = 0;
  };
  Stats stats() const;

  /// Drops every entry (and the fingerprint memo), unlinks every spool
  /// file this cache wrote; stats reset too.
  void Clear();

 private:
  struct FpEntry {
    uint64_t fingerprint = 0;
    int64_t total_nodes = 0;
    int64_t total_edges = 0;
    int32_t num_relations = 0;
  };
  /// (graph fp, path signature, max_row_nnz).
  using AdjKey = std::tuple<uint64_t, uint64_t, int64_t>;
  /// (graph fp, path-list signature, max_row_nnz).
  using PropKey = std::tuple<uint64_t, uint64_t, int64_t>;
  /// (graph fp, config signature).
  using BaselineKey = std::pair<uint64_t, uint64_t>;
  /// (operand a fp, operand b fp).
  using PlanKey = std::pair<uint64_t, uint64_t>;

  /// One evictable entry: resident (value set), spilled (value null,
  /// spill_path set), or both during restore. `owned_bytes` is the heap
  /// cost charged against the budget (0 for restored mapped views).
  template <typename T>
  struct Entry {
    std::shared_ptr<const T> value;
    std::string spill_path;
    size_t owned_bytes = 0;
    uint64_t tick = 0;    ///< LRU stamp (monotonic touch counter)
    bool spilling = false;  ///< spool write in flight; skip re-planning
  };
  using AdjEntry = Entry<CsrMatrix>;
  using PropEntry = Entry<hgnn::PropagatedFeatures>;

  /// A planned eviction: the value pointer is copied out under the lock
  /// so the spool write can run without it.
  struct SpillJob {
    bool is_adj = false;
    AdjKey akey{};
    PropKey pkey{};
    std::shared_ptr<const CsrMatrix> adj;
    std::shared_ptr<const hgnn::PropagatedFeatures> prop;
    std::string path;
    uint64_t header_fp = 0;
    size_t owned_bytes = 0;
  };

  void RecordHit();
  void RecordMiss();
  void UpdateByteGauges();
  void AddResident(size_t bytes);

  std::string AdjSpillPath(const AdjKey& key) const;
  std::string PropSpillPath(const PropKey& key) const;

  /// Collects LRU victims until the projected resident size fits the
  /// budget (lock held); marks them `spilling`.
  std::vector<SpillJob> PlanEvictions();
  /// Writes the spool files (no lock) and commits the drops.
  void ExecuteEvictions(std::vector<SpillJob> jobs);

  mutable std::mutex mu_;
  std::unordered_map<const HeteroGraph*, FpEntry> fp_memo_;
  std::map<AdjKey, AdjEntry> adjacencies_;
  std::map<PropKey, PropEntry> propagated_;
  std::map<BaselineKey, hgnn::EvalMetrics> baselines_;
  std::map<PlanKey, std::unique_ptr<sparse::SpGemmPlan>> plans_;
  Stats stats_;
  uint64_t tick_ = 0;
  bool spill_enabled_ = false;
  SpillOptions spill_;
};

/// Order-sensitive 64-bit signature of a meta-path (relation id sequence).
uint64_t PathSignature(const MetaPath& p);

/// Signature of an ordered path list.
uint64_t PathListSignature(const std::vector<MetaPath>& paths);

/// Signature of every HgnnConfig field that affects training results.
uint64_t ConfigSignature(const hgnn::HgnnConfig& config);

}  // namespace freehgc::pipeline

#endif  // FREEHGC_PIPELINE_ARTIFACT_CACHE_H_
