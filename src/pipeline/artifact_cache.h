#ifndef FREEHGC_PIPELINE_ARTIFACT_CACHE_H_
#define FREEHGC_PIPELINE_ARTIFACT_CACHE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "exec/exec_context.h"
#include "graph/hetero_graph.h"
#include "hgnn/models.h"
#include "hgnn/propagate.h"
#include "hgnn/trainer.h"
#include "metapath/metapath.h"
#include "sparse/ops.h"

namespace freehgc::pipeline {

/// Memo of the deterministic, seed/ratio-independent artifacts a sweep
/// recomputes per cell today: composed meta-path adjacencies (the dominant
/// SpGEMM cost of both condensation and evaluation-context building),
/// whole-graph pre-propagated feature blocks, and whole-graph training
/// baselines.
///
/// Keying: every entry is keyed by the graph's 64-bit ContentFingerprint
/// plus the computation's parameters (path signature + max_row_nnz for
/// adjacencies; path-list signature for propagation; HgnnConfig signature
/// for baselines). A changed graph changes its fingerprint, so stale
/// entries are unreachable rather than invalidated — the cache only ever
/// grows, for its lifetime (one sweep, typically). Determinism invariant:
/// every cached value is the exact output of a deterministic computation,
/// so cached and uncached runs are bit-identical (tests/pipeline_test.cc).
///
/// Thread-safe; returned references are stable for the cache's lifetime
/// (entries are heap-allocated and never evicted). Hit/miss/bytes are
/// mirrored into the obs registry as pipeline.cache.{hits,misses} counters
/// and the pipeline.cache.bytes gauge.
class ArtifactCache final : public AdjacencyCache,
                            public sparse::SpGemmPlanCache {
 public:
  ArtifactCache() = default;
  ArtifactCache(const ArtifactCache&) = delete;
  ArtifactCache& operator=(const ArtifactCache&) = delete;

  // AdjacencyCache:
  const CsrMatrix& Composed(const HeteroGraph& g, const MetaPath& p,
                            int64_t max_row_nnz,
                            exec::ExecContext* ctx) override;

  // sparse::SpGemmPlanCache — symbolic SpGEMM plans keyed by the operand
  // pair's ContentFingerprints. Composed() misses route their SpGEMM
  // chain through this, so two adjacency cells sharing a path prefix (or
  // one path at two max_row_nnz budgets — plans are budget-independent)
  // share symbolic work even though the adjacency entries themselves are
  // distinct. Plan lookups are tallied separately from artifact lookups
  // (plan_hits/plan_misses): an artifact miss whose plans all hit is
  // still an artifact miss.
  const sparse::SpGemmPlan& Plan(const CsrMatrix& a, const CsrMatrix& b,
                                 exec::ExecContext* ctx) override;

  /// Whole-graph propagated feature blocks for (g, paths, max_row_nnz)
  /// (what hgnn::BuildEvalContext computes). The path compositions inside
  /// a miss also route through this cache.
  const hgnn::PropagatedFeatures& Propagated(
      const HeteroGraph& g, const std::vector<MetaPath>& paths,
      int64_t max_row_nnz, exec::ExecContext* ctx);

  /// Whole-graph train-and-evaluate baseline for (ctx.full, config).
  /// Training is deterministic given config, so the metrics are exact.
  hgnn::EvalMetrics WholeGraphBaseline(const hgnn::EvalContext& ctx,
                                       const hgnn::HgnnConfig& config,
                                       exec::ExecContext* ex);

  /// Memoized ContentFingerprint. The memo is keyed by address and
  /// re-verified against cheap structural stats (node/edge/relation
  /// counts), so a graph object rebuilt at a reused address re-hashes.
  uint64_t FingerprintOf(const HeteroGraph& g);

  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    /// SpGEMM symbolic-plan lookups, counted apart from artifact lookups
    /// (mirrored as pipeline.cache.plan_{hits,misses} counters).
    int64_t plan_hits = 0;
    int64_t plan_misses = 0;
    /// Approximate resident bytes of cached artifacts (plans included).
    size_t bytes = 0;
  };
  Stats stats() const;

  /// Drops every entry (and the fingerprint memo); stats reset too.
  void Clear();

 private:
  struct FpEntry {
    uint64_t fingerprint = 0;
    int64_t total_nodes = 0;
    int64_t total_edges = 0;
    int32_t num_relations = 0;
  };
  /// (graph fp, path signature, max_row_nnz).
  using AdjKey = std::tuple<uint64_t, uint64_t, int64_t>;
  /// (graph fp, path-list signature, max_row_nnz).
  using PropKey = std::tuple<uint64_t, uint64_t, int64_t>;
  /// (graph fp, config signature).
  using BaselineKey = std::pair<uint64_t, uint64_t>;
  /// (operand a fp, operand b fp).
  using PlanKey = std::pair<uint64_t, uint64_t>;

  void RecordHit();
  void RecordMiss();
  void AddBytes(size_t bytes);

  mutable std::mutex mu_;
  std::unordered_map<const HeteroGraph*, FpEntry> fp_memo_;
  std::map<AdjKey, std::unique_ptr<CsrMatrix>> adjacencies_;
  std::map<PropKey, std::unique_ptr<hgnn::PropagatedFeatures>> propagated_;
  std::map<BaselineKey, hgnn::EvalMetrics> baselines_;
  std::map<PlanKey, std::unique_ptr<sparse::SpGemmPlan>> plans_;
  Stats stats_;
};

/// Order-sensitive 64-bit signature of a meta-path (relation id sequence).
uint64_t PathSignature(const MetaPath& p);

/// Signature of an ordered path list.
uint64_t PathListSignature(const std::vector<MetaPath>& paths);

/// Signature of every HgnnConfig field that affects training results.
uint64_t ConfigSignature(const hgnn::HgnnConfig& config);

}  // namespace freehgc::pipeline

#endif  // FREEHGC_PIPELINE_ARTIFACT_CACHE_H_
