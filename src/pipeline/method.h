#ifndef FREEHGC_PIPELINE_METHOD_H_
#define FREEHGC_PIPELINE_METHOD_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "baselines/gradient_matching.h"
#include "common/result.h"
#include "core/freehgc.h"
#include "exec/exec_context.h"
#include "hgnn/trainer.h"
#include "pipeline/artifact_cache.h"

namespace freehgc::pipeline {

/// Shared substrate a sweep threads through every cell: one execution
/// context (thread pool) and one artifact cache. Both borrowed, both
/// optional — null exec resolves to the process-default pool inside each
/// kernel, null cache means every cell recomputes from scratch. Cached and
/// uncached runs are bit-identical (the cache's determinism invariant).
struct PipelineEnv {
  exec::ExecContext* exec = nullptr;
  ArtifactCache* cache = nullptr;
};

/// Knobs shared by every method in a sweep (per-cell: ratio + seed; the
/// rest is method configuration a sweep holds fixed).
struct RunSpec {
  double ratio = 0.024;
  uint64_t seed = 1;
  /// FreeHGC configuration (ratio/seed fields are overwritten).
  core::FreeHgcOptions freehgc;
  /// Gradient-matching configuration (ratio/seed/hetero overwritten).
  baselines::GradientMatchingOptions gm;
  int coarsening_rounds = 3;
};

/// What a condensation method produces: either a condensed subgraph
/// (selection/coarsening family, evaluated via TrainAndEvaluate) or
/// synthetic pre-propagated feature blocks (gradient-matching family,
/// evaluated via TrainOnBlocks).
struct CondensedData {
  bool synthetic = false;
  HeteroGraph graph;                 // !synthetic
  std::vector<Matrix> blocks;        // synthetic
  std::vector<int32_t> labels;       // synthetic
  /// Wall-clock seconds of the condensation stage.
  double seconds = 0.0;
  /// Storage footprint of the condensed data.
  size_t storage_bytes = 0;
};

/// One condense-then-train-then-test run.
struct MethodRun {
  /// Test accuracy on the full graph, in percent.
  float accuracy = 0.0f;
  float macro_f1 = 0.0f;
  /// Wall-clock seconds of the condensation stage.
  double condense_seconds = 0.0;
  /// Wall-clock seconds of HGNN training on the condensed data.
  double train_seconds = 0.0;
  /// Storage footprint of the condensed data.
  size_t storage_bytes = 0;
  /// Set when the (simulated) memory gate fired (GCond on AMiner).
  bool oom = false;
};

/// A condensation method behind the registry: one polymorphic Condense
/// entry point replacing the per-method dispatch switch eval::RunMethod
/// used to hold. Implementations are stateless (all run state flows
/// through spec/env), so one registered instance serves every thread.
class CondensationMethod {
 public:
  virtual ~CondensationMethod() = default;

  /// Stable registry key, lowercase ("freehgc", "hgcond", ...).
  virtual const std::string& key() const = 0;

  /// Paper-style display name ("FreeHGC", "HGCond", ...).
  virtual const std::string& display_name() const = 0;

  /// Condenses ctx.full at spec.ratio/seed. ResourceExhausted is the
  /// contract for a (simulated) memory-gate failure; RunMethod maps it to
  /// MethodRun.oom rather than an error.
  virtual Result<CondensedData> Condense(const hgnn::EvalContext& ctx,
                                         const RunSpec& spec,
                                         const PipelineEnv& env) const = 0;
};

/// String-keyed method registry. The seven paper methods self-register at
/// static-init time; external experiments can Register additional ones.
class MethodRegistry {
 public:
  /// Process-wide registry, pre-populated with the builtin methods.
  static MethodRegistry& Global();

  /// Takes ownership; replaces any method already holding the same key.
  void Register(std::unique_ptr<CondensationMethod> method);

  /// Null when no method holds `key`.
  const CondensationMethod* Find(const std::string& key) const;

  /// Like Find, but an unknown key becomes a NotFound status whose
  /// message lists every registered key — the serve layer and CLIs
  /// forward it verbatim, so callers learn what exists.
  Result<const CondensationMethod*> FindOrError(const std::string& key) const;

  /// Registered keys, sorted.
  std::vector<std::string> Keys() const;

 private:
  struct Impl;
  MethodRegistry();
  std::unique_ptr<Impl> impl_;
};

/// Copies a train-and-evaluate outcome into a MethodRun: percent-scaled
/// accuracy and macro-F1 plus the training wall-clock.
void ApplyEvalMetrics(const hgnn::EvalMetrics& metrics, MethodRun& out);

/// Runs one method end to end: condense ctx.full at the requested ratio,
/// train `eval_cfg`'s HGNN on the result (seeded per run), evaluate on the
/// full test split. NotFound when `key` is not registered; a method's
/// ResourceExhausted becomes a run with oom=true.
Result<MethodRun> RunMethod(const hgnn::EvalContext& ctx,
                            const std::string& key, const RunSpec& spec,
                            const hgnn::HgnnConfig& eval_cfg,
                            const PipelineEnv& env = {});

/// Mean and sample standard deviation of a series.
struct MeanStd {
  double mean = 0.0;
  double std = 0.0;
};
MeanStd Aggregate(const std::vector<double>& values);

/// Accuracy aggregated over seeds; failures (e.g. OOM) surface as
/// oom=true when every seed fails.
struct AggregatedRun {
  MeanStd accuracy;
  double mean_condense_seconds = 0.0;
  double mean_train_seconds = 0.0;
  size_t storage_bytes = 0;
  bool oom = false;
};

/// Repeats RunMethod over `seeds` and aggregates.
AggregatedRun RunMethodSeeds(const hgnn::EvalContext& ctx,
                             const std::string& key, RunSpec spec,
                             const hgnn::HgnnConfig& eval_cfg,
                             const std::vector<uint64_t>& seeds,
                             const PipelineEnv& env = {});

/// "%.2f ± %.2f" cell formatter.
std::string Cell(const MeanStd& m);

}  // namespace freehgc::pipeline

#endif  // FREEHGC_PIPELINE_METHOD_H_
