#include "pipeline/artifact_cache.h"

#include <cstring>
#include <utility>

#include "obs/metrics.h"

namespace freehgc::pipeline {

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

uint64_t Mix(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffULL;
    h *= kFnvPrime;
  }
  return h;
}

size_t PropagatedBytes(const hgnn::PropagatedFeatures& f) {
  size_t bytes = 0;
  for (const auto& b : f.blocks) {
    bytes += static_cast<size_t>(b.size()) * sizeof(float);
  }
  return bytes;
}

obs::Counter& HitCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("pipeline.cache.hits");
  return c;
}

obs::Counter& MissCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("pipeline.cache.misses");
  return c;
}

obs::Counter& PlanHitCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("pipeline.cache.plan_hits");
  return c;
}

obs::Counter& PlanMissCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("pipeline.cache.plan_misses");
  return c;
}

obs::Gauge& BytesGauge() {
  static obs::Gauge& g =
      obs::MetricsRegistry::Global().GetGauge("pipeline.cache.bytes");
  return g;
}

}  // namespace

uint64_t PathSignature(const MetaPath& p) {
  uint64_t h = kFnvOffset;
  for (RelationId r : p.relations) {
    h = Mix(h, static_cast<uint64_t>(r) + 1);
  }
  return h;
}

uint64_t PathListSignature(const std::vector<MetaPath>& paths) {
  uint64_t h = kFnvOffset;
  h = Mix(h, static_cast<uint64_t>(paths.size()));
  for (const MetaPath& p : paths) {
    h = Mix(h, PathSignature(p));
  }
  return h;
}

uint64_t ConfigSignature(const hgnn::HgnnConfig& config) {
  uint64_t h = kFnvOffset;
  h = Mix(h, static_cast<uint64_t>(config.kind));
  h = Mix(h, static_cast<uint64_t>(config.hidden));
  uint32_t bits;
  static_assert(sizeof(bits) == sizeof(config.dropout));
  std::memcpy(&bits, &config.dropout, sizeof(bits));
  h = Mix(h, bits);
  std::memcpy(&bits, &config.lr, sizeof(bits));
  h = Mix(h, bits);
  h = Mix(h, static_cast<uint64_t>(config.epochs));
  h = Mix(h, static_cast<uint64_t>(config.patience));
  h = Mix(h, config.seed);
  return h;
}

uint64_t ArtifactCache::FingerprintOf(const HeteroGraph& g) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = fp_memo_.find(&g);
    if (it != fp_memo_.end() && it->second.total_nodes == g.TotalNodes() &&
        it->second.total_edges == g.TotalEdges() &&
        it->second.num_relations == g.NumRelations()) {
      return it->second.fingerprint;
    }
  }
  FpEntry e;
  e.fingerprint = g.ContentFingerprint();
  e.total_nodes = g.TotalNodes();
  e.total_edges = g.TotalEdges();
  e.num_relations = g.NumRelations();
  std::lock_guard<std::mutex> lock(mu_);
  fp_memo_[&g] = e;
  return e.fingerprint;
}

const CsrMatrix& ArtifactCache::Composed(const HeteroGraph& g,
                                         const MetaPath& p,
                                         int64_t max_row_nnz,
                                         exec::ExecContext* ctx) {
  const AdjKey key{FingerprintOf(g), PathSignature(p), max_row_nnz};
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = adjacencies_.find(key);
    if (it != adjacencies_.end()) {
      RecordHit();
      return *it->second;
    }
  }
  // Compose outside the lock: the SpGEMM chain is the expensive part and
  // must not serialize unrelated lookups. The chain's symbolic passes
  // route back through this cache, so compositions sharing operand pairs
  // (path prefixes, other budgets) skip straight to the numeric pass.
  auto composed = std::make_unique<CsrMatrix>(
      ComposeAdjacency(g, p, max_row_nnz, ctx, this));
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = adjacencies_.emplace(key, std::move(composed));
  RecordMiss();
  if (inserted) AddBytes(it->second->MemoryBytes());
  return *it->second;
}

const sparse::SpGemmPlan& ArtifactCache::Plan(const CsrMatrix& a,
                                              const CsrMatrix& b,
                                              exec::ExecContext* ctx) {
  // Hashing both operands is O(nnz) per lookup — far below the symbolic
  // pass it saves (merge + per-row sort), and conservative: equal
  // fingerprints imply equal sparsity patterns.
  const PlanKey key{a.ContentFingerprint(), b.ContentFingerprint()};
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = plans_.find(key);
    if (it != plans_.end()) {
      ++stats_.plan_hits;
      PlanHitCounter().Increment();
      return *it->second;
    }
  }
  auto plan = std::make_unique<sparse::SpGemmPlan>(
      sparse::SpGemmSymbolic(a, b, ctx));
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = plans_.emplace(key, std::move(plan));
  ++stats_.plan_misses;
  PlanMissCounter().Increment();
  if (inserted) AddBytes(it->second->MemoryBytes());
  return *it->second;
}

const hgnn::PropagatedFeatures& ArtifactCache::Propagated(
    const HeteroGraph& g, const std::vector<MetaPath>& paths,
    int64_t max_row_nnz, exec::ExecContext* ctx) {
  const PropKey key{FingerprintOf(g), PathListSignature(paths), max_row_nnz};
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = propagated_.find(key);
    if (it != propagated_.end()) {
      RecordHit();
      return *it->second;
    }
  }
  // The per-path compositions inside the miss route back through this
  // cache, so a later Composed() over the same graph/paths also hits.
  auto features = std::make_unique<hgnn::PropagatedFeatures>(
      hgnn::PropagateAlongPaths(g, paths, max_row_nnz, ctx, this));
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = propagated_.emplace(key, std::move(features));
  RecordMiss();
  if (inserted) AddBytes(PropagatedBytes(*it->second));
  return *it->second;
}

hgnn::EvalMetrics ArtifactCache::WholeGraphBaseline(
    const hgnn::EvalContext& ctx, const hgnn::HgnnConfig& config,
    exec::ExecContext* ex) {
  const BaselineKey key{FingerprintOf(*ctx.full), ConfigSignature(config)};
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = baselines_.find(key);
    if (it != baselines_.end()) {
      RecordHit();
      return it->second;
    }
  }
  const hgnn::EvalMetrics metrics = hgnn::WholeGraphBaseline(ctx, config, ex);
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = baselines_.emplace(key, metrics);
  RecordMiss();
  if (inserted) AddBytes(sizeof(hgnn::EvalMetrics));
  return it->second;
}

ArtifactCache::Stats ArtifactCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void ArtifactCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  fp_memo_.clear();
  adjacencies_.clear();
  propagated_.clear();
  baselines_.clear();
  plans_.clear();
  stats_ = Stats{};
  BytesGauge().Set(0);
}

void ArtifactCache::RecordHit() {
  ++stats_.hits;
  HitCounter().Increment();
}

void ArtifactCache::RecordMiss() {
  ++stats_.misses;
  MissCounter().Increment();
}

void ArtifactCache::AddBytes(size_t bytes) {
  stats_.bytes += bytes;
  BytesGauge().Set(static_cast<int64_t>(stats_.bytes));
}

}  // namespace freehgc::pipeline
