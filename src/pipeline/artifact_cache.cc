#include "pipeline/artifact_cache.h"

#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "common/logging.h"
#include "graph/section_io.h"
#include "hgnn/feature_spill.h"
#include "obs/metrics.h"

namespace freehgc::pipeline {

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

uint64_t Mix(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffULL;
    h *= kFnvPrime;
  }
  return h;
}

/// Hash of an entry key, stored in the spool-file header so a file can be
/// matched back to its slot (and recognized by the orphan GC) without
/// payload IO.
uint64_t KeyHash(const std::tuple<uint64_t, uint64_t, int64_t>& key) {
  uint64_t h = kFnvOffset;
  h = Mix(h, std::get<0>(key));
  h = Mix(h, std::get<1>(key));
  h = Mix(h, static_cast<uint64_t>(std::get<2>(key)));
  return h;
}

size_t PropagatedOwnedBytes(const hgnn::PropagatedFeatures& f) {
  size_t bytes = 0;
  for (const auto& b : f.blocks) bytes += b.OwnedBytes();
  return bytes;
}

obs::Counter& HitCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("pipeline.cache.hits");
  return c;
}

obs::Counter& MissCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("pipeline.cache.misses");
  return c;
}

obs::Counter& PlanHitCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("pipeline.cache.plan_hits");
  return c;
}

obs::Counter& PlanMissCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("pipeline.cache.plan_misses");
  return c;
}

obs::Counter& SpillCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("pipeline.cache.spills");
  return c;
}

obs::Counter& RestoreCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("pipeline.cache.restores");
  return c;
}

obs::Counter& SpillBytesCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("pipeline.cache.spill_bytes");
  return c;
}

obs::Gauge& BytesGauge() {
  static obs::Gauge& g =
      obs::MetricsRegistry::Global().GetGauge("pipeline.cache.bytes");
  return g;
}

obs::Gauge& ResidentGauge() {
  static obs::Gauge& g = obs::MetricsRegistry::Global().GetGauge(
      "pipeline.cache.resident_bytes");
  return g;
}

obs::Gauge& BudgetGauge() {
  static obs::Gauge& g =
      obs::MetricsRegistry::Global().GetGauge("pipeline.cache.budget_bytes");
  return g;
}

std::string HexKeyPath(const std::string& dir, const char* prefix,
                       const std::tuple<uint64_t, uint64_t, int64_t>& key) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "/%s-%016llx-%016llx-%lld.spill", prefix,
                static_cast<unsigned long long>(std::get<0>(key)),
                static_cast<unsigned long long>(std::get<1>(key)),
                static_cast<long long>(std::get<2>(key)));
  return dir + buf;
}

}  // namespace

uint64_t PathSignature(const MetaPath& p) {
  uint64_t h = kFnvOffset;
  for (RelationId r : p.relations) {
    h = Mix(h, static_cast<uint64_t>(r) + 1);
  }
  return h;
}

uint64_t PathListSignature(const std::vector<MetaPath>& paths) {
  uint64_t h = kFnvOffset;
  h = Mix(h, static_cast<uint64_t>(paths.size()));
  for (const MetaPath& p : paths) {
    h = Mix(h, PathSignature(p));
  }
  return h;
}

uint64_t ConfigSignature(const hgnn::HgnnConfig& config) {
  uint64_t h = kFnvOffset;
  h = Mix(h, static_cast<uint64_t>(config.kind));
  h = Mix(h, static_cast<uint64_t>(config.hidden));
  uint32_t bits;
  static_assert(sizeof(bits) == sizeof(config.dropout));
  std::memcpy(&bits, &config.dropout, sizeof(bits));
  h = Mix(h, bits);
  std::memcpy(&bits, &config.lr, sizeof(bits));
  h = Mix(h, bits);
  h = Mix(h, static_cast<uint64_t>(config.epochs));
  h = Mix(h, static_cast<uint64_t>(config.patience));
  h = Mix(h, config.seed);
  return h;
}

ArtifactCache::~ArtifactCache() { Clear(); }

Status ArtifactCache::ConfigureSpill(const SpillOptions& opts) {
  if (opts.spill_dir.empty()) {
    return Status::InvalidArgument("spill_dir must be non-empty");
  }
  if (::mkdir(opts.spill_dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::Internal("mkdir(" + opts.spill_dir + "): " +
                            std::string(std::strerror(errno)));
  }
  std::lock_guard<std::mutex> lock(mu_);
  spill_ = opts;
  spill_enabled_ = true;
  BudgetGauge().Set(
      opts.resident_bytes_budget == SIZE_MAX
          ? 0
          : static_cast<int64_t>(opts.resident_bytes_budget));
  return Status::OK();
}

uint64_t ArtifactCache::FingerprintOf(const HeteroGraph& g) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = fp_memo_.find(&g);
    if (it != fp_memo_.end() && it->second.total_nodes == g.TotalNodes() &&
        it->second.total_edges == g.TotalEdges() &&
        it->second.num_relations == g.NumRelations()) {
      return it->second.fingerprint;
    }
  }
  FpEntry e;
  e.fingerprint = g.ContentFingerprint();
  e.total_nodes = g.TotalNodes();
  e.total_edges = g.TotalEdges();
  e.num_relations = g.NumRelations();
  std::lock_guard<std::mutex> lock(mu_);
  fp_memo_[&g] = e;
  return e.fingerprint;
}

std::string ArtifactCache::AdjSpillPath(const AdjKey& key) const {
  return HexKeyPath(spill_.spill_dir, "adj", key);
}

std::string ArtifactCache::PropSpillPath(const PropKey& key) const {
  return HexKeyPath(spill_.spill_dir, "prop", key);
}

std::shared_ptr<const CsrMatrix> ArtifactCache::Composed(
    const HeteroGraph& g, const MetaPath& p, int64_t max_row_nnz,
    exec::ExecContext* ctx) {
  const AdjKey key{FingerprintOf(g), PathSignature(p), max_row_nnz};
  std::string spilled_path;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = adjacencies_.find(key);
    if (it != adjacencies_.end()) {
      if (it->second.value != nullptr) {
        RecordHit();
        it->second.tick = ++tick_;
        return it->second.value;
      }
      spilled_path = it->second.spill_path;
    }
  }
  if (!spilled_path.empty()) {
    // Spill-tier hit: restore as a zero-copy mapped view (bit-identical
    // to the owned entry, ~0 heap — it never needs evicting again).
    Result<CsrMatrix> restored = section_io::MapCsrSpill(spilled_path);
    if (restored.ok()) {
      auto sp = std::make_shared<const CsrMatrix>(std::move(*restored));
      std::lock_guard<std::mutex> lock(mu_);
      AdjEntry& e = adjacencies_[key];
      if (e.value == nullptr) {
        e.value = sp;
        e.owned_bytes = sp->OwnedBytes();
        AddResident(e.owned_bytes);
        ++stats_.restores;
        RestoreCounter().Increment();
      }
      RecordHit();
      e.tick = ++tick_;
      return e.value;
    }
    FREEHGC_LOG(Warning) << "adjacency restore failed (" << spilled_path
                         << "): " << restored.status().message()
                         << "; recomputing";
  }
  // Compose outside the lock: the SpGEMM chain is the expensive part and
  // must not serialize unrelated lookups. The chain's symbolic passes
  // route back through this cache, so compositions sharing operand pairs
  // (path prefixes, other budgets) skip straight to the numeric pass.
  auto composed = std::make_shared<const CsrMatrix>(
      ComposeAdjacency(g, p, max_row_nnz, ctx, this));
  std::shared_ptr<const CsrMatrix> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    AdjEntry& e = adjacencies_[key];
    RecordMiss();
    if (e.value == nullptr) {
      e.value = std::move(composed);
      e.owned_bytes = e.value->OwnedBytes();
      AddResident(e.owned_bytes);
    }
    e.tick = ++tick_;
    out = e.value;
  }
  TrimToBudget();
  return out;
}

const sparse::SpGemmPlan& ArtifactCache::Plan(const CsrMatrix& a,
                                              const CsrMatrix& b,
                                              exec::ExecContext* ctx) {
  // Hashing both operands is O(nnz) per lookup — far below the symbolic
  // pass it saves (merge + per-row sort), and conservative: equal
  // fingerprints imply equal sparsity patterns.
  const PlanKey key{a.ContentFingerprint(), b.ContentFingerprint()};
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = plans_.find(key);
    if (it != plans_.end()) {
      ++stats_.plan_hits;
      PlanHitCounter().Increment();
      return *it->second;
    }
  }
  auto plan = std::make_unique<sparse::SpGemmPlan>(
      sparse::SpGemmSymbolic(a, b, ctx));
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = plans_.emplace(key, std::move(plan));
  ++stats_.plan_misses;
  PlanMissCounter().Increment();
  if (inserted) {
    stats_.bytes += it->second->MemoryBytes();
    UpdateByteGauges();
  }
  return *it->second;
}

std::shared_ptr<const hgnn::PropagatedFeatures> ArtifactCache::Propagated(
    const HeteroGraph& g, const std::vector<MetaPath>& paths,
    int64_t max_row_nnz, exec::ExecContext* ctx) {
  const PropKey key{FingerprintOf(g), PathListSignature(paths), max_row_nnz};
  std::string spilled_path;
  bool stream;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = propagated_.find(key);
    if (it != propagated_.end()) {
      if (it->second.value != nullptr) {
        RecordHit();
        it->second.tick = ++tick_;
        return it->second.value;
      }
      spilled_path = it->second.spill_path;
    }
    stream = spill_enabled_ && spill_.resident_bytes_budget != SIZE_MAX;
  }
  if (!spilled_path.empty()) {
    auto restored = hgnn::MapPropagatedSpill(spilled_path);
    if (restored.ok()) {
      std::lock_guard<std::mutex> lock(mu_);
      PropEntry& e = propagated_[key];
      if (e.value == nullptr) {
        e.value = std::move(*restored);
        e.owned_bytes = PropagatedOwnedBytes(*e.value);
        AddResident(e.owned_bytes);
        ++stats_.restores;
        RestoreCounter().Increment();
      }
      RecordHit();
      e.tick = ++tick_;
      return e.value;
    }
    FREEHGC_LOG(Warning) << "propagated restore failed (" << spilled_path
                         << "): " << restored.status().message()
                         << "; recomputing";
  }

  // The per-path compositions inside the miss route back through this
  // cache, so a later Composed() over the same graph/paths also hits.
  std::shared_ptr<const hgnn::PropagatedFeatures> features;
  std::string path;
  uint64_t file_bytes = 0;
  if (stream) {
    // Budgeted build: spool each block to disk as it is computed, then
    // map the file back — the whole block set never lives on the heap at
    // once, and the entry is born in its restored (view-backed) form.
    path = PropSpillPath(key);
    auto write_and_map =
        [&]() -> Result<std::shared_ptr<const hgnn::PropagatedFeatures>> {
      FREEHGC_ASSIGN_OR_RETURN(hgnn::PropagatedSpillWriter w,
                               hgnn::PropagatedSpillWriter::Create(path));
      int64_t blocks = 0;
      {
        Matrix raw = hgnn::RawFeatureBlock(g, ctx);
        FREEHGC_RETURN_IF_ERROR(w.AddBlock(raw, "raw", g.target_type()));
        ++blocks;
      }
      for (const auto& p : paths) {
        if (!g.HasFeatures(p.end_type())) continue;
        Matrix block = hgnn::PropagateOneBlock(g, p, max_row_nnz, ctx, this);
        FREEHGC_RETURN_IF_ERROR(
            w.AddBlock(block, p.Name(g), p.end_type()));
        ++blocks;
      }
      FREEHGC_ASSIGN_OR_RETURN(file_bytes, w.Finish(KeyHash(key)));
      hgnn::NoteBlocksPropagated(blocks);
      return hgnn::MapPropagatedSpill(path);
    };
    auto streamed = write_and_map();
    if (streamed.ok()) {
      features = std::move(*streamed);
    } else {
      FREEHGC_LOG(Warning) << "streamed propagation spill failed (" << path
                           << "): " << streamed.status().message()
                           << "; falling back to in-heap build";
      path.clear();
    }
  }
  if (features == nullptr) {
    features = std::make_shared<const hgnn::PropagatedFeatures>(
        hgnn::PropagateAlongPaths(g, paths, max_row_nnz, ctx, this));
  }
  std::shared_ptr<const hgnn::PropagatedFeatures> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    PropEntry& e = propagated_[key];
    RecordMiss();
    if (e.value == nullptr) {
      e.value = std::move(features);
      e.owned_bytes = PropagatedOwnedBytes(*e.value);
      AddResident(e.owned_bytes);
      if (!path.empty()) {
        // Spool-through build: the file already is this entry's spill
        // copy.
        e.spill_path = path;
        ++stats_.spills;
        stats_.spill_bytes += file_bytes;
        SpillCounter().Increment();
        SpillBytesCounter().Add(static_cast<int64_t>(file_bytes));
      }
    }
    e.tick = ++tick_;
    out = e.value;
  }
  TrimToBudget();
  return out;
}

hgnn::EvalMetrics ArtifactCache::WholeGraphBaseline(
    const hgnn::EvalContext& ctx, const hgnn::HgnnConfig& config,
    exec::ExecContext* ex) {
  const BaselineKey key{FingerprintOf(*ctx.full), ConfigSignature(config)};
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = baselines_.find(key);
    if (it != baselines_.end()) {
      RecordHit();
      return it->second;
    }
  }
  const hgnn::EvalMetrics metrics = hgnn::WholeGraphBaseline(ctx, config, ex);
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = baselines_.emplace(key, metrics);
  RecordMiss();
  if (inserted) {
    stats_.bytes += sizeof(hgnn::EvalMetrics);
    UpdateByteGauges();
  }
  return it->second;
}

std::vector<ArtifactCache::SpillJob> ArtifactCache::PlanEvictions() {
  // Lock held by caller. Victims: resident owned entries nobody has
  // pinned (use_count()==1 means the cache holds the only reference) and
  // no spool write already in flight. Restored views carry ~0 owned
  // bytes and are skipped by the owned_bytes > 0 test.
  struct Candidate {
    uint64_t tick;
    bool is_adj;
    AdjKey akey;
    PropKey pkey;
  };
  std::vector<Candidate> candidates;
  for (const auto& [key, e] : adjacencies_) {
    if (e.value != nullptr && e.owned_bytes > 0 && !e.spilling &&
        e.value.use_count() == 1) {
      candidates.push_back({e.tick, true, key, PropKey{}});
    }
  }
  for (const auto& [key, e] : propagated_) {
    if (e.value != nullptr && e.owned_bytes > 0 && !e.spilling &&
        e.value.use_count() == 1) {
      candidates.push_back({e.tick, false, AdjKey{}, key});
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.tick < b.tick;
            });
  std::vector<SpillJob> jobs;
  size_t projected = stats_.resident_bytes;
  for (const Candidate& c : candidates) {
    if (projected <= spill_.resident_bytes_budget) break;
    SpillJob job;
    job.is_adj = c.is_adj;
    if (c.is_adj) {
      AdjEntry& e = adjacencies_[c.akey];
      e.spilling = true;
      job.akey = c.akey;
      job.adj = e.value;
      job.path = e.spill_path.empty() ? AdjSpillPath(c.akey) : e.spill_path;
      job.header_fp = KeyHash(c.akey);
      job.owned_bytes = e.owned_bytes;
    } else {
      PropEntry& e = propagated_[c.pkey];
      e.spilling = true;
      job.pkey = c.pkey;
      job.prop = e.value;
      job.path = e.spill_path.empty() ? PropSpillPath(c.pkey) : e.spill_path;
      job.header_fp = KeyHash(c.pkey);
      job.owned_bytes = e.owned_bytes;
    }
    projected -= job.owned_bytes;
    jobs.push_back(std::move(job));
  }
  return jobs;
}

void ArtifactCache::ExecuteEvictions(std::vector<SpillJob> jobs) {
  for (SpillJob& job : jobs) {
    // An entry spilled earlier and re-restored already has a valid spool
    // file; don't rewrite it (the content is immutable).
    struct stat st{};
    const bool have_file = ::stat(job.path.c_str(), &st) == 0;
    Result<uint64_t> written =
        have_file ? Result<uint64_t>(0)
        : job.is_adj
            ? section_io::WriteCsrSpill(*job.adj, job.path, job.header_fp)
            : hgnn::WritePropagatedSpill(*job.prop, job.path, job.header_fp);

    std::lock_guard<std::mutex> lock(mu_);
    if (job.is_adj) {
      AdjEntry& e = adjacencies_[job.akey];
      e.spilling = false;
      if (written.ok()) {
        e.spill_path = job.path;
        e.value.reset();
        stats_.resident_bytes -= e.owned_bytes;
        stats_.bytes -= e.owned_bytes;
        e.owned_bytes = 0;
      }
    } else {
      PropEntry& e = propagated_[job.pkey];
      e.spilling = false;
      if (written.ok()) {
        e.spill_path = job.path;
        e.value.reset();
        stats_.resident_bytes -= e.owned_bytes;
        stats_.bytes -= e.owned_bytes;
        e.owned_bytes = 0;
      }
    }
    if (written.ok()) {
      ++stats_.spills;
      stats_.spill_bytes += *written;
      SpillCounter().Increment();
      SpillBytesCounter().Add(static_cast<int64_t>(*written));
      UpdateByteGauges();
    } else {
      FREEHGC_LOG(Warning) << "artifact spill failed (" << job.path
                           << "): " << written.status().message()
                           << "; keeping entry resident";
    }
    // job.adj/job.prop (our pins) release outside the lock at loop end.
  }
}

void ArtifactCache::TrimToBudget() {
  std::vector<SpillJob> jobs;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!spill_enabled_ ||
        stats_.resident_bytes <= spill_.resident_bytes_budget) {
      return;
    }
    jobs = PlanEvictions();
  }
  if (!jobs.empty()) ExecuteEvictions(std::move(jobs));
}

ArtifactCache::Stats ArtifactCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void ArtifactCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [key, e] : adjacencies_) {
    if (!e.spill_path.empty()) std::remove(e.spill_path.c_str());
  }
  for (const auto& [key, e] : propagated_) {
    if (!e.spill_path.empty()) std::remove(e.spill_path.c_str());
  }
  fp_memo_.clear();
  adjacencies_.clear();
  propagated_.clear();
  baselines_.clear();
  plans_.clear();
  stats_ = Stats{};
  tick_ = 0;
  BytesGauge().Set(0);
  ResidentGauge().Set(0);
}

void ArtifactCache::RecordHit() {
  ++stats_.hits;
  HitCounter().Increment();
}

void ArtifactCache::RecordMiss() {
  ++stats_.misses;
  MissCounter().Increment();
}

void ArtifactCache::UpdateByteGauges() {
  BytesGauge().Set(static_cast<int64_t>(stats_.bytes));
  ResidentGauge().Set(static_cast<int64_t>(stats_.resident_bytes));
}

void ArtifactCache::AddResident(size_t bytes) {
  stats_.resident_bytes += bytes;
  stats_.bytes += bytes;
  stats_.peak_resident_bytes =
      std::max(stats_.peak_resident_bytes, stats_.resident_bytes);
  UpdateByteGauges();
}

}  // namespace freehgc::pipeline
