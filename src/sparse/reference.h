#ifndef FREEHGC_SPARSE_REFERENCE_H_
#define FREEHGC_SPARSE_REFERENCE_H_

#include <cstdint>
#include <vector>

#include "dense/matrix.h"
#include "sparse/csr.h"

namespace freehgc::sparse::reference {

// Naive single-threaded reference implementations of the optimized
// kernels in sparse/ops.h — the ground truth of the differential test
// harness (tests/sparse_reference_test.cc) and the "old kernel" side of
// bench/bench_kernels.cc. Each mirrors the obvious textbook algorithm
// and, deliberately, the optimized kernel's floating-point accumulation
// order per output element, so agreement is expected bit-for-bit (not
// within a tolerance). Keep these boring: no parallelism, no workspace
// reuse, no blocking.

/// Sequential a^T via column-bucket scatter in ascending source-row order.
CsrMatrix TransposeRef(const CsrMatrix& a);

/// Sequential D^-1 A.
CsrMatrix RowNormalizeRef(const CsrMatrix& a);

/// Sequential D^-1/2 A D^-1/2.
CsrMatrix SymNormalizeRef(const CsrMatrix& a);

/// Sequential Gustavson SpGEMM with the same zero-drop and max_row_nnz
/// semantics as ops.h SpGemm. Pruning uses a full stable ranking by
/// (|value| descending, then smaller column index) — the pinned
/// tie-break rule — rather than the optimized kernel's partial select,
/// so it independently cross-checks the selection.
CsrMatrix SpGemmRef(const CsrMatrix& a, const CsrMatrix& b,
                    int64_t max_row_nnz = 0);

/// Sequential a * x, accumulating each output element in ascending
/// sparse-entry order (matches the blocked kernel's per-element order).
Matrix SpMmDenseRef(const CsrMatrix& a, const Matrix& x);

/// Sequential a^T * x via column scatter (ascending source-row order —
/// the order the transpose-then-gather optimized path reproduces).
Matrix SpMmDenseTRef(const CsrMatrix& a, const Matrix& x);

/// Sequential y = a * x.
std::vector<float> SpMvRef(const CsrMatrix& a, const std::vector<float>& x);

/// Sequential y = a^T * x via column scatter. No zero-skip: every stored
/// entry contributes, exactly like the optimized transpose-gather path.
std::vector<float> SpMvTRef(const CsrMatrix& a, const std::vector<float>& x);

/// Sequential PPR power iteration:
///   pi <- alpha * teleport + (1 - alpha) * A^T pi
/// with the L1 delta folded left-to-right in doubles. The optimized
/// kernel's chunked delta reduction associates differently, so
/// differential runs must use tol = 0 (both sides then run exactly
/// max_iters and the per-element arithmetic is identical).
std::vector<float> PprScoresRef(const CsrMatrix& a,
                                const std::vector<float>& teleport,
                                float alpha, int max_iters, float tol);

}  // namespace freehgc::sparse::reference

#endif  // FREEHGC_SPARSE_REFERENCE_H_
