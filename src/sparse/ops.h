#ifndef FREEHGC_SPARSE_OPS_H_
#define FREEHGC_SPARSE_OPS_H_

#include <vector>

#include "dense/matrix.h"
#include "exec/exec_context.h"
#include "sparse/csr.h"

namespace freehgc::sparse {

// Every op takes an optional ExecContext; nullptr falls back to the
// process-wide default (FREEHGC_THREADS / hardware concurrency). All
// parallel paths follow the determinism contract (static chunking +
// ordered reduction, see exec/exec_context.h): results are bit-identical
// for every thread count.

/// Returns a^T.
CsrMatrix Transpose(const CsrMatrix& a);

/// Returns D^-1 A (rows scaled to sum 1; zero rows stay zero). This is the
/// row-normalized adjacency \hat{A} of Eq. (1) in the paper.
CsrMatrix RowNormalize(const CsrMatrix& a,
                       exec::ExecContext* ctx = nullptr);

/// Returns D^-1/2 A D^-1/2 for a square matrix (degree = row value sums;
/// zero-degree rows/cols stay zero). Used by the PPR-based neighbor
/// influence maximization (Eq. 11 uses \hat{A}^{sym}).
CsrMatrix SymNormalize(const CsrMatrix& a,
                       exec::ExecContext* ctx = nullptr);

/// Sparse-sparse product a * b.
///
/// `max_row_nnz` bounds densification: when > 0, each output row keeps only
/// the `max_row_nnz` largest-magnitude entries. Meta-path composition
/// (Eq. 1) chains several SpGEMMs, whose exact result densifies on
/// power-law graphs; the budget mirrors the error-threshold sparsification
/// the paper invokes for scalability. 0 means exact.
///
/// Parallelized over row chunks; each worker reuses its Workspace's dense
/// accumulator + touched list, so steady state allocates only the output.
CsrMatrix SpGemm(const CsrMatrix& a, const CsrMatrix& b,
                 int64_t max_row_nnz = 0, exec::ExecContext* ctx = nullptr);

/// Dense product a * x (x dense (a.cols, d)).
Matrix SpMmDense(const CsrMatrix& a, const Matrix& x,
                 exec::ExecContext* ctx = nullptr);

/// Dense product a^T * x without materializing the transpose.
/// (Column-scatter; sequential — materialize the transpose and use
/// SpMmDense when this is hot.)
Matrix SpMmDenseT(const CsrMatrix& a, const Matrix& x);

/// y = a * x for a dense vector x.
std::vector<float> SpMv(const CsrMatrix& a, const std::vector<float>& x,
                        exec::ExecContext* ctx = nullptr);

/// y = a * x written into a caller-owned buffer (resized to a.rows()),
/// so iterative solvers reuse one allocation across iterations.
void SpMvInto(const CsrMatrix& a, const std::vector<float>& x,
              std::vector<float>& y, exec::ExecContext* ctx = nullptr);

/// y = a^T * x. (Column-scatter; sequential.)
std::vector<float> SpMvT(const CsrMatrix& a, const std::vector<float>& x);

/// Extracts the submatrix a[row_keep, col_keep] with indices remapped to
/// the keep-list positions. Keep-lists must contain valid, unique ids.
CsrMatrix Submatrix(const CsrMatrix& a, const std::vector<int32_t>& row_keep,
                    const std::vector<int32_t>& col_keep);

/// Elementwise sum a + b (same shape).
CsrMatrix AddElementwise(const CsrMatrix& a, const CsrMatrix& b);

/// Returns a square symmetric matrix max(a, a^T) built from a square a
/// (union of edges in both directions, values summed).
CsrMatrix Symmetrize(const CsrMatrix& a);

/// Personalized PageRank score vector via power iteration:
///   pi <- alpha * teleport + (1 - alpha) * A^T pi
/// where `a` should be (sym-)normalized and `teleport` sums to 1.
/// Terminates after `max_iters` or when the L1 change drops below `tol`.
/// The result approximates the column mass of the PPR matrix
/// alpha (I - (1-alpha) A)^-1 restricted to the teleport distribution,
/// which is exactly the aggregate neighbor-influence score of Eq. (13).
///
/// Internally materializes a^T once so each iteration is a row-parallel
/// gather SpMv; the L1 delta uses an ordered chunk reduction.
std::vector<float> PprScores(const CsrMatrix& a,
                             const std::vector<float>& teleport, float alpha,
                             int max_iters = 50, float tol = 1e-6f,
                             exec::ExecContext* ctx = nullptr);

}  // namespace freehgc::sparse

#endif  // FREEHGC_SPARSE_OPS_H_
