#ifndef FREEHGC_SPARSE_OPS_H_
#define FREEHGC_SPARSE_OPS_H_

#include <cstdint>
#include <vector>

#include "dense/matrix.h"
#include "exec/exec_context.h"
#include "sparse/csr.h"

namespace freehgc::sparse {

// Every op takes an optional ExecContext; nullptr falls back to the
// process-wide default (FREEHGC_THREADS / hardware concurrency). All
// parallel paths follow the determinism contract (static chunking +
// ordered reduction, see exec/exec_context.h): results are bit-identical
// for every thread count, and SpGEMM results are additionally identical
// with and without plan reuse (tests/sparse_reference_test.cc).

/// Returns a^T. Two-pass parallel count/scatter: a per-chunk column
/// histogram fixes every entry's output slot, so the scatter writes
/// disjoint positions in source-row order (output rows stay sorted and
/// the result is bit-identical to the sequential transpose).
CsrMatrix Transpose(const CsrMatrix& a, exec::ExecContext* ctx = nullptr);

/// Returns D^-1 A (rows scaled to sum 1; zero rows stay zero). This is the
/// row-normalized adjacency \hat{A} of Eq. (1) in the paper.
CsrMatrix RowNormalize(const CsrMatrix& a,
                       exec::ExecContext* ctx = nullptr);

/// Returns D^-1/2 A D^-1/2 for a square matrix (degree = row value sums;
/// zero-degree rows/cols stay zero). Used by the PPR-based neighbor
/// influence maximization (Eq. 11 uses \hat{A}^{sym}).
CsrMatrix SymNormalize(const CsrMatrix& a,
                       exec::ExecContext* ctx = nullptr);

/// Reusable symbolic structure of a sparse-sparse product: the sorted
/// per-row output column pattern of a * b, independent of either
/// operand's values and of any row-nnz budget. Computing it is roughly
/// half the cost of a full SpGemm (the merge plus the per-row sort);
/// the numeric pass then fills values directly into exactly-allocated
/// output with no staging, no sorting, and no second prefix sum.
///
/// A plan is valid for any operand pair with the same sparsity patterns
/// as the pair it was built from. pipeline::ArtifactCache keys retained
/// plans by operand ContentFingerprints (conservative: equal fingerprints
/// imply equal patterns), so warm sweep cells and warm serve requests
/// skip the symbolic pass entirely.
struct SpGemmPlan {
  int32_t a_rows = 0;
  int32_t a_cols = 0;
  int32_t b_cols = 0;
  /// Symbolic structure: indptr/indices of the unpruned product pattern
  /// (sorted, unique columns per row).
  std::vector<int64_t> indptr = {0};
  std::vector<int32_t> indices;

  int64_t nnz() const { return static_cast<int64_t>(indices.size()); }
  size_t MemoryBytes() const {
    return indptr.size() * sizeof(int64_t) +
           indices.size() * sizeof(int32_t);
  }
};

/// Borrowed memo of SpGemm symbolic plans. The canonical implementation
/// is pipeline::ArtifactCache; declaring the interface here lets compose
/// call sites (metapath, hgnn) reuse plans without a pipeline dependency.
/// Returned references stay valid for the cache's lifetime.
class SpGemmPlanCache {
 public:
  virtual ~SpGemmPlanCache() = default;

  /// The symbolic plan for (a, b), computed via SpGemmSymbolic on miss
  /// and retained.
  virtual const SpGemmPlan& Plan(const CsrMatrix& a, const CsrMatrix& b,
                                 exec::ExecContext* ctx) = 0;
};

/// Symbolic pass: computes the output structure of a * b (parallel
/// per-row set merges with exact-prefix-sum allocation).
SpGemmPlan SpGemmSymbolic(const CsrMatrix& a, const CsrMatrix& b,
                          exec::ExecContext* ctx = nullptr);

/// Numeric pass: fills values for a * b into the structure described by
/// `plan` (which must have been built for operands with a and b's
/// sparsity patterns), then prunes to `max_row_nnz` and drops exact
/// zeros. Bit-identical to SpGemm(a, b, max_row_nnz) by construction.
CsrMatrix SpGemmNumeric(const CsrMatrix& a, const CsrMatrix& b,
                        const SpGemmPlan& plan, int64_t max_row_nnz = 0,
                        exec::ExecContext* ctx = nullptr);

/// Sparse-sparse product a * b (symbolic + numeric pass).
///
/// `max_row_nnz` bounds densification: when > 0, each output row keeps only
/// the `max_row_nnz` entries largest by (|value|, then smaller column
/// index) — the column tie-break pins the selection so equal-magnitude
/// ties resolve identically at every thread count and with or without
/// plan reuse. Meta-path composition (Eq. 1) chains several SpGEMMs,
/// whose exact result densifies on power-law graphs; the budget mirrors
/// the error-threshold sparsification the paper invokes for scalability.
/// 0 means exact.
///
/// When `plans` is non-null the symbolic pass is served from it (and
/// retained for future calls over the same operands).
CsrMatrix SpGemm(const CsrMatrix& a, const CsrMatrix& b,
                 int64_t max_row_nnz = 0, exec::ExecContext* ctx = nullptr,
                 SpGemmPlanCache* plans = nullptr);

/// Dense product a * x (x dense (a.cols, d)). The inner loop is blocked
/// over x's columns so the output row strip stays cache-resident while a
/// row's sparse entries stream by; per-element accumulation order is
/// unchanged (bit-identical to the unblocked loop).
Matrix SpMmDense(const CsrMatrix& a, const Matrix& x,
                 exec::ExecContext* ctx = nullptr);

/// Dense product a^T * x: materializes the (parallel) transpose and runs
/// the row-parallel SpMmDense over it. The gather accumulates each output
/// element in ascending source-row order — exactly the order of the old
/// sequential column-scatter — so the parallel path is value-preserving.
Matrix SpMmDenseT(const CsrMatrix& a, const Matrix& x,
                  exec::ExecContext* ctx = nullptr);

/// y = a * x for a dense vector x.
std::vector<float> SpMv(const CsrMatrix& a, const std::vector<float>& x,
                        exec::ExecContext* ctx = nullptr);

/// y = a * x written into a caller-owned buffer (resized to a.rows()),
/// so iterative solvers reuse one allocation across iterations.
void SpMvInto(const CsrMatrix& a, const std::vector<float>& x,
              std::vector<float>& y, exec::ExecContext* ctx = nullptr);

/// y = a^T * x via the materialized parallel transpose (row-parallel
/// gather in ascending source-row order; value-preserving vs the old
/// sequential column-scatter).
std::vector<float> SpMvT(const CsrMatrix& a, const std::vector<float>& x,
                         exec::ExecContext* ctx = nullptr);

/// Extracts the submatrix a[row_keep, col_keep] with indices remapped to
/// the keep-list positions. Keep-lists must contain valid, unique ids.
CsrMatrix Submatrix(const CsrMatrix& a, const std::vector<int32_t>& row_keep,
                    const std::vector<int32_t>& col_keep);

/// Elementwise sum a + b (same shape).
CsrMatrix AddElementwise(const CsrMatrix& a, const CsrMatrix& b);

/// Returns a square symmetric matrix max(a, a^T) built from a square a
/// (union of edges in both directions, values summed).
CsrMatrix Symmetrize(const CsrMatrix& a);

/// Personalized PageRank score vector via power iteration:
///   pi <- alpha * teleport + (1 - alpha) * A^T pi
/// where `a` should be (sym-)normalized and `teleport` sums to 1.
/// Terminates after `max_iters` or when the L1 change drops below `tol`.
/// The result approximates the column mass of the PPR matrix
/// alpha (I - (1-alpha) A)^-1 restricted to the teleport distribution,
/// which is exactly the aggregate neighbor-influence score of Eq. (13).
///
/// Internally materializes a^T once so each iteration is a row-parallel
/// gather SpMv; the L1 delta uses an ordered chunk reduction. Callers
/// whose matrix is bit-exactly symmetric (structure and values — e.g. a
/// SymNormalize'd bipartite block, whose mirror entries multiply the same
/// value by the same single-rounded inv_sqrt product) may pass
/// `symmetric = true` to skip the transpose entirely: a^T == a
/// bit-for-bit, so the iterates are unchanged while the peak transient
/// drops by the transposed copy plus its histogram scratch.
std::vector<float> PprScores(const CsrMatrix& a,
                             const std::vector<float>& teleport, float alpha,
                             int max_iters = 50, float tol = 1e-6f,
                             exec::ExecContext* ctx = nullptr,
                             bool symmetric = false);

}  // namespace freehgc::sparse

#endif  // FREEHGC_SPARSE_OPS_H_
