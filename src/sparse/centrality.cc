#include "sparse/centrality.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <queue>

#include "common/logging.h"
#include "common/rng.h"

namespace freehgc::sparse {

std::vector<float> PprPush(
    const CsrMatrix& a,
    const std::vector<std::pair<int32_t, float>>& teleport, float alpha,
    float epsilon) {
  FREEHGC_CHECK(a.rows() == a.cols());
  const int32_t n = a.rows();
  std::vector<float> p(static_cast<size_t>(n), 0.0f);
  std::vector<float> residual(static_cast<size_t>(n), 0.0f);
  std::deque<int32_t> queue;
  std::vector<uint8_t> queued(static_cast<size_t>(n), 0);
  for (const auto& [v, mass] : teleport) {
    FREEHGC_CHECK(v >= 0 && v < n);
    residual[static_cast<size_t>(v)] += mass;
    if (!queued[static_cast<size_t>(v)]) {
      queue.push_back(v);
      queued[static_cast<size_t>(v)] = 1;
    }
  }
  // Forward push: settle alpha of the residual locally, spread the rest
  // along outgoing (normalized) edges; nodes re-enter the queue while
  // their residual exceeds epsilon * degree.
  while (!queue.empty()) {
    const int32_t v = queue.front();
    queue.pop_front();
    queued[static_cast<size_t>(v)] = 0;
    const float r = residual[static_cast<size_t>(v)];
    const int64_t deg = a.RowNnz(v);
    if (r <= epsilon * static_cast<float>(std::max<int64_t>(1, deg))) {
      continue;
    }
    residual[static_cast<size_t>(v)] = 0.0f;
    p[static_cast<size_t>(v)] += alpha * r;
    if (deg == 0) continue;
    const float spread = (1.0f - alpha) * r;
    auto idx = a.RowIndices(v);
    auto val = a.RowValues(v);
    const float row_sum = a.RowSum(v);
    if (row_sum <= 0) continue;
    for (size_t k = 0; k < idx.size(); ++k) {
      const int32_t u = idx[k];
      residual[static_cast<size_t>(u)] += spread * val[k] / row_sum;
      const int64_t udeg = std::max<int64_t>(1, a.RowNnz(u));
      if (!queued[static_cast<size_t>(u)] &&
          residual[static_cast<size_t>(u)] >
              epsilon * static_cast<float>(udeg)) {
        queue.push_back(u);
        queued[static_cast<size_t>(u)] = 1;
      }
    }
  }
  return p;
}

const char* CentralityKindName(CentralityKind kind) {
  switch (kind) {
    case CentralityKind::kDegree:
      return "degree";
    case CentralityKind::kCloseness:
      return "closeness";
    case CentralityKind::kBetweenness:
      return "betweenness";
    case CentralityKind::kHubs:
      return "hubs";
    case CentralityKind::kAuthorities:
      return "authorities";
  }
  return "?";
}

namespace {

std::vector<double> DegreeCentrality(const CsrMatrix& a) {
  std::vector<double> out(static_cast<size_t>(a.rows()), 0.0);
  for (int32_t v = 0; v < a.rows(); ++v) {
    out[static_cast<size_t>(v)] = static_cast<double>(a.RowNnz(v));
  }
  return out;
}

/// BFS distances from a source (-1 = unreachable).
std::vector<int32_t> Bfs(const CsrMatrix& a, int32_t src) {
  std::vector<int32_t> dist(static_cast<size_t>(a.rows()), -1);
  std::deque<int32_t> queue = {src};
  dist[static_cast<size_t>(src)] = 0;
  while (!queue.empty()) {
    const int32_t v = queue.front();
    queue.pop_front();
    for (int32_t u : a.RowIndices(v)) {
      if (dist[static_cast<size_t>(u)] < 0) {
        dist[static_cast<size_t>(u)] = dist[static_cast<size_t>(v)] + 1;
        queue.push_back(u);
      }
    }
  }
  return dist;
}

std::vector<double> ClosenessCentrality(const CsrMatrix& a,
                                        const CentralityOptions& opts) {
  const int32_t n = a.rows();
  std::vector<double> out(static_cast<size_t>(n), 0.0);
  if (n == 0) return out;
  Rng rng(opts.seed);
  const int32_t samples = std::min<int32_t>(opts.num_samples, n);
  const auto sources = rng.SampleWithoutReplacement(n, samples);
  // Harmonic closeness estimated from sampled sources: sum over sources s
  // of 1/d(s, v) (BFS on the reverse direction approximated by the same
  // matrix; for symmetric graphs these coincide).
  for (int32_t s : sources) {
    const auto dist = Bfs(a, s);
    for (int32_t v = 0; v < n; ++v) {
      const int32_t d = dist[static_cast<size_t>(v)];
      if (d > 0) out[static_cast<size_t>(v)] += 1.0 / d;
    }
  }
  return out;
}

std::vector<double> BetweennessCentrality(const CsrMatrix& a,
                                          const CentralityOptions& opts) {
  // Brandes (2001), restricted to sampled sources.
  const int32_t n = a.rows();
  std::vector<double> out(static_cast<size_t>(n), 0.0);
  if (n == 0) return out;
  Rng rng(opts.seed);
  const int32_t samples = std::min<int32_t>(opts.num_samples, n);
  const auto sources = rng.SampleWithoutReplacement(n, samples);
  for (int32_t s : sources) {
    std::vector<std::vector<int32_t>> preds(static_cast<size_t>(n));
    std::vector<int64_t> sigma(static_cast<size_t>(n), 0);
    std::vector<int32_t> dist(static_cast<size_t>(n), -1);
    std::vector<int32_t> order;
    order.reserve(static_cast<size_t>(n));
    std::deque<int32_t> queue = {s};
    sigma[static_cast<size_t>(s)] = 1;
    dist[static_cast<size_t>(s)] = 0;
    while (!queue.empty()) {
      const int32_t v = queue.front();
      queue.pop_front();
      order.push_back(v);
      for (int32_t u : a.RowIndices(v)) {
        if (dist[static_cast<size_t>(u)] < 0) {
          dist[static_cast<size_t>(u)] = dist[static_cast<size_t>(v)] + 1;
          queue.push_back(u);
        }
        if (dist[static_cast<size_t>(u)] ==
            dist[static_cast<size_t>(v)] + 1) {
          sigma[static_cast<size_t>(u)] += sigma[static_cast<size_t>(v)];
          preds[static_cast<size_t>(u)].push_back(v);
        }
      }
    }
    std::vector<double> delta(static_cast<size_t>(n), 0.0);
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const int32_t w = *it;
      for (int32_t v : preds[static_cast<size_t>(w)]) {
        delta[static_cast<size_t>(v)] +=
            static_cast<double>(sigma[static_cast<size_t>(v)]) /
            static_cast<double>(sigma[static_cast<size_t>(w)]) *
            (1.0 + delta[static_cast<size_t>(w)]);
      }
      if (w != s) out[static_cast<size_t>(w)] += delta[static_cast<size_t>(w)];
    }
  }
  return out;
}

std::vector<double> Hits(const CsrMatrix& a, bool hubs,
                         const CentralityOptions& opts) {
  const int32_t n = a.rows();
  std::vector<double> hub(static_cast<size_t>(n), 1.0);
  std::vector<double> auth(static_cast<size_t>(n), 1.0);
  auto normalize = [](std::vector<double>& v) {
    double sq = 0.0;
    for (double x : v) sq += x * x;
    if (sq <= 0) return;
    const double inv = 1.0 / std::sqrt(sq);
    for (double& x : v) x *= inv;
  };
  for (int it = 0; it < opts.hits_iters; ++it) {
    // auth = A^T hub ; hub = A auth.
    std::fill(auth.begin(), auth.end(), 0.0);
    for (int32_t v = 0; v < n; ++v) {
      for (int32_t u : a.RowIndices(v)) {
        auth[static_cast<size_t>(u)] += hub[static_cast<size_t>(v)];
      }
    }
    normalize(auth);
    std::fill(hub.begin(), hub.end(), 0.0);
    for (int32_t v = 0; v < n; ++v) {
      double acc = 0.0;
      for (int32_t u : a.RowIndices(v)) {
        acc += auth[static_cast<size_t>(u)];
      }
      hub[static_cast<size_t>(v)] = acc;
    }
    normalize(hub);
  }
  return hubs ? hub : auth;
}

}  // namespace

std::vector<double> Centrality(const CsrMatrix& a, CentralityKind kind,
                               const CentralityOptions& opts) {
  FREEHGC_CHECK(a.rows() == a.cols());
  switch (kind) {
    case CentralityKind::kDegree:
      return DegreeCentrality(a);
    case CentralityKind::kCloseness:
      return ClosenessCentrality(a, opts);
    case CentralityKind::kBetweenness:
      return BetweennessCentrality(a, opts);
    case CentralityKind::kHubs:
      return Hits(a, /*hubs=*/true, opts);
    case CentralityKind::kAuthorities:
      return Hits(a, /*hubs=*/false, opts);
  }
  return {};
}

}  // namespace freehgc::sparse
