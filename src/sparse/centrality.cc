#include "sparse/centrality.h"

#include <algorithm>
#include <cmath>
#include <deque>

#include "common/logging.h"
#include "common/rng.h"
#include "sparse/ops.h"

namespace freehgc::sparse {

std::vector<float> PprPush(
    const CsrMatrix& a,
    const std::vector<std::pair<int32_t, float>>& teleport, float alpha,
    float epsilon) {
  FREEHGC_CHECK(a.rows() == a.cols());
  const int32_t n = a.rows();
  std::vector<float> p(static_cast<size_t>(n), 0.0f);
  std::vector<float> residual(static_cast<size_t>(n), 0.0f);
  std::deque<int32_t> queue;
  std::vector<uint8_t> queued(static_cast<size_t>(n), 0);
  for (const auto& [v, mass] : teleport) {
    FREEHGC_CHECK(v >= 0 && v < n);
    residual[static_cast<size_t>(v)] += mass;
    if (!queued[static_cast<size_t>(v)]) {
      queue.push_back(v);
      queued[static_cast<size_t>(v)] = 1;
    }
  }
  // Forward push: settle alpha of the residual locally, spread the rest
  // along outgoing (normalized) edges; nodes re-enter the queue while
  // their residual exceeds epsilon * degree. The push order is part of
  // the algorithm's definition, so this stays sequential; the parallel
  // NIM path uses PprScores instead.
  while (!queue.empty()) {
    const int32_t v = queue.front();
    queue.pop_front();
    queued[static_cast<size_t>(v)] = 0;
    const float r = residual[static_cast<size_t>(v)];
    const int64_t deg = a.RowNnz(v);
    if (r <= epsilon * static_cast<float>(std::max<int64_t>(1, deg))) {
      continue;
    }
    residual[static_cast<size_t>(v)] = 0.0f;
    p[static_cast<size_t>(v)] += alpha * r;
    if (deg == 0) continue;
    const float spread = (1.0f - alpha) * r;
    auto idx = a.RowIndices(v);
    auto val = a.RowValues(v);
    const float row_sum = a.RowSum(v);
    if (row_sum <= 0) continue;
    for (size_t k = 0; k < idx.size(); ++k) {
      const int32_t u = idx[k];
      residual[static_cast<size_t>(u)] += spread * val[k] / row_sum;
      const int64_t udeg = std::max<int64_t>(1, a.RowNnz(u));
      if (!queued[static_cast<size_t>(u)] &&
          residual[static_cast<size_t>(u)] >
              epsilon * static_cast<float>(udeg)) {
        queue.push_back(u);
        queued[static_cast<size_t>(u)] = 1;
      }
    }
  }
  return p;
}

const char* CentralityKindName(CentralityKind kind) {
  switch (kind) {
    case CentralityKind::kDegree:
      return "degree";
    case CentralityKind::kCloseness:
      return "closeness";
    case CentralityKind::kBetweenness:
      return "betweenness";
    case CentralityKind::kHubs:
      return "hubs";
    case CentralityKind::kAuthorities:
      return "authorities";
  }
  return "?";
}

namespace {

std::vector<double> DegreeCentrality(const CsrMatrix& a,
                                     exec::ExecContext& ex) {
  std::vector<double> out(static_cast<size_t>(a.rows()), 0.0);
  ex.ParallelFor(a.rows(), 1024,
                 [&](int64_t begin, int64_t end, exec::Workspace&) {
                   for (int64_t v = begin; v < end; ++v) {
                     out[static_cast<size_t>(v)] = static_cast<double>(
                         a.RowNnz(static_cast<int32_t>(v)));
                   }
                 });
  return out;
}

/// BFS distances from a source into `dist` (-1 = unreachable), using the
/// workspace frontier buffer instead of a per-call deque.
void BfsInto(const CsrMatrix& a, int32_t src, std::vector<int32_t>& dist,
             std::vector<int32_t>& frontier) {
  frontier.clear();
  frontier.push_back(src);
  dist[static_cast<size_t>(src)] = 0;
  for (size_t head = 0; head < frontier.size(); ++head) {
    const int32_t v = frontier[head];
    for (int32_t u : a.RowIndices(v)) {
      if (dist[static_cast<size_t>(u)] < 0) {
        dist[static_cast<size_t>(u)] = dist[static_cast<size_t>(v)] + 1;
        frontier.push_back(u);
      }
    }
  }
}

/// Sums `part` into `acc` (resizing on first use) — the ordered combine
/// step shared by the sampled-source estimators.
std::vector<double> CombineAdd(std::vector<double> acc,
                               std::vector<double> part) {
  if (acc.empty()) return part;
  for (size_t i = 0; i < acc.size(); ++i) acc[i] += part[i];
  return acc;
}

std::vector<double> ClosenessCentrality(const CsrMatrix& a,
                                        const CentralityOptions& opts,
                                        exec::ExecContext& ex) {
  const int32_t n = a.rows();
  if (n == 0) return {};
  Rng rng(opts.seed);
  const int32_t samples = std::min<int32_t>(opts.num_samples, n);
  const auto sources = rng.SampleWithoutReplacement(n, samples);
  // Harmonic closeness estimated from sampled sources: sum over sources s
  // of 1/d(s, v). One chunk per source (grain 1) with ordered combine
  // keeps the float association equal to the sequential source order.
  std::vector<double> out = ex.ParallelReduce(
      static_cast<int64_t>(sources.size()), 1, std::vector<double>(),
      [&](int64_t begin, int64_t end, exec::Workspace& ws) {
        std::vector<double> part(static_cast<size_t>(n), 0.0);
        for (int64_t si = begin; si < end; ++si) {
          std::vector<int32_t>& dist = ws.I32(static_cast<size_t>(n), -1);
          std::vector<int32_t>& frontier = ws.Touched();
          BfsInto(a, sources[static_cast<size_t>(si)], dist, frontier);
          for (int32_t v = 0; v < n; ++v) {
            const int32_t d = dist[static_cast<size_t>(v)];
            if (d > 0) part[static_cast<size_t>(v)] += 1.0 / d;
          }
        }
        return part;
      },
      CombineAdd);
  if (out.empty()) out.assign(static_cast<size_t>(n), 0.0);
  return out;
}

std::vector<double> BetweennessCentrality(const CsrMatrix& a,
                                          const CentralityOptions& opts,
                                          exec::ExecContext& ex) {
  // Brandes (2001), restricted to sampled sources; source BFS+backprop
  // runs are independent, so they parallelize one source per chunk.
  const int32_t n = a.rows();
  if (n == 0) return {};
  Rng rng(opts.seed);
  const int32_t samples = std::min<int32_t>(opts.num_samples, n);
  const auto sources = rng.SampleWithoutReplacement(n, samples);
  std::vector<double> out = ex.ParallelReduce(
      static_cast<int64_t>(sources.size()), 1, std::vector<double>(),
      [&](int64_t begin, int64_t end, exec::Workspace& ws) {
        std::vector<double> part(static_cast<size_t>(n), 0.0);
        for (int64_t si = begin; si < end; ++si) {
          const int32_t s = sources[static_cast<size_t>(si)];
          std::vector<std::vector<int32_t>> preds(static_cast<size_t>(n));
          std::vector<int64_t>& sigma = ws.I64(static_cast<size_t>(n), 0);
          std::vector<int32_t>& dist = ws.I32(static_cast<size_t>(n), -1);
          std::vector<int32_t>& order = ws.Touched();
          sigma[static_cast<size_t>(s)] = 1;
          dist[static_cast<size_t>(s)] = 0;
          order.push_back(s);
          for (size_t head = 0; head < order.size(); ++head) {
            const int32_t v = order[head];
            for (int32_t u : a.RowIndices(v)) {
              if (dist[static_cast<size_t>(u)] < 0) {
                dist[static_cast<size_t>(u)] =
                    dist[static_cast<size_t>(v)] + 1;
                order.push_back(u);
              }
              if (dist[static_cast<size_t>(u)] ==
                  dist[static_cast<size_t>(v)] + 1) {
                sigma[static_cast<size_t>(u)] +=
                    sigma[static_cast<size_t>(v)];
                preds[static_cast<size_t>(u)].push_back(v);
              }
            }
          }
          std::vector<double> delta(static_cast<size_t>(n), 0.0);
          for (auto it = order.rbegin(); it != order.rend(); ++it) {
            const int32_t w = *it;
            for (int32_t v : preds[static_cast<size_t>(w)]) {
              delta[static_cast<size_t>(v)] +=
                  static_cast<double>(sigma[static_cast<size_t>(v)]) /
                  static_cast<double>(sigma[static_cast<size_t>(w)]) *
                  (1.0 + delta[static_cast<size_t>(w)]);
            }
            if (w != s) {
              part[static_cast<size_t>(w)] += delta[static_cast<size_t>(w)];
            }
          }
        }
        return part;
      },
      CombineAdd);
  if (out.empty()) out.assign(static_cast<size_t>(n), 0.0);
  return out;
}

std::vector<double> Hits(const CsrMatrix& a, bool hubs,
                         const CentralityOptions& opts,
                         exec::ExecContext& ex) {
  const int32_t n = a.rows();
  // Both half-steps are row-parallel gathers: auth = A^T hub runs over
  // the materialized transpose, hub = A auth over a itself. The gather
  // accumulates sources in ascending order, matching the sequential
  // scatter's per-element order.
  const CsrMatrix at = Transpose(a);
  std::vector<double> hub(static_cast<size_t>(n), 1.0);
  std::vector<double> auth(static_cast<size_t>(n), 1.0);
  auto gather = [&](const CsrMatrix& m, const std::vector<double>& x,
                    std::vector<double>& y) {
    ex.ParallelFor(n, 512,
                   [&](int64_t begin, int64_t end, exec::Workspace&) {
                     for (int64_t v = begin; v < end; ++v) {
                       double acc = 0.0;
                       for (int32_t u : m.RowIndices(static_cast<int32_t>(v))) {
                         acc += x[static_cast<size_t>(u)];
                       }
                       y[static_cast<size_t>(v)] = acc;
                     }
                   });
  };
  auto normalize = [&](std::vector<double>& v) {
    const double sq = ex.ParallelReduce(
        static_cast<int64_t>(v.size()), 2048, 0.0,
        [&](int64_t begin, int64_t end, exec::Workspace&) {
          double s = 0.0;
          for (int64_t i = begin; i < end; ++i) {
            s += v[static_cast<size_t>(i)] * v[static_cast<size_t>(i)];
          }
          return s;
        },
        [](double acc, double part) { return acc + part; });
    if (sq <= 0) return;
    const double inv = 1.0 / std::sqrt(sq);
    ex.ParallelFor(static_cast<int64_t>(v.size()), 2048,
                   [&](int64_t begin, int64_t end, exec::Workspace&) {
                     for (int64_t i = begin; i < end; ++i) {
                       v[static_cast<size_t>(i)] *= inv;
                     }
                   });
  };
  for (int it = 0; it < opts.hits_iters; ++it) {
    gather(at, hub, auth);
    normalize(auth);
    gather(a, auth, hub);
    normalize(hub);
  }
  return hubs ? hub : auth;
}

}  // namespace

std::vector<double> Centrality(const CsrMatrix& a, CentralityKind kind,
                               const CentralityOptions& opts,
                               exec::ExecContext* ctx) {
  FREEHGC_CHECK(a.rows() == a.cols());
  exec::ExecContext& ex = exec::Resolve(ctx);
  switch (kind) {
    case CentralityKind::kDegree:
      return DegreeCentrality(a, ex);
    case CentralityKind::kCloseness:
      return ClosenessCentrality(a, opts, ex);
    case CentralityKind::kBetweenness:
      return BetweennessCentrality(a, opts, ex);
    case CentralityKind::kHubs:
      return Hits(a, /*hubs=*/true, opts, ex);
    case CentralityKind::kAuthorities:
      return Hits(a, /*hubs=*/false, opts, ex);
  }
  return {};
}

}  // namespace freehgc::sparse
