#ifndef FREEHGC_SPARSE_CSR_H_
#define FREEHGC_SPARSE_CSR_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/storage.h"

namespace freehgc {

/// One COO entry used when building CSR matrices.
struct CooEntry {
  int32_t row = 0;
  int32_t col = 0;
  float value = 1.0f;
};

/// Compressed-sparse-row float matrix.
///
/// The core structural container of the library: every relation of a
/// heterogeneous graph and every composed meta-path adjacency is a
/// CsrMatrix. Rows/cols are int32 node ids local to a node type; indptr is
/// int64 so edge counts may exceed 2^31.
///
/// Storage is either owned (heap vectors, the default for every kernel
/// output) or a zero-copy view over external memory — the v3 mapped
/// container path builds matrices with FromView over mmap'd sections,
/// pinned by a keepalive shared_ptr (see common/storage.h). All read
/// accessors are identical across backings; mutable_values() copies a
/// view into owned storage first (copy-on-write), so kernels never
/// observe the difference.
class CsrMatrix {
 public:
  /// Empty 0x0 matrix.
  CsrMatrix() = default;

  /// rows x cols matrix with no entries.
  CsrMatrix(int32_t rows, int32_t cols)
      : rows_(rows), cols_(cols),
        indptr_(std::vector<int64_t>(static_cast<size_t>(rows) + 1, 0)) {}

  /// Builds from (possibly duplicated, unsorted) COO entries; duplicate
  /// coordinates are summed. Fails if any coordinate is out of range.
  static Result<CsrMatrix> FromCoo(int32_t rows, int32_t cols,
                                   std::vector<CooEntry> entries);

  /// Adopts pre-built CSR arrays. Validates monotone indptr and in-range
  /// column indices.
  static Result<CsrMatrix> FromParts(int32_t rows, int32_t cols,
                                     std::vector<int64_t> indptr,
                                     std::vector<int32_t> indices,
                                     std::vector<float> values);

  /// Wraps external CSR arrays without copying; `keepalive` pins the
  /// memory (a MappedFile for container-backed matrices). Runs the same
  /// structural validation as FromParts, with branch-free loops — this is
  /// the per-relation cost of a mapped graph load, so it must scan at
  /// memory bandwidth rather than branch per element.
  static Result<CsrMatrix> FromView(int32_t rows, int32_t cols,
                                    std::span<const int64_t> indptr,
                                    std::span<const int32_t> indices,
                                    std::span<const float> values,
                                    std::shared_ptr<const void> keepalive);

  int32_t rows() const { return rows_; }
  int32_t cols() const { return cols_; }
  int64_t nnz() const { return static_cast<int64_t>(indices_.size()); }

  /// Column indices of row r's entries (sorted ascending).
  std::span<const int32_t> RowIndices(int32_t r) const {
    return {indices_.data() + indptr_[r],
            static_cast<size_t>(indptr_[r + 1] - indptr_[r])};
  }

  /// Values of row r's entries, aligned with RowIndices.
  std::span<const float> RowValues(int32_t r) const {
    return {values_.data() + indptr_[r],
            static_cast<size_t>(indptr_[r + 1] - indptr_[r])};
  }

  int64_t RowNnz(int32_t r) const { return indptr_[r + 1] - indptr_[r]; }

  std::span<const int64_t> indptr() const { return indptr_.span(); }
  std::span<const int32_t> indices() const { return indices_.span(); }
  std::span<const float> values() const { return values_.span(); }

  /// In-place value mutation; detaches mapped storage (copy-on-write).
  /// Do not resize through the returned reference.
  std::vector<float>& mutable_values() { return values_.Mutable(); }

  /// True when any array views external (mapped) memory.
  bool is_mapped() const {
    return indptr_.is_view() || indices_.is_view() || values_.is_view();
  }

  /// Sum of values in row r.
  float RowSum(int32_t r) const;

  /// Out-degree (#entries) per row.
  std::vector<int64_t> RowDegrees() const;

  /// Approximate logical footprint in bytes (used by the Table VII
  /// storage accounting); identical for owned and mapped backings.
  size_t MemoryBytes() const;

  /// Heap bytes actually owned by this matrix: equals MemoryBytes() when
  /// owned, ~0 when every array views a mapping.
  size_t OwnedBytes() const {
    return indptr_.OwnedBytes() + indices_.OwnedBytes() +
           values_.OwnedBytes();
  }

  /// True when entry (r, c) exists.
  bool Contains(int32_t r, int32_t c) const;

  /// Full invariant check: monotone indptr with consistent endpoints,
  /// in-range and strictly ascending (hence unique) column indices per
  /// row, and finite values. Every kernel in sparse/ops.cc upholds these
  /// invariants; debug builds assert them after each op, and the
  /// differential test suite asserts them after every kernel call.
  /// FromParts checks only the structural subset (it must stay cheap on
  /// the deserialization path); call this for the full contract.
  Status Validate() const;

  /// Order-sensitive 64-bit FNV-1a hash of shape, structure, and values.
  /// Used by pipeline::ArtifactCache to key reusable SpGEMM plans by
  /// operand identity.
  uint64_t ContentFingerprint() const;

  bool operator==(const CsrMatrix& other) const;

 private:
  int32_t rows_ = 0;
  int32_t cols_ = 0;
  ArrayRef<int64_t> indptr_ = std::vector<int64_t>{0};
  ArrayRef<int32_t> indices_;
  ArrayRef<float> values_;
};

}  // namespace freehgc

#endif  // FREEHGC_SPARSE_CSR_H_
