#include "sparse/reference.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"

namespace freehgc::sparse::reference {

namespace {

CsrMatrix FromPartsOrDie(int32_t rows, int32_t cols,
                         std::vector<int64_t> indptr,
                         std::vector<int32_t> indices,
                         std::vector<float> values) {
  auto res = CsrMatrix::FromParts(rows, cols, std::move(indptr),
                                  std::move(indices), std::move(values));
  FREEHGC_CHECK(res.ok());
  return std::move(res).value();
}

}  // namespace

CsrMatrix TransposeRef(const CsrMatrix& a) {
  std::vector<std::vector<int32_t>> col_rows(static_cast<size_t>(a.cols()));
  std::vector<std::vector<float>> col_vals(static_cast<size_t>(a.cols()));
  for (int32_t r = 0; r < a.rows(); ++r) {
    auto idx = a.RowIndices(r);
    auto val = a.RowValues(r);
    for (size_t k = 0; k < idx.size(); ++k) {
      col_rows[static_cast<size_t>(idx[k])].push_back(r);
      col_vals[static_cast<size_t>(idx[k])].push_back(val[k]);
    }
  }
  std::vector<int64_t> indptr(static_cast<size_t>(a.cols()) + 1, 0);
  std::vector<int32_t> indices;
  std::vector<float> values;
  for (int32_t c = 0; c < a.cols(); ++c) {
    indices.insert(indices.end(), col_rows[static_cast<size_t>(c)].begin(),
                   col_rows[static_cast<size_t>(c)].end());
    values.insert(values.end(), col_vals[static_cast<size_t>(c)].begin(),
                  col_vals[static_cast<size_t>(c)].end());
    indptr[static_cast<size_t>(c) + 1] = static_cast<int64_t>(indices.size());
  }
  return FromPartsOrDie(a.cols(), a.rows(), std::move(indptr),
                        std::move(indices), std::move(values));
}

CsrMatrix RowNormalizeRef(const CsrMatrix& a) {
  CsrMatrix out = a;
  auto& values = out.mutable_values();
  for (int32_t r = 0; r < a.rows(); ++r) {
    const float s = a.RowSum(r);
    if (s == 0.0f) continue;
    const float inv = 1.0f / s;
    for (int64_t k = a.indptr()[static_cast<size_t>(r)];
         k < a.indptr()[static_cast<size_t>(r) + 1]; ++k) {
      values[static_cast<size_t>(k)] *= inv;
    }
  }
  return out;
}

CsrMatrix SymNormalizeRef(const CsrMatrix& a) {
  FREEHGC_CHECK(a.rows() == a.cols());
  std::vector<float> inv_sqrt(static_cast<size_t>(a.rows()), 0.0f);
  for (int32_t r = 0; r < a.rows(); ++r) {
    const float d = a.RowSum(r);
    inv_sqrt[static_cast<size_t>(r)] = d > 0 ? 1.0f / std::sqrt(d) : 0.0f;
  }
  CsrMatrix out = a;
  auto& values = out.mutable_values();
  for (int32_t r = 0; r < a.rows(); ++r) {
    for (int64_t k = a.indptr()[static_cast<size_t>(r)];
         k < a.indptr()[static_cast<size_t>(r) + 1]; ++k) {
      const int32_t c = a.indices()[static_cast<size_t>(k)];
      values[static_cast<size_t>(k)] *= inv_sqrt[static_cast<size_t>(r)] *
                                        inv_sqrt[static_cast<size_t>(c)];
    }
  }
  return out;
}

CsrMatrix SpGemmRef(const CsrMatrix& a, const CsrMatrix& b,
                    int64_t max_row_nnz) {
  FREEHGC_CHECK(a.cols() == b.rows());
  const int32_t m = a.rows(), n = b.cols();
  std::vector<int64_t> indptr(static_cast<size_t>(m) + 1, 0);
  std::vector<int32_t> indices;
  std::vector<float> values;
  std::vector<float> accum(static_cast<size_t>(n), 0.0f);
  std::vector<uint8_t> mark(static_cast<size_t>(n), 0);
  std::vector<int32_t> cols;
  for (int32_t i = 0; i < m; ++i) {
    cols.clear();
    auto ai = a.RowIndices(i);
    auto av = a.RowValues(i);
    for (size_t k = 0; k < ai.size(); ++k) {
      const int32_t p = ai[k];
      const float apv = av[k];
      auto bi = b.RowIndices(p);
      auto bv = b.RowValues(p);
      for (size_t t = 0; t < bi.size(); ++t) {
        if (!mark[static_cast<size_t>(bi[t])]) {
          mark[static_cast<size_t>(bi[t])] = 1;
          cols.push_back(bi[t]);
        }
        accum[static_cast<size_t>(bi[t])] += apv * bv[t];
      }
    }
    // The optimized kernel merges the full structural pattern and
    // accumulates in the same k-then-t order, so values agree exactly.
    std::sort(cols.begin(), cols.end());
    std::vector<int32_t> kept;
    for (int32_t c : cols) {
      if (accum[static_cast<size_t>(c)] != 0.0f) kept.push_back(c);
    }
    if (max_row_nnz > 0 &&
        static_cast<int64_t>(kept.size()) > max_row_nnz) {
      // Pinned tie-break via a full sort (the optimized kernel uses a
      // partial select over the same total order).
      std::sort(kept.begin(), kept.end(), [&](int32_t x, int32_t y) {
        const float axv = std::fabs(accum[static_cast<size_t>(x)]);
        const float ayv = std::fabs(accum[static_cast<size_t>(y)]);
        if (axv != ayv) return axv > ayv;
        return x < y;
      });
      kept.resize(static_cast<size_t>(max_row_nnz));
      std::sort(kept.begin(), kept.end());
    }
    for (int32_t c : kept) {
      indices.push_back(c);
      values.push_back(accum[static_cast<size_t>(c)]);
    }
    for (int32_t c : cols) {
      accum[static_cast<size_t>(c)] = 0.0f;
      mark[static_cast<size_t>(c)] = 0;
    }
    indptr[static_cast<size_t>(i) + 1] = static_cast<int64_t>(indices.size());
  }
  return FromPartsOrDie(m, n, std::move(indptr), std::move(indices),
                        std::move(values));
}

Matrix SpMmDenseRef(const CsrMatrix& a, const Matrix& x) {
  FREEHGC_CHECK(a.cols() == x.rows());
  Matrix out(a.rows(), x.cols());
  for (int32_t r = 0; r < a.rows(); ++r) {
    float* out_row = out.Row(r);
    auto idx = a.RowIndices(r);
    auto val = a.RowValues(r);
    for (size_t k = 0; k < idx.size(); ++k) {
      const float* x_row = x.Row(idx[k]);
      for (int64_t c = 0; c < x.cols(); ++c) {
        out_row[c] += val[k] * x_row[c];
      }
    }
  }
  return out;
}

Matrix SpMmDenseTRef(const CsrMatrix& a, const Matrix& x) {
  FREEHGC_CHECK(a.rows() == x.rows());
  Matrix out(a.cols(), x.cols());
  for (int32_t r = 0; r < a.rows(); ++r) {
    auto idx = a.RowIndices(r);
    auto val = a.RowValues(r);
    const float* x_row = x.Row(r);
    for (size_t k = 0; k < idx.size(); ++k) {
      float* out_row = out.Row(idx[k]);
      for (int64_t c = 0; c < x.cols(); ++c) {
        out_row[c] += val[k] * x_row[c];
      }
    }
  }
  return out;
}

std::vector<float> SpMvRef(const CsrMatrix& a, const std::vector<float>& x) {
  FREEHGC_CHECK(static_cast<int32_t>(x.size()) == a.cols());
  std::vector<float> y(static_cast<size_t>(a.rows()), 0.0f);
  for (int32_t r = 0; r < a.rows(); ++r) {
    auto idx = a.RowIndices(r);
    auto val = a.RowValues(r);
    float acc = 0.0f;
    for (size_t k = 0; k < idx.size(); ++k) {
      acc += val[k] * x[static_cast<size_t>(idx[k])];
    }
    y[static_cast<size_t>(r)] = acc;
  }
  return y;
}

std::vector<float> SpMvTRef(const CsrMatrix& a, const std::vector<float>& x) {
  FREEHGC_CHECK(static_cast<int32_t>(x.size()) == a.rows());
  std::vector<float> y(static_cast<size_t>(a.cols()), 0.0f);
  for (int32_t r = 0; r < a.rows(); ++r) {
    const float xv = x[static_cast<size_t>(r)];
    auto idx = a.RowIndices(r);
    auto val = a.RowValues(r);
    for (size_t k = 0; k < idx.size(); ++k) {
      y[static_cast<size_t>(idx[k])] += val[k] * xv;
    }
  }
  return y;
}

std::vector<float> PprScoresRef(const CsrMatrix& a,
                                const std::vector<float>& teleport,
                                float alpha, int max_iters, float tol) {
  FREEHGC_CHECK(a.rows() == a.cols());
  FREEHGC_CHECK(static_cast<int32_t>(teleport.size()) == a.rows());
  std::vector<float> pi = teleport;
  for (int it = 0; it < max_iters; ++it) {
    const std::vector<float> propagated = SpMvTRef(a, pi);
    double delta = 0.0;
    for (size_t i = 0; i < pi.size(); ++i) {
      const float next =
          alpha * teleport[i] + (1.0f - alpha) * propagated[i];
      delta += std::fabs(next - pi[i]);
      pi[i] = next;
    }
    if (delta < static_cast<double>(tol)) break;
  }
  return pi;
}

}  // namespace freehgc::sparse::reference
