#include "sparse/ops.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <numeric>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace freehgc::sparse {

namespace {

// Minimum chunk widths (grains) per kernel. Chunk layout is a pure
// function of (n, grain) — see exec::ExecContext::ChunkSize — so these
// constants are part of the determinism contract: changing one changes
// the float association of chunked reductions.
constexpr int64_t kRowMergeGrain = 64;   // SpGEMM row merges
constexpr int64_t kRowScaleGrain = 512;  // normalize / SpMv rows
constexpr int64_t kAxpyGrain = 2048;     // elementwise vector updates

// Column-block width of the SpMmDense inner loop: 64 floats (256 B, four
// cache lines) of the output row stay hot while a row's sparse entries
// stream by. Blocking only reorders the (entry, column) loop nest; each
// output element still accumulates its products in ascending entry
// order, so values are bit-identical to the unblocked loop.
constexpr int64_t kSpMmColBlock = 64;

// Transpose chunks are wider than the generic 256-chunk cap allows: each
// chunk owns a full column histogram (cols * 8 bytes), so the chunk
// count — not the thread count, which must not affect layout — bounds
// the transient scratch. At most 16 histograms, and fewer when the
// matrix is wide: the scratch budget is capped at 16 MiB so transposing
// a graph-scale matrix (hundreds of thousands of columns) does not
// transiently allocate more than the matrix itself. The chunk count is a
// pure function of the shape, never the thread count, so the output
// layout stays bit-identical to the sequential transpose.
int64_t TransposeGrain(int64_t rows, int64_t cols) {
  constexpr int64_t kScratchBudgetBytes = int64_t{16} << 20;
  const int64_t by_mem =
      std::max<int64_t>(1, kScratchBudgetBytes / (std::max<int64_t>(1, cols) *
                                                  int64_t{sizeof(int64_t)}));
  const int64_t chunks = std::min<int64_t>(16, by_mem);
  return std::max<int64_t>(2048, (rows + chunks - 1) / chunks);
}

// Debug builds assert the full CSR contract (sorted unique columns,
// monotone indptr, finite values) after every structure-producing
// kernel; release builds skip the O(nnz) scan.
const CsrMatrix& DebugValidated(const CsrMatrix& m) {
#ifndef NDEBUG
  const Status s = m.Validate();
  FREEHGC_CHECK(s.ok()) << s.ToString();
#endif
  return m;
}

}  // namespace

CsrMatrix Transpose(const CsrMatrix& a, exec::ExecContext* ctx) {
  FREEHGC_TRACE_SPAN("transpose");
  const int32_t rows = a.rows(), cols = a.cols();
  exec::ExecContext& ex = exec::Resolve(ctx);
  const int64_t grain = TransposeGrain(rows, cols);
  const int64_t chunk = exec::ExecContext::ChunkSize(rows, grain);
  const int64_t num_chunks = exec::ExecContext::NumChunks(rows, grain);

  // Pass 1 — per-chunk column histograms (disjoint slices of one flat
  // array, so no synchronization and no order dependence).
  std::vector<int64_t> counts(
      static_cast<size_t>(num_chunks) * static_cast<size_t>(cols), 0);
  ex.ParallelFor(rows, grain,
                 [&](int64_t begin, int64_t end, exec::Workspace&) {
                   int64_t* cnt = counts.data() +
                                  (begin / chunk) * static_cast<int64_t>(cols);
                   for (int64_t r = begin; r < end; ++r) {
                     for (int32_t c : a.RowIndices(static_cast<int32_t>(r))) {
                       ++cnt[c];
                     }
                   }
                 });

  // Column totals become the output indptr; the histograms then turn into
  // per-chunk write cursors (chunk c's slot for column j starts after
  // every lower chunk's entries of j). Entries of a column are written in
  // ascending source-row order — chunks cover ascending row ranges and
  // each chunk scans its rows in order — so output rows come out sorted
  // and the result is bit-identical to the sequential transpose.
  std::vector<int64_t> indptr(static_cast<size_t>(cols) + 1, 0);
  for (int64_t c = 0; c < num_chunks; ++c) {
    const int64_t* cnt = counts.data() + c * static_cast<int64_t>(cols);
    for (int32_t j = 0; j < cols; ++j) {
      indptr[static_cast<size_t>(j) + 1] += cnt[j];
    }
  }
  for (size_t i = 1; i < indptr.size(); ++i) indptr[i] += indptr[i - 1];
  {
    std::vector<int64_t> run(indptr.begin(), indptr.end() - 1);
    for (int64_t c = 0; c < num_chunks; ++c) {
      int64_t* cnt = counts.data() + c * static_cast<int64_t>(cols);
      for (int32_t j = 0; j < cols; ++j) {
        const int64_t tmp = cnt[j];
        cnt[j] = run[static_cast<size_t>(j)];
        run[static_cast<size_t>(j)] += tmp;
      }
    }
  }

  // Pass 2 — scatter into the reserved slots.
  std::vector<int32_t> indices(a.indices().size());
  std::vector<float> values(a.values().size());
  ex.ParallelFor(
      rows, grain, [&](int64_t begin, int64_t end, exec::Workspace&) {
        int64_t* cursor =
            counts.data() + (begin / chunk) * static_cast<int64_t>(cols);
        for (int64_t r = begin; r < end; ++r) {
          auto idx = a.RowIndices(static_cast<int32_t>(r));
          auto val = a.RowValues(static_cast<int32_t>(r));
          for (size_t k = 0; k < idx.size(); ++k) {
            const int64_t pos = cursor[idx[k]]++;
            indices[static_cast<size_t>(pos)] = static_cast<int32_t>(r);
            values[static_cast<size_t>(pos)] = val[k];
          }
        }
      });
  auto res = CsrMatrix::FromParts(cols, rows, std::move(indptr),
                                  std::move(indices), std::move(values));
  FREEHGC_CHECK(res.ok());
  CsrMatrix out = std::move(res).value();
  DebugValidated(out);
  return out;
}

CsrMatrix RowNormalize(const CsrMatrix& a, exec::ExecContext* ctx) {
  FREEHGC_TRACE_SPAN("row_normalize");
  CsrMatrix out = a;
  auto& values = out.mutable_values();
  exec::Resolve(ctx).ParallelFor(
      a.rows(), kRowScaleGrain,
      [&](int64_t begin, int64_t end, exec::Workspace&) {
        for (int64_t r = begin; r < end; ++r) {
          const float s = a.RowSum(static_cast<int32_t>(r));
          if (s == 0.0f) continue;
          const float inv = 1.0f / s;
          for (int64_t k = a.indptr()[r]; k < a.indptr()[r + 1]; ++k) {
            values[static_cast<size_t>(k)] *= inv;
          }
        }
      });
  return out;
}

CsrMatrix SymNormalize(const CsrMatrix& a, exec::ExecContext* ctx) {
  FREEHGC_CHECK(a.rows() == a.cols());
  FREEHGC_TRACE_SPAN("sym_normalize");
  exec::ExecContext& ex = exec::Resolve(ctx);
  std::vector<float> inv_sqrt(static_cast<size_t>(a.rows()), 0.0f);
  ex.ParallelFor(a.rows(), kRowScaleGrain,
                 [&](int64_t begin, int64_t end, exec::Workspace&) {
                   for (int64_t r = begin; r < end; ++r) {
                     const float d = a.RowSum(static_cast<int32_t>(r));
                     inv_sqrt[static_cast<size_t>(r)] =
                         d > 0 ? 1.0f / std::sqrt(d) : 0.0f;
                   }
                 });
  CsrMatrix out = a;
  auto& values = out.mutable_values();
  ex.ParallelFor(
      a.rows(), kRowScaleGrain,
      [&](int64_t begin, int64_t end, exec::Workspace&) {
        for (int64_t r = begin; r < end; ++r) {
          for (int64_t k = a.indptr()[r]; k < a.indptr()[r + 1]; ++k) {
            const int32_t c = a.indices()[static_cast<size_t>(k)];
            values[static_cast<size_t>(k)] *=
                inv_sqrt[static_cast<size_t>(r)] *
                inv_sqrt[static_cast<size_t>(c)];
          }
        }
      });
  return out;
}

SpGemmPlan SpGemmSymbolic(const CsrMatrix& a, const CsrMatrix& b,
                          exec::ExecContext* ctx) {
  FREEHGC_CHECK(a.cols() == b.rows());
  FREEHGC_TRACE_SPAN("spgemm.symbolic");
  static obs::Counter& symbolic_calls =
      obs::MetricsRegistry::Global().GetCounter("spgemm.symbolic_calls");
  symbolic_calls.Increment();
  exec::ExecContext& ex = exec::Resolve(ctx);
  const int32_t m = a.rows(), n = b.cols();
  const int64_t chunk = exec::ExecContext::ChunkSize(m, kRowMergeGrain);
  const int64_t num_chunks = exec::ExecContext::NumChunks(m, kRowMergeGrain);

  SpGemmPlan plan;
  plan.a_rows = m;
  plan.a_cols = a.cols();
  plan.b_cols = n;
  plan.indptr.assign(static_cast<size_t>(m) + 1, 0);

  // Per-row set merges with a byte-marker sparse accumulator; each chunk
  // stages its rows' sorted column lists, spliced below at offsets known
  // from the prefix-summed per-row counts.
  std::vector<std::vector<int32_t>> chunk_indices(
      static_cast<size_t>(num_chunks));
  ex.ParallelFor(m, kRowMergeGrain, [&](int64_t begin, int64_t end,
                                        exec::Workspace& ws) {
    std::vector<uint8_t>& mark = ws.ZeroedMark(static_cast<size_t>(n));
    std::vector<int32_t>& touched = ws.Touched();
    auto& indices = chunk_indices[static_cast<size_t>(begin / chunk)];
    for (int64_t i = begin; i < end; ++i) {
      touched.clear();
      auto ai = a.RowIndices(static_cast<int32_t>(i));
      for (int32_t p : ai) {
        for (int32_t j : b.RowIndices(p)) {
          if (!mark[static_cast<size_t>(j)]) {
            mark[static_cast<size_t>(j)] = 1;
            touched.push_back(j);
          }
        }
      }
      std::sort(touched.begin(), touched.end());
      for (int32_t j : touched) {
        indices.push_back(j);
        mark[static_cast<size_t>(j)] = 0;
      }
      plan.indptr[static_cast<size_t>(i) + 1] =
          static_cast<int64_t>(touched.size());
    }
  });

  for (size_t i = 1; i < plan.indptr.size(); ++i) {
    plan.indptr[i] += plan.indptr[i - 1];
  }
  plan.indices.resize(static_cast<size_t>(plan.indptr.back()));
  ex.ParallelFor(num_chunks, 1,
                 [&](int64_t begin, int64_t end, exec::Workspace&) {
                   for (int64_t c = begin; c < end; ++c) {
                     const size_t offset = static_cast<size_t>(
                         plan.indptr[static_cast<size_t>(c * chunk)]);
                     const auto& ci = chunk_indices[static_cast<size_t>(c)];
                     std::copy(ci.begin(), ci.end(),
                               plan.indices.begin() + offset);
                   }
                 });
  return plan;
}

CsrMatrix SpGemmNumeric(const CsrMatrix& a, const CsrMatrix& b,
                        const SpGemmPlan& plan, int64_t max_row_nnz,
                        exec::ExecContext* ctx) {
  FREEHGC_CHECK(a.cols() == b.rows());
  FREEHGC_CHECK(plan.a_rows == a.rows());
  FREEHGC_CHECK(plan.a_cols == a.cols());
  FREEHGC_CHECK(plan.b_cols == b.cols());
  FREEHGC_TRACE_SPAN("spgemm.numeric");
  // Value metrics (flops = multiply-adds performed, rows truncated and
  // entries dropped by the max_row_nnz budget) accumulate per chunk and
  // land as one atomic add each, so totals are chunk-layout-deterministic
  // — identical at every thread count.
  static obs::Counter& calls =
      obs::MetricsRegistry::Global().GetCounter("spgemm.calls");
  static obs::Counter& flops_ctr =
      obs::MetricsRegistry::Global().GetCounter("spgemm.flops");
  static obs::Counter& out_nnz_ctr =
      obs::MetricsRegistry::Global().GetCounter("spgemm.output_nnz");
  static obs::Counter& rows_truncated =
      obs::MetricsRegistry::Global().GetCounter("spgemm.rows_truncated");
  static obs::Counter& entries_dropped =
      obs::MetricsRegistry::Global().GetCounter("spgemm.entries_dropped");
  static obs::Histogram& row_nnz_hist =
      obs::MetricsRegistry::Global().GetHistogram("spgemm.row_nnz");
  calls.Increment();
  exec::ExecContext& ex = exec::Resolve(ctx);
  const int32_t m = a.rows(), n = b.cols();

  // Pass 1 — fill values at the plan's exact offsets (no staging, no
  // sort, no grow-as-you-go buffers: the plan already fixes where every
  // structural entry lands). Per-row kept counts — exact zeros dropped,
  // max_row_nnz budget applied — land in out_indptr for the prefix sum.
  std::vector<float> plan_values(static_cast<size_t>(plan.nnz()));
  std::vector<int64_t> out_indptr(static_cast<size_t>(m) + 1, 0);
  ex.ParallelFor(m, kRowMergeGrain, [&](int64_t begin, int64_t end,
                                        exec::Workspace& ws) {
    std::vector<float>& accum = ws.ZeroedAccum(static_cast<size_t>(n));
    int64_t flops = 0, truncated = 0, dropped = 0;
    obs::LocalHistogram row_hist;
    for (int64_t i = begin; i < end; ++i) {
      auto ai = a.RowIndices(static_cast<int32_t>(i));
      auto av = a.RowValues(static_cast<int32_t>(i));
      for (size_t k = 0; k < ai.size(); ++k) {
        const int32_t p = ai[k];
        const float apv = av[k];
        auto bi = b.RowIndices(p);
        auto bv = b.RowValues(p);
        flops += static_cast<int64_t>(bi.size());
        for (size_t t = 0; t < bi.size(); ++t) {
          accum[static_cast<size_t>(bi[t])] += apv * bv[t];
        }
      }
      const int64_t base = plan.indptr[static_cast<size_t>(i)];
      const int64_t row_nnz = plan.indptr[static_cast<size_t>(i) + 1] - base;
      int64_t nonzero = 0;
      for (int64_t k = 0; k < row_nnz; ++k) {
        const int32_t j = plan.indices[static_cast<size_t>(base + k)];
        const float v = accum[static_cast<size_t>(j)];
        plan_values[static_cast<size_t>(base + k)] = v;
        accum[static_cast<size_t>(j)] = 0.0f;
        if (v != 0.0f) ++nonzero;
      }
      int64_t kept = nonzero;
      if (max_row_nnz > 0 && nonzero > max_row_nnz) {
        kept = max_row_nnz;
        ++truncated;
        dropped += nonzero - max_row_nnz;
      }
      row_hist.Observe(kept);
      out_indptr[static_cast<size_t>(i) + 1] = kept;
    }
    row_hist.FlushTo(row_nnz_hist);
    flops_ctr.Add(flops);
    if (truncated > 0) {
      rows_truncated.Add(truncated);
      entries_dropped.Add(dropped);
    }
  });

  for (size_t i = 1; i < out_indptr.size(); ++i) {
    out_indptr[i] += out_indptr[i - 1];
  }
  const int64_t out_nnz = out_indptr.back();
  out_nnz_ctr.Add(out_nnz);

  if (out_nnz == plan.nnz()) {
    // Structure unchanged (no budget hit, no exact zeros): the plan's
    // pattern is the output pattern and the values are already in place.
    std::vector<int32_t> indices(plan.indices);
    auto res = CsrMatrix::FromParts(m, n, std::move(out_indptr),
                                    std::move(indices),
                                    std::move(plan_values));
    FREEHGC_CHECK(res.ok());
    CsrMatrix out = std::move(res).value();
    DebugValidated(out);
    return out;
  }

  // Pass 2 — compact the surviving entries to their final offsets. The
  // budget keeps the max_row_nnz entries largest by (|value|, then
  // smaller column index): the column tie-break makes the comparator a
  // total order, so the selected set is independent of candidate order —
  // hence of thread count and of plan reuse.
  std::vector<int32_t> indices(static_cast<size_t>(out_nnz));
  std::vector<float> values(static_cast<size_t>(out_nnz));
  ex.ParallelFor(m, kRowMergeGrain, [&](int64_t begin, int64_t end,
                                        exec::Workspace& ws) {
    std::vector<int32_t>& cand = ws.Touched();
    for (int64_t i = begin; i < end; ++i) {
      const int64_t base = plan.indptr[static_cast<size_t>(i)];
      const int64_t row_nnz = plan.indptr[static_cast<size_t>(i) + 1] - base;
      const int64_t out_base = out_indptr[static_cast<size_t>(i)];
      const int64_t kept = out_indptr[static_cast<size_t>(i) + 1] - out_base;
      if (kept == row_nnz) {
        std::copy(plan.indices.begin() + base,
                  plan.indices.begin() + base + row_nnz,
                  indices.begin() + out_base);
        std::copy(plan_values.begin() + base,
                  plan_values.begin() + base + row_nnz,
                  values.begin() + out_base);
        continue;
      }
      cand.clear();
      for (int64_t k = 0; k < row_nnz; ++k) {
        if (plan_values[static_cast<size_t>(base + k)] != 0.0f) {
          cand.push_back(static_cast<int32_t>(k));
        }
      }
      if (static_cast<int64_t>(cand.size()) > kept) {
        // Partial select, not a full sort; plan columns are ascending,
        // so smaller in-row offset == smaller column index.
        std::nth_element(
            cand.begin(), cand.begin() + kept, cand.end(),
            [&](int32_t x, int32_t y) {
              const float ax =
                  std::fabs(plan_values[static_cast<size_t>(base + x)]);
              const float ay =
                  std::fabs(plan_values[static_cast<size_t>(base + y)]);
              if (ax != ay) return ax > ay;
              return x < y;
            });
        cand.resize(static_cast<size_t>(kept));
        std::sort(cand.begin(), cand.end());
      }
      for (size_t t = 0; t < cand.size(); ++t) {
        const int64_t src = base + cand[t];
        indices[static_cast<size_t>(out_base) + t] =
            plan.indices[static_cast<size_t>(src)];
        values[static_cast<size_t>(out_base) + t] =
            plan_values[static_cast<size_t>(src)];
      }
    }
  });
  auto res = CsrMatrix::FromParts(m, n, std::move(out_indptr),
                                  std::move(indices), std::move(values));
  FREEHGC_CHECK(res.ok());
  CsrMatrix out = std::move(res).value();
  DebugValidated(out);
  return out;
}

CsrMatrix SpGemm(const CsrMatrix& a, const CsrMatrix& b, int64_t max_row_nnz,
                 exec::ExecContext* ctx, SpGemmPlanCache* plans) {
  FREEHGC_CHECK(a.cols() == b.rows());
  FREEHGC_TRACE_SPAN("spgemm");
  if (plans != nullptr) {
    const SpGemmPlan& plan = plans->Plan(a, b, ctx);
    return SpGemmNumeric(a, b, plan, max_row_nnz, ctx);
  }
  const SpGemmPlan plan = SpGemmSymbolic(a, b, ctx);
  return SpGemmNumeric(a, b, plan, max_row_nnz, ctx);
}

Matrix SpMmDense(const CsrMatrix& a, const Matrix& x,
                 exec::ExecContext* ctx) {
  FREEHGC_CHECK(a.cols() == x.rows());
  FREEHGC_TRACE_SPAN("spmm_dense");
  Matrix out(a.rows(), x.cols());
  const int64_t d = x.cols();
  exec::Resolve(ctx).ParallelFor(
      a.rows(), kRowMergeGrain,
      [&](int64_t begin, int64_t end, exec::Workspace&) {
        for (int64_t r = begin; r < end; ++r) {
          float* out_row = out.Row(r);
          auto idx = a.RowIndices(static_cast<int32_t>(r));
          auto val = a.RowValues(static_cast<int32_t>(r));
          for (int64_t c0 = 0; c0 < d; c0 += kSpMmColBlock) {
            const int64_t c1 = std::min(d, c0 + kSpMmColBlock);
            for (size_t k = 0; k < idx.size(); ++k) {
              const float* x_row = x.Row(idx[k]);
              const float v = val[k];
              for (int64_t c = c0; c < c1; ++c) {
                out_row[c] += v * x_row[c];
              }
            }
          }
        }
      });
  return out;
}

Matrix SpMmDenseT(const CsrMatrix& a, const Matrix& x,
                  exec::ExecContext* ctx) {
  FREEHGC_CHECK(a.rows() == x.rows());
  FREEHGC_TRACE_SPAN("spmm_dense_t");
  exec::ExecContext& ex = exec::Resolve(ctx);
  return SpMmDense(Transpose(a, &ex), x, &ex);
}

void SpMvInto(const CsrMatrix& a, const std::vector<float>& x,
              std::vector<float>& y, exec::ExecContext* ctx) {
  FREEHGC_CHECK(static_cast<int32_t>(x.size()) == a.cols());
  y.resize(static_cast<size_t>(a.rows()));
  exec::Resolve(ctx).ParallelFor(
      a.rows(), kRowScaleGrain,
      [&](int64_t begin, int64_t end, exec::Workspace&) {
        for (int64_t r = begin; r < end; ++r) {
          auto idx = a.RowIndices(static_cast<int32_t>(r));
          auto val = a.RowValues(static_cast<int32_t>(r));
          float acc = 0.0f;
          for (size_t k = 0; k < idx.size(); ++k) {
            acc += val[k] * x[static_cast<size_t>(idx[k])];
          }
          y[static_cast<size_t>(r)] = acc;
        }
      });
}

std::vector<float> SpMv(const CsrMatrix& a, const std::vector<float>& x,
                        exec::ExecContext* ctx) {
  std::vector<float> y;
  SpMvInto(a, x, y, ctx);
  return y;
}

std::vector<float> SpMvT(const CsrMatrix& a, const std::vector<float>& x,
                         exec::ExecContext* ctx) {
  FREEHGC_CHECK(static_cast<int32_t>(x.size()) == a.rows());
  exec::ExecContext& ex = exec::Resolve(ctx);
  return SpMv(Transpose(a, &ex), x, &ex);
}

CsrMatrix Submatrix(const CsrMatrix& a, const std::vector<int32_t>& row_keep,
                    const std::vector<int32_t>& col_keep) {
  std::vector<int32_t> col_map(static_cast<size_t>(a.cols()), -1);
  for (size_t i = 0; i < col_keep.size(); ++i) {
    FREEHGC_CHECK(col_keep[i] >= 0 && col_keep[i] < a.cols());
    col_map[static_cast<size_t>(col_keep[i])] = static_cast<int32_t>(i);
  }
  std::vector<CooEntry> entries;
  for (size_t ri = 0; ri < row_keep.size(); ++ri) {
    const int32_t r = row_keep[ri];
    FREEHGC_CHECK(r >= 0 && r < a.rows());
    auto idx = a.RowIndices(r);
    auto val = a.RowValues(r);
    for (size_t k = 0; k < idx.size(); ++k) {
      const int32_t mapped = col_map[static_cast<size_t>(idx[k])];
      if (mapped >= 0) {
        entries.push_back({static_cast<int32_t>(ri), mapped, val[k]});
      }
    }
  }
  auto res = CsrMatrix::FromCoo(static_cast<int32_t>(row_keep.size()),
                                static_cast<int32_t>(col_keep.size()),
                                std::move(entries));
  FREEHGC_CHECK(res.ok());
  return std::move(res).value();
}

CsrMatrix AddElementwise(const CsrMatrix& a, const CsrMatrix& b) {
  FREEHGC_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  std::vector<int64_t> indptr(static_cast<size_t>(a.rows()) + 1, 0);
  std::vector<int32_t> indices;
  std::vector<float> values;
  indices.reserve(static_cast<size_t>(a.nnz() + b.nnz()));
  values.reserve(static_cast<size_t>(a.nnz() + b.nnz()));
  for (int32_t r = 0; r < a.rows(); ++r) {
    auto ai = a.RowIndices(r);
    auto av = a.RowValues(r);
    auto bi = b.RowIndices(r);
    auto bv = b.RowValues(r);
    size_t i = 0, j = 0;
    while (i < ai.size() || j < bi.size()) {
      int32_t ci = i < ai.size() ? ai[i] : a.cols();
      int32_t cj = j < bi.size() ? bi[j] : a.cols();
      if (ci < cj) {
        indices.push_back(ci);
        values.push_back(av[i++]);
      } else if (cj < ci) {
        indices.push_back(cj);
        values.push_back(bv[j++]);
      } else {
        indices.push_back(ci);
        values.push_back(av[i++] + bv[j++]);
      }
    }
    indptr[static_cast<size_t>(r) + 1] = static_cast<int64_t>(indices.size());
  }
  auto res = CsrMatrix::FromParts(a.rows(), a.cols(), std::move(indptr),
                                  std::move(indices), std::move(values));
  FREEHGC_CHECK(res.ok());
  return std::move(res).value();
}

CsrMatrix Symmetrize(const CsrMatrix& a) {
  FREEHGC_CHECK(a.rows() == a.cols());
  return AddElementwise(a, Transpose(a));
}

std::vector<float> PprScores(const CsrMatrix& a,
                             const std::vector<float>& teleport, float alpha,
                             int max_iters, float tol,
                             exec::ExecContext* ctx, bool symmetric) {
  FREEHGC_CHECK(a.rows() == a.cols());
  FREEHGC_CHECK(static_cast<int32_t>(teleport.size()) == a.rows());
  FREEHGC_TRACE_SPAN("ppr");
  static obs::Counter& iters_ctr =
      obs::MetricsRegistry::Global().GetCounter("ppr.iterations");
  exec::ExecContext& ex = exec::Resolve(ctx);
  // A^T pi as a row-parallel gather over the materialized transpose: the
  // per-element accumulation order (ascending source row) matches the
  // sequential column-scatter exactly, so the refactor is bit-preserving.
  // A bit-exactly symmetric input (caller-asserted) needs no transpose at
  // all — a^T == a including value order, so iterating over `a` itself
  // produces the same bits without the transposed copy.
  const CsrMatrix at_owned =
      symmetric ? CsrMatrix() : Transpose(a, &ex);
  const CsrMatrix& at = symmetric ? a : at_owned;
  std::vector<float> pi = teleport;
  std::vector<float> propagated;  // reused across iterations
  for (int it = 0; it < max_iters; ++it) {
    // pi_next = alpha * teleport + (1 - alpha) * A^T pi
    iters_ctr.Increment();
    SpMvInto(at, pi, propagated, &ex);
    const double delta = ex.ParallelReduce(
        static_cast<int64_t>(pi.size()), kAxpyGrain, 0.0,
        [&](int64_t begin, int64_t end, exec::Workspace&) {
          double d = 0.0;
          for (int64_t i = begin; i < end; ++i) {
            const float next = alpha * teleport[static_cast<size_t>(i)] +
                               (1.0f - alpha) *
                                   propagated[static_cast<size_t>(i)];
            d += std::fabs(next - pi[static_cast<size_t>(i)]);
            pi[static_cast<size_t>(i)] = next;
          }
          return d;
        },
        [](double acc, double part) { return acc + part; });
    if (delta < static_cast<double>(tol)) break;
  }
  return pi;
}

}  // namespace freehgc::sparse
