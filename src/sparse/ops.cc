#include "sparse/ops.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <numeric>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace freehgc::sparse {

namespace {

// Minimum chunk widths (grains) per kernel. Chunk layout is a pure
// function of (n, grain) — see exec::ExecContext::ChunkSize — so these
// constants are part of the determinism contract: changing one changes
// the float association of chunked reductions.
constexpr int64_t kRowMergeGrain = 64;   // SpGEMM row merges
constexpr int64_t kRowScaleGrain = 512;  // normalize / SpMv rows
constexpr int64_t kAxpyGrain = 2048;     // elementwise vector updates

}  // namespace

CsrMatrix Transpose(const CsrMatrix& a) {
  const int32_t rows = a.rows(), cols = a.cols();
  std::vector<int64_t> indptr(static_cast<size_t>(cols) + 1, 0);
  for (int32_t c : a.indices()) ++indptr[static_cast<size_t>(c) + 1];
  for (size_t i = 1; i < indptr.size(); ++i) indptr[i] += indptr[i - 1];
  std::vector<int32_t> indices(a.indices().size());
  std::vector<float> values(a.values().size());
  std::vector<int64_t> cursor(indptr.begin(), indptr.end() - 1);
  for (int32_t r = 0; r < rows; ++r) {
    auto idx = a.RowIndices(r);
    auto val = a.RowValues(r);
    for (size_t k = 0; k < idx.size(); ++k) {
      const int64_t pos = cursor[static_cast<size_t>(idx[k])]++;
      indices[static_cast<size_t>(pos)] = r;
      values[static_cast<size_t>(pos)] = val[k];
    }
  }
  auto res = CsrMatrix::FromParts(cols, rows, std::move(indptr),
                                  std::move(indices), std::move(values));
  FREEHGC_CHECK(res.ok());
  return std::move(res).value();
}

CsrMatrix RowNormalize(const CsrMatrix& a, exec::ExecContext* ctx) {
  FREEHGC_TRACE_SPAN("row_normalize");
  CsrMatrix out = a;
  auto& values = out.mutable_values();
  exec::Resolve(ctx).ParallelFor(
      a.rows(), kRowScaleGrain,
      [&](int64_t begin, int64_t end, exec::Workspace&) {
        for (int64_t r = begin; r < end; ++r) {
          const float s = a.RowSum(static_cast<int32_t>(r));
          if (s == 0.0f) continue;
          const float inv = 1.0f / s;
          for (int64_t k = a.indptr()[r]; k < a.indptr()[r + 1]; ++k) {
            values[static_cast<size_t>(k)] *= inv;
          }
        }
      });
  return out;
}

CsrMatrix SymNormalize(const CsrMatrix& a, exec::ExecContext* ctx) {
  FREEHGC_CHECK(a.rows() == a.cols());
  FREEHGC_TRACE_SPAN("sym_normalize");
  exec::ExecContext& ex = exec::Resolve(ctx);
  std::vector<float> inv_sqrt(static_cast<size_t>(a.rows()), 0.0f);
  ex.ParallelFor(a.rows(), kRowScaleGrain,
                 [&](int64_t begin, int64_t end, exec::Workspace&) {
                   for (int64_t r = begin; r < end; ++r) {
                     const float d = a.RowSum(static_cast<int32_t>(r));
                     inv_sqrt[static_cast<size_t>(r)] =
                         d > 0 ? 1.0f / std::sqrt(d) : 0.0f;
                   }
                 });
  CsrMatrix out = a;
  auto& values = out.mutable_values();
  ex.ParallelFor(
      a.rows(), kRowScaleGrain,
      [&](int64_t begin, int64_t end, exec::Workspace&) {
        for (int64_t r = begin; r < end; ++r) {
          for (int64_t k = a.indptr()[r]; k < a.indptr()[r + 1]; ++k) {
            const int32_t c = a.indices()[static_cast<size_t>(k)];
            values[static_cast<size_t>(k)] *=
                inv_sqrt[static_cast<size_t>(r)] *
                inv_sqrt[static_cast<size_t>(c)];
          }
        }
      });
  return out;
}

CsrMatrix SpGemm(const CsrMatrix& a, const CsrMatrix& b, int64_t max_row_nnz,
                 exec::ExecContext* ctx) {
  FREEHGC_CHECK(a.cols() == b.rows());
  FREEHGC_TRACE_SPAN("spgemm");
  // Value metrics (flops = multiply-adds performed, rows truncated and
  // entries dropped by the max_row_nnz budget) accumulate per chunk and
  // land as one atomic add each, so totals are chunk-layout-deterministic
  // — identical at every thread count.
  static obs::Counter& calls =
      obs::MetricsRegistry::Global().GetCounter("spgemm.calls");
  static obs::Counter& flops_ctr =
      obs::MetricsRegistry::Global().GetCounter("spgemm.flops");
  static obs::Counter& out_nnz_ctr =
      obs::MetricsRegistry::Global().GetCounter("spgemm.output_nnz");
  static obs::Counter& rows_truncated =
      obs::MetricsRegistry::Global().GetCounter("spgemm.rows_truncated");
  static obs::Counter& entries_dropped =
      obs::MetricsRegistry::Global().GetCounter("spgemm.entries_dropped");
  static obs::Histogram& row_nnz_hist =
      obs::MetricsRegistry::Global().GetHistogram("spgemm.row_nnz");
  calls.Increment();
  exec::ExecContext& ex = exec::Resolve(ctx);
  const int32_t m = a.rows(), n = b.cols();
  const int64_t chunk = exec::ExecContext::ChunkSize(m, kRowMergeGrain);
  const int64_t num_chunks = exec::ExecContext::NumChunks(m, kRowMergeGrain);

  // Stage 1 — row merges, chunk-local output. Each chunk stages its rows'
  // (indices, values) in its own buffers; the sparse accumulator (SPA)
  // and touched-column list come from the worker's Workspace and are
  // reused across chunks and across SpGemm calls (no per-call churn).
  std::vector<int64_t> indptr(static_cast<size_t>(m) + 1, 0);
  std::vector<std::vector<int32_t>> chunk_indices(
      static_cast<size_t>(num_chunks));
  std::vector<std::vector<float>> chunk_values(
      static_cast<size_t>(num_chunks));
  ex.ParallelFor(m, kRowMergeGrain, [&](int64_t begin, int64_t end,
                                        exec::Workspace& ws) {
    std::vector<float>& accum = ws.ZeroedAccum(static_cast<size_t>(n));
    std::vector<int32_t>& touched = ws.Touched();
    auto& indices = chunk_indices[static_cast<size_t>(begin / chunk)];
    auto& values = chunk_values[static_cast<size_t>(begin / chunk)];
    int64_t flops = 0, truncated = 0, dropped = 0;
    obs::LocalHistogram row_hist;
    for (int64_t i = begin; i < end; ++i) {
      touched.clear();
      auto ai = a.RowIndices(static_cast<int32_t>(i));
      auto av = a.RowValues(static_cast<int32_t>(i));
      for (size_t k = 0; k < ai.size(); ++k) {
        const int32_t p = ai[k];
        const float apv = av[k];
        auto bi = b.RowIndices(p);
        auto bv = b.RowValues(p);
        flops += static_cast<int64_t>(bi.size());
        for (size_t t = 0; t < bi.size(); ++t) {
          const int32_t j = bi[t];
          if (accum[static_cast<size_t>(j)] == 0.0f) touched.push_back(j);
          accum[static_cast<size_t>(j)] += apv * bv[t];
        }
      }
      if (max_row_nnz > 0 &&
          static_cast<int64_t>(touched.size()) > max_row_nnz) {
        // Budgeted densification: keep the largest-magnitude entries.
        std::nth_element(
            touched.begin(), touched.begin() + max_row_nnz, touched.end(),
            [&](int32_t x, int32_t y) {
              return std::fabs(accum[static_cast<size_t>(x)]) >
                     std::fabs(accum[static_cast<size_t>(y)]);
            });
        for (size_t t = static_cast<size_t>(max_row_nnz); t < touched.size();
             ++t) {
          accum[static_cast<size_t>(touched[t])] = 0.0f;
        }
        ++truncated;
        dropped += static_cast<int64_t>(touched.size()) - max_row_nnz;
        touched.resize(static_cast<size_t>(max_row_nnz));
      }
      std::sort(touched.begin(), touched.end());
      int64_t row_nnz = 0;
      for (int32_t j : touched) {
        const float v = accum[static_cast<size_t>(j)];
        if (v != 0.0f) {
          indices.push_back(j);
          values.push_back(v);
          ++row_nnz;
        }
        accum[static_cast<size_t>(j)] = 0.0f;
      }
      row_hist.Observe(row_nnz);
      indptr[static_cast<size_t>(i) + 1] = row_nnz;
    }
    row_hist.FlushTo(row_nnz_hist);
    flops_ctr.Add(flops);
    if (truncated > 0) {
      rows_truncated.Add(truncated);
      entries_dropped.Add(dropped);
    }
  });

  // Stage 2 — prefix-sum the per-row counts, then splice the chunk
  // buffers at their offsets (chunk c's data starts at indptr[c * chunk]).
  for (size_t i = 1; i < indptr.size(); ++i) indptr[i] += indptr[i - 1];
  std::vector<int32_t> indices(static_cast<size_t>(indptr.back()));
  std::vector<float> values(static_cast<size_t>(indptr.back()));
  ex.ParallelFor(num_chunks, 1, [&](int64_t begin, int64_t end,
                                    exec::Workspace&) {
    for (int64_t c = begin; c < end; ++c) {
      const size_t offset =
          static_cast<size_t>(indptr[static_cast<size_t>(c * chunk)]);
      const auto& ci = chunk_indices[static_cast<size_t>(c)];
      const auto& cv = chunk_values[static_cast<size_t>(c)];
      std::copy(ci.begin(), ci.end(), indices.begin() + offset);
      std::copy(cv.begin(), cv.end(), values.begin() + offset);
    }
  });
  out_nnz_ctr.Add(indptr.back());
  auto res = CsrMatrix::FromParts(m, n, std::move(indptr), std::move(indices),
                                  std::move(values));
  FREEHGC_CHECK(res.ok());
  return std::move(res).value();
}

Matrix SpMmDense(const CsrMatrix& a, const Matrix& x,
                 exec::ExecContext* ctx) {
  FREEHGC_CHECK(a.cols() == x.rows());
  FREEHGC_TRACE_SPAN("spmm_dense");
  Matrix out(a.rows(), x.cols());
  exec::Resolve(ctx).ParallelFor(
      a.rows(), kRowMergeGrain,
      [&](int64_t begin, int64_t end, exec::Workspace&) {
        for (int64_t r = begin; r < end; ++r) {
          float* out_row = out.Row(r);
          auto idx = a.RowIndices(static_cast<int32_t>(r));
          auto val = a.RowValues(static_cast<int32_t>(r));
          for (size_t k = 0; k < idx.size(); ++k) {
            const float* x_row = x.Row(idx[k]);
            const float v = val[k];
            for (int64_t c = 0; c < x.cols(); ++c) out_row[c] += v * x_row[c];
          }
        }
      });
  return out;
}

Matrix SpMmDenseT(const CsrMatrix& a, const Matrix& x) {
  FREEHGC_CHECK(a.rows() == x.rows());
  Matrix out(a.cols(), x.cols());
  for (int32_t r = 0; r < a.rows(); ++r) {
    const float* x_row = x.Row(r);
    auto idx = a.RowIndices(r);
    auto val = a.RowValues(r);
    for (size_t k = 0; k < idx.size(); ++k) {
      float* out_row = out.Row(idx[k]);
      const float v = val[k];
      for (int64_t c = 0; c < x.cols(); ++c) out_row[c] += v * x_row[c];
    }
  }
  return out;
}

void SpMvInto(const CsrMatrix& a, const std::vector<float>& x,
              std::vector<float>& y, exec::ExecContext* ctx) {
  FREEHGC_CHECK(static_cast<int32_t>(x.size()) == a.cols());
  y.resize(static_cast<size_t>(a.rows()));
  exec::Resolve(ctx).ParallelFor(
      a.rows(), kRowScaleGrain,
      [&](int64_t begin, int64_t end, exec::Workspace&) {
        for (int64_t r = begin; r < end; ++r) {
          auto idx = a.RowIndices(static_cast<int32_t>(r));
          auto val = a.RowValues(static_cast<int32_t>(r));
          float acc = 0.0f;
          for (size_t k = 0; k < idx.size(); ++k) {
            acc += val[k] * x[static_cast<size_t>(idx[k])];
          }
          y[static_cast<size_t>(r)] = acc;
        }
      });
}

std::vector<float> SpMv(const CsrMatrix& a, const std::vector<float>& x,
                        exec::ExecContext* ctx) {
  std::vector<float> y;
  SpMvInto(a, x, y, ctx);
  return y;
}

std::vector<float> SpMvT(const CsrMatrix& a, const std::vector<float>& x) {
  FREEHGC_CHECK(static_cast<int32_t>(x.size()) == a.rows());
  std::vector<float> y(static_cast<size_t>(a.cols()), 0.0f);
  for (int32_t r = 0; r < a.rows(); ++r) {
    const float xv = x[static_cast<size_t>(r)];
    if (xv == 0.0f) continue;
    auto idx = a.RowIndices(r);
    auto val = a.RowValues(r);
    for (size_t k = 0; k < idx.size(); ++k) {
      y[static_cast<size_t>(idx[k])] += val[k] * xv;
    }
  }
  return y;
}

CsrMatrix Submatrix(const CsrMatrix& a, const std::vector<int32_t>& row_keep,
                    const std::vector<int32_t>& col_keep) {
  std::vector<int32_t> col_map(static_cast<size_t>(a.cols()), -1);
  for (size_t i = 0; i < col_keep.size(); ++i) {
    FREEHGC_CHECK(col_keep[i] >= 0 && col_keep[i] < a.cols());
    col_map[static_cast<size_t>(col_keep[i])] = static_cast<int32_t>(i);
  }
  std::vector<CooEntry> entries;
  for (size_t ri = 0; ri < row_keep.size(); ++ri) {
    const int32_t r = row_keep[ri];
    FREEHGC_CHECK(r >= 0 && r < a.rows());
    auto idx = a.RowIndices(r);
    auto val = a.RowValues(r);
    for (size_t k = 0; k < idx.size(); ++k) {
      const int32_t mapped = col_map[static_cast<size_t>(idx[k])];
      if (mapped >= 0) {
        entries.push_back({static_cast<int32_t>(ri), mapped, val[k]});
      }
    }
  }
  auto res = CsrMatrix::FromCoo(static_cast<int32_t>(row_keep.size()),
                                static_cast<int32_t>(col_keep.size()),
                                std::move(entries));
  FREEHGC_CHECK(res.ok());
  return std::move(res).value();
}

CsrMatrix AddElementwise(const CsrMatrix& a, const CsrMatrix& b) {
  FREEHGC_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  std::vector<int64_t> indptr(static_cast<size_t>(a.rows()) + 1, 0);
  std::vector<int32_t> indices;
  std::vector<float> values;
  indices.reserve(static_cast<size_t>(a.nnz() + b.nnz()));
  values.reserve(static_cast<size_t>(a.nnz() + b.nnz()));
  for (int32_t r = 0; r < a.rows(); ++r) {
    auto ai = a.RowIndices(r);
    auto av = a.RowValues(r);
    auto bi = b.RowIndices(r);
    auto bv = b.RowValues(r);
    size_t i = 0, j = 0;
    while (i < ai.size() || j < bi.size()) {
      int32_t ci = i < ai.size() ? ai[i] : a.cols();
      int32_t cj = j < bi.size() ? bi[j] : a.cols();
      if (ci < cj) {
        indices.push_back(ci);
        values.push_back(av[i++]);
      } else if (cj < ci) {
        indices.push_back(cj);
        values.push_back(bv[j++]);
      } else {
        indices.push_back(ci);
        values.push_back(av[i++] + bv[j++]);
      }
    }
    indptr[static_cast<size_t>(r) + 1] = static_cast<int64_t>(indices.size());
  }
  auto res = CsrMatrix::FromParts(a.rows(), a.cols(), std::move(indptr),
                                  std::move(indices), std::move(values));
  FREEHGC_CHECK(res.ok());
  return std::move(res).value();
}

CsrMatrix Symmetrize(const CsrMatrix& a) {
  FREEHGC_CHECK(a.rows() == a.cols());
  return AddElementwise(a, Transpose(a));
}

std::vector<float> PprScores(const CsrMatrix& a,
                             const std::vector<float>& teleport, float alpha,
                             int max_iters, float tol,
                             exec::ExecContext* ctx) {
  FREEHGC_CHECK(a.rows() == a.cols());
  FREEHGC_CHECK(static_cast<int32_t>(teleport.size()) == a.rows());
  FREEHGC_TRACE_SPAN("ppr");
  static obs::Counter& iters_ctr =
      obs::MetricsRegistry::Global().GetCounter("ppr.iterations");
  exec::ExecContext& ex = exec::Resolve(ctx);
  // A^T pi as a row-parallel gather over the materialized transpose: the
  // per-element accumulation order (ascending source row) matches the
  // sequential column-scatter exactly, so the refactor is bit-preserving.
  const CsrMatrix at = Transpose(a);
  std::vector<float> pi = teleport;
  std::vector<float> propagated;  // reused across iterations
  for (int it = 0; it < max_iters; ++it) {
    // pi_next = alpha * teleport + (1 - alpha) * A^T pi
    iters_ctr.Increment();
    SpMvInto(at, pi, propagated, &ex);
    const double delta = ex.ParallelReduce(
        static_cast<int64_t>(pi.size()), kAxpyGrain, 0.0,
        [&](int64_t begin, int64_t end, exec::Workspace&) {
          double d = 0.0;
          for (int64_t i = begin; i < end; ++i) {
            const float next = alpha * teleport[static_cast<size_t>(i)] +
                               (1.0f - alpha) *
                                   propagated[static_cast<size_t>(i)];
            d += std::fabs(next - pi[static_cast<size_t>(i)]);
            pi[static_cast<size_t>(i)] = next;
          }
          return d;
        },
        [](double acc, double part) { return acc + part; });
    if (delta < static_cast<double>(tol)) break;
  }
  return pi;
}

}  // namespace freehgc::sparse
