#ifndef FREEHGC_SPARSE_CENTRALITY_H_
#define FREEHGC_SPARSE_CENTRALITY_H_

#include <cstdint>
#include <vector>

#include "exec/exec_context.h"
#include "sparse/csr.h"

namespace freehgc::sparse {

/// Push-based approximate Personalized PageRank (Andersen-Chung-Lang
/// forward push). Equivalent to PprScores up to the residual threshold
/// `epsilon`, but touches only the neighbourhood where mass actually
/// flows — the O(E / epsilon) technique the paper invokes for scaling
/// neighbor influence maximization to large HINs (Section IV-C).
///
/// `a` must be square and row-normalized (or sym-normalized); `teleport`
/// is a sparse list of (node, mass) pairs whose masses sum to ~1.
std::vector<float> PprPush(const CsrMatrix& a,
                           const std::vector<std::pair<int32_t, float>>&
                               teleport,
                           float alpha, float epsilon = 1e-4f);

/// Node centrality measures usable as drop-in replacements for the PPR
/// scorer inside neighbor influence maximization — the paper: "NIM can be
/// replaced by other node importance evaluation algorithms like degree,
/// betweenness and closeness centrality, hubs and authorities".
enum class CentralityKind {
  kDegree,
  kCloseness,
  kBetweenness,
  kHubs,        // HITS hub scores
  kAuthorities  // HITS authority scores
};

const char* CentralityKindName(CentralityKind kind);

/// Options for the approximate centrality computations.
struct CentralityOptions {
  /// Source-sample count for the approximate closeness / betweenness
  /// estimators (exact all-pairs is O(V*E); sampling keeps this linear in
  /// practice for the graph sizes here).
  int num_samples = 64;
  /// Power-iteration rounds for HITS.
  int hits_iters = 30;
  uint64_t seed = 1;
};

/// Computes the requested centrality for every node of a square graph.
/// - kDegree: out-degree (entry count per row).
/// - kCloseness: sampled harmonic closeness 1/d averaged over BFS from
///   `num_samples` random sources.
/// - kBetweenness: Brandes' algorithm restricted to sampled sources
///   (unweighted shortest paths).
/// - kHubs / kAuthorities: HITS power iteration with L2 normalization.
///
/// Sampled estimators parallelize one BFS source per chunk with an
/// ordered reduction; HITS half-steps are row-parallel gathers. Results
/// are bit-identical for every thread count (nullptr ctx = default).
std::vector<double> Centrality(const CsrMatrix& a, CentralityKind kind,
                               const CentralityOptions& opts = {},
                               exec::ExecContext* ctx = nullptr);

}  // namespace freehgc::sparse

#endif  // FREEHGC_SPARSE_CENTRALITY_H_
