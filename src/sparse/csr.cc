#include "sparse/csr.h"

#include <algorithm>

#include "common/string_util.h"

namespace freehgc {

Result<CsrMatrix> CsrMatrix::FromCoo(int32_t rows, int32_t cols,
                                     std::vector<CooEntry> entries) {
  if (rows < 0 || cols < 0) {
    return Status::InvalidArgument("negative matrix dimensions");
  }
  for (const auto& e : entries) {
    if (e.row < 0 || e.row >= rows || e.col < 0 || e.col >= cols) {
      return Status::OutOfRange(
          StrFormat("COO entry (%d, %d) outside %dx%d", e.row, e.col, rows,
                    cols));
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const CooEntry& a, const CooEntry& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  CsrMatrix m(rows, cols);
  m.indices_.reserve(entries.size());
  m.values_.reserve(entries.size());
  size_t i = 0;
  for (int32_t r = 0; r < rows; ++r) {
    while (i < entries.size() && entries[i].row == r) {
      // Sum duplicates sharing (row, col).
      const int32_t c = entries[i].col;
      float v = 0.0f;
      while (i < entries.size() && entries[i].row == r &&
             entries[i].col == c) {
        v += entries[i].value;
        ++i;
      }
      m.indices_.push_back(c);
      m.values_.push_back(v);
    }
    m.indptr_[static_cast<size_t>(r) + 1] =
        static_cast<int64_t>(m.indices_.size());
  }
  return m;
}

Result<CsrMatrix> CsrMatrix::FromParts(int32_t rows, int32_t cols,
                                       std::vector<int64_t> indptr,
                                       std::vector<int32_t> indices,
                                       std::vector<float> values) {
  if (rows < 0 || cols < 0) {
    return Status::InvalidArgument("negative matrix dimensions");
  }
  if (indptr.size() != static_cast<size_t>(rows) + 1) {
    return Status::InvalidArgument("indptr size must be rows + 1");
  }
  if (indices.size() != values.size()) {
    return Status::InvalidArgument("indices/values size mismatch");
  }
  if (indptr.front() != 0 ||
      indptr.back() != static_cast<int64_t>(indices.size())) {
    return Status::InvalidArgument("indptr endpoints inconsistent with nnz");
  }
  for (size_t r = 0; r + 1 < indptr.size(); ++r) {
    if (indptr[r] > indptr[r + 1]) {
      return Status::InvalidArgument("indptr must be non-decreasing");
    }
  }
  for (int32_t c : indices) {
    if (c < 0 || c >= cols) {
      return Status::OutOfRange("column index outside [0, cols)");
    }
  }
  CsrMatrix m(rows, cols);
  m.indptr_ = std::move(indptr);
  m.indices_ = std::move(indices);
  m.values_ = std::move(values);
  return m;
}

float CsrMatrix::RowSum(int32_t r) const {
  float s = 0.0f;
  for (float v : RowValues(r)) s += v;
  return s;
}

std::vector<int64_t> CsrMatrix::RowDegrees() const {
  std::vector<int64_t> deg(static_cast<size_t>(rows_), 0);
  for (int32_t r = 0; r < rows_; ++r) deg[static_cast<size_t>(r)] = RowNnz(r);
  return deg;
}

size_t CsrMatrix::MemoryBytes() const {
  return indptr_.size() * sizeof(int64_t) +
         indices_.size() * sizeof(int32_t) + values_.size() * sizeof(float);
}

bool CsrMatrix::Contains(int32_t r, int32_t c) const {
  if (r < 0 || r >= rows_) return false;
  auto idx = RowIndices(r);
  return std::binary_search(idx.begin(), idx.end(), c);
}

}  // namespace freehgc
