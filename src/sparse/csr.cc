#include "sparse/csr.h"

#include <algorithm>
#include <cmath>

#include "common/fnv.h"
#include "common/string_util.h"

namespace freehgc {

Result<CsrMatrix> CsrMatrix::FromCoo(int32_t rows, int32_t cols,
                                     std::vector<CooEntry> entries) {
  if (rows < 0 || cols < 0) {
    return Status::InvalidArgument("negative matrix dimensions");
  }
  for (const auto& e : entries) {
    if (e.row < 0 || e.row >= rows || e.col < 0 || e.col >= cols) {
      return Status::OutOfRange(
          StrFormat("COO entry (%d, %d) outside %dx%d", e.row, e.col, rows,
                    cols));
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const CooEntry& a, const CooEntry& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  std::vector<int64_t> indptr(static_cast<size_t>(rows) + 1, 0);
  std::vector<int32_t> indices;
  std::vector<float> values;
  indices.reserve(entries.size());
  values.reserve(entries.size());
  size_t i = 0;
  for (int32_t r = 0; r < rows; ++r) {
    while (i < entries.size() && entries[i].row == r) {
      // Sum duplicates sharing (row, col).
      const int32_t c = entries[i].col;
      float v = 0.0f;
      while (i < entries.size() && entries[i].row == r &&
             entries[i].col == c) {
        v += entries[i].value;
        ++i;
      }
      indices.push_back(c);
      values.push_back(v);
    }
    indptr[static_cast<size_t>(r) + 1] = static_cast<int64_t>(indices.size());
  }
  CsrMatrix m(rows, cols);
  m.indptr_ = std::move(indptr);
  m.indices_ = std::move(indices);
  m.values_ = std::move(values);
  return m;
}

namespace {

/// Shared structural validation over spans (FromParts and FromView).
/// Branch-free reductions: mapped loads validate multi-GB arrays, so
/// these loops must vectorize instead of branching per element.
Status ValidateParts(int32_t rows, int32_t cols,
                     std::span<const int64_t> indptr,
                     std::span<const int32_t> indices,
                     std::span<const float> values) {
  if (rows < 0 || cols < 0) {
    return Status::InvalidArgument("negative matrix dimensions");
  }
  if (indptr.size() != static_cast<size_t>(rows) + 1) {
    return Status::InvalidArgument("indptr size must be rows + 1");
  }
  if (indices.size() != values.size()) {
    return Status::InvalidArgument("indices/values size mismatch");
  }
  if (indptr.front() != 0 ||
      indptr.back() != static_cast<int64_t>(indices.size())) {
    return Status::InvalidArgument("indptr endpoints inconsistent with nnz");
  }
  int64_t decreases = 0;
  for (size_t r = 0; r + 1 < indptr.size(); ++r) {
    decreases += indptr[r] > indptr[r + 1] ? 1 : 0;
  }
  if (decreases != 0) {
    return Status::InvalidArgument("indptr must be non-decreasing");
  }
  int32_t min_col = 0;
  int32_t max_col = -1;
  for (const int32_t c : indices) {
    min_col = std::min(min_col, c);
    max_col = std::max(max_col, c);
  }
  if (min_col < 0 || max_col >= cols) {
    return Status::OutOfRange("column index outside [0, cols)");
  }
  return Status::OK();
}

}  // namespace

Result<CsrMatrix> CsrMatrix::FromParts(int32_t rows, int32_t cols,
                                       std::vector<int64_t> indptr,
                                       std::vector<int32_t> indices,
                                       std::vector<float> values) {
  FREEHGC_RETURN_IF_ERROR(
      ValidateParts(rows, cols, indptr, indices, values));
  CsrMatrix m(rows, cols);
  m.indptr_ = std::move(indptr);
  m.indices_ = std::move(indices);
  m.values_ = std::move(values);
  return m;
}

Result<CsrMatrix> CsrMatrix::FromView(int32_t rows, int32_t cols,
                                      std::span<const int64_t> indptr,
                                      std::span<const int32_t> indices,
                                      std::span<const float> values,
                                      std::shared_ptr<const void> keepalive) {
  FREEHGC_RETURN_IF_ERROR(
      ValidateParts(rows, cols, indptr, indices, values));
  CsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.indptr_ = ArrayRef<int64_t>::View(indptr, keepalive);
  m.indices_ = ArrayRef<int32_t>::View(indices, keepalive);
  m.values_ = ArrayRef<float>::View(values, std::move(keepalive));
  return m;
}

float CsrMatrix::RowSum(int32_t r) const {
  float s = 0.0f;
  for (float v : RowValues(r)) s += v;
  return s;
}

std::vector<int64_t> CsrMatrix::RowDegrees() const {
  std::vector<int64_t> deg(static_cast<size_t>(rows_), 0);
  for (int32_t r = 0; r < rows_; ++r) deg[static_cast<size_t>(r)] = RowNnz(r);
  return deg;
}

size_t CsrMatrix::MemoryBytes() const {
  return indptr_.size() * sizeof(int64_t) +
         indices_.size() * sizeof(int32_t) + values_.size() * sizeof(float);
}

bool CsrMatrix::Contains(int32_t r, int32_t c) const {
  if (r < 0 || r >= rows_) return false;
  auto idx = RowIndices(r);
  return std::binary_search(idx.begin(), idx.end(), c);
}

Status CsrMatrix::Validate() const {
  if (rows_ < 0 || cols_ < 0) {
    return Status::InvalidArgument("negative matrix dimensions");
  }
  if (indptr_.size() != static_cast<size_t>(rows_) + 1) {
    return Status::InvalidArgument("indptr size must be rows + 1");
  }
  if (indices_.size() != values_.size()) {
    return Status::InvalidArgument("indices/values size mismatch");
  }
  if (indptr_[0] != 0 ||
      indptr_[indptr_.size() - 1] != static_cast<int64_t>(indices_.size())) {
    return Status::InvalidArgument("indptr endpoints inconsistent with nnz");
  }
  for (int32_t r = 0; r < rows_; ++r) {
    const int64_t begin = indptr_[static_cast<size_t>(r)];
    const int64_t end = indptr_[static_cast<size_t>(r) + 1];
    if (begin > end) {
      return Status::InvalidArgument(
          StrFormat("indptr decreases at row %d", r));
    }
    int32_t prev = -1;
    for (int64_t k = begin; k < end; ++k) {
      const int32_t c = indices_[static_cast<size_t>(k)];
      if (c < 0 || c >= cols_) {
        return Status::OutOfRange(
            StrFormat("row %d: column %d outside [0, %d)", r, c, cols_));
      }
      if (c <= prev) {
        return Status::InvalidArgument(StrFormat(
            "row %d: column indices not strictly ascending (%d after %d)", r,
            c, prev));
      }
      prev = c;
      if (!std::isfinite(values_[static_cast<size_t>(k)])) {
        return Status::InvalidArgument(
            StrFormat("row %d: non-finite value at column %d", r, c));
      }
    }
  }
  return Status::OK();
}

uint64_t CsrMatrix::ContentFingerprint() const {
  Fnv f;
  const int64_t dims[2] = {rows_, cols_};
  f.Bytes(dims, sizeof(dims));
  f.Bytes(indptr_.data(), indptr_.size() * sizeof(int64_t));
  f.Bytes(indices_.data(), indices_.size() * sizeof(int32_t));
  f.Bytes(values_.data(), values_.size() * sizeof(float));
  return f.h;
}

bool CsrMatrix::operator==(const CsrMatrix& other) const {
  auto eq = [](auto a, auto b) {
    return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
  };
  return rows_ == other.rows_ && cols_ == other.cols_ &&
         eq(indptr(), other.indptr()) && eq(indices(), other.indices()) &&
         eq(values(), other.values());
}

}  // namespace freehgc
