#include "nn/nn.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace freehgc::nn {

void Adam::Step(const std::vector<Parameter*>& params) {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (Parameter* p : params) {
    float* val = p->value.data();
    const float* g = p->grad.data();
    float* m = p->m.data();
    float* v = p->v.data();
    const int64_t n = p->value.size();
    for (int64_t i = 0; i < n; ++i) {
      m[i] = beta1_ * m[i] + (1.0f - beta1_) * g[i];
      v[i] = beta2_ * v[i] + (1.0f - beta2_) * g[i] * g[i];
      const float mhat = m[i] / bc1;
      const float vhat = v[i] / bc2;
      val[i] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

Linear::Linear(int64_t in_dim, int64_t out_dim, Rng& rng)
    : w_(in_dim, out_dim), b_(1, out_dim) {
  w_.value.FillGlorot(rng);
}

Matrix Linear::Forward(const Matrix& x) {
  cached_x_ = x;
  Matrix out = dense::MatMul(x, w_.value);
  for (int64_t r = 0; r < out.rows(); ++r) {
    float* row = out.Row(r);
    const float* bias = b_.value.Row(0);
    for (int64_t c = 0; c < out.cols(); ++c) row[c] += bias[c];
  }
  return out;
}

Matrix Linear::Backward(const Matrix& dout) {
  // dW += x^T dout ; db += column sums of dout ; dx = dout W^T
  dense::Axpy(1.0f, dense::MatMulTA(cached_x_, dout), w_.grad);
  for (int64_t r = 0; r < dout.rows(); ++r) {
    const float* row = dout.Row(r);
    float* db = b_.grad.Row(0);
    for (int64_t c = 0; c < dout.cols(); ++c) db[c] += row[c];
  }
  return dense::MatMulTB(dout, w_.value);
}

Matrix ReLU::Forward(const Matrix& x) {
  cached_x_ = x;
  Matrix out = x;
  float* p = out.data();
  for (int64_t i = 0; i < out.size(); ++i) p[i] = std::max(0.0f, p[i]);
  return out;
}

Matrix ReLU::Backward(const Matrix& dout) {
  Matrix dx = dout;
  const float* x = cached_x_.data();
  float* d = dx.data();
  for (int64_t i = 0; i < dx.size(); ++i) {
    if (x[i] <= 0.0f) d[i] = 0.0f;
  }
  return dx;
}

Matrix Dropout::Forward(const Matrix& x, bool train) {
  active_ = train && rate_ > 0.0f;
  if (!active_) return x;
  mask_ = Matrix(x.rows(), x.cols());
  const float keep = 1.0f - rate_;
  const float scale = 1.0f / keep;
  float* mp = mask_.data();
  for (int64_t i = 0; i < mask_.size(); ++i) {
    mp[i] = rng_.NextDouble() < keep ? scale : 0.0f;
  }
  Matrix out = x;
  float* op = out.data();
  for (int64_t i = 0; i < out.size(); ++i) op[i] *= mp[i];
  return out;
}

Matrix Dropout::Backward(const Matrix& dout) {
  if (!active_) return dout;
  Matrix dx = dout;
  const float* mp = mask_.data();
  float* d = dx.data();
  for (int64_t i = 0; i < dx.size(); ++i) d[i] *= mp[i];
  return dx;
}

Mlp::Mlp(const std::vector<int64_t>& dims, float dropout, uint64_t seed) {
  FREEHGC_CHECK(dims.size() >= 2);
  Rng rng(seed);
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    linears_.push_back(std::make_unique<Linear>(dims[i], dims[i + 1], rng));
    if (i + 2 < dims.size()) {
      relus_.emplace_back();
      dropouts_.emplace_back(dropout, seed ^ (0x9e3779b9ULL * (i + 1)));
    }
  }
}

Matrix Mlp::Forward(const Matrix& x, bool train) {
  Matrix h = x;
  for (size_t i = 0; i < linears_.size(); ++i) {
    h = linears_[i]->Forward(h);
    if (i + 1 < linears_.size()) {
      h = relus_[i].Forward(h);
      h = dropouts_[i].Forward(h, train);
    }
  }
  return h;
}

Matrix Mlp::Backward(const Matrix& dout) {
  Matrix d = dout;
  for (size_t i = linears_.size(); i-- > 0;) {
    if (i + 1 < linears_.size()) {
      d = dropouts_[i].Backward(d);
      d = relus_[i].Backward(d);
    }
    d = linears_[i]->Backward(d);
  }
  return d;
}

std::vector<Parameter*> Mlp::Params() {
  std::vector<Parameter*> out;
  for (auto& l : linears_) {
    for (Parameter* p : l->Params()) out.push_back(p);
  }
  return out;
}

void Mlp::ZeroGrad() {
  for (Parameter* p : Params()) p->ZeroGrad();
}

int64_t Mlp::NumParams() const {
  int64_t n = 0;
  for (const auto& l : const_cast<Mlp*>(this)->linears_) {
    for (Parameter* p : l->Params()) n += p->value.size();
  }
  return n;
}

float SoftmaxCrossEntropy(const Matrix& logits,
                          const std::vector<int32_t>& labels,
                          const std::vector<int32_t>& index,
                          Matrix* dlogits) {
  FREEHGC_CHECK(static_cast<int64_t>(labels.size()) == logits.rows());
  const int64_t n =
      index.empty() ? logits.rows() : static_cast<int64_t>(index.size());
  if (dlogits != nullptr) *dlogits = Matrix(logits.rows(), logits.cols());
  if (n == 0) return 0.0f;
  double loss = 0.0;
  const float inv_n = 1.0f / static_cast<float>(n);
  for (int64_t k = 0; k < n; ++k) {
    const int64_t r = index.empty() ? k : index[static_cast<size_t>(k)];
    const float* row = logits.Row(r);
    const int32_t y = labels[static_cast<size_t>(r)];
    float mx = row[0];
    for (int64_t c = 1; c < logits.cols(); ++c) mx = std::max(mx, row[c]);
    double sum = 0.0;
    for (int64_t c = 0; c < logits.cols(); ++c) {
      sum += std::exp(static_cast<double>(row[c] - mx));
    }
    const double log_z = std::log(sum) + mx;
    loss += log_z - row[y];
    if (dlogits != nullptr) {
      float* drow = dlogits->Row(r);
      for (int64_t c = 0; c < logits.cols(); ++c) {
        const float p =
            static_cast<float>(std::exp(static_cast<double>(row[c]) - log_z));
        drow[c] = (p - (c == y ? 1.0f : 0.0f)) * inv_n;
      }
    }
  }
  return static_cast<float>(loss / static_cast<double>(n));
}

float Accuracy(const Matrix& logits, const std::vector<int32_t>& labels,
               const std::vector<int32_t>& index) {
  const int64_t n =
      index.empty() ? logits.rows() : static_cast<int64_t>(index.size());
  if (n == 0) return 0.0f;
  int64_t correct = 0;
  for (int64_t k = 0; k < n; ++k) {
    const int64_t r = index.empty() ? k : index[static_cast<size_t>(k)];
    const float* row = logits.Row(r);
    int64_t best = 0;
    for (int64_t c = 1; c < logits.cols(); ++c) {
      if (row[c] > row[best]) best = c;
    }
    if (best == labels[static_cast<size_t>(r)]) ++correct;
  }
  return static_cast<float>(correct) / static_cast<float>(n);
}

float MacroF1(const Matrix& logits, const std::vector<int32_t>& labels,
              const std::vector<int32_t>& index, int32_t num_classes) {
  const int64_t n =
      index.empty() ? logits.rows() : static_cast<int64_t>(index.size());
  if (n == 0 || num_classes <= 0) return 0.0f;
  std::vector<int64_t> tp(static_cast<size_t>(num_classes), 0);
  std::vector<int64_t> fp(static_cast<size_t>(num_classes), 0);
  std::vector<int64_t> fn(static_cast<size_t>(num_classes), 0);
  for (int64_t k = 0; k < n; ++k) {
    const int64_t r = index.empty() ? k : index[static_cast<size_t>(k)];
    const float* row = logits.Row(r);
    int32_t pred = 0;
    for (int64_t c = 1; c < logits.cols(); ++c) {
      if (row[c] > row[pred]) pred = static_cast<int32_t>(c);
    }
    const int32_t y = labels[static_cast<size_t>(r)];
    if (pred == y) {
      ++tp[static_cast<size_t>(y)];
    } else {
      ++fp[static_cast<size_t>(pred)];
      ++fn[static_cast<size_t>(y)];
    }
  }
  double f1_sum = 0.0;
  for (int32_t c = 0; c < num_classes; ++c) {
    const double denom =
        2.0 * tp[static_cast<size_t>(c)] + fp[static_cast<size_t>(c)] +
        fn[static_cast<size_t>(c)];
    f1_sum += denom > 0 ? 2.0 * tp[static_cast<size_t>(c)] / denom : 0.0;
  }
  return static_cast<float>(f1_sum / num_classes);
}

}  // namespace freehgc::nn
