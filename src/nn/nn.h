#ifndef FREEHGC_NN_NN_H_
#define FREEHGC_NN_NN_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "dense/matrix.h"

namespace freehgc::nn {

/// A trainable tensor with gradient and Adam moment buffers.
struct Parameter {
  Matrix value;
  Matrix grad;
  Matrix m;  // Adam first moment
  Matrix v;  // Adam second moment

  explicit Parameter(int64_t rows, int64_t cols)
      : value(rows, cols), grad(rows, cols), m(rows, cols), v(rows, cols) {}

  void ZeroGrad() { grad.Fill(0.0f); }
};

/// Adam optimizer over a fixed set of parameters (borrowed pointers; the
/// model outlives the optimizer step calls).
class Adam {
 public:
  explicit Adam(float lr = 1e-3f, float beta1 = 0.9f, float beta2 = 0.999f,
                float eps = 1e-8f)
      : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {}

  /// Applies one update to every parameter from its .grad, then leaves the
  /// gradients untouched (call ZeroGrad before the next backward pass).
  void Step(const std::vector<Parameter*>& params);

  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }
  int64_t step_count() const { return t_; }

 private:
  float lr_, beta1_, beta2_, eps_;
  int64_t t_ = 0;
};

/// Fully connected layer y = x W + b with cached input for backprop.
class Linear {
 public:
  /// Glorot-initialized (in x out) weights, zero bias.
  Linear(int64_t in_dim, int64_t out_dim, Rng& rng);

  /// Forward pass; caches x for Backward.
  Matrix Forward(const Matrix& x);

  /// Backward pass: accumulates dW, db from `dout` and returns dx.
  Matrix Backward(const Matrix& dout);

  std::vector<Parameter*> Params() { return {&w_, &b_}; }
  const Matrix& weight() const { return w_.value; }

 private:
  Parameter w_;  // (in, out)
  Parameter b_;  // (1, out)
  Matrix cached_x_;
};

/// Elementwise ReLU with cached mask.
class ReLU {
 public:
  Matrix Forward(const Matrix& x);
  Matrix Backward(const Matrix& dout);

 private:
  Matrix cached_x_;
};

/// Inverted dropout. Identity when `train` is false or rate is 0.
class Dropout {
 public:
  explicit Dropout(float rate, uint64_t seed) : rate_(rate), rng_(seed) {}

  Matrix Forward(const Matrix& x, bool train);
  Matrix Backward(const Matrix& dout);

 private:
  float rate_;
  Rng rng_;
  Matrix mask_;
  bool active_ = false;
};

/// Multi-layer perceptron: Linear -> ReLU -> Dropout repeated, final
/// Linear produces logits. The workhorse classifier head shared by every
/// HGNN evaluator in src/hgnn/.
class Mlp {
 public:
  /// dims = {in, hidden..., out}. Requires >= 2 entries.
  Mlp(const std::vector<int64_t>& dims, float dropout, uint64_t seed);

  /// Forward pass to logits.
  Matrix Forward(const Matrix& x, bool train);

  /// Backward from dlogits; populates parameter gradients, returns dx.
  Matrix Backward(const Matrix& dout);

  /// All trainable parameters (for the optimizer).
  std::vector<Parameter*> Params();

  void ZeroGrad();

  /// Number of trainable scalars.
  int64_t NumParams() const;

 private:
  std::vector<std::unique_ptr<Linear>> linears_;
  std::vector<ReLU> relus_;
  std::vector<Dropout> dropouts_;
};

/// Mean softmax cross-entropy over the rows listed in `index` (all rows if
/// empty). Returns the loss; writes dlogits (zero on unlisted rows).
float SoftmaxCrossEntropy(const Matrix& logits,
                          const std::vector<int32_t>& labels,
                          const std::vector<int32_t>& index, Matrix* dlogits);

/// Classification accuracy over the rows in `index` (all rows if empty).
float Accuracy(const Matrix& logits, const std::vector<int32_t>& labels,
               const std::vector<int32_t>& index);

/// Macro-averaged F1 over the rows in `index` (all rows if empty).
float MacroF1(const Matrix& logits, const std::vector<int32_t>& labels,
              const std::vector<int32_t>& index, int32_t num_classes);

}  // namespace freehgc::nn

#endif  // FREEHGC_NN_NN_H_
