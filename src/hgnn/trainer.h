#ifndef FREEHGC_HGNN_TRAINER_H_
#define FREEHGC_HGNN_TRAINER_H_

#include <vector>

#include "graph/hetero_graph.h"
#include "hgnn/models.h"
#include "hgnn/propagate.h"

namespace freehgc::hgnn {

/// Outcome of one train-and-evaluate run.
struct EvalMetrics {
  /// Accuracy on the evaluation graph's test split.
  float test_accuracy = 0.0f;
  /// Macro-averaged F1 on the same split.
  float macro_f1 = 0.0f;
  /// Wall-clock seconds spent in the training loop (Table VII's TH/TS).
  double train_seconds = 0.0;
  /// Epochs actually run (early stopping may cut the budget short).
  int epochs_run = 0;
};

/// Everything that is fixed per (full graph, propagation options):
/// the enumerated meta-path list and the full graph's propagated feature
/// blocks. Built once, then reused across every condensation method and
/// every evaluator model — this mirrors the paper's protocol where the
/// test graph never changes.
struct EvalContext {
  const HeteroGraph* full = nullptr;  // borrowed; must outlive the context
  std::vector<MetaPath> paths;
  PropagatedFeatures full_features;
  PropagateOptions options;
};

/// Enumerates meta-paths on the full graph and pre-propagates its
/// features. Propagation runs on `ctx` (null = default pool); `cache`,
/// when non-null, memoizes the composed adjacencies — the same ones
/// core::Condense composes over the same graph, so building the context
/// through a sweep's ArtifactCache makes later condensation runs hit.
EvalContext BuildEvalContext(const HeteroGraph& full,
                             const PropagateOptions& opts,
                             exec::ExecContext* ctx = nullptr,
                             AdjacencyCache* cache = nullptr);

/// The paper's evaluation protocol (Section V-B): train an HGNN on
/// `train_graph` (its train split; for a condensed graph that is every
/// kept target node), early-stop on the full graph's validation split, and
/// report accuracy on the full graph's test split.
///
/// `train_graph` must share the schema of ctx.full (same types and
/// relations) so the meta-path list applies to both. The train-graph
/// propagation runs on `ex` (null = default pool); it is deliberately not
/// cached — condensed graphs are seed-dependent and used once.
EvalMetrics TrainAndEvaluate(const EvalContext& ctx,
                             const HeteroGraph& train_graph,
                             const HgnnConfig& config,
                             exec::ExecContext* ex = nullptr);

/// Convenience: whole-graph performance (train and test on ctx.full).
EvalMetrics WholeGraphBaseline(const EvalContext& ctx,
                               const HgnnConfig& config,
                               exec::ExecContext* ex = nullptr);

/// Trains directly on pre-propagated (possibly synthetic) feature blocks
/// — the entry point used by gradient-matching condensers (GCond/HGCond),
/// whose output is synthetic data rather than a subgraph. Every row of
/// `blocks` is a training example labeled by `labels`; evaluation follows
/// the same protocol as TrainAndEvaluate.
EvalMetrics TrainOnBlocks(const EvalContext& ctx,
                          const std::vector<Matrix>& blocks,
                          const std::vector<int32_t>& labels,
                          const HgnnConfig& config);

}  // namespace freehgc::hgnn

#endif  // FREEHGC_HGNN_TRAINER_H_
