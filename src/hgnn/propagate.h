#ifndef FREEHGC_HGNN_PROPAGATE_H_
#define FREEHGC_HGNN_PROPAGATE_H_

#include <string>
#include <vector>

#include "dense/matrix.h"
#include "exec/exec_context.h"
#include "graph/hetero_graph.h"
#include "metapath/metapath.h"

namespace freehgc::hgnn {

/// Per-meta-path mean-aggregated features of the target-type nodes.
///
/// Following SeHGNN (and the paper's Section IV-C finding that neighbor
/// attention can be replaced by mean aggregation), neighbor aggregation is
/// moved entirely to pre-processing: feature block p is
///   H_p = A_hat(P_p) * X_{end(P_p)}
/// plus block 0 = the raw target features. Every HGNN evaluator consumes
/// this structure and differs only in how it fuses the blocks.
struct PropagatedFeatures {
  /// Block 0 is the raw target features; block p >= 1 corresponds to
  /// paths[p-1]. Every block has target-node-count rows.
  std::vector<Matrix> blocks;
  /// Human-readable block names ("raw", "paper-author", ...).
  std::vector<std::string> names;
  /// End (source) type of each block; block 0's is the target type itself.
  std::vector<TypeId> end_types;
};

/// Options controlling pre-propagation.
struct PropagateOptions {
  int max_hops = 2;
  /// Cap on enumerated meta-paths (0 = unlimited).
  int max_paths = 24;
  /// Row-nnz budget for composed adjacencies (0 = exact).
  int64_t max_row_nnz = 512;
};

/// Enumerates meta-paths from the graph's target type and mean-propagates
/// features along each (Eq. 1 composition). The returned block layout is a
/// function of the *schema*, so a condensed graph produced from `g`
/// (identical types/relations) yields an identically shaped layout —
/// which is what lets a model trained on the condensed graph run on the
/// full graph.
PropagatedFeatures PropagateFeatures(const HeteroGraph& g,
                                     const PropagateOptions& opts,
                                     exec::ExecContext* ctx = nullptr);

/// Same propagation with a fixed externally supplied path list (used to
/// guarantee identical block order between the condensed and full graphs).
/// Composition, the sparse-dense product, and the per-block row
/// normalization all run on `ctx`. `cache`, when non-null, memoizes the
/// composed adjacencies (they are what a whole-graph propagation shares
/// with CondenseTargetNodes/CondenseFatherType over the same graph).
PropagatedFeatures PropagateAlongPaths(const HeteroGraph& g,
                                       const std::vector<MetaPath>& paths,
                                       int64_t max_row_nnz,
                                       exec::ExecContext* ctx = nullptr,
                                       AdjacencyCache* cache = nullptr);

// Per-block pieces of PropagateAlongPaths, exposed so a budgeted caller
// (the tiered ArtifactCache) can stream blocks to disk one at a time
// instead of materializing the whole PropagatedFeatures on the heap.
// PropagateAlongPaths is implemented in terms of these, so the streamed
// and in-heap paths are bit-identical by construction.

/// Block 0: the raw target features, L2-row-normalized.
Matrix RawFeatureBlock(const HeteroGraph& g, exec::ExecContext* ctx = nullptr);

/// The feature block of one meta-path (A_hat(p) * X_end, L2-row-
/// normalized). The path must start at the target type and its end type
/// must have features (callers skip featureless end types, exactly like
/// PropagateAlongPaths).
Matrix PropagateOneBlock(const HeteroGraph& g, const MetaPath& p,
                         int64_t max_row_nnz,
                         exec::ExecContext* ctx = nullptr,
                         AdjacencyCache* cache = nullptr);

/// Bumps the hgnn.blocks_propagated counter (streamed builds bypass
/// PropagateAlongPaths but should still show up in the metric).
void NoteBlocksPropagated(int64_t count);

}  // namespace freehgc::hgnn

#endif  // FREEHGC_HGNN_PROPAGATE_H_
