#ifndef FREEHGC_HGNN_FEATURE_SPILL_H_
#define FREEHGC_HGNN_FEATURE_SPILL_H_

// Spill-file round trip for PropagatedFeatures: every block becomes a
// page-aligned CRC-protected FEATURES section of a section_io spill file
// (graph/section_io.h), with names/end_types/shapes in the META section.
// MapPropagatedSpill hands back blocks as zero-copy Matrix views over the
// mapping — bit-identical to the spilled blocks — which is what lets the
// tiered ArtifactCache keep cold eval-context features on disk while the
// serve path reads them like resident ones.

#include <cstdint>
#include <memory>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "dense/matrix.h"
#include "graph/hetero_graph.h"
#include "hgnn/propagate.h"

namespace freehgc::hgnn {

/// Streaming spill writer: blocks are appended one at a time, so a
/// budgeted builder never holds more than the block it just computed
/// (plus the file buffer) on the heap. Crash-safe: sections go to a
/// ".tmp" sibling and Finish publishes atomically. Destroying an
/// unfinished writer deletes the temp file.
class PropagatedSpillWriter {
 public:
  static Result<PropagatedSpillWriter> Create(const std::string& path);

  PropagatedSpillWriter(PropagatedSpillWriter&&) noexcept;
  PropagatedSpillWriter& operator=(PropagatedSpillWriter&&) noexcept;
  PropagatedSpillWriter(const PropagatedSpillWriter&) = delete;
  PropagatedSpillWriter& operator=(const PropagatedSpillWriter&) = delete;
  ~PropagatedSpillWriter();

  /// Appends one feature block (block order = PropagatedFeatures order:
  /// raw first, then one per contributing path).
  Status AddBlock(const Matrix& block, const std::string& name,
                  TypeId end_type);

  /// Writes the META section + table + header and atomically publishes.
  /// `fingerprint` goes into the header (the cache stores its entry-key
  /// hash so files can be matched back without payload IO). Returns the
  /// final file size.
  Result<uint64_t> Finish(uint64_t fingerprint);

  /// Deletes the temporary file without publishing anything.
  void Abandon();

 private:
  PropagatedSpillWriter() = default;
  struct Impl;
  Impl* impl_ = nullptr;
};

/// Writes a whole PropagatedFeatures in one call (eviction path).
/// Returns the file size in bytes.
Result<uint64_t> WritePropagatedSpill(const PropagatedFeatures& f,
                                      const std::string& path,
                                      uint64_t fingerprint);

/// Maps a spill file back as PropagatedFeatures whose blocks are
/// zero-copy views over the mapping (every section CRC verified first).
/// The mapping stays alive as long as any block (or copy) does.
Result<std::shared_ptr<const PropagatedFeatures>> MapPropagatedSpill(
    const std::string& path);

}  // namespace freehgc::hgnn

#endif  // FREEHGC_HGNN_FEATURE_SPILL_H_
