#include "hgnn/models.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/logging.h"

namespace freehgc::hgnn {

const char* HgnnKindName(HgnnKind kind) {
  switch (kind) {
    case HgnnKind::kHeteroSGC:
      return "HeteroSGC";
    case HgnnKind::kSeHGNN:
      return "SeHGNN";
    case HgnnKind::kHAN:
      return "HAN";
    case HgnnKind::kHGB:
      return "HGB";
    case HgnnKind::kHGT:
      return "HGT";
  }
  return "?";
}

namespace {

std::vector<int64_t> HeadDims(const HgnnConfig& c, int64_t num_blocks,
                              int32_t num_classes) {
  switch (c.kind) {
    case HgnnKind::kHeteroSGC:
      // Simplest relay: linear head on the mean-fused embedding.
      return {c.hidden, num_classes};
    case HgnnKind::kSeHGNN:
      return {c.hidden * num_blocks, c.hidden, num_classes};
    case HgnnKind::kHAN:
    case HgnnKind::kHGB:
    case HgnnKind::kHGT:
      return {c.hidden, c.hidden, num_classes};
  }
  return {c.hidden, num_classes};
}

}  // namespace

HgnnModel::HgnnModel(const HgnnConfig& config,
                     const std::vector<int64_t>& block_dims,
                     const std::vector<TypeId>& end_types,
                     int32_t num_classes)
    : config_(config),
      num_blocks_(static_cast<int64_t>(block_dims.size())),
      head_(HeadDims(config, static_cast<int64_t>(block_dims.size()),
                     num_classes),
            config.dropout, config.seed ^ 0xabcdefULL) {
  FREEHGC_CHECK(!block_dims.empty());
  FREEHGC_CHECK(block_dims.size() == end_types.size());
  Rng rng(config.seed);
  for (int64_t p = 0; p < num_blocks_; ++p) {
    projections_.push_back(std::make_unique<nn::Linear>(
        block_dims[static_cast<size_t>(p)], config.hidden, rng));
    proj_relus_.emplace_back();
  }
  if (config.kind == HgnnKind::kHAN) {
    attn_ = std::make_unique<nn::Parameter>(1, num_blocks_);
    block_group_.assign(static_cast<size_t>(num_blocks_), 0);
    num_groups_ = num_blocks_;
    for (int64_t p = 0; p < num_blocks_; ++p) {
      block_group_[static_cast<size_t>(p)] = p;
    }
  } else if (config.kind == HgnnKind::kHGT) {
    std::unordered_map<TypeId, int64_t> group_of;
    block_group_.resize(static_cast<size_t>(num_blocks_));
    for (int64_t p = 0; p < num_blocks_; ++p) {
      const TypeId t = end_types[static_cast<size_t>(p)];
      auto [it, inserted] =
          group_of.try_emplace(t, static_cast<int64_t>(group_of.size()));
      block_group_[static_cast<size_t>(p)] = it->second;
    }
    num_groups_ = static_cast<int64_t>(group_of.size());
    attn_ = std::make_unique<nn::Parameter>(1, num_groups_);
  }
}

Matrix HgnnModel::Forward(const std::vector<Matrix>& blocks, bool train) {
  FREEHGC_CHECK(static_cast<int64_t>(blocks.size()) == num_blocks_);
  cached_h_.clear();
  cached_h_.reserve(static_cast<size_t>(num_blocks_));
  for (int64_t p = 0; p < num_blocks_; ++p) {
    Matrix h = projections_[static_cast<size_t>(p)]->Forward(
        blocks[static_cast<size_t>(p)]);
    cached_h_.push_back(proj_relus_[static_cast<size_t>(p)].Forward(h));
  }
  const int64_t n = cached_h_[0].rows();
  const int64_t hidden = config_.hidden;

  Matrix fused;
  switch (config_.kind) {
    case HgnnKind::kHeteroSGC: {
      // Sum-scaled mean: identical direction to the mean, but unit-scale
      // activations so small training sets still produce usable
      // gradients.
      fused = Matrix(n, hidden);
      for (const auto& h : cached_h_) dense::Axpy(1.0f, h, fused);
      break;
    }
    case HgnnKind::kSeHGNN: {
      fused = cached_h_[0];
      for (int64_t p = 1; p < num_blocks_; ++p) {
        fused = fused.ConcatCols(cached_h_[static_cast<size_t>(p)]);
      }
      break;
    }
    case HgnnKind::kHGB: {
      // Sum fusion; block 0 (raw features) acts as the residual branch.
      fused = Matrix(n, hidden);
      for (const auto& h : cached_h_) dense::Axpy(1.0f, h, fused);
      break;
    }
    case HgnnKind::kHAN:
    case HgnnKind::kHGT: {
      // Softmax attention over blocks (kHAN) or type groups (kHGT).
      std::vector<float> logits(static_cast<size_t>(num_groups_));
      for (int64_t gidx = 0; gidx < num_groups_; ++gidx) {
        logits[static_cast<size_t>(gidx)] = attn_->value.At(0, gidx);
      }
      float mx = *std::max_element(logits.begin(), logits.end());
      float sum = 0.0f;
      cached_w_.assign(static_cast<size_t>(num_groups_), 0.0f);
      for (int64_t gidx = 0; gidx < num_groups_; ++gidx) {
        cached_w_[static_cast<size_t>(gidx)] =
            std::exp(logits[static_cast<size_t>(gidx)] - mx);
        sum += cached_w_[static_cast<size_t>(gidx)];
      }
      for (auto& w : cached_w_) w /= sum;
      // Group sizes for averaging within groups.
      std::vector<float> group_size(static_cast<size_t>(num_groups_), 0.0f);
      for (int64_t p = 0; p < num_blocks_; ++p) {
        group_size[static_cast<size_t>(
            block_group_[static_cast<size_t>(p)])] += 1.0f;
      }
      // The attention-weighted combination is scaled by the group count
      // so its magnitude matches sum fusion (better conditioned heads on
      // small condensed training sets); softmax weights still control the
      // relative semantic mix.
      fused = Matrix(n, hidden);
      const float scale = static_cast<float>(num_groups_);
      for (int64_t p = 0; p < num_blocks_; ++p) {
        const int64_t gidx = block_group_[static_cast<size_t>(p)];
        const float coeff = scale * cached_w_[static_cast<size_t>(gidx)] /
                            group_size[static_cast<size_t>(gidx)];
        dense::Axpy(coeff, cached_h_[static_cast<size_t>(p)], fused);
      }
      break;
    }
  }
  return head_.Forward(fused, train);
}

void HgnnModel::Backward(const Matrix& dlogits) {
  Matrix dfused = head_.Backward(dlogits);
  std::vector<Matrix> dh(static_cast<size_t>(num_blocks_));
  const int64_t hidden = config_.hidden;

  switch (config_.kind) {
    case HgnnKind::kHeteroSGC: {
      for (int64_t p = 0; p < num_blocks_; ++p) {
        dh[static_cast<size_t>(p)] = dfused;
      }
      break;
    }
    case HgnnKind::kSeHGNN: {
      for (int64_t p = 0; p < num_blocks_; ++p) {
        Matrix slice(dfused.rows(), hidden);
        for (int64_t r = 0; r < dfused.rows(); ++r) {
          const float* src = dfused.Row(r) + p * hidden;
          std::copy(src, src + hidden, slice.Row(r));
        }
        dh[static_cast<size_t>(p)] = std::move(slice);
      }
      break;
    }
    case HgnnKind::kHGB: {
      for (int64_t p = 0; p < num_blocks_; ++p) {
        dh[static_cast<size_t>(p)] = dfused;
      }
      break;
    }
    case HgnnKind::kHAN:
    case HgnnKind::kHGT: {
      std::vector<float> group_size(static_cast<size_t>(num_groups_), 0.0f);
      for (int64_t p = 0; p < num_blocks_; ++p) {
        group_size[static_cast<size_t>(
            block_group_[static_cast<size_t>(p)])] += 1.0f;
      }
      // s_g = <dfused, h_g_mean>; softmax backward for the logits.
      const float scale = static_cast<float>(num_groups_);
      std::vector<float> s(static_cast<size_t>(num_groups_), 0.0f);
      for (int64_t p = 0; p < num_blocks_; ++p) {
        const int64_t gidx = block_group_[static_cast<size_t>(p)];
        s[static_cast<size_t>(gidx)] +=
            scale * dense::Dot(dfused, cached_h_[static_cast<size_t>(p)]) /
            group_size[static_cast<size_t>(gidx)];
      }
      float weighted_sum = 0.0f;
      for (int64_t gidx = 0; gidx < num_groups_; ++gidx) {
        weighted_sum +=
            cached_w_[static_cast<size_t>(gidx)] * s[static_cast<size_t>(gidx)];
      }
      for (int64_t gidx = 0; gidx < num_groups_; ++gidx) {
        attn_->grad.At(0, gidx) +=
            cached_w_[static_cast<size_t>(gidx)] *
            (s[static_cast<size_t>(gidx)] - weighted_sum);
      }
      for (int64_t p = 0; p < num_blocks_; ++p) {
        const int64_t gidx = block_group_[static_cast<size_t>(p)];
        const float coeff = scale * cached_w_[static_cast<size_t>(gidx)] /
                            group_size[static_cast<size_t>(gidx)];
        dh[static_cast<size_t>(p)] = dense::Scale(dfused, coeff);
      }
      break;
    }
  }

  for (int64_t p = 0; p < num_blocks_; ++p) {
    Matrix d = proj_relus_[static_cast<size_t>(p)].Backward(
        dh[static_cast<size_t>(p)]);
    projections_[static_cast<size_t>(p)]->Backward(d);
  }
}

std::vector<nn::Parameter*> HgnnModel::Params() {
  std::vector<nn::Parameter*> out;
  for (auto& proj : projections_) {
    for (nn::Parameter* p : proj->Params()) out.push_back(p);
  }
  if (attn_) out.push_back(attn_.get());
  for (nn::Parameter* p : head_.Params()) out.push_back(p);
  return out;
}

void HgnnModel::ZeroGrad() {
  for (nn::Parameter* p : Params()) p->ZeroGrad();
}

int64_t HgnnModel::NumParams() const {
  int64_t n = 0;
  for (nn::Parameter* p : const_cast<HgnnModel*>(this)->Params()) {
    n += p->value.size();
  }
  return n;
}

}  // namespace freehgc::hgnn
