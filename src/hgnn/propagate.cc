#include "hgnn/propagate.h"

#include <cmath>
#include <memory>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sparse/ops.h"

namespace freehgc::hgnn {

namespace {

/// Row-wise L2 normalization (zero rows stay zero). SeHGNN normalizes each
/// semantic embedding before fusion; doing the same here makes the block
/// representation scale-free, so a model trained on a condensed graph
/// (where some neighborhoods are thinner) transfers to the full graph.
void L2NormalizeRows(Matrix& m, exec::ExecContext& ex) {
  if (m.empty()) return;
  // Detach here, not inside the loop: for a mapped-graph feature matrix
  // the first mutating access copies the view into owned storage, and
  // concurrent Row() calls would race that copy-on-write.
  float* const base = m.data();
  const int64_t cols = m.cols();
  ex.ParallelFor(m.rows(), 256,
                 [&](int64_t begin, int64_t end, exec::Workspace&) {
                   for (int64_t r = begin; r < end; ++r) {
                     float* row = base + r * cols;
                     double sq = 0.0;
                     for (int64_t c = 0; c < cols; ++c) {
                       sq += double(row[c]) * row[c];
                     }
                     if (sq <= 0.0) continue;
                     const float inv =
                         static_cast<float>(1.0 / std::sqrt(sq));
                     for (int64_t c = 0; c < cols; ++c) row[c] *= inv;
                   }
                 });
}

}  // namespace

Matrix RawFeatureBlock(const HeteroGraph& g, exec::ExecContext* ctx) {
  const TypeId target = g.target_type();
  FREEHGC_CHECK(target >= 0);
  exec::ExecContext& ex = exec::Resolve(ctx);
  Matrix block = g.Features(target);
  L2NormalizeRows(block, ex);
  return block;
}

Matrix PropagateOneBlock(const HeteroGraph& g, const MetaPath& p,
                         int64_t max_row_nnz, exec::ExecContext* ctx,
                         AdjacencyCache* cache) {
  FREEHGC_CHECK(p.start_type() == g.target_type());
  FREEHGC_CHECK(g.HasFeatures(p.end_type()));
  exec::ExecContext& ex = exec::Resolve(ctx);
  // The pin lives only for this product; an uncached adjacency frees on
  // release, a budgeted cache may spill it afterwards.
  const std::shared_ptr<const CsrMatrix> adj =
      ComposedAdjacency(cache, g, p, max_row_nnz, &ex);
  Matrix block = sparse::SpMmDense(*adj, g.Features(p.end_type()), &ex);
  L2NormalizeRows(block, ex);
  return block;
}

void NoteBlocksPropagated(int64_t count) {
  static obs::Counter& blocks_ctr =
      obs::MetricsRegistry::Global().GetCounter("hgnn.blocks_propagated");
  blocks_ctr.Add(count);
}

PropagatedFeatures PropagateAlongPaths(const HeteroGraph& g,
                                       const std::vector<MetaPath>& paths,
                                       int64_t max_row_nnz,
                                       exec::ExecContext* ctx,
                                       AdjacencyCache* cache) {
  const TypeId target = g.target_type();
  FREEHGC_CHECK(target >= 0);
  FREEHGC_TRACE_SPAN("hgnn.propagate");
  exec::ExecContext& ex = exec::Resolve(ctx);
  PropagatedFeatures out;
  out.blocks.push_back(RawFeatureBlock(g, &ex));
  out.names.push_back("raw");
  out.end_types.push_back(target);
  for (const auto& p : paths) {
    FREEHGC_CHECK(p.start_type() == target);
    const TypeId end = p.end_type();
    if (!g.HasFeatures(end)) continue;
    out.blocks.push_back(PropagateOneBlock(g, p, max_row_nnz, &ex, cache));
    out.names.push_back(p.Name(g));
    out.end_types.push_back(end);
  }
  NoteBlocksPropagated(static_cast<int64_t>(out.blocks.size()));
  return out;
}

PropagatedFeatures PropagateFeatures(const HeteroGraph& g,
                                     const PropagateOptions& opts,
                                     exec::ExecContext* ctx) {
  MetaPathOptions mp_opts;
  mp_opts.max_hops = opts.max_hops;
  mp_opts.max_paths = opts.max_paths;
  mp_opts.max_row_nnz = opts.max_row_nnz;
  const std::vector<MetaPath> paths =
      EnumerateMetaPaths(g, g.target_type(), mp_opts);
  return PropagateAlongPaths(g, paths, opts.max_row_nnz, ctx);
}

}  // namespace freehgc::hgnn
