#ifndef FREEHGC_HGNN_MODELS_H_
#define FREEHGC_HGNN_MODELS_H_

#include <memory>
#include <string>
#include <vector>

#include "hgnn/propagate.h"
#include "nn/nn.h"

namespace freehgc::hgnn {

/// The HGNN evaluator family. All models share pre-propagated meta-path
/// feature blocks (PropagatedFeatures) and differ in the semantic fusion
/// mode — the axis the paper's generalization experiments (Tables I and
/// IV) vary:
///   kHeteroSGC : mean of projected blocks, linear head (the relay model
///                HGCond is restricted to).
///   kSeHGNN    : concatenated projected blocks, MLP head.
///   kHAN       : learnable semantic attention (softmax over block
///                logits), MLP head.
///   kHGB       : sum fusion with raw-feature residual, MLP head.
///   kHGT       : type-wise grouping with learnable per-type attention,
///                MLP head.
enum class HgnnKind { kHeteroSGC, kSeHGNN, kHAN, kHGB, kHGT };

/// Parses "sehgnn", "han", ... (case-sensitive, lowercase).
const char* HgnnKindName(HgnnKind kind);

/// Hyper-parameters (paper Section V-B: lr 0.001, dropout 0.5, hidden 128
/// mid-scale / 512 large; reduced hidden default here for 1-core runs).
struct HgnnConfig {
  HgnnKind kind = HgnnKind::kSeHGNN;
  int64_t hidden = 64;
  float dropout = 0.5f;
  float lr = 1e-3f;
  int epochs = 120;
  /// Early-stopping patience on validation accuracy (0 disables).
  int patience = 30;
  uint64_t seed = 1;
};

/// One of the five semantic-fusion HGNNs, with hand-written backprop.
///
/// Construction fixes the block layout (count and widths); Forward/
/// Backward then accept any PropagatedFeatures with the same layout, so a
/// model trained on a condensed graph evaluates on the full graph.
class HgnnModel {
 public:
  /// `block_dims[p]` is the width of feature block p; `end_types[p]` its
  /// source node type (used by kHGT's type-wise grouping).
  HgnnModel(const HgnnConfig& config, const std::vector<int64_t>& block_dims,
            const std::vector<TypeId>& end_types, int32_t num_classes);

  /// Computes logits for the given feature blocks.
  Matrix Forward(const std::vector<Matrix>& blocks, bool train);

  /// Backpropagates dlogits through fusion and projections, accumulating
  /// parameter gradients. Must follow a Forward on the same blocks.
  void Backward(const Matrix& dlogits);

  std::vector<nn::Parameter*> Params();
  void ZeroGrad();
  int64_t NumParams() const;
  const HgnnConfig& config() const { return config_; }

 private:
  HgnnConfig config_;
  int64_t num_blocks_;
  std::vector<std::unique_ptr<nn::Linear>> projections_;
  std::vector<nn::ReLU> proj_relus_;
  /// Semantic attention logits (kHAN: one per block; kHGT: one per type
  /// group).
  std::unique_ptr<nn::Parameter> attn_;
  /// kHGT: group index per block.
  std::vector<int64_t> block_group_;
  int64_t num_groups_ = 0;
  nn::Mlp head_;

  // Forward caches.
  std::vector<Matrix> cached_h_;   // projected+ReLU blocks
  std::vector<float> cached_w_;    // fusion weights (attention kinds)
};

}  // namespace freehgc::hgnn

#endif  // FREEHGC_HGNN_MODELS_H_
