#include "hgnn/feature_spill.h"

#include <cstring>
#include <string_view>
#include <utility>
#include <vector>

#include "graph/section_io.h"
#include "graph/serialize_internal.h"

namespace freehgc::hgnn {

namespace {

using section_io::SectionEntry;
using section_io::SectionView;
using section_io::SectionWriter;
using serialize_internal::ByteReader;
using serialize_internal::ReadPod;
using serialize_internal::ReadString;
using serialize_internal::WritePod;
using serialize_internal::WriteString;

struct BlockMeta {
  std::string name;
  TypeId end_type = -1;
  int64_t rows = 0;
  int64_t cols = 0;
};

std::string SerializeBlockMeta(const std::vector<BlockMeta>& blocks) {
  std::string out;
  WritePod(out, static_cast<uint32_t>(blocks.size()));
  for (const auto& b : blocks) {
    WriteString(out, b.name);
    WritePod(out, b.end_type);
    WritePod(out, b.rows);
    WritePod(out, b.cols);
  }
  return out;
}

Result<std::vector<BlockMeta>> ParseBlockMeta(std::string_view bytes) {
  ByteReader r(bytes);
  uint32_t count = 0;
  if (!ReadPod(r, &count) || count > 65536) {
    return Status::InvalidArgument("spill meta: bad block count");
  }
  std::vector<BlockMeta> blocks(count);
  for (auto& b : blocks) {
    if (!ReadString(r, &b.name) || !ReadPod(r, &b.end_type) ||
        !ReadPod(r, &b.rows) || !ReadPod(r, &b.cols) || b.rows < 0 ||
        b.cols < 0) {
      return Status::InvalidArgument("spill meta: truncated block table");
    }
  }
  return blocks;
}

}  // namespace

struct PropagatedSpillWriter::Impl {
  SectionWriter writer;
  std::vector<BlockMeta> blocks;

  explicit Impl(SectionWriter w) : writer(std::move(w)) {}
};

Result<PropagatedSpillWriter> PropagatedSpillWriter::Create(
    const std::string& path) {
  FREEHGC_ASSIGN_OR_RETURN(
      SectionWriter sw,
      SectionWriter::Create(path, section_io::SpillFormat()));
  PropagatedSpillWriter w;
  w.impl_ = new Impl(std::move(sw));
  return w;
}

PropagatedSpillWriter::PropagatedSpillWriter(
    PropagatedSpillWriter&& other) noexcept
    : impl_(other.impl_) {
  other.impl_ = nullptr;
}

PropagatedSpillWriter& PropagatedSpillWriter::operator=(
    PropagatedSpillWriter&& other) noexcept {
  if (this != &other) {
    Abandon();
    impl_ = other.impl_;
    other.impl_ = nullptr;
  }
  return *this;
}

PropagatedSpillWriter::~PropagatedSpillWriter() { Abandon(); }

void PropagatedSpillWriter::Abandon() {
  if (impl_ == nullptr) return;
  impl_->writer.Abandon();
  delete impl_;
  impl_ = nullptr;
}

Status PropagatedSpillWriter::AddBlock(const Matrix& block,
                                       const std::string& name,
                                       TypeId end_type) {
  FREEHGC_RETURN_IF_ERROR(impl_->writer.CheckOpen());
  const auto index = static_cast<uint32_t>(impl_->blocks.size());
  FREEHGC_RETURN_IF_ERROR(
      impl_->writer.BeginSection(section_io::kFeatures, index));
  FREEHGC_RETURN_IF_ERROR(impl_->writer.Append(
      block.data(), static_cast<size_t>(block.size()) * sizeof(float)));
  FREEHGC_RETURN_IF_ERROR(
      impl_->writer.EndSection(static_cast<uint64_t>(block.size())));
  impl_->blocks.push_back({name, end_type, block.rows(), block.cols()});
  return Status::OK();
}

Result<uint64_t> PropagatedSpillWriter::Finish(uint64_t fingerprint) {
  FREEHGC_RETURN_IF_ERROR(impl_->writer.CheckOpen());
  const std::string meta = SerializeBlockMeta(impl_->blocks);
  FREEHGC_RETURN_IF_ERROR(impl_->writer.BeginSection(section_io::kMeta, 0));
  FREEHGC_RETURN_IF_ERROR(impl_->writer.Append(meta.data(), meta.size()));
  FREEHGC_RETURN_IF_ERROR(impl_->writer.EndSection(meta.size()));
  FREEHGC_RETURN_IF_ERROR(impl_->writer.SetContentFingerprint(fingerprint));
  return impl_->writer.Finish();
}

Result<uint64_t> WritePropagatedSpill(const PropagatedFeatures& f,
                                      const std::string& path,
                                      uint64_t fingerprint) {
  FREEHGC_ASSIGN_OR_RETURN(PropagatedSpillWriter w,
                           PropagatedSpillWriter::Create(path));
  for (size_t i = 0; i < f.blocks.size(); ++i) {
    FREEHGC_RETURN_IF_ERROR(
        w.AddBlock(f.blocks[i], f.names[i], f.end_types[i]));
  }
  return w.Finish(fingerprint);
}

Result<std::shared_ptr<const PropagatedFeatures>> MapPropagatedSpill(
    const std::string& path) {
  FREEHGC_ASSIGN_OR_RETURN(
      SectionView v, SectionView::Map(path, section_io::SpillFormat()));
  FREEHGC_RETURN_IF_ERROR(v.VerifyAllCrcs());
  const SectionEntry* meta_sec = v.Find(section_io::kMeta, 0);
  if (meta_sec == nullptr) {
    return Status::InvalidArgument("spill file missing meta section");
  }
  FREEHGC_ASSIGN_OR_RETURN(
      std::vector<BlockMeta> blocks,
      ParseBlockMeta(std::string_view(
          reinterpret_cast<const char*>(v.base() + meta_sec->offset),
          meta_sec->size)));
  auto out = std::make_shared<PropagatedFeatures>();
  for (uint32_t i = 0; i < blocks.size(); ++i) {
    const BlockMeta& bm = blocks[i];
    const uint64_t count =
        static_cast<uint64_t>(bm.rows) * static_cast<uint64_t>(bm.cols);
    FREEHGC_ASSIGN_OR_RETURN(
        const SectionEntry* fs,
        v.RequireArray(section_io::kFeatures, i, count, sizeof(float)));
    out->blocks.push_back(
        Matrix::FromView(bm.rows, bm.cols, v.Span<float>(*fs), v.mapping()));
    out->names.push_back(bm.name);
    out->end_types.push_back(bm.end_type);
  }
  return std::shared_ptr<const PropagatedFeatures>(std::move(out));
}

}  // namespace freehgc::hgnn
