#include "hgnn/trainer.h"

#include "common/logging.h"
#include "common/timer.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace freehgc::hgnn {

EvalContext BuildEvalContext(const HeteroGraph& full,
                             const PropagateOptions& opts,
                             exec::ExecContext* ctx_exec,
                             AdjacencyCache* cache) {
  EvalContext ctx;
  ctx.full = &full;
  ctx.options = opts;
  MetaPathOptions mp_opts;
  mp_opts.max_hops = opts.max_hops;
  mp_opts.max_paths = opts.max_paths;
  mp_opts.max_row_nnz = opts.max_row_nnz;
  ctx.paths = EnumerateMetaPaths(full, full.target_type(), mp_opts);
  ctx.full_features =
      PropagateAlongPaths(full, ctx.paths, opts.max_row_nnz, ctx_exec, cache);
  return ctx;
}

namespace {

EvalMetrics RunTraining(const EvalContext& ctx,
                        const std::vector<Matrix>& train_blocks,
                        const std::vector<int32_t>& train_labels,
                        const std::vector<int32_t>& train_idx,
                        const HgnnConfig& config) {
  FREEHGC_CHECK(ctx.full != nullptr);
  const HeteroGraph& full = *ctx.full;
  FREEHGC_CHECK(train_blocks.size() == ctx.full_features.blocks.size());

  std::vector<int64_t> block_dims;
  for (const auto& b : ctx.full_features.blocks) {
    block_dims.push_back(b.cols());
  }
  HgnnModel model(config, block_dims, ctx.full_features.end_types,
                  full.num_classes());
  nn::Adam opt(config.lr);
  auto params = model.Params();

  const std::vector<int32_t>& val_idx = full.val_index();
  const std::vector<int32_t>& test_idx = full.test_index();

  FREEHGC_TRACE_SPAN("hgnn.train");
  static obs::Counter& epochs_ctr =
      obs::MetricsRegistry::Global().GetCounter("hgnn.epochs");

  EvalMetrics out;
  float best_val = -1.0f;
  int since_best = 0;
  double train_time = 0.0;

  const int eval_every = 10;
  for (int epoch = 1; epoch <= config.epochs; ++epoch) {
    {
      ScopedTimer step_timer(train_time);
      FREEHGC_TRACE_SPAN("hgnn.train_epoch");
      model.ZeroGrad();
      Matrix logits = model.Forward(train_blocks, /*train=*/true);
      Matrix dlogits;
      nn::SoftmaxCrossEntropy(logits, train_labels, train_idx, &dlogits);
      model.Backward(dlogits);
      opt.Step(params);
    }
    epochs_ctr.Increment();
    out.epochs_run = epoch;

    if (epoch % eval_every == 0 || epoch == config.epochs) {
      Matrix full_logits =
          model.Forward(ctx.full_features.blocks, /*train=*/false);
      const float val_acc =
          val_idx.empty()
              ? nn::Accuracy(full_logits, full.labels(), test_idx)
              : nn::Accuracy(full_logits, full.labels(), val_idx);
      if (val_acc > best_val) {
        best_val = val_acc;
        out.test_accuracy =
            nn::Accuracy(full_logits, full.labels(), test_idx);
        out.macro_f1 = nn::MacroF1(full_logits, full.labels(), test_idx,
                                   full.num_classes());
        since_best = 0;
      } else if (config.patience > 0) {
        since_best += eval_every;
        if (since_best >= config.patience) break;
      }
    }
  }
  out.train_seconds = train_time;
  return out;
}

}  // namespace

EvalMetrics TrainAndEvaluate(const EvalContext& ctx,
                             const HeteroGraph& train_graph,
                             const HgnnConfig& config,
                             exec::ExecContext* ex) {
  // Propagate the training graph's features along the shared path list so
  // block layouts line up. (When training on the full graph itself, reuse
  // the context's blocks.)
  const bool self_train = (&train_graph == ctx.full);
  PropagatedFeatures train_features =
      self_train ? PropagatedFeatures{}
                 : PropagateAlongPaths(train_graph, ctx.paths,
                                       ctx.options.max_row_nnz, ex);
  const PropagatedFeatures& train_feats =
      self_train ? ctx.full_features : train_features;
  return RunTraining(ctx, train_feats.blocks, train_graph.labels(),
                     train_graph.train_index(), config);
}

EvalMetrics WholeGraphBaseline(const EvalContext& ctx,
                               const HgnnConfig& config,
                               exec::ExecContext* ex) {
  return TrainAndEvaluate(ctx, *ctx.full, config, ex);
}

EvalMetrics TrainOnBlocks(const EvalContext& ctx,
                          const std::vector<Matrix>& blocks,
                          const std::vector<int32_t>& labels,
                          const HgnnConfig& config) {
  std::vector<int32_t> all(labels.size());
  for (size_t i = 0; i < labels.size(); ++i) {
    all[i] = static_cast<int32_t>(i);
  }
  return RunTraining(ctx, blocks, labels, all, config);
}

}  // namespace freehgc::hgnn
