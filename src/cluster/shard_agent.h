#ifndef FREEHGC_CLUSTER_SHARD_AGENT_H_
#define FREEHGC_CLUSTER_SHARD_AGENT_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

#include "common/result.h"
#include "cluster/meta_client.h"
#include "serve/service.h"

namespace freehgc::cluster {

struct ShardAgentOptions {
  uint32_t shard_id = 0;
  /// Port of the freehgc_meta service.
  int meta_port = 0;
  /// This shard's own serve port (what it advertises for routing).
  int serve_port = 0;
  /// Heartbeat cadence; clamped to a third of the meta-announced TTL so
  /// one dropped beat never looks like a death.
  int64_t heartbeat_ms = 500;
};

/// The shard side of the cluster: a background thread that registers the
/// owning ServeService with the meta service, then heartbeats its
/// GraphStore catalog (so uploads/removals reconcile into the placement
/// map) and its load (resident bytes + queue depth from the scheduler).
/// Self-healing: a lost meta connection reconnects with backoff, and a
/// meta that forgot the shard (restart, TTL expiry) triggers
/// re-registration.
class ShardAgent {
 public:
  /// `service` must outlive the agent.
  ShardAgent(ShardAgentOptions options, serve::ServeService* service);
  ~ShardAgent();

  ShardAgent(const ShardAgent&) = delete;
  ShardAgent& operator=(const ShardAgent&) = delete;

  /// Connects, registers, and starts the heartbeat thread. Fails if the
  /// meta service is unreachable or is not a meta service.
  Status Start();

  /// Stops the heartbeat thread (no deregistration — the meta service's
  /// TTL declares the shard dead, which is exactly the failover path).
  void Stop();

  /// Heartbeats successfully delivered (tests poll this).
  int64_t heartbeats() const;

 private:
  void Loop();
  /// Builds the current announcement from the service's store/scheduler.
  RegisterShardRequest Announcement() const;
  HeartbeatRequest HeartbeatBody() const;

  const ShardAgentOptions options_;
  serve::ServeService* const service_;
  MetaClient meta_;
  int64_t interval_ms_ = 500;

  mutable std::mutex mu_;
  std::condition_variable stop_cv_;
  bool stop_ = false;
  int64_t heartbeats_ = 0;
  std::thread thread_;
};

}  // namespace freehgc::cluster

#endif  // FREEHGC_CLUSTER_SHARD_AGENT_H_
