#ifndef FREEHGC_CLUSTER_META_CLIENT_H_
#define FREEHGC_CLUSTER_META_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "cluster/types.h"
#include "cluster/wire.h"
#include "serve/client.h"

namespace freehgc::cluster {

/// Blocking client for a freehgc_meta service: one connection, one
/// request in flight (open several for concurrency — the meta server is
/// thread-per-connection, and a long-poll Watch should use its own
/// client so it doesn't block resolves).
class MetaClient {
 public:
  MetaClient() = default;

  MetaClient(const MetaClient&) = delete;
  MetaClient& operator=(const MetaClient&) = delete;

  /// Connects to 127.0.0.1:port and verifies via the Ping handshake that
  /// the peer really is a protocol-v2 meta service — a serve server or a
  /// pre-cluster binary fails here with a clean message instead of a
  /// frame mismatch later.
  Status Connect(int port);
  void Close() { client_.Close(); }
  bool connected() const { return client_.connected(); }

  Result<RegisterShardReply> RegisterShard(const RegisterShardRequest& req);
  Result<uint64_t> Heartbeat(const HeartbeatRequest& req);
  Result<Placement> Resolve(const std::string& name);
  Result<Placement> Place(const PlaceRequest& req);
  Result<WatchResult> Watch(uint64_t since_version, int64_t timeout_ms);
  Result<std::vector<ShardStatus>> ListShards();
  Result<std::string> Stats();
  Status Shutdown();

 private:
  serve::ServeClient client_;
};

}  // namespace freehgc::cluster

#endif  // FREEHGC_CLUSTER_META_CLIENT_H_
