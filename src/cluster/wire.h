#ifndef FREEHGC_CLUSTER_WIRE_H_
#define FREEHGC_CLUSTER_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "serve/wire.h"
#include "cluster/types.h"

namespace freehgc::cluster {

/// Field codecs for the cluster metadata ops (serve::MsgType
/// kRegisterShard..kListShards), reusing the serve wire primitives:
/// little-endian integers, u32-length-prefixed strings, and the standard
/// response envelope. Decoders validate bounds; every codec pair is an
/// exact inverse (tests/cluster_test.cc round-trips them and rejects
/// truncation at every offset).

/// Body of kRegisterShard: a shard announcing itself and its resident
/// graphs (also re-sent after a meta restart or a liveness expiry).
struct RegisterShardRequest {
  uint32_t shard_id = 0;
  int port = 0;
  std::vector<GraphAd> ads;
};

/// Reply to kRegisterShard: the metadata version after the join and the
/// heartbeat TTL the shard must beat to stay alive.
struct RegisterShardReply {
  uint64_t version = 0;
  int64_t ttl_ms = 0;
};

/// Body of kHeartbeat: liveness + load + the advertised graph set (the
/// meta service reconciles placements against it — adds appear, removals
/// disappear).
struct HeartbeatRequest {
  uint32_t shard_id = 0;
  ShardLoad load;
  std::vector<GraphAd> ads;
};

/// Body of kPlace. Two modes: a *plan* (shard_ids empty) asks the meta
/// service to pick `replicas` live shards for a graph of `bytes` bytes,
/// least-loaded first; a *record* (shard_ids non-empty, fingerprint
/// known) commits a placement after the uploads succeeded.
struct PlaceRequest {
  std::string name;
  uint64_t fingerprint = 0;
  uint64_t bytes = 0;
  int replicas = 1;
  std::vector<uint32_t> shard_ids;
};

/// Body of kWatch: long-poll for events after `since_version`, waiting at
/// most `timeout_ms` (0 = return immediately).
struct WatchRequest {
  uint64_t since_version = 0;
  int64_t timeout_ms = 0;
};

void EncodeGraphAd(serve::WireWriter& w, const GraphAd& ad);
Result<GraphAd> DecodeGraphAd(serve::WireReader& r);
void EncodeGraphAdList(serve::WireWriter& w, const std::vector<GraphAd>& ads);
Result<std::vector<GraphAd>> DecodeGraphAdList(serve::WireReader& r);

void EncodeShardLoad(serve::WireWriter& w, const ShardLoad& load);
Result<ShardLoad> DecodeShardLoad(serve::WireReader& r);

void EncodeShardEndpoint(serve::WireWriter& w, const ShardEndpoint& ep);
Result<ShardEndpoint> DecodeShardEndpoint(serve::WireReader& r);

void EncodePlacement(serve::WireWriter& w, const Placement& p);
Result<Placement> DecodePlacement(serve::WireReader& r);

void EncodeShardStatus(serve::WireWriter& w, const ShardStatus& s);
Result<ShardStatus> DecodeShardStatus(serve::WireReader& r);
void EncodeShardStatusList(serve::WireWriter& w,
                           const std::vector<ShardStatus>& shards);
Result<std::vector<ShardStatus>> DecodeShardStatusList(serve::WireReader& r);

void EncodeMetaEvent(serve::WireWriter& w, const MetaEvent& e);
Result<MetaEvent> DecodeMetaEvent(serve::WireReader& r);

void EncodeWatchResult(serve::WireWriter& w, const WatchResult& res);
Result<WatchResult> DecodeWatchResult(serve::WireReader& r);

void EncodeRegisterShardRequest(serve::WireWriter& w,
                                const RegisterShardRequest& req);
Result<RegisterShardRequest> DecodeRegisterShardRequest(serve::WireReader& r);
void EncodeRegisterShardReply(serve::WireWriter& w,
                              const RegisterShardReply& reply);
Result<RegisterShardReply> DecodeRegisterShardReply(serve::WireReader& r);

void EncodeHeartbeatRequest(serve::WireWriter& w, const HeartbeatRequest& req);
Result<HeartbeatRequest> DecodeHeartbeatRequest(serve::WireReader& r);

void EncodePlaceRequest(serve::WireWriter& w, const PlaceRequest& req);
Result<PlaceRequest> DecodePlaceRequest(serve::WireReader& r);

void EncodeWatchRequest(serve::WireWriter& w, const WatchRequest& req);
Result<WatchRequest> DecodeWatchRequest(serve::WireReader& r);

}  // namespace freehgc::cluster

#endif  // FREEHGC_CLUSTER_WIRE_H_
