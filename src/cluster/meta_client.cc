#include "cluster/meta_client.h"

#include "common/string_util.h"
#include "serve/wire.h"

namespace freehgc::cluster {

using serve::MsgType;
using serve::WireReader;
using serve::WireWriter;

Status MetaClient::Connect(int port) {
  FREEHGC_RETURN_IF_ERROR(client_.Connect(port));
  auto hello = client_.Hello();
  if (!hello.ok()) {
    client_.Close();
    return hello.status();
  }
  if (hello->protocol_version < 2) {
    client_.Close();
    return Status::FailedPrecondition(StrFormat(
        "server on 127.0.0.1:%d predates cluster support (protocol v%u); "
        "upgrade it or point --meta at a freehgc_meta service",
        port, hello->protocol_version));
  }
  if ((hello->features & serve::kFeatureClusterOps) == 0) {
    client_.Close();
    return Status::FailedPrecondition(StrFormat(
        "server on 127.0.0.1:%d is a '%s' server, not a cluster meta "
        "service",
        port, hello->role.c_str()));
  }
  return Status::OK();
}

Result<RegisterShardReply> MetaClient::RegisterShard(
    const RegisterShardRequest& req) {
  WireWriter w;
  w.PutU8(static_cast<uint8_t>(MsgType::kRegisterShard));
  EncodeRegisterShardRequest(w, req);
  FREEHGC_ASSIGN_OR_RETURN(std::string body, client_.Call(w.Take()));
  WireReader r(body);
  return DecodeRegisterShardReply(r);
}

Result<uint64_t> MetaClient::Heartbeat(const HeartbeatRequest& req) {
  WireWriter w;
  w.PutU8(static_cast<uint8_t>(MsgType::kHeartbeat));
  EncodeHeartbeatRequest(w, req);
  FREEHGC_ASSIGN_OR_RETURN(std::string body, client_.Call(w.Take()));
  WireReader r(body);
  return r.GetU64();
}

Result<Placement> MetaClient::Resolve(const std::string& name) {
  WireWriter w;
  w.PutU8(static_cast<uint8_t>(MsgType::kResolve));
  w.PutString(name);
  FREEHGC_ASSIGN_OR_RETURN(std::string body, client_.Call(w.Take()));
  WireReader r(body);
  return DecodePlacement(r);
}

Result<Placement> MetaClient::Place(const PlaceRequest& req) {
  WireWriter w;
  w.PutU8(static_cast<uint8_t>(MsgType::kPlace));
  EncodePlaceRequest(w, req);
  FREEHGC_ASSIGN_OR_RETURN(std::string body, client_.Call(w.Take()));
  WireReader r(body);
  return DecodePlacement(r);
}

Result<WatchResult> MetaClient::Watch(uint64_t since_version,
                                      int64_t timeout_ms) {
  WatchRequest req;
  req.since_version = since_version;
  req.timeout_ms = timeout_ms;
  WireWriter w;
  w.PutU8(static_cast<uint8_t>(MsgType::kWatch));
  EncodeWatchRequest(w, req);
  FREEHGC_ASSIGN_OR_RETURN(std::string body, client_.Call(w.Take()));
  WireReader r(body);
  return DecodeWatchResult(r);
}

Result<std::vector<ShardStatus>> MetaClient::ListShards() {
  WireWriter w;
  w.PutU8(static_cast<uint8_t>(MsgType::kListShards));
  FREEHGC_ASSIGN_OR_RETURN(std::string body, client_.Call(w.Take()));
  WireReader r(body);
  return DecodeShardStatusList(r);
}

Result<std::string> MetaClient::Stats() {
  WireWriter w;
  w.PutU8(static_cast<uint8_t>(MsgType::kStats));
  return client_.Call(w.Take());
}

Status MetaClient::Shutdown() {
  WireWriter w;
  w.PutU8(static_cast<uint8_t>(MsgType::kShutdown));
  return client_.Call(w.Take()).status();
}

}  // namespace freehgc::cluster
