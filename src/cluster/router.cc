#include "cluster/router.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "common/logging.h"
#include "common/string_util.h"
#include "obs/metrics.h"

namespace freehgc::cluster {

Router::Router(RouterOptions options) : options_(std::move(options)) {}

Router::~Router() { Close(); }

Status Router::Connect() {
  {
    std::lock_guard<std::mutex> lock(meta_mu_);
    FREEHGC_RETURN_IF_ERROR(meta_.Connect(options_.meta_port));
  }
  if (options_.enable_watch) {
    watcher_ = std::thread([this] { WatcherLoop(); });
  }
  return Status::OK();
}

void Router::Close() {
  stop_.store(true, std::memory_order_release);
  if (watcher_.joinable()) watcher_.join();
  std::lock_guard<std::mutex> lock(meta_mu_);
  meta_.Close();
}

void Router::WatcherLoop() {
  // The watch long-polls on its own connection, so it never serializes
  // behind resolves on the shared meta client.
  MetaClient watch_meta;
  uint64_t since = 0;
  while (!stop_.load(std::memory_order_acquire)) {
    if (!watch_meta.connected()) {
      if (!watch_meta.Connect(options_.meta_port).ok()) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(options_.watch_timeout_ms));
        continue;
      }
    }
    auto res = watch_meta.Watch(since, options_.watch_timeout_ms);
    if (!res.ok()) {
      watch_meta.Close();
      continue;
    }
    since = res->version;
    if (res->resync) {
      // We fell behind the bounded event log: drop everything and start
      // from the current version.
      std::lock_guard<std::mutex> lock(mu_);
      stats_.invalidations += static_cast<int64_t>(cache_.size());
      cache_.clear();
      suspect_.clear();
      continue;
    }
    if (res->events.empty()) continue;
    std::lock_guard<std::mutex> lock(mu_);
    for (const MetaEvent& e : res->events) {
      switch (e.type) {
        case MetaEventType::kPlacementChanged:
          if (cache_.erase(e.name) > 0) ++stats_.invalidations;
          break;
        case MetaEventType::kShardJoined:
          suspect_.erase(e.shard_id);
          [[fallthrough]];
        case MetaEventType::kShardDead:
          // Membership changed: every cached placement's liveness flags
          // are stale.
          stats_.invalidations += static_cast<int64_t>(cache_.size());
          cache_.clear();
          break;
      }
    }
  }
}

Result<Placement> Router::ResolveCached(const std::string& name,
                                        bool refresh) {
  if (!refresh) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(name);
    if (it != cache_.end()) {
      ++stats_.cache_hits;
      return it->second;
    }
  }
  Result<Placement> placement = [&] {
    std::lock_guard<std::mutex> lock(meta_mu_);
    return meta_.Resolve(name);
  }();
  FREEHGC_RETURN_IF_ERROR(placement.status());
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.resolves;
  obs::MetricsRegistry::Global().GetCounter("cluster.router.resolves")
      .Increment();
  cache_[name] = *placement;
  return *placement;
}

std::vector<ShardEndpoint> Router::Candidates(const Placement& placement,
                                              const std::string& graph) {
  std::vector<ShardEndpoint> live;
  uint64_t rotation;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const ShardEndpoint& ep : placement.shards) {
      if (ep.alive && suspect_.count(ep.shard_id) == 0) live.push_back(ep);
    }
    rotation = rr_[graph]++;
  }
  if (live.size() > 1) {
    std::rotate(live.begin(),
                live.begin() + static_cast<long>(rotation % live.size()),
                live.end());
  }
  return live;
}

void Router::MarkSuspect(uint32_t shard_id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (suspect_.insert(shard_id).second) {
    ++stats_.shards_marked_dead;
    obs::MetricsRegistry::Global()
        .GetCounter("cluster.router.shards_marked_dead")
        .Increment();
  }
}

Result<serve::CondenseReply> Router::Condense(
    const serve::CondenseRequest& req) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.requests;
  }
  Status last_error = Status::Unavailable(
      StrFormat("no live shard holds graph '%s'", req.graph.c_str()));
  for (int round = 0; round < std::max(1, options_.attempts); ++round) {
    if (round > 0) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.retries;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(
          options_.backoff_ms << (round - 1)));
    }
    auto placement = ResolveCached(req.graph, /*refresh=*/round > 0);
    if (!placement.ok()) {
      last_error = placement.status();
      continue;
    }
    std::vector<ShardEndpoint> candidates = Candidates(*placement,
                                                       req.graph);
    if (candidates.empty() && round > 0) {
      // Meta liveness and local suspicion together ruled out every
      // replica; as a last resort try the suspects again (a shard that
      // merely restarted answers, a dead one fails fast).
      for (const ShardEndpoint& ep : placement->shards) {
        candidates.push_back(ep);
      }
    }
    bool first = true;
    for (const ShardEndpoint& ep : candidates) {
      if (!first) {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.failovers;
        obs::MetricsRegistry::Global()
            .GetCounter("cluster.router.failovers")
            .Increment();
      }
      first = false;
      serve::ServeClient shard;
      Status conn = shard.Connect(ep.port);
      if (!conn.ok()) {
        MarkSuspect(ep.shard_id);
        last_error = conn;
        continue;
      }
      auto reply = shard.Condense(req);
      if (reply.ok()) {
        MaybeReplicate(req.graph);
        return reply;
      }
      const StatusCode code = reply.status().code();
      if (code == StatusCode::kUnavailable || code == StatusCode::kInternal) {
        // Connection died mid-request (killed shard) — suspect it and
        // fail over.
        MarkSuspect(ep.shard_id);
        last_error = reply.status();
        continue;
      }
      if (code == StatusCode::kResourceExhausted) {
        // Overloaded, not dead: try a replica, leave liveness alone.
        last_error = reply.status();
        continue;
      }
      // Semantic errors (bad ratio, unknown method, ...) are the
      // caller's, not the shard's — no failover.
      return reply.status();
    }
  }
  return last_error;
}

Result<serve::GraphInfo> Router::Upload(const std::string& name,
                                        std::string_view container,
                                        int replicas) {
  PlaceRequest plan_req;
  plan_req.name = name;
  plan_req.bytes = container.size();
  plan_req.replicas = replicas;
  Result<Placement> plan = [&] {
    std::lock_guard<std::mutex> lock(meta_mu_);
    return meta_.Place(plan_req);
  }();
  FREEHGC_RETURN_IF_ERROR(plan.status());

  Result<serve::GraphInfo> info =
      Status::Unavailable("no shard accepted the upload");
  PlaceRequest record;
  record.name = name;
  record.bytes = container.size();
  for (const ShardEndpoint& ep : plan->shards) {
    serve::ServeClient shard;
    Status conn = shard.Connect(ep.port);
    if (!conn.ok()) {
      MarkSuspect(ep.shard_id);
      info = conn;
      continue;
    }
    auto uploaded = shard.UploadGraph(name, container);
    if (!uploaded.ok()) {
      info = uploaded.status();
      continue;
    }
    record.fingerprint = uploaded->fingerprint;
    record.shard_ids.push_back(ep.shard_id);
    info = *uploaded;
  }
  if (record.shard_ids.empty()) return info;
  Result<Placement> committed = [&] {
    std::lock_guard<std::mutex> lock(meta_mu_);
    return meta_.Place(record);
  }();
  FREEHGC_RETURN_IF_ERROR(committed.status());
  std::lock_guard<std::mutex> lock(mu_);
  cache_[name] = *committed;
  return info;
}

void Router::MaybeReplicate(const std::string& name) {
  if (options_.hot_threshold <= 0) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const int64_t count = ++request_counts_[name];
    // Trigger exactly at the threshold so steady-state requests don't pay
    // a meta round-trip re-checking an already-replicated graph.
    if (count != options_.hot_threshold) return;
    if (replicating_.count(name) > 0) return;
    replicating_.insert(name);
  }
  // Re-check single-homedness against a fresh placement, then copy
  // shard-to-shard: FetchGraph from the live holder, plan one extra
  // shard, upload, record. Best-effort: any failure leaves the cluster
  // as it was.
  Status st = [&]() -> Status {
    FREEHGC_ASSIGN_OR_RETURN(Placement placement, Resolve(name));
    std::vector<ShardEndpoint> live;
    for (const ShardEndpoint& ep : placement.shards) {
      if (ep.alive) live.push_back(ep);
    }
    if (live.size() != 1) return Status::OK();  // already replicated
    serve::ServeClient holder;
    FREEHGC_RETURN_IF_ERROR(holder.Connect(live[0].port));
    FREEHGC_ASSIGN_OR_RETURN(std::string container,
                             holder.FetchGraph(name));
    PlaceRequest plan_req;
    plan_req.name = name;
    plan_req.fingerprint = placement.fingerprint;
    plan_req.bytes = container.size();
    plan_req.replicas = 1;
    Result<Placement> plan = [&] {
      std::lock_guard<std::mutex> lock(meta_mu_);
      return meta_.Place(plan_req);
    }();
    FREEHGC_RETURN_IF_ERROR(plan.status());
    if (plan->shards.empty()) return Status::OK();  // nowhere to copy
    serve::ServeClient target;
    FREEHGC_RETURN_IF_ERROR(target.Connect(plan->shards[0].port));
    FREEHGC_ASSIGN_OR_RETURN(serve::GraphInfo uploaded,
                             target.UploadGraph(name, container));
    PlaceRequest record;
    record.name = name;
    record.fingerprint = uploaded.fingerprint;
    record.bytes = container.size();
    record.shard_ids.push_back(plan->shards[0].shard_id);
    Result<Placement> committed = [&] {
      std::lock_guard<std::mutex> lock(meta_mu_);
      return meta_.Place(record);
    }();
    FREEHGC_RETURN_IF_ERROR(committed.status());
    std::lock_guard<std::mutex> lock(mu_);
    cache_[name] = *committed;
    ++stats_.replications;
    obs::MetricsRegistry::Global()
        .GetCounter("cluster.router.replications")
        .Increment();
    return Status::OK();
  }();
  if (!st.ok()) {
    FREEHGC_LOG(Warning) << "hot replication of '" << name
                         << "' failed: " << st.ToString();
  }
  std::lock_guard<std::mutex> lock(mu_);
  replicating_.erase(name);
}

Result<Placement> Router::Resolve(const std::string& name) {
  return ResolveCached(name, /*refresh=*/true);
}

Result<std::vector<ShardStatus>> Router::Shards() {
  std::lock_guard<std::mutex> lock(meta_mu_);
  return meta_.ListShards();
}

RouterStats Router::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace freehgc::cluster
