#ifndef FREEHGC_CLUSTER_TYPES_H_
#define FREEHGC_CLUSTER_TYPES_H_

#include <cstdint>
#include <string>
#include <vector>

namespace freehgc::cluster {

/// Shared value types of the cluster layer: what shards advertise, what
/// the metadata service records, and what routers consume. All of them
/// cross the wire (src/cluster/wire.h) and none of them own behavior —
/// the state machine lives in MetaService.

/// One graph a shard advertises as resident (its GraphStore catalog,
/// boiled down to the identity the placement map keys on).
struct GraphAd {
  std::string name;
  /// HeteroGraph::ContentFingerprint — the cluster-wide graph identity.
  /// Two shards advertising the same fingerprint are replicas.
  uint64_t fingerprint = 0;
  uint64_t bytes = 0;
};

/// Load a shard reports with every heartbeat; the meta service uses it
/// for least-loaded placement and freehgc_top for the per-shard row.
struct ShardLoad {
  uint64_t resident_bytes = 0;
  int64_t queue_depth = 0;
  int64_t inflight = 0;
  int64_t completed = 0;
};

/// Where a shard can be reached (the cluster is single-machine
/// multi-process, so an endpoint is a loopback port).
struct ShardEndpoint {
  uint32_t shard_id = 0;
  int port = 0;
  bool alive = true;
};

/// Full per-shard row returned by ListShards.
struct ShardStatus {
  uint32_t shard_id = 0;
  int port = 0;
  bool alive = true;
  /// Milliseconds since the last registration/heartbeat.
  int64_t heartbeat_age_ms = 0;
  ShardLoad load;
  /// Graphs the shard currently advertises.
  int64_t graphs = 0;
};

/// One entry of the placement map: which shards hold a graph. `version`
/// is the metadata version that last changed this placement.
struct Placement {
  std::string name;
  uint64_t fingerprint = 0;
  uint64_t version = 0;
  std::vector<ShardEndpoint> shards;
};

/// Metadata event log entries, delivered to watchers in version order.
enum class MetaEventType : uint8_t {
  kShardJoined = 1,
  kShardDead = 2,
  kPlacementChanged = 3,
};

struct MetaEvent {
  /// The metadata version this event produced (monotonic, gapless within
  /// the retained window).
  uint64_t version = 0;
  MetaEventType type = MetaEventType::kShardJoined;
  uint32_t shard_id = 0;
  /// For kPlacementChanged: the graph whose placement moved.
  uint64_t fingerprint = 0;
  std::string name;
};

/// What a Watch long-poll returns: events after `since_version`, or —
/// when the watcher fell behind the bounded event log — `resync` with no
/// events, telling the client to drop its cache and re-resolve.
struct WatchResult {
  /// The service's current metadata version (resume token for the next
  /// Watch).
  uint64_t version = 0;
  bool resync = false;
  std::vector<MetaEvent> events;
};

}  // namespace freehgc::cluster

#endif  // FREEHGC_CLUSTER_TYPES_H_
