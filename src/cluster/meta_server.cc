#include "cluster/meta_server.h"

#include <utility>

#include "common/string_util.h"
#include "cluster/wire.h"
#include "serve/wire.h"

namespace freehgc::cluster {

using serve::EncodeResponse;
using serve::MsgType;
using serve::WireReader;
using serve::WireWriter;

MetaServer::MetaServer(MetaServerOptions options)
    : options_(std::move(options)),
      service_(options_.meta),
      listener_(options_.port,
                [this](std::string_view p) { return HandleRequest(p); }) {}

MetaServer::~MetaServer() {
  RequestStop();
  Wait();
}

Status MetaServer::Start() { return listener_.Start(); }

void MetaServer::RequestStop() {
  listener_.RequestStop();
  service_.Close();
}

void MetaServer::Wait() { listener_.Wait(); }

std::string MetaServer::HandleRequest(std::string_view payload) {
  WireReader r(payload);
  auto type = r.GetU8();
  if (!type.ok()) return EncodeResponse(type.status(), "");
  switch (static_cast<MsgType>(*type)) {
    case MsgType::kPing: {
      serve::HelloInfo hello;
      hello.protocol_version = serve::kProtocolVersion;
      hello.features = serve::kFeatureClusterOps;
      hello.role = "meta";
      WireWriter w;
      EncodeHelloInfo(w, hello);
      return EncodeResponse(Status::OK(), w.payload());
    }
    case MsgType::kRegisterShard: {
      auto req = DecodeRegisterShardRequest(r);
      if (!req.ok()) return EncodeResponse(req.status(), "");
      const RegisterShardReply reply = service_.RegisterShard(*req);
      WireWriter w;
      EncodeRegisterShardReply(w, reply);
      return EncodeResponse(Status::OK(), w.payload());
    }
    case MsgType::kHeartbeat: {
      auto req = DecodeHeartbeatRequest(r);
      if (!req.ok()) return EncodeResponse(req.status(), "");
      auto version = service_.Heartbeat(*req);
      if (!version.ok()) return EncodeResponse(version.status(), "");
      WireWriter w;
      w.PutU64(*version);
      return EncodeResponse(Status::OK(), w.payload());
    }
    case MsgType::kResolve: {
      auto name = r.GetString();
      if (!name.ok()) return EncodeResponse(name.status(), "");
      auto placement = service_.Resolve(*name);
      if (!placement.ok()) return EncodeResponse(placement.status(), "");
      WireWriter w;
      EncodePlacement(w, *placement);
      return EncodeResponse(Status::OK(), w.payload());
    }
    case MsgType::kPlace: {
      auto req = DecodePlaceRequest(r);
      if (!req.ok()) return EncodeResponse(req.status(), "");
      auto placement = service_.Place(*req);
      if (!placement.ok()) return EncodeResponse(placement.status(), "");
      WireWriter w;
      EncodePlacement(w, *placement);
      return EncodeResponse(Status::OK(), w.payload());
    }
    case MsgType::kWatch: {
      auto req = DecodeWatchRequest(r);
      if (!req.ok()) return EncodeResponse(req.status(), "");
      const WatchResult res =
          service_.Watch(req->since_version, req->timeout_ms);
      WireWriter w;
      EncodeWatchResult(w, res);
      return EncodeResponse(Status::OK(), w.payload());
    }
    case MsgType::kListShards: {
      WireWriter w;
      EncodeShardStatusList(w, service_.ListShards());
      return EncodeResponse(Status::OK(), w.payload());
    }
    case MsgType::kStats:
      return EncodeResponse(Status::OK(), service_.StatsJson());
    case MsgType::kShutdown:
      RequestStop();
      return EncodeResponse(Status::OK(), "");
    case MsgType::kRegisterGenerator:
    case MsgType::kUploadGraph:
    case MsgType::kListGraphs:
    case MsgType::kCondense:
    case MsgType::kMetrics:
    case MsgType::kHealth:
    case MsgType::kFlightRecorder:
    case MsgType::kFetchGraph:
      return EncodeResponse(
          Status::FailedPrecondition(StrFormat(
              "message type %u is a graph/serve op; this is the cluster "
              "meta service (protocol v%u) — send it to a shard, or route "
              "through cluster::Router",
              static_cast<unsigned>(*type), serve::kProtocolVersion)),
          "");
  }
  return EncodeResponse(
      Status::InvalidArgument(StrFormat("unknown message type %u",
                                        static_cast<unsigned>(*type))),
      "");
}

}  // namespace freehgc::cluster
