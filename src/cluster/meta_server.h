#ifndef FREEHGC_CLUSTER_META_SERVER_H_
#define FREEHGC_CLUSTER_META_SERVER_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "cluster/meta_service.h"
#include "serve/server.h"

namespace freehgc::cluster {

struct MetaServerOptions {
  /// TCP port on 127.0.0.1; 0 binds an ephemeral port.
  int port = 0;
  MetaServiceOptions meta;
};

/// Wire front-end for a MetaService: the same length-prefixed protocol as
/// freehgc_server (serve::WireListener underneath), answering the cluster
/// metadata ops plus kPing (role "meta"), kStats, and kShutdown. Graph
/// ops sent here get a clean kFailedPrecondition pointing at the shards.
class MetaServer {
 public:
  explicit MetaServer(MetaServerOptions options = {});
  ~MetaServer();

  MetaServer(const MetaServer&) = delete;
  MetaServer& operator=(const MetaServer&) = delete;

  Status Start();
  int port() const { return listener_.port(); }
  MetaService& service() { return service_; }

  /// Async-signal-safe stop request; returns immediately.
  void RequestStop();

  /// Blocks until the listener has stopped and all connections closed.
  void Wait();

 private:
  std::string HandleRequest(std::string_view payload);

  MetaServerOptions options_;
  MetaService service_;
  serve::WireListener listener_;
};

}  // namespace freehgc::cluster

#endif  // FREEHGC_CLUSTER_META_SERVER_H_
