#ifndef FREEHGC_CLUSTER_ROUTER_H_
#define FREEHGC_CLUSTER_ROUTER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/result.h"
#include "cluster/meta_client.h"
#include "cluster/types.h"
#include "serve/client.h"
#include "serve/graph_store.h"
#include "serve/scheduler.h"

namespace freehgc::cluster {

struct RouterOptions {
  /// Port of the freehgc_meta service.
  int meta_port = 0;
  /// Rounds over the candidate shards before a request is failed. The
  /// placement is force-refreshed from the meta service between rounds.
  int attempts = 3;
  /// Base backoff between rounds (exponential: base, 2x, 4x, ...).
  int64_t backoff_ms = 50;
  /// Long-poll duration of the background watch (also the worst-case
  /// Close() latency while the watch is idle).
  int64_t watch_timeout_ms = 500;
  /// Run the background watcher thread that invalidates the placement
  /// cache on meta events. Off = the cache refreshes only on misses and
  /// failover-triggered re-resolves.
  bool enable_watch = true;
  /// After this many successful requests against one graph with a single
  /// live replica, the router replicates it to a second shard
  /// (FetchGraph from the holder, upload, placement record). 0 disables.
  int64_t hot_threshold = 64;
};

struct RouterStats {
  int64_t requests = 0;
  int64_t resolves = 0;      // meta round-trips (cache misses + refreshes)
  int64_t cache_hits = 0;
  int64_t failovers = 0;     // a candidate shard failed, another was tried
  int64_t retries = 0;       // full rounds exhausted, backoff taken
  int64_t shards_marked_dead = 0;  // local suspicion from failed calls
  int64_t replications = 0;  // hot graphs copied to a second shard
  int64_t invalidations = 0;  // cache entries dropped by watch events
};

/// Client-side shard routing (the `freehgc_client --meta-port` and
/// bench_cluster engine): resolves a graph name to its shard placement
/// through the meta service, caches placements, and keeps the cache
/// honest with a background Watch. Requests rotate over live replicas;
/// a dead shard (connection refused, closed mid-request) is marked
/// suspect immediately — before the meta service's heartbeat TTL fires —
/// and the request fails over to the next replica with exponential
/// backoff between rounds. Graphs that get hot while single-homed are
/// replicated to a second shard automatically.
///
/// Thread-safe: many threads may Condense concurrently (each request
/// uses its own shard connection; the shared meta connection is
/// serialized).
class Router {
 public:
  explicit Router(RouterOptions options);
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Connects to the meta service and starts the watcher.
  Status Connect();
  void Close();

  /// Uploads a graph through the placement path: ask the meta service to
  /// plan `replicas` shards, upload to each, then record the placement.
  Result<serve::GraphInfo> Upload(const std::string& name,
                                  std::string_view container, int replicas);

  /// Routes one condensation request to a live replica (with failover).
  Result<serve::CondenseReply> Condense(const serve::CondenseRequest& req);

  /// Fresh placement for `name` (forces a meta round-trip).
  Result<Placement> Resolve(const std::string& name);

  /// Cluster membership as the meta service sees it.
  Result<std::vector<ShardStatus>> Shards();

  RouterStats stats() const;

 private:
  Result<Placement> ResolveCached(const std::string& name, bool refresh);
  /// Candidate ports for one request round: live, not locally suspect,
  /// rotated so concurrent requests spread over replicas.
  std::vector<ShardEndpoint> Candidates(const Placement& placement,
                                        const std::string& graph);
  void MarkSuspect(uint32_t shard_id);
  /// Fired after a successful request: replicate `name` when it crossed
  /// the hot threshold while single-homed. Best-effort (failures only
  /// log).
  void MaybeReplicate(const std::string& name);
  void WatcherLoop();

  const RouterOptions options_;
  MetaClient meta_;       // resolve/place; guarded by meta_mu_
  std::mutex meta_mu_;

  std::atomic<bool> stop_{false};
  std::thread watcher_;

  mutable std::mutex mu_;
  std::map<std::string, Placement> cache_;
  /// Shards we saw fail before the meta TTL did; cleared by rejoin
  /// events (or a watch resync).
  std::set<uint32_t> suspect_;
  std::map<std::string, int64_t> request_counts_;
  std::map<std::string, uint64_t> rr_;
  std::set<std::string> replicating_;  // replication in flight per graph
  RouterStats stats_;
};

}  // namespace freehgc::cluster

#endif  // FREEHGC_CLUSTER_ROUTER_H_
