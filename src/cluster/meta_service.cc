#include "cluster/meta_service.h"

#include <algorithm>
#include <chrono>

#include "common/string_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace freehgc::cluster {

namespace {

struct MetaMetrics {
  obs::Counter& registrations;
  obs::Counter& heartbeats;
  obs::Counter& events;
  obs::Counter& dead;
  obs::Gauge& shards;
  obs::Gauge& shards_alive;
  obs::Gauge& placements;

  static MetaMetrics& Get() {
    auto& reg = obs::MetricsRegistry::Global();
    static MetaMetrics m{
        reg.GetCounter("cluster.meta.registrations"),
        reg.GetCounter("cluster.meta.heartbeats"),
        reg.GetCounter("cluster.meta.events"),
        reg.GetCounter("cluster.meta.shards_died"),
        reg.GetGauge("cluster.meta.shards"),
        reg.GetGauge("cluster.meta.shards_alive"),
        reg.GetGauge("cluster.meta.placements"),
    };
    return m;
  }
};

}  // namespace

MetaService::MetaService(MetaServiceOptions options)
    : options_(std::move(options)) {}

MetaService::~MetaService() { Close(); }

void MetaService::AppendEventLocked(MetaEventType type, uint32_t shard_id,
                                    uint64_t fingerprint,
                                    const std::string& name) {
  MetaEvent e;
  e.version = ++version_;
  e.type = type;
  e.shard_id = shard_id;
  e.fingerprint = fingerprint;
  e.name = name;
  events_.push_back(std::move(e));
  while (events_.size() > options_.max_events) events_.pop_front();
  MetaMetrics::Get().events.Increment();
  event_cv_.notify_all();
}

void MetaService::CheckLivenessLocked(int64_t now_ns) {
  const int64_t ttl_ns = options_.heartbeat_ttl_ms * 1'000'000;
  for (auto& [id, shard] : shards_) {
    if (shard.ep.alive && now_ns - shard.last_heartbeat_ns > ttl_ns) {
      shard.ep.alive = false;
      MetaMetrics::Get().dead.Increment();
      AppendEventLocked(MetaEventType::kShardDead, id, 0, "");
    }
  }
  UpdateGaugesLocked();
}

void MetaService::AdvertiseLocked(uint32_t shard_id, const GraphAd& ad) {
  Entry& entry = placements_[ad.fingerprint];
  entry.name = ad.name;
  entry.bytes = ad.bytes;
  names_[ad.name] = ad.fingerprint;
  shards_[shard_id].advertised.insert(ad.fingerprint);
  if (entry.shard_ids.insert(shard_id).second) {
    AppendEventLocked(MetaEventType::kPlacementChanged, shard_id,
                      ad.fingerprint, ad.name);
    entry.version = version_;
  }
}

void MetaService::WithdrawLocked(uint32_t shard_id, uint64_t fingerprint) {
  auto it = placements_.find(fingerprint);
  if (it == placements_.end()) return;
  if (it->second.shard_ids.erase(shard_id) == 0) return;
  AppendEventLocked(MetaEventType::kPlacementChanged, shard_id, fingerprint,
                    it->second.name);
  it->second.version = version_;
  if (it->second.shard_ids.empty()) {
    auto name_it = names_.find(it->second.name);
    if (name_it != names_.end() && name_it->second == fingerprint) {
      names_.erase(name_it);
    }
    placements_.erase(it);
  }
}

Placement MetaService::SnapshotPlacementLocked(uint64_t fingerprint) const {
  Placement p;
  auto it = placements_.find(fingerprint);
  if (it == placements_.end()) return p;
  p.name = it->second.name;
  p.fingerprint = fingerprint;
  p.version = it->second.version;
  for (uint32_t id : it->second.shard_ids) {
    auto shard_it = shards_.find(id);
    if (shard_it == shards_.end()) continue;
    p.shards.push_back(shard_it->second.ep);
  }
  return p;
}

void MetaService::UpdateGaugesLocked() const {
  auto& m = MetaMetrics::Get();
  int64_t alive = 0;
  for (const auto& [id, shard] : shards_) {
    if (shard.ep.alive) ++alive;
  }
  m.shards.Set(static_cast<int64_t>(shards_.size()));
  m.shards_alive.Set(alive);
  m.placements.Set(static_cast<int64_t>(placements_.size()));
}

RegisterShardReply MetaService::RegisterShard(
    const RegisterShardRequest& req) {
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t now = obs::NowNs();
  MetaMetrics::Get().registrations.Increment();
  Shard& shard = shards_[req.shard_id];
  const bool was_alive =
      shard.last_heartbeat_ns > 0 && shard.ep.alive;
  shard.ep.shard_id = req.shard_id;
  shard.ep.port = req.port;
  shard.ep.alive = true;
  shard.last_heartbeat_ns = now;
  if (!was_alive) {
    AppendEventLocked(MetaEventType::kShardJoined, req.shard_id, 0, "");
  }
  // Reconcile the advertised set against the announcement.
  std::set<uint64_t> incoming;
  for (const GraphAd& ad : req.ads) incoming.insert(ad.fingerprint);
  const std::set<uint64_t> previous = shard.advertised;
  for (uint64_t fp : previous) {
    if (incoming.count(fp) == 0) {
      shard.advertised.erase(fp);
      WithdrawLocked(req.shard_id, fp);
    }
  }
  for (const GraphAd& ad : req.ads) AdvertiseLocked(req.shard_id, ad);
  CheckLivenessLocked(now);
  return RegisterShardReply{version_, options_.heartbeat_ttl_ms};
}

Result<uint64_t> MetaService::Heartbeat(const HeartbeatRequest& req) {
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t now = obs::NowNs();
  MetaMetrics::Get().heartbeats.Increment();
  auto it = shards_.find(req.shard_id);
  if (it == shards_.end()) {
    return Status::NotFound(StrFormat(
        "shard %u has no registration (re-register first)", req.shard_id));
  }
  Shard& shard = it->second;
  shard.last_heartbeat_ns = now;
  shard.load = req.load;
  if (!shard.ep.alive) {
    shard.ep.alive = true;
    AppendEventLocked(MetaEventType::kShardJoined, req.shard_id, 0, "");
  }
  std::set<uint64_t> incoming;
  for (const GraphAd& ad : req.ads) incoming.insert(ad.fingerprint);
  const std::set<uint64_t> previous = shard.advertised;
  for (uint64_t fp : previous) {
    if (incoming.count(fp) == 0) {
      shard.advertised.erase(fp);
      WithdrawLocked(req.shard_id, fp);
    }
  }
  for (const GraphAd& ad : req.ads) AdvertiseLocked(req.shard_id, ad);
  CheckLivenessLocked(now);
  return version_;
}

Result<Placement> MetaService::Resolve(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  CheckLivenessLocked(obs::NowNs());
  auto it = names_.find(name);
  if (it == names_.end()) {
    return Status::NotFound(
        StrFormat("no shard advertises graph '%s'", name.c_str()));
  }
  return SnapshotPlacementLocked(it->second);
}

Result<Placement> MetaService::Place(const PlaceRequest& req) {
  std::lock_guard<std::mutex> lock(mu_);
  CheckLivenessLocked(obs::NowNs());
  if (req.shard_ids.empty()) {
    // Plan: pick the `replicas` least-loaded live shards that do not
    // already hold the fingerprint. Pure read — nothing committed until
    // the uploads succeed and a record call comes back.
    const std::set<uint32_t>* holders = nullptr;
    auto placed = placements_.find(req.fingerprint);
    if (req.fingerprint != 0 && placed != placements_.end()) {
      holders = &placed->second.shard_ids;
    }
    std::vector<const Shard*> candidates;
    for (const auto& [id, shard] : shards_) {
      if (!shard.ep.alive) continue;
      if (holders != nullptr && holders->count(id) > 0) continue;
      candidates.push_back(&shard);
    }
    if (candidates.empty()) {
      return Status::FailedPrecondition(
          "no live shard is available for placement");
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Shard* a, const Shard* b) {
                if (a->load.resident_bytes != b->load.resident_bytes) {
                  return a->load.resident_bytes < b->load.resident_bytes;
                }
                if (a->load.queue_depth != b->load.queue_depth) {
                  return a->load.queue_depth < b->load.queue_depth;
                }
                return a->ep.shard_id < b->ep.shard_id;
              });
    const size_t want =
        std::max(1, req.replicas) > static_cast<int>(candidates.size())
            ? candidates.size()
            : static_cast<size_t>(std::max(1, req.replicas));
    Placement plan;
    plan.name = req.name;
    plan.fingerprint = req.fingerprint;
    plan.version = version_;
    for (size_t i = 0; i < want; ++i) {
      plan.shards.push_back(candidates[i]->ep);
    }
    return plan;
  }
  // Record: commit the placement after the uploads landed.
  if (req.fingerprint == 0) {
    return Status::InvalidArgument(
        "placement record requires the uploaded graph's fingerprint");
  }
  for (uint32_t id : req.shard_ids) {
    if (shards_.find(id) == shards_.end()) {
      return Status::NotFound(
          StrFormat("cannot record placement on unknown shard %u", id));
    }
  }
  GraphAd ad;
  ad.name = req.name;
  ad.fingerprint = req.fingerprint;
  ad.bytes = req.bytes;
  for (uint32_t id : req.shard_ids) AdvertiseLocked(id, ad);
  UpdateGaugesLocked();
  return SnapshotPlacementLocked(req.fingerprint);
}

std::vector<ShardStatus> MetaService::ListShards() {
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t now = obs::NowNs();
  CheckLivenessLocked(now);
  std::vector<ShardStatus> out;
  out.reserve(shards_.size());
  for (const auto& [id, shard] : shards_) {
    ShardStatus s;
    s.shard_id = id;
    s.port = shard.ep.port;
    s.alive = shard.ep.alive;
    s.heartbeat_age_ms = (now - shard.last_heartbeat_ns) / 1'000'000;
    s.load = shard.load;
    s.graphs = static_cast<int64_t>(shard.advertised.size());
    out.push_back(std::move(s));
  }
  return out;
}

WatchResult MetaService::Watch(uint64_t since_version, int64_t timeout_ms) {
  std::unique_lock<std::mutex> lock(mu_);
  const int64_t deadline_ns = obs::NowNs() + timeout_ms * 1'000'000;
  for (;;) {
    CheckLivenessLocked(obs::NowNs());
    WatchResult res;
    res.version = version_;
    // A watcher behind the bounded log's retention gets a resync signal
    // instead of a partial replay.
    const uint64_t oldest_retained =
        events_.empty() ? version_ + 1 : events_.front().version;
    if (version_ > since_version && since_version + 1 < oldest_retained) {
      res.resync = true;
      return res;
    }
    for (const MetaEvent& e : events_) {
      if (e.version > since_version) res.events.push_back(e);
    }
    const int64_t now = obs::NowNs();
    if (!res.events.empty() || closed_ || now >= deadline_ns) return res;
    // Bounded waits so a liveness expiry during the poll still produces
    // its kShardDead event and wakes this watcher.
    const int64_t slice_ns = std::min<int64_t>(100'000'000,
                                               deadline_ns - now);
    event_cv_.wait_for(lock, std::chrono::nanoseconds(slice_ns));
  }
}

uint64_t MetaService::version() const {
  std::lock_guard<std::mutex> lock(mu_);
  return version_;
}

std::string MetaService::StatsJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t alive = 0;
  for (const auto& [id, shard] : shards_) {
    if (shard.ep.alive) ++alive;
  }
  return StrFormat(
      "{\"shards\": %zu, \"alive\": %lld, \"placements\": %zu, "
      "\"version\": %llu, \"events_retained\": %zu}",
      shards_.size(), static_cast<long long>(alive), placements_.size(),
      static_cast<unsigned long long>(version_), events_.size());
}

void MetaService::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  closed_ = true;
  event_cv_.notify_all();
}

}  // namespace freehgc::cluster
