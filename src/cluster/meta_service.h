#ifndef FREEHGC_CLUSTER_META_SERVICE_H_
#define FREEHGC_CLUSTER_META_SERVICE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "cluster/types.h"
#include "cluster/wire.h"

namespace freehgc::cluster {

struct MetaServiceOptions {
  /// A shard that has not heartbeated for this long is marked dead (a
  /// kShardDead event; routers stop sending to it). A later heartbeat
  /// revives it — liveness is a flag, not removal, so placements survive
  /// a slow shard.
  int64_t heartbeat_ttl_ms = 2000;
  /// Bounded event log: watchers further behind than this many retained
  /// events get `resync` instead of a replay (drop caches, re-resolve).
  size_t max_events = 1024;
};

/// The cluster's coordination brain (vineyard's etcd-meta pattern,
/// in-process): a versioned placement map (graph fingerprint → the
/// shards holding it), shard liveness driven by heartbeats, and an event
/// log that Watch long-polls deliver from. Every mutation — shard join,
/// death, revival, placement change — bumps one monotonic metadata
/// version and appends one event, so a router can cache placements and
/// invalidate precisely.
///
/// Pure in-memory state machine, no sockets (MetaServer adds the wire);
/// all methods are thread-safe.
class MetaService {
 public:
  explicit MetaService(MetaServiceOptions options = {});
  ~MetaService();

  MetaService(const MetaService&) = delete;
  MetaService& operator=(const MetaService&) = delete;

  /// Shard join (idempotent; also the revival path after a liveness
  /// expiry or meta restart). The ads seed/reconcile its placements.
  RegisterShardReply RegisterShard(const RegisterShardRequest& req);

  /// Liveness + load + advertised-set reconciliation: graphs that
  /// appeared on the shard join its placements, graphs that disappeared
  /// leave them. NotFound for a shard that never registered (the agent
  /// re-registers on that signal). Returns the current metadata version.
  Result<uint64_t> Heartbeat(const HeartbeatRequest& req);

  /// Placement of a graph by store name, liveness flags current as of
  /// the call. NotFound when no live or dead shard advertises the name.
  Result<Placement> Resolve(const std::string& name);

  /// Placement planning and recording (see PlaceRequest). A plan picks
  /// the `replicas` least-loaded live shards (excluding ones already
  /// holding the fingerprint) without mutating anything; a record
  /// commits shard_ids into the placement map and bumps the version.
  Result<Placement> Place(const PlaceRequest& req);

  /// All known shards with liveness, heartbeat age, and load.
  std::vector<ShardStatus> ListShards();

  /// Long-poll: blocks until an event with version > since_version
  /// exists (or timeout_ms passes, or Close). Liveness expiry is checked
  /// while waiting, so a shard dying mid-watch wakes the watcher.
  WatchResult Watch(uint64_t since_version, int64_t timeout_ms);

  /// Current metadata version (0 = nothing ever happened).
  uint64_t version() const;

  /// One-line JSON summary (the meta server's kStats body).
  std::string StatsJson() const;

  /// Wakes every blocked watcher (they return with what they have);
  /// subsequent Watch calls return immediately. Idempotent.
  void Close();

 private:
  struct Shard {
    ShardEndpoint ep;
    ShardLoad load;
    int64_t last_heartbeat_ns = 0;
    /// Fingerprints this shard currently advertises (for reconciliation).
    std::set<uint64_t> advertised;
  };

  /// Callers hold mu_. Marks overdue shards dead (events + notify).
  void CheckLivenessLocked(int64_t now_ns);
  /// Callers hold mu_. Appends one event at version_ + 1.
  void AppendEventLocked(MetaEventType type, uint32_t shard_id,
                         uint64_t fingerprint, const std::string& name);
  /// Callers hold mu_. Adds/removes `shard_id` on the fingerprint's
  /// placement, emitting a kPlacementChanged event on change.
  void AdvertiseLocked(uint32_t shard_id, const GraphAd& ad);
  void WithdrawLocked(uint32_t shard_id, uint64_t fingerprint);
  /// Callers hold mu_. Placement with alive flags refreshed from the
  /// current shard table.
  Placement SnapshotPlacementLocked(uint64_t fingerprint) const;
  void UpdateGaugesLocked() const;

  const MetaServiceOptions options_;

  mutable std::mutex mu_;
  std::condition_variable event_cv_;
  std::map<uint32_t, Shard> shards_;
  /// fingerprint -> placement (shard ids + the graph's latest name).
  struct Entry {
    std::string name;
    uint64_t bytes = 0;
    uint64_t version = 0;  // version of the last change
    std::set<uint32_t> shard_ids;
  };
  std::map<uint64_t, Entry> placements_;
  /// store name -> fingerprint (latest advertisement wins).
  std::map<std::string, uint64_t> names_;
  std::deque<MetaEvent> events_;
  uint64_t version_ = 0;
  bool closed_ = false;
};

}  // namespace freehgc::cluster

#endif  // FREEHGC_CLUSTER_META_SERVICE_H_
