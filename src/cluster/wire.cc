#include "cluster/wire.h"

namespace freehgc::cluster {

using serve::WireReader;
using serve::WireWriter;

void EncodeGraphAd(WireWriter& w, const GraphAd& ad) {
  w.PutString(ad.name);
  w.PutU64(ad.fingerprint);
  w.PutU64(ad.bytes);
}

Result<GraphAd> DecodeGraphAd(WireReader& r) {
  GraphAd ad;
  FREEHGC_ASSIGN_OR_RETURN(ad.name, r.GetString());
  FREEHGC_ASSIGN_OR_RETURN(ad.fingerprint, r.GetU64());
  FREEHGC_ASSIGN_OR_RETURN(ad.bytes, r.GetU64());
  return ad;
}

void EncodeGraphAdList(WireWriter& w, const std::vector<GraphAd>& ads) {
  w.PutU32(static_cast<uint32_t>(ads.size()));
  for (const GraphAd& ad : ads) EncodeGraphAd(w, ad);
}

Result<std::vector<GraphAd>> DecodeGraphAdList(WireReader& r) {
  FREEHGC_ASSIGN_OR_RETURN(uint32_t count, r.GetU32());
  // 20 = minimum encoded GraphAd (empty name); bounds the reserve.
  if (count > r.remaining() / 20) {
    return Status::InvalidArgument(
        "malformed wire payload: graph ad count exceeds payload");
  }
  std::vector<GraphAd> out;
  out.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    FREEHGC_ASSIGN_OR_RETURN(GraphAd ad, DecodeGraphAd(r));
    out.push_back(std::move(ad));
  }
  return out;
}

void EncodeShardLoad(WireWriter& w, const ShardLoad& load) {
  w.PutU64(load.resident_bytes);
  w.PutI64(load.queue_depth);
  w.PutI64(load.inflight);
  w.PutI64(load.completed);
}

Result<ShardLoad> DecodeShardLoad(WireReader& r) {
  ShardLoad load;
  FREEHGC_ASSIGN_OR_RETURN(load.resident_bytes, r.GetU64());
  FREEHGC_ASSIGN_OR_RETURN(load.queue_depth, r.GetI64());
  FREEHGC_ASSIGN_OR_RETURN(load.inflight, r.GetI64());
  FREEHGC_ASSIGN_OR_RETURN(load.completed, r.GetI64());
  return load;
}

void EncodeShardEndpoint(WireWriter& w, const ShardEndpoint& ep) {
  w.PutU32(ep.shard_id);
  w.PutU32(static_cast<uint32_t>(ep.port));
  w.PutU8(ep.alive ? 1 : 0);
}

Result<ShardEndpoint> DecodeShardEndpoint(WireReader& r) {
  ShardEndpoint ep;
  FREEHGC_ASSIGN_OR_RETURN(ep.shard_id, r.GetU32());
  FREEHGC_ASSIGN_OR_RETURN(uint32_t port, r.GetU32());
  ep.port = static_cast<int>(port);
  FREEHGC_ASSIGN_OR_RETURN(uint8_t alive, r.GetU8());
  ep.alive = alive != 0;
  return ep;
}

void EncodePlacement(WireWriter& w, const Placement& p) {
  w.PutString(p.name);
  w.PutU64(p.fingerprint);
  w.PutU64(p.version);
  w.PutU32(static_cast<uint32_t>(p.shards.size()));
  for (const ShardEndpoint& ep : p.shards) EncodeShardEndpoint(w, ep);
}

Result<Placement> DecodePlacement(WireReader& r) {
  Placement p;
  FREEHGC_ASSIGN_OR_RETURN(p.name, r.GetString());
  FREEHGC_ASSIGN_OR_RETURN(p.fingerprint, r.GetU64());
  FREEHGC_ASSIGN_OR_RETURN(p.version, r.GetU64());
  FREEHGC_ASSIGN_OR_RETURN(uint32_t count, r.GetU32());
  // 9 = encoded ShardEndpoint size; bounds the reserve.
  if (count > r.remaining() / 9) {
    return Status::InvalidArgument(
        "malformed wire payload: placement shard count exceeds payload");
  }
  p.shards.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    FREEHGC_ASSIGN_OR_RETURN(ShardEndpoint ep, DecodeShardEndpoint(r));
    p.shards.push_back(ep);
  }
  return p;
}

void EncodeShardStatus(WireWriter& w, const ShardStatus& s) {
  w.PutU32(s.shard_id);
  w.PutU32(static_cast<uint32_t>(s.port));
  w.PutU8(s.alive ? 1 : 0);
  w.PutI64(s.heartbeat_age_ms);
  EncodeShardLoad(w, s.load);
  w.PutI64(s.graphs);
}

Result<ShardStatus> DecodeShardStatus(WireReader& r) {
  ShardStatus s;
  FREEHGC_ASSIGN_OR_RETURN(s.shard_id, r.GetU32());
  FREEHGC_ASSIGN_OR_RETURN(uint32_t port, r.GetU32());
  s.port = static_cast<int>(port);
  FREEHGC_ASSIGN_OR_RETURN(uint8_t alive, r.GetU8());
  s.alive = alive != 0;
  FREEHGC_ASSIGN_OR_RETURN(s.heartbeat_age_ms, r.GetI64());
  FREEHGC_ASSIGN_OR_RETURN(s.load, DecodeShardLoad(r));
  FREEHGC_ASSIGN_OR_RETURN(s.graphs, r.GetI64());
  return s;
}

void EncodeShardStatusList(WireWriter& w,
                           const std::vector<ShardStatus>& shards) {
  w.PutU32(static_cast<uint32_t>(shards.size()));
  for (const ShardStatus& s : shards) EncodeShardStatus(w, s);
}

Result<std::vector<ShardStatus>> DecodeShardStatusList(WireReader& r) {
  FREEHGC_ASSIGN_OR_RETURN(uint32_t count, r.GetU32());
  // 57 = encoded ShardStatus size; bounds the reserve.
  if (count > r.remaining() / 57) {
    return Status::InvalidArgument(
        "malformed wire payload: shard status count exceeds payload");
  }
  std::vector<ShardStatus> out;
  out.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    FREEHGC_ASSIGN_OR_RETURN(ShardStatus s, DecodeShardStatus(r));
    out.push_back(s);
  }
  return out;
}

void EncodeMetaEvent(WireWriter& w, const MetaEvent& e) {
  w.PutU64(e.version);
  w.PutU8(static_cast<uint8_t>(e.type));
  w.PutU32(e.shard_id);
  w.PutU64(e.fingerprint);
  w.PutString(e.name);
}

Result<MetaEvent> DecodeMetaEvent(WireReader& r) {
  MetaEvent e;
  FREEHGC_ASSIGN_OR_RETURN(e.version, r.GetU64());
  FREEHGC_ASSIGN_OR_RETURN(uint8_t type, r.GetU8());
  if (type < 1 || type > 3) {
    return Status::InvalidArgument(
        "malformed wire payload: unknown meta event type");
  }
  e.type = static_cast<MetaEventType>(type);
  FREEHGC_ASSIGN_OR_RETURN(e.shard_id, r.GetU32());
  FREEHGC_ASSIGN_OR_RETURN(e.fingerprint, r.GetU64());
  FREEHGC_ASSIGN_OR_RETURN(e.name, r.GetString());
  return e;
}

void EncodeWatchResult(WireWriter& w, const WatchResult& res) {
  w.PutU64(res.version);
  w.PutU8(res.resync ? 1 : 0);
  w.PutU32(static_cast<uint32_t>(res.events.size()));
  for (const MetaEvent& e : res.events) EncodeMetaEvent(w, e);
}

Result<WatchResult> DecodeWatchResult(WireReader& r) {
  WatchResult res;
  FREEHGC_ASSIGN_OR_RETURN(res.version, r.GetU64());
  FREEHGC_ASSIGN_OR_RETURN(uint8_t resync, r.GetU8());
  res.resync = resync != 0;
  FREEHGC_ASSIGN_OR_RETURN(uint32_t count, r.GetU32());
  // 25 = minimum encoded MetaEvent (empty name); bounds the reserve.
  if (count > r.remaining() / 25) {
    return Status::InvalidArgument(
        "malformed wire payload: event count exceeds payload");
  }
  res.events.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    FREEHGC_ASSIGN_OR_RETURN(MetaEvent e, DecodeMetaEvent(r));
    res.events.push_back(std::move(e));
  }
  return res;
}

void EncodeRegisterShardRequest(WireWriter& w,
                                const RegisterShardRequest& req) {
  w.PutU32(req.shard_id);
  w.PutU32(static_cast<uint32_t>(req.port));
  EncodeGraphAdList(w, req.ads);
}

Result<RegisterShardRequest> DecodeRegisterShardRequest(WireReader& r) {
  RegisterShardRequest req;
  FREEHGC_ASSIGN_OR_RETURN(req.shard_id, r.GetU32());
  FREEHGC_ASSIGN_OR_RETURN(uint32_t port, r.GetU32());
  req.port = static_cast<int>(port);
  FREEHGC_ASSIGN_OR_RETURN(req.ads, DecodeGraphAdList(r));
  return req;
}

void EncodeRegisterShardReply(WireWriter& w, const RegisterShardReply& reply) {
  w.PutU64(reply.version);
  w.PutI64(reply.ttl_ms);
}

Result<RegisterShardReply> DecodeRegisterShardReply(WireReader& r) {
  RegisterShardReply reply;
  FREEHGC_ASSIGN_OR_RETURN(reply.version, r.GetU64());
  FREEHGC_ASSIGN_OR_RETURN(reply.ttl_ms, r.GetI64());
  return reply;
}

void EncodeHeartbeatRequest(WireWriter& w, const HeartbeatRequest& req) {
  w.PutU32(req.shard_id);
  EncodeShardLoad(w, req.load);
  EncodeGraphAdList(w, req.ads);
}

Result<HeartbeatRequest> DecodeHeartbeatRequest(WireReader& r) {
  HeartbeatRequest req;
  FREEHGC_ASSIGN_OR_RETURN(req.shard_id, r.GetU32());
  FREEHGC_ASSIGN_OR_RETURN(req.load, DecodeShardLoad(r));
  FREEHGC_ASSIGN_OR_RETURN(req.ads, DecodeGraphAdList(r));
  return req;
}

void EncodePlaceRequest(WireWriter& w, const PlaceRequest& req) {
  w.PutString(req.name);
  w.PutU64(req.fingerprint);
  w.PutU64(req.bytes);
  w.PutU32(static_cast<uint32_t>(req.replicas));
  w.PutU32(static_cast<uint32_t>(req.shard_ids.size()));
  for (uint32_t id : req.shard_ids) w.PutU32(id);
}

Result<PlaceRequest> DecodePlaceRequest(WireReader& r) {
  PlaceRequest req;
  FREEHGC_ASSIGN_OR_RETURN(req.name, r.GetString());
  FREEHGC_ASSIGN_OR_RETURN(req.fingerprint, r.GetU64());
  FREEHGC_ASSIGN_OR_RETURN(req.bytes, r.GetU64());
  FREEHGC_ASSIGN_OR_RETURN(uint32_t replicas, r.GetU32());
  req.replicas = static_cast<int>(replicas);
  FREEHGC_ASSIGN_OR_RETURN(uint32_t count, r.GetU32());
  if (count > r.remaining() / 4) {
    return Status::InvalidArgument(
        "malformed wire payload: shard id count exceeds payload");
  }
  req.shard_ids.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    FREEHGC_ASSIGN_OR_RETURN(uint32_t id, r.GetU32());
    req.shard_ids.push_back(id);
  }
  return req;
}

void EncodeWatchRequest(WireWriter& w, const WatchRequest& req) {
  w.PutU64(req.since_version);
  w.PutI64(req.timeout_ms);
}

Result<WatchRequest> DecodeWatchRequest(WireReader& r) {
  WatchRequest req;
  FREEHGC_ASSIGN_OR_RETURN(req.since_version, r.GetU64());
  FREEHGC_ASSIGN_OR_RETURN(req.timeout_ms, r.GetI64());
  return req;
}

}  // namespace freehgc::cluster
