#include "cluster/shard_agent.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/logging.h"
#include "obs/metrics.h"

namespace freehgc::cluster {

ShardAgent::ShardAgent(ShardAgentOptions options,
                       serve::ServeService* service)
    : options_(std::move(options)), service_(service),
      interval_ms_(options_.heartbeat_ms > 0 ? options_.heartbeat_ms : 500) {}

ShardAgent::~ShardAgent() { Stop(); }

RegisterShardRequest ShardAgent::Announcement() const {
  RegisterShardRequest req;
  req.shard_id = options_.shard_id;
  req.port = options_.serve_port;
  for (const serve::GraphInfo& info : service_->store().List()) {
    GraphAd ad;
    ad.name = info.name;
    ad.fingerprint = info.fingerprint;
    ad.bytes = info.memory_bytes;
    req.ads.push_back(std::move(ad));
  }
  return req;
}

HeartbeatRequest ShardAgent::HeartbeatBody() const {
  HeartbeatRequest req;
  req.shard_id = options_.shard_id;
  const serve::SchedulerStats stats = service_->scheduler_stats();
  req.load.resident_bytes = service_->store().TotalBytes();
  req.load.queue_depth = stats.queue_depth;
  req.load.inflight = stats.inflight;
  req.load.completed = stats.completed;
  const RegisterShardRequest ann = Announcement();
  req.ads = ann.ads;
  return req;
}

Status ShardAgent::Start() {
  FREEHGC_RETURN_IF_ERROR(meta_.Connect(options_.meta_port));
  FREEHGC_ASSIGN_OR_RETURN(RegisterShardReply reply,
                           meta_.RegisterShard(Announcement()));
  if (reply.ttl_ms > 0) {
    interval_ms_ = std::min(interval_ms_, std::max<int64_t>(reply.ttl_ms / 3,
                                                            1));
  }
  thread_ = std::thread([this] { Loop(); });
  return Status::OK();
}

void ShardAgent::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) {
      if (thread_.joinable()) thread_.join();
      return;
    }
    stop_ = true;
  }
  stop_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

int64_t ShardAgent::heartbeats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return heartbeats_;
}

void ShardAgent::Loop() {
  auto& sent = obs::MetricsRegistry::Global()
                   .GetCounter("cluster.shard.heartbeats");
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      stop_cv_.wait_for(lock, std::chrono::milliseconds(interval_ms_),
                        [&] { return stop_; });
      if (stop_) return;
    }
    if (!meta_.connected()) {
      if (!meta_.Connect(options_.meta_port).ok()) continue;  // backoff =
      // one heartbeat interval per attempt.
      if (!meta_.RegisterShard(Announcement()).ok()) {
        meta_.Close();
        continue;
      }
    }
    auto version = meta_.Heartbeat(HeartbeatBody());
    if (version.ok()) {
      sent.Increment();
      std::lock_guard<std::mutex> lock(mu_);
      ++heartbeats_;
      continue;
    }
    if (version.status().code() == StatusCode::kNotFound) {
      // The meta service forgot us (restart / TTL expiry): re-register
      // on the live connection, keeping the same cadence.
      if (!meta_.RegisterShard(Announcement()).ok()) meta_.Close();
      continue;
    }
    FREEHGC_LOG(Warning) << "shard " << options_.shard_id
                         << ": heartbeat failed, reconnecting: "
                         << version.status().ToString();
    meta_.Close();
  }
}

}  // namespace freehgc::cluster
