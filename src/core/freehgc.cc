#include "core/freehgc.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/logging.h"
#include "common/timer.h"
#include "core/selection_util.h"
#include "metapath/metapath.h"
#include "obs/trace.h"

namespace freehgc::core {

namespace {

int32_t Budget(double ratio, int32_t count) {
  if (count == 0) return 0;
  return std::max<int32_t>(
      1, static_cast<int32_t>(std::lround(ratio * count)));
}

std::vector<int32_t> AllNodes(int32_t n) {
  std::vector<int32_t> out(static_cast<size_t>(n));
  for (int32_t i = 0; i < n; ++i) out[static_cast<size_t>(i)] = i;
  return out;
}

}  // namespace

Result<HeteroGraph> AssembleCondensedGraph(
    const HeteroGraph& g, const std::vector<TypeMapping>& mappings) {
  if (static_cast<int32_t>(mappings.size()) != g.NumNodeTypes()) {
    return Status::InvalidArgument("one mapping per node type required");
  }

  // New node counts and original->new membership lists per type.
  std::vector<std::vector<std::vector<int32_t>>> to_new(mappings.size());
  std::vector<int32_t> new_count(mappings.size(), 0);
  for (TypeId t = 0; t < g.NumNodeTypes(); ++t) {
    const auto& m = mappings[static_cast<size_t>(t)];
    auto& map = to_new[static_cast<size_t>(t)];
    map.resize(static_cast<size_t>(g.NodeCount(t)));
    if (m.synthesized) {
      new_count[static_cast<size_t>(t)] =
          static_cast<int32_t>(m.members.size());
      for (size_t k = 0; k < m.members.size(); ++k) {
        for (int32_t orig : m.members[k]) {
          if (orig < 0 || orig >= g.NodeCount(t)) {
            return Status::OutOfRange("hyper-node member out of range");
          }
          map[static_cast<size_t>(orig)].push_back(
              static_cast<int32_t>(k));
        }
      }
      if (m.synthetic_features.rows() !=
          static_cast<int64_t>(m.members.size())) {
        return Status::InvalidArgument(
            "synthetic feature rows must match hyper-node count");
      }
    } else {
      new_count[static_cast<size_t>(t)] =
          static_cast<int32_t>(m.keep.size());
      for (size_t k = 0; k < m.keep.size(); ++k) {
        const int32_t orig = m.keep[k];
        if (orig < 0 || orig >= g.NodeCount(t)) {
          return Status::OutOfRange("keep id out of range");
        }
        if (!map[static_cast<size_t>(orig)].empty()) {
          return Status::InvalidArgument("duplicate keep id");
        }
        map[static_cast<size_t>(orig)].push_back(static_cast<int32_t>(k));
      }
    }
  }

  HeteroGraph out;
  for (TypeId t = 0; t < g.NumNodeTypes(); ++t) {
    auto added =
        out.AddNodeType(g.TypeName(t), new_count[static_cast<size_t>(t)]);
    if (!added.ok()) return added.status();
  }

  for (RelationId r = 0; r < g.NumRelations(); ++r) {
    const Relation& rel = g.relation(r);
    const auto& src_map = to_new[static_cast<size_t>(rel.src_type)];
    const auto& dst_map = to_new[static_cast<size_t>(rel.dst_type)];
    std::vector<CooEntry> entries;
    for (int32_t a = 0; a < rel.adj.rows(); ++a) {
      const auto& new_rows = src_map[static_cast<size_t>(a)];
      if (new_rows.empty()) continue;
      auto idx = rel.adj.RowIndices(a);
      auto val = rel.adj.RowValues(a);
      for (size_t k = 0; k < idx.size(); ++k) {
        const auto& new_cols = dst_map[static_cast<size_t>(idx[k])];
        for (int32_t nr : new_rows) {
          for (int32_t nc : new_cols) {
            entries.push_back({nr, nc, val[k]});
          }
        }
      }
    }
    FREEHGC_ASSIGN_OR_RETURN(
        CsrMatrix adj,
        CsrMatrix::FromCoo(new_count[static_cast<size_t>(rel.src_type)],
                           new_count[static_cast<size_t>(rel.dst_type)],
                           std::move(entries)));
    auto added =
        out.AddRelation(rel.name, rel.src_type, rel.dst_type, std::move(adj));
    if (!added.ok()) return added.status();
  }

  for (TypeId t = 0; t < g.NumNodeTypes(); ++t) {
    const auto& m = mappings[static_cast<size_t>(t)];
    if (m.synthesized) {
      FREEHGC_RETURN_IF_ERROR(out.SetFeatures(t, m.synthetic_features));
    } else if (g.HasFeatures(t)) {
      FREEHGC_RETURN_IF_ERROR(
          out.SetFeatures(t, g.Features(t).GatherRows(m.keep)));
    }
  }

  const TypeId target = g.target_type();
  if (target >= 0) {
    const auto& m = mappings[static_cast<size_t>(target)];
    if (m.synthesized) {
      return Status::InvalidArgument("target type cannot be synthesized");
    }
    std::vector<int32_t> labels;
    labels.reserve(m.keep.size());
    for (int32_t v : m.keep) {
      labels.push_back(g.labels()[static_cast<size_t>(v)]);
    }
    FREEHGC_RETURN_IF_ERROR(
        out.SetTarget(target, std::move(labels), g.num_classes()));
    std::vector<int32_t> train(m.keep.size());
    for (size_t i = 0; i < m.keep.size(); ++i) {
      train[i] = static_cast<int32_t>(i);
    }
    FREEHGC_RETURN_IF_ERROR(out.SetSplit(std::move(train), {}, {}));
  }
  FREEHGC_RETURN_IF_ERROR(out.Validate());
  return out;
}

Result<CondensedResult> Condense(const HeteroGraph& g,
                                 const FreeHgcOptions& opts,
                                 exec::ExecContext* ctx,
                                 AdjacencyCache* cache) {
  if (g.target_type() < 0) {
    return Status::FailedPrecondition("graph has no target type");
  }
  if (opts.ratio <= 0.0 || opts.ratio >= 1.0) {
    return Status::InvalidArgument("ratio must be in (0, 1)");
  }
  // A caller-supplied context wins. With num_threads == 0 the process-wide
  // default pool already has the right worker count (FREEHGC_THREADS /
  // hardware resolution), so reuse it instead of spinning up a pool per
  // call; only an explicit num_threads asks for a dedicated pool.
  std::unique_ptr<exec::ExecContext> owned;
  if (ctx == nullptr) {
    if (opts.num_threads > 0) {
      owned = std::make_unique<exec::ExecContext>(opts.num_threads);
      ctx = owned.get();
    } else {
      ctx = &exec::DefaultExec();
    }
  }
  exec::ExecContext& ex = *ctx;
  FREEHGC_TRACE_SPAN("condense");
  Timer timer;
  StageSeconds stages;
  const TypeId target = g.target_type();

  // General meta-paths generation model (Section IV-A).
  MetaPathOptions mp_opts;
  mp_opts.max_hops = opts.max_hops;
  mp_opts.max_paths = opts.max_paths;
  mp_opts.max_row_nnz = opts.max_row_nnz;
  std::vector<MetaPath> paths;
  {
    ScopedTimer stage_timer(stages.metapath);
    FREEHGC_TRACE_SPAN("condense.metapath");
    paths = EnumerateMetaPaths(g, target, mp_opts);
  }

  // --- Target type (Algorithm 1) ----------------------------------------
  const int32_t target_budget = Budget(opts.ratio, g.NodeCount(target));
  std::vector<int32_t> selected_target;
  {
    ScopedTimer stage_timer(stages.target);
    FREEHGC_TRACE_SPAN("condense.target");
    switch (opts.target_strategy) {
      case TargetStrategy::kCriterion: {
        TargetSelectionOptions topts = opts.target;
        topts.max_row_nnz = opts.max_row_nnz;
        topts.seed = opts.seed;
        selected_target =
            CondenseTargetNodes(g, paths, target_budget, topts,
                                /*scores_out=*/nullptr, &ex, cache);
        break;
      }
      case TargetStrategy::kHerding: {
        // Class-balanced herding on raw target features (Variant#3).
        const auto budgets = PerClassBudget(g.labels(), g.train_index(),
                                            g.num_classes(), target_budget);
        for (int32_t c = 0; c < g.num_classes(); ++c) {
          const auto pool = PoolOfClass(g.labels(), g.train_index(), c);
          const auto picked = HerdingSelect(g.Features(target), pool,
                                            budgets[static_cast<size_t>(c)]);
          selected_target.insert(selected_target.end(), picked.begin(),
                                 picked.end());
        }
        std::sort(selected_target.begin(), selected_target.end());
        break;
      }
      case TargetStrategy::kRandom: {
        const auto budgets = PerClassBudget(g.labels(), g.train_index(),
                                            g.num_classes(), target_budget);
        for (int32_t c = 0; c < g.num_classes(); ++c) {
          const auto pool = PoolOfClass(g.labels(), g.train_index(), c);
          const auto picked = RandomSelect(
              pool, budgets[static_cast<size_t>(c)], opts.seed ^ (c + 1));
          selected_target.insert(selected_target.end(), picked.begin(),
                                 picked.end());
        }
        std::sort(selected_target.begin(), selected_target.end());
        break;
      }
    }
  }

  // --- Other types (Algorithm 2) ----------------------------------------
  const std::vector<TypeRole> roles = g.ClassifySchema();
  std::vector<TypeMapping> mappings(static_cast<size_t>(g.NumNodeTypes()));
  mappings[static_cast<size_t>(target)].keep = selected_target;

  // Fathers first (leaf synthesis depends on kept fathers).
  std::vector<std::pair<TypeId, const std::vector<int32_t>*>> kept_fathers;
  {
    ScopedTimer stage_timer(stages.father);
    FREEHGC_TRACE_SPAN("condense.father");
    for (TypeId t = 0; t < g.NumNodeTypes(); ++t) {
      if (roles[static_cast<size_t>(t)] != TypeRole::kFather) continue;
      const int32_t budget = Budget(opts.ratio, g.NodeCount(t));
      auto& mapping = mappings[static_cast<size_t>(t)];
      switch (opts.father_strategy) {
        case FatherStrategy::kNim: {
          NimOptions nopts = opts.nim;
          nopts.max_row_nnz = opts.max_row_nnz;
          mapping.keep =
              CondenseFatherType(g, t, FilterByEndType(paths, t),
                                 selected_target, budget, nopts, &ex, cache);
          break;
        }
        case FatherStrategy::kHerding:
          mapping.keep =
              HerdingSelect(g.Features(t), AllNodes(g.NodeCount(t)), budget);
          std::sort(mapping.keep.begin(), mapping.keep.end());
          break;
        case FatherStrategy::kRandom:
          mapping.keep = RandomSelect(AllNodes(g.NodeCount(t)), budget,
                                      opts.seed ^ (0x5eedULL + t));
          std::sort(mapping.keep.begin(), mapping.keep.end());
          break;
      }
    }
    for (TypeId t = 0; t < g.NumNodeTypes(); ++t) {
      if (roles[static_cast<size_t>(t)] == TypeRole::kFather) {
        kept_fathers.emplace_back(t, &mappings[static_cast<size_t>(t)].keep);
      }
    }
  }

  // Leaves.
  {
    ScopedTimer stage_timer(stages.leaf);
    FREEHGC_TRACE_SPAN("condense.leaf");
    for (TypeId t = 0; t < g.NumNodeTypes(); ++t) {
      if (roles[static_cast<size_t>(t)] != TypeRole::kLeaf) continue;
      const int32_t budget = Budget(opts.ratio, g.NodeCount(t));
      auto& mapping = mappings[static_cast<size_t>(t)];
      switch (opts.leaf_strategy) {
        case LeafStrategy::kIlm: {
          // A leaf's "fathers" are the kept types it is directly connected
          // to (for deep hierarchies like DBLP's term/venue under paper,
          // these are the Fig. 5 father types; for chains deeper than two
          // the previously condensed level plays the father role).
          std::vector<std::pair<TypeId, const std::vector<int32_t>*>> parents;
          for (const auto& kf : kept_fathers) {
            for (RelationId r = 0; r < g.NumRelations(); ++r) {
              if (g.relation(r).src_type == kf.first &&
                  g.relation(r).dst_type == t) {
                parents.push_back(kf);
                break;
              }
            }
          }
          if (parents.empty()) {
            // Leaf hangs directly under the root (no father in between).
            parents.emplace_back(target,
                                 &mappings[static_cast<size_t>(target)].keep);
          }
          // Synthesis produces roughly one hyper-node per kept parent; when
          // the budget forces heavy merging the blended hyper-nodes lose
          // more information than plain selection keeps (the paper does the
          // same on ACM: ILM for the author type, selection for the small
          // subject/term types). Fall back to NIM under extreme pressure.
          int64_t parent_count = 0;
          for (const auto& pk : parents) {
            parent_count += static_cast<int64_t>(pk.second->size());
          }
          if (budget * 4 < parent_count * 3) {
            NimOptions nopts = opts.nim;
            nopts.max_row_nnz = opts.max_row_nnz;
            mapping.keep =
                CondenseFatherType(g, t, FilterByEndType(paths, t),
                                   selected_target, budget, nopts, &ex,
                                   cache);
            break;
          }
          LeafSynthesis synth = SynthesizeLeafType(g, t, parents, budget, &ex);
          mapping.synthesized = true;
          mapping.members = std::move(synth.members);
          mapping.synthetic_features = std::move(synth.features);
          break;
        }
        case LeafStrategy::kHerding:
          mapping.keep =
              HerdingSelect(g.Features(t), AllNodes(g.NodeCount(t)), budget);
          std::sort(mapping.keep.begin(), mapping.keep.end());
          break;
        case LeafStrategy::kRandom:
          mapping.keep = RandomSelect(AllNodes(g.NodeCount(t)), budget,
                                      opts.seed ^ (0x1eafULL + t));
          std::sort(mapping.keep.begin(), mapping.keep.end());
          break;
      }
    }
  }

  CondensedResult out;
  {
    ScopedTimer stage_timer(stages.assemble);
    FREEHGC_TRACE_SPAN("condense.assemble");
    FREEHGC_ASSIGN_OR_RETURN(HeteroGraph condensed,
                             AssembleCondensedGraph(g, mappings));
    out.graph = std::move(condensed);
  }
  out.selected_target = std::move(selected_target);
  out.kept_per_type.resize(mappings.size());
  for (size_t t = 0; t < mappings.size(); ++t) {
    if (!mappings[t].synthesized) out.kept_per_type[t] = mappings[t].keep;
  }
  out.seconds = timer.ElapsedSeconds();
  out.stage_seconds = stages;
  return out;
}

}  // namespace freehgc::core
