#ifndef FREEHGC_CORE_SELECTION_UTIL_H_
#define FREEHGC_CORE_SELECTION_UTIL_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "dense/matrix.h"

namespace freehgc::core {

/// Uniformly samples `budget` ids from `pool` (deterministic under seed).
std::vector<int32_t> RandomSelect(const std::vector<int32_t>& pool,
                                  int32_t budget, uint64_t seed);

/// Herding (Welling 2009): greedily picks pool elements whose running
/// feature mean tracks the pool's feature mean. `features` is indexed by
/// the ids appearing in `pool`.
std::vector<int32_t> HerdingSelect(const Matrix& features,
                                   const std::vector<int32_t>& pool,
                                   int32_t budget);

/// K-center (farthest-point) selection: picks centers minimizing the
/// maximum distance from any pool element to its nearest center.
std::vector<int32_t> KCenterSelect(const Matrix& features,
                                   const std::vector<int32_t>& pool,
                                   int32_t budget, uint64_t seed);

/// Splits an overall budget across classes proportionally to class sizes
/// in `labels` restricted to `pool` (at least 1 per non-empty class, total
/// == budget). Returns per-class budgets of length num_classes.
std::vector<int32_t> PerClassBudget(const std::vector<int32_t>& labels,
                                    const std::vector<int32_t>& pool,
                                    int32_t num_classes, int32_t budget);

/// Pools elements of class `c`.
std::vector<int32_t> PoolOfClass(const std::vector<int32_t>& labels,
                                 const std::vector<int32_t>& pool,
                                 int32_t c);

}  // namespace freehgc::core

#endif  // FREEHGC_CORE_SELECTION_UTIL_H_
