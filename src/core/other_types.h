#ifndef FREEHGC_CORE_OTHER_TYPES_H_
#define FREEHGC_CORE_OTHER_TYPES_H_

#include <cstdint>
#include <vector>

#include "dense/matrix.h"
#include "exec/exec_context.h"
#include "graph/hetero_graph.h"
#include "metapath/metapath.h"

namespace freehgc::core {

/// The node-importance function used by neighbor influence maximization.
/// The paper's default is Personalized PageRank (Eq. 11) and notes that it
/// "can be replaced by other node importance evaluation algorithms like
/// degree, betweenness and closeness centrality, hubs and authorities" —
/// all of which are available here (see bench_nim_scorers).
enum class NimScorer {
  kPprPowerIteration,  // Eq. 11 via power iteration (default)
  kPprPush,            // forward-push approximation (O(E/eps))
  kDegree,
  kCloseness,
  kBetweenness,
  kHubs,
  kAuthorities,
};

const char* NimScorerName(NimScorer scorer);

/// Options for the Neighbor Influence Maximization father-type condenser
/// (Eqs. 10-13).
struct NimOptions {
  NimScorer scorer = NimScorer::kPprPowerIteration;
  /// PPR restart probability (alpha in Eq. 11).
  float alpha = 0.15f;
  /// Power-iteration budget for the PPR approximation.
  int max_iters = 30;
  /// Residual threshold for the push-based approximation.
  float push_epsilon = 1e-4f;
  /// Row-nnz budget for composed meta-path adjacencies.
  int64_t max_row_nnz = 512;
};

/// Neighbor Influence Maximization (Eqs. 10-13): scores every node of the
/// father type `father` by its aggregate Personalized-PageRank influence
/// with respect to the selected target nodes, summed across all meta-paths
/// from the target type to `father`, and keeps the top `budget`.
///
/// Per path, the bipartite composed adjacency is embedded into a square
/// symmetric block matrix, sym-normalized (A_hat^sym of Eq. 10), and a PPR
/// vector with teleport uniform over `selected_targets` is computed; the
/// father-block entries of the vector are the row sums of Eq. 13.
/// Path composition, normalization, and the PPR / centrality scorer all
/// run on `ctx` (bit-identical for every thread count). `cache`, when
/// non-null, memoizes the composed path adjacencies across calls.
std::vector<int32_t> CondenseFatherType(
    const HeteroGraph& g, TypeId father,
    const std::vector<MetaPath>& paths_to_father,
    const std::vector<int32_t>& selected_targets, int32_t budget,
    const NimOptions& opts, exec::ExecContext* ctx = nullptr,
    AdjacencyCache* cache = nullptr);

/// Result of Information-Loss-Minimizing leaf synthesis (Eqs. 14-16).
struct LeafSynthesis {
  /// Hyper-node features: mean of member features (sigma of Eq. 14).
  Matrix features;
  /// Original leaf ids aggregated into each hyper-node.
  std::vector<std::vector<int32_t>> members;
};

/// Information Loss Minimization (Eqs. 14-16): for every kept father node,
/// aggregates its 1-hop leaf-type neighbours into one hyper-node whose
/// feature is their mean; hyper-nodes beyond the budget are merged
/// smallest-first ("for synthetic nodes with lower degrees, we prioritize
/// further condensation"). The member lists implicitly encode Eq. 15's
/// reverse edges: any relation touching the leaf type is rebuilt through
/// the membership map, so a hyper-node stays connected to *every* father
/// adjacent to any of its members (preserving father-father 2-hop paths).
///
/// `kept_fathers` pairs each father type with its kept node list.
/// Hyper-node feature means (one disjoint output row each) run on `ctx`.
LeafSynthesis SynthesizeLeafType(
    const HeteroGraph& g, TypeId leaf,
    const std::vector<std::pair<TypeId, const std::vector<int32_t>*>>&
        kept_fathers,
    int32_t budget, exec::ExecContext* ctx = nullptr);

}  // namespace freehgc::core

#endif  // FREEHGC_CORE_OTHER_TYPES_H_
