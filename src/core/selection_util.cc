#include "core/selection_util.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"

namespace freehgc::core {

std::vector<int32_t> RandomSelect(const std::vector<int32_t>& pool,
                                  int32_t budget, uint64_t seed) {
  Rng rng(seed);
  const int32_t n = static_cast<int32_t>(pool.size());
  std::vector<int32_t> picks =
      rng.SampleWithoutReplacement(n, std::min(budget, n));
  std::vector<int32_t> out;
  out.reserve(picks.size());
  for (int32_t i : picks) out.push_back(pool[static_cast<size_t>(i)]);
  return out;
}

std::vector<int32_t> HerdingSelect(const Matrix& features,
                                   const std::vector<int32_t>& pool,
                                   int32_t budget) {
  const int32_t n = static_cast<int32_t>(pool.size());
  const int32_t k = std::min(budget, n);
  if (k <= 0) return {};
  const int64_t d = features.cols();

  std::vector<float> mean = dense::ColumnMean(features, pool);
  // Herding state: target = (t+1) * mean - sum(selected features); pick the
  // pool element closest to the current target direction.
  std::vector<float> selected_sum(static_cast<size_t>(d), 0.0f);
  std::vector<bool> used(pool.size(), false);
  std::vector<int32_t> out;
  out.reserve(static_cast<size_t>(k));
  for (int32_t t = 0; t < k; ++t) {
    float best_score = -std::numeric_limits<float>::infinity();
    int32_t best = -1;
    for (size_t i = 0; i < pool.size(); ++i) {
      if (used[i]) continue;
      const float* row = features.Row(pool[i]);
      // score = <w, x_i> where w = (t+1)*mean - selected_sum.
      float score = 0.0f;
      for (int64_t c = 0; c < d; ++c) {
        const float w = static_cast<float>(t + 1) *
                            mean[static_cast<size_t>(c)] -
                        selected_sum[static_cast<size_t>(c)];
        score += w * row[c];
      }
      if (score > best_score) {
        best_score = score;
        best = static_cast<int32_t>(i);
      }
    }
    FREEHGC_CHECK(best >= 0);
    used[static_cast<size_t>(best)] = true;
    const float* row = features.Row(pool[static_cast<size_t>(best)]);
    for (int64_t c = 0; c < d; ++c) {
      selected_sum[static_cast<size_t>(c)] += row[c];
    }
    out.push_back(pool[static_cast<size_t>(best)]);
  }
  return out;
}

std::vector<int32_t> KCenterSelect(const Matrix& features,
                                   const std::vector<int32_t>& pool,
                                   int32_t budget, uint64_t seed) {
  const int32_t n = static_cast<int32_t>(pool.size());
  const int32_t k = std::min(budget, n);
  if (k <= 0) return {};
  Rng rng(seed);
  std::vector<float> min_dist(pool.size(),
                              std::numeric_limits<float>::infinity());
  std::vector<int32_t> out;
  out.reserve(static_cast<size_t>(k));
  int32_t cur = static_cast<int32_t>(rng.NextBounded(pool.size()));
  for (int32_t t = 0; t < k; ++t) {
    out.push_back(pool[static_cast<size_t>(cur)]);
    // Update distances to nearest selected center; next center is the
    // farthest point.
    float far_dist = -1.0f;
    int32_t far = cur;
    for (size_t i = 0; i < pool.size(); ++i) {
      const float dist = dense::RowSquaredDistance(
          features, pool[i], features, pool[static_cast<size_t>(cur)]);
      if (dist < min_dist[i]) min_dist[i] = dist;
      if (min_dist[i] > far_dist) {
        far_dist = min_dist[i];
        far = static_cast<int32_t>(i);
      }
    }
    cur = far;
  }
  return out;
}

std::vector<int32_t> PerClassBudget(const std::vector<int32_t>& labels,
                                    const std::vector<int32_t>& pool,
                                    int32_t num_classes, int32_t budget) {
  std::vector<int32_t> counts(static_cast<size_t>(num_classes), 0);
  for (int32_t v : pool) ++counts[static_cast<size_t>(labels[static_cast<size_t>(v)])];
  const int64_t total = static_cast<int64_t>(pool.size());
  std::vector<int32_t> out(static_cast<size_t>(num_classes), 0);
  if (total == 0 || budget <= 0) return out;
  int32_t assigned = 0;
  for (int32_t c = 0; c < num_classes; ++c) {
    if (counts[static_cast<size_t>(c)] == 0) continue;
    int32_t b = static_cast<int32_t>(std::lround(
        static_cast<double>(budget) * counts[static_cast<size_t>(c)] /
        static_cast<double>(total)));
    b = std::max<int32_t>(1, std::min(b, counts[static_cast<size_t>(c)]));
    out[static_cast<size_t>(c)] = b;
    assigned += b;
  }
  // Adjust rounding drift toward the exact budget where possible.
  int32_t drift = assigned - budget;
  for (int32_t c = 0; drift != 0 && c < num_classes; ++c) {
    auto& b = out[static_cast<size_t>(c)];
    if (drift > 0 && b > 1) {
      --b;
      --drift;
    } else if (drift < 0 && b > 0 && b < counts[static_cast<size_t>(c)]) {
      ++b;
      ++drift;
    }
  }
  return out;
}

std::vector<int32_t> PoolOfClass(const std::vector<int32_t>& labels,
                                 const std::vector<int32_t>& pool,
                                 int32_t c) {
  std::vector<int32_t> out;
  for (int32_t v : pool) {
    if (labels[static_cast<size_t>(v)] == c) out.push_back(v);
  }
  return out;
}

}  // namespace freehgc::core
