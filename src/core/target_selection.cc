#include "core/target_selection.h"

#include <algorithm>
#include <map>
#include <memory>
#include <queue>

#include "common/logging.h"
#include "common/rng.h"
#include "core/selection_util.h"
#include "sparse/ops.h"

namespace freehgc::core {

std::vector<int32_t> PruneUninfluentialByWalks(
    const CsrMatrix& adj, const std::vector<int32_t>& pool,
    double prune_fraction, int walks, int length, uint64_t seed) {
  if (prune_fraction <= 0.0 || pool.size() < 4) return pool;
  const CsrMatrix adj_t = sparse::Transpose(adj);
  Rng rng(seed);
  std::vector<std::pair<int64_t, int32_t>> scored;  // (visits, node)
  scored.reserve(pool.size());
  std::vector<int32_t> visited;
  for (int32_t v : pool) {
    visited.clear();
    for (int w = 0; w < walks; ++w) {
      int32_t row = v;
      for (int step = 0; step < length; ++step) {
        const auto cols = adj.RowIndices(row);
        if (cols.empty()) break;
        const int32_t col = cols[static_cast<size_t>(
            rng.NextBounded(cols.size()))];
        visited.push_back(col);
        const auto rows = adj_t.RowIndices(col);
        if (rows.empty()) break;
        row = rows[static_cast<size_t>(rng.NextBounded(rows.size()))];
      }
    }
    std::sort(visited.begin(), visited.end());
    const int64_t distinct = static_cast<int64_t>(
        std::unique(visited.begin(), visited.end()) - visited.begin());
    scored.push_back({distinct, v});
  }
  std::stable_sort(scored.begin(), scored.end(),
                   [](const auto& a, const auto& b) {
                     return a.first > b.first;
                   });
  const size_t keep = std::max<size_t>(
      2, static_cast<size_t>((1.0 - prune_fraction) * pool.size()));
  std::vector<int32_t> out;
  out.reserve(keep);
  for (size_t i = 0; i < keep && i < scored.size(); ++i) {
    out.push_back(scored[i].second);
  }
  std::sort(out.begin(), out.end());
  return out;
}

namespace {

/// Lazy-greedy priority-queue entry: cached (possibly stale) gain for a
/// candidate node.
struct Candidate {
  double gain;
  int32_t node;
  int64_t computed_at;  // selection round the gain was computed in

  bool operator<(const Candidate& other) const {
    return gain < other.gain;  // max-heap
  }
};

}  // namespace

std::vector<int32_t> GreedyCoverageSelect(
    const CsrMatrix& adj, const std::vector<int32_t>& pool, int32_t budget,
    const std::vector<float>* diversity, bool use_coverage,
    std::vector<double>* gains_out, exec::ExecContext* ctx) {
  const int32_t k =
      std::min<int32_t>(budget, static_cast<int32_t>(pool.size()));
  if (gains_out != nullptr) gains_out->clear();
  if (k <= 0) return {};

  // Normalization factor |R_hat| of Eq. 8: the number of source-type
  // nodes, exactly as the paper chooses it.
  const double inv_cols =
      adj.cols() > 0 ? 1.0 / static_cast<double>(adj.cols()) : 0.0;
  std::vector<uint8_t> covered(static_cast<size_t>(adj.cols()), 0);

  auto node_gain = [&](int32_t v) {
    double gain = 0.0;
    if (use_coverage) {
      int64_t fresh = 0;
      for (int32_t c : adj.RowIndices(v)) {
        if (!covered[static_cast<size_t>(c)]) ++fresh;
      }
      gain += static_cast<double>(fresh) * inv_cols;
    }
    if (diversity != nullptr) {
      gain += (*diversity)[static_cast<size_t>(v)];
    }
    return gain;
  };

  // Round-0 gains see an empty coverage set, so every candidate is
  // independent: compute them in parallel, then heap-push in pool order
  // (identical heap state to the sequential code).
  std::vector<double> init_gain(pool.size());
  exec::Resolve(ctx).ParallelFor(
      static_cast<int64_t>(pool.size()), 256,
      [&](int64_t begin, int64_t end, exec::Workspace&) {
        for (int64_t i = begin; i < end; ++i) {
          init_gain[static_cast<size_t>(i)] =
              node_gain(pool[static_cast<size_t>(i)]);
        }
      });
  std::priority_queue<Candidate> heap;
  for (size_t i = 0; i < pool.size(); ++i) {
    heap.push({init_gain[i], pool[i], 0});
  }

  std::vector<int32_t> out;
  out.reserve(static_cast<size_t>(k));
  int64_t round = 0;
  while (static_cast<int32_t>(out.size()) < k && !heap.empty()) {
    Candidate top = heap.top();
    heap.pop();
    if (top.computed_at != round) {
      // Stale: coverage can only have shrunk. Recompute and reinsert.
      top.gain = node_gain(top.node);
      top.computed_at = round;
      heap.push(top);
      continue;
    }
    out.push_back(top.node);
    if (gains_out != nullptr) gains_out->push_back(top.gain);
    for (int32_t c : adj.RowIndices(top.node)) {
      covered[static_cast<size_t>(c)] = 1;
    }
    ++round;
  }
  return out;
}

std::vector<int32_t> CondenseTargetNodes(const HeteroGraph& g,
                                         const std::vector<MetaPath>& paths,
                                         int32_t budget,
                                         const TargetSelectionOptions& opts,
                                         std::vector<double>* scores_out,
                                         exec::ExecContext* ctx,
                                         AdjacencyCache* cache) {
  const TypeId target = g.target_type();
  FREEHGC_CHECK(target >= 0);
  exec::ExecContext& ex = exec::Resolve(ctx);
  const int32_t n_target = g.NodeCount(target);
  const std::vector<int32_t>& labels = g.labels();
  const std::vector<int32_t>& pool = g.train_index();
  const int32_t num_classes = g.num_classes();

  std::vector<double> score(static_cast<size_t>(n_target), 0.0);

  // Compose every meta-path adjacency once (through the cache when one is
  // supplied), grouped by end type for the Jaccard term (Eq. 6 compares
  // paths sharing source and target types).
  std::map<TypeId, std::vector<size_t>> group_of_end;
  // Every path's adjacency is used across the whole selection loop, so
  // the pins are held for the function's duration (a budgeted cache can
  // only spill them after we return).
  std::vector<std::shared_ptr<const CsrMatrix>> pins;
  std::vector<const CsrMatrix*> composed;
  pins.reserve(paths.size());
  composed.reserve(paths.size());
  for (size_t i = 0; i < paths.size(); ++i) {
    FREEHGC_CHECK(paths[i].start_type() == target);
    pins.push_back(
        ComposedAdjacency(cache, g, paths[i], opts.max_row_nnz, &ex));
    composed.push_back(pins.back().get());
    group_of_end[paths[i].end_type()].push_back(i);
  }

  // Per-path per-node diversity 1 - J_hat (Eq. 7); zero when disabled or
  // the path is alone in its group.
  std::vector<std::vector<float>> diversity(paths.size());
  if (opts.use_jaccard) {
    for (const auto& [end, members] : group_of_end) {
      std::vector<const CsrMatrix*> group;
      for (size_t i : members) group.push_back(composed[i]);
      const auto jac = PerPathJaccard(group, &ex);
      for (size_t gi = 0; gi < members.size(); ++gi) {
        auto& div = diversity[members[gi]];
        div.resize(static_cast<size_t>(n_target));
        for (int32_t v = 0; v < n_target; ++v) {
          div[static_cast<size_t>(v)] =
              1.0f - jac[gi][static_cast<size_t>(v)];
        }
      }
    }
  }

  const std::vector<int32_t> class_budget =
      PerClassBudget(labels, pool, num_classes, budget);

  // Algorithm 1's double loop: per meta-path, per class, greedy-select and
  // accumulate marginal-gain scores.
  for (size_t m = 0; m < composed.size(); ++m) {
    const std::vector<float>* div =
        (opts.use_jaccard && !diversity[m].empty()) ? &diversity[m]
                                                    : nullptr;
    if (!opts.use_receptive_field && div == nullptr) {
      // Both terms disabled (degenerate ablation): fall back to degree.
      for (int32_t v : pool) {
        score[static_cast<size_t>(v)] +=
            static_cast<double>(composed[m]->RowNnz(v));
      }
      continue;
    }
    for (int32_t c = 0; c < num_classes; ++c) {
      std::vector<int32_t> class_pool = PoolOfClass(labels, pool, c);
      if (class_pool.empty()) continue;
      if (opts.walk_prune_fraction > 0.0) {
        class_pool = PruneUninfluentialByWalks(
            *composed[m], class_pool, opts.walk_prune_fraction,
            opts.walk_count, opts.walk_length,
            opts.seed ^ (m * 131 + c));
      }
      std::vector<double> gains;
      const std::vector<int32_t> picked = GreedyCoverageSelect(
          *composed[m], class_pool, class_budget[static_cast<size_t>(c)],
          div, opts.use_receptive_field, &gains, &ex);
      for (size_t i = 0; i < picked.size(); ++i) {
        score[static_cast<size_t>(picked[i])] += gains[i];
      }
    }
  }

  // Eq. 9: class-by-class top-k on the aggregated scores, preserving the
  // original class proportions.
  std::vector<int32_t> out;
  for (int32_t c = 0; c < num_classes; ++c) {
    std::vector<int32_t> class_pool = PoolOfClass(labels, pool, c);
    const int32_t bc = class_budget[static_cast<size_t>(c)];
    if (bc <= 0 || class_pool.empty()) continue;
    std::stable_sort(class_pool.begin(), class_pool.end(),
                     [&](int32_t a, int32_t b) {
                       return score[static_cast<size_t>(a)] >
                              score[static_cast<size_t>(b)];
                     });
    class_pool.resize(
        std::min<size_t>(class_pool.size(), static_cast<size_t>(bc)));
    out.insert(out.end(), class_pool.begin(), class_pool.end());
  }
  std::sort(out.begin(), out.end());
  if (scores_out != nullptr) *scores_out = std::move(score);
  return out;
}

}  // namespace freehgc::core
