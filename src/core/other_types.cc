#include "core/other_types.h"

#include <algorithm>
#include <memory>
#include <numeric>
#include <queue>
#include <unordered_set>

#include "common/logging.h"
#include "sparse/centrality.h"
#include "sparse/ops.h"

namespace freehgc::core {

const char* NimScorerName(NimScorer scorer) {
  switch (scorer) {
    case NimScorer::kPprPowerIteration:
      return "ppr";
    case NimScorer::kPprPush:
      return "ppr-push";
    case NimScorer::kDegree:
      return "degree";
    case NimScorer::kCloseness:
      return "closeness";
    case NimScorer::kBetweenness:
      return "betweenness";
    case NimScorer::kHubs:
      return "hubs";
    case NimScorer::kAuthorities:
      return "authorities";
  }
  return "?";
}

namespace {

/// Embeds a bipartite (nt x ns) matrix into the square symmetric block
/// matrix [[0, A], [A^T, 0]] of size (nt + ns).
CsrMatrix BipartiteBlock(const CsrMatrix& a) {
  const int32_t nt = a.rows();
  const int32_t ns = a.cols();
  std::vector<CooEntry> entries;
  entries.reserve(static_cast<size_t>(2 * a.nnz()));
  for (int32_t r = 0; r < nt; ++r) {
    auto idx = a.RowIndices(r);
    auto val = a.RowValues(r);
    for (size_t k = 0; k < idx.size(); ++k) {
      entries.push_back({r, nt + idx[k], val[k]});
      entries.push_back({nt + idx[k], r, val[k]});
    }
  }
  auto res = CsrMatrix::FromCoo(nt + ns, nt + ns, std::move(entries));
  FREEHGC_CHECK(res.ok());
  return std::move(res).value();
}

}  // namespace

std::vector<int32_t> CondenseFatherType(
    const HeteroGraph& g, TypeId father,
    const std::vector<MetaPath>& paths_to_father,
    const std::vector<int32_t>& selected_targets, int32_t budget,
    const NimOptions& opts, exec::ExecContext* ctx, AdjacencyCache* cache) {
  const TypeId target = g.target_type();
  FREEHGC_CHECK(target >= 0);
  exec::ExecContext& ex = exec::Resolve(ctx);
  const int32_t nt = g.NodeCount(target);
  const int32_t ns = g.NodeCount(father);
  const int32_t k = std::min(budget, ns);
  if (k <= 0) return {};

  std::vector<double> influence(static_cast<size_t>(ns), 0.0);
  const float teleport_mass =
      selected_targets.empty()
          ? 0.0f
          : 1.0f / static_cast<float>(selected_targets.size());

  bool any_path = false;
  for (const auto& p : paths_to_father) {
    if (p.end_type() != father || p.start_type() != target) continue;
    any_path = true;
    // Pin held for one score only; released (spillable) per iteration.
    const std::shared_ptr<const CsrMatrix> composed_pin =
        ComposedAdjacency(cache, g, p, opts.max_row_nnz, &ex);
    const CsrMatrix& composed = *composed_pin;
    const CsrMatrix raw_block = BipartiteBlock(composed);
    switch (opts.scorer) {
      case NimScorer::kPprPowerIteration: {
        const CsrMatrix block = sparse::SymNormalize(raw_block, &ex);
        std::vector<float> teleport(static_cast<size_t>(nt + ns), 0.0f);
        for (int32_t t : selected_targets) {
          teleport[static_cast<size_t>(t)] = teleport_mass;
        }
        // The bipartite block is bit-exactly symmetric: BipartiteBlock
        // mirrors each entry with the same value, and SymNormalize scales
        // mirror entries by the same single-rounded inv_sqrt product. So
        // PPR can iterate over the block itself instead of materializing
        // its transpose — at graph scale that transient (the transposed
        // copy plus its column histograms) is larger than the block.
        const std::vector<float> pi =
            sparse::PprScores(block, teleport, opts.alpha, opts.max_iters,
                              1e-6f, &ex, /*symmetric=*/true);
        for (int32_t j = 0; j < ns; ++j) {
          influence[static_cast<size_t>(j)] +=
              static_cast<double>(pi[static_cast<size_t>(nt + j)]);
        }
        break;
      }
      case NimScorer::kPprPush: {
        std::vector<std::pair<int32_t, float>> teleport;
        teleport.reserve(selected_targets.size());
        for (int32_t t : selected_targets) {
          teleport.push_back({t, teleport_mass});
        }
        const std::vector<float> pi = sparse::PprPush(
            raw_block, teleport, opts.alpha, opts.push_epsilon);
        for (int32_t j = 0; j < ns; ++j) {
          influence[static_cast<size_t>(j)] +=
              static_cast<double>(pi[static_cast<size_t>(nt + j)]);
        }
        break;
      }
      default: {
        // Target-independent centrality replacements.
        sparse::CentralityKind kind = sparse::CentralityKind::kDegree;
        if (opts.scorer == NimScorer::kCloseness) {
          kind = sparse::CentralityKind::kCloseness;
        } else if (opts.scorer == NimScorer::kBetweenness) {
          kind = sparse::CentralityKind::kBetweenness;
        } else if (opts.scorer == NimScorer::kHubs) {
          kind = sparse::CentralityKind::kHubs;
        } else if (opts.scorer == NimScorer::kAuthorities) {
          kind = sparse::CentralityKind::kAuthorities;
        }
        const std::vector<double> c =
            sparse::Centrality(raw_block, kind, {}, &ex);
        for (int32_t j = 0; j < ns; ++j) {
          influence[static_cast<size_t>(j)] += c[static_cast<size_t>(nt + j)];
        }
        break;
      }
    }
  }
  if (!any_path) {
    // No meta-path reaches this type (disconnected schema); fall back to
    // degree so the budget is still honoured.
    for (RelationId r : g.RelationsFrom(father)) {
      const auto deg = g.relation(r).adj.RowDegrees();
      for (int32_t j = 0; j < ns; ++j) {
        influence[static_cast<size_t>(j)] +=
            static_cast<double>(deg[static_cast<size_t>(j)]);
      }
    }
  }

  std::vector<int32_t> order(static_cast<size_t>(ns));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int32_t a, int32_t b) {
    return influence[static_cast<size_t>(a)] >
           influence[static_cast<size_t>(b)];
  });
  order.resize(static_cast<size_t>(k));
  std::sort(order.begin(), order.end());
  return order;
}

LeafSynthesis SynthesizeLeafType(
    const HeteroGraph& g, TypeId leaf,
    const std::vector<std::pair<TypeId, const std::vector<int32_t>*>>&
        kept_fathers,
    int32_t budget, exec::ExecContext* ctx) {
  LeafSynthesis out;
  const int32_t nl = g.NodeCount(leaf);
  if (nl == 0 || budget <= 0) {
    out.features = Matrix(0, g.Features(leaf).cols());
    return out;
  }

  // Eq. 14: one hyper-node per kept father node, aggregating its 1-hop
  // leaf neighbours over every father->leaf relation.
  std::vector<std::vector<int32_t>> hypers;
  for (const auto& [father, kept] : kept_fathers) {
    std::vector<RelationId> rels;
    for (RelationId r = 0; r < g.NumRelations(); ++r) {
      if (g.relation(r).src_type == father &&
          g.relation(r).dst_type == leaf) {
        rels.push_back(r);
      }
    }
    if (rels.empty()) continue;
    for (int32_t i : *kept) {
      std::vector<int32_t> members;
      for (RelationId r : rels) {
        auto idx = g.relation(r).adj.RowIndices(i);
        members.insert(members.end(), idx.begin(), idx.end());
      }
      std::sort(members.begin(), members.end());
      members.erase(std::unique(members.begin(), members.end()),
                    members.end());
      if (!members.empty()) hypers.push_back(std::move(members));
    }
  }

  if (hypers.empty()) {
    // Leaf unreachable from any kept father: keep the highest-degree leaf
    // nodes as singleton hyper-nodes so the type is still represented.
    std::vector<int64_t> deg(static_cast<size_t>(nl), 0);
    for (RelationId r = 0; r < g.NumRelations(); ++r) {
      if (g.relation(r).src_type != leaf) continue;
      const auto d = g.relation(r).adj.RowDegrees();
      for (int32_t v = 0; v < nl; ++v) deg[static_cast<size_t>(v)] += d[static_cast<size_t>(v)];
    }
    std::vector<int32_t> order(static_cast<size_t>(nl));
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](int32_t a, int32_t b) {
      return deg[static_cast<size_t>(a)] > deg[static_cast<size_t>(b)];
    });
    order.resize(std::min<size_t>(order.size(),
                                  static_cast<size_t>(budget)));
    for (int32_t v : order) hypers.push_back({v});
  }

  // Merge smallest-first down to the budget (min-heap on member count;
  // merging two hyper-nodes unions their member sets).
  using Entry = std::pair<size_t, size_t>;  // (member count, hyper index)
  auto cmp = [](const Entry& a, const Entry& b) { return a.first > b.first; };
  std::priority_queue<Entry, std::vector<Entry>, decltype(cmp)> heap(cmp);
  std::vector<bool> alive(hypers.size(), true);
  for (size_t i = 0; i < hypers.size(); ++i) heap.push({hypers[i].size(), i});
  size_t live_count = hypers.size();
  while (live_count > static_cast<size_t>(budget) && heap.size() >= 2) {
    Entry a = heap.top();
    heap.pop();
    if (!alive[a.second] || a.first != hypers[a.second].size()) continue;
    Entry b = heap.top();
    heap.pop();
    if (!alive[b.second] || b.first != hypers[b.second].size()) {
      heap.push(a);
      continue;
    }
    // Merge b into a.
    auto& ma = hypers[a.second];
    auto& mb = hypers[b.second];
    std::vector<int32_t> merged;
    merged.reserve(ma.size() + mb.size());
    std::merge(ma.begin(), ma.end(), mb.begin(), mb.end(),
               std::back_inserter(merged));
    merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
    ma = std::move(merged);
    mb.clear();
    alive[b.second] = false;
    --live_count;
    heap.push({hypers[a.second].size(), a.second});
  }

  const Matrix& leaf_features = g.Features(leaf);
  const int64_t d = leaf_features.cols();
  std::vector<std::vector<int32_t>> final_members;
  for (size_t i = 0; i < hypers.size(); ++i) {
    if (alive[i] && !hypers[i].empty()) {
      final_members.push_back(std::move(hypers[i]));
    }
  }
  out.features = Matrix(static_cast<int64_t>(final_members.size()), d);
  // Each hyper-node's mean writes one disjoint output row.
  exec::Resolve(ctx).ParallelFor(
      static_cast<int64_t>(final_members.size()), 16,
      [&](int64_t begin, int64_t end, exec::Workspace&) {
        for (int64_t k = begin; k < end; ++k) {
          const std::vector<float> mean = dense::ColumnMean(
              leaf_features, final_members[static_cast<size_t>(k)]);
          std::copy(mean.begin(), mean.end(), out.features.Row(k));
        }
      });
  out.members = std::move(final_members);
  return out;
}

}  // namespace freehgc::core
