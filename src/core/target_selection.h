#ifndef FREEHGC_CORE_TARGET_SELECTION_H_
#define FREEHGC_CORE_TARGET_SELECTION_H_

#include <cstdint>
#include <vector>

#include "exec/exec_context.h"
#include "graph/hetero_graph.h"
#include "metapath/metapath.h"

namespace freehgc::core {

/// Controls for the unified data-selection criterion of Section IV-B
/// (Eqs. 2-9). The two booleans are the Table VIII ablation switches.
struct TargetSelectionOptions {
  /// Row-nnz budget for composed meta-path adjacencies (0 = exact).
  int64_t max_row_nnz = 512;
  /// Include the receptive-field maximization term R(S) (Variant#1
  /// disables this).
  bool use_receptive_field = true;
  /// Include the meta-path similarity minimization term 1 - J(S)
  /// (Variant#2 disables this).
  bool use_jaccard = true;
  /// Random-walk candidate pruning (the paper's scalability note: "use
  /// random walks to identify and eliminate uninfluential nodes to greatly
  /// decrease the computational workload"). Before the greedy loop, each
  /// candidate's influence is estimated by short random walks and the
  /// bottom `walk_prune_fraction` of the pool is dropped. 0 disables.
  double walk_prune_fraction = 0.0;
  int walk_count = 4;
  int walk_length = 3;
  uint64_t seed = 1;
};

/// Estimates each pool node's influence with `walks` random walks of
/// `length` steps over the bipartite reach graph (row -> random reached
/// column -> random incident row -> ...) and returns the pool restricted
/// to the top (1 - prune_fraction) estimated-influence candidates.
/// Exposed for tests and the scalability bench.
std::vector<int32_t> PruneUninfluentialByWalks(
    const CsrMatrix& adj, const std::vector<int32_t>& pool,
    double prune_fraction, int walks, int length, uint64_t seed);

/// Algorithm 1: condense target-type nodes.
///
/// For every meta-path, runs class-wise lazy-greedy maximization of the
/// unified submodular objective
///   F(S) = R(S)/|R_hat| + (1 - J(S))               (Eq. 8)
/// over the training pool, accumulating each node's marginal-gain score;
/// the final selection takes, class by class (preserving the original
/// class distribution), the top-scored nodes across all meta-paths
/// (Eq. 9).
///
/// `paths` must all start at the target type. Returns original target-node
/// ids, |result| == min(budget, train pool size). `scores_out`, when non
/// null, receives the aggregated per-node score (0 for never-selected
/// nodes) — used by the Fig. 9 interpretability bench.
/// Path composition, the Jaccard diversity term, and the initial greedy
/// gain pass run on `ctx`; the lazy-greedy loop itself is sequential (its
/// order is the algorithm). Bit-identical for every thread count.
/// `cache`, when non-null, memoizes the composed path adjacencies (they
/// are seed/ratio-independent, so sweeps share them across cells).
std::vector<int32_t> CondenseTargetNodes(const HeteroGraph& g,
                                         const std::vector<MetaPath>& paths,
                                         int32_t budget,
                                         const TargetSelectionOptions& opts,
                                         std::vector<double>* scores_out =
                                             nullptr,
                                         exec::ExecContext* ctx = nullptr,
                                         AdjacencyCache* cache = nullptr);

/// Lazy-greedy maximization of coverage + modular diversity for a single
/// composed meta-path adjacency: selects `budget` rows from `pool`
/// maximizing |union of selected rows' column sets| / adj.cols()
/// (+ diversity[v] per selected v). Exposed for tests (submodularity
/// properties) and the Fig. 9 bench. `gains_out`, when non-null, receives
/// each selected node's marginal gain in selection order.
/// The initial heap population (every candidate's gain against an empty
/// selection) is embarrassingly parallel and runs on `ctx`; heap pushes
/// happen in pool order afterwards, so results match the sequential code
/// exactly.
std::vector<int32_t> GreedyCoverageSelect(
    const CsrMatrix& adj, const std::vector<int32_t>& pool, int32_t budget,
    const std::vector<float>* diversity, bool use_coverage,
    std::vector<double>* gains_out = nullptr,
    exec::ExecContext* ctx = nullptr);

}  // namespace freehgc::core

#endif  // FREEHGC_CORE_TARGET_SELECTION_H_
