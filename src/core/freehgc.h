#ifndef FREEHGC_CORE_FREEHGC_H_
#define FREEHGC_CORE_FREEHGC_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "core/other_types.h"
#include "core/target_selection.h"
#include "dense/matrix.h"
#include "exec/exec_context.h"
#include "graph/hetero_graph.h"

namespace freehgc::core {

/// How target-type nodes are chosen. kCriterion is FreeHGC's unified data
/// selection criterion (Alg. 1); the others exist for the Table VIII
/// ablations (Variant#3 = kHerding).
enum class TargetStrategy { kCriterion, kHerding, kRandom };

/// How father-type nodes are chosen. kNim is FreeHGC's neighbor influence
/// maximization; kHerding/kRandom are ablation fallbacks (Variants #5/#6).
enum class FatherStrategy { kNim, kHerding, kRandom };

/// How leaf-type nodes are condensed. kIlm synthesizes hyper-nodes
/// (information loss minimization); kHerding/kRandom select originals
/// (Variants #4/#6).
enum class LeafStrategy { kIlm, kHerding, kRandom };

/// Full configuration of the FreeHGC pipeline. Defaults reproduce the
/// paper's method; the strategy enums and the two booleans inside `target`
/// are the ablation switches.
struct FreeHgcOptions {
  /// Condensation ratio r: every node type keeps ~r * N_type nodes.
  double ratio = 0.024;
  /// Meta-path generation: maximum hops K and path-count cap.
  int max_hops = 2;
  int max_paths = 24;
  /// Row-nnz budget for composed adjacencies (0 = exact).
  int64_t max_row_nnz = 512;
  TargetSelectionOptions target;
  NimOptions nim;
  TargetStrategy target_strategy = TargetStrategy::kCriterion;
  FatherStrategy father_strategy = FatherStrategy::kNim;
  LeafStrategy leaf_strategy = LeafStrategy::kIlm;
  uint64_t seed = 1;
  /// Worker count for the execution context the pipeline runs on.
  /// 0 = the FREEHGC_THREADS environment override, falling back to the
  /// hardware concurrency. The condensed result is bit-identical for
  /// every value (see DESIGN.md, "Execution layer").
  int num_threads = 0;
};

/// Wall-clock breakdown of one Condense call across its five pipeline
/// stages. Total() tracks CondensedResult::seconds to within the cost of
/// option validation and context setup (the stages cover everything
/// else), which is what makes the Fig. 8 efficiency claim attributable:
/// benches report *where* the condensation time goes, not just how much.
struct StageSeconds {
  double metapath = 0.0;  // meta-path enumeration (Section IV-A)
  double target = 0.0;    // target-node selection (Algorithm 1)
  double father = 0.0;    // father-type NIM selection (Algorithm 2)
  double leaf = 0.0;      // leaf-type ILM synthesis (Algorithm 2)
  double assemble = 0.0;  // condensed-graph assembly (Eq. 15)

  double Total() const {
    return metapath + target + father + leaf + assemble;
  }
};

/// Output of a condensation run.
struct CondensedResult {
  /// The condensed heterogeneous graph (same schema as the input; all
  /// target nodes marked as training examples).
  HeteroGraph graph;
  /// Selected target-type node ids in the original graph.
  std::vector<int32_t> selected_target;
  /// Per-type kept original ids (empty for synthesized leaf types).
  std::vector<std::vector<int32_t>> kept_per_type;
  /// Wall-clock seconds spent condensing (the paper's efficiency metric).
  double seconds = 0.0;
  /// Per-stage breakdown of `seconds`.
  StageSeconds stage_seconds;
};

/// Runs the full FreeHGC pipeline (Algorithms 1 + 2) on `g`:
///   1. enumerate meta-paths (general meta-paths generation model),
///   2. select target nodes with the unified criterion,
///   3. select father-type nodes by neighbor influence maximization,
///   4. synthesize leaf-type hyper-nodes by information loss
///      minimization,
///   5. assemble the condensed graph.
/// Training-free: no model parameters are ever instantiated.
/// When `ctx` is non-null it overrides `opts.num_threads`. With ctx ==
/// nullptr and opts.num_threads == 0 the call runs on the process-wide
/// DefaultExec() pool (same thread resolution, no per-call pool spin-up —
/// sweeps run many Condense calls); only an explicit opts.num_threads > 0
/// builds a dedicated pool for the call.
/// `cache`, when non-null, memoizes composed meta-path adjacencies: they
/// depend only on (graph, path, max_row_nnz) — not on ratio or seed — so
/// repeated runs skip the dominant SpGEMM cost. Cached and uncached runs
/// produce bit-identical results (the cache stores exact outputs of
/// deterministic computations; tests/pipeline_test.cc enforces this).
Result<CondensedResult> Condense(const HeteroGraph& g,
                                 const FreeHgcOptions& opts,
                                 exec::ExecContext* ctx = nullptr,
                                 AdjacencyCache* cache = nullptr);

/// Per-type rebuild rule used when assembling the condensed graph: either
/// a keep-list of original ids, or hyper-node member sets plus synthetic
/// features.
struct TypeMapping {
  bool synthesized = false;
  std::vector<int32_t> keep;                  // !synthesized
  std::vector<std::vector<int32_t>> members;  // synthesized
  Matrix synthetic_features;                  // synthesized
};

/// Rebuilds a HeteroGraph under per-type mappings: relations between kept
/// types become induced submatrices; relations touching synthesized types
/// are routed through the membership map, with parallel edges collapsing
/// into summed weights (this realizes Eq. 15's reverse-edge construction).
/// Exposed for tests.
Result<HeteroGraph> AssembleCondensedGraph(
    const HeteroGraph& g, const std::vector<TypeMapping>& mappings);

}  // namespace freehgc::core

#endif  // FREEHGC_CORE_FREEHGC_H_
