#ifndef FREEHGC_METAPATH_METAPATH_H_
#define FREEHGC_METAPATH_METAPATH_H_

#include <memory>
#include <string>
#include <vector>

#include "exec/exec_context.h"
#include "graph/hetero_graph.h"
#include "sparse/csr.h"

namespace freehgc {

namespace sparse {
class SpGemmPlanCache;
}  // namespace sparse

/// One meta-path P = o_0 <- o_1 <- ... <- o_k: a walk over the relation
/// schema starting at `types[0]`. `relations[i]` connects types[i] (as src)
/// to types[i+1] (as dst).
struct MetaPath {
  std::vector<RelationId> relations;
  std::vector<TypeId> types;  // size() == relations.size() + 1

  int hops() const { return static_cast<int>(relations.size()); }
  TypeId start_type() const { return types.front(); }
  TypeId end_type() const { return types.back(); }

  /// Human-readable form like "paper-author-paper".
  std::string Name(const HeteroGraph& g) const;
};

/// Options for the general meta-path generation model (Section IV-A).
struct MetaPathOptions {
  /// Maximum number of hops K (paper hyper-parameter, Section V-B).
  int max_hops = 2;
  /// When > 0, each composed adjacency row keeps only this many
  /// largest-magnitude entries (budgeted densification for scalability).
  int64_t max_row_nnz = 0;
  /// Upper bound on the number of enumerated paths (safety valve for
  /// schemas with many relations, e.g. Freebase/AM). 0 = unlimited.
  int max_paths = 0;
};

/// Enumerates every meta-path of length 1..max_hops starting at `start`
/// by walking the relation schema (the paper's "general meta-paths
/// generation model": no expert-defined paths). Deterministic order
/// (DFS over relation ids).
std::vector<MetaPath> EnumerateMetaPaths(const HeteroGraph& g, TypeId start,
                                         const MetaPathOptions& opts);

/// Subset of `paths` whose end (source) type is `end`.
std::vector<MetaPath> FilterByEndType(const std::vector<MetaPath>& paths,
                                      TypeId end);

/// Composes the row-normalized meta-path adjacency of Eq. (1):
///   A_hat(P) = A_hat(r_0) * A_hat(r_1) * ... * A_hat(r_{k-1}).
/// Shape: (count(start_type), count(end_type)). The SpGEMM chain runs on
/// `ctx` (row-chunk parallel, bit-identical across thread counts). When
/// `plans` is non-null each SpGEMM serves its symbolic pass from it, so
/// recomposing a path — or composing one sharing a prefix, or the same
/// path at a different max_row_nnz budget (plans are budget-independent)
/// — skips the structure computation. Results are bit-identical with and
/// without plan reuse.
CsrMatrix ComposeAdjacency(const HeteroGraph& g, const MetaPath& p,
                           int64_t max_row_nnz = 0,
                           exec::ExecContext* ctx = nullptr,
                           sparse::SpGemmPlanCache* plans = nullptr);

/// Borrowed memo of composed meta-path adjacencies. ComposeAdjacency is
/// deterministic and seed-independent, so its result can be shared across
/// every (method, ratio, seed) cell of a sweep; kernels that compose paths
/// accept an optional AdjacencyCache* and route through it when present.
/// The canonical implementation is pipeline::ArtifactCache — declaring the
/// interface here keeps core/hgnn free of a pipeline dependency.
///
/// Pinning contract: the returned shared_ptr is a *pin*. The matrix stays
/// valid as long as the caller holds the pointer; a tiered cache may evict
/// (spill) an entry once every outstanding pin is released, so callers
/// keep the pin alive across every use of the matrix and drop it when
/// done. An unbudgeted cache simply never evicts (see DESIGN.md, "Tiered
/// artifact storage" for the ownership/invalidation rules).
class AdjacencyCache {
 public:
  virtual ~AdjacencyCache() = default;

  /// A pin of the composed adjacency of `p` over `g` at the given
  /// row-nnz budget (computed via ComposeAdjacency on miss).
  virtual std::shared_ptr<const CsrMatrix> Composed(const HeteroGraph& g,
                                                    const MetaPath& p,
                                                    int64_t max_row_nnz,
                                                    exec::ExecContext* ctx) = 0;
};

/// Cache-aware accessor used at compose call sites: returns a pin of the
/// cached adjacency when `cache` is non-null, otherwise composes a
/// one-off owned matrix. Either way the matrix lives as long as the
/// returned pointer does.
std::shared_ptr<const CsrMatrix> ComposedAdjacency(AdjacencyCache* cache,
                                                   const HeteroGraph& g,
                                                   const MetaPath& p,
                                                   int64_t max_row_nnz,
                                                   exec::ExecContext* ctx);

/// Per-node average pairwise Jaccard similarity (Eqs. 4-6) among the reach
/// sets of several meta-paths that share start and end types.
///
/// For node v, J_hat(v) = mean over path pairs (i, j) of
///   |RF_i(v) ∩ RF_j(v)| / |RF_i(v) ∪ RF_j(v)|
/// where RF_p(v) is the set of end-type nodes with non-zero entry in row v
/// of path p's composed adjacency. Two empty sets have J = 1 (the paper's
/// convention for |union| = 0). With fewer than two paths the result is
/// all zeros (no duplication possible). Row-parallel over nodes.
std::vector<float> PerNodeJaccard(const std::vector<const CsrMatrix*>& paths,
                                  exec::ExecContext* ctx = nullptr);

/// Per-path refinement of Eq. (6): result[i][v] is the mean Jaccard
/// similarity between path i's reach set of node v and every *other*
/// path's reach set of v, i.e. J_hat(phi_i) evaluated per node. With a
/// single path the result is all zeros. Row-parallel over nodes.
std::vector<std::vector<float>> PerPathJaccard(
    const std::vector<const CsrMatrix*>& paths,
    exec::ExecContext* ctx = nullptr);

/// Jaccard similarity of two sorted index sets.
float JaccardOfSortedSets(std::span<const int32_t> a,
                          std::span<const int32_t> b);

}  // namespace freehgc

#endif  // FREEHGC_METAPATH_METAPATH_H_
