#include "metapath/metapath.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sparse/ops.h"

namespace freehgc {

std::string MetaPath::Name(const HeteroGraph& g) const {
  std::string out = g.TypeName(types.front());
  for (size_t i = 1; i < types.size(); ++i) {
    out += "-";
    out += g.TypeName(types[i]);
  }
  return out;
}

namespace {

void Dfs(const HeteroGraph& g, const MetaPathOptions& opts, MetaPath& cur,
         std::vector<MetaPath>& out) {
  if (opts.max_paths > 0 &&
      static_cast<int>(out.size()) >= opts.max_paths) {
    return;
  }
  if (cur.hops() >= opts.max_hops) return;
  const TypeId tail = cur.types.back();
  for (RelationId r = 0; r < g.NumRelations(); ++r) {
    if (g.relation(r).src_type != tail) continue;
    if (opts.max_paths > 0 &&
        static_cast<int>(out.size()) >= opts.max_paths) {
      return;
    }
    cur.relations.push_back(r);
    cur.types.push_back(g.relation(r).dst_type);
    out.push_back(cur);
    Dfs(g, opts, cur, out);
    cur.relations.pop_back();
    cur.types.pop_back();
  }
}

}  // namespace

std::vector<MetaPath> EnumerateMetaPaths(const HeteroGraph& g, TypeId start,
                                         const MetaPathOptions& opts) {
  FREEHGC_TRACE_SPAN("metapath.enumerate");
  static obs::Counter& enumerated =
      obs::MetricsRegistry::Global().GetCounter("metapath.paths_enumerated");
  std::vector<MetaPath> out;
  MetaPath cur;
  cur.types.push_back(start);
  Dfs(g, opts, cur, out);
  enumerated.Add(static_cast<int64_t>(out.size()));
  return out;
}

std::vector<MetaPath> FilterByEndType(const std::vector<MetaPath>& paths,
                                      TypeId end) {
  std::vector<MetaPath> out;
  for (const auto& p : paths) {
    if (p.end_type() == end) out.push_back(p);
  }
  return out;
}

CsrMatrix ComposeAdjacency(const HeteroGraph& g, const MetaPath& p,
                           int64_t max_row_nnz, exec::ExecContext* ctx,
                           sparse::SpGemmPlanCache* plans) {
  FREEHGC_CHECK(!p.relations.empty());
  FREEHGC_TRACE_SPAN("metapath.compose");
  static obs::Counter& composed =
      obs::MetricsRegistry::Global().GetCounter("metapath.compose_calls");
  composed.Increment();
  exec::ExecContext& ex = exec::Resolve(ctx);
  CsrMatrix acc = sparse::RowNormalize(g.relation(p.relations[0]).adj, &ex);
  for (size_t i = 1; i < p.relations.size(); ++i) {
    const CsrMatrix next =
        sparse::RowNormalize(g.relation(p.relations[i]).adj, &ex);
    acc = sparse::SpGemm(acc, next, max_row_nnz, &ex, plans);
  }
  return acc;
}

std::shared_ptr<const CsrMatrix> ComposedAdjacency(AdjacencyCache* cache,
                                                   const HeteroGraph& g,
                                                   const MetaPath& p,
                                                   int64_t max_row_nnz,
                                                   exec::ExecContext* ctx) {
  if (cache != nullptr) return cache->Composed(g, p, max_row_nnz, ctx);
  return std::make_shared<const CsrMatrix>(
      ComposeAdjacency(g, p, max_row_nnz, ctx));
}

float JaccardOfSortedSets(std::span<const int32_t> a,
                          std::span<const int32_t> b) {
  if (a.empty() && b.empty()) return 1.0f;  // paper convention: |union|=0
  size_t i = 0, j = 0, inter = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++inter;
      ++i;
      ++j;
    }
  }
  const size_t uni = a.size() + b.size() - inter;
  return static_cast<float>(inter) / static_cast<float>(uni);
}

std::vector<std::vector<float>> PerPathJaccard(
    const std::vector<const CsrMatrix*>& paths, exec::ExecContext* ctx) {
  FREEHGC_CHECK(!paths.empty());
  FREEHGC_TRACE_SPAN("metapath.jaccard");
  const int32_t rows = paths[0]->rows();
  for (const auto* p : paths) FREEHGC_CHECK(p->rows() == rows);
  const size_t l = paths.size();
  std::vector<std::vector<float>> out(
      l, std::vector<float>(static_cast<size_t>(rows), 0.0f));
  if (l < 2) return out;
  const float norm = 1.0f / static_cast<float>(l - 1);
  // Each node's pairwise set intersections are independent of every
  // other node's: parallel over node chunks, each writing column v only.
  exec::Resolve(ctx).ParallelFor(
      rows, 128, [&](int64_t begin, int64_t end, exec::Workspace&) {
        for (int64_t v = begin; v < end; ++v) {
          for (size_t i = 0; i < l; ++i) {
            for (size_t j = i + 1; j < l; ++j) {
              const float jac = JaccardOfSortedSets(
                  paths[i]->RowIndices(static_cast<int32_t>(v)),
                  paths[j]->RowIndices(static_cast<int32_t>(v)));
              out[i][static_cast<size_t>(v)] += jac;
              out[j][static_cast<size_t>(v)] += jac;
            }
          }
          for (size_t i = 0; i < l; ++i) {
            out[i][static_cast<size_t>(v)] *= norm;
          }
        }
      });
  return out;
}

std::vector<float> PerNodeJaccard(
    const std::vector<const CsrMatrix*>& paths, exec::ExecContext* ctx) {
  FREEHGC_CHECK(!paths.empty());
  FREEHGC_TRACE_SPAN("metapath.jaccard");
  const int32_t rows = paths[0]->rows();
  for (const auto* p : paths) FREEHGC_CHECK(p->rows() == rows);
  std::vector<float> out(static_cast<size_t>(rows), 0.0f);
  if (paths.size() < 2) return out;
  const size_t l = paths.size();
  const float norm = 2.0f / static_cast<float>(l * (l - 1));
  exec::Resolve(ctx).ParallelFor(
      rows, 128, [&](int64_t begin, int64_t end, exec::Workspace&) {
        for (int64_t v = begin; v < end; ++v) {
          float acc = 0.0f;
          for (size_t i = 0; i < l; ++i) {
            for (size_t j = i + 1; j < l; ++j) {
              acc += JaccardOfSortedSets(
                  paths[i]->RowIndices(static_cast<int32_t>(v)),
                  paths[j]->RowIndices(static_cast<int32_t>(v)));
            }
          }
          out[static_cast<size_t>(v)] = acc * norm;
        }
      });
  return out;
}

}  // namespace freehgc
