#ifndef FREEHGC_EXEC_THREAD_POOL_H_
#define FREEHGC_EXEC_THREAD_POOL_H_

#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace freehgc::exec {

/// Fixed-size pool of persistent worker threads.
///
/// The pool is deliberately work-stealing-free: it exposes exactly one
/// primitive, ParallelInvoke, which wakes every worker with the same
/// callable. Chunk distribution (and therefore determinism) is the
/// caller's job — ExecContext hands out fixed-size chunks through an
/// atomic cursor, so which *thread* runs a chunk never affects what the
/// chunk computes.
///
/// A pool of size n owns n-1 OS threads; the caller of ParallelInvoke
/// participates as worker 0, so size() == 1 means no threads are ever
/// spawned and every ParallelInvoke runs inline.
class ThreadPool {
 public:
  /// Creates a pool with `size` workers total (including the caller).
  /// size < 1 is clamped to 1.
  explicit ThreadPool(int size);

  /// Joins all workers. Must not be called while an invoke is running.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total worker count, including the calling thread.
  int size() const { return static_cast<int>(threads_.size()) + 1; }

  /// Runs `body(worker)` concurrently for worker ∈ [0, size()), with
  /// worker 0 executed on the calling thread. Returns once every body has
  /// finished. Exceptions must be contained by `body` (ExecContext's
  /// ParallelFor captures and rethrows them on the caller).
  ///
  /// ParallelInvoke is single-driver: it must not be called while the
  /// calling thread is already executing an invoke body (the generation/
  /// pending bookkeeping is per-pool, not per-invoke, and a nested call
  /// would corrupt the outer invoke's state and deadlock the driver).
  /// Callers that may run inside a parallel region check
  /// InParallelRegion() and degrade to a serial loop instead —
  /// ExecContext::ParallelFor does this automatically.
  void ParallelInvoke(const std::function<void(int)>& body);

  /// True while the calling thread is executing a ParallelInvoke body
  /// (either as a pool worker or as the invoking thread). Process-wide:
  /// the flag is thread-local, so it also reports regions driven by
  /// *other* pools, which is exactly the conservative answer nested
  /// kernels want. Out-of-line on purpose: the flag is a thread_local
  /// private to thread_pool.cc, so no other TU touches TLS directly
  /// (cross-TU TLS wrappers miscompile under some sanitizer setups).
  static bool InParallelRegion();

  /// RAII setter for the thread-local region flag, exception-safe so a
  /// throwing body (contained or not) cannot leave the flag stuck.
  /// ParallelInvoke arms it around every body; ExecContext also arms it
  /// around its inline serial path so nested kernels behave identically
  /// at every thread count.
  struct RegionScope {
    RegionScope();
    ~RegionScope();
  };

 private:
  void WorkerLoop(int worker);

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(int)>* body_ = nullptr;
  uint64_t generation_ = 0;  // bumped per ParallelInvoke to wake workers
  int pending_ = 0;          // workers still running the current body
  bool shutdown_ = false;
};

}  // namespace freehgc::exec

#endif  // FREEHGC_EXEC_THREAD_POOL_H_
