#include "exec/thread_pool.h"

#include <string>

#include "obs/trace.h"

namespace freehgc::exec {

namespace {
thread_local bool t_in_parallel_region = false;
}  // namespace

bool ThreadPool::InParallelRegion() { return t_in_parallel_region; }

ThreadPool::RegionScope::RegionScope() { t_in_parallel_region = true; }
ThreadPool::RegionScope::~RegionScope() { t_in_parallel_region = false; }

ThreadPool::ThreadPool(int size) {
  const int n = size < 1 ? 1 : size;
  threads_.reserve(static_cast<size_t>(n - 1));
  for (int w = 1; w < n; ++w) {
    threads_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::WorkerLoop(int worker) {
  // Label the thread for trace export (worker 0 is the calling thread,
  // which the tracer names "main").
  obs::SetCurrentThreadName("worker-" + std::to_string(worker));
  uint64_t seen = 0;
  for (;;) {
    const std::function<void(int)>* body = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock,
                    [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) return;
      seen = generation_;
      body = body_;
    }
    {
      RegionScope in_region;
      (*body)(worker);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--pending_ == 0) done_cv_.notify_one();
    }
  }
}

void ThreadPool::ParallelInvoke(const std::function<void(int)>& body) {
  if (threads_.empty()) {
    RegionScope in_region;
    body(0);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    body_ = &body;
    pending_ = static_cast<int>(threads_.size());
    ++generation_;
  }
  work_cv_.notify_all();
  {
    RegionScope in_region;
    body(0);
  }
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return pending_ == 0; });
  body_ = nullptr;
}

}  // namespace freehgc::exec
