#ifndef FREEHGC_EXEC_EXEC_CONTEXT_H_
#define FREEHGC_EXEC_EXEC_CONTEXT_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <vector>

#include "exec/thread_pool.h"
#include "exec/workspace.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace freehgc::exec {

/// Per-thread scratch arena for *nested* parallel regions: when a kernel
/// issues a ParallelFor from inside another ParallelFor body, the nested
/// call runs serially on the calling thread with this workspace instead
/// of the pool's per-worker arenas (which the enclosing chunk may still
/// be using). One level of nesting is supported; deeper nesting would
/// alias this arena, so kernels must not rely on it.
Workspace& NestedWorkspace();

/// Execution context shared by every hot path of the library: a fixed
/// thread pool, deterministic parallel-for / ordered parallel-reduce
/// primitives, and one reusable Workspace per worker.
///
/// Determinism contract (what makes results bit-identical across thread
/// counts):
///  - Static chunking: an index range [0, n) is cut into fixed-size
///    chunks whose size depends only on n and the kernel's grain — never
///    on the thread count. Chunk c always covers the same indices.
///  - Per-chunk results: a chunk writes only to disjoint output (rows of
///    a matrix, its slot in a partials array), so the thread that happens
///    to run it cannot influence the value.
///  - Ordered reduction: ParallelReduce folds per-chunk partials in
///    chunk order on the calling thread, fixing the floating-point
///    association independently of scheduling.
///  - Per-chunk RNG streams: kernels needing randomness derive one seeded
///    freehgc::Rng per chunk (from the caller's seed and the chunk id),
///    never sharing a stream across chunks.
///
/// An ExecContext is not itself thread-safe: one thread drives it at a
/// time (the library is single-driver; parallelism lives *inside* the
/// kernels).
class ExecContext {
 public:
  /// Creates a context with `num_threads` workers. 0 (the default) means
  /// "resolve automatically": the FREEHGC_THREADS environment variable if
  /// set to a positive integer, otherwise the hardware concurrency.
  explicit ExecContext(int num_threads = 0);
  ~ExecContext();

  ExecContext(const ExecContext&) = delete;
  ExecContext& operator=(const ExecContext&) = delete;

  int num_threads() const { return pool_->size(); }

  /// Worker `w`'s scratch arena (w ∈ [0, num_threads())).
  Workspace& workspace(int w) { return *workspaces_[static_cast<size_t>(w)]; }

  /// Runs fn(begin, end, ws) over static chunks of [0, n). `grain` is the
  /// minimum chunk size (>= 1); the chunk layout is a pure function of
  /// (n, grain), so outputs are identical for every thread count. The
  /// first exception thrown by the lowest-indexed failing chunk is
  /// rethrown on the calling thread after all chunks finish.
  template <typename Fn>
  void ParallelFor(int64_t n, int64_t grain, Fn&& fn) {
    if (n <= 0) return;
    const int64_t chunk = ChunkSize(n, grain);
    const int64_t num_chunks = (n + chunk - 1) / chunk;
    if (ThreadPool::InParallelRegion()) {
      // Nested parallel region (a kernel called from inside another
      // ParallelFor body, e.g. a per-relation Transpose): the pool's
      // invoke state is single-driver, so a nested invoke would corrupt
      // the outer invoke and deadlock. Run the same chunk layout
      // serially on this thread instead — bit-identical output, and a
      // dedicated per-thread workspace so the nested kernel cannot
      // alias buffers the enclosing chunk is still using.
      Workspace& ws = NestedWorkspace();
      for (int64_t c = 0; c < num_chunks; ++c) {
        fn(c * chunk, std::min(n, (c + 1) * chunk), ws);
      }
      return;
    }
    // Per-invoke observability (spans, clock reads, exec.* counters) is
    // gated on one branch: iterative kernels issue thousands of tiny
    // invokes, and even a non-inlined counter call per invoke shows up
    // (bench_micro_substrate's PPR regressed ~8% before this gate).
    // Kernel-level value counters (spgemm.flops, ...) amortize over real
    // work and stay on unconditionally.
    const bool obs_on =
        obs::DetailedMetricsEnabled() || obs::TracingEnabled();
    if (num_threads() == 1 || num_chunks == 1) {
      Workspace& ws = workspace(0);
      auto run_serial = [&] {
        ThreadPool::RegionScope in_region;
        for (int64_t c = 0; c < num_chunks; ++c) {
          fn(c * chunk, std::min(n, (c + 1) * chunk), ws);
        }
      };
      if (obs_on) {
        const int64_t t0 = obs::NowNs();
        FREEHGC_TRACE_SPAN_WORKER("parallel_for", 0);
        run_serial();
        const int64_t elapsed = obs::NowNs() - t0;
        NoteParallelFor(num_chunks, /*busy_ns=*/elapsed,
                        /*wall_ns=*/elapsed, /*workers=*/1);
      } else {
        run_serial();
      }
      return;
    }
    std::atomic<int64_t> cursor{0};
    std::atomic<int64_t> busy_ns{0};
    std::mutex err_mu;
    int64_t err_chunk = -1;
    std::exception_ptr err;
    auto run_chunks = [&](int worker) {
      Workspace& ws = workspace(worker);
      for (;;) {
        const int64_t c = cursor.fetch_add(1, std::memory_order_relaxed);
        if (c >= num_chunks) break;
        try {
          fn(c * chunk, std::min(n, (c + 1) * chunk), ws);
        } catch (...) {
          std::lock_guard<std::mutex> lock(err_mu);
          if (err_chunk < 0 || c < err_chunk) {
            err_chunk = c;
            err = std::current_exception();
          }
        }
      }
    };
    const int64_t t0 = obs_on ? obs::NowNs() : 0;
    pool_->ParallelInvoke([&](int worker) {
      if (obs_on) {
        const int64_t w0 = obs::NowNs();
        FREEHGC_TRACE_SPAN_WORKER("parallel_for", worker);
        run_chunks(worker);
        busy_ns.fetch_add(obs::NowNs() - w0, std::memory_order_relaxed);
      } else {
        run_chunks(worker);
      }
    });
    if (obs_on) {
      NoteParallelFor(num_chunks, busy_ns.load(std::memory_order_relaxed),
                      obs::NowNs() - t0, num_threads());
    }
    if (err) std::rethrow_exception(err);
  }

  /// Ordered reduction: computes map(begin, end, ws) per static chunk,
  /// then folds the per-chunk partials in chunk order with
  /// acc = combine(acc, partial). The fold runs on the calling thread, so
  /// the floating-point association is fixed by the chunk layout alone.
  template <typename T, typename Map, typename Combine>
  T ParallelReduce(int64_t n, int64_t grain, T init, Map&& map,
                   Combine&& combine) {
    if (n <= 0) return init;
    const int64_t chunk = ChunkSize(n, grain);
    const int64_t num_chunks = (n + chunk - 1) / chunk;
    std::vector<T> partials(static_cast<size_t>(num_chunks));
    ParallelFor(n, grain,
                [&](int64_t begin, int64_t end, Workspace& ws) {
                  partials[static_cast<size_t>(begin / chunk)] =
                      map(begin, end, ws);
                });
    T acc = std::move(init);
    for (auto& p : partials) acc = combine(std::move(acc), std::move(p));
    return acc;
  }

  /// The chunk width ParallelFor/ParallelReduce will use for a range of
  /// `n` items at the given grain. Exposed so kernels that stage
  /// per-chunk output buffers can compute the layout themselves.
  static int64_t ChunkSize(int64_t n, int64_t grain) {
    // Cap the chunk count at a constant so scheduling overhead stays
    // bounded; the cap is independent of the thread count on purpose.
    constexpr int64_t kMaxChunks = 256;
    const int64_t g = std::max<int64_t>(1, grain);
    return std::max(g, (n + kMaxChunks - 1) / kMaxChunks);
  }

  /// Number of chunks ParallelFor will cut [0, n) into.
  static int64_t NumChunks(int64_t n, int64_t grain) {
    if (n <= 0) return 0;
    const int64_t chunk = ChunkSize(n, grain);
    return (n + chunk - 1) / chunk;
  }

 private:
  /// Metrics hook run after an observed ParallelFor (only when tracing
  /// or detailed metrics are armed): bumps the exec.* counters (calls,
  /// chunks, per-worker busy/idle nanoseconds) and raises the workspace
  /// high-water-mark gauge. Call/chunk counts are deterministic; the
  /// *_ns counters measure the schedule and are not.
  void NoteParallelFor(int64_t num_chunks, int64_t busy_ns, int64_t wall_ns,
                       int workers);

  std::unique_ptr<ThreadPool> pool_;
  std::vector<std::unique_ptr<Workspace>> workspaces_;
};

/// Thread count ExecContext resolves for num_threads == 0: the
/// FREEHGC_THREADS environment variable when set to a positive integer,
/// otherwise std::thread::hardware_concurrency() (min 1).
int DefaultNumThreads();

/// Per-driver worker count for a service running `slots` concurrent
/// single-driver ExecContexts (ExecContext is single-driver by contract,
/// so a multi-slot server gives each slot its own context): splits
/// DefaultNumThreads() evenly, min 1 per slot, so the slots together do
/// not oversubscribe the machine.
int ThreadsPerSlot(int slots);

/// How many of `slots` worker slots may *execute* concurrently without
/// time-slicing: min(slots, DefaultNumThreads()). ThreadsPerSlot keeps a
/// slot's internal parallelism within budget, but on a machine with fewer
/// cores than slots the slots themselves still contend (each runs a
/// >= 1-thread context), so the scheduler additionally caps concurrent
/// dispatch at this value — extra slots stay parked until a token frees.
int ConcurrentSlotBudget(int slots);

/// Process-wide default context (lazily constructed with
/// DefaultNumThreads()). Kernel entry points fall back to this when the
/// caller passes no context.
ExecContext& DefaultExec();

/// Resolves an optional caller-supplied context to a usable one.
inline ExecContext& Resolve(ExecContext* ctx) {
  return ctx != nullptr ? *ctx : DefaultExec();
}

}  // namespace freehgc::exec

#endif  // FREEHGC_EXEC_EXEC_CONTEXT_H_
