#ifndef FREEHGC_EXEC_WORKSPACE_H_
#define FREEHGC_EXEC_WORKSPACE_H_

#include <cstdint>
#include <vector>

namespace freehgc::exec {

/// Per-worker reusable scratch arena.
///
/// Hot kernels (SpGEMM row merges, PPR residuals, HGNN propagation,
/// centrality BFS frontiers) used to allocate their scratch vectors on
/// every call; an ExecContext instead hands each worker one Workspace
/// whose buffers grow monotonically and are reused across calls, so
/// steady-state kernel execution performs no heap allocation.
///
/// Buffers hold no semantic state between uses except `accum`, which is
/// guaranteed all-zero on handout: kernels using the sparse-accumulator
/// pattern must re-zero exactly the entries they touched before
/// returning (the SPA idiom does this for free).
class Workspace {
 public:
  /// Dense float accumulator of at least `n` entries, all zero. The
  /// caller must restore the zero invariant over touched entries.
  std::vector<float>& ZeroedAccum(size_t n) {
    if (accum_.size() < n) accum_.resize(n, 0.0f);
    return accum_;
  }

  /// Index list scratch (cleared on handout, capacity preserved).
  std::vector<int32_t>& Touched() {
    touched_.clear();
    return touched_;
  }

  /// Byte marker array of at least `n` entries, all zero — the sparse
  /// accumulator of symbolic (structure-only) passes, where no float
  /// value is needed. Same invariant as ZeroedAccum: the caller must
  /// re-zero exactly the entries it marked before returning.
  std::vector<uint8_t>& ZeroedMark(size_t n) {
    if (mark_.size() < n) mark_.resize(n, 0);
    return mark_;
  }

  /// Float scratch of exactly `n` entries, value-initialized to `fill`.
  std::vector<float>& F32(size_t n, float fill = 0.0f) {
    f32_.assign(n, fill);
    return f32_;
  }

  /// Second float scratch (kernels needing two live vectors at once).
  std::vector<float>& F32B(size_t n, float fill = 0.0f) {
    f32b_.assign(n, fill);
    return f32b_;
  }

  /// Double scratch of exactly `n` entries.
  std::vector<double>& F64(size_t n, double fill = 0.0) {
    f64_.assign(n, fill);
    return f64_;
  }

  /// int32 scratch of exactly `n` entries.
  std::vector<int32_t>& I32(size_t n, int32_t fill = 0) {
    i32_.assign(n, fill);
    return i32_;
  }

  /// int64 scratch of exactly `n` entries.
  std::vector<int64_t>& I64(size_t n, int64_t fill = 0) {
    i64_.assign(n, fill);
    return i64_;
  }

  /// Bytes currently reserved by the arena's buffers. The exec layer
  /// tracks the high-water mark across all workers in the
  /// "exec.workspace_bytes_hwm" gauge.
  size_t BytesReserved() const {
    return accum_.capacity() * sizeof(float) +
           mark_.capacity() * sizeof(uint8_t) +
           touched_.capacity() * sizeof(int32_t) +
           (f32_.capacity() + f32b_.capacity()) * sizeof(float) +
           f64_.capacity() * sizeof(double) +
           i32_.capacity() * sizeof(int32_t) +
           i64_.capacity() * sizeof(int64_t);
  }

 private:
  std::vector<float> accum_;
  std::vector<uint8_t> mark_;
  std::vector<int32_t> touched_;
  std::vector<float> f32_, f32b_;
  std::vector<double> f64_;
  std::vector<int32_t> i32_;
  std::vector<int64_t> i64_;
};

}  // namespace freehgc::exec

#endif  // FREEHGC_EXEC_WORKSPACE_H_
