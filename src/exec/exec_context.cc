#include "exec/exec_context.h"

#include <cstdlib>
#include <thread>

namespace freehgc::exec {

int DefaultNumThreads() {
  if (const char* env = std::getenv("FREEHGC_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<int>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

ExecContext::ExecContext(int num_threads) {
  const int n = num_threads > 0 ? num_threads : DefaultNumThreads();
  pool_ = std::make_unique<ThreadPool>(n);
  workspaces_.reserve(static_cast<size_t>(n));
  for (int w = 0; w < n; ++w) {
    workspaces_.push_back(std::make_unique<Workspace>());
  }
}

ExecContext::~ExecContext() = default;

ExecContext& DefaultExec() {
  static ExecContext* ctx = new ExecContext(0);
  return *ctx;
}

}  // namespace freehgc::exec
