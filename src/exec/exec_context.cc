#include "exec/exec_context.h"

#include <cstdlib>
#include <thread>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace freehgc::exec {

int DefaultNumThreads() {
  if (const char* env = std::getenv("FREEHGC_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<int>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

int ThreadsPerSlot(int slots) {
  if (slots < 1) slots = 1;
  const int per_slot = DefaultNumThreads() / slots;
  return per_slot > 0 ? per_slot : 1;
}

int ConcurrentSlotBudget(int slots) {
  if (slots < 1) slots = 1;
  const int cores = DefaultNumThreads();
  return slots < cores ? slots : cores;
}

ExecContext::ExecContext(int num_threads) {
  obs::InitObservabilityFromEnv();
  // The constructing thread drives ParallelFor invokes as worker 0;
  // label it for the trace unless the embedder already named it.
  obs::SetCurrentThreadNameIfUnset("main");
  const int n = num_threads > 0 ? num_threads : DefaultNumThreads();
  pool_ = std::make_unique<ThreadPool>(n);
  workspaces_.reserve(static_cast<size_t>(n));
  for (int w = 0; w < n; ++w) {
    workspaces_.push_back(std::make_unique<Workspace>());
  }
}

ExecContext::~ExecContext() = default;

void ExecContext::NoteParallelFor(int64_t num_chunks, int64_t busy_ns,
                                  int64_t wall_ns, int workers) {
  static obs::Counter& calls =
      obs::MetricsRegistry::Global().GetCounter("exec.parallel_for_calls");
  static obs::Counter& chunks =
      obs::MetricsRegistry::Global().GetCounter("exec.chunks");
  static obs::Counter& busy =
      obs::MetricsRegistry::Global().GetCounter("exec.worker_busy_ns");
  static obs::Counter& idle =
      obs::MetricsRegistry::Global().GetCounter("exec.worker_idle_ns");
  static obs::Gauge& ws_hwm = obs::MetricsRegistry::Global().GetGauge(
      "exec.workspace_bytes_hwm");
  calls.Increment();
  chunks.Add(num_chunks);
  busy.Add(busy_ns);
  // Idle = pool capacity over the invoke's wall time not spent in chunks
  // (workers waiting on the slowest chunk, wake-up latency).
  const int64_t capacity_ns = wall_ns * static_cast<int64_t>(workers);
  if (capacity_ns > busy_ns) idle.Add(capacity_ns - busy_ns);
  size_t bytes = 0;
  for (const auto& ws : workspaces_) bytes += ws->BytesReserved();
  ws_hwm.UpdateMax(static_cast<int64_t>(bytes));
}

ExecContext& DefaultExec() {
  static ExecContext* ctx = new ExecContext(0);
  return *ctx;
}

Workspace& NestedWorkspace() {
  static thread_local Workspace ws;
  return ws;
}

}  // namespace freehgc::exec
