#include "viz/tsne.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "common/logging.h"
#include "common/rng.h"

namespace freehgc::viz {

namespace {

/// Binary-searches the Gaussian bandwidth of row i so the conditional
/// distribution's perplexity matches the target; writes P(j|i).
void RowAffinities(const std::vector<double>& sqdist, int64_t i,
                   double perplexity, std::vector<double>& p_row) {
  const int64_t n = static_cast<int64_t>(p_row.size());
  const double target_entropy = std::log(perplexity);
  double beta = 1.0, beta_lo = 0.0,
         beta_hi = std::numeric_limits<double>::infinity();
  for (int it = 0; it < 50; ++it) {
    double sum = 0.0;
    for (int64_t j = 0; j < n; ++j) {
      p_row[static_cast<size_t>(j)] =
          j == i ? 0.0
                 : std::exp(-beta * sqdist[static_cast<size_t>(j)]);
      sum += p_row[static_cast<size_t>(j)];
    }
    if (sum <= 0) sum = 1e-12;
    double entropy = 0.0;
    for (int64_t j = 0; j < n; ++j) {
      p_row[static_cast<size_t>(j)] /= sum;
      const double p = p_row[static_cast<size_t>(j)];
      if (p > 1e-12) entropy -= p * std::log(p);
    }
    const double diff = entropy - target_entropy;
    if (std::fabs(diff) < 1e-5) break;
    if (diff > 0) {
      beta_lo = beta;
      beta = std::isinf(beta_hi) ? beta * 2.0 : (beta + beta_hi) / 2.0;
    } else {
      beta_hi = beta;
      beta = (beta + beta_lo) / 2.0;
    }
  }
}

}  // namespace

Matrix Tsne(const Matrix& x, const TsneOptions& opts) {
  const int64_t n = x.rows();
  if (n == 0) return Matrix(0, 2);
  if (n == 1) return Matrix(1, 2);

  // Pairwise squared distances.
  std::vector<std::vector<double>> sqdist(
      static_cast<size_t>(n), std::vector<double>(static_cast<size_t>(n)));
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = i + 1; j < n; ++j) {
      const double d =
          static_cast<double>(dense::RowSquaredDistance(x, i, x, j));
      sqdist[static_cast<size_t>(i)][static_cast<size_t>(j)] = d;
      sqdist[static_cast<size_t>(j)][static_cast<size_t>(i)] = d;
    }
  }

  // Symmetrized affinities.
  const double perplexity =
      std::min(opts.perplexity, static_cast<double>(n - 1) / 3.0);
  std::vector<std::vector<double>> p(
      static_cast<size_t>(n), std::vector<double>(static_cast<size_t>(n)));
  std::vector<double> row(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    RowAffinities(sqdist[static_cast<size_t>(i)], i, perplexity, row);
    for (int64_t j = 0; j < n; ++j) {
      p[static_cast<size_t>(i)][static_cast<size_t>(j)] =
          row[static_cast<size_t>(j)];
    }
  }
  double p_sum = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      const double sym = (p[static_cast<size_t>(i)][static_cast<size_t>(j)] +
                          p[static_cast<size_t>(j)][static_cast<size_t>(i)]) /
                         (2.0 * n);
      p[static_cast<size_t>(i)][static_cast<size_t>(j)] = sym;
      p_sum += sym;
    }
  }
  (void)p_sum;

  // Gradient descent with momentum.
  Rng rng(opts.seed);
  Matrix y(n, 2);
  y.FillGaussian(rng, 1e-2f);
  Matrix velocity(n, 2);
  std::vector<double> q_row(static_cast<size_t>(n));

  for (int iter = 0; iter < opts.iterations; ++iter) {
    const double exaggeration =
        iter < opts.exaggeration_iters ? opts.early_exaggeration : 1.0;
    const double momentum = iter < 100 ? 0.5 : 0.8;

    // Q distribution (Student-t kernel) normalizer.
    double z = 0.0;
    std::vector<std::vector<double>> num(
        static_cast<size_t>(n),
        std::vector<double>(static_cast<size_t>(n), 0.0));
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = i + 1; j < n; ++j) {
        const double dx = y.At(i, 0) - y.At(j, 0);
        const double dy = y.At(i, 1) - y.At(j, 1);
        const double t = 1.0 / (1.0 + dx * dx + dy * dy);
        num[static_cast<size_t>(i)][static_cast<size_t>(j)] = t;
        num[static_cast<size_t>(j)][static_cast<size_t>(i)] = t;
        z += 2.0 * t;
      }
    }
    if (z <= 0) z = 1e-12;

    for (int64_t i = 0; i < n; ++i) {
      double g0 = 0.0, g1 = 0.0;
      for (int64_t j = 0; j < n; ++j) {
        if (i == j) continue;
        const double t = num[static_cast<size_t>(i)][static_cast<size_t>(j)];
        const double q = std::max(t / z, 1e-12);
        const double mult =
            (exaggeration *
                 p[static_cast<size_t>(i)][static_cast<size_t>(j)] -
             q) *
            t;
        g0 += mult * (y.At(i, 0) - y.At(j, 0));
        g1 += mult * (y.At(i, 1) - y.At(j, 1));
      }
      velocity.At(i, 0) = static_cast<float>(
          momentum * velocity.At(i, 0) - opts.learning_rate * 4.0 * g0);
      velocity.At(i, 1) = static_cast<float>(
          momentum * velocity.At(i, 1) - opts.learning_rate * 4.0 * g1);
    }
    for (int64_t i = 0; i < n; ++i) {
      y.At(i, 0) += velocity.At(i, 0);
      y.At(i, 1) += velocity.At(i, 1);
    }
  }
  return y;
}

DispersionStats ComputeDispersion(const Matrix& embedding, int grid) {
  DispersionStats out;
  const int64_t n = embedding.rows();
  out.count = n;
  if (n < 2) return out;
  double total = 0.0;
  int64_t pairs = 0;
  float min_x = embedding.At(0, 0), max_x = min_x;
  float min_y = embedding.At(0, 1), max_y = min_y;
  for (int64_t i = 0; i < n; ++i) {
    min_x = std::min(min_x, embedding.At(i, 0));
    max_x = std::max(max_x, embedding.At(i, 0));
    min_y = std::min(min_y, embedding.At(i, 1));
    max_y = std::max(max_y, embedding.At(i, 1));
    for (int64_t j = i + 1; j < n; ++j) {
      total += std::sqrt(static_cast<double>(
          dense::RowSquaredDistance(embedding, i, embedding, j)));
      ++pairs;
    }
  }
  out.mean_pairwise_distance = total / static_cast<double>(pairs);

  std::vector<uint8_t> cells(static_cast<size_t>(grid * grid), 0);
  const float span_x = std::max(1e-6f, max_x - min_x);
  const float span_y = std::max(1e-6f, max_y - min_y);
  for (int64_t i = 0; i < n; ++i) {
    int cx = static_cast<int>((embedding.At(i, 0) - min_x) / span_x *
                              static_cast<float>(grid));
    int cy = static_cast<int>((embedding.At(i, 1) - min_y) / span_y *
                              static_cast<float>(grid));
    cx = std::clamp(cx, 0, grid - 1);
    cy = std::clamp(cy, 0, grid - 1);
    cells[static_cast<size_t>(cy * grid + cx)] = 1;
  }
  int64_t occupied = 0;
  for (uint8_t c : cells) occupied += c;
  out.grid_coverage =
      static_cast<double>(occupied) / static_cast<double>(grid * grid);
  return out;
}

bool WriteScatterCsv(const Matrix& embedding,
                     const std::vector<std::string>& labels,
                     const std::string& path) {
  FREEHGC_CHECK(static_cast<int64_t>(labels.size()) == embedding.rows());
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "x,y,label\n");
  for (int64_t i = 0; i < embedding.rows(); ++i) {
    std::fprintf(f, "%.4f,%.4f,%s\n", embedding.At(i, 0), embedding.At(i, 1),
                 labels[static_cast<size_t>(i)].c_str());
  }
  std::fclose(f);
  return true;
}

}  // namespace freehgc::viz
