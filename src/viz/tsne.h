#ifndef FREEHGC_VIZ_TSNE_H_
#define FREEHGC_VIZ_TSNE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "dense/matrix.h"

namespace freehgc::viz {

/// Options for the exact (O(n^2)) t-SNE used by the Fig. 9 bench; fine for
/// the few hundred points the figure plots.
struct TsneOptions {
  double perplexity = 15.0;
  int iterations = 300;
  double learning_rate = 100.0;
  double early_exaggeration = 4.0;
  int exaggeration_iters = 80;
  uint64_t seed = 1;
};

/// Embeds the rows of `x` into 2-D with t-SNE (van der Maaten & Hinton
/// 2008). Returns an (n x 2) matrix.
Matrix Tsne(const Matrix& x, const TsneOptions& opts);

/// Coverage/dispersion statistics of an embedded point set — the
/// quantitative core of the paper's Fig. 9 argument (FreeHGC's captured
/// nodes are more numerous and more spread out than Herding's).
struct DispersionStats {
  /// Number of embedded points (|R(S)|: selected + captured nodes).
  int64_t count = 0;
  /// Mean pairwise Euclidean distance in the embedding.
  double mean_pairwise_distance = 0.0;
  /// Fraction of cells of a g x g grid over the bounding box that contain
  /// at least one point (spatial coverage).
  double grid_coverage = 0.0;
};

DispersionStats ComputeDispersion(const Matrix& embedding, int grid = 8);

/// Writes "x,y,label" rows to `path` for external plotting.
bool WriteScatterCsv(const Matrix& embedding,
                     const std::vector<std::string>& labels,
                     const std::string& path);

}  // namespace freehgc::viz

#endif  // FREEHGC_VIZ_TSNE_H_
