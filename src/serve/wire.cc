#include "serve/wire.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/string_util.h"

namespace freehgc::serve {

void WireWriter::PutU8(uint8_t v) {
  buf_.push_back(static_cast<char>(v));
}

void WireWriter::PutU32(uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  buf_.append(b, 4);
}

void WireWriter::PutU64(uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  buf_.append(b, 8);
}

void WireWriter::PutF64(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void WireWriter::PutString(std::string_view s) {
  PutU32(static_cast<uint32_t>(s.size()));
  buf_.append(s.data(), s.size());
}

Status WireReader::Need(size_t n) const {
  if (data_.size() - pos_ < n) {
    return Status::InvalidArgument(
        StrFormat("malformed wire payload: need %zu bytes, %zu left", n,
                  data_.size() - pos_));
  }
  return Status::OK();
}

Result<uint8_t> WireReader::GetU8() {
  FREEHGC_RETURN_IF_ERROR(Need(1));
  return static_cast<uint8_t>(data_[pos_++]);
}

Result<uint32_t> WireReader::GetU32() {
  FREEHGC_RETURN_IF_ERROR(Need(4));
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

Result<uint64_t> WireReader::GetU64() {
  FREEHGC_RETURN_IF_ERROR(Need(8));
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

Result<int64_t> WireReader::GetI64() {
  FREEHGC_ASSIGN_OR_RETURN(uint64_t v, GetU64());
  return static_cast<int64_t>(v);
}

Result<double> WireReader::GetF64() {
  FREEHGC_ASSIGN_OR_RETURN(uint64_t bits, GetU64());
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Result<std::string> WireReader::GetString() {
  FREEHGC_ASSIGN_OR_RETURN(uint32_t len, GetU32());
  if (len > kMaxFrameBytes) {
    return Status::InvalidArgument("malformed wire payload: string too long");
  }
  FREEHGC_RETURN_IF_ERROR(Need(len));
  std::string out(data_.substr(pos_, len));
  pos_ += len;
  return out;
}

namespace {

Status WriteAll(int fd, const char* data, size_t n) {
  while (n > 0) {
    // MSG_NOSIGNAL: a peer that died mid-exchange (a SIGKILLed shard)
    // must surface as a Status the caller can fail over on, not a
    // process-killing SIGPIPE.
    const ssize_t w = ::send(fd, data, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(
          StrFormat("socket write failed: %s", std::strerror(errno)));
    }
    data += w;
    n -= static_cast<size_t>(w);
  }
  return Status::OK();
}

/// Reads exactly n bytes. eof_ok: a clean EOF before the first byte is
/// kUnavailable (peer closed between frames); EOF mid-read is always an
/// error.
Status ReadAll(int fd, char* data, size_t n, bool eof_ok) {
  size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, data + got, n - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(
          StrFormat("socket read failed: %s", std::strerror(errno)));
    }
    if (r == 0) {
      if (eof_ok && got == 0) {
        return Status::Unavailable("connection closed");
      }
      return Status::Internal("connection closed mid-frame");
    }
    got += static_cast<size_t>(r);
  }
  return Status::OK();
}

}  // namespace

Status WriteFrame(int fd, std::string_view payload) {
  if (payload.size() > kMaxFrameBytes) {
    return Status::InvalidArgument(
        StrFormat("frame of %zu bytes exceeds the %u-byte cap",
                  payload.size(), kMaxFrameBytes));
  }
  WireWriter prefix;
  prefix.PutU32(static_cast<uint32_t>(payload.size()));
  FREEHGC_RETURN_IF_ERROR(
      WriteAll(fd, prefix.payload().data(), prefix.payload().size()));
  return WriteAll(fd, payload.data(), payload.size());
}

Result<std::string> ReadFrame(int fd) {
  char prefix[4];
  FREEHGC_RETURN_IF_ERROR(ReadAll(fd, prefix, 4, /*eof_ok=*/true));
  uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<uint32_t>(static_cast<uint8_t>(prefix[i])) << (8 * i);
  }
  if (len > kMaxFrameBytes) {
    return Status::InvalidArgument(
        StrFormat("announced frame of %u bytes exceeds the %u-byte cap", len,
                  kMaxFrameBytes));
  }
  std::string payload(len, '\0');
  if (len > 0) {
    FREEHGC_RETURN_IF_ERROR(ReadAll(fd, payload.data(), len,
                                    /*eof_ok=*/false));
  }
  return payload;
}

std::string EncodeResponse(const Status& status, std::string_view body) {
  WireWriter w;
  w.PutU8(static_cast<uint8_t>(status.code()));
  w.PutString(status.message());
  w.PutString(body);
  return w.Take();
}

Result<WireResponse> DecodeResponse(std::string_view payload) {
  WireReader r(payload);
  FREEHGC_ASSIGN_OR_RETURN(uint8_t code, r.GetU8());
  FREEHGC_ASSIGN_OR_RETURN(std::string message, r.GetString());
  FREEHGC_ASSIGN_OR_RETURN(std::string body, r.GetString());
  WireResponse out;
  out.status =
      Status::FromCode(static_cast<StatusCode>(code), std::move(message));
  out.body = std::move(body);
  return out;
}

void EncodeCondenseRequest(WireWriter& w, const CondenseRequest& req) {
  w.PutString(req.graph);
  w.PutString(req.method);
  w.PutF64(req.ratio);
  w.PutU64(req.seed);
  w.PutI64(req.max_hops);
  w.PutI64(req.max_paths);
  w.PutI64(req.max_row_nnz);
  w.PutU8(req.evaluate ? 1 : 0);
  w.PutU8(req.return_graph ? 1 : 0);
  w.PutI64(req.priority);
  w.PutI64(req.deadline_ms);
}

Result<CondenseRequest> DecodeCondenseRequest(WireReader& r) {
  CondenseRequest req;
  FREEHGC_ASSIGN_OR_RETURN(req.graph, r.GetString());
  FREEHGC_ASSIGN_OR_RETURN(req.method, r.GetString());
  FREEHGC_ASSIGN_OR_RETURN(req.ratio, r.GetF64());
  FREEHGC_ASSIGN_OR_RETURN(req.seed, r.GetU64());
  FREEHGC_ASSIGN_OR_RETURN(int64_t max_hops, r.GetI64());
  FREEHGC_ASSIGN_OR_RETURN(int64_t max_paths, r.GetI64());
  FREEHGC_ASSIGN_OR_RETURN(req.max_row_nnz, r.GetI64());
  req.max_hops = static_cast<int>(max_hops);
  req.max_paths = static_cast<int>(max_paths);
  FREEHGC_ASSIGN_OR_RETURN(uint8_t evaluate, r.GetU8());
  FREEHGC_ASSIGN_OR_RETURN(uint8_t return_graph, r.GetU8());
  req.evaluate = evaluate != 0;
  req.return_graph = return_graph != 0;
  FREEHGC_ASSIGN_OR_RETURN(int64_t priority, r.GetI64());
  req.priority = static_cast<int>(priority);
  FREEHGC_ASSIGN_OR_RETURN(req.deadline_ms, r.GetI64());
  return req;
}

void EncodeCondenseReply(WireWriter& w, const CondenseReply& reply) {
  w.PutI64(reply.nodes);
  w.PutI64(reply.edges);
  w.PutU64(reply.storage_bytes);
  w.PutF64(reply.condense_seconds);
  w.PutF64(reply.queue_seconds);
  w.PutF64(reply.total_seconds);
  w.PutU8(reply.evaluated ? 1 : 0);
  w.PutF64(reply.accuracy);
  w.PutF64(reply.macro_f1);
  w.PutString(reply.graph_bytes);
  w.PutU64(reply.graph_fingerprint);
  w.PutU64(reply.request_id);
  w.PutU8(reply.evalctx_hit ? 1 : 0);
}

Result<CondenseReply> DecodeCondenseReply(WireReader& r) {
  CondenseReply reply;
  FREEHGC_ASSIGN_OR_RETURN(reply.nodes, r.GetI64());
  FREEHGC_ASSIGN_OR_RETURN(reply.edges, r.GetI64());
  FREEHGC_ASSIGN_OR_RETURN(uint64_t storage, r.GetU64());
  reply.storage_bytes = static_cast<size_t>(storage);
  FREEHGC_ASSIGN_OR_RETURN(reply.condense_seconds, r.GetF64());
  FREEHGC_ASSIGN_OR_RETURN(reply.queue_seconds, r.GetF64());
  FREEHGC_ASSIGN_OR_RETURN(reply.total_seconds, r.GetF64());
  FREEHGC_ASSIGN_OR_RETURN(uint8_t evaluated, r.GetU8());
  reply.evaluated = evaluated != 0;
  FREEHGC_ASSIGN_OR_RETURN(double accuracy, r.GetF64());
  FREEHGC_ASSIGN_OR_RETURN(double macro_f1, r.GetF64());
  reply.accuracy = static_cast<float>(accuracy);
  reply.macro_f1 = static_cast<float>(macro_f1);
  FREEHGC_ASSIGN_OR_RETURN(reply.graph_bytes, r.GetString());
  FREEHGC_ASSIGN_OR_RETURN(reply.graph_fingerprint, r.GetU64());
  FREEHGC_ASSIGN_OR_RETURN(reply.request_id, r.GetU64());
  FREEHGC_ASSIGN_OR_RETURN(uint8_t evalctx_hit, r.GetU8());
  reply.evalctx_hit = evalctx_hit != 0;
  return reply;
}

void EncodeGraphInfo(WireWriter& w, const GraphInfo& info) {
  w.PutString(info.name);
  w.PutU64(info.fingerprint);
  w.PutI64(info.nodes);
  w.PutI64(info.edges);
  w.PutU64(info.memory_bytes);
  w.PutU8(info.mapped ? 1 : 0);
  w.PutString(info.source_path);
}

Result<GraphInfo> DecodeGraphInfo(WireReader& r) {
  GraphInfo info;
  FREEHGC_ASSIGN_OR_RETURN(info.name, r.GetString());
  FREEHGC_ASSIGN_OR_RETURN(info.fingerprint, r.GetU64());
  FREEHGC_ASSIGN_OR_RETURN(info.nodes, r.GetI64());
  FREEHGC_ASSIGN_OR_RETURN(info.edges, r.GetI64());
  FREEHGC_ASSIGN_OR_RETURN(uint64_t bytes, r.GetU64());
  info.memory_bytes = static_cast<size_t>(bytes);
  FREEHGC_ASSIGN_OR_RETURN(uint8_t mapped, r.GetU8());
  info.mapped = mapped != 0;
  FREEHGC_ASSIGN_OR_RETURN(info.source_path, r.GetString());
  return info;
}

void EncodeGraphInfoList(WireWriter& w, const std::vector<GraphInfo>& infos) {
  w.PutU32(static_cast<uint32_t>(infos.size()));
  for (const GraphInfo& info : infos) EncodeGraphInfo(w, info);
}

void EncodeHelloInfo(WireWriter& w, const HelloInfo& info) {
  w.PutU32(info.protocol_version);
  w.PutU64(info.features);
  w.PutString(info.role);
}

Result<HelloInfo> DecodeHelloInfo(WireReader& r) {
  HelloInfo info;
  FREEHGC_ASSIGN_OR_RETURN(info.protocol_version, r.GetU32());
  FREEHGC_ASSIGN_OR_RETURN(info.features, r.GetU64());
  FREEHGC_ASSIGN_OR_RETURN(info.role, r.GetString());
  return info;
}

Result<std::vector<GraphInfo>> DecodeGraphInfoList(WireReader& r) {
  FREEHGC_ASSIGN_OR_RETURN(uint32_t count, r.GetU32());
  // 41 = the minimum encoded GraphInfo (empty name + empty source path);
  // bounds the reserve against a malformed count.
  if (count > r.remaining() / 41) {
    return Status::InvalidArgument(
        "malformed wire payload: graph list count exceeds payload");
  }
  std::vector<GraphInfo> out;
  out.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    FREEHGC_ASSIGN_OR_RETURN(GraphInfo info, DecodeGraphInfo(r));
    out.push_back(std::move(info));
  }
  return out;
}

}  // namespace freehgc::serve
