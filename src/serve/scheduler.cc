#include "serve/scheduler.h"

#include <utility>

#include "common/string_util.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace freehgc::serve {

namespace {

struct SchedulerMetrics {
  obs::Gauge& queue_depth;
  obs::Gauge& inflight;
  obs::Counter& admitted;
  obs::Counter& completed;
  obs::Counter& failed;
  obs::Counter& shed;
  obs::Counter& shed_budget;
  obs::Counter& shed_slo;
  obs::Counter& cancelled;
  obs::Counter& expired;
  obs::Counter& coalesced;
  obs::Counter& aged;
  obs::Histogram& queue_ns;
  obs::Histogram& exec_ns;
  obs::Histogram& total_ns;

  static SchedulerMetrics& Get() {
    auto& reg = obs::MetricsRegistry::Global();
    static SchedulerMetrics m{
        reg.GetGauge("serve.queue_depth"),
        reg.GetGauge("serve.inflight"),
        reg.GetCounter("serve.requests.admitted"),
        reg.GetCounter("serve.requests.completed"),
        reg.GetCounter("serve.requests.failed"),
        reg.GetCounter("serve.requests.shed"),
        reg.GetCounter("serve.shed.budget"),
        reg.GetCounter("serve.shed.slo"),
        reg.GetCounter("serve.requests.cancelled"),
        reg.GetCounter("serve.requests.expired"),
        reg.GetCounter("serve.coalesced"),
        reg.GetCounter("serve.aged"),
        reg.GetHistogram("serve.latency.queue_ns"),
        reg.GetHistogram("serve.latency.exec_ns"),
        reg.GetHistogram("serve.latency.total_ns"),
    };
    return m;
  }
};

}  // namespace

Result<CondenseReply>& RequestTicket::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return result_.has_value(); });
  return *result_;
}

bool RequestTicket::Done() const {
  std::lock_guard<std::mutex> lock(mu_);
  return result_.has_value();
}

RequestScheduler::RequestScheduler(const SchedulerOptions& options,
                                   WorkFn work)
    : queue_capacity_(options.queue_capacity > 0 ? options.queue_capacity
                                                 : 1),
      work_(std::move(work)) {
  int slots = options.slots < 1 ? 1 : options.slots;
  max_concurrent_ = options.max_concurrent > 0
                        ? options.max_concurrent
                        : exec::ConcurrentSlotBudget(slots);
  if (max_concurrent_ > slots) max_concurrent_ = slots;
  if (options.aging_quantum_ms > 0) {
    aging_quantum_ns_ = options.aging_quantum_ms * 1'000'000;
  }
  if (options.slo_ms > 0) slo_ns_ = options.slo_ms * 1'000'000;
  const int per_slot = options.threads_per_slot > 0
                           ? options.threads_per_slot
                           : exec::ThreadsPerSlot(slots);
  slot_exec_.reserve(static_cast<size_t>(slots));
  workers_.reserve(static_cast<size_t>(slots));
  for (int s = 0; s < slots; ++s) {
    slot_exec_.push_back(std::make_unique<exec::ExecContext>(per_slot));
  }
  for (int s = 0; s < slots; ++s) {
    workers_.emplace_back([this, s] { WorkerLoop(s); });
  }
}

namespace {
SchedulerOptions LegacyOptions(int slots, int queue_capacity,
                               int threads_per_slot) {
  SchedulerOptions opts;
  opts.slots = slots < 1 ? 1 : slots;
  opts.queue_capacity = queue_capacity;
  opts.threads_per_slot = threads_per_slot;
  opts.max_concurrent = opts.slots;  // pre-QoS behavior: no dispatch cap
  return opts;
}
}  // namespace

RequestScheduler::RequestScheduler(int slots, int queue_capacity,
                                   int threads_per_slot, WorkFn work)
    : RequestScheduler(LegacyOptions(slots, queue_capacity, threads_per_slot),
                       std::move(work)) {}

RequestScheduler::~RequestScheduler() { Shutdown(ShutdownMode::kDrain); }

void RequestScheduler::set_telemetry(obs::AccessLog* access_log,
                                     AnnotateFn annotate) {
  std::lock_guard<std::mutex> lock(mu_);
  access_log_ = access_log;
  annotate_ = std::move(annotate);
}

void RequestScheduler::set_admission_guard(AdmissionGuard guard) {
  std::lock_guard<std::mutex> lock(mu_);
  admission_guard_ = std::move(guard);
}

void RequestScheduler::set_coalesce_key(CoalesceKeyFn fn) {
  std::lock_guard<std::mutex> lock(mu_);
  coalesce_key_fn_ = std::move(fn);
}

Result<TicketPtr> RequestScheduler::Submit(CondenseRequest request) {
  auto& m = SchedulerMetrics::Get();
  std::unique_lock<std::mutex> lock(mu_);
  if (!accepting_) {
    return Status::Unavailable("scheduler is shutting down");
  }
  // Coalescing comes first: a duplicate of in-flight work needs no queue
  // slot and cannot be shed — it rides the leader that is already paying
  // for the execution. A non-duplicate keeps its key and becomes the
  // leader other submissions can attach to (registered after admission).
  uint64_t coalesce_key = 0;
  if (coalesce_key_fn_) {
    coalesce_key = coalesce_key_fn_(request);
    if (coalesce_key != 0) {
      auto it = inflight_by_key_.find(coalesce_key);
      if (it != inflight_by_key_.end()) {
        const uint64_t id = next_id_++;
        auto follower = TicketPtr(new RequestTicket(id, std::move(request)));
        follower->submit_ns_ = obs::NowNs();
        it->second->followers_.push_back(follower);
        ++stats_.admitted;
        ++stats_.coalesced;
        m.admitted.Increment();
        m.coalesced.Increment();
        return follower;
      }
    }
  }
  if (static_cast<int>(queue_.size()) >= queue_capacity_) {
    ++stats_.shed;
    m.shed.Increment();
    // Shed requests get an id too: the access log accounts for every
    // admission decision, not just the admitted ones.
    const uint64_t id = next_id_++;
    Status status = Status::ResourceExhausted(
        StrFormat("admission queue full (%d queued, capacity %d)",
                  static_cast<int>(queue_.size()), queue_capacity_));
    lock.unlock();
    RecordTerminal(id, /*slot=*/-1, request, obs::NowNs(), /*queue_ns=*/0,
                   /*exec_ns=*/0, obs::RequestOutcome::kShed,
                   status.message(), /*evalctx_hit=*/false,
                   /*fingerprint=*/0);
    return status;
  }
  if (admission_guard_) {
    Status guard = admission_guard_();
    if (!guard.ok()) {
      ++stats_.shed;
      ++stats_.shed_budget;
      m.shed.Increment();
      m.shed_budget.Increment();
      const uint64_t id = next_id_++;
      lock.unlock();
      RecordTerminal(id, /*slot=*/-1, request, obs::NowNs(), /*queue_ns=*/0,
                     /*exec_ns=*/0, obs::RequestOutcome::kShed,
                     guard.message(), /*evalctx_hit=*/false,
                     /*fingerprint=*/0);
      return guard;
    }
  }
  // SLO-aware shedding: predict this request's queue wait from the
  // backlog ahead of it draining at the EWMA of recent execution times.
  // A request that was always going to miss the SLO gets a fast
  // kResourceExhausted now instead of a late reply (or a queue-deadline
  // expiry) later. The request's own execution time is deliberately
  // excluded — admission control can shorten waits, not executions, and
  // counting it would shed *all* traffic the moment the mean execution
  // alone exceeds the SLO, even at an empty queue.
  if (slo_ns_ > 0 && ewma_exec_ns_ > 0.0) {
    const double predicted_ns = static_cast<double>(queue_.size()) *
                                ewma_exec_ns_ /
                                static_cast<double>(max_concurrent_);
    if (predicted_ns > static_cast<double>(slo_ns_)) {
      ++stats_.shed;
      ++stats_.shed_slo;
      m.shed.Increment();
      m.shed_slo.Increment();
      const uint64_t id = next_id_++;
      Status status = Status::ResourceExhausted(StrFormat(
          "SLO shed: predicted queue wait %.1f ms exceeds the %lld ms SLO "
          "(%d queued, %.1f ms mean execution)",
          predicted_ns * 1e-6, static_cast<long long>(slo_ns_ / 1'000'000),
          static_cast<int>(queue_.size()), ewma_exec_ns_ * 1e-6));
      lock.unlock();
      RecordTerminal(id, /*slot=*/-1, request, obs::NowNs(), /*queue_ns=*/0,
                     /*exec_ns=*/0, obs::RequestOutcome::kShed,
                     status.message(), /*evalctx_hit=*/false,
                     /*fingerprint=*/0);
      return status;
    }
  }
  const uint64_t id = next_id_++;
  const int priority = request.priority;
  const int64_t deadline_ms = request.deadline_ms;
  auto ticket =
      TicketPtr(new RequestTicket(id, std::move(request)));
  ticket->submit_ns_ = obs::NowNs();
  if (deadline_ms > 0) {
    ticket->deadline_ns_ = ticket->submit_ns_ + deadline_ms * 1'000'000;
  }
  if (coalesce_key != 0) {
    ticket->coalesce_key_ = coalesce_key;
    inflight_by_key_.emplace(coalesce_key, ticket);
  }
  queue_.emplace(std::make_pair(priority, id), ticket);
  ++stats_.admitted;
  m.admitted.Increment();
  UpdateGauges();
  lock.unlock();
  work_cv_.notify_one();
  return ticket;
}

bool RequestScheduler::Cancel(uint64_t id) {
  TicketPtr ticket;
  std::vector<TicketPtr> followers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (it->second->id() == id) {
        ticket = it->second;
        queue_.erase(it);
        followers = TakeFollowers(ticket);
        ++stats_.cancelled;
        SchedulerMetrics::Get().cancelled.Increment();
        UpdateGauges();
        break;
      }
    }
  }
  if (!ticket) return false;
  Status status = Status::Cancelled(
      StrFormat("request %llu cancelled while queued",
                static_cast<unsigned long long>(id)));
  RecordTerminal(ticket->id(), /*slot=*/-1, ticket->request(),
                 ticket->submit_ns_, obs::NowNs() - ticket->submit_ns_,
                 /*exec_ns=*/0, obs::RequestOutcome::kCancelled,
                 status.message(), /*evalctx_hit=*/false, /*fingerprint=*/0);
  FinishFollowers(followers, Result<CondenseReply>(status), /*slot=*/-1,
                  obs::RequestOutcome::kCancelled, status.message());
  Complete(ticket, std::move(status));
  drain_cv_.notify_all();
  return true;
}

void RequestScheduler::Shutdown(ShutdownMode mode) {
  std::vector<TicketPtr> rejected;
  std::vector<std::vector<TicketPtr>> rejected_followers;
  {
    std::unique_lock<std::mutex> lock(mu_);
    accepting_ = false;
    if (mode == ShutdownMode::kCancelQueued) {
      for (auto& [key, ticket] : queue_) {
        rejected.push_back(ticket);
        rejected_followers.push_back(TakeFollowers(ticket));
        ++stats_.cancelled;
        SchedulerMetrics::Get().cancelled.Increment();
      }
      queue_.clear();
      UpdateGauges();
    }
  }
  for (size_t i = 0; i < rejected.size(); ++i) {
    auto& ticket = rejected[i];
    Status status =
        Status::Unavailable("scheduler shut down before the request ran");
    RecordTerminal(ticket->id(), /*slot=*/-1, ticket->request(),
                   ticket->submit_ns_, obs::NowNs() - ticket->submit_ns_,
                   /*exec_ns=*/0, obs::RequestOutcome::kCancelled,
                   status.message(), /*evalctx_hit=*/false,
                   /*fingerprint=*/0);
    FinishFollowers(rejected_followers[i], Result<CondenseReply>(status),
                    /*slot=*/-1, obs::RequestOutcome::kCancelled,
                    status.message());
    Complete(ticket, std::move(status));
  }
  {
    // Drain: wait until queued work is gone and every slot is idle, then
    // tell the workers to exit.
    std::unique_lock<std::mutex> lock(mu_);
    drain_cv_.wait(lock, [&] {
      return queue_.empty() && stats_.inflight == 0;
    });
    if (stop_) return;  // an earlier Shutdown already joined the workers
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

SchedulerStats RequestScheduler::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void RequestScheduler::WorkerLoop(int slot) {
  obs::SetCurrentThreadNameIfUnset("slot-" + std::to_string(slot));
  auto& m = SchedulerMetrics::Get();
  exec::ExecContext* ctx = slot_exec_[static_cast<size_t>(slot)].get();
  for (;;) {
    TicketPtr ticket;
    {
      std::unique_lock<std::mutex> lock(mu_);
      // Dispatch tokens: even with the queue non-empty, a slot stays
      // parked while max_concurrent_ requests are already executing —
      // that is what keeps S > cores slots from time-slicing the cores.
      work_cv_.wait(lock, [&] {
        return stop_ ||
               (!queue_.empty() && stats_.inflight < max_concurrent_);
      });
      if (stop_ && queue_.empty()) return;
      // Dequeue, shedding queued requests whose deadline already passed —
      // this is the point that guarantees an expired request never runs.
      while (!queue_.empty() && stats_.inflight < max_concurrent_) {
        auto it = PickNext();
        TicketPtr head = it->second;
        queue_.erase(it);
        if (head->deadline_ns_ > 0 && obs::NowNs() > head->deadline_ns_) {
          ++stats_.expired;
          m.expired.Increment();
          std::vector<TicketPtr> followers = TakeFollowers(head);
          UpdateGauges();
          lock.unlock();
          Status status = Status::DeadlineExceeded(StrFormat(
              "request %llu expired after %lld ms in the queue",
              static_cast<unsigned long long>(head->id()),
              static_cast<long long>(head->request().deadline_ms)));
          RecordTerminal(head->id(), /*slot=*/-1, head->request(),
                         head->submit_ns_, obs::NowNs() - head->submit_ns_,
                         /*exec_ns=*/0, obs::RequestOutcome::kExpired,
                         status.message(), /*evalctx_hit=*/false,
                         /*fingerprint=*/0);
          FinishFollowers(followers, Result<CondenseReply>(status),
                          /*slot=*/-1, obs::RequestOutcome::kExpired,
                          status.message());
          Complete(head, std::move(status));
          drain_cv_.notify_all();
          lock.lock();
          continue;
        }
        ticket = std::move(head);
        break;
      }
      if (!ticket) continue;
      ++stats_.inflight;
      UpdateGauges();
    }

    const int64_t start_ns = obs::NowNs();
    const int64_t queue_ns = start_ns - ticket->submit_ns_;
    const RequestContext rctx{ticket->id(), slot, ctx};
    Result<CondenseReply> result = [&] {
      // Every span the body records (eval-context build, kernels,
      // ParallelFor work) carries this request's id.
      obs::ScopedRequestId req_scope(rctx.id);
      FREEHGC_TRACE_SPAN("serve.request");
      return work_(ticket->request(), rctx);
    }();
    const int64_t end_ns = obs::NowNs();
    const int64_t exec_ns = end_ns - start_ns;
    if (result.ok()) {
      result.value().request_id = ticket->id();
      result.value().queue_seconds = static_cast<double>(queue_ns) * 1e-9;
      result.value().total_seconds =
          static_cast<double>(end_ns - ticket->submit_ns_) * 1e-9;
    }
    m.queue_ns.Observe(queue_ns);
    m.exec_ns.Observe(exec_ns);
    m.total_ns.Observe(end_ns - ticket->submit_ns_);

    std::vector<TicketPtr> followers;
    {
      std::lock_guard<std::mutex> lock(mu_);
      --stats_.inflight;
      if (result.ok()) {
        ++stats_.completed;
        m.completed.Increment();
      } else {
        ++stats_.failed;
        m.failed.Increment();
      }
      // Feed the SLO admission predictor with this execution.
      ewma_exec_ns_ = ewma_exec_ns_ == 0.0
                          ? static_cast<double>(exec_ns)
                          : 0.8 * ewma_exec_ns_ +
                                0.2 * static_cast<double>(exec_ns);
      followers = TakeFollowers(ticket);
      UpdateGauges();
    }
    // The dispatch token this request held is free again.
    work_cv_.notify_all();
    if (result.ok()) {
      const CondenseReply& reply = result.value();
      RecordTerminal(ticket->id(), slot, ticket->request(),
                     ticket->submit_ns_, queue_ns, exec_ns,
                     obs::RequestOutcome::kOk, /*reason=*/{},
                     reply.evalctx_hit, reply.graph_fingerprint);
      FinishFollowers(followers, result, slot, obs::RequestOutcome::kOk,
                      "coalesced");
    } else {
      RecordTerminal(ticket->id(), slot, ticket->request(),
                     ticket->submit_ns_, queue_ns, exec_ns,
                     obs::RequestOutcome::kError, result.status().message(),
                     /*evalctx_hit=*/false, /*fingerprint=*/0);
      FinishFollowers(followers, result, slot, obs::RequestOutcome::kError,
                      result.status().message());
    }
    Complete(ticket, std::move(result));
    drain_cv_.notify_all();
  }
}

std::map<std::pair<int, uint64_t>, TicketPtr>::iterator
RequestScheduler::PickNext() {
  auto best = queue_.begin();
  if (aging_quantum_ns_ <= 0 || queue_.size() <= 1) return best;
  const int64_t now = obs::NowNs();
  // Effective priority = static priority − whole quanta waited. The map
  // is ordered by (priority, seq), so a plain begin() is already the best
  // *unaged* pick; the scan only matters when waiting demoted-priority
  // work has aged past fresher, nominally-higher-priority work. Ties on
  // effective priority go to the earlier admission (lower seq) — aged
  // work at parity beats fresh arrivals. O(queue) per dequeue; the queue
  // is admission-bounded.
  auto effective = [&](const TicketPtr& t, int priority) -> int64_t {
    const int64_t waited = now - t->submit_ns_;
    return static_cast<int64_t>(priority) - waited / aging_quantum_ns_;
  };
  int64_t best_eff = effective(best->second, best->first.first);
  for (auto it = std::next(queue_.begin()); it != queue_.end(); ++it) {
    const int64_t eff = effective(it->second, it->first.first);
    if (eff < best_eff ||
        (eff == best_eff && it->first.second < best->first.second)) {
      best = it;
      best_eff = eff;
    }
  }
  if (best != queue_.begin()) {
    ++stats_.aged;
    SchedulerMetrics::Get().aged.Increment();
  }
  return best;
}

std::vector<TicketPtr> RequestScheduler::TakeFollowers(
    const TicketPtr& leader) {
  std::vector<TicketPtr> followers;
  followers.swap(leader->followers_);
  if (leader->coalesce_key_ != 0) {
    auto it = inflight_by_key_.find(leader->coalesce_key_);
    if (it != inflight_by_key_.end() && it->second == leader) {
      inflight_by_key_.erase(it);
    }
  }
  return followers;
}

void RequestScheduler::FinishFollowers(
    const std::vector<TicketPtr>& followers,
    const Result<CondenseReply>& result, int slot,
    obs::RequestOutcome outcome, std::string_view reason) {
  if (followers.empty()) return;
  auto& m = SchedulerMetrics::Get();
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < followers.size(); ++i) {
      if (result.ok()) {
        ++stats_.completed;
        m.completed.Increment();
      } else if (outcome == obs::RequestOutcome::kError) {
        ++stats_.failed;
        m.failed.Increment();
      } else if (outcome == obs::RequestOutcome::kExpired) {
        ++stats_.expired;
        m.expired.Increment();
      } else {
        ++stats_.cancelled;
        m.cancelled.Increment();
      }
    }
  }
  for (const auto& follower : followers) {
    const int64_t queue_ns = obs::NowNs() - follower->submit_ns_;
    if (result.ok()) {
      // A follower waited but never executed: it lands in the queue and
      // total latency histograms with exec_ns = 0 (no exec observation —
      // serve.latency.exec_ns counts real executions only).
      m.queue_ns.Observe(queue_ns);
      m.total_ns.Observe(queue_ns);
    }
    RecordTerminal(follower->id(), slot, follower->request(),
                   follower->submit_ns_, queue_ns, /*exec_ns=*/0, outcome,
                   reason, result.ok() ? result.value().evalctx_hit : false,
                   result.ok() ? result.value().graph_fingerprint : 0);
    // Every follower gets a *copy* of the leader's terminal result —
    // bit-identical reply bytes for the coalesced duplicates.
    Complete(follower, result);
  }
  drain_cv_.notify_all();
}

void RequestScheduler::RecordTerminal(
    uint64_t id, int slot, const CondenseRequest& request, int64_t submit_ns,
    int64_t queue_ns, int64_t exec_ns, obs::RequestOutcome outcome,
    std::string_view reason, bool evalctx_hit, uint64_t fingerprint) {
  obs::FlightRecord flight;
  flight.id = id;
  flight.fingerprint = fingerprint;
  flight.submit_ns = submit_ns;
  flight.queue_ns = queue_ns;
  flight.exec_ns = exec_ns;
  flight.slot = slot;
  flight.priority = request.priority;
  flight.outcome = outcome;
  flight.evalctx_hit = evalctx_hit;
  flight.set_graph(request.graph);
  flight.set_method(request.method);
  obs::FlightRecorder::Global().Record(flight);

  if (access_log_ == nullptr || !access_log_->enabled()) return;
  obs::AccessRecord rec;
  rec.id = id;
  rec.slot = slot;
  rec.graph = request.graph;
  rec.method = request.method;
  rec.fingerprint = fingerprint;
  rec.priority = request.priority;
  rec.queue_ns = queue_ns;
  rec.exec_ns = exec_ns;
  rec.total_ns = queue_ns + exec_ns;
  rec.outcome = outcome;
  rec.reason = reason;
  rec.evalctx_hit = evalctx_hit;
  if (annotate_) annotate_(rec);
  access_log_->Append(rec);
}

void RequestScheduler::Complete(const TicketPtr& ticket,
                                Result<CondenseReply> result) {
  {
    std::lock_guard<std::mutex> lock(ticket->mu_);
    if (ticket->result_.has_value()) return;  // already terminal
    ticket->result_.emplace(std::move(result));
  }
  ticket->cv_.notify_all();
}

void RequestScheduler::UpdateGauges() {
  stats_.queue_depth = static_cast<int64_t>(queue_.size());
  auto& m = SchedulerMetrics::Get();
  m.queue_depth.Set(stats_.queue_depth);
  m.inflight.Set(stats_.inflight);
}

}  // namespace freehgc::serve
