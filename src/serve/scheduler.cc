#include "serve/scheduler.h"

#include <utility>

#include "common/string_util.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace freehgc::serve {

namespace {

struct SchedulerMetrics {
  obs::Gauge& queue_depth;
  obs::Gauge& inflight;
  obs::Counter& admitted;
  obs::Counter& completed;
  obs::Counter& failed;
  obs::Counter& shed;
  obs::Counter& shed_budget;
  obs::Counter& cancelled;
  obs::Counter& expired;
  obs::Histogram& queue_ns;
  obs::Histogram& exec_ns;
  obs::Histogram& total_ns;

  static SchedulerMetrics& Get() {
    auto& reg = obs::MetricsRegistry::Global();
    static SchedulerMetrics m{
        reg.GetGauge("serve.queue_depth"),
        reg.GetGauge("serve.inflight"),
        reg.GetCounter("serve.requests.admitted"),
        reg.GetCounter("serve.requests.completed"),
        reg.GetCounter("serve.requests.failed"),
        reg.GetCounter("serve.requests.shed"),
        reg.GetCounter("serve.shed.budget"),
        reg.GetCounter("serve.requests.cancelled"),
        reg.GetCounter("serve.requests.expired"),
        reg.GetHistogram("serve.latency.queue_ns"),
        reg.GetHistogram("serve.latency.exec_ns"),
        reg.GetHistogram("serve.latency.total_ns"),
    };
    return m;
  }
};

}  // namespace

Result<CondenseReply>& RequestTicket::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return result_.has_value(); });
  return *result_;
}

bool RequestTicket::Done() const {
  std::lock_guard<std::mutex> lock(mu_);
  return result_.has_value();
}

RequestScheduler::RequestScheduler(int slots, int queue_capacity,
                                   int threads_per_slot, WorkFn work)
    : queue_capacity_(queue_capacity > 0 ? queue_capacity : 1),
      work_(std::move(work)) {
  if (slots < 1) slots = 1;
  const int per_slot =
      threads_per_slot > 0 ? threads_per_slot : exec::ThreadsPerSlot(slots);
  slot_exec_.reserve(static_cast<size_t>(slots));
  workers_.reserve(static_cast<size_t>(slots));
  for (int s = 0; s < slots; ++s) {
    slot_exec_.push_back(std::make_unique<exec::ExecContext>(per_slot));
  }
  for (int s = 0; s < slots; ++s) {
    workers_.emplace_back([this, s] { WorkerLoop(s); });
  }
}

RequestScheduler::~RequestScheduler() { Shutdown(ShutdownMode::kDrain); }

void RequestScheduler::set_telemetry(obs::AccessLog* access_log,
                                     AnnotateFn annotate) {
  std::lock_guard<std::mutex> lock(mu_);
  access_log_ = access_log;
  annotate_ = std::move(annotate);
}

void RequestScheduler::set_admission_guard(AdmissionGuard guard) {
  std::lock_guard<std::mutex> lock(mu_);
  admission_guard_ = std::move(guard);
}

Result<TicketPtr> RequestScheduler::Submit(CondenseRequest request) {
  auto& m = SchedulerMetrics::Get();
  std::unique_lock<std::mutex> lock(mu_);
  if (!accepting_) {
    return Status::Unavailable("scheduler is shutting down");
  }
  if (static_cast<int>(queue_.size()) >= queue_capacity_) {
    ++stats_.shed;
    m.shed.Increment();
    // Shed requests get an id too: the access log accounts for every
    // admission decision, not just the admitted ones.
    const uint64_t id = next_id_++;
    Status status = Status::ResourceExhausted(
        StrFormat("admission queue full (%d queued, capacity %d)",
                  static_cast<int>(queue_.size()), queue_capacity_));
    lock.unlock();
    RecordTerminal(id, /*slot=*/-1, request, obs::NowNs(), /*queue_ns=*/0,
                   /*exec_ns=*/0, obs::RequestOutcome::kShed,
                   status.message(), /*evalctx_hit=*/false,
                   /*fingerprint=*/0);
    return status;
  }
  if (admission_guard_) {
    Status guard = admission_guard_();
    if (!guard.ok()) {
      ++stats_.shed;
      ++stats_.shed_budget;
      m.shed.Increment();
      m.shed_budget.Increment();
      const uint64_t id = next_id_++;
      lock.unlock();
      RecordTerminal(id, /*slot=*/-1, request, obs::NowNs(), /*queue_ns=*/0,
                     /*exec_ns=*/0, obs::RequestOutcome::kShed,
                     guard.message(), /*evalctx_hit=*/false,
                     /*fingerprint=*/0);
      return guard;
    }
  }
  const uint64_t id = next_id_++;
  const int priority = request.priority;
  const int64_t deadline_ms = request.deadline_ms;
  auto ticket =
      TicketPtr(new RequestTicket(id, std::move(request)));
  ticket->submit_ns_ = obs::NowNs();
  if (deadline_ms > 0) {
    ticket->deadline_ns_ = ticket->submit_ns_ + deadline_ms * 1'000'000;
  }
  queue_.emplace(std::make_pair(priority, id), ticket);
  ++stats_.admitted;
  m.admitted.Increment();
  UpdateGauges();
  lock.unlock();
  work_cv_.notify_one();
  return ticket;
}

bool RequestScheduler::Cancel(uint64_t id) {
  TicketPtr ticket;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (it->second->id() == id) {
        ticket = it->second;
        queue_.erase(it);
        ++stats_.cancelled;
        SchedulerMetrics::Get().cancelled.Increment();
        UpdateGauges();
        break;
      }
    }
  }
  if (!ticket) return false;
  Status status = Status::Cancelled(
      StrFormat("request %llu cancelled while queued",
                static_cast<unsigned long long>(id)));
  RecordTerminal(ticket->id(), /*slot=*/-1, ticket->request(),
                 ticket->submit_ns_, obs::NowNs() - ticket->submit_ns_,
                 /*exec_ns=*/0, obs::RequestOutcome::kCancelled,
                 status.message(), /*evalctx_hit=*/false, /*fingerprint=*/0);
  Complete(ticket, std::move(status));
  drain_cv_.notify_all();
  return true;
}

void RequestScheduler::Shutdown(ShutdownMode mode) {
  std::vector<TicketPtr> rejected;
  {
    std::unique_lock<std::mutex> lock(mu_);
    accepting_ = false;
    if (mode == ShutdownMode::kCancelQueued) {
      for (auto& [key, ticket] : queue_) {
        rejected.push_back(ticket);
        ++stats_.cancelled;
        SchedulerMetrics::Get().cancelled.Increment();
      }
      queue_.clear();
      UpdateGauges();
    }
  }
  for (auto& ticket : rejected) {
    Status status =
        Status::Unavailable("scheduler shut down before the request ran");
    RecordTerminal(ticket->id(), /*slot=*/-1, ticket->request(),
                   ticket->submit_ns_, obs::NowNs() - ticket->submit_ns_,
                   /*exec_ns=*/0, obs::RequestOutcome::kCancelled,
                   status.message(), /*evalctx_hit=*/false,
                   /*fingerprint=*/0);
    Complete(ticket, std::move(status));
  }
  {
    // Drain: wait until queued work is gone and every slot is idle, then
    // tell the workers to exit.
    std::unique_lock<std::mutex> lock(mu_);
    drain_cv_.wait(lock, [&] {
      return queue_.empty() && stats_.inflight == 0;
    });
    if (stop_) return;  // an earlier Shutdown already joined the workers
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

SchedulerStats RequestScheduler::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void RequestScheduler::WorkerLoop(int slot) {
  obs::SetCurrentThreadNameIfUnset("slot-" + std::to_string(slot));
  auto& m = SchedulerMetrics::Get();
  exec::ExecContext* ctx = slot_exec_[static_cast<size_t>(slot)].get();
  for (;;) {
    TicketPtr ticket;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      // Dequeue, shedding queued requests whose deadline already passed —
      // this is the point that guarantees an expired request never runs.
      while (!queue_.empty()) {
        auto it = queue_.begin();
        TicketPtr head = it->second;
        queue_.erase(it);
        if (head->deadline_ns_ > 0 && obs::NowNs() > head->deadline_ns_) {
          ++stats_.expired;
          m.expired.Increment();
          UpdateGauges();
          lock.unlock();
          Status status = Status::DeadlineExceeded(StrFormat(
              "request %llu expired after %lld ms in the queue",
              static_cast<unsigned long long>(head->id()),
              static_cast<long long>(head->request().deadline_ms)));
          RecordTerminal(head->id(), /*slot=*/-1, head->request(),
                         head->submit_ns_, obs::NowNs() - head->submit_ns_,
                         /*exec_ns=*/0, obs::RequestOutcome::kExpired,
                         status.message(), /*evalctx_hit=*/false,
                         /*fingerprint=*/0);
          Complete(head, std::move(status));
          drain_cv_.notify_all();
          lock.lock();
          continue;
        }
        ticket = std::move(head);
        break;
      }
      if (!ticket) continue;
      ++stats_.inflight;
      UpdateGauges();
    }

    const int64_t start_ns = obs::NowNs();
    const int64_t queue_ns = start_ns - ticket->submit_ns_;
    const RequestContext rctx{ticket->id(), slot, ctx};
    Result<CondenseReply> result = [&] {
      // Every span the body records (eval-context build, kernels,
      // ParallelFor work) carries this request's id.
      obs::ScopedRequestId req_scope(rctx.id);
      FREEHGC_TRACE_SPAN("serve.request");
      return work_(ticket->request(), rctx);
    }();
    const int64_t end_ns = obs::NowNs();
    const int64_t exec_ns = end_ns - start_ns;
    if (result.ok()) {
      result.value().request_id = ticket->id();
      result.value().queue_seconds = static_cast<double>(queue_ns) * 1e-9;
      result.value().total_seconds =
          static_cast<double>(end_ns - ticket->submit_ns_) * 1e-9;
    }
    m.queue_ns.Observe(queue_ns);
    m.exec_ns.Observe(exec_ns);
    m.total_ns.Observe(end_ns - ticket->submit_ns_);

    {
      std::lock_guard<std::mutex> lock(mu_);
      --stats_.inflight;
      if (result.ok()) {
        ++stats_.completed;
        m.completed.Increment();
      } else {
        ++stats_.failed;
        m.failed.Increment();
      }
      UpdateGauges();
    }
    if (result.ok()) {
      const CondenseReply& reply = result.value();
      RecordTerminal(ticket->id(), slot, ticket->request(),
                     ticket->submit_ns_, queue_ns, exec_ns,
                     obs::RequestOutcome::kOk, /*reason=*/{},
                     reply.evalctx_hit, reply.graph_fingerprint);
    } else {
      RecordTerminal(ticket->id(), slot, ticket->request(),
                     ticket->submit_ns_, queue_ns, exec_ns,
                     obs::RequestOutcome::kError, result.status().message(),
                     /*evalctx_hit=*/false, /*fingerprint=*/0);
    }
    Complete(ticket, std::move(result));
    drain_cv_.notify_all();
  }
}

void RequestScheduler::RecordTerminal(
    uint64_t id, int slot, const CondenseRequest& request, int64_t submit_ns,
    int64_t queue_ns, int64_t exec_ns, obs::RequestOutcome outcome,
    std::string_view reason, bool evalctx_hit, uint64_t fingerprint) {
  obs::FlightRecord flight;
  flight.id = id;
  flight.fingerprint = fingerprint;
  flight.submit_ns = submit_ns;
  flight.queue_ns = queue_ns;
  flight.exec_ns = exec_ns;
  flight.slot = slot;
  flight.priority = request.priority;
  flight.outcome = outcome;
  flight.evalctx_hit = evalctx_hit;
  flight.set_graph(request.graph);
  flight.set_method(request.method);
  obs::FlightRecorder::Global().Record(flight);

  if (access_log_ == nullptr || !access_log_->enabled()) return;
  obs::AccessRecord rec;
  rec.id = id;
  rec.slot = slot;
  rec.graph = request.graph;
  rec.method = request.method;
  rec.fingerprint = fingerprint;
  rec.priority = request.priority;
  rec.queue_ns = queue_ns;
  rec.exec_ns = exec_ns;
  rec.total_ns = queue_ns + exec_ns;
  rec.outcome = outcome;
  rec.reason = reason;
  rec.evalctx_hit = evalctx_hit;
  if (annotate_) annotate_(rec);
  access_log_->Append(rec);
}

void RequestScheduler::Complete(const TicketPtr& ticket,
                                Result<CondenseReply> result) {
  {
    std::lock_guard<std::mutex> lock(ticket->mu_);
    if (ticket->result_.has_value()) return;  // already terminal
    ticket->result_.emplace(std::move(result));
  }
  ticket->cv_.notify_all();
}

void RequestScheduler::UpdateGauges() {
  stats_.queue_depth = static_cast<int64_t>(queue_.size());
  auto& m = SchedulerMetrics::Get();
  m.queue_depth.Set(stats_.queue_depth);
  m.inflight.Set(stats_.inflight);
}

}  // namespace freehgc::serve
