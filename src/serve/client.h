#ifndef FREEHGC_SERVE_CLIENT_H_
#define FREEHGC_SERVE_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "serve/graph_store.h"
#include "serve/scheduler.h"
#include "serve/wire.h"

namespace freehgc::serve {

/// Blocking TCP client for a freehgc_server: one connection, one
/// request/response in flight at a time (open several clients for
/// concurrency — the server is thread-per-connection). Methods surface
/// the server's status verbatim, so e.g. a shed request is the same
/// kResourceExhausted the in-process API returns.
class ServeClient {
 public:
  ServeClient() = default;
  ~ServeClient();

  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  /// Connects to 127.0.0.1:port.
  Status Connect(int port);
  void Close();
  bool connected() const { return fd_ >= 0; }

  /// Round-trip health check.
  Status Ping();

  /// Round-trip handshake: the server's protocol version, feature bits,
  /// and role. A protocol-v1 server (empty Ping body) comes back as
  /// {version 1, no features, empty role} — cluster-aware callers use
  /// this to fail with a clean message instead of a frame mismatch.
  Result<HelloInfo> Hello();

  /// Serializes a resident graph back (protocol v2; the router's
  /// shard-to-shard replication path).
  Result<std::string> FetchGraph(const std::string& name);

  /// Sends one framed request payload and decodes the response envelope;
  /// a non-OK server status comes back as that status. Public so protocol
  /// extensions (src/cluster's meta ops) can reuse the connection
  /// plumbing without reimplementing framing.
  Result<std::string> Call(std::string payload);

  /// Builds `preset` server-side under (seed, scale) and registers it as
  /// `name`. scale <= 0 uses the preset default.
  Result<GraphInfo> RegisterGenerator(const std::string& name,
                                      const std::string& preset,
                                      uint64_t seed, double scale);

  /// Uploads a SaveHeteroGraph/SerializeHeteroGraph container.
  Result<GraphInfo> UploadGraph(const std::string& name,
                                std::string_view container);

  Result<std::vector<GraphInfo>> ListGraphs();

  /// Runs one condensation request to completion (blocking).
  Result<CondenseReply> Condense(const CondenseRequest& request);

  /// The server's StatsJson snapshot.
  Result<std::string> Stats();

  /// Prometheus text exposition of the server's live metrics registry.
  Result<std::string> Metrics();

  /// Liveness JSON (status, uptime, slot/queue occupancy).
  Result<std::string> Health();

  /// Flight-recorder dump: last-N completed requests + retained outliers.
  Result<std::string> FlightRecorderDump();

  /// Asks the server to stop (it drains in-flight work before exiting).
  Status Shutdown();

 private:
  int fd_ = -1;
};

}  // namespace freehgc::serve

#endif  // FREEHGC_SERVE_CLIENT_H_
