#ifndef FREEHGC_SERVE_GRAPH_STORE_H_
#define FREEHGC_SERVE_GRAPH_STORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "exec/exec_context.h"
#include "graph/hetero_graph.h"

namespace freehgc::serve {

/// Catalog entry for one resident graph.
struct GraphInfo {
  std::string name;
  /// HeteroGraph::ContentFingerprint of the resident copy — the identity
  /// the scheduler and ArtifactCache key on.
  uint64_t fingerprint = 0;
  int64_t nodes = 0;
  int64_t edges = 0;
  /// Approximate logical bytes (HeteroGraph::MemoryBytes) — identical for
  /// heap and mapped residents.
  size_t memory_bytes = 0;
  /// True when the resident copy's CSR/feature arrays view a mapped v3
  /// container (pages live in the page cache, not the heap).
  bool mapped = false;
  /// Backing container path for mapped graphs; empty for heap residents.
  std::string source_path;
};

/// Registry of resident HeteroGraphs, the serving layer's object store:
/// graphs enter once (uploaded as a SaveHeteroGraph container or built by
/// a named synthetic generator) and every request against the same name
/// shares the one immutable copy through a stable shared_ptr — in-process
/// vineyard-style object sharing. A reference stays valid for as long as
/// the caller holds it, even across Remove (removal only unlinks the
/// name; in-flight requests keep the graph alive).
///
/// Thread-safe. Registration is idempotent on identical content: a name
/// collision with the same fingerprint returns the existing entry, a
/// collision with different content is FailedPrecondition (a resident
/// graph never changes under a request's feet).
class GraphStore {
 public:
  using GraphRef = std::shared_ptr<const HeteroGraph>;

  GraphStore() = default;
  GraphStore(const GraphStore&) = delete;
  GraphStore& operator=(const GraphStore&) = delete;

  /// Registers an already-built graph under `name`.
  Result<GraphInfo> Register(const std::string& name, HeteroGraph graph);

  /// Registers a graph from a SaveHeteroGraph/SerializeHeteroGraph
  /// container (the upload path). Corrupt or truncated payloads are
  /// InvalidArgument — nothing is registered. With a spool dir set, the
  /// upload is persisted as a v3 container (named by content fingerprint)
  /// and re-registered as a mapped graph, so the heap copy is freed and
  /// the resident arrays are page-cache-backed.
  Result<GraphInfo> RegisterSerialized(const std::string& name,
                                       std::string_view container);

  /// Registers the v3 container at `path` as a mapped (zero-copy)
  /// resident graph. Every section CRC is verified, after which the
  /// container's stored content fingerprint is trusted — mapped
  /// registration skips the full-graph FNV pass a heap load pays. The
  /// entry's shared_ptr keeps the mapping alive, even across Remove.
  Result<GraphInfo> RegisterMappedFile(const std::string& name,
                                       const std::string& path);

  /// Enables spool-on-upload (see RegisterSerialized). Creates `dir` if
  /// missing; spooled containers are left behind on shutdown so a
  /// restarted server can re-register them with RegisterMappedFile.
  Status SetSpoolDir(const std::string& dir);

  /// Registers `preset` (datasets::MakeByName: "acm", "toy", ...) built
  /// deterministically under (seed, scale). scale <= 0 uses the preset's
  /// repo default.
  Result<GraphInfo> RegisterGenerator(const std::string& name,
                                      const std::string& preset,
                                      uint64_t seed, double scale,
                                      exec::ExecContext* ctx = nullptr);

  /// Shared reference to a resident graph. NotFound when `name` is not
  /// registered.
  Result<GraphRef> Get(const std::string& name) const;

  /// Catalog entry for `name`.
  Result<GraphInfo> Info(const std::string& name) const;

  /// All resident graphs, sorted by name.
  std::vector<GraphInfo> List() const;

  /// Unlinks `name` (existing references stay valid). Returns whether the
  /// name was registered.
  bool Remove(const std::string& name);

  /// Resident graphs / bytes (mirrored into the serve.store.* gauges).
  int64_t Count() const;
  size_t TotalBytes() const;

  /// Resident graphs backed by mapped containers.
  int64_t MappedCount() const;

  /// Heap bytes actually owned by resident graphs (mapped arrays live in
  /// the page cache and are excluded) — the store.resident_bytes gauge.
  size_t ResidentBytes() const;

 private:
  struct Entry {
    GraphRef graph;
    GraphInfo info;
    /// HeteroGraph::ResidentHeapBytes at registration (immutable after).
    size_t resident_bytes = 0;
  };

  Result<GraphInfo> Insert(const std::string& name, HeteroGraph graph,
                           uint64_t fingerprint, std::string source_path);
  void UpdateGauges() const;  // callers hold mu_

  mutable std::mutex mu_;
  std::map<std::string, Entry> graphs_;
  std::string spool_dir_;  // empty = spool-on-upload disabled
};

}  // namespace freehgc::serve

#endif  // FREEHGC_SERVE_GRAPH_STORE_H_
