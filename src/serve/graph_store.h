#ifndef FREEHGC_SERVE_GRAPH_STORE_H_
#define FREEHGC_SERVE_GRAPH_STORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/mapped_file.h"
#include "common/result.h"
#include "exec/exec_context.h"
#include "graph/hetero_graph.h"

namespace freehgc::serve {

/// Catalog entry for one resident graph.
struct GraphInfo {
  std::string name;
  /// HeteroGraph::ContentFingerprint of the resident copy — the identity
  /// the scheduler and ArtifactCache key on.
  uint64_t fingerprint = 0;
  int64_t nodes = 0;
  int64_t edges = 0;
  /// Approximate logical bytes (HeteroGraph::MemoryBytes) — identical for
  /// heap and mapped residents.
  size_t memory_bytes = 0;
  /// True when the resident copy's CSR/feature arrays view a mapped v3
  /// container (pages live in the page cache, not the heap).
  bool mapped = false;
  /// Backing container path for mapped graphs; empty for heap residents.
  std::string source_path;
  /// False when the entry is currently evicted under the residency
  /// budget (mapping dropped, spool path kept) — the next Get re-maps it
  /// transparently.
  bool resident = true;
};

/// Registry of resident HeteroGraphs, the serving layer's object store:
/// graphs enter once (uploaded as a SaveHeteroGraph container or built by
/// a named synthetic generator) and every request against the same name
/// shares the one immutable copy through a stable shared_ptr — in-process
/// vineyard-style object sharing. A reference stays valid for as long as
/// the caller holds it, even across Remove (removal only unlinks the
/// name; in-flight requests keep the graph alive).
///
/// Thread-safe. Registration is idempotent on identical content: a name
/// collision with the same fingerprint returns the existing entry, a
/// collision with different content is FailedPrecondition (a resident
/// graph never changes under a request's feet).
class GraphStore {
 public:
  using GraphRef = std::shared_ptr<const HeteroGraph>;

  GraphStore() = default;
  GraphStore(const GraphStore&) = delete;
  GraphStore& operator=(const GraphStore&) = delete;

  /// Registers an already-built graph under `name`.
  Result<GraphInfo> Register(const std::string& name, HeteroGraph graph);

  /// Registers a graph from a SaveHeteroGraph/SerializeHeteroGraph
  /// container (the upload path). Corrupt or truncated payloads are
  /// InvalidArgument — nothing is registered. With a spool dir set, the
  /// upload is persisted as a v3 container (named by content fingerprint)
  /// and re-registered as a mapped graph, so the heap copy is freed and
  /// the resident arrays are page-cache-backed.
  Result<GraphInfo> RegisterSerialized(const std::string& name,
                                       std::string_view container);

  /// Registers the v3 container at `path` as a mapped (zero-copy)
  /// resident graph. Every section CRC is verified, after which the
  /// container's stored content fingerprint is trusted — mapped
  /// registration skips the full-graph FNV pass a heap load pays. The
  /// entry's shared_ptr keeps the mapping alive, even across Remove.
  Result<GraphInfo> RegisterMappedFile(const std::string& name,
                                       const std::string& path);

  /// Enables spool-on-upload (see RegisterSerialized). Creates `dir` if
  /// missing; spooled containers are left behind on shutdown so a
  /// restarted server can re-register them with RegisterMappedFile.
  Status SetSpoolDir(const std::string& dir);

  /// Registers `preset` (datasets::MakeByName: "acm", "toy", ...) built
  /// deterministically under (seed, scale). scale <= 0 uses the preset's
  /// repo default.
  Result<GraphInfo> RegisterGenerator(const std::string& name,
                                      const std::string& preset,
                                      uint64_t seed, double scale,
                                      exec::ExecContext* ctx = nullptr);

  /// Caps the bytes mapped graphs may keep resident (page-cache working
  /// set, by GraphInfo::memory_bytes). When an insert or re-map pushes
  /// past the budget, cold mapped graphs are evicted LRU-first: the
  /// mapping is advised MADV_DONTNEED and dropped, the spool path is
  /// kept, and the next Get re-maps transparently. Graphs with an
  /// outstanding reference (in-flight requests) are never evicted, and
  /// heap-resident graphs have no spool path to restore from, so only
  /// mapped entries participate. SIZE_MAX (the default) disables
  /// eviction.
  void SetResidentBudget(size_t bytes);

  /// Shared reference to a resident graph. NotFound when `name` is not
  /// registered. Touches the entry's LRU stamp; an entry evicted under
  /// the residency budget is re-mapped from its spool path first (the
  /// stored fingerprint is re-verified, so a swapped file is an error,
  /// not a silent content change).
  Result<GraphRef> Get(const std::string& name);

  /// Catalog entry for `name`.
  Result<GraphInfo> Info(const std::string& name) const;

  /// All resident graphs, sorted by name.
  std::vector<GraphInfo> List() const;

  /// Unlinks `name` (existing references stay valid). Returns whether the
  /// name was registered.
  bool Remove(const std::string& name);

  /// Resident graphs / bytes (mirrored into the serve.store.* gauges).
  int64_t Count() const;
  size_t TotalBytes() const;

  /// Resident graphs backed by mapped containers.
  int64_t MappedCount() const;

  /// Heap bytes actually owned by resident graphs (mapped arrays live in
  /// the page cache and are excluded) — the store.resident_bytes gauge.
  size_t ResidentBytes() const;

  /// Bytes of mapped graphs currently resident (what SetResidentBudget
  /// constrains) — the store.mapped_resident_bytes gauge.
  size_t MappedResidentBytes() const;

  /// Mapped graphs evicted under the residency budget so far.
  int64_t Evictions() const;

 private:
  struct Entry {
    GraphRef graph;
    GraphInfo info;
    /// HeteroGraph::ResidentHeapBytes at registration (immutable after).
    size_t resident_bytes = 0;
    /// Keepalive for the backing container of mapped graphs; reset on
    /// eviction (the graph's own views hold it too, so in-flight
    /// references survive).
    std::shared_ptr<const MappedFile> mapping;
    /// LRU stamp (monotonic Get/insert counter).
    uint64_t tick = 0;
  };

  Result<GraphInfo> Insert(const std::string& name, HeteroGraph graph,
                           uint64_t fingerprint, std::string source_path,
                           std::shared_ptr<const MappedFile> mapping);
  /// Evicts LRU mapped graphs until the mapped-resident total fits the
  /// budget; `protect` (may be null) is never evicted. Callers hold mu_.
  void TrimLocked(const Entry* protect);
  size_t MappedResidentLocked() const;  // callers hold mu_
  void UpdateGauges() const;            // callers hold mu_

  mutable std::mutex mu_;
  std::map<std::string, Entry> graphs_;
  std::string spool_dir_;  // empty = spool-on-upload disabled
  size_t resident_budget_ = SIZE_MAX;
  uint64_t tick_ = 0;
  int64_t evictions_ = 0;
};

/// Orphan-spool garbage collection for a server spool directory: removes
/// `*.spill` and `*.tmp` files (spill files are keyed by in-process cache
/// state, so across a restart they are all orphans) and any `*.fhgc`
/// container whose header fingerprint does not match its
/// `<fingerprint>.fhgc` name (corrupt, truncated, or foreign files).
/// Well-named containers are kept for RegisterMappedFile. Returns the
/// number of files removed.
Result<int> SweepSpoolDir(const std::string& dir);

}  // namespace freehgc::serve

#endif  // FREEHGC_SERVE_GRAPH_STORE_H_
