#include "serve/service.h"

#include <utility>

#include "common/fnv.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "graph/serialize.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "pipeline/method.h"

namespace freehgc::serve {

/// One coalesced evaluation context. `graph` keeps the resident copy
/// alive for as long as the entry exists (EvalContext::full borrows it),
/// so a Remove from the store cannot invalidate a cached context.
struct ServeService::EvalEntry {
  std::once_flag once;
  GraphStore::GraphRef graph;
  uint64_t fingerprint = 0;
  hgnn::EvalContext ctx;
};

ServeService::ServeService(ServeOptions options)
    : options_(std::move(options)), start_ns_(obs::NowNs()) {
  if (!options_.access_log_path.empty()) {
    const Status st = access_log_.Open(options_.access_log_path);
    if (!st.ok()) {
      FREEHGC_LOG(Warning) << "access log disabled: " << st.message();
    }
  }
  if (options_.store_resident_budget_bytes != SIZE_MAX) {
    store_.SetResidentBudget(options_.store_resident_budget_bytes);
  }
  if (!options_.spill_dir.empty()) {
    pipeline::ArtifactCache::SpillOptions sp;
    sp.resident_bytes_budget = options_.artifact_budget_bytes;
    sp.spill_dir = options_.spill_dir;
    const Status st = cache_.ConfigureSpill(sp);
    if (!st.ok()) {
      FREEHGC_LOG(Warning) << "artifact spill disabled: " << st.message();
    }
  } else if (options_.artifact_budget_bytes != SIZE_MAX) {
    FREEHGC_LOG(Warning)
        << "artifact budget ignored: no spill dir configured";
  }
  SchedulerOptions sched_opts;
  sched_opts.slots = options_.slots;
  sched_opts.queue_capacity = options_.queue_capacity;
  sched_opts.threads_per_slot = options_.threads_per_slot;
  sched_opts.max_concurrent = options_.max_concurrent;
  sched_opts.aging_quantum_ms = options_.aging_quantum_ms;
  sched_opts.slo_ms = options_.slo_ms;
  scheduler_ = std::make_unique<RequestScheduler>(
      sched_opts,
      [this](const CondenseRequest& request, const RequestContext& rctx) {
        return Execute(request, rctx);
      });
  if (options_.coalesce_requests) {
    // Work identity for request coalescing. Everything Execute() reads
    // from the request is mixed in except priority and deadline (which
    // change scheduling, not the reply) — two requests with equal keys
    // produce bit-identical replies because every stage downstream is
    // deterministic. Graph *name* (not fingerprint) keys the store
    // lookup, so a re-registered name never aliases: re-registration
    // happens outside any in-flight window in practice, and the name is
    // what Execute() resolves.
    scheduler_->set_coalesce_key([](const CondenseRequest& r) -> uint64_t {
      Fnv f;
      f.Bytes(r.graph.data(), r.graph.size());
      f.Pod(uint8_t{0});
      f.Bytes(r.method.data(), r.method.size());
      f.Pod(uint8_t{0});
      f.Pod(r.ratio);
      f.Pod(r.seed);
      f.Pod(r.max_hops);
      f.Pod(r.max_paths);
      f.Pod(r.max_row_nnz);
      f.Pod(r.evaluate);
      f.Pod(r.return_graph);
      return f.h != 0 ? f.h : 1;  // 0 means "don't coalesce"
    });
  }
  // Spill-aware admission (the budget_shed_factor contract): consult the
  // budget gauges on every Submit and shed instead of queueing work that
  // would only deepen spill-tier thrashing.
  if (options_.budget_shed_factor > 0) {
    const double factor = options_.budget_shed_factor;
    const size_t art_budget =
        cache_.spill_enabled() ? options_.artifact_budget_bytes : SIZE_MAX;
    const size_t store_budget = options_.store_resident_budget_bytes;
    if (art_budget != SIZE_MAX || store_budget != SIZE_MAX) {
      scheduler_->set_admission_guard([this, factor, art_budget,
                                       store_budget]() -> Status {
        if (art_budget != SIZE_MAX) {
          const size_t resident = cache_.stats().resident_bytes;
          if (static_cast<double>(resident) >
              factor * static_cast<double>(art_budget)) {
            return Status::ResourceExhausted(StrFormat(
                "artifact cache under budget pressure (%zu resident bytes "
                "> %.1fx the %zu-byte budget); request shed",
                resident, factor, art_budget));
          }
        }
        if (store_budget != SIZE_MAX) {
          const size_t resident = store_.MappedResidentBytes();
          if (static_cast<double>(resident) >
              factor * static_cast<double>(store_budget)) {
            return Status::ResourceExhausted(StrFormat(
                "graph store under budget pressure (%zu mapped-resident "
                "bytes > %.1fx the %zu-byte budget); request shed",
                resident, factor, store_budget));
          }
        }
        return Status::OK();
      });
    }
  }
  // Access-log annotation: stamp cumulative artifact/plan-cache counters
  // onto each line so per-request deltas fall out of consecutive entries.
  scheduler_->set_telemetry(
      &access_log_, [this](obs::AccessRecord& rec) {
        const pipeline::ArtifactCache::Stats c = cache_.stats();
        rec.cache_hits = c.hits;
        rec.cache_misses = c.misses;
        rec.plan_hits = c.plan_hits;
        rec.plan_misses = c.plan_misses;
      });
}

ServeService::~ServeService() { Shutdown(ShutdownMode::kDrain); }

Result<TicketPtr> ServeService::Submit(CondenseRequest request) {
  if (request.ratio <= 0.0 || request.ratio > 1.0) {
    return Status::InvalidArgument(
        StrFormat("ratio must be in (0, 1], got %g", request.ratio));
  }
  // Validate graph + method now so a bad request fails fast instead of
  // occupying a queue slot only to fail on a worker.
  FREEHGC_RETURN_IF_ERROR(store_.Info(request.graph).status());
  FREEHGC_RETURN_IF_ERROR(
      pipeline::MethodRegistry::Global().FindOrError(request.method)
          .status());
  return scheduler_->Submit(std::move(request));
}

Result<CondenseReply> ServeService::Condense(CondenseRequest request) {
  FREEHGC_ASSIGN_OR_RETURN(TicketPtr ticket, Submit(std::move(request)));
  return ticket->Wait();
}

bool ServeService::Cancel(uint64_t id) { return scheduler_->Cancel(id); }

void ServeService::Shutdown(ShutdownMode mode) { scheduler_->Shutdown(mode); }

std::shared_ptr<ServeService::EvalEntry> ServeService::GetOrBuildEvalContext(
    const GraphStore::GraphRef& graph, const hgnn::PropagateOptions& opts,
    exec::ExecContext* ctx, bool* built) {
  const uint64_t fp = cache_.FingerprintOf(*graph);
  const EvalKey key{fp, opts.max_hops, opts.max_paths, opts.max_row_nnz};
  std::shared_ptr<EvalEntry> entry;
  {
    std::lock_guard<std::mutex> lock(eval_mu_);
    auto& slot = eval_contexts_[key];
    if (!slot) slot = std::make_shared<EvalEntry>();
    entry = slot;
  }
  // The first request through builds; concurrent duplicates block here
  // instead of each paying the SpGEMM + propagation cost.
  bool built_here = false;
  std::call_once(entry->once, [&] {
    FREEHGC_TRACE_SPAN("serve.build_eval_context");
    entry->graph = graph;
    entry->fingerprint = fp;
    if (cache_.spill_enabled()) {
      // Spillable build: same construction as hgnn::BuildEvalContext,
      // but the propagated blocks come from the tiered cache — streamed
      // through a spool file under a finite budget, and view-backed
      // (≈0 heap) when restored — so the EvalContext path works under a
      // heap cap. Matrix copies of view-backed blocks share the mapping.
      entry->ctx.full = graph.get();
      entry->ctx.options = opts;
      MetaPathOptions mp_opts;
      mp_opts.max_hops = opts.max_hops;
      mp_opts.max_paths = opts.max_paths;
      mp_opts.max_row_nnz = opts.max_row_nnz;
      entry->ctx.paths =
          EnumerateMetaPaths(*graph, graph->target_type(), mp_opts);
      entry->ctx.full_features =
          *cache_.Propagated(*graph, entry->ctx.paths, opts.max_row_nnz, ctx);
    } else {
      entry->ctx = hgnn::BuildEvalContext(*graph, opts, ctx, &cache_);
    }
    built_here = true;
    eval_context_builds_.fetch_add(1, std::memory_order_relaxed);
    obs::MetricsRegistry::Global()
        .GetCounter("serve.evalctx.builds")
        .Increment();
  });
  obs::MetricsRegistry::Global().GetCounter("serve.evalctx.lookups")
      .Increment();
  if (built != nullptr) *built = built_here;
  return entry;
}

Result<CondenseReply> ServeService::Execute(const CondenseRequest& request,
                                            const RequestContext& rctx) {
  exec::ExecContext* ctx = rctx.exec;
  FREEHGC_ASSIGN_OR_RETURN(GraphStore::GraphRef graph,
                           store_.Get(request.graph));
  hgnn::PropagateOptions popts;
  popts.max_hops = request.max_hops > 0 ? request.max_hops : 2;
  popts.max_paths = request.max_paths;
  popts.max_row_nnz = request.max_row_nnz;
  bool built = false;
  std::shared_ptr<EvalEntry> entry =
      GetOrBuildEvalContext(graph, popts, ctx, &built);

  FREEHGC_ASSIGN_OR_RETURN(
      const pipeline::CondensationMethod* method,
      pipeline::MethodRegistry::Global().FindOrError(request.method));

  pipeline::RunSpec spec;
  spec.ratio = request.ratio;
  spec.seed = request.seed;
  pipeline::PipelineEnv env;
  env.exec = ctx;
  env.cache = &cache_;
  FREEHGC_ASSIGN_OR_RETURN(pipeline::CondensedData data,
                           method->Condense(entry->ctx, spec, env));

  CondenseReply reply;
  reply.request_id = rctx.id;
  reply.evalctx_hit = !built;
  reply.graph_fingerprint = entry->fingerprint;
  reply.condense_seconds = data.seconds;
  reply.storage_bytes = data.storage_bytes;
  if (!data.synthetic) {
    reply.nodes = data.graph.TotalNodes();
    reply.edges = data.graph.TotalEdges();
  }

  if (request.evaluate) {
    // Same seed derivation as pipeline::RunMethod, so a served evaluation
    // reproduces the sweep's numbers exactly.
    hgnn::HgnnConfig cfg = options_.eval;
    cfg.seed = request.seed ^ 0xeea1ULL;
    const hgnn::EvalMetrics metrics =
        data.synthetic
            ? hgnn::TrainOnBlocks(entry->ctx, data.blocks, data.labels, cfg)
            : hgnn::TrainAndEvaluate(entry->ctx, data.graph, cfg, ctx);
    reply.evaluated = true;
    reply.accuracy = metrics.test_accuracy * 100.0f;
    reply.macro_f1 = metrics.macro_f1 * 100.0f;
  }

  if (request.return_graph) {
    if (data.synthetic) {
      return Status::InvalidArgument(StrFormat(
          "method '%s' produces synthetic feature blocks, not a graph; "
          "return_graph is unsupported for it",
          request.method.c_str()));
    }
    FREEHGC_ASSIGN_OR_RETURN(reply.graph_bytes,
                             SerializeHeteroGraph(data.graph));
  }
  // Pins taken during condensation are released now; spill anything the
  // in-request inserts could not evict, so the resident gauge is back
  // under budget by the time anyone scrapes it.
  if (cache_.spill_enabled()) cache_.TrimToBudget();
  return reply;
}

std::string ServeService::StatsJson() const {
  const SchedulerStats s = scheduler_->stats();
  const pipeline::ArtifactCache::Stats c = cache_.stats();
  auto& reg = obs::MetricsRegistry::Global();
  const obs::Histogram& total = reg.GetHistogram("serve.latency.total_ns");
  std::string out = "{\n";
  out += StrFormat("  \"slots\": %d,\n", scheduler_->slots());
  out += StrFormat("  \"queue_capacity\": %d,\n",
                   scheduler_->queue_capacity());
  out += StrFormat(
      "  \"requests\": {\"admitted\": %lld, \"completed\": %lld, "
      "\"failed\": %lld, \"shed\": %lld, \"shed_budget\": %lld, "
      "\"shed_slo\": %lld, \"cancelled\": %lld, \"expired\": %lld, "
      "\"coalesced\": %lld, \"aged\": %lld},\n",
      static_cast<long long>(s.admitted), static_cast<long long>(s.completed),
      static_cast<long long>(s.failed), static_cast<long long>(s.shed),
      static_cast<long long>(s.shed_budget),
      static_cast<long long>(s.shed_slo),
      static_cast<long long>(s.cancelled), static_cast<long long>(s.expired),
      static_cast<long long>(s.coalesced), static_cast<long long>(s.aged));
  out += StrFormat("  \"queue_depth\": %lld,\n",
                   static_cast<long long>(s.queue_depth));
  out += StrFormat("  \"inflight\": %lld,\n",
                   static_cast<long long>(s.inflight));
  out += StrFormat(
      "  \"store\": {\"graphs\": %lld, \"mapped\": %lld, \"bytes\": %zu, "
      "\"resident_bytes\": %zu, \"mapped_resident_bytes\": %zu, "
      "\"evictions\": %lld},\n",
      static_cast<long long>(store_.Count()),
      static_cast<long long>(store_.MappedCount()), store_.TotalBytes(),
      store_.ResidentBytes(), store_.MappedResidentBytes(),
      static_cast<long long>(store_.Evictions()));
  out += StrFormat(
      "  \"artifact_cache\": {\"hits\": %lld, \"misses\": %lld, "
      "\"plan_hits\": %lld, \"plan_misses\": %lld, \"bytes\": %zu, "
      "\"resident_bytes\": %zu, \"spills\": %lld, \"restores\": %lld, "
      "\"spill_bytes\": %zu},\n",
      static_cast<long long>(c.hits), static_cast<long long>(c.misses),
      static_cast<long long>(c.plan_hits),
      static_cast<long long>(c.plan_misses), c.bytes, c.resident_bytes,
      static_cast<long long>(c.spills), static_cast<long long>(c.restores),
      c.spill_bytes);
  out += StrFormat("  \"eval_context_builds\": %lld,\n",
                   static_cast<long long>(eval_context_builds()));
  const obs::Histogram& queue = reg.GetHistogram("serve.latency.queue_ns");
  const obs::Histogram& exec = reg.GetHistogram("serve.latency.exec_ns");
  out += StrFormat(
      "  \"queue_ms\": {\"p50\": %.3f, \"p95\": %.3f, \"p99\": %.3f},\n",
      static_cast<double>(queue.ApproxQuantile(0.50)) * 1e-6,
      static_cast<double>(queue.ApproxQuantile(0.95)) * 1e-6,
      static_cast<double>(queue.ApproxQuantile(0.99)) * 1e-6);
  out += StrFormat(
      "  \"exec_ms\": {\"p50\": %.3f, \"p95\": %.3f, \"p99\": %.3f},\n",
      static_cast<double>(exec.ApproxQuantile(0.50)) * 1e-6,
      static_cast<double>(exec.ApproxQuantile(0.95)) * 1e-6,
      static_cast<double>(exec.ApproxQuantile(0.99)) * 1e-6);
  out += StrFormat(
      "  \"latency_ms\": {\"p50\": %.3f, \"p95\": %.3f, \"p99\": %.3f}\n",
      static_cast<double>(total.ApproxQuantile(0.50)) * 1e-6,
      static_cast<double>(total.ApproxQuantile(0.95)) * 1e-6,
      static_cast<double>(total.ApproxQuantile(0.99)) * 1e-6);
  out += "}\n";
  return out;
}

std::string ServeService::HealthJson() const {
  const SchedulerStats s = scheduler_->stats();
  return StrFormat(
      "{\"status\": \"ok\", \"uptime_seconds\": %.3f, \"slots\": %d, "
      "\"queue_depth\": %lld, \"inflight\": %lld, \"graphs\": %lld}",
      static_cast<double>(obs::NowNs() - start_ns_) * 1e-9,
      scheduler_->slots(), static_cast<long long>(s.queue_depth),
      static_cast<long long>(s.inflight),
      static_cast<long long>(store_.Count()));
}

}  // namespace freehgc::serve
