#ifndef FREEHGC_SERVE_SERVER_H_
#define FREEHGC_SERVE_SERVER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/result.h"
#include "serve/service.h"
#include "serve/wire.h"

namespace freehgc::serve {

struct ServerOptions {
  /// TCP port on 127.0.0.1; 0 binds an ephemeral port (read it back from
  /// port() after Start — the test and the --port-file flag rely on it).
  int port = 0;
  ServeOptions serve;
};

/// Local TCP front-end for a ServeService: accepts connections on
/// 127.0.0.1, speaks the wire.h protocol, one handler thread per
/// connection (the scheduler underneath provides the actual request
/// concurrency and admission control).
///
/// Shutdown is graceful and signal-safe: RequestStop only writes one byte
/// to a self-pipe (async-signal-safe, so SIGINT/SIGTERM handlers may call
/// it), the accept loop's poll() wakes on it, new connections stop, open
/// connections get SHUT_RD (in-flight requests still write their
/// responses), and the service drains every admitted request before
/// Wait() returns.
class Server {
 public:
  explicit Server(ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and starts the accept loop. InvalidArgument /
  /// Internal on socket failures (e.g. port in use).
  Status Start();

  /// The bound port (valid after Start).
  int port() const { return port_; }

  ServeService& service() { return *service_; }

  /// Async-signal-safe stop request; returns immediately.
  void RequestStop();

  /// Blocks until the server has stopped (RequestStop or a kShutdown
  /// message), all connections are closed, and the service has drained.
  void Wait();

 private:
  void AcceptLoop();
  void HandleConnection(int fd);
  /// Decodes one request payload and produces the encoded response.
  std::string HandleRequest(std::string_view payload);

  ServerOptions options_;
  std::unique_ptr<ServeService> service_;
  int listen_fd_ = -1;
  int port_ = 0;
  int wake_pipe_[2] = {-1, -1};  // self-pipe: [0] polled, [1] written
  std::atomic<bool> stop_{false};
  std::thread accept_thread_;

  std::mutex conn_mu_;
  std::vector<std::thread> conn_threads_;
  std::vector<int> conn_fds_;
  bool drained_ = false;
};

}  // namespace freehgc::serve

#endif  // FREEHGC_SERVE_SERVER_H_
