#ifndef FREEHGC_SERVE_SERVER_H_
#define FREEHGC_SERVE_SERVER_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/result.h"
#include "serve/service.h"
#include "serve/wire.h"

namespace freehgc::serve {

/// Reusable socket front-end for the wire.h protocol: binds 127.0.0.1,
/// accepts connections, one handler thread per connection, and calls a
/// request handler for every decoded frame. serve::Server and
/// cluster::MetaServer both sit on top of it.
///
/// Shutdown is graceful and signal-safe: RequestStop only writes one byte
/// to a self-pipe (async-signal-safe, so SIGINT/SIGTERM handlers may call
/// it), the accept loop's poll() wakes on it, new connections stop, open
/// connections get SHUT_RD (in-flight requests still write their
/// responses), and Wait() joins every connection thread.
class WireListener {
 public:
  /// Maps one request payload to one encoded response payload. Called
  /// concurrently from connection threads.
  using Handler = std::function<std::string(std::string_view)>;

  /// `port` 0 binds an ephemeral port (read it back from port() after
  /// Start). The handler must outlive the listener.
  WireListener(int port, Handler handler);
  ~WireListener();

  WireListener(const WireListener&) = delete;
  WireListener& operator=(const WireListener&) = delete;

  /// Binds, listens, and starts the accept loop. InvalidArgument /
  /// Internal on socket failures (e.g. port in use).
  Status Start();

  /// The bound port (valid after Start).
  int port() const { return port_; }

  /// Async-signal-safe stop request; returns immediately.
  void RequestStop();

  /// Blocks until the accept loop has exited and every connection thread
  /// has been joined.
  void Wait();

 private:
  void AcceptLoop();
  void HandleConnection(int fd);

  int requested_port_ = 0;
  Handler handler_;
  int listen_fd_ = -1;
  int port_ = 0;
  int wake_pipe_[2] = {-1, -1};  // self-pipe: [0] polled, [1] written
  std::atomic<bool> stop_{false};
  std::thread accept_thread_;

  std::mutex conn_mu_;
  std::vector<std::thread> conn_threads_;
  std::vector<int> conn_fds_;
};

struct ServerOptions {
  /// TCP port on 127.0.0.1; 0 binds an ephemeral port (read it back from
  /// port() after Start — the test and the --port-file flag rely on it).
  int port = 0;
  ServeOptions serve;
};

/// Local TCP front-end for a ServeService: a WireListener whose handler
/// dispatches the serve-side wire ops (the scheduler underneath provides
/// the actual request concurrency and admission control). After
/// RequestStop, Wait() additionally drains every admitted request.
class Server {
 public:
  explicit Server(ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and starts the accept loop. InvalidArgument /
  /// Internal on socket failures (e.g. port in use).
  Status Start();

  /// The bound port (valid after Start).
  int port() const { return listener_.port(); }

  ServeService& service() { return *service_; }

  /// Async-signal-safe stop request; returns immediately.
  void RequestStop() { listener_.RequestStop(); }

  /// Blocks until the server has stopped (RequestStop or a kShutdown
  /// message), all connections are closed, and the service has drained.
  void Wait();

 private:
  /// Decodes one request payload and produces the encoded response.
  std::string HandleRequest(std::string_view payload);

  ServerOptions options_;
  std::unique_ptr<ServeService> service_;
  WireListener listener_;

  std::mutex drain_mu_;
  bool drained_ = false;
};

}  // namespace freehgc::serve

#endif  // FREEHGC_SERVE_SERVER_H_
