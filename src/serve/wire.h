#ifndef FREEHGC_SERVE_WIRE_H_
#define FREEHGC_SERVE_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "serve/graph_store.h"
#include "serve/scheduler.h"

namespace freehgc::serve {

/// Length-prefixed binary protocol spoken by freehgc_server /
/// freehgc_client over local TCP.
///
/// Framing: every message is a u32 little-endian byte length followed by
/// that many payload bytes. A request payload is a u8 message type plus
/// type-specific fields; a response payload is a u8 status code, a
/// length-prefixed error message (empty on OK), and a type-specific body.
/// Integers are little-endian; strings and blobs are u32 length + bytes;
/// doubles are IEEE-754 bit patterns in a u64.
///
/// Versioning: a kPing reply body carries a HelloInfo (protocol version,
/// feature bits, server role). Protocol-v1 servers sent an empty Ping
/// body, and v1 clients ignore the body, so the handshake is backward
/// compatible in both directions; cluster-aware callers use it to give a
/// clean "server predates cluster support" error instead of a frame
/// mismatch when pointed at an old binary.

/// Hard cap on a single frame; larger announcements are rejected before
/// allocation (a graph upload is the only large payload).
constexpr uint32_t kMaxFrameBytes = 1u << 30;

/// Current protocol version, announced in every kPing reply. v1 is the
/// pre-handshake protocol (empty Ping body).
constexpr uint32_t kProtocolVersion = 2;

/// Feature bits announced in the kPing reply.
enum ServerFeature : uint64_t {
  /// Read-only admin ops (kMetrics/kHealth/kFlightRecorder).
  kFeatureAdminOps = 1ull << 0,
  /// Cluster metadata ops (kRegisterShard..kListShards) — meta services.
  kFeatureClusterOps = 1ull << 1,
  /// kFetchGraph (serialize a resident graph back) — serve servers.
  kFeatureFetchGraph = 1ull << 2,
};

/// What a server says about itself in the kPing reply body.
struct HelloInfo {
  /// 1 = pre-handshake server (empty Ping body).
  uint32_t protocol_version = 1;
  uint64_t features = 0;
  /// "serve" (shard / standalone server) or "meta" (cluster metadata
  /// service); empty for protocol-v1 servers.
  std::string role;
};

enum class MsgType : uint8_t {
  kPing = 1,
  kRegisterGenerator = 2,
  kUploadGraph = 3,
  kListGraphs = 4,
  kCondense = 5,
  kStats = 6,
  kShutdown = 7,
  /// Admin/observability ops. kMetrics returns the Prometheus text
  /// exposition of the live registry; kHealth a small liveness JSON;
  /// kFlightRecorder the last-N-requests ring + retained outliers as
  /// JSON. All three are read-only and carry no request fields.
  kMetrics = 8,
  kHealth = 9,
  kFlightRecorder = 10,
  /// Cluster metadata ops (protocol v2) — handled by freehgc_meta
  /// (cluster::MetaServer). A shard registers itself and its graphs,
  /// heartbeats with load, and clients resolve/place graphs and long-poll
  /// the metadata event log. A plain serve server rejects these with
  /// kFailedPrecondition (see src/cluster/wire.h for the field codecs).
  kRegisterShard = 11,
  kHeartbeat = 12,
  kResolve = 13,
  kPlace = 14,
  kWatch = 15,
  kListShards = 16,
  /// Serve-server op (protocol v2): serialize a resident graph back to
  /// the caller — the router uses it to replicate hot graphs to a second
  /// shard without re-uploading from the client.
  kFetchGraph = 17,
};

/// Appends little-endian fields to a payload buffer.
class WireWriter {
 public:
  void PutU8(uint8_t v);
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  void PutF64(double v);
  void PutString(std::string_view s);

  const std::string& payload() const { return buf_; }
  std::string Take() { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Bounds-checked reader over a received payload. Every getter returns an
/// error (never reads past the end) on a short or malformed payload.
class WireReader {
 public:
  explicit WireReader(std::string_view payload) : data_(payload) {}

  Result<uint8_t> GetU8();
  Result<uint32_t> GetU32();
  Result<uint64_t> GetU64();
  Result<int64_t> GetI64();
  Result<double> GetF64();
  Result<std::string> GetString();

  size_t remaining() const { return data_.size() - pos_; }

 private:
  Status Need(size_t n) const;

  std::string_view data_;
  size_t pos_ = 0;
};

/// Blocking frame I/O over a connected socket/pipe fd (restarts on
/// EINTR). WriteFrame sends the u32 length prefix + payload; ReadFrame
/// returns the payload. A clean EOF at a frame boundary is kUnavailable
/// ("connection closed") — the server loop's disconnect signal.
Status WriteFrame(int fd, std::string_view payload);
Result<std::string> ReadFrame(int fd);

/// Response envelope: status + type-specific body bytes.
struct WireResponse {
  Status status;
  std::string body;
};

/// Encodes/decodes the response envelope (u8 code, message, body).
std::string EncodeResponse(const Status& status, std::string_view body);
Result<WireResponse> DecodeResponse(std::string_view payload);

/// Field codecs shared by client and server. Decoders validate bounds;
/// codecs are exact inverses (tests/serve_test.cc round-trips them).
void EncodeCondenseRequest(WireWriter& w, const CondenseRequest& req);
Result<CondenseRequest> DecodeCondenseRequest(WireReader& r);
void EncodeCondenseReply(WireWriter& w, const CondenseReply& reply);
Result<CondenseReply> DecodeCondenseReply(WireReader& r);
void EncodeGraphInfo(WireWriter& w, const GraphInfo& info);
Result<GraphInfo> DecodeGraphInfo(WireReader& r);
void EncodeGraphInfoList(WireWriter& w, const std::vector<GraphInfo>& infos);
Result<std::vector<GraphInfo>> DecodeGraphInfoList(WireReader& r);
void EncodeHelloInfo(WireWriter& w, const HelloInfo& info);
Result<HelloInfo> DecodeHelloInfo(WireReader& r);

}  // namespace freehgc::serve

#endif  // FREEHGC_SERVE_WIRE_H_
