#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/logging.h"
#include "common/string_util.h"
#include "graph/serialize.h"
#include "obs/exposition.h"
#include "obs/flight_recorder.h"
#include "obs/trace.h"

namespace freehgc::serve {

WireListener::WireListener(int port, Handler handler)
    : requested_port_(port), handler_(std::move(handler)) {}

WireListener::~WireListener() {
  RequestStop();
  Wait();
  if (wake_pipe_[0] >= 0) ::close(wake_pipe_[0]);
  if (wake_pipe_[1] >= 0) ::close(wake_pipe_[1]);
}

Status WireListener::Start() {
  if (::pipe(wake_pipe_) != 0) {
    return Status::Internal(
        StrFormat("pipe() failed: %s", std::strerror(errno)));
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(
        StrFormat("socket() failed: %s", std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(requested_port_));
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return Status::InvalidArgument(StrFormat(
        "cannot bind 127.0.0.1:%d: %s", requested_port_,
        std::strerror(errno)));
  }
  if (::listen(listen_fd_, 64) != 0) {
    return Status::Internal(
        StrFormat("listen() failed: %s", std::strerror(errno)));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) !=
      0) {
    return Status::Internal(
        StrFormat("getsockname() failed: %s", std::strerror(errno)));
  }
  port_ = static_cast<int>(ntohs(bound.sin_port));
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void WireListener::RequestStop() {
  stop_.store(true, std::memory_order_release);
  if (wake_pipe_[1] >= 0) {
    // Async-signal-safe: one write, result deliberately ignored (a full
    // pipe still wakes the poll).
    const char b = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1], &b, 1);
  }
}

void WireListener::Wait() {
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> conns;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    conns.swap(conn_threads_);
  }
  for (auto& t : conns) {
    if (t.joinable()) t.join();
  }
}

void WireListener::AcceptLoop() {
  obs::SetCurrentThreadNameIfUnset("io-accept");
  for (;;) {
    pollfd fds[2];
    fds[0].fd = listen_fd_;
    fds[0].events = POLLIN;
    fds[1].fd = wake_pipe_[0];
    fds[1].events = POLLIN;
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) {
        if (stop_.load(std::memory_order_acquire)) break;
        continue;
      }
      FREEHGC_LOG(Warning) << "serve: poll() failed: "
                           << std::strerror(errno);
      break;
    }
    if (stop_.load(std::memory_order_acquire) ||
        (fds[1].revents & POLLIN) != 0) {
      break;
    }
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) continue;
      FREEHGC_LOG(Warning) << "serve: accept() failed: "
                           << std::strerror(errno);
      continue;
    }
    std::lock_guard<std::mutex> lock(conn_mu_);
    conn_fds_.push_back(conn);
    conn_threads_.emplace_back([this, conn] { HandleConnection(conn); });
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
  // Half-close open connections: reads see EOF (handler threads unblock),
  // but in-flight requests can still write their responses.
  std::lock_guard<std::mutex> lock(conn_mu_);
  for (int fd : conn_fds_) ::shutdown(fd, SHUT_RD);
}

void WireListener::HandleConnection(int fd) {
  obs::SetCurrentThreadNameIfUnset("io");
  for (;;) {
    Result<std::string> payload = ReadFrame(fd);
    if (!payload.ok()) {
      if (payload.status().code() != StatusCode::kUnavailable) {
        FREEHGC_LOG(Warning) << "serve: dropping connection: "
                             << payload.status().ToString();
      }
      break;
    }
    const std::string response = handler_(*payload);
    if (!WriteFrame(fd, response).ok()) break;
  }
  ::close(fd);
  std::lock_guard<std::mutex> lock(conn_mu_);
  for (auto it = conn_fds_.begin(); it != conn_fds_.end(); ++it) {
    if (*it == fd) {
      conn_fds_.erase(it);
      break;
    }
  }
}

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      service_(std::make_unique<ServeService>(options_.serve)),
      listener_(options_.port,
                [this](std::string_view p) { return HandleRequest(p); }) {}

Server::~Server() {
  RequestStop();
  Wait();
}

Status Server::Start() { return listener_.Start(); }

void Server::Wait() {
  listener_.Wait();
  bool drain = false;
  {
    std::lock_guard<std::mutex> lock(drain_mu_);
    if (!drained_) {
      drained_ = true;
      drain = true;
    }
  }
  if (drain) service_->Shutdown(ShutdownMode::kDrain);
}

std::string Server::HandleRequest(std::string_view payload) {
  WireReader r(payload);
  auto type = r.GetU8();
  if (!type.ok()) return EncodeResponse(type.status(), "");
  switch (static_cast<MsgType>(*type)) {
    case MsgType::kPing: {
      HelloInfo hello;
      hello.protocol_version = kProtocolVersion;
      hello.features = kFeatureAdminOps | kFeatureFetchGraph;
      hello.role = "serve";
      WireWriter w;
      EncodeHelloInfo(w, hello);
      return EncodeResponse(Status::OK(), w.payload());
    }
    case MsgType::kRegisterGenerator: {
      auto name = r.GetString();
      if (!name.ok()) return EncodeResponse(name.status(), "");
      auto preset = r.GetString();
      if (!preset.ok()) return EncodeResponse(preset.status(), "");
      auto seed = r.GetU64();
      if (!seed.ok()) return EncodeResponse(seed.status(), "");
      auto scale = r.GetF64();
      if (!scale.ok()) return EncodeResponse(scale.status(), "");
      auto info = service_->store().RegisterGenerator(*name, *preset, *seed,
                                                      *scale);
      if (!info.ok()) return EncodeResponse(info.status(), "");
      WireWriter w;
      EncodeGraphInfo(w, *info);
      return EncodeResponse(Status::OK(), w.payload());
    }
    case MsgType::kUploadGraph: {
      auto name = r.GetString();
      if (!name.ok()) return EncodeResponse(name.status(), "");
      auto container = r.GetString();
      if (!container.ok()) return EncodeResponse(container.status(), "");
      auto info = service_->store().RegisterSerialized(*name, *container);
      if (!info.ok()) return EncodeResponse(info.status(), "");
      WireWriter w;
      EncodeGraphInfo(w, *info);
      return EncodeResponse(Status::OK(), w.payload());
    }
    case MsgType::kListGraphs: {
      WireWriter w;
      EncodeGraphInfoList(w, service_->store().List());
      return EncodeResponse(Status::OK(), w.payload());
    }
    case MsgType::kCondense: {
      auto req = DecodeCondenseRequest(r);
      if (!req.ok()) return EncodeResponse(req.status(), "");
      // Synchronous per connection; concurrency comes from concurrent
      // connections feeding the scheduler's slots.
      auto reply = service_->Condense(std::move(*req));
      if (!reply.ok()) return EncodeResponse(reply.status(), "");
      WireWriter w;
      EncodeCondenseReply(w, *reply);
      return EncodeResponse(Status::OK(), w.payload());
    }
    case MsgType::kFetchGraph: {
      // Serialize a resident graph back — the router's hot-graph
      // replication path (shard-to-shard copy without the client).
      auto name = r.GetString();
      if (!name.ok()) return EncodeResponse(name.status(), "");
      auto graph = service_->store().Get(*name);
      if (!graph.ok()) return EncodeResponse(graph.status(), "");
      auto bytes = SerializeHeteroGraph(**graph);
      if (!bytes.ok()) return EncodeResponse(bytes.status(), "");
      WireWriter w;
      w.PutString(*bytes);
      return EncodeResponse(Status::OK(), w.payload());
    }
    case MsgType::kStats:
      return EncodeResponse(Status::OK(), service_->StatsJson());
    case MsgType::kMetrics:
      // Prometheus text exposition of the live registry; scrape with
      // `freehgc_client metrics` or watch with freehgc_top.
      return EncodeResponse(Status::OK(), obs::PrometheusText());
    case MsgType::kHealth:
      return EncodeResponse(Status::OK(), service_->HealthJson());
    case MsgType::kFlightRecorder:
      return EncodeResponse(Status::OK(),
                            obs::FlightRecorder::Global().DumpJson());
    case MsgType::kShutdown:
      RequestStop();
      return EncodeResponse(Status::OK(), "");
    case MsgType::kRegisterShard:
    case MsgType::kHeartbeat:
    case MsgType::kResolve:
    case MsgType::kPlace:
    case MsgType::kWatch:
    case MsgType::kListShards:
      return EncodeResponse(
          Status::FailedPrecondition(StrFormat(
              "message type %u is a cluster metadata op; this is a serve "
              "server (protocol v%u) — connect to freehgc_meta instead",
              static_cast<unsigned>(*type), kProtocolVersion)),
          "");
  }
  return EncodeResponse(
      Status::InvalidArgument(StrFormat("unknown message type %u",
                                        static_cast<unsigned>(*type))),
      "");
}

}  // namespace freehgc::serve
