#include "serve/graph_store.h"

#include <utility>

#include "common/string_util.h"
#include "datasets/generator.h"
#include "graph/serialize.h"
#include "obs/metrics.h"

namespace freehgc::serve {

Result<GraphInfo> GraphStore::Register(const std::string& name,
                                       HeteroGraph graph) {
  if (name.empty()) {
    return Status::InvalidArgument("graph name must not be empty");
  }
  FREEHGC_RETURN_IF_ERROR(graph.Validate());
  return Insert(name, std::move(graph));
}

Result<GraphInfo> GraphStore::RegisterSerialized(const std::string& name,
                                                 std::string_view container) {
  FREEHGC_ASSIGN_OR_RETURN(HeteroGraph g, DeserializeHeteroGraph(container));
  return Register(name, std::move(g));
}

Result<GraphInfo> GraphStore::RegisterGenerator(const std::string& name,
                                                const std::string& preset,
                                                uint64_t seed, double scale,
                                                exec::ExecContext* ctx) {
  FREEHGC_ASSIGN_OR_RETURN(
      HeteroGraph g,
      datasets::MakeByName(preset, seed, scale > 0 ? scale : 1.0, ctx));
  return Register(name, std::move(g));
}

Result<GraphInfo> GraphStore::Insert(const std::string& name,
                                     HeteroGraph graph) {
  GraphInfo info;
  info.name = name;
  info.fingerprint = graph.ContentFingerprint();
  info.nodes = graph.TotalNodes();
  info.edges = graph.TotalEdges();
  info.memory_bytes = graph.MemoryBytes();

  std::lock_guard<std::mutex> lock(mu_);
  auto it = graphs_.find(name);
  if (it != graphs_.end()) {
    if (it->second.info.fingerprint == info.fingerprint) {
      return it->second.info;  // idempotent re-registration
    }
    return Status::FailedPrecondition(StrFormat(
        "graph '%s' already registered with different content "
        "(resident %016llx, new %016llx)",
        name.c_str(),
        static_cast<unsigned long long>(it->second.info.fingerprint),
        static_cast<unsigned long long>(info.fingerprint)));
  }
  Entry entry;
  entry.graph = std::make_shared<const HeteroGraph>(std::move(graph));
  entry.info = info;
  graphs_.emplace(name, std::move(entry));
  UpdateGauges();
  return info;
}

Result<GraphStore::GraphRef> GraphStore::Get(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = graphs_.find(name);
  if (it == graphs_.end()) {
    return Status::NotFound("no resident graph named '" + name + "'");
  }
  return it->second.graph;
}

Result<GraphInfo> GraphStore::Info(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = graphs_.find(name);
  if (it == graphs_.end()) {
    return Status::NotFound("no resident graph named '" + name + "'");
  }
  return it->second.info;
}

std::vector<GraphInfo> GraphStore::List() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<GraphInfo> out;
  out.reserve(graphs_.size());
  for (const auto& [name, entry] : graphs_) out.push_back(entry.info);
  return out;
}

bool GraphStore::Remove(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  const bool erased = graphs_.erase(name) > 0;
  if (erased) UpdateGauges();
  return erased;
}

int64_t GraphStore::Count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(graphs_.size());
}

size_t GraphStore::TotalBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t bytes = 0;
  for (const auto& [name, entry] : graphs_) {
    bytes += entry.info.memory_bytes;
  }
  return bytes;
}

void GraphStore::UpdateGauges() const {
  static obs::Gauge& count =
      obs::MetricsRegistry::Global().GetGauge("serve.store.graphs");
  static obs::Gauge& bytes =
      obs::MetricsRegistry::Global().GetGauge("serve.store.bytes");
  count.Set(static_cast<int64_t>(graphs_.size()));
  size_t total = 0;
  for (const auto& [name, entry] : graphs_) {
    total += entry.info.memory_bytes;
  }
  bytes.Set(static_cast<int64_t>(total));
}

}  // namespace freehgc::serve
