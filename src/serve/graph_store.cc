#include "serve/graph_store.h"

#include <dirent.h>
#include <sys/stat.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "common/string_util.h"
#include "common/timer.h"
#include "datasets/generator.h"
#include "graph/section_io.h"
#include "graph/serialize.h"
#include "obs/metrics.h"

namespace freehgc::serve {

namespace {

void ObserveLoad(const char* histogram, const Timer& timer) {
  obs::MetricsRegistry::Global().GetHistogram(histogram).Observe(
      static_cast<int64_t>(timer.ElapsedSeconds() * 1e9));
}

obs::Counter& EvictionCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("store.evictions");
  return c;
}

obs::Counter& RemapCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("store.remaps");
  return c;
}

bool EndsWith(const std::string& s, const char* suffix) {
  const size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

}  // namespace

Result<GraphInfo> GraphStore::Register(const std::string& name,
                                       HeteroGraph graph) {
  if (name.empty()) {
    return Status::InvalidArgument("graph name must not be empty");
  }
  FREEHGC_RETURN_IF_ERROR(graph.Validate());
  const uint64_t fingerprint = graph.ContentFingerprint();
  return Insert(name, std::move(graph), fingerprint, {}, nullptr);
}

Result<GraphInfo> GraphStore::RegisterSerialized(const std::string& name,
                                                 std::string_view container) {
  std::string spool;
  {
    std::lock_guard<std::mutex> lock(mu_);
    spool = spool_dir_;
  }
  Timer timer;
  FREEHGC_ASSIGN_OR_RETURN(HeteroGraph g, DeserializeHeteroGraph(container));
  if (spool.empty()) {
    auto info = Register(name, std::move(g));
    if (info.ok()) ObserveLoad("store.load.heap_ns", timer);
    return info;
  }
  // Spool-on-upload: persist as a v3 container keyed by content
  // fingerprint, free the heap copy, and re-register mapped. Identical
  // content re-uploads rewrite the same file (atomically), so the spool
  // dir never accumulates duplicates.
  FREEHGC_RETURN_IF_ERROR(g.Validate());
  const uint64_t fp = g.ContentFingerprint();
  const std::string path = StrFormat(
      "%s/%016llx.fhgc", spool.c_str(), static_cast<unsigned long long>(fp));
  FREEHGC_RETURN_IF_ERROR(SaveHeteroGraphV3(g, path).status());
  g = HeteroGraph();
  return RegisterMappedFile(name, path);
}

Result<GraphInfo> GraphStore::RegisterMappedFile(const std::string& name,
                                                 const std::string& path) {
  if (name.empty()) {
    return Status::InvalidArgument("graph name must not be empty");
  }
  Timer timer;
  FREEHGC_ASSIGN_OR_RETURN(MappedGraph mg, MapHeteroGraphDetailed(path));
  FREEHGC_RETURN_IF_ERROR(mg.graph.Validate());
  auto info = Insert(name, std::move(mg.graph), mg.fingerprint, path,
                     std::move(mg.mapping));
  if (info.ok()) ObserveLoad("store.load.mapped_ns", timer);
  return info;
}

Status GraphStore::SetSpoolDir(const std::string& dir) {
  if (dir.empty()) {
    return Status::InvalidArgument("spool dir must not be empty");
  }
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::Internal(StrFormat("cannot create spool dir %s: %s",
                                      dir.c_str(), std::strerror(errno)));
  }
  std::lock_guard<std::mutex> lock(mu_);
  spool_dir_ = dir;
  return Status::OK();
}

Result<GraphInfo> GraphStore::RegisterGenerator(const std::string& name,
                                                const std::string& preset,
                                                uint64_t seed, double scale,
                                                exec::ExecContext* ctx) {
  FREEHGC_ASSIGN_OR_RETURN(
      HeteroGraph g,
      datasets::MakeByName(preset, seed, scale > 0 ? scale : 1.0, ctx));
  return Register(name, std::move(g));
}

void GraphStore::SetResidentBudget(size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  resident_budget_ = bytes;
  TrimLocked(nullptr);
  UpdateGauges();
}

Result<GraphInfo> GraphStore::Insert(const std::string& name,
                                     HeteroGraph graph, uint64_t fingerprint,
                                     std::string source_path,
                                     std::shared_ptr<const MappedFile> mapping) {
  GraphInfo info;
  info.name = name;
  info.fingerprint = fingerprint;
  info.nodes = graph.TotalNodes();
  info.edges = graph.TotalEdges();
  info.memory_bytes = graph.MemoryBytes();
  info.mapped = graph.IsMapped();
  info.source_path = std::move(source_path);
  const size_t resident = graph.ResidentHeapBytes();

  std::lock_guard<std::mutex> lock(mu_);
  auto it = graphs_.find(name);
  if (it != graphs_.end()) {
    if (it->second.info.fingerprint == info.fingerprint) {
      return it->second.info;  // idempotent re-registration
    }
    return Status::FailedPrecondition(StrFormat(
        "graph '%s' already registered with different content "
        "(resident %016llx, new %016llx)",
        name.c_str(),
        static_cast<unsigned long long>(it->second.info.fingerprint),
        static_cast<unsigned long long>(info.fingerprint)));
  }
  Entry entry;
  entry.graph = std::make_shared<const HeteroGraph>(std::move(graph));
  entry.info = info;
  entry.resident_bytes = resident;
  entry.mapping = std::move(mapping);
  entry.tick = ++tick_;
  auto [pos, inserted] = graphs_.emplace(name, std::move(entry));
  (void)inserted;
  TrimLocked(&pos->second);
  UpdateGauges();
  return info;
}

Result<GraphStore::GraphRef> GraphStore::Get(const std::string& name) {
  std::string path;
  uint64_t expect_fp = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = graphs_.find(name);
    if (it == graphs_.end()) {
      return Status::NotFound("no resident graph named '" + name + "'");
    }
    Entry& e = it->second;
    if (e.graph != nullptr) {
      e.tick = ++tick_;
      return e.graph;
    }
    // Evicted under the residency budget: re-map outside the lock.
    path = e.info.source_path;
    expect_fp = e.info.fingerprint;
  }
  FREEHGC_ASSIGN_OR_RETURN(MappedGraph mg, MapHeteroGraphDetailed(path));
  if (mg.fingerprint != expect_fp) {
    return Status::Internal(StrFormat(
        "spool file %s changed since eviction (was %016llx, now %016llx)",
        path.c_str(), static_cast<unsigned long long>(expect_fp),
        static_cast<unsigned long long>(mg.fingerprint)));
  }
  auto graph = std::make_shared<const HeteroGraph>(std::move(mg.graph));
  if (mg.mapping != nullptr) {
    mg.mapping->Advise(MappedFile::AccessPattern::kWillNeed);
  }

  std::lock_guard<std::mutex> lock(mu_);
  auto it = graphs_.find(name);
  if (it == graphs_.end()) {
    return Status::NotFound("no resident graph named '" + name + "'");
  }
  Entry& e = it->second;
  if (e.graph != nullptr) {
    e.tick = ++tick_;  // another thread re-mapped first; use its copy
    return e.graph;
  }
  e.graph = std::move(graph);
  e.mapping = std::move(mg.mapping);
  e.info.resident = true;
  e.tick = ++tick_;
  RemapCounter().Increment();
  TrimLocked(&e);
  UpdateGauges();
  return e.graph;
}

Result<GraphInfo> GraphStore::Info(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = graphs_.find(name);
  if (it == graphs_.end()) {
    return Status::NotFound("no resident graph named '" + name + "'");
  }
  return it->second.info;
}

std::vector<GraphInfo> GraphStore::List() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<GraphInfo> out;
  out.reserve(graphs_.size());
  for (const auto& [name, entry] : graphs_) out.push_back(entry.info);
  return out;
}

bool GraphStore::Remove(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  const bool erased = graphs_.erase(name) > 0;
  if (erased) UpdateGauges();
  return erased;
}

int64_t GraphStore::Count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(graphs_.size());
}

size_t GraphStore::TotalBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t bytes = 0;
  for (const auto& [name, entry] : graphs_) {
    bytes += entry.info.memory_bytes;
  }
  return bytes;
}

int64_t GraphStore::MappedCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t mapped = 0;
  for (const auto& [name, entry] : graphs_) {
    if (entry.info.mapped) ++mapped;
  }
  return mapped;
}

size_t GraphStore::ResidentBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t bytes = 0;
  for (const auto& [name, entry] : graphs_) {
    bytes += entry.resident_bytes;
  }
  return bytes;
}

size_t GraphStore::MappedResidentBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return MappedResidentLocked();
}

int64_t GraphStore::Evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

size_t GraphStore::MappedResidentLocked() const {
  size_t bytes = 0;
  for (const auto& [name, entry] : graphs_) {
    if (entry.info.mapped && entry.graph != nullptr) {
      bytes += entry.info.memory_bytes;
    }
  }
  return bytes;
}

void GraphStore::TrimLocked(const Entry* protect) {
  if (resident_budget_ == SIZE_MAX) return;
  while (MappedResidentLocked() > resident_budget_) {
    Entry* victim = nullptr;
    for (auto& [name, entry] : graphs_) {
      if (&entry == protect) continue;
      if (entry.graph == nullptr || !entry.info.mapped ||
          entry.info.source_path.empty()) {
        continue;  // already evicted, heap-resident, or not restorable
      }
      if (entry.graph.use_count() != 1) continue;  // in-flight reference
      if (victim == nullptr || entry.tick < victim->tick) victim = &entry;
    }
    if (victim == nullptr) break;  // everything left is pinned or protected
    // Pages are cold: hand them back to the kernel before dropping the
    // keepalive (an in-flight view, if any raced in, just re-faults).
    if (victim->mapping != nullptr) {
      victim->mapping->Advise(MappedFile::AccessPattern::kDontNeed);
    }
    victim->graph.reset();
    victim->mapping.reset();
    victim->info.resident = false;
    ++evictions_;
    EvictionCounter().Increment();
  }
}

void GraphStore::UpdateGauges() const {
  static obs::Gauge& count =
      obs::MetricsRegistry::Global().GetGauge("serve.store.graphs");
  static obs::Gauge& bytes =
      obs::MetricsRegistry::Global().GetGauge("serve.store.bytes");
  static obs::Gauge& resident =
      obs::MetricsRegistry::Global().GetGauge("store.resident_bytes");
  static obs::Gauge& mapped_resident = obs::MetricsRegistry::Global().GetGauge(
      "store.mapped_resident_bytes");
  static obs::Gauge& budget = obs::MetricsRegistry::Global().GetGauge(
      "store.resident_budget_bytes");
  count.Set(static_cast<int64_t>(graphs_.size()));
  size_t total = 0;
  size_t res = 0;
  for (const auto& [name, entry] : graphs_) {
    total += entry.info.memory_bytes;
    res += entry.resident_bytes;
  }
  bytes.Set(static_cast<int64_t>(total));
  resident.Set(static_cast<int64_t>(res));
  mapped_resident.Set(static_cast<int64_t>(MappedResidentLocked()));
  budget.Set(resident_budget_ == SIZE_MAX
                 ? 0
                 : static_cast<int64_t>(resident_budget_));
}

Result<int> SweepSpoolDir(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    return Status::NotFound(StrFormat("cannot open spool dir %s: %s",
                                      dir.c_str(), std::strerror(errno)));
  }
  int removed = 0;
  for (struct dirent* ent = ::readdir(d); ent != nullptr;
       ent = ::readdir(d)) {
    const std::string name = ent->d_name;
    if (name == "." || name == "..") continue;
    const std::string path = dir + "/" + name;
    bool drop = false;
    if (EndsWith(name, ".spill") || EndsWith(name, ".tmp")) {
      // Spill files are keyed by in-process cache state; across a restart
      // they are all orphans. Tmp files are abandoned atomic publishes.
      drop = true;
    } else if (EndsWith(name, ".fhgc")) {
      // Keep only containers whose header fingerprint matches their
      // `<fingerprint>.fhgc` name (what spool-on-upload writes).
      const std::string stem = name.substr(0, name.size() - 5);
      char* end = nullptr;
      const uint64_t named = std::strtoull(stem.c_str(), &end, 16);
      const bool well_named = stem.size() == 16 && end != nullptr &&
                              *end == '\0';
      if (!well_named) {
        drop = true;
      } else {
        Result<uint64_t> fp = section_io::PeekFingerprint(
            path, section_io::GraphContainerFormat());
        drop = !fp.ok() || *fp != named;
      }
    }
    if (drop && std::remove(path.c_str()) == 0) ++removed;
  }
  ::closedir(d);
  return removed;
}

}  // namespace freehgc::serve
