#include "serve/graph_store.h"

#include <sys/stat.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/string_util.h"
#include "common/timer.h"
#include "datasets/generator.h"
#include "graph/serialize.h"
#include "obs/metrics.h"

namespace freehgc::serve {

namespace {

void ObserveLoad(const char* histogram, const Timer& timer) {
  obs::MetricsRegistry::Global().GetHistogram(histogram).Observe(
      static_cast<int64_t>(timer.ElapsedSeconds() * 1e9));
}

}  // namespace

Result<GraphInfo> GraphStore::Register(const std::string& name,
                                       HeteroGraph graph) {
  if (name.empty()) {
    return Status::InvalidArgument("graph name must not be empty");
  }
  FREEHGC_RETURN_IF_ERROR(graph.Validate());
  const uint64_t fingerprint = graph.ContentFingerprint();
  return Insert(name, std::move(graph), fingerprint, {});
}

Result<GraphInfo> GraphStore::RegisterSerialized(const std::string& name,
                                                 std::string_view container) {
  std::string spool;
  {
    std::lock_guard<std::mutex> lock(mu_);
    spool = spool_dir_;
  }
  Timer timer;
  FREEHGC_ASSIGN_OR_RETURN(HeteroGraph g, DeserializeHeteroGraph(container));
  if (spool.empty()) {
    auto info = Register(name, std::move(g));
    if (info.ok()) ObserveLoad("store.load.heap_ns", timer);
    return info;
  }
  // Spool-on-upload: persist as a v3 container keyed by content
  // fingerprint, free the heap copy, and re-register mapped. Identical
  // content re-uploads rewrite the same file (atomically), so the spool
  // dir never accumulates duplicates.
  FREEHGC_RETURN_IF_ERROR(g.Validate());
  const uint64_t fp = g.ContentFingerprint();
  const std::string path = StrFormat(
      "%s/%016llx.fhgc", spool.c_str(), static_cast<unsigned long long>(fp));
  FREEHGC_RETURN_IF_ERROR(SaveHeteroGraphV3(g, path).status());
  g = HeteroGraph();
  return RegisterMappedFile(name, path);
}

Result<GraphInfo> GraphStore::RegisterMappedFile(const std::string& name,
                                                 const std::string& path) {
  if (name.empty()) {
    return Status::InvalidArgument("graph name must not be empty");
  }
  Timer timer;
  FREEHGC_ASSIGN_OR_RETURN(MappedGraph mg, MapHeteroGraphDetailed(path));
  FREEHGC_RETURN_IF_ERROR(mg.graph.Validate());
  auto info = Insert(name, std::move(mg.graph), mg.fingerprint, path);
  if (info.ok()) ObserveLoad("store.load.mapped_ns", timer);
  return info;
}

Status GraphStore::SetSpoolDir(const std::string& dir) {
  if (dir.empty()) {
    return Status::InvalidArgument("spool dir must not be empty");
  }
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::Internal(StrFormat("cannot create spool dir %s: %s",
                                      dir.c_str(), std::strerror(errno)));
  }
  std::lock_guard<std::mutex> lock(mu_);
  spool_dir_ = dir;
  return Status::OK();
}

Result<GraphInfo> GraphStore::RegisterGenerator(const std::string& name,
                                                const std::string& preset,
                                                uint64_t seed, double scale,
                                                exec::ExecContext* ctx) {
  FREEHGC_ASSIGN_OR_RETURN(
      HeteroGraph g,
      datasets::MakeByName(preset, seed, scale > 0 ? scale : 1.0, ctx));
  return Register(name, std::move(g));
}

Result<GraphInfo> GraphStore::Insert(const std::string& name,
                                     HeteroGraph graph, uint64_t fingerprint,
                                     std::string source_path) {
  GraphInfo info;
  info.name = name;
  info.fingerprint = fingerprint;
  info.nodes = graph.TotalNodes();
  info.edges = graph.TotalEdges();
  info.memory_bytes = graph.MemoryBytes();
  info.mapped = graph.IsMapped();
  info.source_path = std::move(source_path);
  const size_t resident = graph.ResidentHeapBytes();

  std::lock_guard<std::mutex> lock(mu_);
  auto it = graphs_.find(name);
  if (it != graphs_.end()) {
    if (it->second.info.fingerprint == info.fingerprint) {
      return it->second.info;  // idempotent re-registration
    }
    return Status::FailedPrecondition(StrFormat(
        "graph '%s' already registered with different content "
        "(resident %016llx, new %016llx)",
        name.c_str(),
        static_cast<unsigned long long>(it->second.info.fingerprint),
        static_cast<unsigned long long>(info.fingerprint)));
  }
  Entry entry;
  entry.graph = std::make_shared<const HeteroGraph>(std::move(graph));
  entry.info = info;
  entry.resident_bytes = resident;
  graphs_.emplace(name, std::move(entry));
  UpdateGauges();
  return info;
}

Result<GraphStore::GraphRef> GraphStore::Get(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = graphs_.find(name);
  if (it == graphs_.end()) {
    return Status::NotFound("no resident graph named '" + name + "'");
  }
  return it->second.graph;
}

Result<GraphInfo> GraphStore::Info(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = graphs_.find(name);
  if (it == graphs_.end()) {
    return Status::NotFound("no resident graph named '" + name + "'");
  }
  return it->second.info;
}

std::vector<GraphInfo> GraphStore::List() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<GraphInfo> out;
  out.reserve(graphs_.size());
  for (const auto& [name, entry] : graphs_) out.push_back(entry.info);
  return out;
}

bool GraphStore::Remove(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  const bool erased = graphs_.erase(name) > 0;
  if (erased) UpdateGauges();
  return erased;
}

int64_t GraphStore::Count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(graphs_.size());
}

size_t GraphStore::TotalBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t bytes = 0;
  for (const auto& [name, entry] : graphs_) {
    bytes += entry.info.memory_bytes;
  }
  return bytes;
}

int64_t GraphStore::MappedCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t mapped = 0;
  for (const auto& [name, entry] : graphs_) {
    if (entry.info.mapped) ++mapped;
  }
  return mapped;
}

size_t GraphStore::ResidentBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t bytes = 0;
  for (const auto& [name, entry] : graphs_) {
    bytes += entry.resident_bytes;
  }
  return bytes;
}

void GraphStore::UpdateGauges() const {
  static obs::Gauge& count =
      obs::MetricsRegistry::Global().GetGauge("serve.store.graphs");
  static obs::Gauge& bytes =
      obs::MetricsRegistry::Global().GetGauge("serve.store.bytes");
  static obs::Gauge& resident =
      obs::MetricsRegistry::Global().GetGauge("store.resident_bytes");
  count.Set(static_cast<int64_t>(graphs_.size()));
  size_t total = 0;
  size_t res = 0;
  for (const auto& [name, entry] : graphs_) {
    total += entry.info.memory_bytes;
    res += entry.resident_bytes;
  }
  bytes.Set(static_cast<int64_t>(total));
  resident.Set(static_cast<int64_t>(res));
}

}  // namespace freehgc::serve
