#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/string_util.h"
#include "serve/wire.h"

namespace freehgc::serve {

ServeClient::~ServeClient() { Close(); }

Status ServeClient::Connect(int port) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return Status::Internal(
        StrFormat("socket() failed: %s", std::strerror(errno)));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const int err = errno;
    Close();
    return Status::Unavailable(StrFormat("cannot connect to 127.0.0.1:%d: %s",
                                         port, std::strerror(err)));
  }
  return Status::OK();
}

void ServeClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<std::string> ServeClient::Call(std::string payload) {
  if (fd_ < 0) return Status::FailedPrecondition("client is not connected");
  FREEHGC_RETURN_IF_ERROR(WriteFrame(fd_, payload));
  FREEHGC_ASSIGN_OR_RETURN(std::string frame, ReadFrame(fd_));
  FREEHGC_ASSIGN_OR_RETURN(WireResponse response, DecodeResponse(frame));
  FREEHGC_RETURN_IF_ERROR(response.status);
  return std::move(response.body);
}

Status ServeClient::Ping() {
  WireWriter w;
  w.PutU8(static_cast<uint8_t>(MsgType::kPing));
  return Call(w.Take()).status();
}

Result<HelloInfo> ServeClient::Hello() {
  WireWriter w;
  w.PutU8(static_cast<uint8_t>(MsgType::kPing));
  FREEHGC_ASSIGN_OR_RETURN(std::string body, Call(w.Take()));
  if (body.empty()) return HelloInfo{};  // protocol-v1 server
  WireReader r(body);
  return DecodeHelloInfo(r);
}

Result<std::string> ServeClient::FetchGraph(const std::string& name) {
  WireWriter w;
  w.PutU8(static_cast<uint8_t>(MsgType::kFetchGraph));
  w.PutString(name);
  FREEHGC_ASSIGN_OR_RETURN(std::string body, Call(w.Take()));
  WireReader r(body);
  return r.GetString();
}

Result<GraphInfo> ServeClient::RegisterGenerator(const std::string& name,
                                                 const std::string& preset,
                                                 uint64_t seed, double scale) {
  WireWriter w;
  w.PutU8(static_cast<uint8_t>(MsgType::kRegisterGenerator));
  w.PutString(name);
  w.PutString(preset);
  w.PutU64(seed);
  w.PutF64(scale);
  FREEHGC_ASSIGN_OR_RETURN(std::string body, Call(w.Take()));
  WireReader r(body);
  return DecodeGraphInfo(r);
}

Result<GraphInfo> ServeClient::UploadGraph(const std::string& name,
                                           std::string_view container) {
  WireWriter w;
  w.PutU8(static_cast<uint8_t>(MsgType::kUploadGraph));
  w.PutString(name);
  w.PutString(container);
  FREEHGC_ASSIGN_OR_RETURN(std::string body, Call(w.Take()));
  WireReader r(body);
  return DecodeGraphInfo(r);
}

Result<std::vector<GraphInfo>> ServeClient::ListGraphs() {
  WireWriter w;
  w.PutU8(static_cast<uint8_t>(MsgType::kListGraphs));
  FREEHGC_ASSIGN_OR_RETURN(std::string body, Call(w.Take()));
  WireReader r(body);
  return DecodeGraphInfoList(r);
}

Result<CondenseReply> ServeClient::Condense(const CondenseRequest& request) {
  WireWriter w;
  w.PutU8(static_cast<uint8_t>(MsgType::kCondense));
  EncodeCondenseRequest(w, request);
  FREEHGC_ASSIGN_OR_RETURN(std::string body, Call(w.Take()));
  WireReader r(body);
  return DecodeCondenseReply(r);
}

Result<std::string> ServeClient::Stats() {
  WireWriter w;
  w.PutU8(static_cast<uint8_t>(MsgType::kStats));
  return Call(w.Take());
}

Result<std::string> ServeClient::Metrics() {
  WireWriter w;
  w.PutU8(static_cast<uint8_t>(MsgType::kMetrics));
  return Call(w.Take());
}

Result<std::string> ServeClient::Health() {
  WireWriter w;
  w.PutU8(static_cast<uint8_t>(MsgType::kHealth));
  return Call(w.Take());
}

Result<std::string> ServeClient::FlightRecorderDump() {
  WireWriter w;
  w.PutU8(static_cast<uint8_t>(MsgType::kFlightRecorder));
  return Call(w.Take());
}

Status ServeClient::Shutdown() {
  WireWriter w;
  w.PutU8(static_cast<uint8_t>(MsgType::kShutdown));
  return Call(w.Take()).status();
}

}  // namespace freehgc::serve
