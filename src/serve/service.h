#ifndef FREEHGC_SERVE_SERVICE_H_
#define FREEHGC_SERVE_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>

#include "hgnn/models.h"
#include "hgnn/trainer.h"
#include "obs/access_log.h"
#include "pipeline/artifact_cache.h"
#include "serve/graph_store.h"
#include "serve/scheduler.h"

namespace freehgc::serve {

/// Service configuration.
struct ServeOptions {
  /// Concurrent worker slots (each runs one request on its own
  /// ExecContext; see RequestScheduler).
  int slots = 2;
  /// Bounded admission queue; submissions beyond it are shed with
  /// kResourceExhausted.
  int queue_capacity = 32;
  /// Threads per slot ExecContext; 0 = exec::ThreadsPerSlot(slots).
  int threads_per_slot = 0;
  /// Max requests executing at once (see SchedulerOptions). 0 resolves to
  /// exec::ConcurrentSlotBudget(slots) — on a machine with fewer cores
  /// than slots, surplus slots park instead of time-slicing.
  int max_concurrent = 0;
  /// Priority aging quantum in milliseconds (see SchedulerOptions);
  /// 0 disables. The serving default keeps low-priority work from
  /// starving under a sustained high-priority stream.
  int64_t aging_quantum_ms = 250;
  /// Admission-time SLO in milliseconds (see SchedulerOptions); a
  /// submission predicted to finish past it is shed immediately.
  /// 0 (default) disables.
  int64_t slo_ms = 0;
  /// Coalesce identical in-flight requests: duplicates of a queued or
  /// executing (graph, method, ratio, seed, meta-path config, evaluate,
  /// return_graph) request ride its execution and receive a copy of its
  /// reply. Priority/deadline are excluded from the identity — a
  /// follower's fate is its leader's.
  bool coalesce_requests = true;
  /// When non-empty, every terminal request appends one JSONL line here
  /// (see obs::AccessLog). Open failure logs a warning and disables the
  /// log; it never fails service construction.
  std::string access_log_path;
  /// Evaluator config for CondenseRequest::evaluate. Serving default is
  /// smaller than the research default (hidden 32, 60 epochs, no early
  /// stopping) so evaluated requests have bounded latency.
  hgnn::HgnnConfig eval;
  /// Heap bytes the ArtifactCache's evictable tiers may keep resident
  /// (see ArtifactCache::SpillOptions). Takes effect only with a
  /// spill_dir; SIZE_MAX = unlimited.
  size_t artifact_budget_bytes = SIZE_MAX;
  /// Bytes of mapped graphs the GraphStore may keep resident (see
  /// GraphStore::SetResidentBudget). SIZE_MAX = unlimited.
  size_t store_resident_budget_bytes = SIZE_MAX;
  /// Directory for artifact spool files. Non-empty enables the
  /// ArtifactCache spill tier (and the spillable EvalContext build path).
  std::string spill_dir;
  /// Spill-aware admission: when > 0 and a budget is configured, new
  /// submissions are shed with kResourceExhausted while a budgeted tier
  /// sits past `factor ×` its budget — the ArtifactCache resident tier
  /// (artifact_budget_bytes, spill enabled) or the GraphStore
  /// mapped-resident set (store_resident_budget_bytes). Shedding before
  /// the spill tier thrashes; counted in serve.shed.budget. 0 disables.
  double budget_shed_factor = 2.0;

  ServeOptions() {
    eval.kind = hgnn::HgnnKind::kSeHGNN;
    eval.hidden = 32;
    eval.epochs = 60;
    eval.patience = 0;
  }
};

/// The condensation service: a GraphStore of resident graphs, one shared
/// ArtifactCache, a coalesced per-(graph, meta-path config) EvalContext
/// cache, and a RequestScheduler whose work body runs MethodRegistry
/// condensers against the shared state.
///
/// Coalescing: requests against the same (graph fingerprint, max_hops,
/// max_paths, max_row_nnz) share one EvalContext — the expensive
/// enumerate-paths + SpGEMM + propagate step runs once (the first request
/// builds, concurrent duplicates block on the build, later ones hit), and
/// the composed adjacencies inside it land in the ArtifactCache where
/// condensation itself re-reads them. Determinism: all shared artifacts
/// are outputs of deterministic kernels, so concurrent requests return
/// results bit-identical to sequential execution (tests/serve_test.cc).
class ServeService {
 public:
  explicit ServeService(ServeOptions options = {});
  ~ServeService();

  ServeService(const ServeService&) = delete;
  ServeService& operator=(const ServeService&) = delete;

  GraphStore& store() { return store_; }
  pipeline::ArtifactCache& cache() { return cache_; }
  const ServeOptions& options() const { return options_; }

  /// Asynchronous submission (validated first: unknown graph names and
  /// out-of-range ratios fail here, before occupying a queue slot).
  Result<TicketPtr> Submit(CondenseRequest request);

  /// Synchronous convenience: Submit + Wait.
  Result<CondenseReply> Condense(CondenseRequest request);

  /// Cancels a still-queued request (see RequestScheduler::Cancel).
  bool Cancel(uint64_t id);

  /// Stops admission and drains (or cancels queued) requests. Idempotent;
  /// the destructor drains if never called.
  void Shutdown(ShutdownMode mode = ShutdownMode::kDrain);

  SchedulerStats scheduler_stats() const { return scheduler_->stats(); }

  /// How many EvalContexts were actually built — the coalescing test
  /// asserts this stays at 1 for K same-config requests.
  int64_t eval_context_builds() const {
    return eval_context_builds_.load(std::memory_order_relaxed);
  }

  /// One-line-per-field JSON summary (request counters, store and cache
  /// occupancy, latency quantiles) — what the server dumps on shutdown.
  std::string StatsJson() const;

  /// Liveness summary for the HEALTH wire op: status, uptime, slot and
  /// queue occupancy, resident graph count.
  std::string HealthJson() const;

  /// The access log wired into the scheduler (enabled() is false unless
  /// ServeOptions::access_log_path was set and opened).
  const obs::AccessLog& access_log() const { return access_log_; }

 private:
  struct EvalEntry;

  /// The scheduler work body (runs on a slot thread).
  Result<CondenseReply> Execute(const CondenseRequest& request,
                                const RequestContext& rctx);
  /// `built` (optional) reports whether this call built the entry (false
  /// = coalescing-cache hit).
  std::shared_ptr<EvalEntry> GetOrBuildEvalContext(
      const GraphStore::GraphRef& graph, const hgnn::PropagateOptions& opts,
      exec::ExecContext* ctx, bool* built = nullptr);

  const ServeOptions options_;
  GraphStore store_;
  pipeline::ArtifactCache cache_;
  obs::AccessLog access_log_;  // before scheduler_: outlives its writers
  const int64_t start_ns_;

  /// (graph fingerprint, max_hops, max_paths, max_row_nnz) -> entry.
  using EvalKey = std::tuple<uint64_t, int, int, int64_t>;
  std::mutex eval_mu_;
  std::map<EvalKey, std::shared_ptr<EvalEntry>> eval_contexts_;
  std::atomic<int64_t> eval_context_builds_{0};

  std::unique_ptr<RequestScheduler> scheduler_;  // last: uses the above
};

}  // namespace freehgc::serve

#endif  // FREEHGC_SERVE_SERVICE_H_
