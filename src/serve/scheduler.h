#ifndef FREEHGC_SERVE_SCHEDULER_H_
#define FREEHGC_SERVE_SCHEDULER_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "exec/exec_context.h"
#include "obs/access_log.h"

namespace freehgc::serve {

/// One condensation request against a resident graph.
struct CondenseRequest {
  /// GraphStore name of the graph to condense.
  std::string graph;
  /// MethodRegistry key ("freehgc", "herding", ...).
  std::string method = "freehgc";
  double ratio = 0.1;
  uint64_t seed = 1;
  /// Meta-path configuration; together with `graph` this is the artifact
  /// identity — requests sharing it reuse the same cached evaluation
  /// context and composed adjacencies. max_hops <= 0 resolves to 2.
  int max_hops = 2;
  int max_paths = 12;
  int64_t max_row_nnz = 512;
  /// Also train an HGNN on the condensed output and report accuracy.
  bool evaluate = false;
  /// Ship the condensed graph back as a SerializeHeteroGraph container.
  bool return_graph = false;
  /// Admission priority: lower values run first; FIFO within a priority.
  int priority = 0;
  /// Queue deadline in milliseconds from submission (0 = none). A request
  /// whose deadline passes while still queued is never executed.
  int64_t deadline_ms = 0;
};

/// What a completed condense request returns.
struct CondenseReply {
  int64_t nodes = 0;
  int64_t edges = 0;
  size_t storage_bytes = 0;
  /// Wall-clock of the condensation stage alone.
  double condense_seconds = 0.0;
  /// Queue wait and end-to-end (admission to completion) wall-clock.
  double queue_seconds = 0.0;
  double total_seconds = 0.0;
  /// Test accuracy / macro-F1 in percent; valid when `evaluated`.
  bool evaluated = false;
  float accuracy = 0.0f;
  float macro_f1 = 0.0f;
  /// Serialized condensed graph (CondenseRequest::return_graph).
  std::string graph_bytes;
  /// Fingerprint of the full graph the request ran against.
  uint64_t graph_fingerprint = 0;
  /// Scheduler-assigned request id, echoed over the wire so client-side
  /// observations join against server-side spans and access-log lines.
  uint64_t request_id = 0;
  /// Whether the evaluation context was reused from the coalescing cache
  /// (false = this request built it).
  bool evalctx_hit = false;
};

/// Per-request execution context handed to the work body: the request id
/// (also installed as the tracing request id for the body's duration),
/// the worker slot index, and that slot's ExecContext.
struct RequestContext {
  uint64_t id = 0;
  int slot = -1;
  exec::ExecContext* exec = nullptr;
};

/// Completion handle for a submitted request. Wait() blocks until the
/// request reaches a terminal state: completed (value), failed (error
/// status), shed at shutdown (kUnavailable), cancelled (kCancelled), or
/// deadline-expired in the queue (kDeadlineExceeded).
class RequestTicket {
 public:
  uint64_t id() const { return id_; }
  const CondenseRequest& request() const { return request_; }

  /// Blocks until terminal; the reference stays valid while the ticket is
  /// alive. Idempotent.
  Result<CondenseReply>& Wait();

  /// Non-blocking: terminal yet?
  bool Done() const;

 private:
  friend class RequestScheduler;
  RequestTicket(uint64_t id, CondenseRequest request)
      : id_(id), request_(std::move(request)) {}

  const uint64_t id_;
  const CondenseRequest request_;
  int64_t submit_ns_ = 0;
  int64_t deadline_ns_ = 0;  // absolute (obs::NowNs clock); 0 = none
  /// Coalescing state, guarded by the *scheduler's* mu_ (not mu_ below):
  /// the key this ticket is registered under in inflight_by_key_ (0 =
  /// not coalescable), and the follower tickets that will receive a copy
  /// of this leader's result when it reaches a terminal state.
  uint64_t coalesce_key_ = 0;
  std::vector<std::shared_ptr<RequestTicket>> followers_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::optional<Result<CondenseReply>> result_;
};

using TicketPtr = std::shared_ptr<RequestTicket>;

/// How Shutdown treats requests still in the queue (running requests
/// always finish — cancellation is cooperative and request bodies are not
/// interrupted).
enum class ShutdownMode {
  /// Execute everything already admitted, then stop.
  kDrain,
  /// Fail queued requests with kUnavailable; only running ones finish.
  kCancelQueued,
};

/// Scheduler counters (also mirrored into obs as serve.* metrics).
struct SchedulerStats {
  int64_t admitted = 0;
  int64_t completed = 0;   // terminal with a value
  int64_t failed = 0;      // terminal with an error from the work body
  int64_t shed = 0;        // rejected at admission (queue full or guard)
  int64_t shed_budget = 0;  // subset of shed: admission guard (memory
                            // budget pressure), not queue capacity
  int64_t shed_slo = 0;    // subset of shed: predicted latency past SLO
  int64_t cancelled = 0;   // removed from the queue by Cancel/shutdown
  int64_t expired = 0;     // queue deadline passed before execution
  int64_t coalesced = 0;   // admitted as followers of an identical
                           // in-flight request (never executed)
  int64_t aged = 0;        // dequeues where priority aging overrode the
                           // head-of-queue pick
  int64_t queue_depth = 0;
  int64_t inflight = 0;    // requests currently executing
};

/// Scheduler configuration (the 4-int constructor predates this; it maps
/// to max_concurrent = slots and the QoS knobs off).
struct SchedulerOptions {
  /// Worker slots, each with its own single-driver ExecContext.
  int slots = 2;
  /// Bounded admission queue; beyond it submissions are shed.
  int queue_capacity = 32;
  /// Threads per slot ExecContext; 0 = exec::ThreadsPerSlot(slots).
  int threads_per_slot = 0;
  /// Max requests *executing* at once. On a machine with fewer cores than
  /// slots, letting every slot run just time-slices the cores and
  /// multiplies every request's latency by the slot count; capping
  /// dispatch keeps extra slots as cheap standby capacity. 0 resolves to
  /// exec::ConcurrentSlotBudget(slots); values above `slots` clamp.
  int max_concurrent = 0;
  /// Priority aging quantum: a queued request's effective priority drops
  /// by 1 every `aging_quantum_ms` it waits, so low-priority work cannot
  /// be starved by a sustained stream of high-priority arrivals. 0
  /// disables aging (strict priority-FIFO).
  int64_t aging_quantum_ms = 0;
  /// Admission-time SLO: when > 0, a submission whose *predicted* queue
  /// wait (queue ahead of it / max_concurrent, draining at an EWMA of
  /// recent execution times) exceeds this many milliseconds is shed
  /// immediately with kResourceExhausted — the client gets a fast "no"
  /// instead of a reply that was always going to miss its SLO. The
  /// request's own execution time is excluded: admission control can
  /// shorten waits, not executions. 0 disables.
  int64_t slo_ms = 0;
};

/// Bounded-admission request scheduler: a priority-FIFO queue feeding N
/// worker slots. Each slot owns its own single-driver ExecContext (the
/// exec layer's contract) sized by exec::ThreadsPerSlot, so S slots
/// together use the machine's thread budget without oversubscription;
/// what the slots *share* is whatever the work function closes over
/// (the serve layer passes the GraphStore + ArtifactCache, which are
/// thread-safe).
///
/// Overload semantics: admission beyond `queue_capacity` queued requests
/// is shed immediately with kResourceExhausted — the queue never blocks a
/// submitter and never grows unboundedly. Queued requests can be
/// cancelled or expire (deadline) without ever executing; running
/// requests always run to completion.
///
/// QoS (SchedulerOptions): dispatch is capped at `max_concurrent`
/// executing requests so slots beyond the core budget park instead of
/// time-slicing; identical in-flight requests coalesce onto one
/// execution (set_coalesce_key); queued work ages toward the front
/// (aging_quantum_ms); and submissions predicted to miss `slo_ms` are
/// shed at admission with a distinct reason.
class RequestScheduler {
 public:
  /// The per-request work body, run on a worker slot's thread with that
  /// slot's ExecContext (via the RequestContext). Must be safe to call
  /// concurrently from different slots (all serve-layer shared state is
  /// thread-safe).
  using WorkFn = std::function<Result<CondenseReply>(
      const CondenseRequest&, const RequestContext&)>;

  /// Telemetry enrichment hook: fills service-level fields (cumulative
  /// cache counters) into an access record just before it is written.
  using AnnotateFn = std::function<void(obs::AccessRecord&)>;

  /// Admission guard consulted on every Submit after the capacity check:
  /// a non-OK status (by convention kResourceExhausted) sheds the request
  /// before it is queued. The serve layer uses it to shed under memory
  /// budget pressure (ArtifactCache/GraphStore resident bytes far past
  /// their budgets) instead of thrashing the spill tier. Called under the
  /// scheduler lock — must be fast and must not call back into the
  /// scheduler.
  using AdmissionGuard = std::function<Status()>;

  /// Work-identity hash for request coalescing: two requests with the
  /// same non-zero key are guaranteed (by the caller) to produce
  /// bit-identical replies, so only one needs to execute. Return 0 for
  /// "never coalesce this request". Called under the scheduler lock.
  using CoalesceKeyFn = std::function<uint64_t(const CondenseRequest&)>;

  explicit RequestScheduler(const SchedulerOptions& options, WorkFn work);

  /// Legacy shape: `threads_per_slot` 0 resolves to
  /// exec::ThreadsPerSlot(slots); every slot may execute concurrently
  /// (max_concurrent = slots) and the QoS knobs are off.
  RequestScheduler(int slots, int queue_capacity, int threads_per_slot,
                   WorkFn work);

  /// Drains (kDrain) if Shutdown was never called.
  ~RequestScheduler();

  RequestScheduler(const RequestScheduler&) = delete;
  RequestScheduler& operator=(const RequestScheduler&) = delete;

  /// Wires the structured access log and the per-record annotation hook.
  /// Every terminal transition (ok/error/shed/cancelled/expired) then
  /// emits one access-log line and one flight-recorder record. Must be
  /// called before the first Submit; either argument may be null.
  void set_telemetry(obs::AccessLog* access_log, AnnotateFn annotate);

  /// Installs the admission guard (may be null to clear). Must be called
  /// before the first Submit.
  void set_admission_guard(AdmissionGuard guard);

  /// Installs the coalescing key (may be null to disable). With a key
  /// installed, a submission whose key matches a request still queued or
  /// executing is admitted as a *follower*: it never occupies a queue
  /// slot or executes, and when the leader reaches a terminal state every
  /// follower's ticket completes with a copy of the leader's result —
  /// bit-identical reply bytes, including the leader's request_id (the id
  /// that actually executed; the follower's own id appears in its
  /// access-log line). A follower's own deadline/priority are ignored —
  /// its fate is the leader's. Must be called before the first Submit.
  void set_coalesce_key(CoalesceKeyFn fn);

  /// Admits a request. kResourceExhausted when the queue is full,
  /// kUnavailable after Shutdown.
  Result<TicketPtr> Submit(CondenseRequest request);

  /// Removes a still-queued request; its ticket completes with
  /// kCancelled and the work body never runs. False when the request
  /// already started (or finished) — running work is never interrupted.
  bool Cancel(uint64_t id);

  /// Stops admission, disposes of the queue per `mode`, waits for every
  /// worker slot to go idle, and joins them. Idempotent.
  void Shutdown(ShutdownMode mode = ShutdownMode::kDrain);

  SchedulerStats stats() const;

  int slots() const { return static_cast<int>(workers_.size()); }
  int queue_capacity() const { return queue_capacity_; }

 private:
  void WorkerLoop(int slot);
  void Complete(const TicketPtr& ticket, Result<CondenseReply> result);
  void UpdateGauges();  // callers hold mu_
  /// Detaches `leader`'s followers and unregisters its coalesce key;
  /// callers hold mu_. Every terminal path must call this and then
  /// complete the returned tickets with a copy of the leader's result.
  std::vector<TicketPtr> TakeFollowers(const TicketPtr& leader);
  /// Completes coalesced followers with a copy of the leader's terminal
  /// result and emits their telemetry. Never called under mu_.
  void FinishFollowers(const std::vector<TicketPtr>& followers,
                       const Result<CondenseReply>& result, int slot,
                       obs::RequestOutcome outcome, std::string_view reason);
  /// Dequeue pick honoring priority aging; callers hold mu_ and guarantee
  /// a non-empty queue. Counts stats_.aged when aging overrode begin().
  std::map<std::pair<int, uint64_t>, TicketPtr>::iterator PickNext();
  /// Emits the access-log line + flight-recorder record for a request
  /// reaching a terminal state. Never called under mu_ (the access log
  /// does a write(2)).
  void RecordTerminal(uint64_t id, int slot, const CondenseRequest& request,
                      int64_t submit_ns, int64_t queue_ns, int64_t exec_ns,
                      obs::RequestOutcome outcome, std::string_view reason,
                      bool evalctx_hit, uint64_t fingerprint);

  const int queue_capacity_;
  int max_concurrent_ = 1;
  int64_t aging_quantum_ns_ = 0;  // 0 = aging off
  int64_t slo_ns_ = 0;            // 0 = SLO shedding off
  WorkFn work_;
  obs::AccessLog* access_log_ = nullptr;  // not owned
  AnnotateFn annotate_;
  AdmissionGuard admission_guard_;
  CoalesceKeyFn coalesce_key_fn_;
  std::vector<std::unique_ptr<exec::ExecContext>> slot_exec_;
  std::vector<std::thread> workers_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // workers: dispatchable work or stop
  std::condition_variable drain_cv_;  // Shutdown: queue empty + idle
  /// (priority, admission seq) -> ticket; begin() is the next request
  /// (PickNext may override it when aging is on).
  std::map<std::pair<int, uint64_t>, TicketPtr> queue_;
  /// Coalesce key -> leader ticket, for every leader still queued or
  /// executing; erased when the leader reaches a terminal state.
  std::unordered_map<uint64_t, TicketPtr> inflight_by_key_;
  /// EWMA of completed executions' exec_ns (0 until the first
  /// completion); the SLO admission predictor.
  double ewma_exec_ns_ = 0.0;
  uint64_t next_id_ = 1;
  bool accepting_ = true;
  bool stop_ = false;
  SchedulerStats stats_;
};

}  // namespace freehgc::serve

#endif  // FREEHGC_SERVE_SCHEDULER_H_
