#ifndef FREEHGC_SERVE_SCHEDULER_H_
#define FREEHGC_SERVE_SCHEDULER_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/result.h"
#include "exec/exec_context.h"
#include "obs/access_log.h"

namespace freehgc::serve {

/// One condensation request against a resident graph.
struct CondenseRequest {
  /// GraphStore name of the graph to condense.
  std::string graph;
  /// MethodRegistry key ("freehgc", "herding", ...).
  std::string method = "freehgc";
  double ratio = 0.1;
  uint64_t seed = 1;
  /// Meta-path configuration; together with `graph` this is the artifact
  /// identity — requests sharing it reuse the same cached evaluation
  /// context and composed adjacencies. max_hops <= 0 resolves to 2.
  int max_hops = 2;
  int max_paths = 12;
  int64_t max_row_nnz = 512;
  /// Also train an HGNN on the condensed output and report accuracy.
  bool evaluate = false;
  /// Ship the condensed graph back as a SerializeHeteroGraph container.
  bool return_graph = false;
  /// Admission priority: lower values run first; FIFO within a priority.
  int priority = 0;
  /// Queue deadline in milliseconds from submission (0 = none). A request
  /// whose deadline passes while still queued is never executed.
  int64_t deadline_ms = 0;
};

/// What a completed condense request returns.
struct CondenseReply {
  int64_t nodes = 0;
  int64_t edges = 0;
  size_t storage_bytes = 0;
  /// Wall-clock of the condensation stage alone.
  double condense_seconds = 0.0;
  /// Queue wait and end-to-end (admission to completion) wall-clock.
  double queue_seconds = 0.0;
  double total_seconds = 0.0;
  /// Test accuracy / macro-F1 in percent; valid when `evaluated`.
  bool evaluated = false;
  float accuracy = 0.0f;
  float macro_f1 = 0.0f;
  /// Serialized condensed graph (CondenseRequest::return_graph).
  std::string graph_bytes;
  /// Fingerprint of the full graph the request ran against.
  uint64_t graph_fingerprint = 0;
  /// Scheduler-assigned request id, echoed over the wire so client-side
  /// observations join against server-side spans and access-log lines.
  uint64_t request_id = 0;
  /// Whether the evaluation context was reused from the coalescing cache
  /// (false = this request built it).
  bool evalctx_hit = false;
};

/// Per-request execution context handed to the work body: the request id
/// (also installed as the tracing request id for the body's duration),
/// the worker slot index, and that slot's ExecContext.
struct RequestContext {
  uint64_t id = 0;
  int slot = -1;
  exec::ExecContext* exec = nullptr;
};

/// Completion handle for a submitted request. Wait() blocks until the
/// request reaches a terminal state: completed (value), failed (error
/// status), shed at shutdown (kUnavailable), cancelled (kCancelled), or
/// deadline-expired in the queue (kDeadlineExceeded).
class RequestTicket {
 public:
  uint64_t id() const { return id_; }
  const CondenseRequest& request() const { return request_; }

  /// Blocks until terminal; the reference stays valid while the ticket is
  /// alive. Idempotent.
  Result<CondenseReply>& Wait();

  /// Non-blocking: terminal yet?
  bool Done() const;

 private:
  friend class RequestScheduler;
  RequestTicket(uint64_t id, CondenseRequest request)
      : id_(id), request_(std::move(request)) {}

  const uint64_t id_;
  const CondenseRequest request_;
  int64_t submit_ns_ = 0;
  int64_t deadline_ns_ = 0;  // absolute (obs::NowNs clock); 0 = none

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::optional<Result<CondenseReply>> result_;
};

using TicketPtr = std::shared_ptr<RequestTicket>;

/// How Shutdown treats requests still in the queue (running requests
/// always finish — cancellation is cooperative and request bodies are not
/// interrupted).
enum class ShutdownMode {
  /// Execute everything already admitted, then stop.
  kDrain,
  /// Fail queued requests with kUnavailable; only running ones finish.
  kCancelQueued,
};

/// Scheduler counters (also mirrored into obs as serve.* metrics).
struct SchedulerStats {
  int64_t admitted = 0;
  int64_t completed = 0;   // terminal with a value
  int64_t failed = 0;      // terminal with an error from the work body
  int64_t shed = 0;        // rejected at admission (queue full or guard)
  int64_t shed_budget = 0;  // subset of shed: admission guard (memory
                            // budget pressure), not queue capacity
  int64_t cancelled = 0;   // removed from the queue by Cancel/shutdown
  int64_t expired = 0;     // queue deadline passed before execution
  int64_t queue_depth = 0;
  int64_t inflight = 0;
};

/// Bounded-admission request scheduler: a priority-FIFO queue feeding N
/// worker slots. Each slot owns its own single-driver ExecContext (the
/// exec layer's contract) sized by exec::ThreadsPerSlot, so S slots
/// together use the machine's thread budget without oversubscription;
/// what the slots *share* is whatever the work function closes over
/// (the serve layer passes the GraphStore + ArtifactCache, which are
/// thread-safe).
///
/// Overload semantics: admission beyond `queue_capacity` queued requests
/// is shed immediately with kResourceExhausted — the queue never blocks a
/// submitter and never grows unboundedly. Queued requests can be
/// cancelled or expire (deadline) without ever executing; running
/// requests always run to completion.
class RequestScheduler {
 public:
  /// The per-request work body, run on a worker slot's thread with that
  /// slot's ExecContext (via the RequestContext). Must be safe to call
  /// concurrently from different slots (all serve-layer shared state is
  /// thread-safe).
  using WorkFn = std::function<Result<CondenseReply>(
      const CondenseRequest&, const RequestContext&)>;

  /// Telemetry enrichment hook: fills service-level fields (cumulative
  /// cache counters) into an access record just before it is written.
  using AnnotateFn = std::function<void(obs::AccessRecord&)>;

  /// Admission guard consulted on every Submit after the capacity check:
  /// a non-OK status (by convention kResourceExhausted) sheds the request
  /// before it is queued. The serve layer uses it to shed under memory
  /// budget pressure (ArtifactCache/GraphStore resident bytes far past
  /// their budgets) instead of thrashing the spill tier. Called under the
  /// scheduler lock — must be fast and must not call back into the
  /// scheduler.
  using AdmissionGuard = std::function<Status()>;

  /// `threads_per_slot` 0 resolves to exec::ThreadsPerSlot(slots).
  RequestScheduler(int slots, int queue_capacity, int threads_per_slot,
                   WorkFn work);

  /// Drains (kDrain) if Shutdown was never called.
  ~RequestScheduler();

  RequestScheduler(const RequestScheduler&) = delete;
  RequestScheduler& operator=(const RequestScheduler&) = delete;

  /// Wires the structured access log and the per-record annotation hook.
  /// Every terminal transition (ok/error/shed/cancelled/expired) then
  /// emits one access-log line and one flight-recorder record. Must be
  /// called before the first Submit; either argument may be null.
  void set_telemetry(obs::AccessLog* access_log, AnnotateFn annotate);

  /// Installs the admission guard (may be null to clear). Must be called
  /// before the first Submit.
  void set_admission_guard(AdmissionGuard guard);

  /// Admits a request. kResourceExhausted when the queue is full,
  /// kUnavailable after Shutdown.
  Result<TicketPtr> Submit(CondenseRequest request);

  /// Removes a still-queued request; its ticket completes with
  /// kCancelled and the work body never runs. False when the request
  /// already started (or finished) — running work is never interrupted.
  bool Cancel(uint64_t id);

  /// Stops admission, disposes of the queue per `mode`, waits for every
  /// worker slot to go idle, and joins them. Idempotent.
  void Shutdown(ShutdownMode mode = ShutdownMode::kDrain);

  SchedulerStats stats() const;

  int slots() const { return static_cast<int>(workers_.size()); }
  int queue_capacity() const { return queue_capacity_; }

 private:
  void WorkerLoop(int slot);
  void Complete(const TicketPtr& ticket, Result<CondenseReply> result);
  void UpdateGauges();  // callers hold mu_
  /// Emits the access-log line + flight-recorder record for a request
  /// reaching a terminal state. Never called under mu_ (the access log
  /// does a write(2)).
  void RecordTerminal(uint64_t id, int slot, const CondenseRequest& request,
                      int64_t submit_ns, int64_t queue_ns, int64_t exec_ns,
                      obs::RequestOutcome outcome, std::string_view reason,
                      bool evalctx_hit, uint64_t fingerprint);

  const int queue_capacity_;
  WorkFn work_;
  obs::AccessLog* access_log_ = nullptr;  // not owned
  AnnotateFn annotate_;
  AdmissionGuard admission_guard_;
  std::vector<std::unique_ptr<exec::ExecContext>> slot_exec_;
  std::vector<std::thread> workers_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // workers: queue non-empty or stop
  std::condition_variable drain_cv_;  // Shutdown: queue empty + idle
  /// (priority, admission seq) -> ticket; begin() is the next request.
  std::map<std::pair<int, uint64_t>, TicketPtr> queue_;
  uint64_t next_id_ = 1;
  bool accepting_ = true;
  bool stop_ = false;
  SchedulerStats stats_;
};

}  // namespace freehgc::serve

#endif  // FREEHGC_SERVE_SCHEDULER_H_
