#ifndef FREEHGC_EVAL_EXPERIMENT_H_
#define FREEHGC_EVAL_EXPERIMENT_H_

#include <string>
#include <vector>

#include "baselines/gradient_matching.h"
#include "common/result.h"
#include "core/freehgc.h"
#include "hgnn/trainer.h"

namespace freehgc::eval {

/// Every condensation method the paper evaluates.
enum class MethodKind {
  kRandom,
  kHerding,
  kKCenter,
  kCoarsening,
  kGCond,
  kHGCond,
  kFreeHGC,
};

const char* MethodName(MethodKind kind);

/// One condense-then-train-then-test run.
struct MethodRun {
  /// Test accuracy on the full graph, in percent.
  float accuracy = 0.0f;
  float macro_f1 = 0.0f;
  /// Wall-clock seconds of the condensation stage.
  double condense_seconds = 0.0;
  /// Wall-clock seconds of HGNN training on the condensed data.
  double train_seconds = 0.0;
  /// Storage footprint of the condensed data.
  size_t storage_bytes = 0;
  /// Set when the (simulated) memory gate fired (GCond on AMiner).
  bool oom = false;
};

/// Knobs shared by every method in a sweep.
struct RunOptions {
  double ratio = 0.024;
  uint64_t seed = 1;
  /// FreeHGC configuration (ratio/seed fields are overwritten).
  core::FreeHgcOptions freehgc;
  /// Gradient-matching configuration (ratio/seed/hetero overwritten).
  baselines::GradientMatchingOptions gm;
  int coarsening_rounds = 3;
};

/// Copies a train-and-evaluate outcome into a MethodRun: percent-scaled
/// accuracy and macro-F1 plus the training wall-clock. Shared by every
/// MethodKind branch of RunMethod.
void ApplyEvalMetrics(const hgnn::EvalMetrics& metrics, MethodRun& out);

/// Runs one method end to end: condense ctx.full at the requested ratio,
/// train `eval_cfg`'s HGNN on the result, evaluate on the full test split.
Result<MethodRun> RunMethod(const hgnn::EvalContext& ctx, MethodKind kind,
                            const RunOptions& run,
                            const hgnn::HgnnConfig& eval_cfg);

/// Mean and sample standard deviation of a series.
struct MeanStd {
  double mean = 0.0;
  double std = 0.0;
};
MeanStd Aggregate(const std::vector<double>& values);

/// Repeats RunMethod over `seeds` and aggregates accuracy; failures
/// (e.g. OOM) propagate as a run with oom=true when every seed fails.
struct AggregatedRun {
  MeanStd accuracy;
  double mean_condense_seconds = 0.0;
  double mean_train_seconds = 0.0;
  size_t storage_bytes = 0;
  bool oom = false;
};
AggregatedRun RunMethodSeeds(const hgnn::EvalContext& ctx, MethodKind kind,
                             RunOptions run,
                             const hgnn::HgnnConfig& eval_cfg,
                             const std::vector<uint64_t>& seeds);

/// Minimal aligned ASCII table, matching the row structure of the paper's
/// tables.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  /// Renders the table to stdout.
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// "%.2f ± %.2f" cell formatter.
std::string Cell(const MeanStd& m);

}  // namespace freehgc::eval

#endif  // FREEHGC_EVAL_EXPERIMENT_H_
