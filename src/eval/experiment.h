#ifndef FREEHGC_EVAL_EXPERIMENT_H_
#define FREEHGC_EVAL_EXPERIMENT_H_

// Thin façade over the pipeline layer. The experiment machinery (method
// dispatch, seed aggregation, table formatting) used to live here; it now
// lives behind pipeline::MethodRegistry / pipeline::RunMethod so that
// every condenser sits behind one polymorphic Condense API and sweeps can
// share an execution context and artifact cache. This header keeps the
// historical enum-based entry points (tests and ad-hoc experiments use
// them) as aliases and key-lookup wrappers.

#include <string>
#include <vector>

#include "common/result.h"
#include "common/table.h"
#include "hgnn/trainer.h"
#include "pipeline/method.h"

namespace freehgc::eval {

/// Every condensation method the paper evaluates. The registry is keyed
/// by string; this enum is a stable convenience handle over the seven
/// builtin methods.
enum class MethodKind {
  kRandom,
  kHerding,
  kKCenter,
  kCoarsening,
  kGCond,
  kHGCond,
  kFreeHGC,
};

/// Registry key of a builtin method ("random", ..., "freehgc").
const char* MethodKey(MethodKind kind);

/// Paper-style display name ("Random-HG", ..., "FreeHGC"), resolved
/// through the registry.
const char* MethodName(MethodKind kind);

using MethodRun = pipeline::MethodRun;
using RunOptions = pipeline::RunSpec;
using MeanStd = pipeline::MeanStd;
using AggregatedRun = pipeline::AggregatedRun;
using pipeline::Aggregate;
using pipeline::ApplyEvalMetrics;
using pipeline::Cell;
using freehgc::TablePrinter;

/// Runs one method end to end: condense ctx.full at the requested ratio,
/// train `eval_cfg`'s HGNN on the result, evaluate on the full test split.
/// `env` carries a sweep's shared execution context and artifact cache
/// (defaults run standalone and uncached).
Result<MethodRun> RunMethod(const hgnn::EvalContext& ctx, MethodKind kind,
                            const RunOptions& run,
                            const hgnn::HgnnConfig& eval_cfg,
                            const pipeline::PipelineEnv& env = {});

/// Repeats RunMethod over `seeds` and aggregates accuracy; failures
/// (e.g. OOM) propagate as a run with oom=true when every seed fails.
AggregatedRun RunMethodSeeds(const hgnn::EvalContext& ctx, MethodKind kind,
                             RunOptions run,
                             const hgnn::HgnnConfig& eval_cfg,
                             const std::vector<uint64_t>& seeds,
                             const pipeline::PipelineEnv& env = {});

}  // namespace freehgc::eval

#endif  // FREEHGC_EVAL_EXPERIMENT_H_
