#include "eval/experiment.h"

#include "common/logging.h"

namespace freehgc::eval {

const char* MethodKey(MethodKind kind) {
  switch (kind) {
    case MethodKind::kRandom:
      return "random";
    case MethodKind::kHerding:
      return "herding";
    case MethodKind::kKCenter:
      return "kcenter";
    case MethodKind::kCoarsening:
      return "coarsening";
    case MethodKind::kGCond:
      return "gcond";
    case MethodKind::kHGCond:
      return "hgcond";
    case MethodKind::kFreeHGC:
      return "freehgc";
  }
  return "?";
}

const char* MethodName(MethodKind kind) {
  const pipeline::CondensationMethod* method =
      pipeline::MethodRegistry::Global().Find(MethodKey(kind));
  FREEHGC_CHECK(method != nullptr);
  return method->display_name().c_str();
}

Result<MethodRun> RunMethod(const hgnn::EvalContext& ctx, MethodKind kind,
                            const RunOptions& run,
                            const hgnn::HgnnConfig& eval_cfg,
                            const pipeline::PipelineEnv& env) {
  return pipeline::RunMethod(ctx, MethodKey(kind), run, eval_cfg, env);
}

AggregatedRun RunMethodSeeds(const hgnn::EvalContext& ctx, MethodKind kind,
                             RunOptions run,
                             const hgnn::HgnnConfig& eval_cfg,
                             const std::vector<uint64_t>& seeds,
                             const pipeline::PipelineEnv& env) {
  return pipeline::RunMethodSeeds(ctx, MethodKey(kind), std::move(run),
                                  eval_cfg, seeds, env);
}

}  // namespace freehgc::eval
