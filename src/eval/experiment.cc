#include "eval/experiment.h"

#include <cmath>
#include <cstdio>

#include "baselines/coarsening.h"
#include "baselines/coreset.h"
#include "common/string_util.h"

namespace freehgc::eval {

const char* MethodName(MethodKind kind) {
  switch (kind) {
    case MethodKind::kRandom:
      return "Random-HG";
    case MethodKind::kHerding:
      return "Herding-HG";
    case MethodKind::kKCenter:
      return "K-Center-HG";
    case MethodKind::kCoarsening:
      return "Coarsening-HG";
    case MethodKind::kGCond:
      return "GCond";
    case MethodKind::kHGCond:
      return "HGCond";
    case MethodKind::kFreeHGC:
      return "FreeHGC";
  }
  return "?";
}

void ApplyEvalMetrics(const hgnn::EvalMetrics& metrics, MethodRun& out) {
  out.accuracy = metrics.test_accuracy * 100.0f;
  out.macro_f1 = metrics.macro_f1 * 100.0f;
  out.train_seconds = metrics.train_seconds;
}

Result<MethodRun> RunMethod(const hgnn::EvalContext& ctx, MethodKind kind,
                            const RunOptions& run,
                            const hgnn::HgnnConfig& eval_cfg) {
  MethodRun out;
  hgnn::HgnnConfig cfg = eval_cfg;
  cfg.seed = run.seed ^ 0xeea1ULL;

  switch (kind) {
    case MethodKind::kRandom:
    case MethodKind::kHerding:
    case MethodKind::kKCenter: {
      const baselines::CoresetKind ck =
          kind == MethodKind::kRandom  ? baselines::CoresetKind::kRandom
          : kind == MethodKind::kHerding
              ? baselines::CoresetKind::kHerding
              : baselines::CoresetKind::kKCenter;
      FREEHGC_ASSIGN_OR_RETURN(
          baselines::BaselineResult res,
          baselines::CoresetCondense(ctx, ck, run.ratio, run.seed));
      out.condense_seconds = res.seconds;
      out.storage_bytes = res.graph.MemoryBytes();
      ApplyEvalMetrics(hgnn::TrainAndEvaluate(ctx, res.graph, cfg), out);
      break;
    }
    case MethodKind::kCoarsening: {
      FREEHGC_ASSIGN_OR_RETURN(
          baselines::BaselineResult res,
          baselines::CoarseningCondense(*ctx.full, run.ratio,
                                        run.coarsening_rounds, run.seed));
      out.condense_seconds = res.seconds;
      out.storage_bytes = res.graph.MemoryBytes();
      ApplyEvalMetrics(hgnn::TrainAndEvaluate(ctx, res.graph, cfg), out);
      break;
    }
    case MethodKind::kGCond:
    case MethodKind::kHGCond: {
      baselines::GradientMatchingOptions gm = run.gm;
      gm.ratio = run.ratio;
      gm.seed = run.seed;
      gm.hetero = (kind == MethodKind::kHGCond);
      if (gm.hetero) {
        // HGCond's extra machinery: more relay explorations and inner
        // steps (OPS + clustering are switched on by `hetero`).
        gm.relay_inits = run.gm.relay_inits + 2;
        gm.inner_iters = run.gm.inner_iters + 2;
        gm.memory_budget_bytes = 0;  // sparse scheme: no dense-adjacency gate
      }
      auto res = baselines::GradientMatchingCondense(ctx, gm);
      if (!res.ok()) {
        if (res.status().code() == StatusCode::kResourceExhausted) {
          out.oom = true;
          return out;
        }
        return res.status();
      }
      out.condense_seconds = res->seconds;
      out.storage_bytes = res->MemoryBytes();
      ApplyEvalMetrics(
          hgnn::TrainOnBlocks(ctx, res->blocks, res->labels, cfg), out);
      break;
    }
    case MethodKind::kFreeHGC: {
      core::FreeHgcOptions fopts = run.freehgc;
      fopts.ratio = run.ratio;
      fopts.seed = run.seed;
      fopts.max_hops = ctx.options.max_hops;
      fopts.max_paths = ctx.options.max_paths;
      fopts.max_row_nnz = ctx.options.max_row_nnz;
      FREEHGC_ASSIGN_OR_RETURN(core::CondensedResult res,
                               core::Condense(*ctx.full, fopts));
      out.condense_seconds = res.seconds;
      out.storage_bytes = res.graph.MemoryBytes();
      ApplyEvalMetrics(hgnn::TrainAndEvaluate(ctx, res.graph, cfg), out);
      break;
    }
  }
  return out;
}

MeanStd Aggregate(const std::vector<double>& values) {
  MeanStd out;
  if (values.empty()) return out;
  double sum = 0.0;
  for (double v : values) sum += v;
  out.mean = sum / static_cast<double>(values.size());
  if (values.size() > 1) {
    double sq = 0.0;
    for (double v : values) sq += (v - out.mean) * (v - out.mean);
    out.std = std::sqrt(sq / static_cast<double>(values.size() - 1));
  }
  return out;
}

AggregatedRun RunMethodSeeds(const hgnn::EvalContext& ctx, MethodKind kind,
                             RunOptions run,
                             const hgnn::HgnnConfig& eval_cfg,
                             const std::vector<uint64_t>& seeds) {
  AggregatedRun out;
  std::vector<double> accs;
  double condense = 0.0, train = 0.0;
  for (uint64_t seed : seeds) {
    run.seed = seed;
    auto res = RunMethod(ctx, kind, run, eval_cfg);
    if (!res.ok()) continue;
    if (res->oom) {
      out.oom = true;
      continue;
    }
    accs.push_back(res->accuracy);
    condense += res->condense_seconds;
    train += res->train_seconds;
    out.storage_bytes = res->storage_bytes;
  }
  if (accs.empty()) {
    out.oom = true;
    return out;
  }
  out.accuracy = Aggregate(accs);
  out.mean_condense_seconds = condense / static_cast<double>(accs.size());
  out.mean_train_seconds = train / static_cast<double>(accs.size());
  return out;
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print() const {
  std::vector<size_t> width(headers_.size(), 0);
  for (size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
    for (const auto& row : rows_) width[c] = std::max(width[c], row[c].size());
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (size_t c = 0; c < row.size(); ++c) {
      line += " " + PadRight(row[c], width[c]) + " |";
    }
    std::puts(line.c_str());
  };
  std::string sep = "+";
  for (size_t c = 0; c < headers_.size(); ++c) {
    sep += std::string(width[c] + 2, '-') + "+";
  }
  std::puts(sep.c_str());
  print_row(headers_);
  std::puts(sep.c_str());
  for (const auto& row : rows_) print_row(row);
  std::puts(sep.c_str());
}

std::string Cell(const MeanStd& m) {
  return StrFormat("%.2f ± %.2f", m.mean, m.std);
}

}  // namespace freehgc::eval
