#include "baselines/gradient_matching.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "core/selection_util.h"

namespace freehgc::baselines {

size_t SyntheticData::MemoryBytes() const {
  size_t bytes = labels.size() * sizeof(int32_t);
  for (const auto& b : blocks) {
    bytes += static_cast<size_t>(b.size()) * sizeof(float);
  }
  return bytes;
}

namespace {

/// softmax(S W) for a linear relay.
Matrix RelayProbs(const Matrix& s, const Matrix& w) {
  Matrix logits = dense::MatMul(s, w);
  dense::SoftmaxRows(logits);
  return logits;
}

/// Relay gradient g = S^T (P - Y) / n for rows labeled by `labels`.
Matrix RelayGradient(const Matrix& s, const Matrix& w,
                     const std::vector<int32_t>& labels) {
  Matrix p = RelayProbs(s, w);
  for (int64_t r = 0; r < p.rows(); ++r) {
    p.At(r, labels[static_cast<size_t>(r)]) -= 1.0f;
  }
  Matrix g = dense::MatMulTA(s, p);
  return dense::Scale(g, 1.0f / static_cast<float>(std::max<int64_t>(
                             1, s.rows())));
}

/// k-means on the rows of `x` restricted to `pool`; returns the k centers
/// (HGCond's cluster-based hyper-node initialization).
Matrix KMeansCenters(const Matrix& x, const std::vector<int32_t>& pool,
                     int32_t k, int iters, Rng& rng) {
  const int64_t d = x.cols();
  Matrix centers(k, d);
  // Init: random distinct pool members.
  std::vector<int32_t> init = rng.SampleWithoutReplacement(
      static_cast<int32_t>(pool.size()), k);
  for (int32_t c = 0; c < k; ++c) {
    const int32_t row = pool[static_cast<size_t>(
        init[static_cast<size_t>(c) % init.size()])];
    std::copy(x.Row(row), x.Row(row) + d, centers.Row(c));
  }
  std::vector<int32_t> assign(pool.size(), 0);
  for (int it = 0; it < iters; ++it) {
    for (size_t i = 0; i < pool.size(); ++i) {
      float best = std::numeric_limits<float>::infinity();
      for (int32_t c = 0; c < k; ++c) {
        const float dist =
            dense::RowSquaredDistance(x, pool[i], centers, c);
        if (dist < best) {
          best = dist;
          assign[i] = c;
        }
      }
    }
    Matrix next(k, d);
    std::vector<int32_t> counts(static_cast<size_t>(k), 0);
    for (size_t i = 0; i < pool.size(); ++i) {
      const float* row = x.Row(pool[i]);
      float* dst = next.Row(assign[i]);
      for (int64_t c = 0; c < d; ++c) dst[c] += row[c];
      ++counts[static_cast<size_t>(assign[i])];
    }
    for (int32_t c = 0; c < k; ++c) {
      if (counts[static_cast<size_t>(c)] == 0) continue;
      const float inv = 1.0f / static_cast<float>(
                                   counts[static_cast<size_t>(c)]);
      float* dst = next.Row(c);
      const float* old = centers.Row(c);
      for (int64_t j = 0; j < d; ++j) {
        dst[j] = counts[static_cast<size_t>(c)] > 0 ? dst[j] * inv : old[j];
      }
    }
    centers = std::move(next);
  }
  return centers;
}

/// Orthogonalizes the flattened relay weight matrices against each other
/// (HGCond's orthogonal parameter sequences).
void Orthogonalize(std::vector<Matrix>& inits) {
  for (size_t i = 0; i < inits.size(); ++i) {
    for (size_t j = 0; j < i; ++j) {
      const float denom = dense::Dot(inits[j], inits[j]);
      if (denom <= 0) continue;
      const float coeff = dense::Dot(inits[i], inits[j]) / denom;
      dense::Axpy(-coeff, inits[j], inits[i]);
    }
    const float norm = dense::FrobeniusNorm(inits[i]);
    if (norm > 0) inits[i] = dense::Scale(inits[i], 1.0f / norm);
  }
}

}  // namespace

Result<SyntheticData> GradientMatchingCondense(
    const hgnn::EvalContext& ctx, const GradientMatchingOptions& opts,
    exec::ExecContext* ex) {
  (void)ex;  // bi-level loop is dense/sequential; kept for API uniformity
  if (ctx.full == nullptr) {
    return Status::InvalidArgument("context has no graph");
  }
  const HeteroGraph& g = *ctx.full;
  Timer timer;
  Rng rng(opts.seed);

  // Simulated accelerator memory gate (see header).
  if (opts.memory_budget_bytes > 0) {
    const double syn_total =
        opts.ratio * static_cast<double>(g.TotalNodes()) * opts.memory_scale;
    // Dense synthetic adjacency + autograd/optimizer copies (~70x observed
    // for GCond's bi-level loop on GPU).
    const double projected = syn_total * syn_total * 4.0 * 70.0;
    if (projected > static_cast<double>(opts.memory_budget_bytes)) {
      return Status::ResourceExhausted(StrFormat(
          "projected %.1fGB synthetic adjacency exceeds %.1fGB budget",
          projected / (1024.0 * 1024.0 * 1024.0),
          static_cast<double>(opts.memory_budget_bytes) /
              (1024.0 * 1024.0 * 1024.0)));
    }
  }

  // Concatenate blocks: the relay is a linear model on the fused
  // pre-propagated representation (the HeteroSGC relay the paper says
  // HGCond is restricted to).
  Matrix h = ctx.full_features.blocks.front();
  std::vector<int64_t> widths = {h.cols()};
  for (size_t b = 1; b < ctx.full_features.blocks.size(); ++b) {
    widths.push_back(ctx.full_features.blocks[b].cols());
    h = h.ConcatCols(ctx.full_features.blocks[b]);
  }
  const int64_t d = h.cols();
  const int32_t num_classes = g.num_classes();

  // Synthetic labels: class-proportional over the training pool.
  const int32_t n_syn = std::max<int32_t>(
      num_classes, static_cast<int32_t>(std::lround(
                       opts.ratio * g.NodeCount(g.target_type()))));
  const auto class_budget = core::PerClassBudget(
      g.labels(), g.train_index(), num_classes, n_syn);
  std::vector<int32_t> syn_labels;
  for (int32_t c = 0; c < num_classes; ++c) {
    for (int32_t i = 0; i < class_budget[static_cast<size_t>(c)]; ++i) {
      syn_labels.push_back(c);
    }
  }
  const int32_t m = static_cast<int32_t>(syn_labels.size());

  // Real training rows (gathered once).
  Matrix h_train = h.GatherRows(g.train_index());
  std::vector<int32_t> train_labels;
  train_labels.reserve(g.train_index().size());
  for (int32_t v : g.train_index()) {
    train_labels.push_back(g.labels()[static_cast<size_t>(v)]);
  }

  // Synthetic feature initialization.
  Matrix s(m, d);
  if (opts.hetero) {
    // HGCond: k-means cluster centers per class over the *raw* target
    // features (block 0). The relay model HGCond is restricted to
    // (HeteroSGC) averages semantics, so the clustering never sees the
    // per-meta-path structure; the remaining blocks start as small noise
    // and must be recovered by the (iteration-limited) gradient-matching
    // loop — the optimization difficulty the paper's Section III
    // analyzes. The clustering cost still grows with the condensed size
    // (the Fig. 2(b) scaling behaviour).
    const int64_t raw_dim = widths[0];
    Matrix h_raw(h_train.rows(), raw_dim);
    for (int64_t r = 0; r < h_train.rows(); ++r) {
      std::copy(h_train.Row(r), h_train.Row(r) + raw_dim, h_raw.Row(r));
    }
    s.FillGaussian(rng, 0.01f);
    int32_t row = 0;
    for (int32_t c = 0; c < num_classes; ++c) {
      const int32_t k = class_budget[static_cast<size_t>(c)];
      if (k == 0) continue;
      std::vector<int32_t> pool;
      for (size_t i = 0; i < train_labels.size(); ++i) {
        if (train_labels[i] == c) pool.push_back(static_cast<int32_t>(i));
      }
      if (pool.empty()) {
        row += k;
        continue;
      }
      Matrix centers =
          KMeansCenters(h_raw, pool, k, opts.kmeans_iters, rng);
      for (int32_t i = 0; i < k; ++i) {
        std::copy(centers.Row(i), centers.Row(i) + raw_dim, s.Row(row + i));
      }
      row += k;
    }
  } else {
    // GCond: random real samples of the right class.
    int32_t row = 0;
    for (int32_t c = 0; c < num_classes; ++c) {
      std::vector<int32_t> pool;
      for (size_t i = 0; i < train_labels.size(); ++i) {
        if (train_labels[i] == c) pool.push_back(static_cast<int32_t>(i));
      }
      for (int32_t i = 0; i < class_budget[static_cast<size_t>(c)]; ++i) {
        if (!pool.empty()) {
          const int32_t src = pool[static_cast<size_t>(
              rng.NextBounded(pool.size()))];
          std::copy(h_train.Row(src), h_train.Row(src) + d, s.Row(row));
        }
        ++row;
      }
    }
  }

  // Relay weight initializations (HGCond orthogonalizes them: OPS).
  std::vector<Matrix> relay_inits;
  for (int k = 0; k < opts.relay_inits; ++k) {
    Matrix w(d, num_classes);
    Rng wrng(opts.seed ^ (0x57ULL * (k + 1)));
    w.FillGlorot(wrng);
    relay_inits.push_back(std::move(w));
  }
  if (opts.hetero) Orthogonalize(relay_inits);

  // Bi-level optimization: for each relay init, alternate synthetic
  // feature updates (gradient matching) with relay training steps.
  for (auto& w : relay_inits) {
    for (int outer = 0; outer < opts.outer_iters; ++outer) {
      // Gradient matching step on S.
      const Matrix g_real = RelayGradient(h_train, w, train_labels);
      const Matrix g_syn = RelayGradient(s, w, syn_labels);
      Matrix diff = g_syn;  // G = g_syn - g_real
      dense::Axpy(-1.0f, g_real, diff);

      // dS = 2/m [ (P - Y) G^T + dA W^T ],
      // dA_i = P_i ⊙ u_i - P_i (P_i · u_i), u = S G.
      Matrix p = RelayProbs(s, w);
      Matrix p_minus_y = p;
      for (int32_t r = 0; r < m; ++r) {
        p_minus_y.At(r, syn_labels[static_cast<size_t>(r)]) -= 1.0f;
      }
      Matrix ds = dense::MatMulTB(p_minus_y, diff);  // (m,C)x(d,C)^T
      const Matrix u = dense::MatMul(s, diff);
      Matrix da(m, num_classes);
      for (int32_t r = 0; r < m; ++r) {
        const float* pr = p.Row(r);
        const float* ur = u.Row(r);
        float dot = 0.0f;
        for (int32_t c = 0; c < num_classes; ++c) dot += pr[c] * ur[c];
        float* dar = da.Row(r);
        for (int32_t c = 0; c < num_classes; ++c) {
          dar[c] = pr[c] * (ur[c] - dot);
        }
      }
      dense::Axpy(1.0f, dense::MatMulTB(da, w), ds);
      const float scale = -2.0f * opts.feat_lr / static_cast<float>(m);
      dense::Axpy(scale, ds, s);

      // Inner loop: relay training on the synthetic data.
      for (int inner = 0; inner < opts.inner_iters; ++inner) {
        const Matrix gw = RelayGradient(s, w, syn_labels);
        dense::Axpy(-opts.relay_lr, gw, w);
      }
    }
  }

  // Split the learned fused features back into per-path blocks.
  SyntheticData out;
  out.labels = std::move(syn_labels);
  int64_t offset = 0;
  for (int64_t width : widths) {
    Matrix block(m, width);
    for (int32_t r = 0; r < m; ++r) {
      const float* src = s.Row(r) + offset;
      std::copy(src, src + width, block.Row(r));
    }
    out.blocks.push_back(std::move(block));
    offset += width;
  }
  out.seconds = timer.ElapsedSeconds();
  return out;
}

}  // namespace freehgc::baselines
