#ifndef FREEHGC_BASELINES_GRADIENT_MATCHING_H_
#define FREEHGC_BASELINES_GRADIENT_MATCHING_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "dense/matrix.h"
#include "hgnn/trainer.h"

namespace freehgc::baselines {

/// Configuration for the gradient-matching condensers (GCond, Jin et al.
/// ICLR 2022; HGCond, Gao et al. TKDE 2024). `hetero = true` enables the
/// HGCond mechanics on top of GCond's bi-level loop: cluster-based
/// hyper-node initialization (k-means per class) and OPS-style orthogonal
/// relay parameter sequences — the two components the paper identifies as
/// HGCond's extra cost (Section III-B).
struct GradientMatchingOptions {
  double ratio = 0.024;
  /// Outer iterations: synthetic-feature updates via gradient matching.
  int outer_iters = 30;
  /// Inner iterations: relay-model training steps per outer iteration.
  int inner_iters = 8;
  /// K distinct relay initializations (HGCond orthogonalizes them).
  int relay_inits = 4;
  float feat_lr = 0.5f;
  float relay_lr = 0.5f;
  bool hetero = false;
  int kmeans_iters = 8;
  /// Simulated accelerator memory gate. GCond materializes a dense
  /// synthetic adjacency whose footprint grows quadratically with the
  /// condensed size; the paper observes OOM on a 24GB GPU for AMiner at
  /// r > 0.05% (Table VI). When memory_budget_bytes > 0 the condenser
  /// projects the paper-scale footprint (node counts multiplied by
  /// `memory_scale`, the paper-to-repo dataset size ratio) and fails with
  /// ResourceExhausted when it exceeds the budget.
  size_t memory_budget_bytes = 0;
  double memory_scale = 1.0;
  /// Total node count of the graph being condensed (used only by the
  /// memory gate; filled in by GradientMatchingCondense).
  uint64_t seed = 1;
};

/// Output of gradient-matching condensation: synthetic pre-propagated
/// feature blocks (same layout as the evaluation context's) plus labels.
/// Unlike the selection-based methods, no subgraph exists — the condensed
/// data lives purely in feature space, which is also why its storage
/// footprint is dense (Table VII).
struct SyntheticData {
  std::vector<Matrix> blocks;
  std::vector<int32_t> labels;
  double seconds = 0.0;

  /// Dense storage footprint of the synthetic data.
  size_t MemoryBytes() const;
};

/// Runs bi-level gradient-matching condensation against ctx.full:
/// synthetic features are optimized so the relay model's loss gradient on
/// them matches the gradient on the real training data, looping over
/// relay initializations (outer) and relay training steps (inner) — the
/// nested structure whose cost Figs. 2(b) and 8 measure. `ex` is the
/// execution context shared by a sweep (null = default pool); the bi-level
/// loop is dense and sequential, but taking the parameter keeps every
/// condenser entry point uniform for pipeline::CondensationMethod.
Result<SyntheticData> GradientMatchingCondense(
    const hgnn::EvalContext& ctx, const GradientMatchingOptions& opts,
    exec::ExecContext* ex = nullptr);

}  // namespace freehgc::baselines

#endif  // FREEHGC_BASELINES_GRADIENT_MATCHING_H_
