#include "baselines/coarsening.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/rng.h"
#include "common/timer.h"
#include "core/freehgc.h"
#include "sparse/ops.h"

namespace freehgc::baselines {

namespace {

int32_t Budget(double ratio, int32_t count) {
  if (count == 0) return 0;
  return std::max<int32_t>(
      1, static_cast<int32_t>(std::lround(ratio * count)));
}

/// Splits `order` into `groups` contiguous chunks (sizes differing by at
/// most one).
std::vector<std::vector<int32_t>> Chunk(const std::vector<int32_t>& order,
                                        int32_t groups) {
  std::vector<std::vector<int32_t>> out;
  if (order.empty() || groups <= 0) return out;
  const size_t n = order.size();
  const size_t g = std::min<size_t>(static_cast<size_t>(groups), n);
  out.resize(g);
  for (size_t i = 0; i < n; ++i) {
    out[i * g / n].push_back(order[i]);
  }
  return out;
}

}  // namespace

Result<BaselineResult> CoarseningCondense(const HeteroGraph& g, double ratio,
                                          int smoothing_rounds,
                                          uint64_t seed,
                                          exec::ExecContext* ex) {
  if (g.target_type() < 0) {
    return Status::FailedPrecondition("graph has no target type");
  }
  Timer timer;
  Rng rng(seed);
  const TypeId target = g.target_type();

  // Diffusion coordinates: random scalar per node, smoothed across the
  // typed adjacency a few rounds.
  std::vector<std::vector<float>> coord(
      static_cast<size_t>(g.NumNodeTypes()));
  for (TypeId t = 0; t < g.NumNodeTypes(); ++t) {
    coord[static_cast<size_t>(t)].resize(
        static_cast<size_t>(g.NodeCount(t)));
    for (auto& x : coord[static_cast<size_t>(t)]) {
      x = static_cast<float>(rng.NextDouble());
    }
  }
  // Pre-normalize adjacencies once.
  std::vector<CsrMatrix> norm;
  norm.reserve(static_cast<size_t>(g.NumRelations()));
  for (RelationId r = 0; r < g.NumRelations(); ++r) {
    norm.push_back(sparse::RowNormalize(g.relation(r).adj, ex));
  }
  for (int round = 0; round < smoothing_rounds; ++round) {
    std::vector<std::vector<float>> next(coord.size());
    std::vector<int32_t> contributions(coord.size(), 0);
    for (size_t t = 0; t < coord.size(); ++t) {
      next[t].assign(coord[t].size(), 0.0f);
    }
    for (RelationId r = 0; r < g.NumRelations(); ++r) {
      const TypeId src = g.relation(r).src_type;
      const TypeId dst = g.relation(r).dst_type;
      const std::vector<float> prop = sparse::SpMv(
          norm[static_cast<size_t>(r)], coord[static_cast<size_t>(dst)], ex);
      for (size_t i = 0; i < prop.size(); ++i) {
        next[static_cast<size_t>(src)][i] += prop[i];
      }
      ++contributions[static_cast<size_t>(src)];
    }
    for (size_t t = 0; t < coord.size(); ++t) {
      if (contributions[t] == 0) continue;  // isolated type: keep coords
      const float inv = 1.0f / static_cast<float>(contributions[t]);
      for (size_t i = 0; i < coord[t].size(); ++i) {
        // Mix with the previous value so distinct nodes keep distinct
        // coordinates even in regular regions.
        coord[t][i] = 0.5f * coord[t][i] + 0.5f * next[t][i] * inv;
      }
    }
  }

  // Total degree per node (representative choice for target groups).
  std::vector<std::vector<int64_t>> degree(
      static_cast<size_t>(g.NumNodeTypes()));
  for (TypeId t = 0; t < g.NumNodeTypes(); ++t) {
    degree[static_cast<size_t>(t)].assign(
        static_cast<size_t>(g.NodeCount(t)), 0);
  }
  for (RelationId r = 0; r < g.NumRelations(); ++r) {
    const TypeId src = g.relation(r).src_type;
    const auto deg = g.relation(r).adj.RowDegrees();
    for (size_t i = 0; i < deg.size(); ++i) {
      degree[static_cast<size_t>(src)][i] += deg[i];
    }
  }

  std::vector<core::TypeMapping> mappings(
      static_cast<size_t>(g.NumNodeTypes()));
  for (TypeId t = 0; t < g.NumNodeTypes(); ++t) {
    const int32_t n = g.NodeCount(t);
    const int32_t budget = Budget(ratio, n);
    auto& mapping = mappings[static_cast<size_t>(t)];
    if (t == target) {
      // Group within each class, then keep the highest-degree member of
      // each group as its representative.
      for (int32_t c = 0; c < g.num_classes(); ++c) {
        std::vector<int32_t> order;
        for (int32_t v = 0; v < n; ++v) {
          if (g.labels()[static_cast<size_t>(v)] == c) order.push_back(v);
        }
        if (order.empty()) continue;
        const int32_t class_groups = std::max<int32_t>(
            1, static_cast<int32_t>(std::lround(
                   static_cast<double>(budget) * order.size() / n)));
        std::stable_sort(order.begin(), order.end(),
                         [&](int32_t a, int32_t b) {
                           return coord[static_cast<size_t>(t)]
                                       [static_cast<size_t>(a)] <
                                  coord[static_cast<size_t>(t)]
                                       [static_cast<size_t>(b)];
                         });
        for (const auto& group : Chunk(order, class_groups)) {
          int32_t rep = group.front();
          for (int32_t v : group) {
            if (degree[static_cast<size_t>(t)][static_cast<size_t>(v)] >
                degree[static_cast<size_t>(t)][static_cast<size_t>(rep)]) {
              rep = v;
            }
          }
          mapping.keep.push_back(rep);
        }
      }
      std::sort(mapping.keep.begin(), mapping.keep.end());
    } else {
      std::vector<int32_t> order(static_cast<size_t>(n));
      std::iota(order.begin(), order.end(), 0);
      std::stable_sort(order.begin(), order.end(),
                       [&](int32_t a, int32_t b) {
                         return coord[static_cast<size_t>(t)]
                                     [static_cast<size_t>(a)] <
                                coord[static_cast<size_t>(t)]
                                     [static_cast<size_t>(b)];
                       });
      mapping.synthesized = true;
      mapping.members = Chunk(order, budget);
      const Matrix& feats = g.Features(t);
      mapping.synthetic_features =
          Matrix(static_cast<int64_t>(mapping.members.size()), feats.cols());
      for (size_t k = 0; k < mapping.members.size(); ++k) {
        const auto mean = dense::ColumnMean(feats, mapping.members[k]);
        std::copy(mean.begin(), mean.end(),
                  mapping.synthetic_features.Row(static_cast<int64_t>(k)));
      }
    }
  }

  FREEHGC_ASSIGN_OR_RETURN(HeteroGraph condensed,
                           core::AssembleCondensedGraph(g, mappings));
  BaselineResult out;
  out.graph = std::move(condensed);
  out.seconds = timer.ElapsedSeconds();
  return out;
}

}  // namespace freehgc::baselines
