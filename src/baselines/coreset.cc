#include "baselines/coreset.h"

#include <algorithm>
#include <cmath>

#include "common/timer.h"
#include "core/selection_util.h"

namespace freehgc::baselines {

const char* CoresetKindName(CoresetKind kind) {
  switch (kind) {
    case CoresetKind::kRandom:
      return "Random-HG";
    case CoresetKind::kHerding:
      return "Herding-HG";
    case CoresetKind::kKCenter:
      return "K-Center-HG";
  }
  return "?";
}

namespace {

int32_t Budget(double ratio, int32_t count) {
  if (count == 0) return 0;
  return std::max<int32_t>(
      1, static_cast<int32_t>(std::lround(ratio * count)));
}

std::vector<int32_t> SelectFrom(CoresetKind kind, const Matrix& features,
                                const std::vector<int32_t>& pool,
                                int32_t budget, uint64_t seed) {
  switch (kind) {
    case CoresetKind::kRandom:
      return core::RandomSelect(pool, budget, seed);
    case CoresetKind::kHerding:
      return core::HerdingSelect(features, pool, budget);
    case CoresetKind::kKCenter:
      return core::KCenterSelect(features, pool, budget, seed);
  }
  return {};
}

}  // namespace

Result<BaselineResult> CoresetCondense(const hgnn::EvalContext& ctx,
                                       CoresetKind kind, double ratio,
                                       uint64_t seed, exec::ExecContext* ex) {
  (void)ex;  // selection is sequential; parameter keeps entry points uniform
  if (ctx.full == nullptr) {
    return Status::InvalidArgument("context has no graph");
  }
  const HeteroGraph& g = *ctx.full;
  Timer timer;

  // Embedding space for the target type: concatenation of the propagated
  // meta-path blocks.
  Matrix embedding = ctx.full_features.blocks.front();
  for (size_t b = 1; b < ctx.full_features.blocks.size(); ++b) {
    embedding = embedding.ConcatCols(ctx.full_features.blocks[b]);
  }

  const TypeId target = g.target_type();
  std::vector<std::vector<int32_t>> keep(
      static_cast<size_t>(g.NumNodeTypes()));

  // Target type: class-proportional selection from the training pool.
  const int32_t target_budget = Budget(ratio, g.NodeCount(target));
  const auto budgets = core::PerClassBudget(g.labels(), g.train_index(),
                                            g.num_classes(), target_budget);
  auto& target_keep = keep[static_cast<size_t>(target)];
  for (int32_t c = 0; c < g.num_classes(); ++c) {
    const auto pool = core::PoolOfClass(g.labels(), g.train_index(), c);
    const auto picked = SelectFrom(kind, embedding, pool,
                                   budgets[static_cast<size_t>(c)],
                                   seed ^ static_cast<uint64_t>(c + 1));
    target_keep.insert(target_keep.end(), picked.begin(), picked.end());
  }
  std::sort(target_keep.begin(), target_keep.end());

  // Other types: raw-feature selection over all nodes.
  for (TypeId t = 0; t < g.NumNodeTypes(); ++t) {
    if (t == target) continue;
    std::vector<int32_t> pool(static_cast<size_t>(g.NodeCount(t)));
    for (int32_t i = 0; i < g.NodeCount(t); ++i) {
      pool[static_cast<size_t>(i)] = i;
    }
    auto picked = SelectFrom(kind, g.Features(t), pool,
                             Budget(ratio, g.NodeCount(t)),
                             seed ^ (0xc0ffeeULL + static_cast<uint64_t>(t)));
    std::sort(picked.begin(), picked.end());
    keep[static_cast<size_t>(t)] = std::move(picked);
  }

  FREEHGC_ASSIGN_OR_RETURN(HeteroGraph sub, g.InducedSubgraph(keep));
  BaselineResult out;
  out.graph = std::move(sub);
  out.seconds = timer.ElapsedSeconds();
  return out;
}

}  // namespace freehgc::baselines
