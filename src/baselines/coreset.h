#ifndef FREEHGC_BASELINES_CORESET_H_
#define FREEHGC_BASELINES_CORESET_H_

#include <cstdint>

#include "common/result.h"
#include "graph/hetero_graph.h"
#include "hgnn/trainer.h"

namespace freehgc::baselines {

/// Coreset family used by the paper: Random-HG, Herding-HG (Welling 2009)
/// and K-Center-HG (Sener & Savarese 2018), extended to heterogeneous
/// graphs exactly as the paper describes — selection runs on HGNN
/// embeddings for the (labeled) target type and on raw features for the
/// other types.
enum class CoresetKind { kRandom, kHerding, kKCenter };

const char* CoresetKindName(CoresetKind kind);

/// Output of any subgraph-producing condenser.
struct BaselineResult {
  HeteroGraph graph;
  double seconds = 0.0;
};

/// Condenses `ctx.full` to ratio r with the given coreset selector.
///
/// Target-type nodes are selected class-proportionally from the training
/// pool using the concatenated pre-propagated meta-path blocks of `ctx`
/// as the embedding space (the paper uses trained SeHGNN intermediate
/// embeddings; the training-free propagated features are this repo's
/// model-free stand-in — see DESIGN.md). Other-type nodes are selected
/// on their raw features. The result is the induced subgraph. `ex` is the
/// execution context shared by a sweep (null = default pool); selection
/// itself is sequential, but taking the parameter keeps every condenser
/// entry point uniform for pipeline::CondensationMethod.
Result<BaselineResult> CoresetCondense(const hgnn::EvalContext& ctx,
                                       CoresetKind kind, double ratio,
                                       uint64_t seed,
                                       exec::ExecContext* ex = nullptr);

}  // namespace freehgc::baselines

#endif  // FREEHGC_BASELINES_CORESET_H_
