#ifndef FREEHGC_BASELINES_COARSENING_H_
#define FREEHGC_BASELINES_COARSENING_H_

#include <cstdint>

#include "baselines/coreset.h"
#include "common/result.h"
#include "graph/hetero_graph.h"

namespace freehgc::baselines {

/// Coarsening-HG: a variation-neighborhoods-style coarsener (Huang et al.
/// 2021, adapted to heterogeneous input as the paper does).
///
/// Nodes with similar neighborhoods are grouped into super-nodes. The
/// similarity proxy is a diffusion coordinate: a random vector smoothed by
/// a few rounds of row-normalized adjacency multiplication, under which
/// nodes with overlapping neighborhoods land close together. Each type is
/// sorted by that coordinate (target nodes additionally grouped by class
/// so labels stay well-defined) and chunked into r * N_type groups.
/// Other-type super-nodes are synthesized with mean features; target-type
/// groups are represented by their highest-degree member (labels cannot be
/// averaged). The adjacency normalizations and SpMV smoothing rounds run
/// on `ex` (null = default pool).
Result<BaselineResult> CoarseningCondense(const HeteroGraph& g, double ratio,
                                          int smoothing_rounds,
                                          uint64_t seed,
                                          exec::ExecContext* ex = nullptr);

}  // namespace freehgc::baselines

#endif  // FREEHGC_BASELINES_COARSENING_H_
