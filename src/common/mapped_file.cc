#include "common/mapped_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace freehgc {

Result<MappedFile> MappedFile::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound("cannot open: " + path);
    return Status::Internal("open(" + path + "): " +
                            std::string(std::strerror(errno)));
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::Internal("fstat(" + path + "): " +
                            std::string(std::strerror(err)));
  }
  if (!S_ISREG(st.st_mode)) {
    ::close(fd);
    return Status::InvalidArgument("not a regular file: " + path);
  }
  MappedFile f;
  f.path_ = path;
  f.size_ = static_cast<size_t>(st.st_size);
  if (f.size_ > 0) {
    void* addr = ::mmap(nullptr, f.size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (addr == MAP_FAILED) {
      const int err = errno;
      ::close(fd);
      return Status::ResourceExhausted("mmap(" + path + "): " +
                                       std::string(std::strerror(err)));
    }
    f.data_ = static_cast<const uint8_t*>(addr);
  }
  // The mapping pins the inode; the descriptor is no longer needed.
  ::close(fd);
  return f;
}

Result<std::shared_ptr<const MappedFile>> MappedFile::OpenShared(
    const std::string& path) {
  FREEHGC_ASSIGN_OR_RETURN(MappedFile f, Open(path));
  return std::make_shared<const MappedFile>(std::move(f));
}

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(other.data_), size_(other.size_),
      path_(std::move(other.path_)) {
  other.data_ = nullptr;
  other.size_ = 0;
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    Reset();
    data_ = other.data_;
    size_ = other.size_;
    path_ = std::move(other.path_);
    other.data_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

MappedFile::~MappedFile() { Reset(); }

void MappedFile::Reset() noexcept {
  if (data_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(data_), size_);
    data_ = nullptr;
    size_ = 0;
  }
}

void MappedFile::Advise(AccessPattern pattern) const {
  if (data_ == nullptr) return;
  int advice = MADV_NORMAL;
  switch (pattern) {
    case AccessPattern::kNormal: advice = MADV_NORMAL; break;
    case AccessPattern::kSequential: advice = MADV_SEQUENTIAL; break;
    case AccessPattern::kRandom: advice = MADV_RANDOM; break;
    case AccessPattern::kWillNeed: advice = MADV_WILLNEED; break;
    case AccessPattern::kDontNeed: advice = MADV_DONTNEED; break;
  }
  ::madvise(const_cast<uint8_t*>(data_), size_, advice);
}

}  // namespace freehgc
