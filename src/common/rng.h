#ifndef FREEHGC_COMMON_RNG_H_
#define FREEHGC_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace freehgc {

/// Deterministic pseudo-random number generator (xoshiro256**) seeded via
/// SplitMix64. Every stochastic component in the library takes an explicit
/// seed so experiments are reproducible bit-for-bit across runs.
class Rng {
 public:
  /// Seeds the generator. Equal seeds produce equal streams.
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit integer.
  uint64_t NextU64();

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform float in [lo, hi).
  float NextUniform(float lo, float hi);

  /// Standard normal via Box-Muller.
  float NextGaussian();

  /// Gaussian with the given mean and standard deviation.
  float NextGaussian(float mean, float stddev);

  /// Samples an index in [0, weights.size()) with probability proportional
  /// to weights[i]. Weights must be non-negative with a positive sum;
  /// otherwise falls back to uniform.
  size_t NextWeighted(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    if (v.empty()) return;
    for (size_t i = v.size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextBounded(i + 1));
      std::swap(v[i], v[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) (k clamped to n), in random
  /// order.
  std::vector<int32_t> SampleWithoutReplacement(int32_t n, int32_t k);

 private:
  uint64_t s_[4];
  bool have_cached_gaussian_ = false;
  float cached_gaussian_ = 0.0f;
};

}  // namespace freehgc

#endif  // FREEHGC_COMMON_RNG_H_
