#ifndef FREEHGC_COMMON_FNV_H_
#define FREEHGC_COMMON_FNV_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace freehgc {

/// FNV-1a over raw bytes, chained. Structure separators are mixed in as
/// one-byte tags so e.g. (counts, labels) boundaries cannot alias. This is
/// the canonical content hash of the library: HeteroGraph and CsrMatrix
/// fingerprints, the ArtifactCache keys, and the v3 container's stored
/// fingerprint all mix through this exact byte sequence, so a fingerprint
/// computed while streaming a graph to disk matches the one a heap load of
/// the same graph computes later.
struct Fnv {
  uint64_t h = 1469598103934665603ULL;

  void Bytes(const void* data, size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= 1099511628211ULL;
    }
  }
  template <typename T>
  void Pod(const T& v) {
    Bytes(&v, sizeof(T));
  }
  /// Length-prefixed array: u64 element count, then the raw bytes.
  template <typename T>
  void Span(std::span<const T> v) {
    Pod(static_cast<uint64_t>(v.size()));
    Bytes(v.data(), v.size() * sizeof(T));
  }
  template <typename T>
  void Vec(const std::vector<T>& v) {
    Span(std::span<const T>(v));
  }
  void Str(const std::string& s) {
    Pod(static_cast<uint64_t>(s.size()));
    Bytes(s.data(), s.size());
  }
  void Tag(unsigned char t) { Bytes(&t, 1); }
};

}  // namespace freehgc

#endif  // FREEHGC_COMMON_FNV_H_
