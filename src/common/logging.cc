#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstring>

namespace freehgc {

namespace {

/// Parses FREEHGC_LOG_LEVEL ({debug, info, warning, error}, case
/// sensitive as documented); unknown or unset values keep the kInfo
/// default.
LogLevel LevelFromEnv() {
  const char* env = std::getenv("FREEHGC_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kInfo;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "warning") == 0) return LogLevel::kWarning;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  return LogLevel::kInfo;
}

/// The threshold is read on every log statement, possibly from worker
/// threads, while SetLogLevel may race with them: an atomic keeps that
/// defined. First use seeds it from the environment (magic-static init
/// is thread-safe).
std::atomic<int>& LevelVar() {
  static std::atomic<int> level{static_cast<int>(LevelFromEnv())};
  return level;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  LevelVar().store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(LevelVar().load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line, bool fatal)
    : enabled_(fatal || level >= GetLogLevel()), fatal_(fatal) {
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    // One write per line: worker-thread log statements must not
    // interleave mid-line, and stdio locks stderr per call.
    stream_ << '\n';
    const std::string line = stream_.str();
    std::fwrite(line.data(), 1, line.size(), stderr);
    std::fflush(stderr);
  }
  if (fatal_) std::abort();
}

}  // namespace internal
}  // namespace freehgc
