#ifndef FREEHGC_COMMON_MAPPED_FILE_H_
#define FREEHGC_COMMON_MAPPED_FILE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "common/result.h"
#include "common/status.h"

namespace freehgc {

/// Read-only memory-mapped file (RAII). The mapping lives for the
/// lifetime of the object; zero-copy consumers (mapped CsrMatrix /
/// Matrix storage) hold the owning shared_ptr as their keepalive so the
/// pages stay valid for as long as any view does.
///
/// Empty files map to a (nullptr, 0) view rather than failing: a v3
/// container is never empty, but generic callers shouldn't have to
/// special-case zero-length inputs.
class MappedFile {
 public:
  enum class AccessPattern {
    kNormal,
    kSequential,
    kRandom,
    kWillNeed,
    /// Pages are cold: let the kernel reclaim them now (MADV_DONTNEED).
    /// The mapping stays valid — a later touch re-faults from the file.
    kDontNeed,
  };

  /// Opens and maps `path` read-only.
  static Result<MappedFile> Open(const std::string& path);

  /// Open + wrap in a shared_ptr, the form storage keepalives want.
  static Result<std::shared_ptr<const MappedFile>> OpenShared(
      const std::string& path);

  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile();

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  const std::string& path() const { return path_; }

  /// Forwards to madvise; advisory, so failures are swallowed (the
  /// mapping stays correct either way).
  void Advise(AccessPattern pattern) const;

 private:
  MappedFile() = default;
  void Reset() noexcept;

  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
  std::string path_;
};

}  // namespace freehgc

#endif  // FREEHGC_COMMON_MAPPED_FILE_H_
