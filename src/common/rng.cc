#include "common/rng.h"

#include <cmath>
#include <numeric>

namespace freehgc {

namespace {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& si : s_) si = SplitMix64(sm);
  // Avoid the pathological all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::NextU64() {
  // xoshiro256**
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  if (bound == 0) return 0;
  // Rejection sampling to remove modulo bias.
  const uint64_t threshold = (0ULL - bound) % bound;
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

float Rng::NextUniform(float lo, float hi) {
  return lo + static_cast<float>(NextDouble()) * (hi - lo);
}

float Rng::NextGaussian() {
  if (have_cached_gaussian_) {
    have_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller.
  double u1 = NextDouble();
  double u2 = NextDouble();
  while (u1 <= 1e-300) u1 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = static_cast<float>(r * std::sin(theta));
  have_cached_gaussian_ = true;
  return static_cast<float>(r * std::cos(theta));
}

float Rng::NextGaussian(float mean, float stddev) {
  return mean + stddev * NextGaussian();
}

size_t Rng::NextWeighted(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += (w > 0 ? w : 0);
  if (total <= 0.0 || weights.empty()) {
    return weights.empty() ? 0 : static_cast<size_t>(
                                     NextBounded(weights.size()));
  }
  double x = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0 ? weights[i] : 0;
    if (x < w) return i;
    x -= w;
  }
  return weights.size() - 1;
}

std::vector<int32_t> Rng::SampleWithoutReplacement(int32_t n, int32_t k) {
  if (n <= 0 || k <= 0) return {};
  if (k > n) k = n;
  std::vector<int32_t> pool(static_cast<size_t>(n));
  std::iota(pool.begin(), pool.end(), 0);
  // Partial Fisher-Yates: shuffle only the first k slots.
  for (int32_t i = 0; i < k; ++i) {
    int32_t j = i + static_cast<int32_t>(
                        NextBounded(static_cast<uint64_t>(n - i)));
    std::swap(pool[static_cast<size_t>(i)], pool[static_cast<size_t>(j)]);
  }
  pool.resize(static_cast<size_t>(k));
  return pool;
}

}  // namespace freehgc
