#include "common/table.h"

#include <algorithm>
#include <cstdio>

#include "common/string_util.h"

namespace freehgc {

namespace {

/// Whether a cell reads as a number (possibly with a unit or ± spread) or
/// a sentinel like "OOM"/"-", which the tables align against the numeric
/// column edge.
bool LooksNumeric(const std::string& s) {
  if (s.empty() || s == "-" || s == "OOM" || s == "n/a") return true;
  bool saw_digit = false;
  for (size_t i = 0; i < s.size(); ++i) {
    const unsigned char c = static_cast<unsigned char>(s[i]);
    if (c >= '0' && c <= '9') {
      saw_digit = true;
      continue;
    }
    // Signs, decimal points, percent/unit suffixes, spread separators and
    // the UTF-8 bytes of "±".
    if (c == '+' || c == '-' || c == '.' || c == '%' || c == ' ' ||
        c == 's' || c == 'x' || c == 'e' || c == 0xC2 || c == 0xB1) {
      continue;
    }
    return false;
  }
  return saw_digit;
}

std::string PadDisplay(const std::string& s, size_t width, bool right) {
  const size_t w = DisplayWidth(s);
  if (w >= width) return s;
  const std::string fill(width - w, ' ');
  return right ? fill + s : s + fill;
}

}  // namespace

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print() const {
  std::vector<size_t> width(headers_.size(), 0);
  std::vector<bool> numeric(headers_.size(), !rows_.empty());
  for (size_t c = 0; c < headers_.size(); ++c) {
    width[c] = DisplayWidth(headers_[c]);
    for (const auto& row : rows_) {
      width[c] = std::max(width[c], DisplayWidth(row[c]));
      if (!LooksNumeric(row[c])) numeric[c] = false;
    }
  }
  auto print_row = [&](const std::vector<std::string>& row, bool is_header) {
    std::string line = "|";
    for (size_t c = 0; c < row.size(); ++c) {
      const bool right = numeric[c] && !is_header;
      line += " " + PadDisplay(row[c], width[c], right) + " |";
    }
    std::puts(line.c_str());
  };
  std::string sep = "+";
  for (size_t c = 0; c < headers_.size(); ++c) {
    sep += std::string(width[c] + 2, '-') + "+";
  }
  std::puts(sep.c_str());
  print_row(headers_, /*is_header=*/true);
  std::puts(sep.c_str());
  for (const auto& row : rows_) print_row(row, /*is_header=*/false);
  std::puts(sep.c_str());
}

std::string TablePrinter::ToJson() const {
  auto cells_json = [](const std::vector<std::string>& cells) {
    std::string out = "[";
    for (size_t i = 0; i < cells.size(); ++i) {
      if (i > 0) out += ", ";
      out += "\"" + JsonEscape(cells[i]) + "\"";
    }
    return out + "]";
  };
  std::string out = "{\"headers\": " + cells_json(headers_) + ", \"rows\": [";
  for (size_t r = 0; r < rows_.size(); ++r) {
    if (r > 0) out += ", ";
    out += cells_json(rows_[r]);
  }
  return out + "]}";
}

}  // namespace freehgc
