#ifndef FREEHGC_COMMON_STATUS_H_
#define FREEHGC_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace freehgc {

/// Error codes used across the library. Public APIs never throw; fallible
/// operations return a Status (or Result<T> for value-returning calls),
/// following the RocksDB idiom.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kUnimplemented,
  kResourceExhausted,
  // Request-lifecycle codes used by the serving layer.
  kCancelled,
  kDeadlineExceeded,
  kUnavailable,
};

/// Returns the canonical human-readable name of a status code
/// (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// A lightweight success/error carrier.
///
/// A default-constructed Status is OK. Error statuses carry a code and a
/// message. Status is cheap to copy for the OK case (message is empty).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// Factory helpers, one per error class.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  /// Rebuilds a status from a code + message pair (the serve-layer wire
  /// protocol ships statuses as numeric code + string).
  static Status FromCode(StatusCode code, std::string msg) {
    return code == StatusCode::kOk ? OK() : Status(code, std::move(msg));
  }

  /// True iff the status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Evaluates `expr` (a Status expression); if not OK, returns it from the
/// enclosing function. Usable only in functions returning Status.
#define FREEHGC_RETURN_IF_ERROR(expr)             \
  do {                                            \
    ::freehgc::Status _st = (expr);               \
    if (!_st.ok()) return _st;                    \
  } while (0)

}  // namespace freehgc

#endif  // FREEHGC_COMMON_STATUS_H_
