#ifndef FREEHGC_COMMON_TABLE_H_
#define FREEHGC_COMMON_TABLE_H_

#include <string>
#include <vector>

namespace freehgc {

/// Minimal aligned ASCII table, matching the row structure of the paper's
/// tables. Numeric-looking cells (accuracies, "12.34s", "91.27 ± 0.46",
/// "OOM") are right-aligned; text cells are left-aligned. Column widths
/// use display width, not byte length, so multi-byte glyphs like "±" do
/// not skew the layout.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  /// Renders the table to stdout.
  void Print() const;

  /// {"headers": [...], "rows": [[...], ...]} — the machine-readable form
  /// bench harnesses embed in their BENCH_*.json companions instead of
  /// formatting rows by hand.
  std::string ToJson() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace freehgc

#endif  // FREEHGC_COMMON_TABLE_H_
