#ifndef FREEHGC_COMMON_TIMER_H_
#define FREEHGC_COMMON_TIMER_H_

#include <chrono>
#include <functional>
#include <utility>

namespace freehgc {

/// Monotonic wall-clock stopwatch used by the experiment harnesses.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction / last Reset, in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// RAII stopwatch: on destruction, adds the elapsed seconds to a bound
/// accumulator (or hands them to a callback). Replaces the hand-rolled
/// Reset()/ElapsedSeconds() pairs around pipeline stages:
///
///   { ScopedTimer t(stage_seconds.metapath); EnumerateMetaPaths(...); }
class ScopedTimer {
 public:
  /// Accumulates into `acc` (+=); `acc` must outlive the timer.
  explicit ScopedTimer(double& acc)
      : sink_([&acc](double s) { acc += s; }) {}

  /// Hands the elapsed seconds to `sink` on destruction.
  explicit ScopedTimer(std::function<void(double)> sink)
      : sink_(std::move(sink)) {}

  ~ScopedTimer() {
    if (sink_) sink_(timer_.ElapsedSeconds());
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Timer timer_;
  std::function<void(double)> sink_;
};

}  // namespace freehgc

#endif  // FREEHGC_COMMON_TIMER_H_
