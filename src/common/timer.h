#ifndef FREEHGC_COMMON_TIMER_H_
#define FREEHGC_COMMON_TIMER_H_

#include <chrono>

namespace freehgc {

/// Monotonic wall-clock stopwatch used by the experiment harnesses.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction / last Reset, in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace freehgc

#endif  // FREEHGC_COMMON_TIMER_H_
