#include "common/string_util.h"

#include <cstdarg>
#include <cstdio>

namespace freehgc {

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed) + 1);
    std::vsnprintf(out.data(), out.size(), fmt, args_copy);
    out.resize(static_cast<size_t>(needed));
  }
  va_end(args_copy);
  return out;
}

std::string HumanBytes(size_t bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 4) {
    value /= 1024.0;
    ++unit;
  }
  return StrFormat("%.1f%s", value, units[unit]);
}

std::string PadRight(const std::string& s, size_t width) {
  if (s.size() >= width) return s;
  return s + std::string(width - s.size(), ' ');
}

std::string PadLeft(const std::string& s, size_t width) {
  if (s.size() >= width) return s;
  return std::string(width - s.size(), ' ') + s;
}

size_t DisplayWidth(const std::string& s) {
  size_t w = 0;
  for (unsigned char c : s) {
    if ((c & 0xC0) != 0x80) ++w;  // skip UTF-8 continuation bytes
  }
  return w;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

}  // namespace freehgc
