#ifndef FREEHGC_COMMON_LOGGING_H_
#define FREEHGC_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace freehgc {

/// Severity levels for the minimal logging facility. The threshold is
/// process-global; it starts from the FREEHGC_LOG_LEVEL environment
/// variable ({debug, info, warning, error}, default info) and can be
/// overridden with SetLogLevel. Each log statement flushes its whole
/// line with a single stderr write, so lines from worker threads never
/// interleave.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum severity that is emitted.
void SetLogLevel(LogLevel level);

/// Returns the current global minimum severity.
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log line; emits on destruction. Fatal lines abort.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line, bool fatal = false);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  bool fatal_;
  std::ostringstream stream_;
};

}  // namespace internal

#define FREEHGC_LOG(level)                                              \
  ::freehgc::internal::LogMessage(::freehgc::LogLevel::k##level,        \
                                  __FILE__, __LINE__)

/// Unconditional invariant check; aborts with a message on failure. Used
/// for programmer errors (violated preconditions inside the library), not
/// for user-input validation (which returns Status).
#define FREEHGC_CHECK(cond)                                              \
  if (!(cond))                                                           \
  ::freehgc::internal::LogMessage(::freehgc::LogLevel::kError, __FILE__, \
                                  __LINE__, /*fatal=*/true)              \
      << "Check failed: " #cond " "

}  // namespace freehgc

#endif  // FREEHGC_COMMON_LOGGING_H_
