#ifndef FREEHGC_COMMON_STORAGE_H_
#define FREEHGC_COMMON_STORAGE_H_

#include <cstddef>
#include <memory>
#include <span>
#include <utility>
#include <vector>

namespace freehgc {

/// A typed array that either owns its elements (std::vector) or views
/// external read-only memory kept alive by a shared keepalive token —
/// typically a MappedFile holding a v3 graph container. The core storage
/// primitive behind zero-copy graph loading: CsrMatrix and Matrix store
/// their arrays through ArrayRef so every kernel reads through the same
/// span regardless of backing.
///
/// Invariant: `view_` always describes the current contents — it points
/// into `owned_` in the owned state and into the external memory in the
/// view state — so readers take the branch-free `span()` path.
///
/// Semantics:
///   - Copying an owned ArrayRef deep-copies; copying a view shares the
///     view and its keepalive (cheap, refcount bump).
///   - `Mutable()` detaches a view into owned storage (copy-on-write).
///     Callers may overwrite elements in place but must not change the
///     size through the returned reference (rebind with `operator=`
///     instead); growth would dangle the cached span.
template <typename T>
class ArrayRef {
 public:
  ArrayRef() = default;

  /// Owned storage, adopting the vector.
  /*implicit*/ ArrayRef(std::vector<T> v)
      : owned_(std::move(v)), view_(owned_) {}

  /// Non-owning view; `keepalive` (may be null for borrowed test data)
  /// pins the external memory.
  static ArrayRef View(std::span<const T> s,
                       std::shared_ptr<const void> keepalive) {
    ArrayRef r;
    r.view_ = s;
    r.keepalive_ = std::move(keepalive);
    r.is_view_ = true;
    return r;
  }

  ArrayRef(const ArrayRef& other) { Assign(other); }
  ArrayRef& operator=(const ArrayRef& other) {
    if (this != &other) Assign(other);
    return *this;
  }

  ArrayRef(ArrayRef&& other) noexcept { AssignMove(std::move(other)); }
  ArrayRef& operator=(ArrayRef&& other) noexcept {
    if (this != &other) AssignMove(std::move(other));
    return *this;
  }

  ArrayRef& operator=(std::vector<T> v) {
    owned_ = std::move(v);
    view_ = owned_;
    keepalive_.reset();
    is_view_ = false;
    return *this;
  }

  std::span<const T> span() const { return view_; }
  const T* data() const { return view_.data(); }
  size_t size() const { return view_.size(); }
  bool empty() const { return view_.empty(); }
  const T& operator[](size_t i) const { return view_[i]; }

  bool is_view() const { return is_view_; }

  /// Heap bytes this ArrayRef itself holds (0 for views — the bytes
  /// belong to the mapping).
  size_t OwnedBytes() const {
    return is_view_ ? 0 : owned_.size() * sizeof(T);
  }

  /// Mutable access; detaches views into owned storage first. See the
  /// class comment for the no-resize contract.
  std::vector<T>& Mutable() {
    if (is_view_) {
      owned_.assign(view_.begin(), view_.end());
      view_ = owned_;
      keepalive_.reset();
      is_view_ = false;
    }
    return owned_;
  }

 private:
  void Assign(const ArrayRef& other) {
    if (other.is_view_) {
      owned_.clear();
      view_ = other.view_;
      keepalive_ = other.keepalive_;
      is_view_ = true;
    } else {
      owned_ = other.owned_;
      view_ = owned_;
      keepalive_.reset();
      is_view_ = false;
    }
  }

  void AssignMove(ArrayRef&& other) noexcept {
    if (other.is_view_) {
      owned_.clear();
      view_ = other.view_;
      keepalive_ = std::move(other.keepalive_);
      is_view_ = true;
    } else {
      owned_ = std::move(other.owned_);
      view_ = owned_;
      keepalive_.reset();
      is_view_ = false;
    }
    other.owned_.clear();
    other.view_ = {};
    other.keepalive_.reset();
    other.is_view_ = false;
  }

  std::vector<T> owned_;
  std::span<const T> view_;
  std::shared_ptr<const void> keepalive_;
  bool is_view_ = false;
};

}  // namespace freehgc

#endif  // FREEHGC_COMMON_STORAGE_H_
