#ifndef FREEHGC_COMMON_STRING_UTIL_H_
#define FREEHGC_COMMON_STRING_UTIL_H_

#include <string>
#include <vector>

namespace freehgc {

/// Joins string pieces with a separator ("a", "b" + "-" -> "a-b").
std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// Splits on a single-character separator; empty pieces are kept.
std::vector<std::string> Split(const std::string& s, char sep);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Formats a byte count with a binary unit suffix (e.g. "1.5MB").
std::string HumanBytes(size_t bytes);

/// Left-pads/truncates `s` to exactly `width` characters (for ASCII
/// tables).
std::string PadRight(const std::string& s, size_t width);
std::string PadLeft(const std::string& s, size_t width);

/// Terminal display width of a UTF-8 string: the number of code points,
/// i.e. bytes that are not continuation bytes. Multi-byte glyphs like "±"
/// count as one column, which is what byte-based padding gets wrong.
/// (Assumes single-column glyphs — true for everything the tables emit.)
size_t DisplayWidth(const std::string& s);

/// Escapes `s` for embedding inside a JSON string literal (quotes,
/// backslashes, control characters).
std::string JsonEscape(const std::string& s);

}  // namespace freehgc

#endif  // FREEHGC_COMMON_STRING_UTIL_H_
