#ifndef FREEHGC_COMMON_CRC32_H_
#define FREEHGC_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace freehgc {

/// CRC-32 (IEEE 802.3 polynomial, the zlib/PNG variant) of `n` bytes.
/// `seed` chains incremental computation: pass the previous return value
/// to extend a checksum across multiple buffers. Used as the integrity
/// trailer of the HeteroGraph binary container and the serve-layer wire
/// frames; table-driven, no external dependency.
uint32_t Crc32(const void* data, size_t n, uint32_t seed = 0);

}  // namespace freehgc

#endif  // FREEHGC_COMMON_CRC32_H_
