#ifndef FREEHGC_COMMON_CRC32_H_
#define FREEHGC_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace freehgc {

/// CRC-32 (IEEE 802.3 polynomial, the zlib/PNG variant) of `n` bytes.
/// `seed` chains incremental computation: pass the previous return value
/// to extend a checksum across multiple buffers. Used as the integrity
/// trailer of the HeteroGraph binary container (whole-body in v2,
/// per-section in v3) and the serve-layer wire frames; no external
/// dependency. Slice-by-8 table kernel with a carry-less-multiply
/// (PCLMULQDQ) fast path selected at runtime — mapping a multi-GB v3
/// container verifies every section, so checksum speed is on the
/// zero-copy load path.
uint32_t Crc32(const void* data, size_t n, uint32_t seed = 0);

namespace internal {

/// The portable slice-by-8 kernel, exposed for differential testing
/// against the SIMD path.
uint32_t Crc32Portable(const void* data, size_t n, uint32_t seed);

/// True when this CPU takes the PCLMULQDQ path.
bool Crc32HasSimd();

}  // namespace internal

}  // namespace freehgc

#endif  // FREEHGC_COMMON_CRC32_H_
