#include "common/crc32.h"

#include <array>
#include <cstring>

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#define FREEHGC_CRC32_X86 1
#endif

namespace freehgc {

namespace {

// Slice-by-8 tables for the reflected polynomial 0xEDB88320: table[0] is
// the classic byte-at-a-time table; table[k][b] advances byte b through
// k additional zero bytes, letting the kernel consume 8 input bytes per
// iteration with 8 independent lookups.
struct Tables {
  uint32_t t[8][256];
};

Tables BuildTables() {
  Tables tb{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    tb.t[0][i] = c;
  }
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = tb.t[0][i];
    for (int k = 1; k < 8; ++k) {
      c = tb.t[0][c & 0xFFu] ^ (c >> 8);
      tb.t[k][i] = c;
    }
  }
  return tb;
}

const Tables& GetTables() {
  static const Tables tables = BuildTables();
  return tables;
}

/// Advances the raw (pre-inverted) CRC state over `n` bytes.
uint32_t UpdatePortable(uint32_t c, const uint8_t* p, size_t n) {
  const Tables& tb = GetTables();
  // Byte-at-a-time until 8-byte alignment, then slice-by-8.
  while (n > 0 && (reinterpret_cast<uintptr_t>(p) & 7u) != 0) {
    c = tb.t[0][(c ^ *p++) & 0xFFu] ^ (c >> 8);
    --n;
  }
  while (n >= 8) {
    uint64_t w;
    std::memcpy(&w, p, 8);
    w ^= c;
    c = tb.t[7][w & 0xFF] ^ tb.t[6][(w >> 8) & 0xFF] ^
        tb.t[5][(w >> 16) & 0xFF] ^ tb.t[4][(w >> 24) & 0xFF] ^
        tb.t[3][(w >> 32) & 0xFF] ^ tb.t[2][(w >> 40) & 0xFF] ^
        tb.t[1][(w >> 48) & 0xFF] ^ tb.t[0][(w >> 56) & 0xFF];
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    c = tb.t[0][(c ^ *p++) & 0xFFu] ^ (c >> 8);
    --n;
  }
  return c;
}

#ifdef FREEHGC_CRC32_X86

// PCLMULQDQ folding (the classic Gopal et al. "Fast CRC Computation"
// scheme, as deployed in zlib's SIMD variant). Folds 64 input bytes per
// iteration through four 128-bit accumulators, then reduces via Barrett.
// Requires n to be a multiple of 16 and >= 64; the caller handles tails.
// Constants are the precomputed x^k mod P values for the reflected IEEE
// polynomial.
__attribute__((target("pclmul,sse4.1"))) uint32_t UpdateClmul(
    uint32_t crc, const uint8_t* buf, size_t len) {
  alignas(16) static const uint64_t k1k2[2] = {0x0154442bd4, 0x01c6e41596};
  alignas(16) static const uint64_t k3k4[2] = {0x01751997d0, 0x00ccaa009e};
  alignas(16) static const uint64_t k5k0[2] = {0x0163cd6124, 0x0000000000};
  alignas(16) static const uint64_t poly[2] = {0x01db710641, 0x01f7011641};

  __m128i x0, x1, x2, x3, x4, x5, x6, x7, x8, y5, y6, y7, y8;

  x1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x00));
  x2 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x10));
  x3 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x20));
  x4 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x30));
  x1 = _mm_xor_si128(x1, _mm_cvtsi32_si128(static_cast<int>(crc)));
  x0 = _mm_load_si128(reinterpret_cast<const __m128i*>(k1k2));
  buf += 0x40;
  len -= 0x40;

  while (len >= 0x40) {
    x5 = _mm_clmulepi64_si128(x1, x0, 0x00);
    x6 = _mm_clmulepi64_si128(x2, x0, 0x00);
    x7 = _mm_clmulepi64_si128(x3, x0, 0x00);
    x8 = _mm_clmulepi64_si128(x4, x0, 0x00);
    x1 = _mm_clmulepi64_si128(x1, x0, 0x11);
    x2 = _mm_clmulepi64_si128(x2, x0, 0x11);
    x3 = _mm_clmulepi64_si128(x3, x0, 0x11);
    x4 = _mm_clmulepi64_si128(x4, x0, 0x11);
    y5 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x00));
    y6 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x10));
    y7 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x20));
    y8 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x30));
    x1 = _mm_xor_si128(_mm_xor_si128(x1, x5), y5);
    x2 = _mm_xor_si128(_mm_xor_si128(x2, x6), y6);
    x3 = _mm_xor_si128(_mm_xor_si128(x3, x7), y7);
    x4 = _mm_xor_si128(_mm_xor_si128(x4, x8), y8);
    buf += 0x40;
    len -= 0x40;
  }

  // Fold the four accumulators into one.
  x0 = _mm_load_si128(reinterpret_cast<const __m128i*>(k3k4));
  x5 = _mm_clmulepi64_si128(x1, x0, 0x00);
  x1 = _mm_clmulepi64_si128(x1, x0, 0x11);
  x1 = _mm_xor_si128(_mm_xor_si128(x1, x2), x5);
  x5 = _mm_clmulepi64_si128(x1, x0, 0x00);
  x1 = _mm_clmulepi64_si128(x1, x0, 0x11);
  x1 = _mm_xor_si128(_mm_xor_si128(x1, x3), x5);
  x5 = _mm_clmulepi64_si128(x1, x0, 0x00);
  x1 = _mm_clmulepi64_si128(x1, x0, 0x11);
  x1 = _mm_xor_si128(_mm_xor_si128(x1, x4), x5);

  // Remaining whole 16-byte blocks.
  while (len >= 0x10) {
    x2 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf));
    x5 = _mm_clmulepi64_si128(x1, x0, 0x00);
    x1 = _mm_clmulepi64_si128(x1, x0, 0x11);
    x1 = _mm_xor_si128(_mm_xor_si128(x1, x2), x5);
    buf += 0x10;
    len -= 0x10;
  }

  // Fold 128 -> 64 bits, then Barrett-reduce 64 -> 32.
  x2 = _mm_clmulepi64_si128(x1, x0, 0x10);
  x3 = _mm_setr_epi32(~0, 0, ~0, 0);
  x1 = _mm_srli_si128(x1, 8);
  x1 = _mm_xor_si128(x1, x2);
  x0 = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(k5k0));
  x2 = _mm_srli_si128(x1, 4);
  x1 = _mm_and_si128(x1, x3);
  x1 = _mm_clmulepi64_si128(x1, x0, 0x00);
  x1 = _mm_xor_si128(x1, x2);
  x0 = _mm_load_si128(reinterpret_cast<const __m128i*>(poly));
  x2 = _mm_and_si128(x1, x3);
  x2 = _mm_clmulepi64_si128(x2, x0, 0x10);
  x2 = _mm_and_si128(x2, x3);
  x2 = _mm_clmulepi64_si128(x2, x0, 0x00);
  x1 = _mm_xor_si128(x1, x2);
  return static_cast<uint32_t>(_mm_extract_epi32(x1, 1));
}

bool DetectClmul() {
  return __builtin_cpu_supports("pclmul") &&
         __builtin_cpu_supports("sse4.1");
}

#endif  // FREEHGC_CRC32_X86

}  // namespace

uint32_t Crc32(const void* data, size_t n, uint32_t seed) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint32_t c = seed ^ 0xFFFFFFFFu;
#ifdef FREEHGC_CRC32_X86
  static const bool has_clmul = DetectClmul();
  if (has_clmul && n >= 64) {
    const size_t folded = n & ~static_cast<size_t>(15);
    c = UpdateClmul(c, p, folded);
    p += folded;
    n -= folded;
  }
#endif
  c = UpdatePortable(c, p, n);
  return c ^ 0xFFFFFFFFu;
}

namespace internal {

uint32_t Crc32Portable(const void* data, size_t n, uint32_t seed) {
  uint32_t c = seed ^ 0xFFFFFFFFu;
  c = UpdatePortable(c, static_cast<const uint8_t*>(data), n);
  return c ^ 0xFFFFFFFFu;
}

bool Crc32HasSimd() {
#ifdef FREEHGC_CRC32_X86
  return DetectClmul();
#else
  return false;
#endif
}

}  // namespace internal

}  // namespace freehgc
