#ifndef FREEHGC_COMMON_RESULT_H_
#define FREEHGC_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace freehgc {

/// Value-or-error carrier: either holds a T or a non-OK Status.
///
/// Modeled after arrow::Result / absl::StatusOr. Accessing the value of an
/// errored Result is a programming error (asserted in debug builds).
template <typename T>
class Result {
 public:
  /// Implicit from a value (success).
  Result(T value)  // NOLINT(google-explicit-constructor)
      : status_(Status::OK()), value_(std::move(value)) {}

  /// Implicit from a non-OK status (failure). Constructing from an OK
  /// status without a value is invalid and converted to an Internal error.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  /// True iff a value is held.
  bool ok() const { return status_.ok(); }

  const Status& status() const { return status_; }

  /// Access the held value. Requires ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value if ok, otherwise `fallback`.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Assigns the value of a Result expression to `lhs`, or returns its error
/// status from the enclosing function (which must return Status or
/// Result<U>).
#define FREEHGC_ASSIGN_OR_RETURN(lhs, rexpr)          \
  auto FREEHGC_CONCAT_(_res_, __LINE__) = (rexpr);    \
  if (!FREEHGC_CONCAT_(_res_, __LINE__).ok())         \
    return FREEHGC_CONCAT_(_res_, __LINE__).status(); \
  lhs = std::move(FREEHGC_CONCAT_(_res_, __LINE__)).value()

#define FREEHGC_CONCAT_IMPL_(a, b) a##b
#define FREEHGC_CONCAT_(a, b) FREEHGC_CONCAT_IMPL_(a, b)

}  // namespace freehgc

#endif  // FREEHGC_COMMON_RESULT_H_
