#ifndef FREEHGC_DENSE_MATRIX_H_
#define FREEHGC_DENSE_MATRIX_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/rng.h"
#include "common/storage.h"

namespace freehgc {

/// Dense row-major float matrix. The workhorse container for node features
/// and neural-network activations. Copyable and movable; copies of owned
/// matrices are deep, copies of mapped views share the view.
///
/// Storage is an ArrayRef<float>: owned heap memory for every computed
/// matrix, or a zero-copy view over a mapped v3 container section for
/// feature matrices of mapped graphs (see common/storage.h). Mutating
/// accessors detach a view into owned storage first (copy-on-write), so
/// all dense kernels work unchanged on either backing.
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() : rows_(0), cols_(0) {}

  /// rows x cols matrix, zero-initialized.
  Matrix(int64_t rows, int64_t cols);

  /// Wraps external row-major data without copying; `keepalive` pins the
  /// memory. `data` must hold rows*cols floats.
  static Matrix FromView(int64_t rows, int64_t cols,
                         std::span<const float> data,
                         std::shared_ptr<const void> keepalive);

  Matrix(const Matrix&) = default;
  Matrix& operator=(const Matrix&) = default;
  Matrix(Matrix&&) noexcept = default;
  Matrix& operator=(Matrix&&) noexcept = default;

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t size() const { return rows_ * cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  float& At(int64_t r, int64_t c) { return data_.Mutable()[r * cols_ + c]; }
  float At(int64_t r, int64_t c) const { return data_[r * cols_ + c]; }

  /// Pointer to the start of row r.
  float* Row(int64_t r) { return data_.Mutable().data() + r * cols_; }
  const float* Row(int64_t r) const { return data_.data() + r * cols_; }

  float* data() { return data_.Mutable().data(); }
  const float* data() const { return data_.data(); }

  /// True when the matrix views external (mapped) memory.
  bool is_mapped() const { return data_.is_view(); }

  /// Heap bytes owned by this matrix (0 while mapped).
  size_t OwnedBytes() const { return data_.OwnedBytes(); }

  /// Sets every entry to v.
  void Fill(float v);

  /// Fills with U(lo, hi) draws.
  void FillUniform(Rng& rng, float lo, float hi);

  /// Fills with N(0, stddev) draws.
  void FillGaussian(Rng& rng, float stddev);

  /// Glorot/Xavier uniform initialization for a (fan_in=rows, fan_out=cols)
  /// weight matrix.
  void FillGlorot(Rng& rng);

  /// Returns rows selected by `index` (gather), preserving order.
  Matrix GatherRows(const std::vector<int32_t>& index) const;

  /// Returns the horizontal concatenation [*this | other]; row counts must
  /// match.
  Matrix ConcatCols(const Matrix& other) const;

  bool operator==(const Matrix& other) const {
    const std::span<const float> a = data_.span();
    const std::span<const float> b = other.data_.span();
    return rows_ == other.rows_ && cols_ == other.cols_ &&
           a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
  }

 private:
  int64_t rows_;
  int64_t cols_;
  ArrayRef<float> data_;
};

namespace dense {

/// out = a * b. Shapes (m,k)x(k,n)->(m,n). Blocked triple loop; no BLAS
/// dependency.
Matrix MatMul(const Matrix& a, const Matrix& b);

/// out = a^T * b. Shapes (k,m)x(k,n)->(m,n).
Matrix MatMulTA(const Matrix& a, const Matrix& b);

/// out = a * b^T. Shapes (m,k)x(n,k)->(m,n).
Matrix MatMulTB(const Matrix& a, const Matrix& b);

/// out = a + b (elementwise, same shape).
Matrix Add(const Matrix& a, const Matrix& b);

/// a += alpha * b (in place, same shape).
void Axpy(float alpha, const Matrix& b, Matrix& a);

/// out = alpha * a.
Matrix Scale(const Matrix& a, float alpha);

/// Adds a length-cols bias row vector to every row of a (in place).
void AddRowVector(Matrix& a, const std::vector<float>& bias);

/// Row-wise in-place softmax.
void SoftmaxRows(Matrix& a);

/// Row-wise argmax.
std::vector<int32_t> ArgmaxRows(const Matrix& a);

/// Column mean of the selected rows (all rows when index is empty).
std::vector<float> ColumnMean(const Matrix& a,
                              const std::vector<int32_t>& index);

/// Mean of |a_ij| over all entries; 0 for empty.
float MeanAbs(const Matrix& a);

/// Squared L2 distance between row i of a and row j of b.
float RowSquaredDistance(const Matrix& a, int64_t i, const Matrix& b,
                         int64_t j);

/// Frobenius norm.
float FrobeniusNorm(const Matrix& a);

/// Sum of entrywise products <a, b> (same shape).
float Dot(const Matrix& a, const Matrix& b);

}  // namespace dense
}  // namespace freehgc

#endif  // FREEHGC_DENSE_MATRIX_H_
