#include "dense/matrix.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace freehgc {

Matrix::Matrix(int64_t rows, int64_t cols)
    : rows_(rows), cols_(cols),
      data_(std::vector<float>(static_cast<size_t>(rows * cols), 0.0f)) {
  FREEHGC_CHECK(rows >= 0 && cols >= 0);
}

Matrix Matrix::FromView(int64_t rows, int64_t cols,
                        std::span<const float> data,
                        std::shared_ptr<const void> keepalive) {
  FREEHGC_CHECK(rows >= 0 && cols >= 0 &&
                data.size() == static_cast<size_t>(rows * cols));
  Matrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.data_ = ArrayRef<float>::View(data, std::move(keepalive));
  return m;
}

void Matrix::Fill(float v) {
  auto& d = data_.Mutable();
  std::fill(d.begin(), d.end(), v);
}

void Matrix::FillUniform(Rng& rng, float lo, float hi) {
  for (auto& x : data_.Mutable()) x = rng.NextUniform(lo, hi);
}

void Matrix::FillGaussian(Rng& rng, float stddev) {
  for (auto& x : data_.Mutable()) x = rng.NextGaussian(0.0f, stddev);
}

void Matrix::FillGlorot(Rng& rng) {
  const float limit =
      std::sqrt(6.0f / static_cast<float>(rows_ + cols_ > 0 ? rows_ + cols_
                                                            : 1));
  FillUniform(rng, -limit, limit);
}

Matrix Matrix::GatherRows(const std::vector<int32_t>& index) const {
  Matrix out(static_cast<int64_t>(index.size()), cols_);
  for (size_t i = 0; i < index.size(); ++i) {
    const int32_t r = index[i];
    FREEHGC_CHECK(r >= 0 && r < rows_);
    std::copy(Row(r), Row(r) + cols_, out.Row(static_cast<int64_t>(i)));
  }
  return out;
}

Matrix Matrix::ConcatCols(const Matrix& other) const {
  FREEHGC_CHECK(rows_ == other.rows_);
  Matrix out(rows_, cols_ + other.cols_);
  for (int64_t r = 0; r < rows_; ++r) {
    std::copy(Row(r), Row(r) + cols_, out.Row(r));
    std::copy(other.Row(r), other.Row(r) + other.cols_, out.Row(r) + cols_);
  }
  return out;
}

namespace dense {

Matrix MatMul(const Matrix& a, const Matrix& b) {
  FREEHGC_CHECK(a.cols() == b.rows());
  const int64_t m = a.rows(), k = a.cols(), n = b.cols();
  Matrix out(m, n);
  // i-k-j order: streams through b and out rows; cache friendly without
  // blocking for the sizes used here.
  for (int64_t i = 0; i < m; ++i) {
    float* out_row = out.Row(i);
    const float* a_row = a.Row(i);
    for (int64_t p = 0; p < k; ++p) {
      const float av = a_row[p];
      if (av == 0.0f) continue;
      const float* b_row = b.Row(p);
      for (int64_t j = 0; j < n; ++j) out_row[j] += av * b_row[j];
    }
  }
  return out;
}

Matrix MatMulTA(const Matrix& a, const Matrix& b) {
  FREEHGC_CHECK(a.rows() == b.rows());
  const int64_t k = a.rows(), m = a.cols(), n = b.cols();
  Matrix out(m, n);
  for (int64_t p = 0; p < k; ++p) {
    const float* a_row = a.Row(p);
    const float* b_row = b.Row(p);
    for (int64_t i = 0; i < m; ++i) {
      const float av = a_row[i];
      if (av == 0.0f) continue;
      float* out_row = out.Row(i);
      for (int64_t j = 0; j < n; ++j) out_row[j] += av * b_row[j];
    }
  }
  return out;
}

Matrix MatMulTB(const Matrix& a, const Matrix& b) {
  FREEHGC_CHECK(a.cols() == b.cols());
  const int64_t m = a.rows(), k = a.cols(), n = b.rows();
  Matrix out(m, n);
  for (int64_t i = 0; i < m; ++i) {
    const float* a_row = a.Row(i);
    float* out_row = out.Row(i);
    for (int64_t j = 0; j < n; ++j) {
      const float* b_row = b.Row(j);
      float acc = 0.0f;
      for (int64_t p = 0; p < k; ++p) acc += a_row[p] * b_row[p];
      out_row[j] = acc;
    }
  }
  return out;
}

Matrix Add(const Matrix& a, const Matrix& b) {
  FREEHGC_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  Matrix out = a;
  const float* bp = b.data();
  float* op = out.data();
  for (int64_t i = 0; i < out.size(); ++i) op[i] += bp[i];
  return out;
}

void Axpy(float alpha, const Matrix& b, Matrix& a) {
  FREEHGC_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  const float* bp = b.data();
  float* ap = a.data();
  for (int64_t i = 0; i < a.size(); ++i) ap[i] += alpha * bp[i];
}

Matrix Scale(const Matrix& a, float alpha) {
  Matrix out = a;
  float* p = out.data();
  for (int64_t i = 0; i < out.size(); ++i) p[i] *= alpha;
  return out;
}

void AddRowVector(Matrix& a, const std::vector<float>& bias) {
  FREEHGC_CHECK(static_cast<int64_t>(bias.size()) == a.cols());
  for (int64_t r = 0; r < a.rows(); ++r) {
    float* row = a.Row(r);
    for (int64_t c = 0; c < a.cols(); ++c) row[c] += bias[c];
  }
}

void SoftmaxRows(Matrix& a) {
  for (int64_t r = 0; r < a.rows(); ++r) {
    float* row = a.Row(r);
    float mx = row[0];
    for (int64_t c = 1; c < a.cols(); ++c) mx = std::max(mx, row[c]);
    float sum = 0.0f;
    for (int64_t c = 0; c < a.cols(); ++c) {
      row[c] = std::exp(row[c] - mx);
      sum += row[c];
    }
    const float inv = sum > 0 ? 1.0f / sum : 0.0f;
    for (int64_t c = 0; c < a.cols(); ++c) row[c] *= inv;
  }
}

std::vector<int32_t> ArgmaxRows(const Matrix& a) {
  std::vector<int32_t> out(static_cast<size_t>(a.rows()), 0);
  for (int64_t r = 0; r < a.rows(); ++r) {
    const float* row = a.Row(r);
    int32_t best = 0;
    for (int64_t c = 1; c < a.cols(); ++c) {
      if (row[c] > row[best]) best = static_cast<int32_t>(c);
    }
    out[static_cast<size_t>(r)] = best;
  }
  return out;
}

std::vector<float> ColumnMean(const Matrix& a,
                              const std::vector<int32_t>& index) {
  std::vector<float> out(static_cast<size_t>(a.cols()), 0.0f);
  const int64_t n = index.empty() ? a.rows()
                                  : static_cast<int64_t>(index.size());
  if (n == 0) return out;
  for (int64_t i = 0; i < n; ++i) {
    const int64_t r = index.empty() ? i : index[static_cast<size_t>(i)];
    const float* row = a.Row(r);
    for (int64_t c = 0; c < a.cols(); ++c)
      out[static_cast<size_t>(c)] += row[c];
  }
  const float inv = 1.0f / static_cast<float>(n);
  for (auto& v : out) v *= inv;
  return out;
}

float MeanAbs(const Matrix& a) {
  if (a.size() == 0) return 0.0f;
  double acc = 0.0;
  const float* p = a.data();
  for (int64_t i = 0; i < a.size(); ++i) acc += std::fabs(p[i]);
  return static_cast<float>(acc / static_cast<double>(a.size()));
}

float RowSquaredDistance(const Matrix& a, int64_t i, const Matrix& b,
                         int64_t j) {
  FREEHGC_CHECK(a.cols() == b.cols());
  const float* ra = a.Row(i);
  const float* rb = b.Row(j);
  float acc = 0.0f;
  for (int64_t c = 0; c < a.cols(); ++c) {
    const float d = ra[c] - rb[c];
    acc += d * d;
  }
  return acc;
}

float FrobeniusNorm(const Matrix& a) {
  double acc = 0.0;
  const float* p = a.data();
  for (int64_t i = 0; i < a.size(); ++i) acc += double(p[i]) * p[i];
  return static_cast<float>(std::sqrt(acc));
}

float Dot(const Matrix& a, const Matrix& b) {
  FREEHGC_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  double acc = 0.0;
  const float* pa = a.data();
  const float* pb = b.data();
  for (int64_t i = 0; i < a.size(); ++i) acc += double(pa[i]) * pb[i];
  return static_cast<float>(acc);
}

}  // namespace dense
}  // namespace freehgc
